package elag_test

import (
	"errors"
	"strings"
	"testing"

	"elag"
)

// buildAsm assembles without classification, failing the test on error.
func buildAsm(t *testing.T, src string) *elag.Program {
	t.Helper()
	p, err := elag.BuildAsm(src, false, elag.ClassifyOptions{})
	if err != nil {
		t.Fatalf("BuildAsm: %v", err)
	}
	return p
}

// assertFaultKind checks that err carries an *elag.Fault of the given
// kind through the public facade.
func assertFaultKind(t *testing.T, err error, kind elag.FaultKind) {
	t.Helper()
	var f *elag.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %T (%v), want *elag.Fault", err, err)
	}
	if f.Kind != kind {
		t.Fatalf("fault kind = %v, want %v", f.Kind, kind)
	}
	if !errors.Is(err, &elag.Fault{Kind: kind}) {
		t.Errorf("errors.Is kind template did not match %v", err)
	}
}

func TestFacadeFaultKinds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind elag.FaultKind
	}{
		{"misaligned-load", "main:\tli r2, 4\n\tld8_n r1, r2(0)\n\thalt r1",
			elag.FaultMisaligned},
		{"oob-store", "main:\tli r2, -8\n\tst8 r1, r2(0)\n\thalt r1",
			elag.FaultOutOfBounds},
		{"jump-past-end", "main:\tli r5, 1000\n\tjr r5",
			elag.FaultBadPC},
		{"div-zero", "main:\tdiv r1, r1, r0\n\thalt r1",
			elag.FaultDivZero},
		{"fuel", "main:\tjmp main",
			elag.FaultFuel},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := buildAsm(t, c.src)
			_, err := p.Run(100)
			assertFaultKind(t, err, c.kind)
			// The same fault must surface through the timing
			// simulator's emulation step.
			_, _, err = p.Simulate(elag.BaseConfig(), 100)
			if c.kind == elag.FaultFuel {
				// Simulate treats a fuel-truncated trace as a
				// valid prefix, not an error.
				if err != nil {
					t.Errorf("Simulate on truncated run: %v", err)
				}
				return
			}
			assertFaultKind(t, err, c.kind)
		})
	}
}

func TestErrFuelMatchesFacade(t *testing.T) {
	p := buildAsm(t, "main:\tjmp main")
	_, err := p.Run(50)
	if !errors.Is(err, elag.ErrFuel) {
		t.Errorf("err = %v, want ErrFuel match", err)
	}
}

func TestSimConfigValidate(t *testing.T) {
	good := elag.BaseConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("base config invalid: %v", err)
	}
	bad := []elag.SimConfig{
		{IssueWidth: -1},
		{FetchWidth: 1000},
		{DCache: elag.CompilerDirectedConfig().DCache, LatDiv: -3},
		{Predictor: &elag.PredictorConfig{Entries: 3}},
		{RegCache: &elag.RegCacheConfig{Entries: -1}},
		{Select: elag.Selection(99)},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, cfg)
			continue
		}
		if strings.TrimSpace(err.Error()) == "" {
			t.Errorf("case %d: empty error message", i)
		}
		// A bad config must also be rejected at simulation time,
		// as an error — never a panic.
		p := buildAsm(t, "main:\thalt r0")
		if _, _, serr := p.Simulate(cfg, 10); serr == nil {
			t.Errorf("case %d: Simulate accepted invalid config", i)
		}
	}
}

func TestStageViewRejectsBadConfig(t *testing.T) {
	p := buildAsm(t, "main:\tli r1, 1\n\thalt r1")
	if _, err := p.StageView(elag.SimConfig{IssueWidth: -1}, 100, 10); err == nil {
		t.Errorf("StageView accepted invalid config")
	}
}
