package passman

import (
	"fmt"
	"strconv"
	"strings"

	"elag/internal/ir"
	"elag/internal/opt"
)

// OptLevel selects a predefined pipeline.
type OptLevel int

// Optimization levels.
const (
	// ODefault means "no explicit choice" and resolves to O2.
	ODefault OptLevel = iota
	// O0 runs no IR optimization at all: lower and classify only.
	O0
	// O1 runs the propagation/cleanup fixpoint (constprop, cse,
	// copyprop, coalesce, dce) without inlining, loop or memory passes.
	O1
	// O2 is the full paper pipeline: inlining, the complete cleanup
	// fixpoint (adding rle, licm, iv), and symbol materialization. This
	// is the default and reproduces the schedule the paper's Section 4
	// heuristics were tuned against.
	O2
)

// ParseOptLevel maps "0"/"1"/"2" (or "O0".."O2") to a level.
func ParseOptLevel(s string) (OptLevel, error) {
	switch strings.TrimPrefix(strings.ToUpper(s), "O") {
	case "0":
		return O0, nil
	case "1":
		return O1, nil
	case "2", "":
		return O2, nil
	}
	return ODefault, fmt.Errorf("unknown optimization level %q (want 0, 1 or 2)", s)
}

func (l OptLevel) String() string {
	switch l {
	case O0:
		return "O0"
	case O1:
		return "O1"
	}
	return "O2"
}

// cleanupGroup builds the fixpoint cluster from registered member names.
func cleanupGroup(maxIters int, names ...string) *Group {
	g := &Group{Name: "cleanup", MaxIters: maxIters}
	for _, n := range names {
		fp, ok := funcPasses[n]
		if !ok {
			panic("passman: unknown fixpoint member " + n)
		}
		g.Members = append(g.Members, fp)
	}
	return g
}

// o2Members is the full cleanup schedule, in the order the paper's
// prerequisite-pass list is applied; dce runs twice per iteration (once
// mid-schedule to shrink the work the loop passes see, once at the end to
// sweep what they leave).
var o2Members = []string{
	"constprop", "cse", "copyprop", "coalesce", "rle", "dce", "licm", "iv", "dce",
}

// o1Members is the straight-line subset: no inlining, loops or memory.
var o1Members = []string{"constprop", "cse", "copyprop", "coalesce", "dce"}

// ForLevel builds the pipeline for an optimization level. classify appends
// the Section 4 classifier after lowering (additive selects the literal
// S_load policy).
func ForLevel(level OptLevel, classify bool) Pipeline {
	var pl Pipeline
	switch level {
	case O0:
	case O1:
		pl = append(pl, cleanupGroup(0, o1Members...))
	default: // O2, ODefault
		pl = append(pl, InlinePass(), cleanupGroup(0, o2Members...), MatSymPass(true))
	}
	pl = append(pl, LowerPass())
	if classify {
		pl = append(pl, ClassifyPass(false))
	}
	return pl
}

// Legacy builds the pipeline equivalent to the pre-pass-manager opt.Run
// schedule under the given options: the O2 pipeline with the disabled
// passes removed and the iteration bound overridden. It exists so that the
// BuildOptions.Opt knobs (and elag-cc -no-opt) keep their exact historical
// meaning.
func Legacy(o opt.Options, classify bool) Pipeline {
	pl := LegacyIR(o)
	pl = append(pl, LowerPass())
	if classify {
		pl = append(pl, ClassifyPass(false))
	}
	return pl
}

// LegacyIR is the IR-only prefix of Legacy: the optimization schedule
// without lowering or classification. Useful for tools and tests that
// operate on the module form.
func LegacyIR(o opt.Options) Pipeline {
	members := []string{"constprop", "cse", "copyprop", "coalesce"}
	if !o.DisableRLE {
		members = append(members, "rle")
	}
	members = append(members, "dce")
	if !o.DisableLICM {
		members = append(members, "licm")
	}
	if !o.DisableStrengthReduce {
		members = append(members, "iv")
	} else {
		// The legacy schedule still folded addressing modes each round
		// when strength reduction was disabled.
		members = append(members, "fold")
	}
	members = append(members, "dce")

	g := &Group{Name: "cleanup", MaxIters: o.Rounds}
	for _, n := range members {
		if n == "fold" {
			g.Members = append(g.Members, FuncPass{
				Name: "fold",
				Desc: "addressing-mode folding",
				Run:  wrapBool(opt.FoldAddressing),
			})
			continue
		}
		g.Members = append(g.Members, funcPasses[n])
	}

	var pl Pipeline
	if !o.DisableInline {
		pl = append(pl, InlinePass())
	}
	pl = append(pl, g, MatSymPass(!o.DisableLICM))
	return pl
}

// Optimize runs the legacy IR optimization schedule over a module in place,
// verifying the IR between passes. It is the module-level replacement for
// the old opt.Run entry point.
func Optimize(m *ir.Module, o opt.Options) error {
	mgr := Manager{Verify: true}
	return mgr.Run(LegacyIR(o), &State{Module: m})
}

// Parse builds a pipeline from a -passes= spec string. Grammar:
//
//	spec  := step ("," step)*
//	step  := name | "fixpoint" [":" iters] "(" name ("," name)* ")"
//
// Names resolve against the registry (see Names). Fixpoint members must be
// per-function IR passes. IR steps must precede "lower"; machine steps
// (classify, classify-additive, profile-promote) must follow it. If the
// spec names no "lower", one is appended after the IR steps; if classify is
// set and the spec names no classifier, "classify" is appended too — so a
// spec can describe just the optimization schedule and inherit the rest of
// the flow.
func Parse(spec string, classify bool) (Pipeline, error) {
	var pl Pipeline
	sawLower := false
	sawClassifier := false

	steps, err := splitSteps(spec)
	if err != nil {
		return nil, err
	}
	for _, s := range steps {
		switch {
		case strings.HasPrefix(s, "fixpoint"):
			g, err := parseFixpoint(s)
			if err != nil {
				return nil, err
			}
			if sawLower {
				return nil, fmt.Errorf("passes spec: fixpoint group after lower")
			}
			pl = append(pl, g)
		default:
			p, ok := modulePass(s)
			if !ok {
				return nil, fmt.Errorf("passes spec: unknown pass %q (have: %s)",
					s, strings.Join(Names(), ", "))
			}
			switch p.Kind {
			case KindIR:
				if sawLower {
					return nil, fmt.Errorf("passes spec: IR pass %q after lower", s)
				}
			case KindLower:
				if sawLower {
					return nil, fmt.Errorf("passes spec: duplicate lower pass")
				}
				sawLower = true
			case KindMachine:
				if !sawLower {
					return nil, fmt.Errorf("passes spec: machine pass %q before lower", s)
				}
				if s == "classify" || s == "classify-additive" {
					sawClassifier = true
				}
			}
			pl = append(pl, p)
		}
	}
	if !sawLower {
		pl = append(pl, LowerPass())
	}
	if classify && !sawClassifier {
		pl = append(pl, ClassifyPass(false))
	}
	return pl, nil
}

// splitSteps splits a spec on commas at paren depth zero.
func splitSteps(spec string) ([]string, error) {
	var steps []string
	depth, start := 0, 0
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("passes spec: unbalanced ')'")
			}
		case ',':
			if depth == 0 {
				steps = append(steps, strings.TrimSpace(spec[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("passes spec: unbalanced '('")
	}
	if s := strings.TrimSpace(spec[start:]); s != "" {
		steps = append(steps, s)
	}
	for _, s := range steps {
		if s == "" {
			return nil, fmt.Errorf("passes spec: empty step")
		}
	}
	return steps, nil
}

// parseFixpoint parses "fixpoint[:iters](a,b,c)".
func parseFixpoint(s string) (*Group, error) {
	rest := strings.TrimPrefix(s, "fixpoint")
	iters := 0
	if strings.HasPrefix(rest, ":") {
		i := strings.IndexByte(rest, '(')
		if i < 0 {
			return nil, fmt.Errorf("passes spec: malformed fixpoint %q", s)
		}
		n, err := strconv.Atoi(rest[1:i])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("passes spec: bad fixpoint iteration bound in %q", s)
		}
		iters = n
		rest = rest[i:]
	}
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return nil, fmt.Errorf("passes spec: malformed fixpoint %q", s)
	}
	g := &Group{Name: "cleanup", MaxIters: iters}
	for _, n := range strings.Split(rest[1:len(rest)-1], ",") {
		n = strings.TrimSpace(n)
		fp, ok := funcPasses[n]
		if !ok {
			return nil, fmt.Errorf("passes spec: %q is not a per-function pass (fixpoint members: %s)",
				n, strings.Join(funcPassNames(), ", "))
		}
		g.Members = append(g.Members, fp)
	}
	if len(g.Members) == 0 {
		return nil, fmt.Errorf("passes spec: empty fixpoint group in %q", s)
	}
	return g, nil
}

func funcPassNames() []string {
	names := Names()
	return names[:len(names)-6]
}
