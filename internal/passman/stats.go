package passman

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// PassStat accumulates the activity of one named pass across a pipeline
// run: how often it ran, how often it reported a change, the instruction
// counts around its first and last run, and its total wall time.
type PassStat struct {
	// Name is the pass name.
	Name string `json:"name"`
	// Kind is the pass kind ("ir", "lower", "machine").
	Kind string `json:"kind"`
	// Runs counts invocations (a fixpoint member runs once per function
	// per iteration).
	Runs int `json:"runs"`
	// Changed counts the invocations that reported a change.
	Changed int `json:"changed"`
	// InstsBefore is the instruction count before the pass's first run.
	InstsBefore int `json:"insts_before"`
	// InstsAfter is the instruction count after the pass's last run.
	InstsAfter int `json:"insts_after"`
	// Removed is the net instruction reduction summed over runs
	// (negative when the pass grows code, as inlining does).
	Removed int `json:"removed"`
	// WallNS is the total wall time spent in the pass, in nanoseconds.
	WallNS int64 `json:"wall_ns"`
}

// Stats collects per-pass counters for one pipeline run. The zero value is
// ready to use.
type Stats struct {
	order []string
	byN   map[string]*PassStat
	// TotalWallNS is the wall time summed over every pass run.
	TotalWallNS int64
}

func (s *Stats) record(name string, kind Kind, changed bool, before, after int, wall time.Duration) {
	if s.byN == nil {
		s.byN = make(map[string]*PassStat)
	}
	ps := s.byN[name]
	if ps == nil {
		ps = &PassStat{Name: name, Kind: kind.String(), InstsBefore: before}
		s.byN[name] = ps
		s.order = append(s.order, name)
	}
	ps.Runs++
	if changed {
		ps.Changed++
	}
	ps.InstsAfter = after
	ps.Removed += before - after
	ps.WallNS += wall.Nanoseconds()
	s.TotalWallNS += wall.Nanoseconds()
}

// Passes returns the per-pass stats in first-run order.
func (s *Stats) Passes() []PassStat {
	out := make([]PassStat, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, *s.byN[n])
	}
	return out
}

// StatsDoc is the schema-versioned machine-readable form of a pipeline
// run's statistics.
type StatsDoc struct {
	// Schema identifies the document format.
	Schema string `json:"schema"`
	// Program labels the compiled program.
	Program string `json:"program"`
	// Pipeline is the spec-like rendering of the pipeline that ran.
	Pipeline string `json:"pipeline"`
	// Passes is the per-pass breakdown, in first-run order.
	Passes []PassStat `json:"passes"`
	// TotalWallNS is the wall time summed over every pass run.
	TotalWallNS int64 `json:"total_wall_ns"`
}

// StatsSchema is the schema tag of StatsDoc.
const StatsSchema = "elag-passes/v1"

// NewStatsDoc wraps collected stats in the exportable document.
func NewStatsDoc(program, pipeline string, s *Stats) *StatsDoc {
	return &StatsDoc{
		Schema:      StatsSchema,
		Program:     program,
		Pipeline:    pipeline,
		Passes:      s.Passes(),
		TotalWallNS: s.TotalWallNS,
	}
}

// WriteStatsJSON writes the document as indented JSON.
func WriteStatsJSON(w io.Writer, doc *StatsDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Summary renders a human-readable per-pass table.
func (s *Stats) Summary() string {
	out := fmt.Sprintf("%-12s %-7s %5s %7s %8s %8s %10s\n",
		"pass", "kind", "runs", "changed", "insts>", ">insts", "wall")
	for _, ps := range s.Passes() {
		out += fmt.Sprintf("%-12s %-7s %5d %7d %8d %8d %10s\n",
			ps.Name, ps.Kind, ps.Runs, ps.Changed, ps.InstsBefore, ps.InstsAfter,
			time.Duration(ps.WallNS).Round(time.Microsecond))
	}
	out += fmt.Sprintf("total %s\n", time.Duration(s.TotalWallNS).Round(time.Microsecond))
	return out
}
