package passman_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"elag/internal/ir"
	"elag/internal/mcc"
	"elag/internal/opt"
	"elag/internal/passman"
)

const tinyProg = `
int g[8];
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + g[i]; }
	return s;
}
int main() { g[2] = 5; print_int(sum(8)); return 0; }
`

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := mcc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func countInsts(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Insts)
		}
	}
	return n
}

func TestParseOptLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want passman.OptLevel
	}{
		{"0", passman.O0}, {"1", passman.O1}, {"2", passman.O2},
		{"O0", passman.O0}, {"o1", passman.O1}, {"O2", passman.O2},
	} {
		got, err := passman.ParseOptLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseOptLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := passman.ParseOptLevel("3"); err == nil {
		t.Errorf("ParseOptLevel(3) accepted")
	}
	if _, err := passman.ParseOptLevel("fast"); err == nil {
		t.Errorf("ParseOptLevel(fast) accepted")
	}
}

func TestForLevelShapes(t *testing.T) {
	o0 := passman.ForLevel(passman.O0, true).Names()
	if o0 != "lower,classify" {
		t.Errorf("O0 pipeline = %q", o0)
	}
	o1 := passman.ForLevel(passman.O1, true).Names()
	if strings.Contains(o1, "inline") || strings.Contains(o1, "licm") || strings.Contains(o1, "matsym") {
		t.Errorf("O1 pipeline contains loop/inline passes: %q", o1)
	}
	o2 := passman.ForLevel(passman.O2, true).Names()
	for _, want := range []string{"inline", "licm", "iv", "matsym", "lower", "classify"} {
		if !strings.Contains(o2, want) {
			t.Errorf("O2 pipeline missing %s: %q", want, o2)
		}
	}
	noClassify := passman.ForLevel(passman.O2, false).Names()
	if strings.Contains(noClassify, "classify") {
		t.Errorf("classify present with classification disabled: %q", noClassify)
	}
}

func TestLegacyHonorsDisables(t *testing.T) {
	pl := passman.Legacy(opt.Options{
		DisableInline: true, DisableLICM: true,
		DisableStrengthReduce: true, DisableRLE: true,
	}, true).Names()
	for _, banned := range []string{"inline", "licm", "rle", "iv"} {
		if strings.Contains(pl, banned) {
			t.Errorf("disabled pass %s still scheduled: %q", banned, pl)
		}
	}
	// The legacy schedule folds addressing modes every round when
	// strength reduction is off.
	if !strings.Contains(pl, "fold") {
		t.Errorf("fold member missing from SR-disabled schedule: %q", pl)
	}
}

func TestParseSpecs(t *testing.T) {
	good := []struct{ spec, want string }{
		{"lower", "lower,classify"},
		{"dce", "dce,lower,classify"},
		{"fixpoint(constprop,dce)", "fixpoint(constprop,dce),lower,classify"},
		{"fixpoint:3(constprop,dce),matsym", "fixpoint(constprop,dce),matsym,lower,classify"},
		{"inline,lower,classify-additive", "inline,lower,classify-additive"},
		{"lower,classify,profile-promote", "lower,classify,profile-promote"},
	}
	for _, tc := range good {
		pl, err := passman.Parse(tc.spec, true)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if pl.Names() != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.spec, pl.Names(), tc.want)
		}
	}
	bad := []string{
		"bogus",               // unknown pass
		"lower,dce",           // IR pass after lower
		"classify,lower",      // machine pass before lower
		"lower,lower",         // duplicate lower
		"fixpoint(constprop",  // unbalanced
		"fixpoint(lower)",     // not a per-function pass
		"fixpoint:0(dce)",     // bad iteration bound
		"fixpoint()",          // empty group
		"lower,fixpoint(dce)", // group after lower
		"dce,,lower",          // empty step
	}
	for _, spec := range bad {
		if _, err := passman.Parse(spec, true); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestManagerRunsLevels(t *testing.T) {
	for _, lvl := range []passman.OptLevel{passman.O0, passman.O1, passman.O2} {
		st := &passman.State{Module: compile(t, tinyProg)}
		mgr := passman.Manager{Verify: true}
		if err := mgr.Run(passman.ForLevel(lvl, true), st); err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		if st.Machine == nil || st.Asm == "" {
			t.Fatalf("%v: no machine program produced", lvl)
		}
		if st.Classes == nil || st.Classes.StaticTotal() == 0 {
			t.Fatalf("%v: no classification produced", lvl)
		}
	}
}

func TestManagerCollectsStats(t *testing.T) {
	var stats passman.Stats
	st := &passman.State{Module: compile(t, tinyProg)}
	mgr := passman.Manager{Verify: true, Stats: &stats}
	if err := mgr.Run(passman.ForLevel(passman.O2, true), st); err != nil {
		t.Fatal(err)
	}
	passes := stats.Passes()
	if len(passes) == 0 {
		t.Fatal("no per-pass stats collected")
	}
	seen := map[string]bool{}
	for _, ps := range passes {
		seen[ps.Name] = true
		if ps.Runs == 0 {
			t.Errorf("pass %s recorded with zero runs", ps.Name)
		}
	}
	for _, want := range []string{"inline", "constprop", "dce", "lower", "classify"} {
		if !seen[want] {
			t.Errorf("no stats for pass %s", want)
		}
	}

	var buf bytes.Buffer
	doc := passman.NewStatsDoc("tiny", "o2", &stats)
	if err := passman.WriteStatsJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	var back passman.StatsDoc
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v", err)
	}
	if back.Schema != passman.StatsSchema {
		t.Errorf("schema = %q, want %q", back.Schema, passman.StatsSchema)
	}
	if len(back.Passes) != len(passes) {
		t.Errorf("round-trip lost passes: %d vs %d", len(back.Passes), len(passes))
	}
	if stats.Summary() == "" {
		t.Errorf("empty human-readable summary")
	}
}

func TestManagerDumpAfter(t *testing.T) {
	st := &passman.State{Module: compile(t, tinyProg)}
	mgr := passman.Manager{Verify: true, DumpAfter: "dce"}
	if err := mgr.Run(passman.ForLevel(passman.O2, true), st); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Dumps) == 0 {
		t.Fatal("no IR dumps collected for dce")
	}
	for _, d := range mgr.Dumps {
		if d.Pass != "dce" {
			t.Errorf("dump for pass %q, want dce", d.Pass)
		}
		if !strings.Contains(d.Text, "func ") {
			t.Errorf("dump does not look like IR: %q", d.Text[:min(len(d.Text), 80)])
		}
	}
}

func TestManagerVerifyCatchesBrokenPass(t *testing.T) {
	breaker := &passman.Pass{
		Name: "breaker",
		Kind: passman.KindIR,
		Run: func(st *passman.State) (bool, error) {
			// Chop the terminator off the entry block of main.
			f := st.Module.Funcs[0]
			b := f.Blocks[0]
			b.Insts = b.Insts[:len(b.Insts)-1]
			return true, nil
		},
	}
	st := &passman.State{Module: compile(t, tinyProg)}
	mgr := passman.Manager{Verify: true}
	err := mgr.Run(passman.Pipeline{breaker, passman.LowerPass()}, st)
	if err == nil {
		t.Fatal("corrupted module slipped through verification")
	}
	if !strings.Contains(err.Error(), "breaker") {
		t.Errorf("violation not attributed to the breaking pass: %v", err)
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	m := compile(t, tinyProg)
	if err := passman.Optimize(m, opt.Options{}); err != nil {
		t.Fatal(err)
	}
	before := countInsts(m)
	if err := passman.Optimize(m, opt.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := countInsts(m); got != before {
		t.Errorf("second Optimize changed the program: %d -> %d insts", before, got)
	}
}

func TestOptimizeAllDisablesTerminates(t *testing.T) {
	m := compile(t, tinyProg)
	if err := passman.Optimize(m, opt.Options{
		DisableInline: true, DisableLICM: true,
		DisableStrengthReduce: true, DisableRLE: true,
	}); err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) == 0 || len(m.Funcs[0].Blocks) == 0 {
		t.Errorf("module destroyed")
	}
}

func TestNamesAndDescribe(t *testing.T) {
	names := passman.Names()
	if len(names) == 0 {
		t.Fatal("no registered passes")
	}
	for _, n := range names {
		if passman.Describe(n) == "" {
			t.Errorf("pass %s has no description", n)
		}
		if _, err := passman.Parse(n, false); err != nil &&
			!strings.Contains(err.Error(), "before lower") {
			t.Errorf("registered pass %s does not parse: %v", n, err)
		}
	}
	if _, ok := passman.LookupFunc("dce"); !ok {
		t.Errorf("dce not resolvable as a function pass")
	}
	if _, ok := passman.LookupFunc("lower"); ok {
		t.Errorf("lower resolved as a function pass")
	}
}
