// Package passman is the compiler's pass manager: it owns the schedule of
// everything that happens between a lowered IR module and a classified
// machine program. Passes are registered by name, grouped into fixpoint
// clusters, assembled into pipelines from an optimization level (-O0/-O1/
// -O2) or an explicit -passes= spec string, and run under a manager that
// verifies the IR between passes (ir.Verify) and collects per-pass
// statistics (instruction counts, rewrite activity, wall time) exportable
// as an elag-passes/v1 JSON document.
//
// The design follows the pass-pipeline shape of LLVM's new pass manager
// scaled down to this compiler: three pass kinds (IR, lowering, machine)
// share one State that carries the compilation from module to classified
// program, so the paper's Section 4 load-classification heuristics and the
// Section 4.3 profile promotion are ordinary machine passes — swappable
// policies rather than hardcoded calls.
package passman

import (
	"fmt"
	"time"

	"elag/internal/core"
	"elag/internal/ir"
	"elag/internal/isa"
)

// Kind places a pass in the compilation flow.
type Kind uint8

// Pass kinds.
const (
	// KindIR transforms the IR module (State.Module).
	KindIR Kind = iota
	// KindLower turns IR into a machine program (State.Asm/Machine).
	KindLower
	// KindMachine transforms the machine program (State.Machine,
	// State.Classes).
	KindMachine
)

func (k Kind) String() string {
	switch k {
	case KindIR:
		return "ir"
	case KindLower:
		return "lower"
	case KindMachine:
		return "machine"
	}
	return "?"
}

// State is the unit of compilation threaded through a pipeline. IR passes
// read and write Module; the lower pass fills Asm and Machine; machine
// passes rewrite Machine and Classes.
type State struct {
	// Source is the original MC source (informational; empty for
	// assembly-origin programs).
	Source string
	// Module is the IR under optimization (nil once unused, or for
	// machine-only pipelines).
	Module *ir.Module
	// Asm is the generated assembly listing (set by the lower pass).
	Asm string
	// Machine is the assembled machine program (set by the lower pass,
	// or pre-set for machine-only pipelines).
	Machine *isa.Program
	// Classes is the load classification (set by the classify pass).
	Classes *core.Classification

	// InlineBudget caps the callee size eligible for inlining
	// (0 = default 40).
	InlineBudget int
	// ClassifyOpts parameterizes the classify passes.
	ClassifyOpts core.Options
	// ProfileRates provides per-PC address-prediction rates for the
	// profile-promote pass (nil disables it).
	ProfileRates map[int]float64
	// ProfileThreshold is the promotion threshold (0 = the paper's 0.60).
	ProfileThreshold float64
}

// NumInsts counts the instructions currently in flight: machine
// instructions once lowered, IR instructions before.
func (st *State) NumInsts() int {
	if st.Machine != nil {
		return len(st.Machine.Insts)
	}
	if st.Module == nil {
		return 0
	}
	n := 0
	for _, f := range st.Module.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Insts)
		}
	}
	return n
}

// Pass is one module-level transformation.
type Pass struct {
	// Name identifies the pass in specs, stats and dumps.
	Name string
	// Desc is a one-line description for -help-passes style listings.
	Desc string
	// Kind places the pass in the compilation flow.
	Kind Kind
	// Run transforms the state, reporting whether anything changed.
	Run func(*State) (changed bool, err error)
}

// FuncPass is a per-function IR transformation, the granularity at which
// fixpoint groups iterate.
type FuncPass struct {
	Name string
	Desc string
	Run  func(*ir.Func) (changed bool, err error)
}

// Group is a fixpoint cluster: for each function, its members run in order,
// repeatedly, until a full iteration changes nothing or MaxIters is
// reached. Functions converge independently (a function that is done stops
// iterating even while another continues), matching the cost model of a
// per-function optimizer.
type Group struct {
	Name     string
	MaxIters int // <=0 means 8
	Members  []FuncPass
}

// Step is one pipeline element: a *Pass or a *Group.
type Step interface {
	stepName() string
}

func (p *Pass) stepName() string  { return p.Name }
func (g *Group) stepName() string { return g.Name }

// Pipeline is an ordered list of steps.
type Pipeline []Step

// Names renders the pipeline as a spec-like summary string.
func (pl Pipeline) Names() string {
	s := ""
	for i, st := range pl {
		if i > 0 {
			s += ","
		}
		if g, ok := st.(*Group); ok {
			s += "fixpoint("
			for j, m := range g.Members {
				if j > 0 {
					s += ","
				}
				s += m.Name
			}
			s += ")"
		} else {
			s += st.stepName()
		}
	}
	return s
}

// Dump is one IR snapshot requested with Manager.DumpAfter.
type Dump struct {
	// Pass is the pass (or group member) the snapshot was taken after.
	Pass string
	// Text is the rendered IR of the whole module.
	Text string
}

// Manager runs pipelines.
type Manager struct {
	// Verify, when set, runs ir.VerifyFunc/ir.Verify after every pass
	// (and every group-member application) and aborts the pipeline on the
	// first violation — a broken pass is caught at the pass that broke
	// the module, not at codegen or in the simulator.
	Verify bool
	// Stats, when non-nil, accumulates per-pass counters.
	Stats *Stats
	// DumpAfter, when non-empty, snapshots the IR after every run of the
	// named pass (or group member) into Dumps.
	DumpAfter string
	// Dumps receives the requested IR snapshots.
	Dumps []Dump
}

// Run executes the pipeline over st. The first pass error or verifier
// violation aborts the run.
func (m *Manager) Run(pl Pipeline, st *State) error {
	if st.Module != nil {
		// Normalize: derive CFG edges and prune unreachable blocks, so
		// passes and the verifier see a consistent graph.
		for _, f := range st.Module.Funcs {
			f.ComputeCFG()
		}
		if err := m.verifyModule(st, "input"); err != nil {
			return err
		}
	}
	for _, step := range pl {
		switch s := step.(type) {
		case *Pass:
			if err := m.runPass(s, st); err != nil {
				return err
			}
		case *Group:
			if err := m.runGroup(s, st); err != nil {
				return err
			}
		default:
			return fmt.Errorf("passman: unknown step type %T", step)
		}
	}
	return nil
}

func (m *Manager) runPass(p *Pass, st *State) error {
	before := st.NumInsts()
	t0 := time.Now()
	changed, err := p.Run(st)
	wall := time.Since(t0)
	m.record(p.Name, p.Kind, changed, before, st.NumInsts(), wall)
	if err != nil {
		return fmt.Errorf("pass %s: %w", p.Name, err)
	}
	if p.Kind != KindMachine && st.Module != nil {
		if err := m.verifyModule(st, p.Name); err != nil {
			return err
		}
	}
	m.dump(p.Name, st)
	return nil
}

func (m *Manager) runGroup(g *Group, st *State) error {
	if st.Module == nil {
		return fmt.Errorf("passman: fixpoint group %s needs an IR module", g.Name)
	}
	max := g.MaxIters
	if max <= 0 {
		max = 8
	}
	for _, f := range st.Module.Funcs {
		f.ComputeCFG()
		for iter := 0; iter < max; iter++ {
			changedAny := false
			for i := range g.Members {
				mem := &g.Members[i]
				before := countFunc(f)
				t0 := time.Now()
				changed, err := mem.Run(f)
				wall := time.Since(t0)
				m.record(mem.Name, KindIR, changed, before, countFunc(f), wall)
				if err != nil {
					return fmt.Errorf("pass %s (in %s, func %s): %w", mem.Name, g.Name, f.Name, err)
				}
				if m.Verify {
					if err := ir.VerifyFunc(f); err != nil {
						return fmt.Errorf("after pass %s (in %s): %w", mem.Name, g.Name, err)
					}
				}
				m.dump(mem.Name, st)
				changedAny = changedAny || changed
			}
			if !changedAny {
				break
			}
		}
	}
	return nil
}

func countFunc(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

func (m *Manager) verifyModule(st *State, after string) error {
	if !m.Verify || st.Module == nil {
		return nil
	}
	if err := ir.Verify(st.Module); err != nil {
		return fmt.Errorf("after pass %s: %w", after, err)
	}
	return nil
}

func (m *Manager) dump(pass string, st *State) {
	if m.DumpAfter == "" || m.DumpAfter != pass || st.Module == nil {
		return
	}
	text := ""
	for _, f := range st.Module.Funcs {
		text += f.String()
	}
	m.Dumps = append(m.Dumps, Dump{Pass: pass, Text: text})
}

func (m *Manager) record(name string, kind Kind, changed bool, before, after int, wall time.Duration) {
	if m.Stats == nil {
		return
	}
	m.Stats.record(name, kind, changed, before, after, wall)
}
