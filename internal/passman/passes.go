package passman

import (
	"fmt"
	"sort"

	"elag/internal/asm"
	"elag/internal/codegen"
	"elag/internal/core"
	"elag/internal/ir"
	"elag/internal/opt"
)

// The registered per-function IR passes. These are the building blocks of
// fixpoint groups; each is also usable standalone in a -passes= spec
// (wrapped to run once over every function).
var funcPasses = map[string]FuncPass{
	"constprop": {
		Name: "constprop",
		Desc: "constant folding and local/global constant propagation",
		Run:  wrapBool(opt.ConstProp),
	},
	"cse": {
		Name: "cse",
		Desc: "local common-subexpression elimination",
		Run:  wrapBool(opt.LocalCSE),
	},
	"copyprop": {
		Name: "copyprop",
		Desc: "local/global copy propagation",
		Run:  wrapBool(opt.CopyProp),
	},
	"coalesce": {
		Name: "coalesce",
		Desc: "virtual-register copy coalescing",
		Run:  wrapBool(opt.CoalesceCopies),
	},
	"rle": {
		Name: "rle",
		Desc: "redundant load elimination and store-to-load forwarding",
		Run:  wrapBool(opt.RedundantLoadElim),
	},
	"dce": {
		Name: "dce",
		Desc: "dead-code elimination",
		Run:  wrapBool(opt.DeadCodeElim),
	},
	"licm": {
		Name: "licm",
		Desc: "loop-invariant code motion",
		Run:  wrapBool(opt.LICM),
	},
	"iv": {
		Name: "iv",
		Desc: "induction-variable strength reduction, then addressing-mode folding once reduction converges",
		// Folding an add that is about to become a pointer induction
		// variable would hide it from the reducer, so the fold half
		// only runs on iterations where reduction found nothing —
		// preserving the schedule the classifier's striding-load
		// shapes depend on.
		Run: func(f *ir.Func) (bool, error) {
			sr := opt.StrengthReduce(f)
			changed := sr
			if !sr {
				changed = opt.FoldAddressing(f) || changed
			}
			return changed, nil
		},
	},
}

func wrapBool(fn func(*ir.Func) bool) func(*ir.Func) (bool, error) {
	return func(f *ir.Func) (bool, error) { return fn(f), nil }
}

// forAll wraps a per-function pass as a module pass running it once over
// every function.
func forAll(fp FuncPass) *Pass {
	return &Pass{
		Name: fp.Name,
		Desc: fp.Desc,
		Kind: KindIR,
		Run: func(st *State) (bool, error) {
			changed := false
			for _, f := range st.Module.Funcs {
				f.ComputeCFG()
				c, err := fp.Run(f)
				if err != nil {
					return changed, err
				}
				changed = changed || c
			}
			return changed, nil
		},
	}
}

// InlinePass returns the module-level inlining pass: expand small callees
// into their call sites (budget from State.InlineBudget, default 40), then
// prune functions no call reaches.
func InlinePass() *Pass {
	return &Pass{
		Name: "inline",
		Desc: "function inlining plus dead-function pruning",
		Kind: KindIR,
		Run: func(st *State) (bool, error) {
			budget := st.InlineBudget
			if budget == 0 {
				budget = 40
			}
			changed := opt.Inline(st.Module, budget)
			changed = opt.PruneDeadFuncs(st.Module) || changed
			return changed, nil
		},
	}
}

// MatSymPass returns the symbol-materialization epilogue: keep global
// addresses in registers where it pays, then hoist the materializations out
// of loops and sweep the dead address arithmetic. No propagation pass may
// run after it (it would fold the addresses back in), which is why it is a
// pipeline step rather than a fixpoint member.
func MatSymPass(withCleanup bool) *Pass {
	return &Pass{
		Name: "matsym",
		Desc: "global-address materialization (+ LICM/DCE cleanup)",
		Kind: KindIR,
		Run: func(st *State) (bool, error) {
			changed := false
			for _, f := range st.Module.Funcs {
				if opt.MaterializeSyms(f) {
					changed = true
					if withCleanup {
						opt.LICM(f)
						opt.DeadCodeElim(f)
					}
				}
			}
			return changed, nil
		},
	}
}

// LowerPass returns the lowering step: code generation (linear-scan
// allocation, instruction selection) followed by assembly. After it,
// State.Asm and State.Machine are set.
func LowerPass() *Pass {
	return &Pass{
		Name: "lower",
		Desc: "code generation and assembly",
		Kind: KindLower,
		Run: func(st *State) (bool, error) {
			text, err := codegen.Generate(st.Module)
			if err != nil {
				return false, err
			}
			prog, err := asm.Assemble(text)
			if err != nil {
				return false, fmt.Errorf("internal: generated assembly does not assemble: %w", err)
			}
			st.Asm = text
			st.Machine = prog
			return true, nil
		},
	}
}

// ClassifyPass returns the paper's Section 4 load classifier as a machine
// pass; additive selects the literal additive S_load fixpoint policy
// regardless of State.ClassifyOpts.
func ClassifyPass(additive bool) *Pass {
	name := "classify"
	desc := "Section 4 load classification (kill-aware S_load taint)"
	if additive {
		name = "classify-additive"
		desc = "Section 4 load classification (literal additive S_load fixpoint)"
	}
	return &Pass{
		Name: name,
		Desc: desc,
		Kind: KindMachine,
		Run: func(st *State) (bool, error) {
			if st.Machine == nil {
				return false, fmt.Errorf("no machine program (missing lower pass?)")
			}
			o := st.ClassifyOpts
			if additive {
				o.AdditiveSLoad = true
			}
			st.Classes = core.ClassifyAndApply(st.Machine, o)
			return st.Classes.StaticTotal() > 0, nil
		},
	}
}

// ProfilePromotePass returns the Section 4.3 profile-guided
// reclassification as a machine pass: NT loads whose profiled prediction
// rate exceeds State.ProfileThreshold become PD.
func ProfilePromotePass() *Pass {
	return &Pass{
		Name: "profile-promote",
		Desc: "Section 4.3 profile-guided NT→PD promotion",
		Kind: KindMachine,
		Run: func(st *State) (bool, error) {
			if st.Machine == nil {
				return false, fmt.Errorf("no machine program (missing lower pass?)")
			}
			if st.ProfileRates == nil {
				return false, fmt.Errorf("no profile rates on the compilation state")
			}
			if st.Classes == nil {
				st.Classes = core.Classify(st.Machine, st.ClassifyOpts)
			}
			before := st.Classes.StaticPD
			st.Classes = core.Reclassify(st.Classes, st.ProfileRates, st.ProfileThreshold)
			st.Classes.Apply(st.Machine)
			return st.Classes.StaticPD != before, nil
		},
	}
}

// modulePass resolves the named module-level pass, constructing it fresh
// (passes are stateless; construction is cheap).
func modulePass(name string) (*Pass, bool) {
	switch name {
	case "inline":
		return InlinePass(), true
	case "matsym":
		return MatSymPass(true), true
	case "lower":
		return LowerPass(), true
	case "classify":
		return ClassifyPass(false), true
	case "classify-additive":
		return ClassifyPass(true), true
	case "profile-promote":
		return ProfilePromotePass(), true
	}
	if fp, ok := funcPasses[name]; ok {
		return forAll(fp), true
	}
	return nil, false
}

// LookupFunc resolves a per-function pass name (a legal fixpoint member).
func LookupFunc(name string) (FuncPass, bool) {
	fp, ok := funcPasses[name]
	return fp, ok
}

// Names lists every registered pass name, function-level passes first,
// each sorted.
func Names() []string {
	var fn, mod []string
	for n := range funcPasses {
		fn = append(fn, n)
	}
	sort.Strings(fn)
	mod = []string{"inline", "matsym", "lower", "classify", "classify-additive", "profile-promote"}
	return append(fn, mod...)
}

// Describe returns the one-line description of a registered pass.
func Describe(name string) string {
	if fp, ok := funcPasses[name]; ok {
		return fp.Desc
	}
	if p, ok := modulePass(name); ok {
		return p.Desc
	}
	return ""
}
