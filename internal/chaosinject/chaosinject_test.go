package chaosinject

import (
	"context"
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() = true before any Parse")
	}
	MaybePanic("worker") // must not panic
	if err := SlowChunk(context.Background()); err != nil {
		t.Fatalf("SlowChunk disarmed: %v", err)
	}
	if QueueSaturated() {
		t.Fatal("QueueSaturated() = true while disarmed")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"panic-every", "panic-every=0", "panic-every=x",
		"slow-chunk=", "slow-chunk=-1ms", "slow-chunk=fast",
		"queue-saturate=yes", "unknown-fault", "panic-every=2,bogus",
	} {
		Reset()
		if err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestPanicEvery(t *testing.T) {
	defer Reset()
	Reset()
	if err := Parse("panic-every=3"); err != nil {
		t.Fatal(err)
	}
	panics := 0
	for i := 0; i < 9; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(Panic); !ok {
						t.Fatalf("recovered %T, want chaosinject.Panic", r)
					}
					panics++
				}
			}()
			MaybePanic("worker")
		}()
	}
	if panics != 3 {
		t.Fatalf("9 calls at panic-every=3: got %d panics, want 3", panics)
	}
}

func TestSlowChunkHonorsContext(t *testing.T) {
	defer Reset()
	Reset()
	if err := Parse("slow-chunk=10s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := SlowChunk(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("SlowChunk under a 10ms deadline: err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("SlowChunk ignored the context, slept %v", d)
	}
}

func TestQueueSaturate(t *testing.T) {
	defer Reset()
	Reset()
	if err := Parse("queue-saturate"); err != nil {
		t.Fatal(err)
	}
	if !QueueSaturated() {
		t.Fatal("QueueSaturated() = false after arming queue-saturate")
	}
}

func TestCombinedSpec(t *testing.T) {
	defer Reset()
	Reset()
	if err := Parse("panic-every=2, slow-chunk=1ms ,queue-saturate"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() || !QueueSaturated() {
		t.Fatal("combined spec did not arm every fault")
	}
	if err := SlowChunk(context.Background()); err != nil {
		t.Fatalf("SlowChunk armed, live ctx: %v", err)
	}
}
