// Package chaosinject is the fault-injection layer behind elag-serve's
// chaos test suite. It is always compiled — there is no build tag to
// forget — but every injection point collapses to one relaxed atomic
// load when nothing is armed, so the production hot path pays a branch
// and nothing else.
//
// Faults are armed from a single spec string (the -chaos flag):
//
//	panic-every=N     panic at the worker injection point on every Nth
//	                  job (simulating a crashing simulation kernel)
//	slow-chunk=DUR    sleep DUR at every chunk boundary (simulating a
//	                  degraded host; exercises deadline enforcement)
//	queue-saturate    report the job queue as full at admission
//	                  (exercises 429 + Retry-After backpressure)
//
// Multiple faults are comma-separated: "panic-every=3,slow-chunk=5ms".
// The zero state injects nothing; Reset restores it (tests only).
package chaosinject

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Panic is the value thrown by MaybePanic, so recovery code (and tests)
// can tell injected crashes from real ones.
type Panic struct {
	// Site names the injection point that fired (e.g. "worker").
	Site string
	// N is the 1-based count of MaybePanic calls at that site so far.
	N int64
}

func (p Panic) String() string {
	return fmt.Sprintf("chaosinject: injected panic at %s (call %d)", p.Site, p.N)
}

var (
	armed       atomic.Bool  // fast-path gate: false ⇒ all points are no-ops
	panicEvery  atomic.Int64 // panic on every Nth MaybePanic call (0 = off)
	panicCalls  atomic.Int64 // MaybePanic call counter
	slowChunkNs atomic.Int64 // per-chunk sleep in nanoseconds (0 = off)
	queueSat    atomic.Bool  // report the queue as full at admission
	armedSpec   atomic.Value // string: the spec Parse armed ("" = none)
)

// Parse arms the faults named by spec (see the package comment for the
// grammar). An empty spec arms nothing. Parse is not atomic with respect
// to running injection points; arm faults before serving traffic.
func Parse(spec string) error {
	if spec == "" {
		return nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(field), "=")
		switch key {
		case "panic-every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("chaosinject: panic-every wants a positive count, got %q", val)
			}
			panicEvery.Store(n)
		case "slow-chunk":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return fmt.Errorf("chaosinject: slow-chunk wants a positive duration, got %q", val)
			}
			slowChunkNs.Store(int64(d))
		case "queue-saturate":
			if hasVal {
				return fmt.Errorf("chaosinject: queue-saturate takes no value, got %q", val)
			}
			queueSat.Store(true)
		default:
			return fmt.Errorf("chaosinject: unknown fault %q (want panic-every=N, slow-chunk=DUR, queue-saturate)", key)
		}
	}
	armed.Store(true)
	armedSpec.Store(spec)
	return nil
}

// Enabled reports whether any fault is armed.
func Enabled() bool { return armed.Load() }

// Spec returns the fault spec Parse armed, or "" when nothing is armed —
// so operational surfaces (/v1/stats, /metrics) can say WHICH faults a
// chaos drill is running, not just that one is.
func Spec() string {
	if !armed.Load() {
		return ""
	}
	s, _ := armedSpec.Load().(string)
	return s
}

// Reset disarms every fault and zeroes the counters. For tests.
func Reset() {
	armed.Store(false)
	panicEvery.Store(0)
	panicCalls.Store(0)
	slowChunkNs.Store(0)
	queueSat.Store(false)
	armedSpec.Store("")
}

// MaybePanic panics with a Panic value when panic-every=N is armed and
// this is the Nth, 2Nth, ... call. Place it where a real fault would
// surface — the top of a worker's job execution.
func MaybePanic(site string) {
	if !armed.Load() {
		return
	}
	n := panicEvery.Load()
	if n <= 0 {
		return
	}
	if c := panicCalls.Add(1); c%n == 0 {
		panic(Panic{Site: site, N: c})
	}
}

// SlowChunk sleeps the armed slow-chunk duration, returning early (with
// the context's error) if ctx expires first — so an injected slowdown
// still honors job deadlines, exactly like a real one. No-op when
// disarmed; returns nil then.
func SlowChunk(ctx context.Context) error {
	if !armed.Load() {
		return nil
	}
	ns := slowChunkNs.Load()
	if ns <= 0 {
		return nil
	}
	t := time.NewTimer(time.Duration(ns))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// QueueSaturated reports whether admission should pretend the job queue
// is full regardless of its true depth.
func QueueSaturated() bool {
	return armed.Load() && queueSat.Load()
}
