package mcc

import "fmt"

// parser is a recursive-descent parser for MC.
type parser struct {
	toks    []token
	pos     int
	structs map[string]*structType
	f       *file
}

func parse(src string) (*file, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: map[string]*structType{}, f: &file{}}
	if err := p.file(); err != nil {
		return nil, err
	}
	return p.f, nil
}

// tok clamps to the trailing tEOF token: error paths may leave the
// position one past it, and truncated input must read as end-of-file,
// not as an index panic.
func (p *parser) tok() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}
func (p *parser) line() srcPos { return p.tok().srcPos() }
func (p *parser) advance() token {
	t := p.tok()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.tok()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) at(text string) bool {
	t := p.tok()
	return (t.kind == tPunct || t.kind == tKw) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.describe())
	}
	return nil
}

func (p *parser) describe() string {
	t := p.tok()
	switch t.kind {
	case tEOF:
		return "end of file"
	case tNum:
		return fmt.Sprintf("%d", t.num)
	default:
		return t.text
	}
}

// atType reports whether the current token begins a type.
func (p *parser) atType() bool {
	return p.at("int") || p.at("char") || p.at("void") || p.at("struct")
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	var t *Type
	switch {
	case p.accept("int"):
		t = intType
	case p.accept("char"):
		t = charType
	case p.accept("void"):
		t = voidType
	case p.accept("struct"):
		if p.tok().kind != tIdent {
			return nil, p.errf("expected struct name")
		}
		name := p.advance().text
		st := p.structs[name]
		if st == nil {
			// Forward reference (for self-referential pointers).
			st = &structType{name: name}
			p.structs[name] = st
		}
		t = &Type{kind: tyStruct, st: st}
	default:
		return nil, p.errf("expected type, found %q", p.describe())
	}
	for p.accept("*") {
		t = ptrTo(t)
	}
	return t, nil
}

func (p *parser) file() error {
	for p.tok().kind != tEOF {
		if p.at("struct") && p.pos+2 < len(p.toks) && p.toks[p.pos+2].text == "{" {
			if err := p.structDecl(); err != nil {
				return err
			}
			continue
		}
		if !p.atType() {
			return p.errf("expected declaration, found %q", p.describe())
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		if p.tok().kind != tIdent {
			return p.errf("expected identifier after type")
		}
		line := p.line()
		name := p.advance().text
		if p.at("(") {
			fd, err := p.funcDecl(t, name, line)
			if err != nil {
				return err
			}
			p.f.funcs = append(p.f.funcs, fd)
			continue
		}
		vd, err := p.varDeclTail(t, name, line)
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		p.f.globals = append(p.f.globals, vd)
	}
	return nil
}

func (p *parser) structDecl() error {
	p.advance() // struct
	name := p.advance().text
	st := p.structs[name]
	if st == nil {
		st = &structType{name: name}
		p.structs[name] = st
	} else if len(st.fields) > 0 {
		return p.errf("struct %s redefined", name)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	off := int64(0)
	for !p.accept("}") {
		ft, err := p.parseType()
		if err != nil {
			return err
		}
		for {
			if p.tok().kind != tIdent {
				return p.errf("expected field name")
			}
			fname := p.advance().text
			fty := ft
			if p.accept("[") {
				if p.tok().kind != tNum {
					return p.errf("expected array length")
				}
				n := p.advance().num
				if err := p.expect("]"); err != nil {
					return err
				}
				fty = arrayOf(ft, n)
			}
			al := align(fty)
			off = (off + al - 1) &^ (al - 1)
			st.fields = append(st.fields, structField{name: fname, typ: fty, off: off})
			off += fty.size()
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	st.size = (off + 7) &^ 7
	p.f.structs = append(p.f.structs, st)
	return nil
}

func align(t *Type) int64 {
	switch t.kind {
	case tyChar:
		return 1
	case tyArray:
		return align(t.elem)
	case tyStruct:
		return 8
	}
	return 8
}

// varDeclTail parses the rest of a variable declaration after "type name":
// optional array dimensions and an initializer.
func (p *parser) varDeclTail(t *Type, name string, line srcPos) (*varDecl, error) {
	var dims []int64
	for p.accept("[") {
		if p.tok().kind != tNum {
			return nil, p.errf("expected constant array length")
		}
		dims = append(dims, p.advance().num)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = arrayOf(t, dims[i])
	}
	vd := &varDecl{line: line, name: name, typ: t}
	if p.accept("=") {
		if p.accept("{") {
			for !p.accept("}") {
				e, err := p.assignExprP()
				if err != nil {
					return nil, err
				}
				vd.initList = append(vd.initList, e)
				if !p.accept(",") && !p.at("}") {
					return nil, p.errf("expected ',' or '}' in initializer")
				}
			}
		} else {
			e, err := p.assignExprP()
			if err != nil {
				return nil, err
			}
			vd.init = e
		}
	}
	return vd, nil
}

func (p *parser) funcDecl(ret *Type, name string, line srcPos) (*funcDecl, error) {
	fd := &funcDecl{line: line, name: name, ret: ret}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		if p.at("void") && p.toks[p.pos+1].text == ")" {
			p.advance()
			p.advance()
		} else {
			for {
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if p.tok().kind != tIdent {
					return nil, p.errf("expected parameter name")
				}
				pname := p.advance().text
				if p.accept("[") {
					if err := p.expect("]"); err != nil {
						return nil, err
					}
					pt = ptrTo(pt)
				}
				fd.params = append(fd.params, param{name: pname, typ: pt})
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.body = body
	return fd, nil
}

func (p *parser) block() (*blockStmt, error) {
	line := p.line()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{line: line}
	for !p.accept("}") {
		if p.tok().kind == tEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (stmt, error) {
	line := p.line()
	switch {
	case p.at("{"):
		return p.block()

	case p.atType():
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.tok().kind != tIdent {
			return nil, p.errf("expected variable name")
		}
		name := p.advance().text
		vd, err := p.varDeclTail(t, name, line)
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &declStmt{line: line, d: vd}, nil

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.exprP()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{line: line, cond: cond, then: then}
		if p.accept("else") {
			s.els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.exprP()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &whileStmt{line: line, cond: cond, body: body}, nil

	case p.accept("do"):
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.exprP()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &whileStmt{line: line, cond: cond, body: body, post: true}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &forStmt{line: line}
		if !p.accept(";") {
			if p.atType() {
				t, err := p.parseType()
				if err != nil {
					return nil, err
				}
				name := p.advance().text
				vd, err := p.varDeclTail(t, name, line)
				if err != nil {
					return nil, err
				}
				s.init = &declStmt{line: line, d: vd}
			} else {
				e, err := p.exprP()
				if err != nil {
					return nil, err
				}
				s.init = &exprStmt{line: line, x: e}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			var err error
			s.cond, err = p.exprP()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(")") {
			var err error
			s.post, err = p.exprP()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil

	case p.accept("switch"):
		return p.switchStmt(line)

	case p.accept("return"):
		s := &returnStmt{line: line}
		if !p.accept(";") {
			var err error
			s.x, err = p.exprP()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return s, nil

	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &breakStmt{line: line}, nil

	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &continueStmt{line: line}, nil

	case p.accept(";"):
		return &blockStmt{line: line}, nil
	}

	e, err := p.exprP()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &exprStmt{line: line, x: e}, nil
}

// switchStmt parses switch (expr) { case K: ... default: ... } with C
// fallthrough semantics. Case labels must be integer constant expressions.
func (p *parser) switchStmt(line srcPos) (stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.exprP()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	s := &switchStmt{line: line, cond: cond, defIdx: -1}
	for !p.accept("}") {
		cline := p.line()
		var c switchCase
		c.line = cline
		switch {
		case p.accept("case"):
			for {
				v, err := p.constLabel()
				if err != nil {
					return nil, err
				}
				c.vals = append(c.vals, v)
				if err := p.expect(":"); err != nil {
					return nil, err
				}
				// Adjacent labels share one arm: case 1: case 2: ...
				if !p.accept("case") {
					break
				}
			}
		case p.accept("default"):
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			if s.defIdx >= 0 {
				return nil, p.errf("multiple default arms")
			}
			s.defIdx = len(s.cases)
		default:
			return nil, p.errf("expected 'case' or 'default' in switch, found %q", p.describe())
		}
		for !p.at("case") && !p.at("default") && !p.at("}") {
			if p.tok().kind == tEOF {
				return nil, p.errf("unexpected end of file in switch")
			}
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			c.body = append(c.body, st)
		}
		s.cases = append(s.cases, c)
	}
	return s, nil
}

// constLabel parses an integer constant expression for a case label:
// literals, character constants, optional unary minus.
func (p *parser) constLabel() (int64, error) {
	neg := p.accept("-")
	t := p.tok()
	if t.kind != tNum {
		return 0, p.errf("case label must be an integer constant")
	}
	p.advance()
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}

// ---- expressions (precedence climbing) ----

func (p *parser) exprP() (expr, error) { return p.assignExprP() }

func (p *parser) assignExprP() (expr, error) {
	lhs, err := p.condExprP()
	if err != nil {
		return nil, err
	}
	for _, op := range [...]string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		if p.at(op) {
			line := p.line()
			p.advance()
			rhs, err := p.assignExprP()
			if err != nil {
				return nil, err
			}
			return &assignExpr{line: line, op: op, lhs: lhs, rhs: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) condExprP() (expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.at("?") {
		line := p.line()
		p.advance()
		x, err := p.exprP()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		y, err := p.condExprP()
		if err != nil {
			return nil, err
		}
		return &condExpr{line: line, cond: c, x: x, y: y}, nil
	}
	return c, nil
}

var precTable = [...][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (expr, error) {
	if level >= len(precTable) {
		return p.unary()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precTable[level] {
			if p.at(op) {
				line := p.line()
				p.advance()
				rhs, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &binaryExpr{line: line, op: op, x: lhs, y: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unary() (expr, error) {
	line := p.line()
	switch {
	case p.accept("-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "-", x: x}, nil
	case p.accept("!"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "!", x: x}, nil
	case p.accept("~"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "~", x: x}, nil
	case p.accept("&"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "&", x: x}, nil
	case p.accept("*"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "*", x: x}, nil
	case p.accept("++"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &incDecExpr{line: line, x: x}, nil
	case p.accept("--"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &incDecExpr{line: line, x: x, dec: true}, nil
	case p.accept("sizeof"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &sizeofExpr{line: line, typ: t}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.line()
		switch {
		case p.accept("["):
			idx, err := p.exprP()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &indexExpr{line: line, x: x, idx: idx}
		case p.accept("."):
			if p.tok().kind != tIdent {
				return nil, p.errf("expected field name after '.'")
			}
			x = &memberExpr{line: line, x: x, name: p.advance().text}
		case p.accept("->"):
			if p.tok().kind != tIdent {
				return nil, p.errf("expected field name after '->'")
			}
			x = &memberExpr{line: line, x: x, name: p.advance().text, arrow: true}
		case p.accept("++"):
			x = &incDecExpr{line: line, x: x, post: true}
		case p.accept("--"):
			x = &incDecExpr{line: line, x: x, dec: true, post: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.tok()
	switch t.kind {
	case tNum:
		p.advance()
		return &numLit{line: t.srcPos(), val: t.num}, nil
	case tStr:
		p.advance()
		return &strLit{line: t.srcPos(), val: t.text}, nil
	case tIdent:
		p.advance()
		if p.at("(") {
			p.advance()
			c := &callExpr{line: t.srcPos(), name: t.text}
			if !p.accept(")") {
				for {
					a, err := p.assignExprP()
					if err != nil {
						return nil, err
					}
					c.args = append(c.args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return c, nil
		}
		return &identExpr{line: t.srcPos(), name: t.text}, nil
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.exprP()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", p.describe())
}
