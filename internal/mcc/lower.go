package mcc

import (
	"encoding/binary"
	"fmt"

	"elag/internal/ir"
	"elag/internal/isa"
)

// lowerer translates a parsed MC file into an ir.Module.
type lowerer struct {
	file     *file
	m        *ir.Module
	fds      map[string]*funcDecl
	globals  map[string]*Type
	strCount int

	// per-function state
	f         *ir.Func
	fd        *funcDecl
	cur       *ir.Block
	scopes    []map[string]*local
	breaks    []*ir.Block
	conts     []*ir.Block
	addrTaken map[string]bool
}

type local struct {
	name  string
	typ   *Type
	reg   ir.VReg
	slot  int
	inMem bool
}

// Compile parses and lowers MC source to an IR module.
func Compile(src string) (*ir.Module, error) {
	f, err := parse(src)
	if err != nil {
		return nil, err
	}
	lo := &lowerer{
		file:    f,
		m:       &ir.Module{},
		fds:     map[string]*funcDecl{},
		globals: map[string]*Type{},
	}
	for _, fd := range f.funcs {
		if lo.fds[fd.name] != nil {
			return nil, errAt(fd.line, "function %s redefined", fd.name)
		}
		lo.fds[fd.name] = fd
	}
	if lo.fds["main"] == nil {
		return nil, &Error{Line: 1, Msg: "no main function"}
	}
	for _, g := range f.globals {
		if err := lo.lowerGlobal(g); err != nil {
			return nil, err
		}
	}
	for _, fd := range f.funcs {
		if err := lo.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	return lo.m, nil
}

func errAt(at srcPos, format string, args ...any) error {
	return &Error{Line: at.line, Col: at.col, Msg: fmt.Sprintf(format, args...)}
}

// ---- globals ----

// constInit evaluates a constant initializer expression: a plain constant
// or the address of a global (+/- constant).
func (lo *lowerer) constInit(e expr) (val int64, sym string, err error) {
	switch x := e.(type) {
	case *numLit:
		return x.val, "", nil
	case *sizeofExpr:
		return x.typ.size(), "", nil
	case *unaryExpr:
		if x.op == "-" {
			v, s, err := lo.constInit(x.x)
			if err != nil || s != "" {
				return 0, "", errAt(x.line, "bad constant initializer")
			}
			return -v, "", nil
		}
		if x.op == "&" {
			if id, ok := x.x.(*identExpr); ok {
				if _, ok := lo.globals[id.name]; ok {
					return 0, id.name, nil
				}
			}
		}
		return 0, "", errAt(x.line, "bad constant initializer")
	case *strLit:
		name := lo.internString(x.val)
		return 0, name, nil
	case *identExpr:
		if t, ok := lo.globals[x.name]; ok && t.isArray() {
			return 0, x.name, nil
		}
		return 0, "", errAt(x.line, "initializer must be constant")
	case *binaryExpr:
		a, sa, err := lo.constInit(x.x)
		if err != nil {
			return 0, "", err
		}
		b, sb, err := lo.constInit(x.y)
		if err != nil {
			return 0, "", err
		}
		if sa != "" || sb != "" {
			return 0, "", errAt(x.line, "bad constant address arithmetic")
		}
		switch x.op {
		case "+":
			return a + b, "", nil
		case "-":
			return a - b, "", nil
		case "*":
			return a * b, "", nil
		case "/":
			if b == 0 {
				return 0, "", errAt(x.line, "division by zero in initializer")
			}
			return a / b, "", nil
		case "<<":
			return a << uint64(b), "", nil
		}
		return 0, "", errAt(x.line, "bad constant initializer")
	}
	return 0, "", errAt(e.exprLine(), "initializer must be constant")
}

func (lo *lowerer) lowerGlobal(g *varDecl) error {
	if _, dup := lo.globals[g.name]; dup {
		return errAt(g.line, "global %s redefined", g.name)
	}
	lo.globals[g.name] = g.typ
	obj := &ir.Global{Name: g.name, Size: g.typ.size()}
	if obj.Size == 0 {
		return errAt(g.line, "global %s has zero size", g.name)
	}
	put := func(off int64, width int64, v int64, sym string) {
		if sym != "" {
			obj.Addrs = append(obj.Addrs, ir.AddrInit{Off: off, Sym: sym, Add: v})
			return
		}
		for int64(len(obj.Init)) < off+width {
			obj.Init = append(obj.Init, 0)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		copy(obj.Init[off:off+width], buf[:width])
	}
	switch {
	case g.init != nil:
		v, sym, err := lo.constInit(g.init)
		if err != nil {
			return err
		}
		put(0, g.typ.size(), v, sym)
	case g.initList != nil:
		if !g.typ.isArray() {
			return errAt(g.line, "initializer list on non-array")
		}
		es := g.typ.elem.size()
		for i, e := range g.initList {
			v, sym, err := lo.constInit(e)
			if err != nil {
				return err
			}
			put(int64(i)*es, es, v, sym)
		}
	}
	lo.m.Globals = append(lo.m.Globals, obj)
	return nil
}

func (lo *lowerer) internString(s string) string {
	name := fmt.Sprintf("str$%d", lo.strCount)
	lo.strCount++
	data := append([]byte(s), 0)
	lo.m.Globals = append(lo.m.Globals, &ir.Global{
		Name: name, Size: int64(len(data)), Init: data,
	})
	lo.globals[name] = arrayOf(charType, int64(len(data)))
	return name
}

// ---- functions ----

// markAddrTaken walks the body finding &name on locals, plus array/struct
// declarations (which always live in memory).
func markAddrTaken(s stmt, taken map[string]bool) {
	var walkE func(e expr)
	walkE = func(e expr) {
		switch x := e.(type) {
		case *unaryExpr:
			if x.op == "&" {
				if id, ok := x.x.(*identExpr); ok {
					taken[id.name] = true
				}
			}
			walkE(x.x)
		case *binaryExpr:
			walkE(x.x)
			walkE(x.y)
		case *assignExpr:
			walkE(x.lhs)
			walkE(x.rhs)
		case *condExpr:
			walkE(x.cond)
			walkE(x.x)
			walkE(x.y)
		case *callExpr:
			for _, a := range x.args {
				walkE(a)
			}
		case *indexExpr:
			walkE(x.x)
			walkE(x.idx)
		case *memberExpr:
			walkE(x.x)
		case *incDecExpr:
			walkE(x.x)
		}
	}
	var walkS func(s stmt)
	walkS = func(s stmt) {
		switch x := s.(type) {
		case *blockStmt:
			for _, c := range x.stmts {
				walkS(c)
			}
		case *exprStmt:
			walkE(x.x)
		case *declStmt:
			if x.d.typ.isArray() || x.d.typ.kind == tyStruct {
				taken[x.d.name] = true
			}
			if x.d.init != nil {
				walkE(x.d.init)
			}
			for _, e := range x.d.initList {
				walkE(e)
			}
		case *ifStmt:
			walkE(x.cond)
			walkS(x.then)
			if x.els != nil {
				walkS(x.els)
			}
		case *whileStmt:
			walkE(x.cond)
			walkS(x.body)
		case *forStmt:
			if x.init != nil {
				walkS(x.init)
			}
			if x.cond != nil {
				walkE(x.cond)
			}
			if x.post != nil {
				walkE(x.post)
			}
			walkS(x.body)
		case *switchStmt:
			walkE(x.cond)
			for _, c := range x.cases {
				for _, st := range c.body {
					walkS(st)
				}
			}
		case *returnStmt:
			if x.x != nil {
				walkE(x.x)
			}
		}
	}
	walkS(s)
}

func (lo *lowerer) lowerFunc(fd *funcDecl) error {
	lo.fd = fd
	lo.f = ir.NewFunc(fd.name, len(fd.params))
	lo.cur = lo.f.NewBlock()
	lo.scopes = []map[string]*local{{}}
	lo.breaks, lo.conts = nil, nil
	lo.addrTaken = map[string]bool{}
	markAddrTaken(fd.body, lo.addrTaken)

	for i, p := range fd.params {
		l := &local{name: p.name, typ: p.typ.decayed(), reg: ir.VReg(i)}
		if lo.addrTaken[p.name] {
			// Address-taken parameter: spill to a slot at entry.
			slot := lo.f.NewSlot(p.name, 8)
			st := ir.NewInstr(ir.OpStore)
			st.A = ir.R(ir.VReg(i))
			st.Base = ir.F(slot, 0)
			st.Width = 8
			lo.emit(st)
			l = &local{name: p.name, typ: p.typ.decayed(), slot: slot, inMem: true}
		}
		lo.scopes[0][p.name] = l
	}
	if err := lo.stmt(fd.body); err != nil {
		return err
	}
	// Implicit return.
	if lo.cur.Term() == nil {
		r := ir.NewInstr(ir.OpRet)
		if fd.ret.kind != tyVoid {
			r.A = ir.C(0)
		}
		lo.emit(r)
	}
	lo.f.ComputeCFG()
	lo.m.Funcs = append(lo.m.Funcs, lo.f)
	return nil
}

func (lo *lowerer) emit(in *ir.Instr) {
	if t := lo.cur.Term(); t != nil {
		// Dead code after return/break: collect into an unreachable
		// block (pruned by ComputeCFG).
		lo.cur = lo.f.NewBlock()
	}
	lo.cur.Insts = append(lo.cur.Insts, in)
}

func (lo *lowerer) jumpTo(b *ir.Block) {
	if lo.cur.Term() != nil {
		return
	}
	j := ir.NewInstr(ir.OpJmp)
	j.To = b
	lo.cur.Insts = append(lo.cur.Insts, j)
}

func (lo *lowerer) setBlock(b *ir.Block) { lo.cur = b }

func (lo *lowerer) pushScope() { lo.scopes = append(lo.scopes, map[string]*local{}) }
func (lo *lowerer) popScope()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) lookup(name string) *local {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if l := lo.scopes[i][name]; l != nil {
			return l
		}
	}
	return nil
}

// ---- statements ----

func (lo *lowerer) stmt(s stmt) error {
	switch x := s.(type) {
	case *blockStmt:
		lo.pushScope()
		defer lo.popScope()
		for _, c := range x.stmts {
			if err := lo.stmt(c); err != nil {
				return err
			}
		}
		return nil

	case *exprStmt:
		_, _, err := lo.expr(x.x)
		return err

	case *declStmt:
		return lo.localDecl(x.d)

	case *ifStmt:
		thenB := lo.f.NewBlock()
		elseB := lo.f.NewBlock()
		joinB := elseB
		if x.els != nil {
			joinB = lo.f.NewBlock()
		}
		if err := lo.cond(x.cond, thenB, elseB); err != nil {
			return err
		}
		lo.setBlock(thenB)
		if err := lo.stmt(x.then); err != nil {
			return err
		}
		lo.jumpTo(joinB)
		if x.els != nil {
			lo.setBlock(elseB)
			if err := lo.stmt(x.els); err != nil {
				return err
			}
			lo.jumpTo(joinB)
		}
		lo.setBlock(joinB)
		return nil

	case *whileStmt:
		// Loops with pure conditions are rotated (bottom-tested): an
		// entry guard plus one conditional branch per iteration
		// instead of a top test plus a back jump — standard loop
		// inversion, and it halves the branch-unit pressure of every
		// hot loop. Conditions with side effects keep the top-tested
		// shape so they evaluate exactly once per iteration.
		if x.post || exprIsPure(x.cond) {
			body := lo.f.NewBlock()
			latch := lo.f.NewBlock()
			exit := lo.f.NewBlock()
			if x.post {
				lo.jumpTo(body) // do-while enters the body first
			} else if err := lo.cond(x.cond, body, exit); err != nil {
				return err
			}
			lo.breaks = append(lo.breaks, exit)
			lo.conts = append(lo.conts, latch)
			lo.setBlock(body)
			if err := lo.stmt(x.body); err != nil {
				return err
			}
			lo.jumpTo(latch)
			lo.setBlock(latch)
			if err := lo.cond(x.cond, body, exit); err != nil {
				return err
			}
			lo.breaks = lo.breaks[:len(lo.breaks)-1]
			lo.conts = lo.conts[:len(lo.conts)-1]
			lo.setBlock(exit)
			return nil
		}
		head := lo.f.NewBlock()
		body := lo.f.NewBlock()
		exit := lo.f.NewBlock()
		lo.jumpTo(head)
		lo.setBlock(head)
		if err := lo.cond(x.cond, body, exit); err != nil {
			return err
		}
		lo.breaks = append(lo.breaks, exit)
		lo.conts = append(lo.conts, head)
		lo.setBlock(body)
		if err := lo.stmt(x.body); err != nil {
			return err
		}
		lo.jumpTo(head)
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		lo.setBlock(exit)
		return nil

	case *forStmt:
		lo.pushScope()
		defer lo.popScope()
		if x.init != nil {
			if err := lo.stmt(x.init); err != nil {
				return err
			}
		}
		if x.cond == nil || exprIsPure(x.cond) {
			// Rotated form (see whileStmt above).
			body := lo.f.NewBlock()
			post := lo.f.NewBlock()
			exit := lo.f.NewBlock()
			if x.cond != nil {
				if err := lo.cond(x.cond, body, exit); err != nil {
					return err
				}
			} else {
				lo.jumpTo(body)
			}
			lo.breaks = append(lo.breaks, exit)
			lo.conts = append(lo.conts, post)
			lo.setBlock(body)
			if err := lo.stmt(x.body); err != nil {
				return err
			}
			lo.jumpTo(post)
			lo.setBlock(post)
			if x.post != nil {
				if _, _, err := lo.expr(x.post); err != nil {
					return err
				}
			}
			if x.cond != nil {
				if err := lo.cond(x.cond, body, exit); err != nil {
					return err
				}
			} else {
				lo.jumpTo(body)
			}
			lo.breaks = lo.breaks[:len(lo.breaks)-1]
			lo.conts = lo.conts[:len(lo.conts)-1]
			lo.setBlock(exit)
			return nil
		}
		head := lo.f.NewBlock()
		body := lo.f.NewBlock()
		post := lo.f.NewBlock()
		exit := lo.f.NewBlock()
		lo.jumpTo(head)
		lo.setBlock(head)
		if err := lo.cond(x.cond, body, exit); err != nil {
			return err
		}
		lo.breaks = append(lo.breaks, exit)
		lo.conts = append(lo.conts, post)
		lo.setBlock(body)
		if err := lo.stmt(x.body); err != nil {
			return err
		}
		lo.jumpTo(post)
		lo.setBlock(post)
		if x.post != nil {
			if _, _, err := lo.expr(x.post); err != nil {
				return err
			}
		}
		lo.jumpTo(head)
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		lo.setBlock(exit)
		return nil

	case *switchStmt:
		return lo.switchStmt(x)

	case *returnStmt:
		r := ir.NewInstr(ir.OpRet)
		if x.x != nil {
			o, t, err := lo.expr(x.x)
			if err != nil {
				return err
			}
			_ = t
			r.A = o
		} else if lo.fd.ret.kind != tyVoid {
			return errAt(x.line, "missing return value")
		}
		lo.emit(r)
		return nil

	case *breakStmt:
		if len(lo.breaks) == 0 {
			return errAt(x.line, "break outside loop")
		}
		lo.jumpTo(lo.breaks[len(lo.breaks)-1])
		return nil

	case *continueStmt:
		if len(lo.conts) == 0 {
			return errAt(x.line, "continue outside loop")
		}
		lo.jumpTo(lo.conts[len(lo.conts)-1])
		return nil
	}
	return errAt(s.stmtLine(), "unhandled statement")
}

// switchStmt lowers a C switch: the scrutinee is evaluated once, a
// comparison chain dispatches to the matching arm, and arm bodies fall
// through to the next arm unless they break.
func (lo *lowerer) switchStmt(x *switchStmt) error {
	scrut, st, err := lo.expr(x.cond)
	if err != nil {
		return err
	}
	if !st.isInteger() {
		return errAt(x.line, "switch on non-integer (%s)", st)
	}
	// Pin the scrutinee in a register so the chain compares a stable value.
	sv := lo.f.NewVReg()
	cp := ir.NewInstr(ir.OpCopy)
	cp.Dst = sv
	cp.A = scrut
	lo.emit(cp)

	exit := lo.f.NewBlock()
	arms := make([]*ir.Block, len(x.cases))
	for i := range x.cases {
		arms[i] = lo.f.NewBlock()
	}
	// Dispatch chain: one equality branch per case value.
	for i, c := range x.cases {
		for _, v := range c.vals {
			next := lo.f.NewBlock()
			br := ir.NewInstr(ir.OpBr)
			br.Cond = isa.CondEQ
			br.A, br.B = ir.R(sv), ir.C(v)
			br.Then, br.Else = arms[i], next
			lo.emit(br)
			lo.setBlock(next)
		}
	}
	if x.defIdx >= 0 {
		lo.jumpTo(arms[x.defIdx])
	} else {
		lo.jumpTo(exit)
	}
	// Arm bodies, falling through to the next arm.
	lo.breaks = append(lo.breaks, exit)
	for i, c := range x.cases {
		lo.setBlock(arms[i])
		lo.pushScope()
		for _, st := range c.body {
			if err := lo.stmt(st); err != nil {
				lo.popScope()
				lo.breaks = lo.breaks[:len(lo.breaks)-1]
				return err
			}
		}
		lo.popScope()
		if i+1 < len(arms) {
			lo.jumpTo(arms[i+1])
		} else {
			lo.jumpTo(exit)
		}
	}
	lo.breaks = lo.breaks[:len(lo.breaks)-1]
	lo.setBlock(exit)
	return nil
}

func (lo *lowerer) localDecl(d *varDecl) error {
	if lo.scopes[len(lo.scopes)-1][d.name] != nil {
		return errAt(d.line, "local %s redefined in this scope", d.name)
	}
	var l *local
	if lo.addrTaken[d.name] || d.typ.isArray() || d.typ.kind == tyStruct {
		slot := lo.f.NewSlot(d.name, d.typ.size())
		l = &local{name: d.name, typ: d.typ, slot: slot, inMem: true}
	} else {
		l = &local{name: d.name, typ: d.typ, reg: lo.f.NewVReg()}
	}
	lo.scopes[len(lo.scopes)-1][d.name] = l

	if d.init != nil {
		o, _, err := lo.expr(d.init)
		if err != nil {
			return err
		}
		if l.inMem {
			st := ir.NewInstr(ir.OpStore)
			st.A = o
			st.Base = ir.F(l.slot, 0)
			st.Width = uint8(widthOf(l.typ))
			lo.emit(st)
		} else {
			cp := ir.NewInstr(ir.OpCopy)
			cp.Dst = l.reg
			cp.A = o
			lo.emit(cp)
		}
	} else if !l.inMem {
		// Registers must be defined before use; zero-initialize to
		// keep the IR well-formed (C leaves locals undefined).
		cp := ir.NewInstr(ir.OpCopy)
		cp.Dst = l.reg
		cp.A = ir.C(0)
		lo.emit(cp)
	}
	if d.initList != nil {
		if !l.inMem || !d.typ.isArray() {
			return errAt(d.line, "initializer list on non-array local")
		}
		es := d.typ.elem.size()
		for i, e := range d.initList {
			o, _, err := lo.expr(e)
			if err != nil {
				return err
			}
			st := ir.NewInstr(ir.OpStore)
			st.A = o
			st.Base = ir.F(l.slot, int64(i)*es)
			st.Width = uint8(es)
			lo.emit(st)
		}
	}
	return nil
}

func widthOf(t *Type) int64 {
	if t.kind == tyChar {
		return 1
	}
	return 8
}

// exprIsPure reports whether evaluating e has no side effects, so it may be
// duplicated (loop rotation evaluates the condition at two sites).
func exprIsPure(e expr) bool {
	switch x := e.(type) {
	case *numLit, *strLit, *identExpr, *sizeofExpr:
		return true
	case *unaryExpr:
		return exprIsPure(x.x)
	case *binaryExpr:
		// Division can fault; duplication would be observable only
		// through timing, so it is still pure for this purpose.
		return exprIsPure(x.x) && exprIsPure(x.y)
	case *condExpr:
		return exprIsPure(x.cond) && exprIsPure(x.x) && exprIsPure(x.y)
	case *indexExpr:
		return exprIsPure(x.x) && exprIsPure(x.idx)
	case *memberExpr:
		return exprIsPure(x.x)
	}
	return false // assignments, ++/--, calls
}
