package mcc_test

import (
	"strings"
	"testing"

	"elag/internal/asm"
	"elag/internal/codegen"
	"elag/internal/mcc"
	"elag/internal/opt"
	"elag/internal/passman"
)

// FuzzCompile drives arbitrary text through the whole MC tool chain:
// front end, optimizer, code generator, assembler. The invariants are
// the robustness contract of the chain:
//
//   - The front end never panics: malformed input produces an error.
//   - Whatever the front end accepts, the optimizer and code generator
//     must handle, and the generated assembly must assemble — an
//     internal error anywhere downstream of a successful parse is a
//     compiler bug, not a user error.
func FuzzCompile(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		mod, err := mcc.Compile(src)
		if err != nil {
			return // rejected input is the expected outcome
		}
		if err := passman.Optimize(mod, opt.Options{}); err != nil {
			t.Fatalf("optimizer broke IR invariants: %v\nsource: %q", err, src)
		}
		text, err := codegen.Generate(mod)
		if err != nil {
			// The code generator may reject valid-but-unsupported
			// programs, but only with a real diagnostic.
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatalf("codegen rejected program with empty error")
			}
			return
		}
		if _, err := asm.Assemble(text); err != nil {
			t.Fatalf("generated assembly does not assemble: %v\nsource: %q\nassembly:\n%s",
				err, src, text)
		}
	})
}
