package mcc_test

import (
	"errors"
	"strings"
	"testing"

	"elag/internal/asm"
	"elag/internal/codegen"
	"elag/internal/emu"
	"elag/internal/mcc"
	"elag/internal/opt"
	"elag/internal/passman"
)

// compileRun compiles MC source (optimized) and runs it, returning outputs.
func compileRun(t *testing.T, src string) emu.Result {
	t.Helper()
	mod, err := mcc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := passman.Optimize(mod, opt.Options{}); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	text, err := codegen.Generate(mod)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, text)
	}
	res, err := emu.Run(prog, 10_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, text)
	}
	return res
}

// compileRunUnopt runs the same program without optimizations.
func compileRunUnopt(t *testing.T, src string) emu.Result {
	t.Helper()
	mod, err := mcc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	text, err := codegen.Generate(mod)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := emu.Run(prog, 50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func expectExit(t *testing.T, src string, want int64) {
	t.Helper()
	if res := compileRun(t, src); res.ExitCode != want {
		t.Errorf("exit = %d, want %d", res.ExitCode, want)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	expectExit(t, `int main() { return 2 + 3 * 4 - 10 / 2; }`, 9)
	expectExit(t, `int main() { return (2 + 3) * 4; }`, 20)
	expectExit(t, `int main() { return 7 % 3 + (1 << 4) + (256 >> 2); }`, 81)
	expectExit(t, `int main() { return (12 & 10) | (1 ^ 3); }`, 10)
	expectExit(t, `int main() { return -5 + 8; }`, 3)
	expectExit(t, `int main() { return ~0 + 2; }`, 1)
	expectExit(t, `int main() { return !0 + !5; }`, 1)
}

func TestComparisonsAndLogical(t *testing.T) {
	expectExit(t, `int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }`, 4)
	expectExit(t, `int main() { return (1 && 2) + (0 && 1) + (0 || 3) + (0 || 0); }`, 2)
	// Short circuit: the divide by zero must not execute.
	expectExit(t, `int main() { int z = 0; if (z != 0 && 10 / z > 0) { return 1; } return 7; }`, 7)
	expectExit(t, `int main() { return 1 ? 42 : 7; }`, 42)
	expectExit(t, `int main() { return 0 ? 42 : 7; }`, 7)
}

func TestControlFlow(t *testing.T) {
	expectExit(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) { s += i; }
	return s;
}`, 45)
	expectExit(t, `
int main() {
	int s = 0;
	int i = 0;
	while (i < 5) { s += i * i; i++; }
	return s;
}`, 30)
	expectExit(t, `
int main() {
	int s = 0;
	int i = 0;
	do { s += 1; i++; } while (i < 3);
	return s;
}`, 3)
	expectExit(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 100; i++) {
		if (i == 5) { continue; }
		if (i == 8) { break; }
		s += i;
	}
	return s;
}`, 0+1+2+3+4+6+7)
	expectExit(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 4; j++) {
			s += i * j;
		}
	}
	return s;
}`, 18)
}

func TestDoWhileRunsBodyFirst(t *testing.T) {
	expectExit(t, `
int main() {
	int n = 0;
	do { n++; } while (0);
	return n;
}`, 1)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`, 144)
	expectExit(t, `
int add3(int a, int b, int c) { return a + b + c; }
int main() { return add3(1, add3(2, 3, 4), 5); }`, 15)
	expectExit(t, `
void bump(int *p) { *p = *p + 1; }
int main() { int x = 41; bump(&x); return x; }`, 42)
}

func TestGlobalsAndInitializers(t *testing.T) {
	expectExit(t, `
int g = 42;
int main() { return g; }`, 42)
	expectExit(t, `
int tab[4] = {10, 20, 30, 40};
int main() { return tab[0] + tab[3]; }`, 50)
	expectExit(t, `
int a = 5;
int *p = &a;
int main() { return *p; }`, 5)
	expectExit(t, `
char msg[6] = {104, 105, 0};
int main() { return msg[0] + msg[1]; }`, 209)
	expectExit(t, `
int big[100];
int main() {
	for (int i = 0; i < 100; i++) { big[i] = i; }
	return big[99];
}`, 99)
}

func TestPointersAndArrays(t *testing.T) {
	expectExit(t, `
int arr[10];
int main() {
	int *p = arr;
	for (int i = 0; i < 10; i++) { *p = i * 2; p = p + 1; }
	return arr[7];
}`, 14)
	expectExit(t, `
int arr[10];
int main() {
	int *p = &arr[9];
	int *q = &arr[2];
	return p - q;
}`, 7)
	expectExit(t, `
int main() {
	int local[8];
	for (int i = 0; i < 8; i++) { local[i] = i * i; }
	return local[5];
}`, 25)
	expectExit(t, `
int m[3][4];
int main() {
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
	}
	return m[2][3];
}`, 23)
}

func TestStructs(t *testing.T) {
	expectExit(t, `
struct point { int x; int y; };
struct point p;
int main() {
	p.x = 3;
	p.y = 4;
	return p.x * p.x + p.y * p.y;
}`, 25)
	expectExit(t, `
struct node { int val; struct node *next; };
struct node a;
struct node b;
int main() {
	a.val = 1;
	b.val = 2;
	a.next = &b;
	b.next = 0;
	int s = 0;
	struct node *p = &a;
	while (p) { s += p->val; p = p->next; }
	return s;
}`, 3)
	expectExit(t, `
struct wide { int a; char c; int b[3]; };
int main() {
	struct wide w;
	w.a = 1;
	w.c = 7;
	w.b[2] = 100;
	return w.a + w.c + w.b[2];
}`, 108)
}

func TestCharsAndStrings(t *testing.T) {
	expectExit(t, `
int main() { return 'A'; }`, 65)
	expectExit(t, `
int len(char *s) {
	int n = 0;
	while (s[n]) { n++; }
	return n;
}
int main() { return len("hello"); }`, 5)
	expectExit(t, `
char buf[16];
int main() {
	buf[0] = 200;
	char c = buf[0];
	if (c < 0) { return 1; }  /* chars are signed */
	return 0;
}`, 1)
}

func TestIncDec(t *testing.T) {
	expectExit(t, `int main() { int i = 5; int a = i++; return a * 100 + i; }`, 506)
	expectExit(t, `int main() { int i = 5; int a = ++i; return a * 100 + i; }`, 606)
	expectExit(t, `int main() { int i = 5; int a = i--; return a * 100 + i; }`, 504)
	expectExit(t, `
int arr[4] = {1, 2, 3, 4};
int main() {
	int *p = arr;
	int a = *p;
	p++;
	return a * 10 + *p;
}`, 12)
}

func TestCompoundAssign(t *testing.T) {
	expectExit(t, `
int main() {
	int x = 10;
	x += 5; x -= 3; x *= 2; x /= 4; x %= 4;  /* ((10+5-3)*2/4)%4 = 2 */
	x <<= 4; x >>= 2; x |= 1; x ^= 3; x &= 14;  /* ((2<<4>>2)|1)^3 & 14 = 10 */
	return x;
}`, 10)
}

func TestSizeof(t *testing.T) {
	expectExit(t, `
struct s { int a; int b; char c; };
int main() { return sizeof(int) + sizeof(char) + sizeof(int*) + sizeof(struct s); }`, 8+1+8+24)
}

func TestPrintBuiltins(t *testing.T) {
	res := compileRun(t, `
int main() {
	print_int(123);
	print_int(-9);
	print_char(88);
	return 0;
}`)
	if len(res.IntOut) != 2 || res.IntOut[0] != 123 || res.IntOut[1] != -9 {
		t.Errorf("int out = %v", res.IntOut)
	}
	if string(res.CharOut) != "X" {
		t.Errorf("char out = %q", res.CharOut)
	}
}

// TestOptimizedMatchesUnoptimized is the key compiler-correctness property:
// classical optimizations must preserve observable behaviour.
func TestOptimizedMatchesUnoptimized(t *testing.T) {
	srcs := []string{
		`
int tab[64];
int main() {
	int s = 0;
	for (int i = 0; i < 64; i++) { tab[i] = i * 3 + 1; }
	for (int i = 0; i < 64; i++) { s += tab[i] * tab[63 - i]; }
	print_int(s);
	return s & 1023;
}`,
		`
struct n { int v; struct n *nx; };
struct n pool[32];
int main() {
	for (int i = 0; i < 31; i++) { pool[i].v = i; pool[i].nx = &pool[i + 1]; }
	pool[31].v = 31;
	pool[31].nx = 0;
	int s = 0;
	struct n *p = &pool[0];
	while (p) { s += p->v; p = p->nx; }
	print_int(s);
	return s & 255;
}`,
		`
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int sq(int x) { return x * x; }
int main() {
	print_int(fact(10));
	print_int(sq(sq(3)));
	return 0;
}`,
	}
	for i, src := range srcs {
		a := compileRun(t, src)
		b := compileRunUnopt(t, src)
		if a.Output() != b.Output() {
			t.Errorf("program %d: optimized output %s != unoptimized %s", i, a.Output(), b.Output())
		}
		if a.DynamicInsts >= b.DynamicInsts {
			t.Errorf("program %d: optimizations did not shrink execution: %d >= %d",
				i, a.DynamicInsts, b.DynamicInsts)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`int main() { return x; }`, "undefined variable"},
		{`int main() { return f(); }`, "undefined function"},
		{`int main() { 3 = 4; }`, "not assignable"},
		{`int main() { return 1 + ; }`, "unexpected token"},
		{`int main() { break; }`, "break outside loop"},
		{`int f(int a) { return a; } int main() { return f(1, 2); }`, "argument"},
		{`int main() { int x; int x; return 0; }`, "redefined"},
		{`struct s { int a; }; int main() { struct s v; return v.b; }`, "no field"},
		{`int main() { int p; return *p; }`, "non-pointer"},
		{`int g() { return 1; }`, "no main"},
		{`int main() { return 0 `, "end of file"},
	}
	for _, c := range cases {
		_, err := mcc.Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error with %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Compile(%q) error %q, want substring %q", c.src, err, c.frag)
		}
	}
}

// TestErrorPositions: diagnostics from every front-end stage — lexer,
// parser, lowering — must carry the exact line:col of the offending token
// (columns are 1-based byte offsets into the line). Declaration-level
// diagnostics with no meaningful column carry Col 0 and render in the
// legacy line-only form.
func TestErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{"lexer bad char", "int main() {\n\tint y = @;\n}", 2, 10},
		{"lexer unterminated comment", "/* never closed", 1, 15},
		{"parser bad expression", "int main() { return 1 + ; }", 1, 25},
		{"parser missing semicolon", "int main() { return 0 ", 1, 23},
		{"lowering undefined variable", "int main() {\n\treturn x;\n}", 2, 9},
		{"lowering arity mismatch",
			"int f(int a) { return a; }\nint main() {\n\treturn f(1, 2);\n}", 3, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := mcc.Compile(c.src)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded", c.src)
			}
			var me *mcc.Error
			if !errors.As(err, &me) {
				t.Fatalf("error %v is not a *mcc.Error", err)
			}
			if me.Line != c.line || me.Col != c.col {
				t.Errorf("position %d:%d, want %d:%d (%v)", me.Line, me.Col, c.line, c.col, err)
			}
		})
	}

	// Whole-declaration diagnostics have no column.
	_, err := mcc.Compile("int g() { return 1; }")
	var me *mcc.Error
	if !errors.As(err, &me) {
		t.Fatalf("error %v is not a *mcc.Error", err)
	}
	if me.Col != 0 {
		t.Errorf("declaration-level diagnostic carries column %d", me.Col)
	}
	if got := err.Error(); strings.Contains(got, ":0:") {
		t.Errorf("column-less diagnostic rendered a column: %q", got)
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	expectExit(t, `
// line comment
/* block
   comment */
int main() {
	int hex = 0x10;   // 16
	int ch = '\n';    // 10
	return hex + ch;  /* 26 */
}`, 26)
}

func TestSwitchStatement(t *testing.T) {
	expectExit(t, `
int classify(int x) {
	switch (x) {
	case 0:
		return 100;
	case 1:
	case 2:
		return 200;
	case -3:
		return 300;
	default:
		return 400;
	}
}
int main() {
	return classify(0) / 100 + classify(1) / 100 + classify(2) / 100 +
		classify(-3) / 100 + classify(99) / 100;   /* 1+2+2+3+4 */
}`, 12)
}

func TestSwitchFallthrough(t *testing.T) {
	expectExit(t, `
int main() {
	int n = 0;
	switch (2) {
	case 1:
		n += 1;
	case 2:
		n += 10;     /* entered here */
	case 3:
		n += 100;    /* falls through */
		break;
	case 4:
		n += 1000;   /* not reached: break above */
	}
	return n;
}`, 110)
}

func TestSwitchNoDefaultFallsOut(t *testing.T) {
	expectExit(t, `
int main() {
	int n = 7;
	switch (n) {
	case 1:
		return 1;
	}
	return 42;
}`, 42)
}

func TestSwitchInLoopWithBreak(t *testing.T) {
	expectExit(t, `
int code[8] = {0, 1, 2, 0, 1, 2, 3, 3};
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) {
		switch (code[i]) {
		case 0:
			s += 1;
			break;
		case 1:
			s += 10;
			break;
		case 2:
			s += 100;
			break;
		default:
			s += 1000;
			break;
		}
	}
	return s;  /* 2*1 + 2*10 + 2*100 + 2*1000 */
}`, 2222)
}

func TestSwitchErrors(t *testing.T) {
	cases := []string{
		`int main() { switch (1) { case x: return 0; } }`,
		`int main() { switch (1) { default: return 0; default: return 1; } }`,
		`int main() { switch (1) { return 0; } }`,
	}
	for _, src := range cases {
		if _, err := mcc.Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}
