// Package mcc is a compiler front end for MC, a small C subset, targeting
// the repository's IR. It provides the source language in which the
// SPEC-like and MediaBench-like workloads (package workload) are written,
// standing in for the C front end of the paper's IMPACT toolchain.
//
// MC supports: int (64-bit) and char (8-bit) scalars, pointers, one- and
// multi-dimensional arrays, structs, global and local variables with
// initializers, functions, control flow (if/else, while, do-while, for,
// switch with fallthrough, break, continue, return), the usual C operators including short-circuit && and
// ||, pointer arithmetic, sizeof, string literals, and the output builtins
// print_int and print_char.
package mcc

import (
	"fmt"
	"strings"
)

// Error is a front-end diagnostic with a source position. Col is
// 1-based; 0 means the column is unknown (diagnostics raised against
// whole declarations rather than tokens).
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("mcc: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("mcc: line %d: %s", e.Line, e.Msg)
}

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tPunct // operators and punctuation; value in text
	tKw
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
	col  int // 1-based column of the token's first byte
}

// srcPos is a line:col source position carried by AST nodes.
type srcPos struct {
	line, col int
}

func (t token) srcPos() srcPos { return srcPos{t.line, t.col} }

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "struct": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
	"do": true, "switch": true, "case": true, "default": true,
}

// lexer tokenizes MC source.
type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset where the current line begins
	toks      []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col(l.pos), Msg: fmt.Sprintf(format, args...)}
}

// col converts a byte offset on the current line to a 1-based column.
func (l *lexer) col(pos int) int { return pos - l.lineStart + 1 }

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
					l.lineStart = l.pos + 1
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated block comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line, col: l.col(l.pos)}, nil
	}
	start, line := l.pos, l.line
	col := l.col(start)
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return token{kind: tKw, text: text, line: line, col: col}, nil
		}
		return token{kind: tIdent, text: text, line: line, col: col}, nil

	case isDigit(c):
		base := int64(10)
		if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
			base = 16
			l.pos += 2
		}
		var v int64
		for l.pos < len(l.src) {
			d := digitVal(l.src[l.pos])
			if d < 0 || int64(d) >= base {
				break
			}
			v = v*base + int64(d)
			l.pos++
		}
		return token{kind: tNum, num: v, line: line, col: col}, nil

	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated character literal")
		}
		var v int64
		if l.src[l.pos] == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated character literal")
			}
			e, err := unescape(l.src[l.pos])
			if err != nil {
				return token{}, l.errf("%v", err)
			}
			v = int64(e)
			l.pos++
		} else {
			v = int64(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return token{}, l.errf("unterminated character literal")
		}
		l.pos++
		return token{kind: tNum, num: v, line: line, col: col}, nil

	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			ch := l.src[l.pos]
			if ch == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			if ch == '\\' {
				l.pos++
				if l.pos >= len(l.src) {
					return token{}, l.errf("unterminated string literal")
				}
				e, err := unescape(l.src[l.pos])
				if err != nil {
					return token{}, l.errf("%v", err)
				}
				sb.WriteByte(e)
				l.pos++
				continue
			}
			sb.WriteByte(ch)
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		l.pos++
		return token{kind: tStr, text: sb.String(), line: line, col: col}, nil
	}

	// Punctuation, longest match first.
	for _, p := range [...]string{
		"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
		"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
		"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
		"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
	} {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tPunct, text: p, line: line, col: col}, nil
		}
	}
	return token{}, l.errf("unexpected character %q", c)
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, fmt.Errorf("unknown escape \\%c", c)
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
