package mcc

import (
	"elag/internal/ir"
	"elag/internal/isa"
)

// lval describes an assignable location: either a register-allocated local
// or a memory address (base operand + constant offset).
type lval struct {
	local *local // non-nil for register locals
	base  ir.Operand
	off   int64
	typ   *Type
}

// addr materializes the lvalue's address as an operand.
func (lo *lowerer) addr(lv *lval) (ir.Operand, error) {
	if lv.local != nil {
		return ir.Operand{}, errAt(srcPos{}, "cannot take address of register local %s", lv.local.name)
	}
	switch lv.base.Kind {
	case ir.OpndSym, ir.OpndFrame:
		o := lv.base
		o.Imm += lv.off
		return o, nil
	case ir.OpndReg, ir.OpndConst:
		if lv.off == 0 {
			return lv.base, nil
		}
		t := lo.f.NewVReg()
		add := ir.NewInstr(ir.OpAdd)
		add.Dst = t
		add.A = lv.base
		add.B = ir.C(lv.off)
		lo.emit(add)
		return ir.R(t), nil
	}
	return ir.Operand{}, errAt(srcPos{}, "bad lvalue base")
}

// loadLV reads the lvalue. Arrays and structs yield their address (decay).
func (lo *lowerer) loadLV(lv *lval) (ir.Operand, *Type, error) {
	if lv.typ.isArray() || lv.typ.kind == tyStruct {
		o, err := lo.addr(lv)
		return o, lv.typ.decayed(), err
	}
	if lv.local != nil {
		return ir.R(lv.local.reg), lv.typ, nil
	}
	d := lo.f.NewVReg()
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = d
	ld.Base = lv.base
	ld.Off = lv.off
	ld.Width = uint8(widthOf(lv.typ))
	ld.Signed = lv.typ.kind == tyChar
	lo.emit(ld)
	return ir.R(d), lv.typ, nil
}

// storeLV writes o to the lvalue.
func (lo *lowerer) storeLV(lv *lval, o ir.Operand) error {
	if lv.typ.isArray() || lv.typ.kind == tyStruct {
		return errAt(srcPos{}, "cannot assign to aggregate")
	}
	if lv.local != nil {
		cp := ir.NewInstr(ir.OpCopy)
		cp.Dst = lv.local.reg
		cp.A = o
		lo.emit(cp)
		return nil
	}
	st := ir.NewInstr(ir.OpStore)
	st.A = o
	st.Base = lv.base
	st.Off = lv.off
	st.Width = uint8(widthOf(lv.typ))
	lo.emit(st)
	return nil
}

// lvalue lowers an expression to an assignable location.
func (lo *lowerer) lvalue(e expr) (*lval, error) {
	switch x := e.(type) {
	case *identExpr:
		if l := lo.lookup(x.name); l != nil {
			if l.inMem {
				return &lval{base: ir.F(l.slot, 0), typ: l.typ}, nil
			}
			return &lval{local: l, typ: l.typ}, nil
		}
		if t, ok := lo.globals[x.name]; ok {
			return &lval{base: ir.S(x.name, 0), typ: t}, nil
		}
		return nil, errAt(x.line, "undefined variable %s", x.name)

	case *unaryExpr:
		if x.op != "*" {
			return nil, errAt(x.line, "expression is not assignable")
		}
		o, t, err := lo.expr(x.x)
		if err != nil {
			return nil, err
		}
		if !t.isPtr() {
			return nil, errAt(x.line, "dereference of non-pointer (%s)", t)
		}
		return &lval{base: o, typ: t.elem}, nil

	case *indexExpr:
		o, t, err := lo.expr(x.x)
		if err != nil {
			return nil, err
		}
		if !t.isPtr() {
			return nil, errAt(x.line, "indexing non-pointer (%s)", t)
		}
		elem := t.elem
		if c, isConst := constOf(x.idx); isConst {
			return &lval{base: o, off: c * elem.size(), typ: elem}, nil
		}
		io, it, err := lo.expr(x.idx)
		if err != nil {
			return nil, err
		}
		if !it.isInteger() {
			return nil, errAt(x.line, "array index must be integer")
		}
		scaled := lo.scale(io, elem.size())
		t2 := lo.f.NewVReg()
		add := ir.NewInstr(ir.OpAdd)
		add.Dst = t2
		add.A = o
		add.B = scaled
		lo.emit(add)
		return &lval{base: ir.R(t2), typ: elem}, nil

	case *memberExpr:
		var st *structType
		var base *lval
		if x.arrow {
			o, t, err := lo.expr(x.x)
			if err != nil {
				return nil, err
			}
			if !t.isPtr() || t.elem.kind != tyStruct {
				return nil, errAt(x.line, "-> on non-struct-pointer (%s)", t)
			}
			st = t.elem.st
			base = &lval{base: o, typ: t.elem}
		} else {
			lv, err := lo.lvalue(x.x)
			if err != nil {
				return nil, err
			}
			if lv.typ.kind != tyStruct {
				return nil, errAt(x.line, ". on non-struct (%s)", lv.typ)
			}
			st = lv.typ.st
			base = lv
		}
		for _, f := range st.fields {
			if f.name == x.name {
				return &lval{base: base.base, off: base.off + f.off, typ: f.typ}, nil
			}
		}
		return nil, errAt(x.line, "struct %s has no field %s", st.name, x.name)
	}
	return nil, errAt(e.exprLine(), "expression is not assignable")
}

// constOf recognizes syntactically constant indices (literals and negated
// literals) for direct displacement folding.
func constOf(e expr) (int64, bool) {
	switch x := e.(type) {
	case *numLit:
		return x.val, true
	case *sizeofExpr:
		return x.typ.size(), true
	case *unaryExpr:
		if x.op == "-" {
			if v, ok := constOf(x.x); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

// scale multiplies o by size (pointer arithmetic), emitting no code when
// size is 1.
func (lo *lowerer) scale(o ir.Operand, size int64) ir.Operand {
	if size == 1 {
		return o
	}
	if c, ok := o.IsConst(); ok {
		return ir.C(c * size)
	}
	t := lo.f.NewVReg()
	mul := ir.NewInstr(ir.OpMul)
	mul.Dst = t
	mul.A = o
	mul.B = ir.C(size)
	lo.emit(mul)
	return ir.R(t)
}

var cmpConds = map[string]isa.Cond{
	"==": isa.CondEQ, "!=": isa.CondNE, "<": isa.CondLT,
	"<=": isa.CondLE, ">": isa.CondGT, ">=": isa.CondGE,
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv,
	"%": ir.OpRem, "&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor,
	"<<": ir.OpSll, ">>": ir.OpSra,
}

// cond lowers e as a branch to thenB (true) or elseB (false).
func (lo *lowerer) cond(e expr, thenB, elseB *ir.Block) error {
	switch x := e.(type) {
	case *binaryExpr:
		switch x.op {
		case "&&":
			mid := lo.f.NewBlock()
			if err := lo.cond(x.x, mid, elseB); err != nil {
				return err
			}
			lo.setBlock(mid)
			return lo.cond(x.y, thenB, elseB)
		case "||":
			mid := lo.f.NewBlock()
			if err := lo.cond(x.x, thenB, mid); err != nil {
				return err
			}
			lo.setBlock(mid)
			return lo.cond(x.y, thenB, elseB)
		}
		if c, ok := cmpConds[x.op]; ok {
			a, _, err := lo.expr(x.x)
			if err != nil {
				return err
			}
			b, _, err := lo.expr(x.y)
			if err != nil {
				return err
			}
			br := ir.NewInstr(ir.OpBr)
			br.Cond = c
			br.A, br.B = a, b
			br.Then, br.Else = thenB, elseB
			lo.emit(br)
			return nil
		}
	case *unaryExpr:
		if x.op == "!" {
			return lo.cond(x.x, elseB, thenB)
		}
	}
	o, _, err := lo.expr(e)
	if err != nil {
		return err
	}
	br := ir.NewInstr(ir.OpBr)
	br.Cond = isa.CondNE
	br.A, br.B = o, ir.C(0)
	br.Then, br.Else = thenB, elseB
	lo.emit(br)
	return nil
}

// boolValue materializes a 0/1 value from a conditional expression via the
// standard two-block pattern (the IR has no phi nodes; the destination is
// simply defined on both paths).
func (lo *lowerer) boolValue(e expr) (ir.Operand, *Type, error) {
	d := lo.f.NewVReg()
	tB := lo.f.NewBlock()
	fB := lo.f.NewBlock()
	join := lo.f.NewBlock()
	if err := lo.cond(e, tB, fB); err != nil {
		return ir.Operand{}, nil, err
	}
	lo.setBlock(tB)
	one := ir.NewInstr(ir.OpCopy)
	one.Dst = d
	one.A = ir.C(1)
	lo.emit(one)
	lo.jumpTo(join)
	lo.setBlock(fB)
	zero := ir.NewInstr(ir.OpCopy)
	zero.Dst = d
	zero.A = ir.C(0)
	lo.emit(zero)
	lo.jumpTo(join)
	lo.setBlock(join)
	return ir.R(d), intType, nil
}

// expr lowers an expression to an operand and its type.
func (lo *lowerer) expr(e expr) (ir.Operand, *Type, error) {
	switch x := e.(type) {
	case *numLit:
		return ir.C(x.val), intType, nil

	case *strLit:
		name := lo.internString(x.val)
		return ir.S(name, 0), ptrTo(charType), nil

	case *sizeofExpr:
		return ir.C(x.typ.size()), intType, nil

	case *identExpr:
		lv, err := lo.lvalue(x)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		return lo.loadLV(lv)

	case *indexExpr, *memberExpr:
		lv, err := lo.lvalue(x)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		return lo.loadLV(lv)

	case *unaryExpr:
		switch x.op {
		case "-":
			o, t, err := lo.expr(x.x)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			if c, ok := o.IsConst(); ok {
				return ir.C(-c), t, nil
			}
			d := lo.f.NewVReg()
			sub := ir.NewInstr(ir.OpSub)
			sub.Dst = d
			sub.A = ir.C(0)
			sub.B = o
			lo.emit(sub)
			return ir.R(d), intType, nil
		case "~":
			o, _, err := lo.expr(x.x)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			d := lo.f.NewVReg()
			xor := ir.NewInstr(ir.OpXor)
			xor.Dst = d
			xor.A = o
			xor.B = ir.C(-1)
			lo.emit(xor)
			return ir.R(d), intType, nil
		case "!":
			return lo.boolValue(x)
		case "&":
			lv, err := lo.lvalue(x.x)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			if lv.local != nil {
				return ir.Operand{}, nil, errAt(x.line, "internal: address of register local %s", lv.local.name)
			}
			o, err := lo.addr(lv)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			return o, ptrTo(lv.typ), nil
		case "*":
			lv, err := lo.lvalue(x)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			return lo.loadLV(lv)
		}
		return ir.Operand{}, nil, errAt(x.line, "unhandled unary %q", x.op)

	case *binaryExpr:
		if x.op == "&&" || x.op == "||" {
			return lo.boolValue(x)
		}
		if _, ok := cmpConds[x.op]; ok {
			a, _, err := lo.expr(x.x)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			b, _, err := lo.expr(x.y)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			d := lo.f.NewVReg()
			cmp := ir.NewInstr(ir.OpCmp)
			cmp.Cond = cmpConds[x.op]
			cmp.Dst = d
			cmp.A, cmp.B = a, b
			lo.emit(cmp)
			return ir.R(d), intType, nil
		}
		op, ok := binOps[x.op]
		if !ok {
			return ir.Operand{}, nil, errAt(x.line, "unhandled operator %q", x.op)
		}
		a, ta, err := lo.expr(x.x)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		b, tb, err := lo.expr(x.y)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		// Pointer arithmetic.
		switch {
		case op == ir.OpAdd && ta.isPtr() && tb.isInteger():
			b = lo.scale(b, ta.elem.size())
			return lo.bin(op, a, b), ta, nil
		case op == ir.OpAdd && tb.isPtr() && ta.isInteger():
			a = lo.scale(a, tb.elem.size())
			return lo.bin(op, a, b), tb, nil
		case op == ir.OpSub && ta.isPtr() && tb.isInteger():
			b = lo.scale(b, ta.elem.size())
			return lo.bin(op, a, b), ta, nil
		case op == ir.OpSub && ta.isPtr() && tb.isPtr():
			diff := lo.bin(op, a, b)
			if es := ta.elem.size(); es > 1 {
				d := lo.f.NewVReg()
				div := ir.NewInstr(ir.OpDiv)
				div.Dst = d
				div.A = diff
				div.B = ir.C(es)
				lo.emit(div)
				return ir.R(d), intType, nil
			}
			return diff, intType, nil
		}
		return lo.bin(op, a, b), intType, nil

	case *condExpr:
		d := lo.f.NewVReg()
		tB := lo.f.NewBlock()
		fB := lo.f.NewBlock()
		join := lo.f.NewBlock()
		if err := lo.cond(x.cond, tB, fB); err != nil {
			return ir.Operand{}, nil, err
		}
		lo.setBlock(tB)
		a, ta, err := lo.expr(x.x)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		cp := ir.NewInstr(ir.OpCopy)
		cp.Dst = d
		cp.A = a
		lo.emit(cp)
		lo.jumpTo(join)
		lo.setBlock(fB)
		b, _, err := lo.expr(x.y)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		cp2 := ir.NewInstr(ir.OpCopy)
		cp2.Dst = d
		cp2.A = b
		lo.emit(cp2)
		lo.jumpTo(join)
		lo.setBlock(join)
		return ir.R(d), ta, nil

	case *assignExpr:
		lv, err := lo.lvalue(x.lhs)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		var val ir.Operand
		if x.op == "=" {
			val, _, err = lo.expr(x.rhs)
			if err != nil {
				return ir.Operand{}, nil, err
			}
		} else {
			// Compound assignment: load, combine, store.
			cur, ct, err := lo.loadLV(lv)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			rhs, rt, err := lo.expr(x.rhs)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			op := binOps[x.op[:len(x.op)-1]]
			if ct.isPtr() && rt.isInteger() && (op == ir.OpAdd || op == ir.OpSub) {
				rhs = lo.scale(rhs, ct.elem.size())
			}
			val = lo.bin(op, cur, rhs)
		}
		if err := lo.storeLV(lv, val); err != nil {
			return ir.Operand{}, nil, err
		}
		return val, lv.typ, nil

	case *incDecExpr:
		lv, err := lo.lvalue(x.x)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		cur, t, err := lo.loadLV(lv)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		step := int64(1)
		if t.isPtr() {
			step = t.elem.size()
		}
		op := ir.OpAdd
		if x.dec {
			op = ir.OpSub
		}
		// For the post forms the pre-value must survive the store.
		old := cur
		if x.post && cur.Kind == ir.OpndReg {
			keep := lo.f.NewVReg()
			cp := ir.NewInstr(ir.OpCopy)
			cp.Dst = keep
			cp.A = cur
			lo.emit(cp)
			old = ir.R(keep)
		}
		next := lo.bin(op, cur, ir.C(step))
		if err := lo.storeLV(lv, next); err != nil {
			return ir.Operand{}, nil, err
		}
		if x.post {
			return old, t, nil
		}
		return next, t, nil

	case *callExpr:
		return lo.call(x)
	}
	return ir.Operand{}, nil, errAt(e.exprLine(), "unhandled expression")
}

// bin emits a binary op into a fresh register.
func (lo *lowerer) bin(op ir.Op, a, b ir.Operand) ir.Operand {
	d := lo.f.NewVReg()
	in := ir.NewInstr(op)
	in.Dst = d
	in.A, in.B = a, b
	lo.emit(in)
	return ir.R(d)
}

// builtins maps intrinsic names to their arity; they are lowered as calls
// and recognized by the code generator.
var builtins = map[string]int{"print_int": 1, "print_char": 1}

func (lo *lowerer) call(x *callExpr) (ir.Operand, *Type, error) {
	var ret *Type
	if n, ok := builtins[x.name]; ok {
		if len(x.args) != n {
			return ir.Operand{}, nil, errAt(x.line, "%s takes %d argument(s)", x.name, n)
		}
		ret = voidType
	} else {
		fd := lo.fds[x.name]
		if fd == nil {
			return ir.Operand{}, nil, errAt(x.line, "call to undefined function %s", x.name)
		}
		if len(x.args) != len(fd.params) {
			return ir.Operand{}, nil, errAt(x.line, "%s takes %d argument(s), got %d",
				x.name, len(fd.params), len(x.args))
		}
		ret = fd.ret
	}
	in := ir.NewInstr(ir.OpCall)
	in.Callee = x.name
	for _, a := range x.args {
		o, _, err := lo.expr(a)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		in.Args = append(in.Args, o)
	}
	if ret.kind != tyVoid {
		in.Dst = lo.f.NewVReg()
	}
	lo.emit(in)
	if in.Dst == ir.NoVReg {
		return ir.C(0), voidType, nil
	}
	return ir.R(in.Dst), ret, nil
}
