package mcc

// Abstract syntax for MC. Every node carries its source position (line:col) for
// diagnostics.

// Type kinds.
type typeKind uint8

const (
	tyInt typeKind = iota
	tyChar
	tyVoid
	tyPtr
	tyArray
	tyStruct
)

// Type describes an MC type. Types are interned loosely; compare with
// sameType, not pointer equality.
type Type struct {
	kind typeKind
	elem *Type       // ptr, array
	n    int64       // array length
	st   *structType // struct
}

type structField struct {
	name string
	typ  *Type
	off  int64
}

type structType struct {
	name   string
	fields []structField
	size   int64
}

var (
	intType  = &Type{kind: tyInt}
	charType = &Type{kind: tyChar}
	voidType = &Type{kind: tyVoid}
)

func ptrTo(t *Type) *Type            { return &Type{kind: tyPtr, elem: t} }
func arrayOf(t *Type, n int64) *Type { return &Type{kind: tyArray, elem: t, n: n} }

// size returns the storage size in bytes.
func (t *Type) size() int64 {
	switch t.kind {
	case tyInt, tyPtr:
		return 8
	case tyChar:
		return 1
	case tyArray:
		return t.n * t.elem.size()
	case tyStruct:
		return t.st.size
	}
	return 0
}

func (t *Type) isInteger() bool { return t.kind == tyInt || t.kind == tyChar }
func (t *Type) isPtr() bool     { return t.kind == tyPtr }
func (t *Type) isArray() bool   { return t.kind == tyArray }

// decayed returns the type after array-to-pointer decay.
func (t *Type) decayed() *Type {
	if t.kind == tyArray {
		return ptrTo(t.elem)
	}
	return t
}

func (t *Type) String() string {
	switch t.kind {
	case tyInt:
		return "int"
	case tyChar:
		return "char"
	case tyVoid:
		return "void"
	case tyPtr:
		return t.elem.String() + "*"
	case tyArray:
		return t.elem.String() + "[]"
	case tyStruct:
		return "struct " + t.st.name
	}
	return "?"
}

func sameType(a, b *Type) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case tyPtr:
		return sameType(a.elem, b.elem)
	case tyArray:
		return a.n == b.n && sameType(a.elem, b.elem)
	case tyStruct:
		return a.st == b.st
	}
	return true
}

// ---- Expressions ----

type expr interface{ exprLine() srcPos }

type numLit struct {
	line srcPos
	val  int64
}

type strLit struct {
	line srcPos
	val  string
}

type identExpr struct {
	line srcPos
	name string
}

type unaryExpr struct {
	line srcPos
	op   string // - ! ~ & *
	x    expr
}

type binaryExpr struct {
	line srcPos
	op   string
	x, y expr
}

type assignExpr struct {
	line srcPos
	op   string // = += -= *= /= %= &= |= ^= <<= >>=
	lhs  expr
	rhs  expr
}

type condExpr struct {
	line srcPos
	cond expr
	x, y expr
}

type callExpr struct {
	line srcPos
	name string
	args []expr
}

type indexExpr struct {
	line srcPos
	x    expr
	idx  expr
}

type memberExpr struct {
	line  srcPos
	x     expr
	name  string
	arrow bool
}

type incDecExpr struct {
	line srcPos
	x    expr
	dec  bool
	post bool
}

type sizeofExpr struct {
	line srcPos
	typ  *Type
}

func (e *numLit) exprLine() srcPos     { return e.line }
func (e *strLit) exprLine() srcPos     { return e.line }
func (e *identExpr) exprLine() srcPos  { return e.line }
func (e *unaryExpr) exprLine() srcPos  { return e.line }
func (e *binaryExpr) exprLine() srcPos { return e.line }
func (e *assignExpr) exprLine() srcPos { return e.line }
func (e *condExpr) exprLine() srcPos   { return e.line }
func (e *callExpr) exprLine() srcPos   { return e.line }
func (e *indexExpr) exprLine() srcPos  { return e.line }
func (e *memberExpr) exprLine() srcPos { return e.line }
func (e *incDecExpr) exprLine() srcPos { return e.line }
func (e *sizeofExpr) exprLine() srcPos { return e.line }

// ---- Statements ----

type stmt interface{ stmtLine() srcPos }

type blockStmt struct {
	line  srcPos
	stmts []stmt
}

type exprStmt struct {
	line srcPos
	x    expr
}

type declStmt struct {
	line srcPos
	d    *varDecl
}

type ifStmt struct {
	line      srcPos
	cond      expr
	then, els stmt // els may be nil
}

type whileStmt struct {
	line srcPos
	cond expr
	body stmt
	post bool // do-while: body runs before the first test
}

type forStmt struct {
	line srcPos
	init stmt // may be nil (exprStmt or declStmt)
	cond expr // may be nil
	post expr // may be nil
	body stmt
}

// switchStmt is a C switch with fallthrough semantics; case labels must be
// constant expressions.
type switchStmt struct {
	line  srcPos
	cond  expr
	cases []switchCase
	// defIdx is the index into cases of the default arm, or -1.
	defIdx int
}

type switchCase struct {
	line srcPos
	vals []int64 // empty for default
	body []stmt
}

type returnStmt struct {
	line srcPos
	x    expr // may be nil
}

type breakStmt struct{ line srcPos }
type continueStmt struct{ line srcPos }

func (s *blockStmt) stmtLine() srcPos    { return s.line }
func (s *exprStmt) stmtLine() srcPos     { return s.line }
func (s *declStmt) stmtLine() srcPos     { return s.line }
func (s *ifStmt) stmtLine() srcPos       { return s.line }
func (s *whileStmt) stmtLine() srcPos    { return s.line }
func (s *forStmt) stmtLine() srcPos      { return s.line }
func (s *switchStmt) stmtLine() srcPos   { return s.line }
func (s *returnStmt) stmtLine() srcPos   { return s.line }
func (s *breakStmt) stmtLine() srcPos    { return s.line }
func (s *continueStmt) stmtLine() srcPos { return s.line }

// ---- Declarations ----

type varDecl struct {
	line     srcPos
	name     string
	typ      *Type
	init     expr   // scalar initializer, may be nil
	initList []expr // array initializer list, may be nil
}

type param struct {
	name string
	typ  *Type
}

type funcDecl struct {
	line   srcPos
	name   string
	ret    *Type
	params []param
	body   *blockStmt
}

type file struct {
	structs []*structType
	globals []*varDecl
	funcs   []*funcDecl
}
