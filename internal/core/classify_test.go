package core

import (
	"strings"
	"testing"

	"elag/internal/asm/asmtest"
	"elag/internal/isa"
)

// TestPaperFigure4ForLoop reproduces the paper's Figure 4(a)/(b): the
// compiled for-loop
//
//	_for: op1 ld  r4, r17(0)   ; ind[i]      -> ld_p
//	      op2 lsl r5, r4, 2
//	      op3 ld  r6, r19(r5)  ; arr1[ind[i]] -> ld_n (reg+reg, load-dep)
//	      op4 ld  r7, r18(0)   ; arr2[i]     -> ld_p
//	      ...
func TestPaperFigure4ForLoop(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r1, 0
		li r17, 4096
		li r18, 8192
		li r19, 12288
		li r20, 100
	_for:	ld8_n r4, r17(0)
		sll r5, r4, 2
		ld8_n r6, r19(r5)
		ld8_n r7, r18(0)
		add r1, r1, 1
		add r18, r18, 4
		add r17, r17, 4
		blt r1, r20, _for
		halt r0
	`)
	c := Classify(p, Options{})
	op1 := p.Symbols["_for"]
	if got := c.Class(op1); got != PD {
		t.Errorf("op1 (ind[i]) classified %v, want PD", got)
	}
	if got := c.Class(op1 + 2); got != NT {
		t.Errorf("op3 (arr1[ind[i]], reg+reg) classified %v, want NT", got)
	}
	if got := c.Class(op1 + 3); got != PD {
		t.Errorf("op4 (arr2[i]) classified %v, want PD", got)
	}
}

// TestPaperFigure4WhileLoop reproduces Figure 4(c)/(d): the pointer-chasing
// while-loop whose three loads all use base r2 — the largest load-dependent
// group — and therefore all get ld_e.
func TestPaperFigure4WhileLoop(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r2, 4096
	_while:	ld8_n r3, r2(0)
		ld8_n r4, r2(4)
		ld8_n r2, r2(8)
		bne r2, 0, _while
		halt r0
	`)
	c := Classify(p, Options{})
	start := p.Symbols["_while"]
	for i := 0; i < 3; i++ {
		if got := c.Class(start + i); got != EC {
			t.Errorf("op1%d classified %v, want EC", 1+i, got)
		}
	}
}

// TestLargestGroupWinsRAddr: with two load-dependent groups, only the
// larger gets ld_e; the smaller gets ld_n.
func TestLargestGroupWinsRAddr(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r2, 4096
		li r3, 8192
	loop:	ld8_n r4, r2(0)
		ld8_n r5, r2(8)
		ld8_n r6, r2(16)
		ld8_n r7, r3(0)
		ld8_n r2, r2(24)
		ld8_n r3, r7(0)
		bne r2, 0, loop
		halt r0
	`)
	c := Classify(p, Options{})
	l := p.Symbols["loop"]
	// r2 group: loads at l, l+1, l+2, l+4 (4 members) -> EC.
	for _, pc := range []int{l, l + 1, l + 2, l + 4} {
		if got := c.Class(pc); got != EC {
			t.Errorf("r2-group load at %d classified %v, want EC", pc, got)
		}
	}
	// r3 group (l+3) and r7 group (l+5): smaller -> NT.
	if got := c.Class(l + 3); got != NT {
		t.Errorf("r3-group load classified %v, want NT", got)
	}
	if got := c.Class(l + 5); got != NT {
		t.Errorf("r7-group load classified %v, want NT", got)
	}
}

// TestMaxECGroups: raising the addressing-register budget promotes the
// second-largest group to EC as well.
func TestMaxECGroups(t *testing.T) {
	src := `
	main:	li r2, 4096
		li r3, 8192
	loop:	ld8_n r4, r2(0)
		ld8_n r5, r2(8)
		ld8_n r6, r3(0)
		ld8_n r2, r2(16)
		ld8_n r3, r3(8)
		bne r2, 0, loop
		halt r0
	`
	c1 := Classify(asmtest.MustAssemble(t, src), Options{MaxECGroups: 1})
	c2 := Classify(asmtest.MustAssemble(t, src), Options{MaxECGroups: 2})
	if c1.StaticEC >= c2.StaticEC {
		t.Errorf("MaxECGroups=2 did not increase EC loads: %d vs %d",
			c1.StaticEC, c2.StaticEC)
	}
	if c2.StaticNT != 0 {
		t.Errorf("with 2 groups all load-dependent loads should be EC, NT=%d", c2.StaticNT)
	}
}

// TestAcyclicHeuristic: outside loops, absolute loads are PD; the largest
// base group is EC; the rest NT.
func TestAcyclicHeuristic(t *testing.T) {
	p := asmtest.MustAssemble(t, `
		.data
	g:	.word 7
		.text
	main:	ld8_n r1, (g)
		li r2, 4096
		li r3, 8192
		ld8_n r4, r2(0)
		ld8_n r5, r2(8)
		ld8_n r6, r3(0)
		halt r0
	`)
	c := Classify(p, Options{})
	if got := c.Class(0); got != PD {
		t.Errorf("absolute load classified %v, want PD", got)
	}
	if c.Class(3) != EC || c.Class(4) != EC {
		t.Errorf("largest acyclic group not EC: %v %v", c.Class(3), c.Class(4))
	}
	if got := c.Class(5); got != NT {
		t.Errorf("minority acyclic group classified %v, want NT", got)
	}
}

// TestTaintKillsFalseDependence: a register that once held a loaded value
// but is redefined from untainted sources before the load must not make the
// load load-dependent (the kill-aware dataflow; the additive variant
// misclassifies this case).
func TestTaintKillsFalseDependence(t *testing.T) {
	src := `
	main:	li r2, 4096
		li r9, 0
	loop:	ld8_n r3, r2(0)
		add r4, r3, 1
		st8 r4, r2(8)
		li r3, 8
		add r2, r2, r3     ; r2 = r2 + 8: r3 now constant, not loaded
		add r9, r9, 1
		blt r9, 100, loop
		halt r0
	`
	pTaint := asmtest.MustAssemble(t, src)
	cTaint := Classify(pTaint, Options{})
	ld := pTaint.Symbols["loop"]
	if got := cTaint.Class(ld); got != PD {
		t.Errorf("taint dataflow classified the strided load %v, want PD", got)
	}
	pAdd := asmtest.MustAssemble(t, src)
	cAdd := Classify(pAdd, Options{AdditiveSLoad: true})
	if got := cAdd.Class(ld); got != NT && got != EC {
		t.Errorf("additive S_load should conservatively classify the load "+
			"load-dependent (NT or EC), got %v", got)
	}
}

// TestCallsTaintLoop: a call inside the loop makes subsequent loads through
// caller-saved base registers load-dependent — the conservatism Section 6
// of the paper describes.
func TestCallsTaintLoop(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r9, 0
	loop:	call r63, helper
		ld8_n r3, r1(0)        ; r1 comes from the call: load-dependent
		add r9, r9, 1
		blt r9, 100, loop
		halt r0
	helper:	li r1, 4096
		ret
	`)
	c := Classify(p, Options{})
	ld := p.Symbols["loop"] + 1
	if got := c.Class(ld); got == PD {
		t.Errorf("load through a call-clobbered base classified PD; want load-dependent")
	}
}

// TestInnerLoopClassificationWins: a load in a nested loop keeps the class
// its innermost loop assigned.
func TestInnerLoopClassificationWins(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r9, 0
	outer:	li r8, 0
		ld8_n r5, r20(0)      ; outer-loop load
	inner:	ld8_n r4, r21(0)      ; inner-loop load, strided base
		add r21, r21, 8
		add r8, r8, 1
		blt r8, 10, inner
		add r9, r9, 1
		blt r9, 10, outer
		halt r0
	`)
	c := Classify(p, Options{})
	if got := c.Class(p.Symbols["inner"]); got != PD {
		t.Errorf("inner strided load = %v, want PD", got)
	}
	if got := c.Class(p.Symbols["outer"] + 1); got != PD {
		t.Errorf("outer load = %v, want PD", got)
	}
}

func TestReclassifyPromotesOnlyNT(t *testing.T) {
	c := &Classification{ByPC: map[int]Class{
		0: NT, 1: NT, 2: EC, 3: PD,
	}}
	rates := map[int]float64{
		0: 0.95, // NT, predictable -> PD
		1: 0.10, // NT, unpredictable -> stays
		2: 0.99, // EC: never overruled
		3: 0.05, // PD: never overruled
	}
	n := Reclassify(c, rates, 0.60)
	if n.ByPC[0] != PD {
		t.Errorf("predictable NT load not promoted")
	}
	if n.ByPC[1] != NT {
		t.Errorf("unpredictable NT load promoted")
	}
	if n.ByPC[2] != EC || n.ByPC[3] != PD {
		t.Errorf("non-NT classes overruled: %v %v", n.ByPC[2], n.ByPC[3])
	}
	if n.StaticPD != 2 || n.StaticNT != 1 || n.StaticEC != 1 {
		t.Errorf("counts wrong: %+v", n)
	}
	// Exactly at the threshold: not promoted (strictly greater).
	n2 := Reclassify(c, map[int]float64{0: 0.60}, 0.60)
	if n2.ByPC[0] != NT {
		t.Errorf("rate == threshold should not promote")
	}
}

func TestApplyRewritesFlavors(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r2, 4096
	loop:	ld8_n r3, r2(0)
		ld8_n r2, r2(8)
		bne r2, 0, loop
		halt r0
	`)
	c := ClassifyAndApply(p, Options{})
	for pc := range p.Insts {
		if !p.Insts[pc].IsLoad() {
			continue
		}
		if p.Insts[pc].Flavor != c.Class(pc).Flavor() {
			t.Errorf("flavor at %d not applied", pc)
		}
	}
	if p.Insts[1].Flavor != isa.LdE || p.Insts[2].Flavor != isa.LdE {
		t.Errorf("chase loads not ld_e: %v %v", p.Insts[1].Flavor, p.Insts[2].Flavor)
	}
}

func TestClassificationSummary(t *testing.T) {
	c := &Classification{ByPC: map[int]Class{0: NT, 1: PD, 2: PD, 3: EC}}
	c.StaticNT, c.StaticPD, c.StaticEC = 1, 2, 1
	nt, pd, ec := c.StaticShares()
	if nt != 25 || pd != 50 || ec != 25 {
		t.Errorf("shares = %v %v %v", nt, pd, ec)
	}
	if !strings.Contains(c.String(), "loads=4") {
		t.Errorf("summary: %s", c)
	}
	var empty Classification
	if a, b, d := empty.StaticShares(); a != 0 || b != 0 || d != 0 {
		t.Errorf("empty shares nonzero")
	}
}

func TestDumpStructureAndDescribe(t *testing.T) {
	p := asmtest.MustAssemble(t, `
	main:	li r9, 0
	loop:	ld8_n r1, r20(0)
		add r9, r9, 1
		blt r9, 5, loop
		halt r0
	`)
	s := DumpStructure(p)
	if !strings.Contains(s, "loop depth=1") {
		t.Errorf("structure dump missing loop:\n%s", s)
	}
	c := Classify(p, Options{})
	d := Describe(p, c)
	if !strings.Contains(d, "PD") {
		t.Errorf("describe output:\n%s", d)
	}
}
