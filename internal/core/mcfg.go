package core

import (
	"sort"

	"elag/internal/isa"
)

// This file builds the machine-level control-flow graph the classifier
// analyzes: function extents, basic blocks, dominators, and natural loops
// over assembled programs. The heuristics run after code generation (the
// hardware sees physical base registers), so the classifier cannot reuse
// the virtual-register IR analyses.

// mblock is a machine basic block: instructions [start, end) of the program.
type mblock struct {
	id         int
	start, end int
	succs      []*mblock
	preds      []*mblock
}

// mfunc is the machine CFG of one function.
type mfunc struct {
	name       string
	start, end int
	blocks     []*mblock // blocks[0] is the entry
}

// splitFunctions partitions the program into functions: the entry point and
// every call target begin a function; each function extends to the next
// function start.
func splitFunctions(p *isa.Program) []*mfunc {
	starts := map[int]string{p.Entry: "entry"}
	for _, in := range p.Insts {
		if in.Op == isa.OpCall {
			starts[in.Target] = ""
		}
	}
	for name, pc := range p.Symbols {
		if _, ok := starts[pc]; ok && starts[pc] == "" || pc == p.Entry {
			starts[pc] = name
		}
	}
	pcs := make([]int, 0, len(starts))
	for pc := range starts {
		if pc >= 0 && pc < len(p.Insts) {
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)
	var funcs []*mfunc
	for i, pc := range pcs {
		end := len(p.Insts)
		if i+1 < len(pcs) {
			end = pcs[i+1]
		}
		funcs = append(funcs, &mfunc{name: starts[pc], start: pc, end: end})
	}
	for _, f := range funcs {
		buildBlocks(p, f)
	}
	return funcs
}

// buildBlocks constructs basic blocks and edges for f. Calls are treated as
// sequential (control returns), jr ends control flow (function return), and
// branch targets outside the function are treated as exits.
func buildBlocks(p *isa.Program, f *mfunc) {
	leader := map[int]bool{f.start: true}
	for pc := f.start; pc < f.end; pc++ {
		in := &p.Insts[pc]
		switch in.Op {
		case isa.OpBr, isa.OpJmp:
			if in.Target >= f.start && in.Target < f.end {
				leader[in.Target] = true
			}
			if pc+1 < f.end {
				leader[pc+1] = true
			}
		case isa.OpJr, isa.OpHalt:
			if pc+1 < f.end {
				leader[pc+1] = true
			}
		}
	}
	var starts []int
	for pc := range leader {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	byStart := make(map[int]*mblock, len(starts))
	for i, s := range starts {
		end := f.end
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &mblock{id: i, start: s, end: end}
		f.blocks = append(f.blocks, b)
		byStart[s] = b
	}
	edge := func(from *mblock, to int) {
		t, ok := byStart[to]
		if !ok {
			return
		}
		from.succs = append(from.succs, t)
		t.preds = append(t.preds, from)
	}
	for _, b := range f.blocks {
		if b.end == b.start {
			continue
		}
		last := &p.Insts[b.end-1]
		switch last.Op {
		case isa.OpBr:
			edge(b, last.Target)
			edge(b, b.end)
		case isa.OpJmp:
			edge(b, last.Target)
		case isa.OpJr, isa.OpHalt:
			// No intra-function successors.
		default:
			edge(b, b.end)
		}
	}
}

// mdoms computes immediate dominators over f's blocks (entry-index order is
// already a valid traversal basis; uses the iterative algorithm).
func mdoms(f *mfunc) map[*mblock]*mblock {
	if len(f.blocks) == 0 {
		return nil
	}
	entry := f.blocks[0]
	var rpo []*mblock
	seen := map[*mblock]bool{}
	var dfs func(b *mblock)
	dfs = func(b *mblock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			dfs(s)
		}
		rpo = append(rpo, b)
	}
	dfs(entry)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := map[*mblock]int{}
	for i, b := range rpo {
		order[b] = i
	}
	idom := map[*mblock]*mblock{entry: entry}
	intersect := func(a, b *mblock) *mblock {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var ni *mblock
			for _, p := range b.preds {
				if idom[p] == nil {
					continue
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != nil && idom[b] != ni {
				idom[b] = ni
				changed = true
			}
		}
	}
	return idom
}

func dominates(idom map[*mblock]*mblock, a, b *mblock) bool {
	for {
		if a == b {
			return true
		}
		n := idom[b]
		if n == nil || n == b {
			return false
		}
		b = n
	}
}

// mloop is a natural loop over machine blocks.
type mloop struct {
	header *mblock
	blocks map[*mblock]bool
	depth  int
}

// findMLoops returns f's natural loops sorted innermost (deepest) first.
func findMLoops(f *mfunc) []*mloop {
	idom := mdoms(f)
	byHeader := map[*mblock]*mloop{}
	var loops []*mloop
	for _, b := range f.blocks {
		for _, s := range b.succs {
			if idom[b] == nil || !dominates(idom, s, b) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &mloop{header: s, blocks: map[*mblock]bool{s: true}}
				byHeader[s] = l
				loops = append(loops, l)
			}
			stack := []*mblock{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.blocks[n] {
					continue
				}
				l.blocks[n] = true
				stack = append(stack, n.preds...)
			}
		}
	}
	for _, a := range loops {
		for _, b := range loops {
			if a != b && b.blocks[a.header] {
				a.depth++
			}
		}
		a.depth++ // self
	}
	sort.SliceStable(loops, func(i, j int) bool { return loops[i].depth > loops[j].depth })
	return loops
}
