package core

import (
	"fmt"
	"sort"
	"strings"

	"elag/internal/isa"
)

// DumpStructure renders the machine-level functions, basic blocks and
// natural loops the classifier sees — a debugging aid for classification
// questions (exposed through elag-cc -structure).
// DumpClasses renders the per-load classification listing with the
// heuristic that produced each class — pc, class, reason, instruction —
// grouped by function (exposed through elag-cc -dump-classes).
func DumpClasses(p *isa.Program, c *Classification) string {
	var sb strings.Builder
	for _, f := range splitFunctions(p) {
		header := false
		for pc := f.start; pc < f.end; pc++ {
			cl, ok := c.ByPC[pc]
			if !ok {
				continue
			}
			if !header {
				fmt.Fprintf(&sb, "func %s:\n", f.name)
				header = true
			}
			fmt.Fprintf(&sb, "  %6d  %-2s  %-34s %s\n", pc, cl, c.Reason(pc), p.Insts[pc].String())
		}
	}
	return sb.String()
}

func DumpStructure(p *isa.Program) string {
	var sb strings.Builder
	for _, f := range splitFunctions(p) {
		fmt.Fprintf(&sb, "func %s [%d,%d) blocks=%d\n", f.name, f.start, f.end, len(f.blocks))
		for _, b := range f.blocks {
			var succs []int
			for _, s := range b.succs {
				succs = append(succs, s.start)
			}
			fmt.Fprintf(&sb, "  B%-3d [%4d,%4d) -> %v\n", b.id, b.start, b.end, succs)
		}
		for _, l := range findMLoops(f) {
			var blocks []int
			for b := range l.blocks {
				blocks = append(blocks, b.start)
			}
			sort.Ints(blocks)
			fmt.Fprintf(&sb, "  loop depth=%d header=%d blocks=%v\n", l.depth, l.header.start, blocks)
		}
	}
	return sb.String()
}
