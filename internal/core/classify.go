// Package core implements the paper's primary contribution: the compiler
// heuristics of Section 4 that classify every static load instruction as
//
//	ld_n (NT, "neither")       — speculate on neither mechanism,
//	ld_p (PD, "predict")       — use the table-based address predictor,
//	ld_e (EC, "early calculate") — use the R_addr early-calculation path,
//
// plus the profile-guided reclassification of Section 4.3. The classifier
// runs on assembled machine code (after register allocation, the level at
// which base-register specifiers and addressing modes are final) and
// rewrites the load flavours of the program in place.
//
// Rationale encoded here (Section 4): R_addr is effective but scarce, so it
// is reserved for the loads whose addresses are not linear (load-dependent
// loads); and the prediction table is small, so non-linear loads must not
// be entered into it.
package core

import (
	"fmt"
	"strings"

	"elag/internal/isa"
)

// Class is a load classification.
type Class uint8

// Classes, named as in the paper's tables.
const (
	// NT — "neither": the load keeps ld_n.
	NT Class = iota
	// PD — "predict": the load becomes ld_p.
	PD
	// EC — "early calculate": the load becomes ld_e.
	EC
)

// String returns the table abbreviation.
func (c Class) String() string {
	switch c {
	case NT:
		return "NT"
	case PD:
		return "PD"
	case EC:
		return "EC"
	}
	return "?"
}

// Flavor converts the class to its instruction flavour.
func (c Class) Flavor() isa.LoadFlavor {
	switch c {
	case PD:
		return isa.LdP
	case EC:
		return isa.LdE
	default:
		return isa.LdN
	}
}

// Options tunes the classifier.
type Options struct {
	// MaxECGroups is how many base-register groups receive ld_e per
	// region. The paper reserves the single R_addr for the largest
	// group (1). Raising it models hardware with more addressing
	// registers.
	MaxECGroups int
	// KeepExisting, when set, leaves loads that already carry a
	// non-ld_n flavour untouched (for hand-annotated assembly).
	KeepExisting bool
	// AdditiveSLoad selects the paper's literal S_load algorithm: a
	// purely additive fixpoint in which a register stays in S_load for
	// the whole loop once any definition of it is load-derived. The
	// default is a kill-aware taint dataflow that implements the same
	// intent ("registers whose contents are loaded from the memory or
	// generated from a loaded value") precisely at each program point;
	// with a register allocator that reuses registers densely, the
	// additive version misclassifies arithmetic-dependent loads as
	// load-dependent (the conservatism Section 6 of the paper
	// discusses). Benchmarked as an ablation.
	AdditiveSLoad bool
}

// Classification maps each static load (by PC) to its class.
type Classification struct {
	ByPC map[int]Class
	// Reasons records, per classified PC, which heuristic produced the
	// class ("arithmetic-dep", "load-dep group r7", "acyclic absolute",
	// "profile-promoted", ...). Debugging aid; see DumpClasses.
	Reasons map[int]string
	// StaticNT/PD/EC count static loads per class.
	StaticNT, StaticPD, StaticEC int
}

// Reason returns the recorded heuristic for the load at pc ("" if none).
func (c *Classification) Reason(pc int) string { return c.Reasons[pc] }

// Class returns the class assigned to the load at pc (NT if absent).
func (c *Classification) Class(pc int) Class { return c.ByPC[pc] }

// StaticTotal returns the number of classified loads.
func (c *Classification) StaticTotal() int { return len(c.ByPC) }

// StaticShares returns the NT, PD and EC shares of static loads in percent.
func (c *Classification) StaticShares() (nt, pd, ec float64) {
	t := float64(c.StaticTotal())
	if t == 0 {
		return 0, 0, 0
	}
	return 100 * float64(c.StaticNT) / t, 100 * float64(c.StaticPD) / t, 100 * float64(c.StaticEC) / t
}

// Apply rewrites the program's load flavours according to the
// classification. Prefer Overlay for simulation: Apply mutates the shared
// Program, so concurrent simulations must not race with it.
func (c *Classification) Apply(p *isa.Program) {
	for pc, cl := range c.ByPC {
		p.Insts[pc].Flavor = cl.Flavor()
	}
}

// Overlay renders the classification as an immutable flavour overlay over
// p without touching p: the program's current flavours are snapshotted and
// the classified loads overridden. The result can parameterize any number
// of concurrent simulations sharing p and its trace.
func (c *Classification) Overlay(p *isa.Program) isa.FlavorOverlay {
	o := isa.ProgramFlavors(p)
	for pc, cl := range c.ByPC {
		if pc >= 0 && pc < len(o) {
			o[pc] = cl.Flavor()
		}
	}
	return o
}

// String summarizes the classification.
func (c *Classification) String() string {
	nt, pd, ec := c.StaticShares()
	return fmt.Sprintf("loads=%d NT=%.1f%% PD=%.1f%% EC=%.1f%%", c.StaticTotal(), nt, pd, ec)
}

// Classify runs the Section 4 heuristics over the whole program and returns
// the per-load classification (without modifying the program; call Apply).
func Classify(p *isa.Program, o Options) *Classification {
	if o.MaxECGroups == 0 {
		o.MaxECGroups = 1
	}
	c := &Classification{ByPC: make(map[int]Class), Reasons: make(map[int]string)}
	for _, f := range splitFunctions(p) {
		classifyFunc(p, f, o, c)
	}
	for _, cl := range c.ByPC {
		switch cl {
		case NT:
			c.StaticNT++
		case PD:
			c.StaticPD++
		case EC:
			c.StaticEC++
		}
	}
	return c
}

// ClassifyAndApply is the convenience form used by the build pipeline.
func ClassifyAndApply(p *isa.Program, o Options) *Classification {
	c := Classify(p, o)
	c.Apply(p)
	return c
}

func classifyFunc(p *isa.Program, f *mfunc, o Options, c *Classification) {
	assigned := make(map[int]bool) // PCs classified by an inner loop
	assign := func(pc int, cl Class, why string) {
		if assigned[pc] {
			return
		}
		if o.KeepExisting && p.Insts[pc].Flavor != isa.LdN {
			assigned[pc] = true
			return
		}
		c.ByPC[pc] = cl
		c.Reasons[pc] = why
		assigned[pc] = true
	}

	// Cyclic code: nested loops are sorted and inner loops analyzed
	// first (Section 4.1); a load keeps the class its innermost
	// enclosing loop gave it.
	for _, l := range findMLoops(f) {
		classifyLoop(p, l, o, assign, assigned)
	}

	// Acyclic code (Section 4.2): loads from absolute locations are
	// ld_p; the rest are grouped by base register, the largest group
	// gets ld_e, the remainder ld_n.
	var acyclic []int
	inLoop := make(map[int]bool)
	for _, l := range findMLoops(f) {
		for b := range l.blocks {
			for pc := b.start; pc < b.end; pc++ {
				inLoop[pc] = true
			}
		}
	}
	for pc := f.start; pc < f.end; pc++ {
		if p.Insts[pc].IsLoad() && !inLoop[pc] && !assigned[pc] {
			acyclic = append(acyclic, pc)
		}
	}
	var grouped []int
	for _, pc := range acyclic {
		if p.Insts[pc].Mode == isa.AMAbsolute {
			assign(pc, PD, "acyclic absolute")
		} else {
			grouped = append(grouped, pc)
		}
	}
	assignGroups(p, grouped, o, assign, "acyclic")
}

// classifyLoop applies the cyclic heuristics of Section 4.1 to one loop:
// compute S_load (the registers holding loaded or load-derived values),
// split the loop's loads into load-dependent and arithmetic-dependent, give
// the largest load-dependent base-register group ld_e, the other
// load-dependent loads ld_n, and the arithmetic-dependent loads ld_p.
func classifyLoop(p *isa.Program, l *mloop, o Options, assign func(int, Class, string), assigned map[int]bool) {
	var dep func(pc int, in *isa.Inst) bool
	if o.AdditiveSLoad {
		sload := additiveSLoad(p, l)
		dep = func(pc int, in *isa.Inst) bool {
			switch in.Mode {
			case isa.AMRegOffset:
				return sload[in.Base]
			case isa.AMRegReg:
				return sload[in.Base] || sload[in.Index]
			}
			return false
		}
	} else {
		taintAt := taintSLoad(p, l)
		dep = func(pc int, in *isa.Inst) bool {
			t := taintAt[pc]
			switch in.Mode {
			case isa.AMRegOffset:
				return t.get(in.Base)
			case isa.AMRegReg:
				return t.get(in.Base) || t.get(in.Index)
			}
			return false
		}
	}

	// Step 3: split into load-dependent and arithmetic-dependent loads.
	var loadDep, arithDep []int
	for b := range l.blocks {
		for pc := b.start; pc < b.end; pc++ {
			in := &p.Insts[pc]
			if !in.IsLoad() || assigned[pc] {
				continue
			}
			if dep(pc, in) {
				loadDep = append(loadDep, pc)
			} else {
				arithDep = append(arithDep, pc)
			}
		}
	}
	assignGroups(p, loadDep, o, assign, "load-dep")
	for _, pc := range arithDep {
		assign(pc, PD, "arithmetic-dep")
	}
}

// additiveSLoad is the paper's literal Section 4.1 algorithm: step 1 seeds
// S_load with every load destination in the loop; step 2 adds the
// destination of any arithmetic instruction reading an S_load register,
// repeated to a fixpoint. No register ever leaves the set.
func additiveSLoad(p *isa.Program, l *mloop) map[isa.Reg]bool {
	sload := make(map[isa.Reg]bool)
	eachInst := func(fn func(in *isa.Inst)) {
		for b := range l.blocks {
			for pc := b.start; pc < b.end; pc++ {
				fn(&p.Insts[pc])
			}
		}
	}
	eachInst(func(in *isa.Inst) {
		if in.Op == isa.OpLoad && in.Rd != isa.RegZero {
			sload[in.Rd] = true
		}
	})
	var scratch []isa.Reg
	for again := true; again; {
		again = false
		eachInst(func(in *isa.Inst) {
			if !in.IsALU() || in.Rd == isa.RegZero || sload[in.Rd] {
				return
			}
			scratch = in.IntRegsRead(scratch[:0])
			for _, r := range scratch {
				if r != isa.RegZero && sload[r] {
					sload[in.Rd] = true
					again = true
					return
				}
			}
		})
	}
	return sload
}

// regSet is a 64-register bit set.
type regSet uint64

func (s regSet) get(r isa.Reg) bool { return s&(1<<uint(r)) != 0 }
func (s *regSet) set(r isa.Reg)     { *s |= 1 << uint(r) }
func (s *regSet) clear(r isa.Reg)   { *s &^= 1 << uint(r) }
func (s *regSet) union(o regSet)    { *s |= o }

// taintSLoad computes, for every instruction in the loop, which registers
// hold load-derived values just before it executes — a forward "taint"
// dataflow with kills over the loop body. Loop entry starts untainted
// (values computed before the loop are, from the loop's perspective,
// invariant); taint flows around the back edges to a fixpoint.
func taintSLoad(p *isa.Program, l *mloop) map[int]regSet {
	in := make(map[*mblock]regSet, len(l.blocks))
	out := make(map[*mblock]regSet, len(l.blocks))

	var scratch []isa.Reg
	step := func(t regSet, inst *isa.Inst) regSet {
		switch {
		case inst.Op == isa.OpLoad:
			if inst.Rd != isa.RegZero {
				t.set(inst.Rd)
			}
		case inst.Op == isa.OpCall:
			// The callee's result arrives in r1 and may be loaded
			// from memory; caller-saved registers are clobbered
			// with unknown (possibly loaded) values. This is the
			// conservatism about calls in loops that Section 6 of
			// the paper discusses.
			for r := isa.Reg(1); r < 32; r++ {
				t.set(r)
			}
			if inst.Rd != isa.RegZero {
				t.clear(inst.Rd) // the link register holds a PC
			}
		case inst.IsALU():
			if inst.Rd == isa.RegZero {
				break
			}
			tainted := false
			scratch = inst.IntRegsRead(scratch[:0])
			for _, r := range scratch {
				if r != isa.RegZero && t.get(r) {
					tainted = true
					break
				}
			}
			if tainted {
				t.set(inst.Rd)
			} else {
				t.clear(inst.Rd)
			}
		}
		return t
	}

	for changed := true; changed; {
		changed = false
		for b := range l.blocks {
			var newIn regSet
			for _, pr := range b.preds {
				if l.blocks[pr] {
					newIn.union(out[pr])
				}
			}
			t := newIn
			for pc := b.start; pc < b.end; pc++ {
				t = step(t, &p.Insts[pc])
			}
			if newIn != in[b] || t != out[b] {
				in[b], out[b] = newIn, t
				changed = true
			}
		}
	}

	at := make(map[int]regSet)
	for b := range l.blocks {
		t := in[b]
		for pc := b.start; pc < b.end; pc++ {
			at[pc] = t
			t = step(t, &p.Insts[pc])
		}
	}
	return at
}

// assignGroups groups loads by base-register specifier and gives the
// largest group(s) ld_e; register+register members and all other groups get
// ld_n (the base register "is not used by many other loads, or [the]
// addressing mode is not register+offset" — Section 4).
func assignGroups(p *isa.Program, pcs []int, o Options, assign func(int, Class, string), ctx string) {
	groups := make(map[isa.Reg][]int)
	for _, pc := range pcs {
		in := &p.Insts[pc]
		if in.Mode == isa.AMAbsolute {
			assign(pc, NT, ctx+" absolute")
			continue
		}
		groups[in.Base] = append(groups[in.Base], pc)
	}
	// Order groups by size (desc), then register number for determinism.
	type grp struct {
		reg  isa.Reg
		size int
	}
	var order []grp
	for r, members := range groups {
		order = append(order, grp{reg: r, size: len(members)})
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if b.size > a.size || (b.size == a.size && b.reg < a.reg) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	for i, g := range order {
		why := fmt.Sprintf("%s group r%d (%d loads)", ctx, g.reg, g.size)
		for _, pc := range groups[g.reg] {
			switch {
			case i >= o.MaxECGroups:
				assign(pc, NT, why+" not largest")
			case p.Insts[pc].Mode != isa.AMRegOffset:
				assign(pc, NT, why+" not reg+offset")
			default:
				assign(pc, EC, why)
			}
		}
	}
}

// Reclassify applies the profile-guided adjustment of Section 4.3: a load
// classified NT whose profiled address-prediction rate exceeds threshold is
// changed to PD. Nothing else is overruled. rates maps static load PCs to
// prediction rates in [0,1]; threshold 0 means the paper's 0.60.
func Reclassify(c *Classification, rates map[int]float64, threshold float64) *Classification {
	if threshold == 0 {
		threshold = 0.60
	}
	n := &Classification{
		ByPC:    make(map[int]Class, len(c.ByPC)),
		Reasons: make(map[int]string, len(c.ByPC)),
	}
	for pc, cl := range c.ByPC {
		why := c.Reasons[pc]
		if cl == NT {
			if r, ok := rates[pc]; ok && r > threshold {
				cl = PD
				why = fmt.Sprintf("profile-promoted (rate %.2f > %.2f)", r, threshold)
			}
		}
		n.ByPC[pc] = cl
		n.Reasons[pc] = why
	}
	for _, cl := range n.ByPC {
		switch cl {
		case NT:
			n.StaticNT++
		case PD:
			n.StaticPD++
		case EC:
			n.StaticEC++
		}
	}
	return n
}

// Describe renders a per-load classification listing for debugging.
func Describe(p *isa.Program, c *Classification) string {
	var sb strings.Builder
	for pc := range p.Insts {
		if cl, ok := c.ByPC[pc]; ok {
			fmt.Fprintf(&sb, "%6d  %-2s  %s\n", pc, cl, p.Insts[pc].String())
		}
	}
	return sb.String()
}
