// Package opt implements the classical optimizations the paper lists as
// prerequisites for its load-classification heuristics (Section 4):
// function inlining, local/global constant propagation, local/global copy
// propagation, local/global redundant load elimination, loop-invariant code
// removal, and induction-variable elimination/strength reduction — plus
// dead-code elimination and the addressing-mode folding that exposes the
// ISA's register+offset, register+register and absolute modes.
//
// The heuristics depend on these passes because they promote variables to
// registers and turn array address arithmetic into pointer induction
// variables; without them almost all loads would appear load-dependent and
// the classification would be useless (paper, Section 4).
package opt

import "elag/internal/ir"

// Options selects which passes run when a legacy-style pipeline is built
// from flags (see passman.Legacy). The zero value runs everything. The
// scheduling itself — pass order, the cleanup fixpoint, the
// fold-after-strength-reduction rule — lives in internal/passman; this
// package only provides the individual transformations.
type Options struct {
	// DisableInline skips function inlining.
	DisableInline bool
	// DisableLICM skips loop-invariant code motion.
	DisableLICM bool
	// DisableStrengthReduce skips induction-variable strength reduction.
	DisableStrengthReduce bool
	// DisableRLE skips redundant load elimination.
	DisableRLE bool
	// InlineBudget is the maximum callee size (IR instructions) eligible
	// for inlining. Default 40.
	InlineBudget int
	// Rounds is the maximum number of cleanup iterations. Default 8.
	Rounds int
}

// defCounts returns, for each virtual register, how many instructions
// define it, and a pointer to its unique defining instruction when the
// count is exactly one.
func defCounts(f *ir.Func) (counts map[ir.VReg]int, single map[ir.VReg]*ir.Instr) {
	counts = make(map[ir.VReg]int)
	single = make(map[ir.VReg]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Dst == ir.NoVReg {
				continue
			}
			counts[in.Dst]++
			if counts[in.Dst] == 1 {
				single[in.Dst] = in
			} else {
				delete(single, in.Dst)
			}
		}
	}
	// Parameters are defined at entry.
	for p := 0; p < f.NParams; p++ {
		v := ir.VReg(p)
		counts[v]++
		delete(single, v)
	}
	return counts, single
}

func foldBinary(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpSll:
		return a << (uint64(b) & 63), true
	case ir.OpSrl:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case ir.OpSra:
		return a >> (uint64(b) & 63), true
	}
	return 0, false
}

// ConstProp performs constant folding plus propagation: locally via a
// per-block environment, globally for registers with a single static
// definition. Returns whether anything changed.
func ConstProp(f *ir.Func) bool {
	changed := false
	_, single := defCounts(f)

	// Global: single-def registers whose definition is a constant copy.
	globalConst := make(map[ir.VReg]int64)
	for v, in := range single {
		if in.Op == ir.OpCopy {
			if c, ok := in.A.IsConst(); ok {
				globalConst[v] = c
			}
		}
	}

	for _, b := range f.Blocks {
		local := make(map[ir.VReg]int64)
		lookup := func(o ir.Operand) ir.Operand {
			if o.Kind != ir.OpndReg {
				return o
			}
			if c, ok := local[o.Reg]; ok {
				return ir.C(c)
			}
			if c, ok := globalConst[o.Reg]; ok {
				return ir.C(c)
			}
			return o
		}
		for _, in := range b.Insts {
			// Substitute known-constant operands.
			for _, p := range []*ir.Operand{&in.A, &in.B, &in.Base} {
				if n := lookup(*p); n != *p {
					*p = n
					changed = true
				}
			}
			if in.Op == ir.OpCall {
				for i := range in.Args {
					if n := lookup(in.Args[i]); n != in.Args[i] {
						in.Args[i] = n
						changed = true
					}
				}
			}
			if in.Index != ir.NoVReg {
				// An index register that became constant folds
				// into the displacement.
				if c, ok := local[in.Index]; ok {
					in.Off += c
					in.Index = ir.NoVReg
					changed = true
				} else if c, ok := globalConst[in.Index]; ok {
					in.Off += c
					in.Index = ir.NoVReg
					changed = true
				}
			}

			// Fold.
			if in.Op.IsBinary() {
				if a, okA := in.A.IsConst(); okA {
					if bv, okB := in.B.IsConst(); okB {
						if v, ok := foldBinary(in.Op, a, bv); ok {
							in.Op = ir.OpCopy
							in.A = ir.C(v)
							in.B = ir.Operand{}
							changed = true
						}
					}
				}
				// Multiply by a power of two becomes a shift
				// (shifts are single-cycle; multiplies are not).
				if in.Op == ir.OpMul {
					if k, ok := in.B.IsConst(); ok && k > 1 && k&(k-1) == 0 {
						sh := int64(0)
						for v := k; v > 1; v >>= 1 {
							sh++
						}
						in.Op = ir.OpSll
						in.B = ir.C(sh)
						changed = true
					}
				}
				// Identity simplifications.
				if bv, ok := in.B.IsConst(); ok && bv == 0 &&
					(in.Op == ir.OpAdd || in.Op == ir.OpSub ||
						in.Op == ir.OpOr || in.Op == ir.OpXor ||
						in.Op == ir.OpSll || in.Op == ir.OpSrl || in.Op == ir.OpSra) {
					in.Op = ir.OpCopy
					in.B = ir.Operand{}
					changed = true
				}
				// &g + c folds into a symbol operand.
				if in.Op == ir.OpAdd {
					if in.A.Kind == ir.OpndSym {
						if c, ok := in.B.IsConst(); ok {
							s := in.A
							s.Imm += c
							in.Op = ir.OpCopy
							in.A = s
							in.B = ir.Operand{}
							changed = true
						}
					} else if in.B.Kind == ir.OpndSym {
						if c, ok := in.A.IsConst(); ok {
							s := in.B
							s.Imm += c
							in.Op = ir.OpCopy
							in.A = s
							in.B = ir.Operand{}
							changed = true
						}
					}
				}
			}
			if in.Op == ir.OpCmp {
				if a, okA := in.A.IsConst(); okA {
					if bv, okB := in.B.IsConst(); okB {
						v := int64(0)
						if in.Cond.Eval(a, bv) {
							v = 1
						}
						in.Op = ir.OpCopy
						in.A = ir.C(v)
						in.B = ir.Operand{}
						changed = true
					}
				}
			}

			// Update the local environment.
			if in.Dst != ir.NoVReg {
				delete(local, in.Dst)
				if in.Op == ir.OpCopy {
					if c, ok := in.A.IsConst(); ok {
						local[in.Dst] = c
					}
				}
			}
		}
		// Fold always-taken / never-taken conditional branches.
		if t := b.Term(); t != nil && t.Op == ir.OpBr {
			if a, okA := t.A.IsConst(); okA {
				if bv, okB := t.B.IsConst(); okB {
					to := t.Else
					if t.Cond.Eval(a, bv) {
						to = t.Then
					}
					t.Op = ir.OpJmp
					t.To = to
					t.A, t.B = ir.Operand{}, ir.Operand{}
					t.Then, t.Else = nil, nil
					changed = true
				}
			}
		}
	}
	if changed {
		f.ComputeCFG()
	}
	return changed
}

// CopyProp propagates register copies: locally through a per-block
// environment, globally for single-definition copy chains.
func CopyProp(f *ir.Func) bool {
	changed := false
	counts, single := defCounts(f)

	// Global: v = copy w, both single-def => uses of v become w.
	globalCopy := make(map[ir.VReg]ir.Operand)
	resolve := func(v ir.VReg) (ir.Operand, bool) {
		seen := 0
		cur := v
		for {
			in := single[cur]
			if in == nil || in.Op != ir.OpCopy {
				break
			}
			o := in.A
			switch o.Kind {
			case ir.OpndConst, ir.OpndSym, ir.OpndFrame:
				return o, true
			case ir.OpndReg:
				if counts[o.Reg] != 1 {
					if cur != v {
						return ir.R(cur), true
					}
					return ir.Operand{}, false
				}
				cur = o.Reg
				seen++
				if seen > 32 {
					return ir.Operand{}, false
				}
				continue
			}
			break
		}
		if cur != v {
			return ir.R(cur), true
		}
		return ir.Operand{}, false
	}
	for v := range single {
		if o, ok := resolve(v); ok {
			globalCopy[v] = o
		}
	}
	var scratch []ir.VReg
	for _, b := range f.Blocks {
		local := make(map[ir.VReg]ir.Operand)
		for _, in := range b.Insts {
			scratch = in.Uses(scratch[:0])
			for _, u := range scratch {
				rep, ok := local[u]
				if !ok {
					rep, ok = globalCopy[u]
				}
				if ok && in.ReplaceUses(u, rep) {
					changed = true
				}
			}
			if in.Dst != ir.NoVReg {
				// Kill environment entries invalidated by this def.
				delete(local, in.Dst)
				for k, o := range local {
					if o.IsReg(in.Dst) {
						delete(local, k)
					}
				}
				if in.Op == ir.OpCopy {
					switch in.A.Kind {
					case ir.OpndReg, ir.OpndConst, ir.OpndSym, ir.OpndFrame:
						if !in.A.IsReg(in.Dst) {
							local[in.Dst] = in.A
						}
					}
				}
			}
		}
	}
	return changed
}

// CoalesceCopies rewrites the front end's "t = op ...; x = copy t" pairs as
// "x = op ..." when t has exactly that one use and one definition and the
// two instructions are adjacent. This is the virtual-register coalescing
// half of the paper's "virtual register allocation" pass: without it every
// assignment costs an extra move, inflating loop bodies and masking load
// stalls.
func CoalesceCopies(f *ir.Func) bool {
	uses := make(map[ir.VReg]int)
	var scratch []ir.VReg
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			scratch = in.Uses(scratch[:0])
			for _, u := range scratch {
				uses[u]++
			}
		}
	}
	counts, single := defCounts(f)
	changed := false
	for _, b := range f.Blocks {
		kept := b.Insts[:0]
		for _, in := range b.Insts {
			if in.Op == ir.OpCopy && in.A.Kind == ir.OpndReg && len(kept) > 0 {
				t := in.A.Reg
				prev := kept[len(kept)-1]
				if prev.Dst == t && uses[t] == 1 && counts[t] == 1 &&
					single[t] == prev && in.Dst != t &&
					prev.Op != ir.OpCall {
					prev.Dst = in.Dst
					changed = true
					continue
				}
			}
			kept = append(kept, in)
		}
		b.Insts = kept
	}
	return changed
}

// DeadCodeElim removes pure instructions whose results are never used.
func DeadCodeElim(f *ir.Func) bool {
	used := make(map[ir.VReg]bool)
	var scratch []ir.VReg
	// Transitively mark uses, seeded by side-effecting instructions.
	for again := true; again; {
		again = false
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				live := in.HasSideEffects() || in.IsTerminator() ||
					(in.Dst != ir.NoVReg && used[in.Dst]) ||
					in.Op == ir.OpCall
				if !live {
					continue
				}
				scratch = in.Uses(scratch[:0])
				for _, u := range scratch {
					if !used[u] {
						used[u] = true
						again = true
					}
				}
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Insts[:0]
		for _, in := range b.Insts {
			dead := !in.HasSideEffects() && !in.IsTerminator() &&
				in.Op != ir.OpCall &&
				(in.Dst == ir.NoVReg || !used[in.Dst])
			if dead && in.Op != ir.OpNop {
				changed = true
				continue
			}
			if in.Op == ir.OpNop {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Insts = kept
	}
	return changed
}
