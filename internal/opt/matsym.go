package opt

import "elag/internal/ir"

// MaterializeSyms rewrites global-address (and stack-slot-address) operands
// of arithmetic instructions and indexed memory operations into explicit
// register copies, so that LICM can hoist the address materialization out
// of loops. Without this pass the code generator re-materializes the symbol
// address (an li instruction) at every use.
//
// Memory operations without an index register keep their symbol base: the
// ISA addresses those in one instruction (absolute mode), and the acyclic
// classification heuristic specifically looks for absolute-mode loads.
//
// Run this after the main optimization rounds and follow it with LICM and
// DCE only — constant/copy propagation would fold the addresses straight
// back into the instructions.
func MaterializeSyms(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		var out []*ir.Instr
		mat := func(o ir.Operand) ir.Operand {
			if o.Kind != ir.OpndSym && o.Kind != ir.OpndFrame {
				return o
			}
			t := f.NewVReg()
			cp := ir.NewInstr(ir.OpCopy)
			cp.Dst = t
			cp.A = o
			out = append(out, cp)
			changed = true
			return ir.R(t)
		}
		for _, in := range b.Insts {
			switch {
			case in.Op.IsBinary() || in.Op == ir.OpCmp:
				in.A = mat(in.A)
				in.B = mat(in.B)
			case (in.Op == ir.OpLoad || in.Op == ir.OpStore) && in.Index != ir.NoVReg:
				in.Base = mat(in.Base)
			case in.Op == ir.OpStore:
				// The stored value (an address constant) is
				// also worth keeping in a register.
				in.A = mat(in.A)
			}
			out = append(out, in)
		}
		b.Insts = out
	}
	return changed
}
