package opt

import (
	"strings"
	"testing"

	"elag/internal/ir"
	"elag/internal/isa"
)

// single-block helper: builds a function from instructions plus a ret.
func oneBlock(f *ir.Func, ins ...*ir.Instr) *ir.Block {
	b := f.NewBlock()
	b.Insts = append(b.Insts, ins...)
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.C(0)
	b.Insts = append(b.Insts, ret)
	f.ComputeCFG()
	return b
}

func bin(op ir.Op, d ir.VReg, a, b ir.Operand) *ir.Instr {
	in := ir.NewInstr(op)
	in.Dst = d
	in.A, in.B = a, b
	return in
}

func cp(d ir.VReg, a ir.Operand) *ir.Instr {
	in := ir.NewInstr(ir.OpCopy)
	in.Dst = d
	in.A = a
	return in
}

// runAll replays the historical full-pipeline schedule over the module
// using the exported passes. The production scheduler now lives in
// internal/passman (which this package cannot import); this local copy
// keeps the whole-pipeline tests in the package that owns the passes.
func runAll(m *ir.Module, o Options) {
	if o.InlineBudget == 0 {
		o.InlineBudget = 40
	}
	if o.Rounds == 0 {
		o.Rounds = 8
	}
	if !o.DisableInline {
		Inline(m, o.InlineBudget)
		PruneDeadFuncs(m)
	}
	for _, f := range m.Funcs {
		f.ComputeCFG()
		for r := 0; r < o.Rounds; r++ {
			changed := false
			changed = ConstProp(f) || changed
			changed = LocalCSE(f) || changed
			changed = CopyProp(f) || changed
			changed = CoalesceCopies(f) || changed
			if !o.DisableRLE {
				changed = RedundantLoadElim(f) || changed
			}
			changed = DeadCodeElim(f) || changed
			if !o.DisableLICM {
				changed = LICM(f) || changed
			}
			srChanged := false
			if !o.DisableStrengthReduce {
				srChanged = StrengthReduce(f)
				changed = srChanged || changed
			}
			if !srChanged {
				changed = FoldAddressing(f) || changed
			}
			changed = DeadCodeElim(f) || changed
			if !changed {
				break
			}
		}
		if MaterializeSyms(f) && !o.DisableLICM {
			LICM(f)
			DeadCodeElim(f)
		}
	}
}

func TestConstPropFoldsChains(t *testing.T) {
	f := ir.NewFunc("t", 0)
	v0, v1, v2 := f.NewVReg(), f.NewVReg(), f.NewVReg()
	b := oneBlock(f,
		cp(v0, ir.C(6)),
		cp(v1, ir.C(7)),
		bin(ir.OpMul, v2, ir.R(v0), ir.R(v1)),
	)
	ConstProp(f)
	mul := b.Insts[2]
	if mul.Op != ir.OpCopy {
		t.Fatalf("6*7 not folded: %s", mul)
	}
	if v, ok := mul.A.IsConst(); !ok || v != 42 {
		t.Errorf("folded value = %v", mul.A)
	}
}

func TestConstPropMulBecomesShift(t *testing.T) {
	f := ir.NewFunc("t", 1)
	v1 := f.NewVReg()
	b := oneBlock(f, bin(ir.OpMul, v1, ir.R(0), ir.C(8)))
	ConstProp(f)
	if in := b.Insts[0]; in.Op != ir.OpSll {
		t.Errorf("mul by 8 not strength-reduced to shift: %s", in)
	} else if v, _ := in.B.IsConst(); v != 3 {
		t.Errorf("shift amount = %d", v)
	}
}

func TestConstPropFoldsBranch(t *testing.T) {
	f := ir.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	br := ir.NewInstr(ir.OpBr)
	br.Cond = isa.CondLT
	br.A, br.B = ir.C(1), ir.C(2)
	br.Then, br.Else = b1, b2
	b0.Insts = append(b0.Insts, br)
	r1 := ir.NewInstr(ir.OpRet)
	r1.A = ir.C(1)
	b1.Insts = append(b1.Insts, r1)
	r2 := ir.NewInstr(ir.OpRet)
	r2.A = ir.C(2)
	b2.Insts = append(b2.Insts, r2)
	f.ComputeCFG()
	ConstProp(f)
	if tm := b0.Term(); tm.Op != ir.OpJmp || tm.To != b1 {
		t.Errorf("constant branch not folded: %s", tm)
	}
	if len(f.Blocks) != 2 {
		t.Errorf("dead arm not pruned: %d blocks", len(f.Blocks))
	}
}

func TestCopyPropLocal(t *testing.T) {
	f := ir.NewFunc("t", 1)
	v1, v2 := f.NewVReg(), f.NewVReg()
	b := oneBlock(f,
		cp(v1, ir.R(0)),
		bin(ir.OpAdd, v2, ir.R(v1), ir.C(1)),
	)
	CopyProp(f)
	if add := b.Insts[1]; !add.A.IsReg(0) {
		t.Errorf("copy not propagated: %s", add)
	}
}

func TestCopyPropRespectsRedefinition(t *testing.T) {
	// v1 = v0; v0 = 9; v2 = v1 + 1  — v1 must NOT become v0.
	f := ir.NewFunc("t", 1)
	v1, v2 := f.NewVReg(), f.NewVReg()
	b := oneBlock(f,
		cp(v1, ir.R(0)),
		cp(0, ir.C(9)),
		bin(ir.OpAdd, v2, ir.R(v1), ir.C(1)),
	)
	CopyProp(f)
	if add := b.Insts[2]; add.A.IsReg(0) {
		t.Errorf("copy propagated across redefinition: %s", add)
	}
}

func TestDeadCodeElim(t *testing.T) {
	f := ir.NewFunc("t", 1)
	dead, live := f.NewVReg(), f.NewVReg()
	b := f.NewBlock()
	b.Insts = append(b.Insts,
		bin(ir.OpAdd, dead, ir.R(0), ir.C(1)), // never used
		bin(ir.OpAdd, live, ir.R(0), ir.C(2)),
	)
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.R(live)
	b.Insts = append(b.Insts, ret)
	f.ComputeCFG()
	DeadCodeElim(f)
	if len(b.Insts) != 2 {
		t.Errorf("dead add not removed: %d instructions", len(b.Insts))
	}
	if b.Insts[0].Dst != live {
		t.Errorf("wrong instruction removed")
	}
}

func TestDCEKeepsStoresCallsAndDivs(t *testing.T) {
	f := ir.NewFunc("t", 1)
	v := f.NewVReg()
	st := ir.NewInstr(ir.OpStore)
	st.A = ir.R(0)
	st.Base = ir.S("g", 0)
	st.Width = 8
	call := ir.NewInstr(ir.OpCall)
	call.Callee = "f"
	call.Dst = f.NewVReg() // unused result
	div := bin(ir.OpDiv, v, ir.R(0), ir.R(0))
	b := oneBlock(f, st, call, div)
	DeadCodeElim(f)
	if len(b.Insts) != 4 {
		t.Errorf("side-effecting instructions removed: %d left", len(b.Insts))
	}
}

func TestRedundantLoadElim(t *testing.T) {
	f := ir.NewFunc("t", 1)
	v1, v2, v3 := f.NewVReg(), f.NewVReg(), f.NewVReg()
	ld1 := ir.NewInstr(ir.OpLoad)
	ld1.Dst = v1
	ld1.Base = ir.R(0)
	ld1.Off = 8
	ld1.Width = 8
	ld2 := ir.NewInstr(ir.OpLoad)
	*ld2 = *ld1
	ld2.Dst = v2
	use := bin(ir.OpAdd, v3, ir.R(v1), ir.R(v2))
	b := oneBlock(f, ld1, ld2, use)
	if !RedundantLoadElim(f) {
		t.Fatalf("redundant load not detected")
	}
	if b.Insts[1].Op != ir.OpCopy || !b.Insts[1].A.IsReg(v1) {
		t.Errorf("second load not rewritten to a copy: %s", b.Insts[1])
	}
}

func TestRLEStoreInvalidates(t *testing.T) {
	f := ir.NewFunc("t", 2)
	v1, v2 := f.NewVReg(), f.NewVReg()
	ld1 := ir.NewInstr(ir.OpLoad)
	ld1.Dst = v1
	ld1.Base = ir.R(0)
	ld1.Width = 8
	st := ir.NewInstr(ir.OpStore)
	st.A = ir.R(1)
	st.Base = ir.R(1) // may alias
	st.Width = 8
	ld2 := ir.NewInstr(ir.OpLoad)
	ld2.Dst = v2
	ld2.Base = ir.R(0)
	ld2.Width = 8
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(v1), ir.R(v2))
	b := oneBlock(f, ld1, st, ld2, use)
	RedundantLoadElim(f)
	if b.Insts[2].Op != ir.OpLoad {
		t.Errorf("load after aliasing store was removed")
	}
}

func TestRLEStoreToLoadForwarding(t *testing.T) {
	f := ir.NewFunc("t", 2)
	v2 := f.NewVReg()
	st := ir.NewInstr(ir.OpStore)
	st.A = ir.R(1)
	st.Base = ir.R(0)
	st.Off = 16
	st.Width = 8
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = v2
	ld.Base = ir.R(0)
	ld.Off = 16
	ld.Width = 8
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(v2), ir.C(0))
	b := oneBlock(f, st, ld, use)
	RedundantLoadElim(f)
	if b.Insts[1].Op != ir.OpCopy || !b.Insts[1].A.IsReg(1) {
		t.Errorf("store-to-load not forwarded: %s", b.Insts[1])
	}
}

func TestCoalesceCopies(t *testing.T) {
	f := ir.NewFunc("t", 1)
	tmp, x := f.NewVReg(), f.NewVReg()
	add := bin(ir.OpAdd, tmp, ir.R(0), ir.C(1))
	mv := cp(x, ir.R(tmp))
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(x), ir.C(2))
	b := oneBlock(f, add, mv, use)
	if !CoalesceCopies(f) {
		t.Fatalf("adjacent op+copy not coalesced")
	}
	if len(b.Insts) != 3 { // add, use, ret
		t.Fatalf("copy not removed: %d instructions", len(b.Insts))
	}
	if b.Insts[0].Dst != x {
		t.Errorf("destination not renamed: %s", b.Insts[0])
	}
}

func TestCoalesceRequiresSingleUse(t *testing.T) {
	f := ir.NewFunc("t", 1)
	tmp, x := f.NewVReg(), f.NewVReg()
	add := bin(ir.OpAdd, tmp, ir.R(0), ir.C(1))
	mv := cp(x, ir.R(tmp))
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(tmp), ir.R(x)) // tmp used again
	b := oneBlock(f, add, mv, use)
	CoalesceCopies(f)
	if len(b.Insts) != 4 {
		t.Errorf("copy with extra use of source was coalesced")
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	// for(...) { v = n*8 (invariant); i++ }
	f := ir.NewFunc("t", 1)
	i, v := f.NewVReg(), f.NewVReg()
	entry, head, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	init := cp(i, ir.C(0))
	j := ir.NewInstr(ir.OpJmp)
	j.To = head
	entry.Insts = append(entry.Insts, init, j)
	br := ir.NewInstr(ir.OpBr)
	br.Cond = isa.CondLT
	br.A, br.B = ir.R(i), ir.R(0)
	br.Then, br.Else = body, exit
	head.Insts = append(head.Insts, br)
	inv := bin(ir.OpMul, v, ir.R(0), ir.C(8)) // invariant: param * 8
	inc := bin(ir.OpAdd, i, ir.R(i), ir.C(1))
	j2 := ir.NewInstr(ir.OpJmp)
	j2.To = head
	body.Insts = append(body.Insts, inv, inc, j2)
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.R(v)
	exit.Insts = append(exit.Insts, ret)
	f.ComputeCFG()
	if !LICM(f) {
		t.Fatalf("invariant not hoisted")
	}
	for _, in := range body.Insts {
		if in == inv {
			t.Errorf("invariant still in loop body")
		}
	}
}

func TestStrengthReduceMakesPointerIV(t *testing.T) {
	// i = 0; loop: t = i*8; load [t + &g]; i++ — after reduction the
	// load's address register must step by 8 (a pointer IV).
	f := ir.NewFunc("t", 0)
	i, tv, a, v := f.NewVReg(), f.NewVReg(), f.NewVReg(), f.NewVReg()
	entry, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock()
	init := cp(i, ir.C(0))
	j := ir.NewInstr(ir.OpJmp)
	j.To = body
	entry.Insts = append(entry.Insts, init, j)
	mul := bin(ir.OpMul, tv, ir.R(i), ir.C(8))
	addr := bin(ir.OpAdd, a, ir.S("g", 0), ir.R(tv))
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = v
	ld.Base = ir.R(a)
	ld.Width = 8
	inc := bin(ir.OpAdd, i, ir.R(i), ir.C(1))
	br := ir.NewInstr(ir.OpBr)
	br.Cond = isa.CondLT
	br.A, br.B = ir.R(i), ir.C(100)
	br.Then, br.Else = body, exit
	body.Insts = append(body.Insts, mul, addr, ld, inc, br)
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.R(v)
	exit.Insts = append(exit.Insts, ret)
	f.ComputeCFG()

	runAll(&ir.Module{Funcs: []*ir.Func{f}}, Options{DisableInline: true})

	// After the full pipeline the load's base register must be defined
	// by a self-incrementing add (a pointer IV), and the multiply must
	// be gone from the loop.
	var loadIn *ir.Instr
	mulCount := 0
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpLoad {
				loadIn = in
			}
			if in.Op == ir.OpMul || in.Op == ir.OpSll {
				mulCount++
			}
		}
	}
	if loadIn == nil {
		t.Fatalf("load disappeared:\n%s", f.String())
	}
	if loadIn.Base.Kind != ir.OpndReg {
		t.Fatalf("load base not a register: %s\n%s", loadIn, f.String())
	}
	base := loadIn.Base.Reg
	foundStep := false
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpAdd && in.Dst == base && in.A.IsReg(base) {
				if c, ok := in.B.IsConst(); ok && c == 8 {
					foundStep = true
				}
			}
		}
	}
	if !foundStep {
		t.Errorf("load base is not a stride-8 pointer IV:\n%s", f.String())
	}
	_ = mulCount
}

func TestFoldAddressing(t *testing.T) {
	f := ir.NewFunc("t", 2)
	a, v := f.NewVReg(), f.NewVReg()
	add := bin(ir.OpAdd, a, ir.R(0), ir.C(24))
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = v
	ld.Base = ir.R(a)
	ld.Width = 8
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(v), ir.C(0))
	oneBlock(f, add, ld, use)
	if !FoldAddressing(f) {
		t.Fatalf("reg+const address not folded")
	}
	if !ld.Base.IsReg(0) || ld.Off != 24 {
		t.Errorf("folded load wrong: %s", ld)
	}
}

func TestFoldAddressingRegReg(t *testing.T) {
	f := ir.NewFunc("t", 2)
	a, v := f.NewVReg(), f.NewVReg()
	add := bin(ir.OpAdd, a, ir.R(0), ir.R(1))
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = v
	ld.Base = ir.R(a)
	ld.Width = 8
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(v), ir.C(0))
	oneBlock(f, add, ld, use)
	FoldAddressing(f)
	if !ld.Base.IsReg(0) || ld.Index != 1 {
		t.Errorf("reg+reg not folded: %s", ld)
	}
}

func TestFoldAddressingRejectsSelfIncrement(t *testing.T) {
	// p = p + 8; load [p]  — folding would read p before its update.
	f := ir.NewFunc("t", 1)
	v := f.NewVReg()
	inc := bin(ir.OpAdd, 0, ir.R(0), ir.C(8))
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = v
	ld.Base = ir.R(0)
	ld.Width = 8
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(v), ir.C(0))
	oneBlock(f, inc, ld, use)
	FoldAddressing(f)
	if ld.Off != 0 {
		t.Errorf("self-increment folded into load: %s", ld)
	}
}

func TestInlineExpandsSmallCallee(t *testing.T) {
	m := &ir.Module{}
	callee := ir.NewFunc("double", 1)
	cb := callee.NewBlock()
	d := callee.NewVReg()
	cb.Insts = append(cb.Insts, bin(ir.OpAdd, d, ir.R(0), ir.R(0)))
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.R(d)
	cb.Insts = append(cb.Insts, ret)

	caller := ir.NewFunc("main", 0)
	mb := caller.NewBlock()
	res := caller.NewVReg()
	call := ir.NewInstr(ir.OpCall)
	call.Callee = "double"
	call.Dst = res
	call.Args = []ir.Operand{ir.C(21)}
	mb.Insts = append(mb.Insts, call)
	mret := ir.NewInstr(ir.OpRet)
	mret.A = ir.R(res)
	mb.Insts = append(mb.Insts, mret)
	caller.ComputeCFG()
	callee.ComputeCFG()
	m.Funcs = []*ir.Func{caller, callee}

	if !Inline(m, 40) {
		t.Fatalf("small callee not inlined")
	}
	for _, b := range caller.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpCall {
				t.Errorf("call survived inlining: %s", in)
			}
		}
	}
	PruneDeadFuncs(m)
	if m.Func("double") != nil {
		t.Errorf("dead callee not pruned")
	}
	if m.Func("main") == nil {
		t.Errorf("main pruned!")
	}
}

func TestInlineSkipsRecursive(t *testing.T) {
	m := &ir.Module{}
	rec := ir.NewFunc("rec", 1)
	rb := rec.NewBlock()
	call := ir.NewInstr(ir.OpCall)
	call.Callee = "rec"
	call.Dst = rec.NewVReg()
	call.Args = []ir.Operand{ir.R(0)}
	rb.Insts = append(rb.Insts, call)
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.R(call.Dst)
	rb.Insts = append(rb.Insts, ret)
	rec.ComputeCFG()

	main := ir.NewFunc("main", 0)
	mb := main.NewBlock()
	c2 := ir.NewInstr(ir.OpCall)
	c2.Callee = "rec"
	c2.Dst = main.NewVReg()
	c2.Args = []ir.Operand{ir.C(1)}
	mb.Insts = append(mb.Insts, c2)
	mret := ir.NewInstr(ir.OpRet)
	mret.A = ir.R(c2.Dst)
	mb.Insts = append(mb.Insts, mret)
	main.ComputeCFG()
	m.Funcs = []*ir.Func{main, rec}

	Inline(m, 100)
	found := false
	for _, b := range main.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpCall && in.Callee == "rec" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("recursive function was inlined")
	}
}

func TestMaterializeSyms(t *testing.T) {
	f := ir.NewFunc("t", 1)
	v := f.NewVReg()
	ld := ir.NewInstr(ir.OpLoad)
	ld.Dst = v
	ld.Base = ir.S("g", 0)
	ld.Index = 0 // indexed: must be materialized
	ld.Width = 8
	abs := ir.NewInstr(ir.OpLoad)
	abs.Dst = f.NewVReg()
	abs.Base = ir.S("g", 8)
	abs.Index = ir.NoVReg // absolute: must stay
	abs.Width = 8
	use := bin(ir.OpAdd, f.NewVReg(), ir.R(v), ir.R(abs.Dst))
	b := oneBlock(f, ld, abs, use)
	if !MaterializeSyms(f) {
		t.Fatalf("no materialization happened")
	}
	if ld.Base.Kind != ir.OpndReg {
		t.Errorf("indexed sym base not materialized: %s", ld)
	}
	if abs.Base.Kind != ir.OpndSym {
		t.Errorf("absolute sym base materialized: %s", abs)
	}
	if b.Insts[0].Op != ir.OpCopy || b.Insts[0].A.Kind != ir.OpndSym {
		t.Errorf("materializing copy missing: %s", b.Insts[0])
	}
}

func TestRunIsIdempotentish(t *testing.T) {
	// Running the driver twice must not change the instruction count
	// after the first convergence.
	f := ir.NewFunc("main", 0)
	v := f.NewVReg()
	oneBlock(f, cp(v, ir.C(1)), bin(ir.OpAdd, f.NewVReg(), ir.R(v), ir.C(2)))
	m := &ir.Module{Funcs: []*ir.Func{f}}
	runAll(m, Options{})
	count := func() int {
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Insts)
		}
		return n
	}
	before := count()
	runAll(m, Options{})
	if count() != before {
		t.Errorf("second Run changed the program: %d -> %d", before, count())
	}
}

func TestOptionsDisableFlags(t *testing.T) {
	// Smoke-test the ablation switches: all-off still terminates and
	// leaves a valid function.
	f := ir.NewFunc("main", 0)
	v := f.NewVReg()
	oneBlock(f, cp(v, ir.C(1)))
	m := &ir.Module{Funcs: []*ir.Func{f}}
	runAll(m, Options{
		DisableInline:         true,
		DisableLICM:           true,
		DisableStrengthReduce: true,
		DisableRLE:            true,
	})
	if len(f.Blocks) == 0 {
		t.Errorf("function destroyed")
	}
	var sb strings.Builder
	sb.WriteString(f.String())
	if sb.Len() == 0 {
		t.Errorf("unprintable function")
	}
}

func TestLocalCSE(t *testing.T) {
	f := ir.NewFunc("t", 2)
	v1, v2 := f.NewVReg(), f.NewVReg()
	a1 := bin(ir.OpAdd, v1, ir.R(0), ir.R(1))
	a2 := bin(ir.OpAdd, v2, ir.R(0), ir.R(1)) // same expression
	use := bin(ir.OpXor, f.NewVReg(), ir.R(v1), ir.R(v2))
	b := oneBlock(f, a1, a2, use)
	if !LocalCSE(f) {
		t.Fatalf("common subexpression not found")
	}
	if b.Insts[1].Op != ir.OpCopy || !b.Insts[1].A.IsReg(v1) {
		t.Errorf("duplicate add not rewritten: %s", b.Insts[1])
	}
}

func TestLocalCSERespectsRedefinition(t *testing.T) {
	// v0 is redefined between the two adds: no reuse allowed.
	f := ir.NewFunc("t", 2)
	v1, v2 := f.NewVReg(), f.NewVReg()
	a1 := bin(ir.OpAdd, v1, ir.R(0), ir.R(1))
	redef := cp(0, ir.C(99))
	a2 := bin(ir.OpAdd, v2, ir.R(0), ir.R(1))
	use := bin(ir.OpXor, f.NewVReg(), ir.R(v1), ir.R(v2))
	b := oneBlock(f, a1, redef, a2, use)
	LocalCSE(f)
	if b.Insts[2].Op != ir.OpAdd {
		t.Errorf("CSE across operand redefinition: %s", b.Insts[2])
	}
}

func TestLocalCSESkipsSideEffects(t *testing.T) {
	f := ir.NewFunc("t", 2)
	v1, v2 := f.NewVReg(), f.NewVReg()
	d1 := bin(ir.OpDiv, v1, ir.R(0), ir.R(1)) // may fault: kept
	d2 := bin(ir.OpDiv, v2, ir.R(0), ir.R(1))
	use := bin(ir.OpXor, f.NewVReg(), ir.R(v1), ir.R(v2))
	b := oneBlock(f, d1, d2, use)
	LocalCSE(f)
	if b.Insts[1].Op != ir.OpDiv {
		t.Errorf("side-effecting div folded by CSE")
	}
}
