package opt

import "elag/internal/ir"

// LocalCSE eliminates common subexpressions within basic blocks: a pure
// binary or compare instruction whose operator and operands match an
// earlier instruction in the block — with no intervening redefinition of
// those operands — is rewritten as a copy of the earlier result. Runs
// before copy propagation so the copies dissolve.
func LocalCSE(f *ir.Func) bool {
	changed := false
	_, single := defCounts(f)

	type exprKey struct {
		op   ir.Op
		cond int
		a, b ir.Operand
	}
	for _, b := range f.Blocks {
		avail := make(map[exprKey]ir.VReg)
		kill := func(v ir.VReg) {
			for k, r := range avail {
				if r == v || k.a.IsReg(v) || k.b.IsReg(v) {
					delete(avail, k)
				}
			}
		}
		for _, in := range b.Insts {
			pure := (in.Op.IsBinary() || in.Op == ir.OpCmp) && !in.HasSideEffects()
			if pure && in.Dst != ir.NoVReg {
				k := exprKey{op: in.Op, cond: int(in.Cond), a: in.A, b: in.B}
				if prev, ok := avail[k]; ok && prev != in.Dst {
					in.Op = ir.OpCopy
					in.A = ir.R(prev)
					in.B = ir.Operand{}
					changed = true
					kill(in.Dst)
					continue
				}
				dst := in.Dst
				kill(dst)
				// Only single-definition results are safe to reuse
				// later in the block (another definition elsewhere
				// could be the one that reaches a removed compute).
				if single[dst] != nil {
					avail[k] = dst
				}
				continue
			}
			if in.Dst != ir.NoVReg {
				kill(in.Dst)
			}
			if in.Op == ir.OpCall {
				// Calls clobber nothing register-wise beyond Dst,
				// but be conservative about keeping tables small.
				for k := range avail {
					delete(avail, k)
				}
			}
		}
	}
	return changed
}
