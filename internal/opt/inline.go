package opt

import "elag/internal/ir"

// PruneDeadFuncs removes functions that are unreachable from main via
// calls — in particular the original bodies of fully inlined functions,
// which would otherwise pollute the static load-classification statistics
// with never-executed code.
func PruneDeadFuncs(m *ir.Module) bool {
	reach := map[string]bool{"main": true}
	work := []string{"main"}
	for len(work) > 0 {
		f := m.Func(work[len(work)-1])
		work = work[:len(work)-1]
		if f == nil {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == ir.OpCall && !reach[in.Callee] {
					reach[in.Callee] = true
					work = append(work, in.Callee)
				}
			}
		}
	}
	kept := m.Funcs[:0]
	changed := false
	for _, f := range m.Funcs {
		if reach[f.Name] {
			kept = append(kept, f)
		} else {
			changed = true
		}
	}
	m.Funcs = kept
	return changed
}

// Inline expands calls to small functions in place. The paper applies
// function inlining before load classification so that loads inside hot
// callees participate in the caller's loop analysis; a call left in a loop
// forces conservative classification (Section 6).
//
// budget is the maximum callee size in IR instructions. Two sweeps are
// performed so that small wrappers of small functions flatten completely.
// Directly recursive functions are never inlined.
func Inline(m *ir.Module, budget int) bool {
	changed := false
	for sweep := 0; sweep < 2; sweep++ {
		for _, f := range m.Funcs {
			if inlineInto(m, f, budget) {
				changed = true
			}
		}
	}
	return changed
}

func funcSize(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

func isRecursive(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpCall && in.Callee == f.Name {
				return true
			}
		}
	}
	return false
}

func inlineInto(m *ir.Module, f *ir.Func, budget int) bool {
	changed := false
	// Re-scan after every expansion: inlining rewrites the block list.
	// The expansion cap keeps mutually recursive small functions from
	// unrolling forever.
	for n := 0; n < 50; n++ {
		site := findSite(m, f, budget)
		if site == nil {
			break
		}
		expand(m, f, site)
		changed = true
	}
	return changed
}

type callSite struct {
	blk    *ir.Block
	idx    int
	callee *ir.Func
}

func findSite(m *ir.Module, f *ir.Func, budget int) *callSite {
	for _, b := range f.Blocks {
		for i, in := range b.Insts {
			if in.Op != ir.OpCall {
				continue
			}
			g := m.Func(in.Callee)
			if g == nil || g == f || funcSize(g) > budget || isRecursive(g) {
				continue
			}
			return &callSite{blk: b, idx: i, callee: g}
		}
	}
	return nil
}

// expand splices a clone of site.callee in place of the call instruction.
func expand(m *ir.Module, f *ir.Func, site *callSite) {
	g := site.callee
	call := site.blk.Insts[site.idx]

	// Remap tables.
	vmap := make(map[ir.VReg]ir.VReg, g.NumVRegs())
	mapV := func(v ir.VReg) ir.VReg {
		if v == ir.NoVReg {
			return ir.NoVReg
		}
		nv, ok := vmap[v]
		if !ok {
			nv = f.NewVReg()
			vmap[v] = nv
		}
		return nv
	}
	smap := make(map[int]int, len(g.Slots))
	for i, s := range g.Slots {
		smap[i] = f.NewSlot(g.Name+"."+s.Name, s.Size)
	}
	bmap := make(map[*ir.Block]*ir.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		bmap[b] = f.NewBlock()
	}

	mapOpnd := func(o ir.Operand) ir.Operand {
		switch o.Kind {
		case ir.OpndReg:
			o.Reg = mapV(o.Reg)
		case ir.OpndFrame:
			o.Slot = smap[o.Slot]
		}
		return o
	}

	// Split the caller block after the call.
	tail := f.NewBlock()
	tail.Insts = append(tail.Insts, site.blk.Insts[site.idx+1:]...)
	site.blk.Insts = site.blk.Insts[:site.idx]

	// Bind arguments to the callee's parameter registers.
	for p := 0; p < g.NParams && p < len(call.Args); p++ {
		cp := ir.NewInstr(ir.OpCopy)
		cp.Dst = mapV(ir.VReg(p))
		cp.A = call.Args[p]
		site.blk.Insts = append(site.blk.Insts, cp)
	}
	jmp := ir.NewInstr(ir.OpJmp)
	jmp.To = bmap[g.Blocks[0]]
	site.blk.Insts = append(site.blk.Insts, jmp)

	// Clone the callee body.
	for _, b := range g.Blocks {
		nb := bmap[b]
		for _, in := range b.Insts {
			ni := &ir.Instr{}
			*ni = *in
			ni.Dst = mapV(in.Dst)
			ni.A = mapOpnd(in.A)
			ni.B = mapOpnd(in.B)
			ni.Base = mapOpnd(in.Base)
			ni.Index = mapV(in.Index)
			if len(in.Args) > 0 {
				ni.Args = make([]ir.Operand, len(in.Args))
				for k, a := range in.Args {
					ni.Args[k] = mapOpnd(a)
				}
			}
			if in.Then != nil {
				ni.Then = bmap[in.Then]
			}
			if in.Else != nil {
				ni.Else = bmap[in.Else]
			}
			if in.To != nil {
				ni.To = bmap[in.To]
			}
			if ni.Op == ir.OpRet {
				// ret x  =>  (dst = x); jmp tail
				if call.Dst != ir.NoVReg {
					cp := ir.NewInstr(ir.OpCopy)
					cp.Dst = call.Dst
					if ni.A.Kind != ir.OpndNone {
						cp.A = ni.A
					} else {
						cp.A = ir.C(0)
					}
					nb.Insts = append(nb.Insts, cp)
				}
				j := ir.NewInstr(ir.OpJmp)
				j.To = tail
				nb.Insts = append(nb.Insts, j)
				continue
			}
			nb.Insts = append(nb.Insts, ni)
		}
	}
	f.ComputeCFG()
}
