package opt

import "elag/internal/ir"

// addrKey identifies a memory location syntactically for redundant-load
// elimination: same base operand, displacement, index and width.
type addrKey struct {
	base  ir.Operand
	off   int64
	index ir.VReg
	width uint8
	sign  bool
}

func keyOf(in *ir.Instr) addrKey {
	return addrKey{base: in.Base, off: in.Off, index: in.Index, width: in.Width, sign: in.Signed}
}

// RedundantLoadElim removes loads that reload a value already available in
// a register: a previous load of the same syntactic address, or the value
// just stored to it, with no intervening store or call (local per block;
// the global part of the paper's pass is approximated by running after
// inlining, which merges the hot call-free regions into single blocks'
// extended traces). Returns whether anything changed.
func RedundantLoadElim(f *ir.Func) bool {
	changed := false
	_, single := defCounts(f)
	for _, b := range f.Blocks {
		avail := make(map[addrKey]ir.Operand)
		killReg := func(v ir.VReg) {
			for k, o := range avail {
				if o.IsReg(v) || k.base.IsReg(v) || k.index == v {
					delete(avail, k)
				}
			}
		}
		for _, in := range b.Insts {
			switch in.Op {
			case ir.OpLoad:
				k := keyOf(in)
				if o, ok := avail[k]; ok {
					in.Op = ir.OpCopy
					in.A = o
					in.Base, in.Index = ir.Operand{}, ir.NoVReg
					in.Off, in.Width = 0, 0
					changed = true
					if in.Dst != ir.NoVReg {
						killReg(in.Dst)
					}
					continue
				}
				if in.Dst != ir.NoVReg {
					killReg(in.Dst)
					// Record only if the destination cannot be
					// clobbered between here and a later use
					// being folded — conservatively require a
					// single static definition.
					if single[in.Dst] == in {
						avail[k] = ir.R(in.Dst)
					}
				}
			case ir.OpStore:
				// A store invalidates all remembered loads (no
				// alias analysis), then makes its own value
				// available (store-to-load forwarding).
				avail = map[addrKey]ir.Operand{}
				if in.Width == 8 {
					switch in.A.Kind {
					case ir.OpndConst, ir.OpndSym:
						avail[keyOf(in)] = in.A
					case ir.OpndReg:
						avail[keyOf(in)] = in.A
					}
				}
			case ir.OpCall:
				avail = map[addrKey]ir.Operand{}
				if in.Dst != ir.NoVReg {
					killReg(in.Dst)
				}
			default:
				if in.Dst != ir.NoVReg {
					killReg(in.Dst)
				}
			}
		}
	}
	return changed
}
