package opt

import "elag/internal/ir"

// LICM performs loop-invariant code removal: pure computations (and, when
// the loop is store- and call-free, loads) whose operands do not change
// inside a loop are hoisted to a preheader block. Only registers with a
// single static definition are hoisted, so the hoisted instruction cannot
// clobber another definition. Returns whether anything changed.
func LICM(f *ir.Func) bool {
	f.ComputeCFG()
	dom := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dom)
	changed := false
	for {
		hoisted := false
		for _, l := range loops {
			if hoistLoop(f, l) {
				hoisted = true
				changed = true
				// Adding a preheader invalidates the CFG
				// analyses; recompute and restart.
				f.ComputeCFG()
				dom = ir.ComputeDominators(f)
				loops = ir.FindLoops(f, dom)
				break
			}
		}
		if !hoisted {
			return changed
		}
	}
}

func hoistLoop(f *ir.Func, l *ir.Loop) bool {
	_, single := defCounts(f)

	// Registers defined anywhere in the loop are variant until proven
	// invariant.
	definedInLoop := make(map[ir.VReg]bool)
	hasStoreOrCall := false
	for _, b := range l.Blocks {
		for _, in := range b.Insts {
			if in.Dst != ir.NoVReg {
				definedInLoop[in.Dst] = true
			}
			if in.Op == ir.OpStore || in.Op == ir.OpCall {
				hasStoreOrCall = true
			}
		}
	}

	invariant := make(map[ir.VReg]bool)
	opndInv := func(o ir.Operand) bool {
		switch o.Kind {
		case ir.OpndReg:
			return !definedInLoop[o.Reg] || invariant[o.Reg]
		default:
			return true
		}
	}
	instInv := func(in *ir.Instr) bool {
		switch {
		case in.Op.IsBinary() || in.Op == ir.OpCopy || in.Op == ir.OpCmp:
			if in.HasSideEffects() { // div/rem with unproven divisor
				return false
			}
			return opndInv(in.A) && opndInv(in.B)
		case in.Op == ir.OpLoad && !hasStoreOrCall:
			if !opndInv(in.Base) {
				return false
			}
			return in.Index == ir.NoVReg || !definedInLoop[in.Index] || invariant[in.Index]
		}
		return false
	}

	// Fixpoint: an instruction is invariant if all register operands are
	// defined outside the loop or by invariant single-def instructions.
	var hoist []*ir.Instr
	hoistSet := make(map[*ir.Instr]bool)
	for again := true; again; {
		again = false
		for _, b := range l.Blocks {
			for _, in := range b.Insts {
				if in.Dst == ir.NoVReg || hoistSet[in] || single[in.Dst] != in {
					continue
				}
				if instInv(in) {
					hoistSet[in] = true
					invariant[in.Dst] = true
					hoist = append(hoist, in)
					again = true
				}
			}
		}
	}
	if len(hoist) == 0 {
		return false
	}

	pre := ensurePreheader(f, l)
	// Remove from loop blocks, preserving relative order, and insert at
	// the end of the preheader before its terminator.
	for _, b := range l.Blocks {
		kept := b.Insts[:0]
		for _, in := range b.Insts {
			if hoistSet[in] {
				continue
			}
			kept = append(kept, in)
		}
		b.Insts = kept
	}
	term := pre.Insts[len(pre.Insts)-1]
	pre.Insts = pre.Insts[:len(pre.Insts)-1]
	// hoist preserves loop-body order per block; dependencies among
	// hoisted instructions were discovered in dependency order by the
	// fixpoint, but re-sort by the order they appear in the hoist list,
	// which the fixpoint built bottom-up; a second pass ensures defs
	// precede uses.
	pre.Insts = append(pre.Insts, orderByDeps(hoist)...)
	pre.Insts = append(pre.Insts, term)
	return true
}

// orderByDeps topologically sorts hoisted pure instructions so every
// definition precedes its uses.
func orderByDeps(ins []*ir.Instr) []*ir.Instr {
	defs := make(map[ir.VReg]*ir.Instr, len(ins))
	for _, in := range ins {
		defs[in.Dst] = in
	}
	var out []*ir.Instr
	state := make(map[*ir.Instr]int) // 0 new, 1 visiting, 2 done
	var visit func(in *ir.Instr)
	visit = func(in *ir.Instr) {
		if state[in] != 0 {
			return
		}
		state[in] = 1
		for _, u := range in.Uses(nil) {
			if d := defs[u]; d != nil && state[d] == 0 {
				visit(d)
			}
		}
		state[in] = 2
		out = append(out, in)
	}
	for _, in := range ins {
		visit(in)
	}
	return out
}

// ensurePreheader returns the unique out-of-loop predecessor of the loop
// header, creating one if needed by redirecting all entry edges through a
// fresh block.
func ensurePreheader(f *ir.Func, l *ir.Loop) *ir.Block {
	var outside []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := outside[0]
		if t := p.Term(); t != nil && t.Op == ir.OpJmp && len(p.Succs) == 1 {
			return p
		}
	}
	pre := f.NewBlock()
	jmp := ir.NewInstr(ir.OpJmp)
	jmp.To = l.Header
	pre.Insts = append(pre.Insts, jmp)
	for _, p := range outside {
		t := p.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case ir.OpJmp:
			if t.To == l.Header {
				t.To = pre
			}
		case ir.OpBr:
			if t.Then == l.Header {
				t.Then = pre
			}
			if t.Else == l.Header {
				t.Else = pre
			}
		}
	}
	// If the header is the function entry, the new preheader must become
	// the entry block.
	if f.Blocks[0] == l.Header {
		for i, b := range f.Blocks {
			if b == pre {
				f.Blocks[0], f.Blocks[i] = f.Blocks[i], f.Blocks[0]
				break
			}
		}
	}
	f.ComputeCFG()
	return pre
}
