package opt

import "elag/internal/ir"

// StrengthReduce performs induction-variable strength reduction. For each
// loop it finds basic induction variables (v = v + c with a single in-loop
// definition) and linear derived values t = v*k, t = v<<k, t = v + inv,
// t = v - inv, rewriting each as a new induction variable that is
// initialized in the preheader and stepped next to the basic variable's
// increment. Chains reduce across optimization rounds because each new
// variable is itself a basic induction variable on the next round.
//
// This is the pass that turns array address arithmetic into striding
// pointer registers — the paper's Figure 4 shape "ld_p r4, r17(0); add
// r17, r17, 4" — and it is what lets the classifier see those loads as
// arithmetic-dependent (predictable).
func StrengthReduce(f *ir.Func) bool {
	f.ComputeCFG()
	dom := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dom)
	changed := false
	for {
		reduced := false
		for _, l := range loops {
			if reduceLoop(f, l) {
				reduced = true
				changed = true
				f.ComputeCFG()
				dom = ir.ComputeDominators(f)
				loops = ir.FindLoops(f, dom)
				break
			}
		}
		if !reduced {
			return changed
		}
	}
}

type basicIV struct {
	v    ir.VReg
	step int64
	inc  *ir.Instr // the in-loop increment: v = v +/- const
	blk  *ir.Block // block containing inc
	pos  int       // index of inc within blk.Insts
}

func findBasicIVs(l *ir.Loop) []basicIV {
	// Count in-loop definitions per register and remember single defs.
	defs := make(map[ir.VReg]int)
	singleIn := make(map[ir.VReg]*ir.Instr)
	for _, b := range l.Blocks {
		for _, in := range b.Insts {
			if in.Dst != ir.NoVReg {
				defs[in.Dst]++
				if defs[in.Dst] == 1 {
					singleIn[in.Dst] = in
				} else {
					delete(singleIn, in.Dst)
				}
			}
		}
	}
	var ivs []basicIV
	for _, b := range l.Blocks {
		for pos, in := range b.Insts {
			if in.Dst == ir.NoVReg || defs[in.Dst] != 1 {
				continue
			}
			// Direct form: v = v +/- const.
			if (in.Op == ir.OpAdd || in.Op == ir.OpSub) && in.A.IsReg(in.Dst) {
				if c, ok := in.B.IsConst(); ok {
					if in.Op == ir.OpSub {
						c = -c
					}
					ivs = append(ivs, basicIV{v: in.Dst, step: c, inc: in, blk: b, pos: pos})
				}
				continue
			}
			// Front-end form: t = v +/- const; v = copy t. The copy
			// is the increment point (v and t both carry the new
			// value from there on).
			if in.Op == ir.OpCopy && in.A.Kind == ir.OpndReg {
				t := in.A.Reg
				td := singleIn[t]
				if td == nil || (td.Op != ir.OpAdd && td.Op != ir.OpSub) {
					continue
				}
				if !td.A.IsReg(in.Dst) {
					continue
				}
				c, ok := td.B.IsConst()
				if !ok {
					continue
				}
				if td.Op == ir.OpSub {
					c = -c
				}
				ivs = append(ivs, basicIV{v: in.Dst, step: c, inc: in, blk: b, pos: pos})
			}
		}
	}
	return ivs
}

func reduceLoop(f *ir.Func, l *ir.Loop) bool {
	ivs := findBasicIVs(l)
	if len(ivs) == 0 {
		return false
	}
	ivByReg := make(map[ir.VReg]*basicIV, len(ivs))
	for i := range ivs {
		ivByReg[ivs[i].v] = &ivs[i]
	}
	_, single := defCounts(f)

	invariant := func(o ir.Operand) bool {
		if o.Kind != ir.OpndReg {
			return o.Kind != ir.OpndNone
		}
		for _, b := range l.Blocks {
			for _, in := range b.Insts {
				if in.Dst == o.Reg {
					return false
				}
			}
		}
		return true
	}
	memBases := make(map[ir.VReg]bool)
	for _, b := range l.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				if in.Base.Kind == ir.OpndReg {
					memBases[in.Base.Reg] = true
				}
				if in.Index != ir.NoVReg {
					memBases[in.Index] = true
				}
			}
		}
	}

	// Find one reducible derived value; the driver's rounds get the rest.
	for _, b := range l.Blocks {
		for _, in := range b.Insts {
			if in.Dst == ir.NoVReg || single[in.Dst] != in || ivByReg[in.Dst] != nil {
				continue
			}
			var iv *basicIV
			var step int64
			var initA, initB ir.Operand
			op := in.Op
			switch in.Op {
			case ir.OpMul, ir.OpSll:
				// t = v * k  or  t = v << k.
				if in.A.Kind != ir.OpndReg {
					continue
				}
				iv = ivByReg[in.A.Reg]
				k, ok := in.B.IsConst()
				if iv == nil || !ok {
					continue
				}
				if in.Op == ir.OpMul {
					step = iv.step * k
				} else {
					step = iv.step << (uint64(k) & 63)
				}
				initA, initB = in.A, in.B
			case ir.OpAdd, ir.OpSub:
				// t = v + inv / inv + v / v - inv: only worth a
				// new variable when t addresses memory.
				if !memBases[in.Dst] {
					continue
				}
				switch {
				case in.A.Kind == ir.OpndReg && ivByReg[in.A.Reg] != nil && invariant(in.B):
					iv = ivByReg[in.A.Reg]
					initA, initB = in.A, in.B
				case in.Op == ir.OpAdd && in.B.Kind == ir.OpndReg && ivByReg[in.B.Reg] != nil && invariant(in.A):
					iv = ivByReg[in.B.Reg]
					initA, initB = in.A, in.B
				default:
					continue
				}
				step = iv.step
			default:
				continue
			}
			if step == 0 {
				continue
			}

			// Materialize the new induction variable.
			pre := ensurePreheader(f, l)
			p := f.NewVReg()
			init := ir.NewInstr(op)
			init.Dst = p
			init.A, init.B = initA, initB
			init.Cond = in.Cond
			term := pre.Insts[len(pre.Insts)-1]
			pre.Insts = pre.Insts[:len(pre.Insts)-1]
			pre.Insts = append(pre.Insts, init, term)

			// Step it right after the basic IV's increment.
			stepIn := ir.NewInstr(ir.OpAdd)
			stepIn.Dst = p
			stepIn.A = ir.R(p)
			stepIn.B = ir.C(step)
			blk := iv.blk
			// Recompute the increment's position (it may have
			// moved as instructions were edited).
			pos := -1
			for i2, x := range blk.Insts {
				if x == iv.inc {
					pos = i2
					break
				}
			}
			if pos < 0 {
				return false
			}
			blk.Insts = append(blk.Insts, nil)
			copy(blk.Insts[pos+2:], blk.Insts[pos+1:])
			blk.Insts[pos+1] = stepIn

			// The old computation becomes a copy.
			in.Op = ir.OpCopy
			in.A = ir.R(p)
			in.B = ir.Operand{}
			return true
		}
	}
	return false
}

// FoldAddressing folds same-block address arithmetic into load/store
// addressing modes: with b defined in the same block as the memory access
// (and neither b nor its operands redefined in between),
//
//	b = add x, c ; mem[b]      =>  mem[x + c]        (register+offset)
//	b = add x, y ; mem[b]      =>  mem[x + y]        (register+register)
//	b = add &g, y ; mem[b]     =>  mem[&g + y]       (absolute + index)
//
// exposing the ISA addressing modes the paper's heuristics distinguish.
func FoldAddressing(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		// cand maps a register to its defining add within this block,
		// invalidated when the register or the add's operands are
		// redefined.
		cand := make(map[ir.VReg]*ir.Instr)
		kill := func(v ir.VReg) {
			delete(cand, v)
			for k, d := range cand {
				if d.A.IsReg(v) || d.B.IsReg(v) {
					delete(cand, k)
				}
			}
		}
		for _, in := range b.Insts {
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				if in.Base.Kind == ir.OpndReg {
					if d := cand[in.Base.Reg]; d != nil && foldInto(in, d) {
						changed = true
					}
				}
			}
			if in.Dst != ir.NoVReg {
				kill(in.Dst)
				// Self-referencing adds (induction-variable
				// steps) must not fold: the base would be read
				// after its own update.
				if in.Op == ir.OpAdd && !in.A.IsReg(in.Dst) && !in.B.IsReg(in.Dst) {
					cand[in.Dst] = in
				}
			}
		}
	}
	return changed
}

// foldInto rewrites mem's address using the defining add d; returns whether
// it folded.
func foldInto(mem, d *ir.Instr) bool {
	a, bo := d.A, d.B
	if c, ok := bo.IsConst(); ok {
		switch a.Kind {
		case ir.OpndReg, ir.OpndSym, ir.OpndFrame:
			mem.Base = a
			mem.Off += c
			return true
		}
		return false
	}
	if c, ok := a.IsConst(); ok {
		if bo.Kind == ir.OpndReg {
			mem.Base = bo
			mem.Off += c
			return true
		}
		return false
	}
	// Both register-ish: need a free index slot and a register operand.
	if mem.Index != ir.NoVReg {
		return false
	}
	switch {
	case a.Kind == ir.OpndReg && bo.Kind == ir.OpndReg:
		mem.Base = a
		mem.Index = bo.Reg
		return true
	case (a.Kind == ir.OpndSym || a.Kind == ir.OpndFrame) && bo.Kind == ir.OpndReg:
		mem.Base = a
		mem.Index = bo.Reg
		return true
	case a.Kind == ir.OpndReg && (bo.Kind == ir.OpndSym || bo.Kind == ir.OpndFrame):
		mem.Base = bo
		mem.Index = a.Reg
		return true
	}
	return false
}
