// Package earlycalc models the early address-calculation register cache.
//
// In the paper's compiler-directed design this is the single special
// addressing register R_addr: a one-entry cache of one general-purpose
// register's content, (re)bound by each ld_e instruction, kept coherent by
// a limited broadcast from the register file (only writes to the bound
// register need to be snooped).
//
// With more than one entry the same structure models the hardware-only
// register-caching schemes the paper compares against (the BRIC of Austin
// and Sohi): loads allocate their base registers at decode, and register
// writeback must multicast to all matching entries. Figure 5b sweeps this
// design from 4 to 16 cached registers.
package earlycalc

import (
	"fmt"

	"elag/internal/isa"
)

// Config describes the register cache.
type Config struct {
	// Entries is the number of cached registers. 1 models the paper's
	// compiler-directed R_addr; 4..16 model the hardware-only schemes of
	// Figure 5b. Default 1.
	Entries int
}

// Validate reports whether the configuration describes a realizable
// register cache: a non-negative entry count no larger than the register
// file it shadows (0 defaults to 1).
func (c Config) Validate() error {
	if c.Entries < 0 || c.Entries > isa.NumIntRegs {
		return fmt.Errorf("earlycalc: entries (%d) must be in [0,%d]", c.Entries, isa.NumIntRegs)
	}
	return nil
}

// Stats accumulates cache behaviour.
type Stats struct {
	Lookups int64 // decode-stage lookups by base register
	Hits    int64 // lookups that found a valid, coherent entry
	Binds   int64 // bindings/allocations performed
}

// HitRate returns Hits/Lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// EventOp discriminates observer events.
type EventOp uint8

// Observer event operations.
const (
	// OpBind: a register was (re)bound into the cache.
	OpBind EventOp = iota
	// OpInvalidate: a cached register became incoherent (in-flight write).
	OpInvalidate
	// OpBroadcast: a register-file write was delivered to the cache.
	OpBroadcast
)

// Event is one observable state change of the register cache.
type Event struct {
	Op    EventOp
	Reg   isa.Reg
	Value int64
	// Valid reports the entry's coherence after the operation.
	Valid bool
}

type entry struct {
	used  bool
	reg   isa.Reg
	value int64
	// valid is false while the bound register has an in-flight producer
	// whose value has not yet been broadcast; looking the entry up in
	// that window is the R_addr interlock of the forwarding formula.
	valid bool
	lru   int64
}

// Cache is the addressing-register cache. Use New.
type Cache struct {
	entries []entry
	stamp   int64
	stats   Stats

	// Observer, when non-nil, receives an Event for every Bind,
	// Invalidate and Broadcast. Nil (the default) costs one branch.
	Observer func(Event)
}

// New builds a register cache; cfg.Entries of 0 means 1.
func New(cfg Config) *Cache {
	n := cfg.Entries
	if n <= 0 {
		n = 1
	}
	return &Cache{entries: make([]entry, n)}
}

// Size returns the number of entries.
func (c *Cache) Size() int { return len(c.entries) }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) find(reg isa.Reg) *entry {
	for i := range c.entries {
		if e := &c.entries[i]; e.used && e.reg == reg {
			return e
		}
	}
	return nil
}

// Bind caches reg with the given value. valid=false records a binding whose
// producing instruction is still in flight (the value will arrive via
// Broadcast). This implements both the ld_e binding (compiler-directed) and
// the hardware-only allocate-on-decode policy; replacement is LRU.
func (c *Cache) Bind(reg isa.Reg, value int64, valid bool) {
	c.stats.Binds++
	c.stamp++
	if c.Observer != nil {
		c.Observer(Event{Op: OpBind, Reg: reg, Value: value, Valid: valid})
	}
	if e := c.find(reg); e != nil {
		e.value, e.valid, e.lru = value, valid, c.stamp
		return
	}
	victim := &c.entries[0]
	for i := range c.entries {
		e := &c.entries[i]
		if !e.used {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	*victim = entry{used: true, reg: reg, value: value, valid: valid, lru: c.stamp}
}

// Lookup returns the cached value for reg if present and coherent. This is
// the decode-stage (ID1) access used to form the speculative address.
func (c *Cache) Lookup(reg isa.Reg) (value int64, ok bool) {
	c.stats.Lookups++
	e := c.find(reg)
	if e == nil || !e.valid {
		return 0, false
	}
	c.stamp++
	e.lru = c.stamp
	c.stats.Hits++
	return e.value, true
}

// Contains reports whether reg is cached (valid or not), without touching
// statistics or LRU state.
func (c *Cache) Contains(reg isa.Reg) bool { return c.find(reg) != nil }

// Broadcast delivers a register-file write to the cache: any entry bound to
// reg is updated and becomes valid. For the one-entry R_addr this is the
// paper's "limited broadcast"; for multi-entry caches it is the multicast
// write the paper's design avoids.
func (c *Cache) Broadcast(reg isa.Reg, value int64) {
	for i := range c.entries {
		if e := &c.entries[i]; e.used && e.reg == reg {
			e.value = value
			e.valid = true
			if c.Observer != nil {
				c.Observer(Event{Op: OpBroadcast, Reg: reg, Value: value, Valid: true})
			}
		}
	}
}

// Invalidate marks any entry bound to reg as incoherent until the next
// Broadcast, modelling an in-flight write that has been decoded but whose
// value is not yet available.
func (c *Cache) Invalidate(reg isa.Reg) {
	for i := range c.entries {
		if e := &c.entries[i]; e.used && e.reg == reg {
			e.valid = false
			if c.Observer != nil {
				c.Observer(Event{Op: OpInvalidate, Reg: reg, Value: e.value, Valid: false})
			}
		}
	}
}

// ---- replay fast-path hooks -------------------------------------------

// EntrySnap is the exported view of one register-cache entry for the
// block-timing memoizer in package pipeline. LRU is the raw use stamp.
type EntrySnap struct {
	Used  bool
	Reg   isa.Reg
	Value int64
	Valid bool
	LRU   int64
}

// Stamp returns the current LRU use stamp.
func (c *Cache) Stamp() int64 { return c.stamp }

// AddStamp advances the LRU use stamp by d, replaying the stamp increments
// of a memoized block without re-running its lookups and bindings.
func (c *Cache) AddStamp(d int64) { c.stamp += d }

// AddStats adds a delta onto the accumulated statistics.
func (c *Cache) AddStats(d Stats) {
	c.stats.Lookups += d.Lookups
	c.stats.Hits += d.Hits
	c.stats.Binds += d.Binds
}

// Snap appends a snapshot of every entry to dst and returns it.
func (c *Cache) Snap(dst []EntrySnap) []EntrySnap {
	for _, e := range c.entries {
		dst = append(dst, EntrySnap{Used: e.used, Reg: e.reg, Value: e.value, Valid: e.valid, LRU: e.lru})
	}
	return dst
}

// PutEntry overwrites entry i with the given snapshot.
func (c *Cache) PutEntry(i int, s EntrySnap) {
	c.entries[i] = entry{used: s.Used, reg: s.Reg, value: s.Value, valid: s.Valid, lru: s.LRU}
}

// Reset clears all entries and statistics.
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = entry{}
	}
	c.stamp = 0
	c.stats = Stats{}
}
