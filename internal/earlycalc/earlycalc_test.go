package earlycalc

import (
	"testing"

	"elag/internal/isa"
)

func TestSingleEntryRAddr(t *testing.T) {
	c := New(Config{Entries: 1})
	if c.Size() != 1 {
		t.Fatalf("size = %d", c.Size())
	}
	if _, ok := c.Lookup(5); ok {
		t.Errorf("cold lookup hit")
	}
	c.Bind(5, 1000, true)
	if v, ok := c.Lookup(5); !ok || v != 1000 {
		t.Errorf("lookup after bind = %d,%v", v, ok)
	}
	// Binding a different register replaces the single entry — "the
	// binding has just been switched by the current load".
	c.Bind(7, 2000, true)
	if _, ok := c.Lookup(5); ok {
		t.Errorf("old binding survived in a one-entry cache")
	}
	if v, ok := c.Lookup(7); !ok || v != 2000 {
		t.Errorf("new binding missing: %d,%v", v, ok)
	}
}

func TestBroadcastUpdatesBoundRegister(t *testing.T) {
	c := New(Config{Entries: 1})
	c.Bind(5, 0, false) // bound while the producer is in flight
	if _, ok := c.Lookup(5); ok {
		t.Errorf("invalid entry returned a value")
	}
	c.Broadcast(5, 4242)
	if v, ok := c.Lookup(5); !ok || v != 4242 {
		t.Errorf("broadcast did not validate entry: %d,%v", v, ok)
	}
	// Broadcasts to unbound registers are ignored.
	c.Broadcast(9, 1)
	if v, _ := c.Lookup(5); v != 4242 {
		t.Errorf("unrelated broadcast corrupted the entry")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Entries: 1})
	c.Bind(5, 100, true)
	c.Invalidate(5)
	if _, ok := c.Lookup(5); ok {
		t.Errorf("invalidated entry still hit")
	}
	c.Broadcast(5, 200)
	if v, ok := c.Lookup(5); !ok || v != 200 {
		t.Errorf("broadcast did not revalidate: %d,%v", v, ok)
	}
}

func TestMultiEntryLRU(t *testing.T) {
	c := New(Config{Entries: 2})
	c.Bind(1, 10, true)
	c.Bind(2, 20, true)
	c.Lookup(1)         // 1 is now MRU
	c.Bind(3, 30, true) // evicts 2
	if _, ok := c.Lookup(2); ok {
		t.Errorf("LRU entry survived")
	}
	if _, ok := c.Lookup(1); !ok {
		t.Errorf("MRU entry evicted")
	}
	if _, ok := c.Lookup(3); !ok {
		t.Errorf("new entry missing")
	}
}

func TestRebindSameRegisterUpdatesInPlace(t *testing.T) {
	c := New(Config{Entries: 2})
	c.Bind(1, 10, true)
	c.Bind(2, 20, true)
	c.Bind(1, 11, true) // must not evict 2
	if _, ok := c.Lookup(2); !ok {
		t.Errorf("rebinding an existing register evicted another entry")
	}
	if v, _ := c.Lookup(1); v != 11 {
		t.Errorf("rebind did not update value: %d", v)
	}
}

func TestStats(t *testing.T) {
	c := New(Config{Entries: 1})
	c.Bind(4, 1, true)
	c.Lookup(4)
	c.Lookup(9)
	st := c.Stats()
	if st.Binds != 1 || st.Lookups != 2 || st.Hits != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestContainsAndReset(t *testing.T) {
	c := New(Config{Entries: 2})
	c.Bind(isa.Reg(8), 0, false)
	if !c.Contains(8) {
		t.Errorf("Contains missed an invalid-but-present entry")
	}
	c.Reset()
	if c.Contains(8) {
		t.Errorf("Reset left entries behind")
	}
	if st := c.Stats(); st.Binds != 0 {
		t.Errorf("Reset left stats behind: %+v", st)
	}
}

func TestDefaultSizeIsOne(t *testing.T) {
	if New(Config{}).Size() != 1 {
		t.Errorf("default register cache is not the single R_addr")
	}
}
