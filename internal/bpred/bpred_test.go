package bpred

import "testing"

func mustNew(tb testing.TB, cfg Config) *BTB {
	tb.Helper()
	b, err := New(cfg)
	if err != nil {
		tb.Fatalf("New(%+v): %v", cfg, err)
	}
	return b
}

func TestColdPredictNotTaken(t *testing.T) {
	b := mustNew(t, Config{})
	taken, target := b.Predict(100)
	if taken || target != 101 {
		t.Errorf("cold predict = %v,%d; want not-taken fallthrough", taken, target)
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	b := mustNew(t, Config{})
	pc, tgt := 10, 50
	// Train taken twice: counter saturates at 3.
	b.Update(pc, true, tgt)
	b.Update(pc, true, tgt)
	if taken, target := b.Predict(pc); !taken || target != tgt {
		t.Fatalf("not predicting taken after training")
	}
	// One not-taken outcome must not flip the prediction (hysteresis).
	b.Update(pc, false, 0)
	if taken, _ := b.Predict(pc); !taken {
		t.Errorf("single not-taken flipped a saturated counter")
	}
	// A second one does.
	b.Update(pc, false, 0)
	if taken, _ := b.Predict(pc); taken {
		t.Errorf("two not-taken outcomes did not flip the counter")
	}
}

func TestMispredictAccounting(t *testing.T) {
	b := mustNew(t, Config{})
	pc, tgt := 7, 99
	if mis := b.Update(pc, true, tgt); !mis {
		t.Errorf("first taken branch on a cold BTB should mispredict")
	}
	if mis := b.Update(pc, true, tgt); mis {
		t.Errorf("trained branch mispredicted")
	}
	// Wrong target counts as a mispredict even with right direction.
	if mis := b.Update(pc, true, tgt+5); !mis {
		t.Errorf("target change not counted as mispredict")
	}
	st := b.Stats()
	if st.Branches != 3 || st.Mispredicts != 2 {
		t.Errorf("stats %+v", st)
	}
	if acc := st.Accuracy(); acc < 0.33 || acc > 0.34 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestNotTakenBranchesDontAllocate(t *testing.T) {
	b := mustNew(t, Config{})
	b.Update(3, false, 0)
	if _, ok := b.Lookup(3); ok {
		t.Errorf("never-taken branch allocated a BTB entry")
	}
	if mis := b.Update(3, false, 0); mis {
		t.Errorf("not-taken branch mispredicted by default not-taken")
	}
}

func TestAliasing(t *testing.T) {
	b := mustNew(t, Config{Entries: 16})
	b.Insert(1, 100)
	b.Insert(1+16, 200) // same entry
	if tgt, ok := b.Lookup(1); ok && tgt == 100 {
		t.Errorf("aliased entry survived")
	}
	if tgt, ok := b.Lookup(1 + 16); !ok || tgt != 200 {
		t.Errorf("new entry missing: %d %v", tgt, ok)
	}
}

func TestInsertLookupUnconditional(t *testing.T) {
	b := mustNew(t, Config{})
	if _, ok := b.Lookup(42); ok {
		t.Errorf("cold lookup hit")
	}
	b.Insert(42, 1000)
	if tgt, ok := b.Lookup(42); !ok || tgt != 1000 {
		t.Errorf("lookup after insert = %d,%v", tgt, ok)
	}
}

func TestBadEntriesErrors(t *testing.T) {
	for _, cfg := range []Config{{Entries: 3}, {Entries: -8}} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if b, err := New(cfg); err == nil || b != nil {
			t.Errorf("New(%+v) = %v, %v; want nil, error", cfg, b, err)
		}
	}
}
