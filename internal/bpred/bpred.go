// Package bpred implements the branch predictor of the paper's base
// architecture: a 1K-entry branch target buffer (BTB) with 2-bit saturating
// counters (Section 5.1).
package bpred

import "fmt"

// Config describes the BTB geometry.
type Config struct {
	// Entries is the number of direct-mapped BTB entries. Default 1024.
	Entries int
}

// Validate reports whether the configuration (with zero fields defaulted)
// describes a realizable BTB: a positive power-of-two entry count.
func (c Config) Validate() error {
	n := c.Entries
	if n == 0 {
		n = 1024
	}
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("bpred: entries (%d) must be a positive power of two", c.Entries)
	}
	return nil
}

// Stats accumulates prediction outcomes for conditional branches.
type Stats struct {
	Branches    int64 // conditional branches predicted
	Mispredicts int64 // wrong direction or wrong target
}

// Accuracy returns the fraction of correct conditional-branch predictions.
func (s Stats) Accuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Branches)
}

type entry struct {
	valid   bool
	tag     int64
	counter uint8 // 2-bit saturating: 0,1 = not taken; 2,3 = taken
	target  int
}

// BTB is a direct-mapped branch target buffer with 2-bit counters.
type BTB struct {
	entries []entry
	mask    int64
	stats   Stats

	// Observer, when non-nil, is called for every conditional-branch
	// Update with the resolved direction and whether the prediction was
	// wrong. Nil (the default) costs one branch.
	Observer func(pc int, taken, mispredicted bool)
}

// New builds a BTB; cfg.Entries must be a power of two (0 means 1024). A
// geometry that fails Validate is returned as an error.
func New(cfg Config) (*BTB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Entries
	if n == 0 {
		n = 1024
	}
	return &BTB{entries: make([]entry, n), mask: int64(n - 1)}, nil
}

// Stats returns accumulated outcome counts.
func (b *BTB) Stats() Stats { return b.stats }

// Predict returns the predicted direction and target for the conditional
// branch at pc. A BTB miss predicts not-taken.
func (b *BTB) Predict(pc int) (taken bool, target int) {
	e := &b.entries[int64(pc)&b.mask]
	if !e.valid || e.tag != int64(pc) {
		return false, pc + 1
	}
	return e.counter >= 2, e.target
}

// Lookup returns the cached target for pc on a tag hit, regardless of the
// counter state. It is used for unconditional control transfers (jumps,
// calls, returns), whose direction is always taken.
func (b *BTB) Lookup(pc int) (target int, ok bool) {
	e := &b.entries[int64(pc)&b.mask]
	if !e.valid || e.tag != int64(pc) {
		return 0, false
	}
	return e.target, true
}

// Insert records the target of the unconditional control transfer at pc,
// allocating or updating its entry with a strongly-taken counter.
func (b *BTB) Insert(pc, target int) {
	e := &b.entries[int64(pc)&b.mask]
	*e = entry{valid: true, tag: int64(pc), counter: 3, target: target}
}

// ---- replay fast-path hooks -------------------------------------------

// EntrySnap is the exported view of one BTB entry for the block-timing
// memoizer in package pipeline. Snapshots are canonicalized: an invalid
// entry reads as all-zero, because no BTB path reads the other fields of an
// invalid entry — two invalid entries with different stale contents behave
// identically.
type EntrySnap struct {
	Valid   bool
	Tag     int64
	Counter uint8
	Target  int
}

// IndexOf returns the entry index pc maps to.
func (b *BTB) IndexOf(pc int) int64 { return int64(pc) & b.mask }

// SnapEntry returns the (canonicalized) snapshot of one entry.
func (b *BTB) SnapEntry(i int64) EntrySnap {
	e := &b.entries[i]
	if !e.valid {
		return EntrySnap{}
	}
	return EntrySnap{Valid: true, Tag: e.tag, Counter: e.counter, Target: e.target}
}

// PutEntry overwrites one entry with the given snapshot.
func (b *BTB) PutEntry(i int64, s EntrySnap) {
	b.entries[i] = entry{valid: s.Valid, tag: s.Tag, counter: s.Counter, target: s.Target}
}

// AddStats adds a delta onto the accumulated statistics.
func (b *BTB) AddStats(d Stats) {
	b.stats.Branches += d.Branches
	b.stats.Mispredicts += d.Mispredicts
}

// Update trains the predictor with the resolved outcome of the conditional
// branch at pc and records whether the earlier prediction was correct.
func (b *BTB) Update(pc int, taken bool, target int) (mispredicted bool) {
	predTaken, predTarget := b.Predict(pc)
	mispredicted = predTaken != taken || (taken && predTarget != target)
	b.stats.Branches++
	if mispredicted {
		b.stats.Mispredicts++
	}
	if b.Observer != nil {
		b.Observer(pc, taken, mispredicted)
	}

	e := &b.entries[int64(pc)&b.mask]
	if !e.valid || e.tag != int64(pc) {
		// Allocate on taken branches only; a never-taken branch needs
		// no BTB entry (not-taken is the default prediction).
		if !taken {
			return mispredicted
		}
		*e = entry{valid: true, tag: int64(pc), counter: 2, target: target}
		return mispredicted
	}
	if taken {
		if e.counter < 3 {
			e.counter++
		}
		e.target = target
	} else if e.counter > 0 {
		e.counter--
	}
	return mispredicted
}
