// Package stride implements a classic stride/next-line prefetcher as a
// baseline competitor to the paper's compiler-directed mechanisms: a
// direct-mapped PC-indexed table whose entries track the last address, the
// current stride, and a two-bit confidence counter (the
// Chen/Baer-style reference-prediction-table organization the SupraX
// prefetch notes catalog). A load predicts last+stride only once the same
// stride has been observed with saturating confidence; stride 0 degenerates
// to same-address (next-line-ish) prediction, which is deliberate — it is
// what makes the baseline honest on pointer-stationary loads.
//
// The table is registered as mechanism kind "stride"
// (spec "stride[:entries]", direct-mapped, default 256 entries).
package stride

import (
	"fmt"

	"elag/internal/mech"
)

func init() {
	mech.Register("stride",
		"direct-mapped stride prefetch table, 2-bit confidence (baseline competitor)",
		New, validate)
}

// DefaultEntries is the table size a zero spec gets.
const DefaultEntries = 256

// confMax saturates the two-bit confidence counter; confPredict is the
// threshold at and above which the entry predicts.
const (
	confMax     = 3
	confPredict = 2
)

func validate(s mech.Spec) error {
	n := s.Entries
	if n == 0 {
		n = DefaultEntries
	}
	if !mech.PowerOfTwo(n) {
		return fmt.Errorf("stride: entries (%d) must be a power of two", n)
	}
	if s.Assoc > 1 {
		return fmt.Errorf("stride: the table is direct-mapped (assoc %d)", s.Assoc)
	}
	return nil
}

type entry struct {
	valid  bool
	tag    int64
	last   int64
	stride int64
	conf   int64
}

// Table is the stride prefetch table. Use New.
type Table struct {
	entries []entry
	mask    int64
	stats   mech.Stats
	ob      func(mech.Event)
}

// New builds a stride table from a spec of kind "stride".
func New(s mech.Spec) (mech.Mechanism, error) {
	if err := validate(s); err != nil {
		return nil, err
	}
	n := s.Entries
	if n == 0 {
		n = DefaultEntries
	}
	return &Table{entries: make([]entry, n), mask: int64(n - 1)}, nil
}

// Kind returns "stride".
func (t *Table) Kind() string { return "stride" }

// Lookup probes the entry for pc and predicts last+stride when the tag
// matches with saturated confidence. It never modifies entry state.
func (t *Table) Lookup(pc int64) (int64, bool) {
	t.stats.Lookups++
	e := &t.entries[pc&t.mask]
	if e.valid && e.tag == pc && e.conf >= confPredict {
		t.stats.Hits++
		addr := e.last + e.stride
		if t.ob != nil {
			t.ob(mech.Event{Op: mech.EvLookup, PC: pc, Addr: addr, Hit: true})
		}
		return addr, true
	}
	t.stats.Misses++
	if t.ob != nil {
		t.ob(mech.Event{Op: mech.EvLookup, PC: pc})
	}
	return 0, false
}

// Train observes a retiring load: a matching entry reinforces or decays its
// stride confidence (replacing the stride only once confidence reaches
// zero); a tag miss allocates, evicting whatever shared the slot.
func (t *Table) Train(pc, ea int64) {
	t.stats.Trains++
	e := &t.entries[pc&t.mask]
	if !e.valid || e.tag != pc {
		*e = entry{valid: true, tag: pc, last: ea}
		t.stats.Allocs++
		if t.ob != nil {
			t.ob(mech.Event{Op: mech.EvAlloc, PC: pc, Addr: ea})
		}
		return
	}
	d := ea - e.last
	switch {
	case d == e.stride:
		if e.conf < confMax {
			e.conf++
		}
	case e.conf > 0:
		e.conf--
	default:
		e.stride = d
	}
	e.last = ea
	if t.ob != nil {
		t.ob(mech.Event{Op: mech.EvTrain, PC: pc, Addr: ea})
	}
}

// Stats returns the accumulated counters.
func (t *Table) Stats() mech.Stats { return t.stats }

// AddStats merges a recorded delta (memo replay).
func (t *Table) AddStats(d mech.Stats) { t.stats.Add(d) }

// Sets returns the entry count (direct-mapped: one way per set).
func (t *Table) Sets() int { return len(t.entries) }

// Assoc returns 1.
func (t *Table) Assoc() int { return 1 }

// SetIndexOf returns the slot pc maps to.
func (t *Table) SetIndexOf(pc int64) int { return int(pc & t.mask) }

// Stamp returns 0: a direct-mapped table has no recency state.
func (t *Table) Stamp() int64 { return 0 }

// AddStamp is a no-op (no recency state).
func (t *Table) AddStamp(int64) {}

// SnapSet appends the slot's single way: V = [last, stride, conf, valid].
func (t *Table) SnapSet(set int, dst []mech.EntrySnap) []mech.EntrySnap {
	e := t.entries[set]
	var valid int64
	if e.valid {
		valid = 1
	}
	return append(dst, mech.EntrySnap{Tag: e.tag, V: [4]int64{e.last, e.stride, e.conf, valid}})
}

// PutEntry restores one slot exactly as snapped.
func (t *Table) PutEntry(set, way int, s mech.EntrySnap) {
	t.entries[set] = entry{valid: s.V[3] != 0, tag: s.Tag, last: s.V[0], stride: s.V[1], conf: s.V[2]}
}

// SetObserver attaches (nil detaches) an event observer.
func (t *Table) SetObserver(f func(mech.Event)) { t.ob = f }

// HasObserver reports whether an observer is attached.
func (t *Table) HasObserver() bool { return t.ob != nil }
