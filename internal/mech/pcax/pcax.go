// Package pcax implements a PCAX-style PC-indexed address assist: a
// set-associative, LRU-replaced table that learns each static load's
// address delta and predicts as soon as two consecutive deltas agree
// (PAPERS.md: PCAX indexes its translation assist by load PC rather than by
// data address, which is exactly the organization modelled here). Compared
// to the stride baseline it trades the confidence counter for a
// two-delta-agreement rule and adds associativity, so aliasing loads
// coexist instead of thrashing a direct-mapped slot.
//
// Registered as mechanism kind "pcax" (spec "pcax[:entries[xassoc]]",
// default 256 entries 4-way).
package pcax

import (
	"fmt"

	"elag/internal/mech"
)

func init() {
	mech.Register("pcax",
		"set-associative PC-indexed address assist, two-delta agreement (PCAX-style)",
		New, validate)
}

// Default geometry for a zero spec.
const (
	DefaultEntries = 256
	DefaultAssoc   = 4
)

func geometry(s mech.Spec) (entries, assoc int) {
	entries, assoc = s.Entries, s.Assoc
	if entries == 0 {
		entries = DefaultEntries
	}
	if assoc == 0 {
		assoc = DefaultAssoc
	}
	return entries, assoc
}

func validate(s mech.Spec) error {
	entries, assoc := geometry(s)
	if !mech.PowerOfTwo(entries) {
		return fmt.Errorf("pcax: entries (%d) must be a power of two", entries)
	}
	if assoc <= 0 || entries%assoc != 0 {
		return fmt.Errorf("pcax: entries (%d) must divide by assoc (%d)", entries, assoc)
	}
	if sets := entries / assoc; !mech.PowerOfTwo(sets) {
		return fmt.Errorf("pcax: sets (%d) must be a power of two", entries/assoc)
	}
	return nil
}

type entry struct {
	valid bool
	tag   int64
	last  int64
	d1    int64 // most recent delta
	d2    int64 // the delta before it
	lru   int64
}

// Assist is the PCAX-style table. Use New.
type Assist struct {
	sets  [][]entry
	mask  int64
	stamp int64
	stats mech.Stats
	ob    func(mech.Event)
}

// New builds an assist from a spec of kind "pcax".
func New(s mech.Spec) (mech.Mechanism, error) {
	if err := validate(s); err != nil {
		return nil, err
	}
	entries, assoc := geometry(s)
	nSets := entries / assoc
	a := &Assist{sets: make([][]entry, nSets), mask: int64(nSets - 1)}
	backing := make([]entry, entries)
	for i := range a.sets {
		a.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return a, nil
}

// Kind returns "pcax".
func (a *Assist) Kind() string { return "pcax" }

func (a *Assist) find(pc int64) *entry {
	set := a.sets[pc&a.mask]
	for i := range set {
		if e := &set[i]; e.valid && e.tag == pc {
			return e
		}
	}
	return nil
}

// Lookup probes the set for pc and predicts last+d1 when the two most
// recent deltas agree. A hit promotes the entry's recency.
func (a *Assist) Lookup(pc int64) (int64, bool) {
	a.stats.Lookups++
	if e := a.find(pc); e != nil && e.d1 == e.d2 {
		a.stamp++
		e.lru = a.stamp
		a.stats.Hits++
		addr := e.last + e.d1
		if a.ob != nil {
			a.ob(mech.Event{Op: mech.EvLookup, PC: pc, Addr: addr, Hit: true})
		}
		return addr, true
	}
	a.stats.Misses++
	if a.ob != nil {
		a.ob(mech.Event{Op: mech.EvLookup, PC: pc})
	}
	return 0, false
}

// Train observes a retiring load: a matching entry shifts its delta history
// (d2 <- d1 <- ea-last); a tag miss allocates into the first invalid way,
// else the LRU way. A fresh entry starts with disagreeing sentinel deltas
// so it cannot predict until two trained deltas agree.
func (a *Assist) Train(pc, ea int64) {
	a.stats.Trains++
	a.stamp++
	if e := a.find(pc); e != nil {
		e.d2 = e.d1
		e.d1 = ea - e.last
		e.last = ea
		e.lru = a.stamp
		if a.ob != nil {
			a.ob(mech.Event{Op: mech.EvTrain, PC: pc, Addr: ea})
		}
		return
	}
	set := a.sets[pc&a.mask]
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	*victim = entry{valid: true, tag: pc, last: ea, d1: 0, d2: -1, lru: a.stamp}
	a.stats.Allocs++
	if a.ob != nil {
		a.ob(mech.Event{Op: mech.EvAlloc, PC: pc, Addr: ea})
	}
}

// Stats returns the accumulated counters.
func (a *Assist) Stats() mech.Stats { return a.stats }

// AddStats merges a recorded delta (memo replay).
func (a *Assist) AddStats(d mech.Stats) { a.stats.Add(d) }

// Sets returns the set count.
func (a *Assist) Sets() int { return len(a.sets) }

// Assoc returns the ways per set.
func (a *Assist) Assoc() int {
	if len(a.sets) == 0 {
		return 0
	}
	return len(a.sets[0])
}

// SetIndexOf returns the set pc maps to.
func (a *Assist) SetIndexOf(pc int64) int { return int(pc & a.mask) }

// Stamp returns the current LRU use stamp.
func (a *Assist) Stamp() int64 { return a.stamp }

// AddStamp advances the use stamp by a recorded delta (memo replay).
func (a *Assist) AddStamp(d int64) { a.stamp += d }

// SnapSet appends the set's ways in way order: V = [last, d1, d2, valid].
func (a *Assist) SnapSet(set int, dst []mech.EntrySnap) []mech.EntrySnap {
	for _, e := range a.sets[set] {
		var valid int64
		if e.valid {
			valid = 1
		}
		dst = append(dst, mech.EntrySnap{Tag: e.tag, LRU: e.lru, V: [4]int64{e.last, e.d1, e.d2, valid}})
	}
	return dst
}

// PutEntry restores one way exactly as snapped.
func (a *Assist) PutEntry(set, way int, s mech.EntrySnap) {
	a.sets[set][way] = entry{valid: s.V[3] != 0, tag: s.Tag, last: s.V[0], d1: s.V[1], d2: s.V[2], lru: s.LRU}
}

// SetObserver attaches (nil detaches) an event observer.
func (a *Assist) SetObserver(f func(mech.Event)) { a.ob = f }

// HasObserver reports whether an observer is attached.
func (a *Assist) HasObserver() bool { return a.ob != nil }
