// Package all links every mechanism implementation into the importer's
// registry (the database/sql driver idiom): blank-import it from any main
// package or harness that wants the full mechanism vocabulary available to
// mech.ParseSpec / mech.New. The two paper mechanisms (addrpred, earlycalc)
// register from package mech itself and need no import here.
package all

import (
	_ "elag/internal/mech/pcax"
	_ "elag/internal/mech/stride"
)
