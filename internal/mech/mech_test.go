package mech_test

import (
	"testing"

	"elag/internal/mech"
	_ "elag/internal/mech/all"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want mech.Spec
	}{
		{"stride", mech.Spec{Kind: "stride"}},
		{"stride:64", mech.Spec{Kind: "stride", Entries: 64}},
		{"pcax:256x4", mech.Spec{Kind: "pcax", Entries: 256, Assoc: 4}},
		{"addrpred:1024", mech.Spec{Kind: "addrpred", Entries: 1024}},
	}
	for _, c := range cases {
		got, err := mech.ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.String() != c.in {
			t.Errorf("Spec(%+v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	for _, bad := range []string{"", ":64", "stride:", "stride:0", "stride:64x", "stride:64x0", "stride:abc"} {
		if _, err := mech.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

func TestRegistry(t *testing.T) {
	kinds := mech.Kinds()
	want := map[string]bool{"addrpred": true, "earlycalc": true, "stride": true, "pcax": true}
	for _, k := range kinds {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("Kinds() = %v, missing %v", kinds, want)
	}
	if len(mech.Describe()) != len(kinds) {
		t.Errorf("Describe() rows (%d) != Kinds() (%d)", len(mech.Describe()), len(kinds))
	}
	if _, err := mech.New(mech.Spec{Kind: "no-such"}); err == nil {
		t.Error("New(unknown kind): want error")
	}
	if err := mech.Validate(mech.Spec{Kind: "stride", Entries: 48}); err == nil {
		t.Error("Validate(stride:48): want power-of-two error")
	}
	if err := mech.Validate(mech.Spec{Kind: "pcax", Entries: 64, Assoc: 3}); err == nil {
		t.Error("Validate(pcax:64x3): want divisibility error")
	}
}

// checkAlgebra asserts the Stats contract every mechanism shares.
func checkAlgebra(t *testing.T, m mech.Mechanism) {
	t.Helper()
	s := m.Stats()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("%s: Lookups (%d) != Hits (%d) + Misses (%d)", m.Kind(), s.Lookups, s.Hits, s.Misses)
	}
	if s.Allocs > s.Trains {
		t.Errorf("%s: Allocs (%d) > Trains (%d)", m.Kind(), s.Allocs, s.Trains)
	}
}

func TestStridePredicts(t *testing.T) {
	m, err := mech.New(mech.Spec{Kind: "stride", Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	const pc, base, stride = 17, 1000, 8
	for i := int64(0); i < 4; i++ {
		if _, ok := m.Lookup(pc); ok && i < 3 {
			t.Fatalf("predicted before confidence (train %d)", i)
		}
		m.Train(pc, base+i*stride)
	}
	addr, ok := m.Lookup(pc)
	if !ok || addr != base+4*stride {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", addr, ok, base+4*stride)
	}
	// A conflicting PC in the same direct-mapped slot evicts.
	m.Train(pc+64, 5000)
	if _, ok := m.Lookup(pc); ok {
		t.Fatal("predicted after conflict eviction")
	}
	checkAlgebra(t, m)
}

func TestPCAXPredicts(t *testing.T) {
	m, err := mech.New(mech.Spec{Kind: "pcax", Entries: 64, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	const pc, base, delta = 33, 2000, 16
	m.Train(pc, base)
	if _, ok := m.Lookup(pc); ok {
		t.Fatal("fresh entry predicted")
	}
	m.Train(pc, base+delta)
	if _, ok := m.Lookup(pc); ok {
		t.Fatal("one delta predicted")
	}
	m.Train(pc, base+2*delta)
	addr, ok := m.Lookup(pc)
	if !ok || addr != base+3*delta {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", addr, ok, base+3*delta)
	}
	// Associativity: three more PCs in the same set coexist with pc.
	for i := int64(1); i <= 3; i++ {
		m.Train(pc+16*i, 9000+i)
	}
	if _, ok := m.Lookup(pc); !ok {
		t.Fatal("entry lost despite free ways")
	}
	checkAlgebra(t, m)
}

// TestSnapshotRoundTrip drives each mechanism, snapshots every set,
// perturbs it with more training, restores, and checks behaviour and
// snapshots match the originals — the memo layer's core requirement.
func TestSnapshotRoundTrip(t *testing.T) {
	specs := []mech.Spec{
		{Kind: "stride", Entries: 16},
		{Kind: "pcax", Entries: 16, Assoc: 4},
		{Kind: "addrpred", Entries: 16},
		{Kind: "earlycalc", Entries: 4},
	}
	for _, spec := range specs {
		t.Run(spec.Kind, func(t *testing.T) {
			m, err := mech.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 100; i++ {
				pc := i % 23
				m.Train(pc, 64*pc+8*i)
				m.Lookup((i * 7) % 23)
			}
			snapAll := func(m mech.Mechanism) [][]mech.EntrySnap {
				out := make([][]mech.EntrySnap, m.Sets())
				for s := 0; s < m.Sets(); s++ {
					out[s] = m.SnapSet(s, nil)
				}
				return out
			}
			saved := snapAll(m)
			stamp := m.Stamp()
			for i := int64(0); i < 50; i++ {
				m.Train(i%29, 1000+3*i)
			}
			for s := range saved {
				for w, snap := range saved[s] {
					m.PutEntry(s, w, snap)
				}
			}
			m.AddStamp(stamp - m.Stamp())
			got := snapAll(m)
			for s := range saved {
				if len(got[s]) != len(saved[s]) {
					t.Fatalf("set %d: %d ways, want %d", s, len(got[s]), len(saved[s]))
				}
				for w := range saved[s] {
					if got[s][w] != saved[s][w] {
						t.Fatalf("set %d way %d: %+v != %+v", s, w, got[s][w], saved[s][w])
					}
				}
			}
			if m.Stamp() != stamp {
				t.Fatalf("stamp %d, want %d", m.Stamp(), stamp)
			}
			checkAlgebra(t, m)
		})
	}
}

func TestObserverToggle(t *testing.T) {
	for _, kind := range []string{"stride", "pcax", "addrpred"} {
		m, err := mech.New(mech.Spec{Kind: kind, Entries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if m.HasObserver() {
			t.Fatalf("%s: fresh mechanism has observer", kind)
		}
		var n int
		m.SetObserver(func(mech.Event) { n++ })
		if !m.HasObserver() {
			t.Fatalf("%s: observer not attached", kind)
		}
		m.Train(1, 100)
		m.Lookup(1)
		if n == 0 {
			t.Fatalf("%s: observer saw no events", kind)
		}
		m.SetObserver(nil)
		if m.HasObserver() {
			t.Fatalf("%s: observer not detached", kind)
		}
	}
}

func TestStatsDeltaReplay(t *testing.T) {
	m, _ := mech.New(mech.Spec{Kind: "pcax"})
	for i := int64(0); i < 40; i++ {
		m.Train(i%5, 8*i)
		m.Lookup(i % 5)
	}
	pre := m.Stats()
	for i := int64(0); i < 20; i++ {
		m.Train(i%5, 16*i)
		m.Lookup(i % 5)
	}
	delta := m.Stats().Sub(pre)
	m.AddStats(delta)
	want := m.Stats()
	if want.Lookups != pre.Lookups+2*delta.Lookups {
		t.Fatalf("AddStats replay mismatch: %+v", want)
	}
	checkAlgebra(t, m)
}
