// Package mech is the pluggable load-acceleration mechanism layer.
//
// The paper evaluates exactly three early-address flavours — no table, the
// PC-indexed address-prediction table (addrpred) and the compiler-directed
// addressing-register cache (earlycalc) — and the original simulator named
// those two packages concretely in its configuration, kernels, memo layer
// and exporters. This package turns the seam into a registry so a fourth
// mechanism is one self-contained unit under internal/mech/... plus a spec
// string, not surgery on every layer:
//
//   - Spec names a mechanism by registry kind plus geometry and has a
//     stable string form ("stride:64", "pcax:256x4") shared by the CLI
//     flags, the serve job API and the harness series definitions.
//   - Mechanism is the contract the pipeline drives: a PC-indexed
//     lookup/train pair for the assist path, a stats surface, observer
//     hooks for the event stream, and the snapshot machinery
//     (Stamp/SnapSet/PutEntry with rank-comparable EntrySnaps) that the
//     block-timing memo layer needs to guard and patch mechanism state.
//   - The registry (Register/New/Validate/Kinds/Describe) is populated at
//     init time: the two paper mechanisms register in this package (see
//     adapt.go), new mechanisms self-register from their own package and
//     are linked in via the blank-import package internal/mech/all.
//
// Memo-snapshot contract (what a new mechanism must guarantee): SnapSet
// must capture everything Lookup/Train consult, PutEntry must restore it
// exactly, and recency must be expressed through EntrySnap.LRU values drawn
// from the single counter exposed by Stamp/AddStamp so the memo layer can
// rebase them — two states whose sets are equal modulo a uniform stamp
// shift (same tags, same payloads, same pairwise LRU order) must behave
// identically. See DESIGN.md §17.
package mech

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Spec identifies a mechanism: a registry kind plus optional geometry.
// The zero Entries/Assoc pick the kind's defaults.
type Spec struct {
	// Kind is the registry name ("addrpred", "earlycalc", "stride", ...).
	Kind string `json:"kind"`
	// Entries is the total entry count (0 = the kind's default).
	Entries int `json:"entries,omitempty"`
	// Assoc is the set associativity (0 = the kind's default).
	Assoc int `json:"assoc,omitempty"`
}

// String renders the spec in the canonical flag form
// "kind[:entries[xassoc]]"; zero geometry fields are omitted.
func (s Spec) String() string {
	out := s.Kind
	if s.Entries != 0 || s.Assoc != 0 {
		out += ":" + strconv.Itoa(s.Entries)
		if s.Assoc != 0 {
			out += "x" + strconv.Itoa(s.Assoc)
		}
	}
	return out
}

// ParseSpec parses the canonical "kind[:entries[xassoc]]" form. It checks
// syntax only; Validate checks the kind and geometry against the registry.
func ParseSpec(str string) (Spec, error) {
	kind, geom, hasGeom := strings.Cut(str, ":")
	if kind == "" {
		return Spec{}, fmt.Errorf("mechanism spec %q: empty kind", str)
	}
	sp := Spec{Kind: kind}
	if !hasGeom {
		return sp, nil
	}
	ent, assoc, hasAssoc := strings.Cut(geom, "x")
	n, err := strconv.Atoi(ent)
	if err != nil || n <= 0 {
		return Spec{}, fmt.Errorf("mechanism spec %q: bad entry count %q", str, ent)
	}
	sp.Entries = n
	if hasAssoc {
		a, err := strconv.Atoi(assoc)
		if err != nil || a <= 0 {
			return Spec{}, fmt.Errorf("mechanism spec %q: bad associativity %q", str, assoc)
		}
		sp.Assoc = a
	}
	return sp, nil
}

// Stats counts a mechanism's behaviour. The algebra Lookups == Hits +
// Misses holds for every implementation (asserted by the differential
// checker and the service's chaos suite).
type Stats struct {
	// Lookups counts assist-path probes.
	Lookups int64 `json:"lookups"`
	// Hits counts probes that produced a predicted address.
	Hits int64 `json:"hits"`
	// Misses counts probes that produced nothing.
	Misses int64 `json:"misses"`
	// Trains counts retirement-side updates.
	Trains int64 `json:"trains"`
	// Allocs counts entry allocations (a subset of Trains).
	Allocs int64 `json:"allocs"`
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Trains += o.Trains
	s.Allocs += o.Allocs
}

// Sub returns s - o, the delta form the memo layer records and replays.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Lookups: s.Lookups - o.Lookups,
		Hits:    s.Hits - o.Hits,
		Misses:  s.Misses - o.Misses,
		Trains:  s.Trains - o.Trains,
		Allocs:  s.Allocs - o.Allocs,
	}
}

// EntrySnap is one entry of one set, in a mechanism-neutral shape the memo
// layer can guard and patch. Tag and V are compared exactly; LRU is
// compared by pairwise rank within the set (and rebased by the stamp
// counter when recorded and replayed). V's meaning is private to the
// mechanism — the memo layer only requires that equal snaps imply equal
// future behaviour.
type EntrySnap struct {
	Tag int64
	LRU int64
	V   [4]int64
}

// EventOp discriminates observer events.
type EventOp uint8

const (
	// EvLookup — an assist-path probe (Hit says whether it predicted).
	EvLookup EventOp = iota
	// EvTrain — a retirement-side update of an existing entry.
	EvTrain
	// EvAlloc — a retirement-side update that allocated a new entry.
	EvAlloc
)

// Event is one observable mechanism occurrence.
type Event struct {
	Op   EventOp
	PC   int64
	Addr int64
	Hit  bool
}

// Mechanism is the contract a load-acceleration mechanism implements. The
// pipeline drives Lookup at decode/speculation time and Train at the MEM
// stage of every retiring load; the memo layer drives the snapshot surface;
// the event stream attaches through the observer hooks.
type Mechanism interface {
	// Kind returns the registry kind this instance was built from.
	Kind() string

	// Lookup probes the mechanism for load PC pc and returns a predicted
	// effective address. Mechanisms that do not predict through a
	// PC-indexed probe (earlycalc's R_addr path) always miss here.
	Lookup(pc int64) (addr int64, ok bool)
	// Train observes a retiring load: PC pc accessed effective address ea.
	Train(pc, ea int64)

	// Stats returns the cumulative counters; AddStats merges a recorded
	// delta (the memo layer's replay path).
	Stats() Stats
	AddStats(Stats)

	// Sets, Assoc and SetIndexOf describe the geometry the memo layer
	// snapshots set-by-set.
	Sets() int
	Assoc() int
	SetIndexOf(pc int64) int
	// Stamp exposes the recency counter behind EntrySnap.LRU; AddStamp
	// advances it by a recorded delta on memo replay. Mechanisms without
	// recency state return 0 and ignore AddStamp.
	Stamp() int64
	AddStamp(int64)
	// SnapSet appends set's entries (way order) to dst; PutEntry restores
	// one way exactly as snapped.
	SnapSet(set int, dst []EntrySnap) []EntrySnap
	PutEntry(set, way int, snap EntrySnap)

	// SetObserver attaches (or with nil detaches) an event observer;
	// HasObserver reports whether one is attached (the replay fast paths
	// and the memo layer disable themselves while observed).
	SetObserver(func(Event))
	HasObserver() bool
}

// KindDesc is one registry row for help output.
type KindDesc struct {
	Kind string
	Desc string
}

type kindInfo struct {
	desc     string
	factory  func(Spec) (Mechanism, error)
	validate func(Spec) error
}

var (
	regMu    sync.RWMutex
	registry = map[string]kindInfo{}
)

// Register adds a mechanism kind to the registry. factory builds an
// instance from a spec; validate checks a spec's geometry without building
// (nil means any geometry is accepted). Kinds register at init time;
// duplicate registration panics.
func Register(kind, desc string, factory func(Spec) (Mechanism, error), validate func(Spec) error) {
	regMu.Lock()
	defer regMu.Unlock()
	if kind == "" || factory == nil {
		panic("mech: Register with empty kind or nil factory")
	}
	if _, dup := registry[kind]; dup {
		panic("mech: duplicate Register of kind " + kind)
	}
	registry[kind] = kindInfo{desc: desc, factory: factory, validate: validate}
}

func lookupKind(kind string) (kindInfo, error) {
	regMu.RLock()
	info, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return kindInfo{}, fmt.Errorf("unknown mechanism kind %q (known: %s)", kind, strings.Join(Kinds(), ", "))
	}
	return info, nil
}

// New builds a mechanism instance from a spec.
func New(s Spec) (Mechanism, error) {
	info, err := lookupKind(s.Kind)
	if err != nil {
		return nil, err
	}
	if info.validate != nil {
		if err := info.validate(s); err != nil {
			return nil, err
		}
	}
	return info.factory(s)
}

// Validate checks a spec against the registry without building an instance.
func Validate(s Spec) error {
	info, err := lookupKind(s.Kind)
	if err != nil {
		return err
	}
	if info.validate != nil {
		return info.validate(s)
	}
	return nil
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns one row per registered kind, sorted by kind.
func Describe() []KindDesc {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]KindDesc, 0, len(registry))
	for k, info := range registry {
		out = append(out, KindDesc{Kind: k, Desc: info.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// PowerOfTwo reports whether n is a positive power of two — the geometry
// convention every built-in mechanism shares.
func PowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }
