// adapt.go makes the paper's two mechanisms — the addrpred prediction
// table and the earlycalc addressing-register cache — the registry's first
// two implementations. The pipeline still drives both through their
// concrete types on the replay hot path (the interface indirection is
// reserved for assist mechanisms; see pipeline.New's spec normalization),
// so these adapters exist to give the two paper mechanisms full registry
// citizenship: spec vocabulary, Describe rows, and an interface-complete
// wrapping for tests and tooling.
package mech

import (
	"fmt"

	"elag/internal/addrpred"
	"elag/internal/earlycalc"
	"elag/internal/isa"
)

func init() {
	Register("addrpred",
		"PC-indexed stride address-prediction table (paper Fig. 3; ld_p)",
		newAddrpred, validateAddrpred)
	Register("earlycalc",
		"compiler-directed addressing-register cache R_addr (ld_e)",
		newEarlycalc, validateEarlycalc)
}

// PredictorConfig maps a spec of kind "addrpred" to the concrete table
// configuration the pipeline's dedicated ld_p path consumes.
func PredictorConfig(s Spec) addrpred.Config {
	return addrpred.Config{Entries: s.Entries, Assoc: s.Assoc}
}

// RegCacheConfig maps a spec of kind "earlycalc" to the concrete register
// cache configuration the pipeline's dedicated ld_e path consumes.
func RegCacheConfig(s Spec) earlycalc.Config {
	return earlycalc.Config{Entries: s.Entries}
}

func validateAddrpred(s Spec) error {
	return PredictorConfig(s).Validate()
}

func validateEarlycalc(s Spec) error {
	if s.Assoc != 0 && s.Assoc != s.Entries {
		return fmt.Errorf("earlycalc: the register cache is fully associative (assoc %d with %d entries)", s.Assoc, s.Entries)
	}
	return RegCacheConfig(s).Validate()
}

// predAdapter wraps addrpred.Table as a Mechanism. Snapshots round-trip the
// complete Figure-3 entry state via addrpred's Pack/UnpackEntry.
type predAdapter struct {
	t  *addrpred.Table
	st Stats
	ob func(Event)
}

func newAddrpred(s Spec) (Mechanism, error) {
	t, err := addrpred.NewTable(PredictorConfig(s))
	if err != nil {
		return nil, err
	}
	return &predAdapter{t: t}, nil
}

func (a *predAdapter) Kind() string { return "addrpred" }

func (a *predAdapter) Lookup(pc int64) (int64, bool) {
	a.st.Lookups++
	addr, ok := a.t.Probe(int(pc))
	if ok {
		a.st.Hits++
	} else {
		a.st.Misses++
	}
	if a.ob != nil {
		a.ob(Event{Op: EvLookup, PC: pc, Addr: addr, Hit: ok})
	}
	return addr, ok
}

func (a *predAdapter) Train(pc, ea int64) {
	a.st.Trains++
	pre := a.t.Stats().Allocations
	a.t.Update(int(pc), ea)
	alloc := a.t.Stats().Allocations - pre
	a.st.Allocs += alloc
	if a.ob != nil {
		op := EvTrain
		if alloc > 0 {
			op = EvAlloc
		}
		a.ob(Event{Op: op, PC: pc, Addr: ea})
	}
}

func (a *predAdapter) Stats() Stats     { return a.st }
func (a *predAdapter) AddStats(d Stats) { a.st.Add(d) }
func (a *predAdapter) Sets() int        { return int(a.t.SetIndexOf(-1) + 1) }
func (a *predAdapter) Assoc() int       { return a.t.Assoc() }
func (a *predAdapter) SetIndexOf(pc int64) int {
	return int(a.t.SetIndexOf(int(pc)))
}
func (a *predAdapter) Stamp() int64     { return a.t.Stamp() }
func (a *predAdapter) AddStamp(d int64) { a.t.AddStamp(d) }

func (a *predAdapter) SnapSet(set int, dst []EntrySnap) []EntrySnap {
	for _, s := range a.t.SnapSet(int64(set), nil) {
		dst = append(dst, EntrySnap{Tag: s.Tag, LRU: s.LRU, V: s.E.Pack()})
	}
	return dst
}

func (a *predAdapter) PutEntry(set, way int, s EntrySnap) {
	a.t.PutEntry(int64(set), way, addrpred.EntrySnap{Tag: s.Tag, LRU: s.LRU, E: addrpred.UnpackEntry(s.V)})
}

func (a *predAdapter) SetObserver(f func(Event)) { a.ob = f }
func (a *predAdapter) HasObserver() bool         { return a.ob != nil }

// rcAdapter wraps earlycalc.Cache as a Mechanism. The register cache does
// not predict through a PC-indexed probe — its pipeline path is the
// dedicated R_addr machinery — so Lookup always misses and Train is a
// no-op; the adapter's value is the snapshot/stats/observer surface and
// registry presence.
type rcAdapter struct {
	c  *earlycalc.Cache
	ob func(Event)
}

func newEarlycalc(s Spec) (Mechanism, error) {
	if err := validateEarlycalc(s); err != nil {
		return nil, err
	}
	return &rcAdapter{c: earlycalc.New(RegCacheConfig(s))}, nil
}

func (a *rcAdapter) Kind() string { return "earlycalc" }

func (a *rcAdapter) Lookup(pc int64) (int64, bool) { return 0, false }
func (a *rcAdapter) Train(pc, ea int64)            {}

func (a *rcAdapter) Stats() Stats {
	s := a.c.Stats()
	return Stats{Lookups: s.Lookups, Hits: s.Hits, Misses: s.Lookups - s.Hits, Trains: s.Binds}
}

func (a *rcAdapter) AddStats(d Stats) {
	a.c.AddStats(earlycalc.Stats{Lookups: d.Lookups, Hits: d.Hits, Binds: d.Trains})
}

func (a *rcAdapter) Sets() int               { return 1 }
func (a *rcAdapter) Assoc() int              { return a.c.Size() }
func (a *rcAdapter) SetIndexOf(pc int64) int { return 0 }
func (a *rcAdapter) Stamp() int64            { return a.c.Stamp() }
func (a *rcAdapter) AddStamp(d int64)        { a.c.AddStamp(d) }

func (a *rcAdapter) SnapSet(set int, dst []EntrySnap) []EntrySnap {
	for _, s := range a.c.Snap(nil) {
		var used, valid int64
		if s.Used {
			used = 1
		}
		if s.Valid {
			valid = 1
		}
		dst = append(dst, EntrySnap{Tag: int64(s.Reg), LRU: s.LRU, V: [4]int64{s.Value, used, valid, 0}})
	}
	return dst
}

func (a *rcAdapter) PutEntry(set, way int, s EntrySnap) {
	a.c.PutEntry(way, earlycalc.EntrySnap{
		Used: s.V[1] != 0, Reg: isa.Reg(s.Tag), Value: s.V[0], Valid: s.V[2] != 0, LRU: s.LRU,
	})
}

func (a *rcAdapter) SetObserver(f func(Event)) {
	a.ob = f
	if f == nil {
		a.c.Observer = nil
		return
	}
	a.c.Observer = func(ev earlycalc.Event) {
		f(Event{Op: EvTrain, PC: int64(ev.Reg), Addr: ev.Value, Hit: ev.Valid})
	}
}

func (a *rcAdapter) HasObserver() bool { return a.ob != nil }
