// Package asm implements a two-pass assembler for the textual assembly
// language of the repository's RISC ISA (package isa).
//
// Syntax overview (one statement per line, ';' or '#' starts a comment):
//
//	        .data
//	        .base 0x10000        ; data segment load address (optional)
//	tbl:    .word 1, 2, 3        ; 8-byte words
//	buf:    .space 4096          ; zero-filled region
//	        .align 8
//	        .text
//	main:   li   r1, 0
//	loop:   ld8_p r4, r17(0)     ; predicted load, width 8
//	        ld8_n r6, r19(r5)    ; normal load, register+register mode
//	        ld8_e r3, r2(8)      ; early-calculated load
//	        st8  r4, r18(0)
//	        add  r17, r17, 8
//	        blt  r1, 100, loop   ; branch with immediate comparand
//	        halt r0
//
// Loads are written ldW_f where W is the access width in bytes (1, 2, 4, 8)
// and f is the flavour (n, p, e); an "s" before the underscore requests sign
// extension (e.g. ld4s_n). Stores are stW. The plain forms ld_n/ld_p/ld_e
// and st default to width 8. Absolute addressing is written (imm) or as a
// bare data label, optionally label+imm.
//
// Pseudo-instructions: mov rD, rS (= add rD, rS, 0), li rD, imm (= lui),
// ret (= jr r63), b label (= jmp label).
package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"elag/internal/isa"
)

// DefaultDataBase is the data-segment load address used when the source has
// no .base directive. It is far from address zero so that nil-pointer style
// bugs in test programs fault visibly.
const DefaultDataBase = 0x10000

// Error describes an assembly failure with source position.
type Error struct {
	Line int    // 1-based source line
	Msg  string // description
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type fixup struct {
	pc   int    // instruction index needing a target
	sym  string // label name
	line int
}

type dataFixup struct {
	off  int64 // offset within data image of an 8-byte cell
	sym  string
	add  int64
	line int
}

type assembler struct {
	prog       *isa.Program
	data       []byte
	dataBase   int64
	inData     bool
	fixups     []fixup
	dataFixups []dataFixup
	immFixups  []fixup // instructions whose Imm refers to a data symbol
	line       int
}

// Assemble translates assembly source into an executable program. The entry
// point is the label "main" if present, otherwise the first instruction.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		prog: &isa.Program{
			Symbols:     make(map[string]int),
			DataSymbols: make(map[string]int64),
		},
		dataBase: DefaultDataBase,
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return nil, err
		}
	}
	if err := a.link(); err != nil {
		return nil, err
	}
	a.prog.Data = a.data
	a.prog.DataBase = a.dataBase
	if pc, ok := a.prog.Symbols["main"]; ok {
		a.prog.Entry = pc
	}
	return a.prog, nil
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) statement(raw string) error {
	s := raw
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels: one or more "name:" prefixes.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !isIdent(name) {
			break
		}
		if err := a.defineLabel(name); err != nil {
			return err
		}
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	if a.inData {
		return a.errf("instruction %q inside .data section", s)
	}
	return a.instruction(s)
}

func (a *assembler) defineLabel(name string) error {
	if a.inData {
		if _, dup := a.prog.DataSymbols[name]; dup {
			return a.errf("duplicate data label %q", name)
		}
		a.prog.DataSymbols[name] = a.dataBase + int64(len(a.data))
		return nil
	}
	if _, dup := a.prog.Symbols[name]; dup {
		return a.errf("duplicate label %q", name)
	}
	a.prog.Symbols[name] = len(a.prog.Insts)
	return nil
}

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".base":
		v, err := parseInt(rest)
		if err != nil {
			return a.errf(".base: %v", err)
		}
		if len(a.data) > 0 || len(a.prog.DataSymbols) > 0 {
			return a.errf(".base must precede all data definitions")
		}
		a.dataBase = v
	case ".space":
		v, err := parseInt(rest)
		if err != nil || v < 0 {
			return a.errf(".space: bad size %q", rest)
		}
		a.data = append(a.data, make([]byte, v)...)
	case ".align":
		v, err := parseInt(rest)
		if err != nil || v <= 0 || v&(v-1) != 0 {
			return a.errf(".align: bad alignment %q", rest)
		}
		for int64(len(a.data))%v != 0 {
			a.data = append(a.data, 0)
		}
	case ".word", ".word8":
		return a.dataValues(rest, 8)
	case ".word4":
		return a.dataValues(rest, 4)
	case ".word2":
		return a.dataValues(rest, 2)
	case ".byte":
		return a.dataValues(rest, 1)
	case ".addr":
		// 8-byte cells holding the address of a data label (+offset).
		for _, f := range splitOperands(rest) {
			sym, add := f, int64(0)
			if i := strings.IndexAny(f, "+-"); i > 0 {
				v, err := parseInt(f[i:])
				if err != nil {
					return a.errf(".addr: bad offset in %q", f)
				}
				sym, add = f[:i], v
			}
			a.dataFixups = append(a.dataFixups, dataFixup{
				off: int64(len(a.data)), sym: sym, add: add, line: a.line,
			})
			a.data = append(a.data, make([]byte, 8)...)
		}
	default:
		return a.errf("unknown directive %q", name)
	}
	return nil
}

func (a *assembler) dataValues(rest string, width int) error {
	for _, f := range splitOperands(rest) {
		v, err := parseInt(f)
		if err != nil {
			return a.errf("bad data value %q", f)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		a.data = append(a.data, buf[:width]...)
	}
	return nil
}

var aluOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"rem": isa.OpRem, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
	"slt": isa.OpSlt, "sltu": isa.OpSltu,
}

var condOps = map[string]isa.Cond{
	"beq": isa.CondEQ, "bne": isa.CondNE, "blt": isa.CondLT,
	"bge": isa.CondGE, "ble": isa.CondLE, "bgt": isa.CondGT,
}

var fpOps = map[string]isa.Op{
	"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul, "fdiv": isa.OpFDiv,
}

func (a *assembler) instruction(s string) error {
	mnem, rest, _ := strings.Cut(s, " ")
	ops := splitOperands(strings.TrimSpace(rest))
	emit := func(in isa.Inst) { a.prog.Insts = append(a.prog.Insts, in) }

	if op, ok := aluOps[mnem]; ok {
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", mnem)
		}
		rd, err := a.reg(ops[0], 'r')
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1], 'r')
		if err != nil {
			return err
		}
		in := isa.Inst{Op: op, Rd: rd, Rs1: rs1}
		if r, err := a.reg(ops[2], 'r'); err == nil {
			in.Rs2 = r
		} else {
			v, verr := parseInt(ops[2])
			if verr != nil {
				return a.errf("%s: bad operand %q", mnem, ops[2])
			}
			in.SrcImm, in.Imm = true, v
		}
		emit(in)
		return nil
	}

	if cond, ok := condOps[mnem]; ok {
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", mnem)
		}
		rs1, err := a.reg(ops[0], 'r')
		if err != nil {
			return err
		}
		in := isa.Inst{Op: isa.OpBr, Cond: cond, Rs1: rs1, Sym: ops[2]}
		if r, err := a.reg(ops[1], 'r'); err == nil {
			in.Rs2 = r
		} else {
			v, verr := parseInt(ops[1])
			if verr != nil {
				return a.errf("%s: bad comparand %q", mnem, ops[1])
			}
			in.SrcImm, in.Imm = true, v
		}
		a.fixups = append(a.fixups, fixup{pc: len(a.prog.Insts), sym: ops[2], line: a.line})
		emit(in)
		return nil
	}

	if op, ok := fpOps[mnem]; ok {
		if len(ops) != 3 {
			return a.errf("%s needs 3 operands", mnem)
		}
		rd, err := a.reg(ops[0], 'f')
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1], 'f')
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[2], 'f')
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		return nil
	}

	switch {
	case mnem == "nop":
		emit(isa.Inst{Op: isa.OpNop})
	case mnem == "li" || mnem == "lui":
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mnem)
		}
		rd, err := a.reg(ops[0], 'r')
		if err != nil {
			return err
		}
		in := isa.Inst{Op: isa.OpLUI, Rd: rd}
		if v, err := parseInt(ops[1]); err == nil {
			in.Imm = v
		} else {
			sym, add := ops[1], int64(0)
			if i := strings.LastIndexAny(sym, "+-"); i > 0 {
				if v, err := parseInt(sym[i:]); err == nil {
					sym, add = sym[:i], v
				}
			}
			if !isIdent(sym) {
				return a.errf("li: bad immediate %q", ops[1])
			}
			in.Sym, in.Imm = sym, add
			a.immFixups = append(a.immFixups, fixup{pc: len(a.prog.Insts), sym: sym, line: a.line})
		}
		emit(in)
	case mnem == "mov":
		if len(ops) != 2 {
			return a.errf("mov needs 2 operands")
		}
		rd, err := a.reg(ops[0], 'r')
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1], 'r')
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.OpAdd, Rd: rd, Rs1: rs, SrcImm: true})
	case mnem == "fmov":
		if len(ops) != 2 {
			return a.errf("fmov needs 2 operands")
		}
		rd, err := a.reg(ops[0], 'f')
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1], 'f')
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.OpFMov, Rd: rd, Rs1: rs})
	case mnem == "cvtif":
		if len(ops) != 2 {
			return a.errf("cvtif needs 2 operands")
		}
		rd, err := a.reg(ops[0], 'f')
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1], 'r')
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.OpCvtIF, Rd: rd, Rs1: rs})
	case mnem == "cvtfi":
		if len(ops) != 2 {
			return a.errf("cvtfi needs 2 operands")
		}
		rd, err := a.reg(ops[0], 'r')
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1], 'f')
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.OpCvtFI, Rd: rd, Rs1: rs})
	case mnem == "jmp" || mnem == "b":
		if len(ops) != 1 {
			return a.errf("jmp needs 1 operand")
		}
		a.fixups = append(a.fixups, fixup{pc: len(a.prog.Insts), sym: ops[0], line: a.line})
		emit(isa.Inst{Op: isa.OpJmp, Sym: ops[0]})
	case mnem == "call":
		// call label        (return address in r63)
		// call rD, label    (explicit link register)
		in := isa.Inst{Op: isa.OpCall, Rd: isa.RegRA}
		var tgt string
		switch len(ops) {
		case 1:
			tgt = ops[0]
		case 2:
			rd, err := a.reg(ops[0], 'r')
			if err != nil {
				return err
			}
			in.Rd, tgt = rd, ops[1]
		default:
			return a.errf("call needs 1 or 2 operands")
		}
		in.Sym = tgt
		a.fixups = append(a.fixups, fixup{pc: len(a.prog.Insts), sym: tgt, line: a.line})
		emit(in)
	case mnem == "jr":
		if len(ops) != 1 {
			return a.errf("jr needs 1 operand")
		}
		rs, err := a.reg(ops[0], 'r')
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.OpJr, Rs1: rs})
	case mnem == "ret":
		emit(isa.Inst{Op: isa.OpJr, Rs1: isa.RegRA})
	case mnem == "halt":
		in := isa.Inst{Op: isa.OpHalt}
		if len(ops) == 1 {
			rs, err := a.reg(ops[0], 'r')
			if err != nil {
				return err
			}
			in.Rs1 = rs
		}
		emit(in)
	case strings.HasPrefix(mnem, "ld"):
		return a.load(mnem, ops)
	case strings.HasPrefix(mnem, "st"):
		return a.store(mnem, ops)
	case strings.HasPrefix(mnem, "fld"):
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mnem)
		}
		in := isa.Inst{Op: isa.OpFLoad, Width: 8}
		rd, err := a.reg(ops[0], 'f')
		if err != nil {
			return err
		}
		in.Rd = rd
		if err := a.memOperand(&in, ops[1]); err != nil {
			return err
		}
		emit(in)
	case strings.HasPrefix(mnem, "fst"):
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mnem)
		}
		in := isa.Inst{Op: isa.OpFStore, Width: 8}
		rs, err := a.reg(ops[0], 'f')
		if err != nil {
			return err
		}
		in.Rs2 = rs
		if err := a.memOperand(&in, ops[1]); err != nil {
			return err
		}
		emit(in)
	default:
		return a.errf("unknown mnemonic %q", mnem)
	}
	return nil
}

// load parses ldW[s]_f mnemonics: ld8_p, ld4s_n, ld_e (width 8), ...
func (a *assembler) load(mnem string, ops []string) error {
	spec := mnem[2:]
	width, signed := 8, false
	flav := isa.LdN
	body, suffix, hasFlavor := strings.Cut(spec, "_")
	if !hasFlavor {
		return a.errf("load %q missing flavour suffix (_n, _p or _e)", mnem)
	}
	switch suffix {
	case "n":
		flav = isa.LdN
	case "p":
		flav = isa.LdP
	case "e":
		flav = isa.LdE
	default:
		return a.errf("load %q: unknown flavour %q", mnem, suffix)
	}
	if strings.HasSuffix(body, "s") {
		signed = true
		body = body[:len(body)-1]
	}
	if body != "" {
		w, err := strconv.Atoi(body)
		if err != nil || (w != 1 && w != 2 && w != 4 && w != 8) {
			return a.errf("load %q: bad width %q", mnem, body)
		}
		width = w
	}
	if len(ops) != 2 {
		return a.errf("%s needs 2 operands", mnem)
	}
	rd, err := a.reg(ops[0], 'r')
	if err != nil {
		return err
	}
	in := isa.Inst{Op: isa.OpLoad, Flavor: flav, Width: uint8(width), Signed: signed, Rd: rd}
	if err := a.memOperand(&in, ops[1]); err != nil {
		return err
	}
	a.prog.Insts = append(a.prog.Insts, in)
	return nil
}

func (a *assembler) store(mnem string, ops []string) error {
	width := 8
	if body := mnem[2:]; body != "" {
		w, err := strconv.Atoi(body)
		if err != nil || (w != 1 && w != 2 && w != 4 && w != 8) {
			return a.errf("store %q: bad width", mnem)
		}
		width = w
	}
	if len(ops) != 2 {
		return a.errf("%s needs 2 operands", mnem)
	}
	rs, err := a.reg(ops[0], 'r')
	if err != nil {
		return err
	}
	in := isa.Inst{Op: isa.OpStore, Width: uint8(width), Rs2: rs}
	if err := a.memOperand(&in, ops[1]); err != nil {
		return err
	}
	a.prog.Insts = append(a.prog.Insts, in)
	return nil
}

// memOperand parses rB(imm), rB(rX), (imm), label, or label+imm.
func (a *assembler) memOperand(in *isa.Inst, s string) error {
	s = strings.TrimSpace(s)
	if open := strings.Index(s, "("); open >= 0 && strings.HasSuffix(s, ")") {
		basePart := strings.TrimSpace(s[:open])
		inner := strings.TrimSpace(s[open+1 : len(s)-1])
		if basePart == "" {
			// Absolute: (imm) or (label).
			in.Mode = isa.AMAbsolute
			if v, err := parseInt(inner); err == nil {
				in.Imm = v
				return nil
			}
			if isIdent(inner) {
				in.Sym = inner
				a.immFixups = append(a.immFixups, fixup{pc: len(a.prog.Insts), sym: inner, line: a.line})
				return nil
			}
			return a.errf("bad absolute address %q", s)
		}
		base, err := a.reg(basePart, 'r')
		if err != nil {
			return err
		}
		in.Base = base
		if idx, err := a.reg(inner, 'r'); err == nil {
			in.Mode, in.Index = isa.AMRegReg, idx
			return nil
		}
		v, err := parseInt(inner)
		if err != nil {
			return a.errf("bad memory offset %q", inner)
		}
		in.Mode, in.Imm = isa.AMRegOffset, v
		return nil
	}
	// Bare label or label+imm — absolute addressing of a data symbol.
	sym, add := s, int64(0)
	if i := strings.LastIndexAny(s, "+-"); i > 0 {
		v, err := parseInt(s[i:])
		if err == nil {
			sym, add = s[:i], v
		}
	}
	if !isIdent(sym) {
		return a.errf("bad memory operand %q", s)
	}
	in.Mode, in.Imm, in.Sym = isa.AMAbsolute, add, sym
	a.immFixups = append(a.immFixups, fixup{pc: len(a.prog.Insts), sym: sym, line: a.line})
	return nil
}

func (a *assembler) link() error {
	for _, f := range a.fixups {
		pc, ok := a.prog.Symbols[f.sym]
		if !ok {
			return &Error{Line: f.line, Msg: fmt.Sprintf("undefined label %q", f.sym)}
		}
		a.prog.Insts[f.pc].Target = pc
	}
	for _, f := range a.immFixups {
		addr, ok := a.prog.DataSymbols[f.sym]
		if !ok {
			return &Error{Line: f.line, Msg: fmt.Sprintf("undefined data symbol %q", f.sym)}
		}
		a.prog.Insts[f.pc].Imm += addr
	}
	for _, f := range a.dataFixups {
		addr, ok := a.prog.DataSymbols[f.sym]
		if !ok {
			return &Error{Line: f.line, Msg: fmt.Sprintf("undefined data symbol %q", f.sym)}
		}
		binary.LittleEndian.PutUint64(a.data[f.off:], uint64(addr+f.add))
	}
	return nil
}

func (a *assembler) reg(s string, file byte) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != file {
		return 0, a.errf("expected %c-register, got %q", file, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumIntRegs {
		return 0, a.errf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// splitOperands splits on commas that are not inside parentheses.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Character literals: 'a'
		if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
			v, err = int64(s[1]), nil
		} else {
			return 0, err
		}
	}
	if neg {
		v = -v
	}
	return v, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == '.' || r == '$':
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Listing renders the program as annotated assembly with PCs, suitable for
// debugging compiler output.
func Listing(p *isa.Program) string {
	var b strings.Builder
	rev := make(map[int][]string)
	for name, pc := range p.Symbols {
		rev[pc] = append(rev[pc], name)
	}
	for pc := range p.Insts {
		for _, name := range rev[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%6d    %s\n", pc, p.Insts[pc].String())
	}
	return b.String()
}
