// Package asmtest provides test helpers around the assembler. It exists so
// that test fixtures can assemble program literals without the library
// itself carrying a panicking entry point: assembly source is user input,
// and user input must surface as errors, never panics.
package asmtest

import (
	"testing"

	"elag/internal/asm"
	"elag/internal/isa"
)

// MustAssemble assembles src or fails the test. It replaces the former
// asm.MustAssemble, whose panic-on-error contract is now confined to test
// binaries.
func MustAssemble(tb testing.TB, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		tb.Fatalf("assemble: %v\n%s", err, src)
	}
	return p
}
