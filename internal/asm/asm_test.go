package asm

import (
	"strings"
	"testing"

	"elag/internal/isa"
)

func mustAssemble(tb testing.TB, src string) *isa.Program {
	tb.Helper()
	p, err := Assemble(src)
	if err != nil {
		tb.Fatalf("assemble: %v", err)
	}
	return p
}

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
		; a comment
	main:	li   r1, 42        # another comment
		add  r2, r1, 1
		mov  r3, r2
		halt r1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 4 {
		t.Fatalf("got %d instructions, want 4", len(p.Insts))
	}
	if p.Entry != 0 || p.Symbols["main"] != 0 {
		t.Errorf("entry = %d, main = %d", p.Entry, p.Symbols["main"])
	}
	if p.Insts[0].Op != isa.OpLUI || p.Insts[0].Imm != 42 {
		t.Errorf("li mis-assembled: %+v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.OpAdd || !p.Insts[1].SrcImm || p.Insts[1].Imm != 1 {
		t.Errorf("add-imm mis-assembled: %+v", p.Insts[1])
	}
	// mov expands to add rD, rS, 0.
	if p.Insts[2].Op != isa.OpAdd || !p.Insts[2].SrcImm || p.Insts[2].Imm != 0 {
		t.Errorf("mov mis-assembled: %+v", p.Insts[2])
	}
}

func TestLoadMnemonics(t *testing.T) {
	p, err := Assemble(`
	main:	ld8_n  r1, r2(8)
		ld8_p  r3, r4(0)
		ld8_e  r5, r6(16)
		ld4s_n r7, r8(r9)
		ld1_n  r10, (4096)
		ld2_p  r11, r12(-8)
		halt r0
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		flavor isa.LoadFlavor
		width  uint8
		signed bool
		mode   isa.AddrMode
	}{
		{isa.LdN, 8, false, isa.AMRegOffset},
		{isa.LdP, 8, false, isa.AMRegOffset},
		{isa.LdE, 8, false, isa.AMRegOffset},
		{isa.LdN, 4, true, isa.AMRegReg},
		{isa.LdN, 1, false, isa.AMAbsolute},
		{isa.LdP, 2, false, isa.AMRegOffset},
	}
	for i, w := range want {
		in := p.Insts[i]
		if in.Op != isa.OpLoad || in.Flavor != w.flavor || in.Width != w.width ||
			in.Signed != w.signed || in.Mode != w.mode {
			t.Errorf("inst %d: got %+v, want %+v", i, in, w)
		}
	}
	if p.Insts[5].Imm != -8 {
		t.Errorf("negative offset lost: %d", p.Insts[5].Imm)
	}
}

func TestBranchTargetsResolved(t *testing.T) {
	p, err := Assemble(`
	main:	li r1, 0
	loop:	add r1, r1, 1
		blt r1, 10, loop
		beq r1, r2, done
		jmp loop
	done:	halt r1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Target != 1 {
		t.Errorf("blt target = %d, want 1", p.Insts[2].Target)
	}
	if p.Insts[3].Target != 5 {
		t.Errorf("beq target = %d, want 5", p.Insts[3].Target)
	}
	if p.Insts[4].Target != 1 {
		t.Errorf("jmp target = %d, want 1", p.Insts[4].Target)
	}
}

func TestDataSegment(t *testing.T) {
	p, err := Assemble(`
		.data
		.base 0x20000
	tbl:	.word 1, 2, 3
	buf:	.space 16
		.align 8
	ptr:	.addr tbl+8
	bytes:	.byte 1, 2, 255
		.text
	main:	ld8_n r1, (tbl)
		ld8_n r2, tbl+16
		li r3, buf
		halt r0
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataBase != 0x20000 {
		t.Fatalf("data base = %#x", p.DataBase)
	}
	if p.DataSymbols["tbl"] != 0x20000 {
		t.Errorf("tbl addr = %#x", p.DataSymbols["tbl"])
	}
	if p.DataSymbols["buf"] != 0x20000+24 {
		t.Errorf("buf addr = %#x", p.DataSymbols["buf"])
	}
	// .word values.
	if p.Data[0] != 1 || p.Data[8] != 2 || p.Data[16] != 3 {
		t.Errorf("word data wrong: % x", p.Data[:24])
	}
	// .addr cell holds tbl+8.
	ptrOff := p.DataSymbols["ptr"] - p.DataBase
	var got int64
	for i := 7; i >= 0; i-- {
		got = got<<8 | int64(p.Data[ptrOff+int64(i)])
	}
	if got != 0x20000+8 {
		t.Errorf(".addr cell = %#x, want %#x", got, 0x20000+8)
	}
	// Absolute loads resolved to symbol addresses.
	if p.Insts[0].Mode != isa.AMAbsolute || p.Insts[0].Imm != 0x20000 {
		t.Errorf("(tbl) load: %+v", p.Insts[0])
	}
	if p.Insts[1].Imm != 0x20000+16 {
		t.Errorf("tbl+16 load: %+v", p.Insts[1])
	}
	if p.Insts[2].Imm != p.DataSymbols["buf"] {
		t.Errorf("li buf: %+v", p.Insts[2])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"jmp nowhere", "undefined label"},
		{"ld8_n r1, (tbl)", "undefined data symbol"},
		{"add r1, r2", "3 operands"},
		{"ld8_x r1, r2(0)", "unknown flavour"},
		{"ld3_n r1, r2(0)", "bad width"},
		{"add r64, r1, r2", "bad register"},
		{"main: halt r0\nmain: halt r0", "duplicate label"},
		{".data\nx: .word 1\nx: .word 2", "duplicate data label"},
		{".bogus 3", "unknown directive"},
		{".data\nadd r1, r1, r1", "inside .data"},
		{"ld8 r1, r2(0)", "missing flavour"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("main: halt r0\n\nbogus r1")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !errorsAs(err, &ae) {
		t.Fatalf("error is %T, want *Error", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
}

func errorsAs(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

// TestRoundTrip checks that printing every assembled instruction and
// re-assembling yields the identical encoding — a property linking the
// assembler and the ISA's String method.
func TestRoundTrip(t *testing.T) {
	src := `
	main:	li r1, 123
		add r2, r1, r1
		sub r3, r2, 5
		mul r4, r3, r2
		and r5, r4, 255
		sll r6, r5, 3
		ld8_p r7, r6(0)
		ld4s_e r8, r7(12)
		ld8_n r9, r7(r8)
		st8 r9, r6(24)
		slt r10, r9, r8
		beq r10, 0, main
		jr r63
	`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("main:\n")
	for _, in := range p1.Insts {
		// Branch targets print symbolically via Sym, which we kept.
		sb.WriteString(in.String() + "\n")
	}
	p2, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("re-assemble: %v\nsource:\n%s", err, sb.String())
	}
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Insts), len(p2.Insts))
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d differs:\n%+v\n%+v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}

func TestListing(t *testing.T) {
	p := mustAssemble(t, "main: li r1, 1\nhalt r1")
	l := Listing(p)
	if !strings.Contains(l, "main:") || !strings.Contains(l, "lui r1, 1") {
		t.Errorf("listing missing content:\n%s", l)
	}
}

func TestSplitOperands(t *testing.T) {
	got := splitOperands("r1, r2(r3), 4")
	if len(got) != 3 || got[0] != "r1" || got[1] != "r2(r3)" || got[2] != "4" {
		t.Errorf("splitOperands = %q", got)
	}
	if splitOperands("") != nil {
		t.Errorf("splitOperands(\"\") should be nil")
	}
}

// TestRenderRoundTrip: Render output must re-assemble to the identical
// program (instructions, data image, symbol addresses).
func TestRenderRoundTrip(t *testing.T) {
	src := `
		.data
		.base 0x20000
	tbl:	.word 1, 2, 3
	buf:	.space 40
	msg:	.byte 7, 8, 9
		.text
	main:	li r1, 0
	loop:	ld8_p r2, r3(8)
		ld4s_e r4, r5(0)
		st8 r2, (tbl)
		add r1, r1, 1
		blt r1, 10, loop
		call r63, fn
		halt r1
	fn:	ret
	`
	p1 := mustAssemble(t, src)
	// Pretend the classifier rewrote a flavour.
	p1.Insts[1].Flavor = isa.LdN
	text := Render(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("re-assemble: %v\n%s", err, text)
	}
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("instruction count %d != %d\n%s", len(p2.Insts), len(p1.Insts), text)
	}
	for i := range p1.Insts {
		a, b := p1.Insts[i], p2.Insts[i]
		a.Sym, b.Sym = "", ""
		if a != b {
			t.Errorf("inst %d: %+v != %+v", i, a, b)
		}
	}
	if string(p1.Data) != string(p2.Data) {
		t.Errorf("data image differs (%d vs %d bytes)", len(p1.Data), len(p2.Data))
	}
	for name, addr := range p1.DataSymbols {
		if p2.DataSymbols[name] != addr {
			t.Errorf("data symbol %s: %#x != %#x", name, p2.DataSymbols[name], addr)
		}
	}
	if p2.Entry != p1.Entry {
		t.Errorf("entry %d != %d", p2.Entry, p1.Entry)
	}
}

// TestRenderSynthesizesLabels: a program decoded from an object file has no
// symbolic branch targets; Render must invent labels so the text
// re-assembles.
func TestRenderSynthesizesLabels(t *testing.T) {
	p := &isa.Program{
		Insts: []isa.Inst{
			{Op: isa.OpLUI, Rd: 1, Imm: 3},
			{Op: isa.OpAdd, Rd: 1, Rs1: 1, SrcImm: true, Imm: -1},
			{Op: isa.OpBr, Cond: isa.CondGT, Rs1: 1, SrcImm: true, Imm: 0, Target: 1},
			{Op: isa.OpHalt, Rs1: 1},
		},
		Symbols:     map[string]int{"main": 0},
		DataSymbols: map[string]int64{},
	}
	text := Render(p)
	q, err := Assemble(text)
	if err != nil {
		t.Fatalf("re-assemble: %v\n%s", err, text)
	}
	if q.Insts[2].Target != 1 {
		t.Errorf("synthesized label target = %d, want 1", q.Insts[2].Target)
	}
}
