package asm

import (
	"errors"
	"testing"

	"elag/internal/emu"
	"elag/internal/isa"
)

// FuzzAssemble feeds arbitrary text to the assembler and, when it
// assembles, executes the result under a short fuel. The contract:
//
//   - The assembler never panics; bad input yields an *Error.
//   - Any program the assembler accepts executes without untyped
//     errors: the emulator either finishes, runs out of fuel, or stops
//     with a typed architectural fault. Hand-written (or fuzzed)
//     assembly can do anything — jump into data, divide by zero, read
//     unaligned — and every one of those must surface as an *isa.Fault,
//     never a crash.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\tli r1, 42\n\thalt r1\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("assembler error is %T, not *Error: %v", err, err)
			}
			return
		}
		if _, err := emu.Run(p, 10_000); err != nil {
			var fault *isa.Fault
			if !errors.As(err, &fault) {
				t.Fatalf("emulator returned untyped error %T: %v\nsource: %q",
					err, err, src)
			}
		}
	})
}
