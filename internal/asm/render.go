package asm

import (
	"fmt"
	"sort"
	"strings"

	"elag/internal/isa"
)

// Render emits a complete, re-assemblable source listing for the program:
// the text segment with labels and (possibly classifier-rewritten) load
// flavours, and the data segment reconstructed from the data image and its
// symbols. Assembling the result reproduces the program (instruction
// fields, data image, and symbol addresses; symbolic immediates appear as
// resolved numbers).
func Render(p *isa.Program) string {
	var b strings.Builder

	// Text segment. Branch targets need labels; instructions decoded
	// from object files have no symbolic targets, so synthesize labels
	// where the symbol table has none.
	labels := make(map[int][]string)
	for name, pc := range p.Symbols {
		labels[pc] = append(labels[pc], name)
	}
	insts := append([]isa.Inst(nil), p.Insts...)
	for i := range insts {
		in := &insts[i]
		if !in.IsBranch() || in.Op == isa.OpJr {
			continue
		}
		if names, ok := labels[in.Target]; ok {
			in.Sym = names[0]
			continue
		}
		syn := fmt.Sprintf("L%d", in.Target)
		labels[in.Target] = append(labels[in.Target], syn)
		in.Sym = syn
	}
	for pc := range labels {
		sort.Strings(labels[pc])
	}
	b.WriteString("\t.text\n")
	for pc := range insts {
		for _, name := range labels[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "\t%s\n", insts[pc].String())
	}

	// Data segment: labels sorted by address, raw bytes between them.
	if len(p.Data) > 0 || len(p.DataSymbols) > 0 {
		b.WriteString("\t.data\n")
		fmt.Fprintf(&b, "\t.base %d\n", p.DataBase)
		type dsym struct {
			name string
			addr int64
		}
		var syms []dsym
		for name, addr := range p.DataSymbols {
			syms = append(syms, dsym{name, addr})
		}
		sort.Slice(syms, func(i, j int) bool {
			if syms[i].addr != syms[j].addr {
				return syms[i].addr < syms[j].addr
			}
			return syms[i].name < syms[j].name
		})
		off := int64(0)
		si := 0
		emitBytes := func(upto int64) {
			for off < upto {
				// Trailing zeros compress to .space.
				runEnd := off
				for runEnd < upto && p.Data[runEnd] == 0 {
					runEnd++
				}
				if runEnd-off >= 16 {
					fmt.Fprintf(&b, "\t.space %d\n", runEnd-off)
					off = runEnd
					continue
				}
				end := off + 16
				if end > upto {
					end = upto
				}
				vals := make([]string, 0, 16)
				for ; off < end; off++ {
					vals = append(vals, fmt.Sprintf("%d", p.Data[off]))
				}
				fmt.Fprintf(&b, "\t.byte %s\n", strings.Join(vals, ", "))
			}
		}
		for _, s := range syms {
			at := s.addr - p.DataBase
			if at < 0 || at > int64(len(p.Data)) {
				continue
			}
			emitBytes(at)
			fmt.Fprintf(&b, "%s:\n", s.name)
			si++
		}
		emitBytes(int64(len(p.Data)))
	}
	return b.String()
}
