package diffcheck

import (
	"testing"

	"elag/internal/asm"
	"elag/internal/asm/asmtest"
	"elag/internal/core"
	"elag/internal/emu"
	"elag/internal/isa"
	"elag/internal/pipeline"
	"elag/internal/workload"

	elag "elag"
)

// TestWorkloads runs the full differential suite on every embedded
// benchmark, with the compiler's own classification cross-checked.
func TestWorkloads(t *testing.T) {
	fuel := int64(100_000)
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := elag.Build(w.Source, elag.BuildOptions{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := Check(p.Machine, Options{Fuel: fuel, Classes: p.Classes})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if err := rep.Err(); err != nil {
				t.Error(err)
			}
			if rep.Insts == 0 {
				t.Errorf("workload retired no instructions")
			}
		})
	}
}

// TestRandomPrograms runs the differential suite on 200 seeded random
// programs. Odd seeds are additionally re-classified by the Section 4
// heuristics so the class-accounting checks see compiler-chosen flavours
// too.
func TestRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		src := GenProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		opt := Options{Fuel: 400_000}
		if seed%2 == 1 {
			opt.Classes = core.ClassifyAndApply(p, core.Options{})
		}
		rep, err := Check(p, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestGenProgramsTerminate: every generated program must halt on its own,
// well under the checker's fuel — the generator's termination guarantee.
func TestGenProgramsTerminate(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		p := asmtest.MustAssemble(t, GenProgram(seed))
		if _, _, err := emu.RunTrace(p, 400_000, false); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestLockstepCatchesTraceCorruption: corrupting one trace entry must be
// caught by the lockstep re-execution — a self-test that the checker can
// actually fail.
func TestLockstepCatchesTraceCorruption(t *testing.T) {
	p := asmtest.MustAssemble(t, GenProgram(3))
	_, trace, err := emu.RunTrace(p, 400_000, true)
	if err != nil {
		t.Fatal(err)
	}
	trace.EA[trace.Len()/2] += 8
	rep := &Report{}
	checkLockstep(p, trace, rep)
	if rep.Ok() {
		t.Fatal("corrupted trace passed lockstep check")
	}
}

// TestClassMismatchCaught: a classification that disagrees with the
// program's flavours must be flagged.
func TestClassMismatchCaught(t *testing.T) {
	p := asmtest.MustAssemble(t, "main:\tld8_p r1, r2(0)\n\thalt r1")
	cl := &core.Classification{ByPC: map[int]core.Class{0: core.EC}, StaticEC: 1}
	rep := &Report{}
	checkClasses(p, cl, "", rep)
	if rep.Ok() {
		t.Fatal("flavour/class mismatch not caught")
	}
}

// TestWatchdogConfigured: the CPI ceiling must trip on a fabricated
// runaway metric — exercised through checkConfig's arithmetic by a
// degenerate MaxCPI.
func TestWatchdogConfigured(t *testing.T) {
	p := asmtest.MustAssemble(t, GenProgram(7))
	_, trace, err := emu.RunTrace(p, 400_000, true)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := emu.RunTrace(p, 400_000, false)
	rep := &Report{Cycles: map[string]int64{}}
	// MaxCPI of 0 would take the default; force the smallest legal
	// ceiling and expect the watchdog to fire (real CPI > 0.2 always,
	// since issue width is 6 but the program has dependences).
	m := checkConfig(p, NamedConfig{"base", pipeline.PaperBase()}, trace, &res, 1, rep)
	if m == nil {
		t.Fatal("replay failed")
	}
	if m.Cycles > m.Insts { // only assert when the ceiling is actually exceeded
		found := false
		for _, v := range rep.Violations {
			if v.Check == "watchdog" {
				found = true
			}
		}
		if !found {
			t.Errorf("CPI %f exceeded ceiling 1 but watchdog silent",
				float64(m.Cycles)/float64(m.Insts))
		}
	}
}

// TestFaultingProgramRejected: a program that traps architecturally is
// not checkable; Check must surface the typed fault as an error.
func TestFaultingProgramRejected(t *testing.T) {
	p := asmtest.MustAssemble(t, "main:\tld8_n r1, r2(4)\n\thalt r1")
	p.Insts[0].Imm = 4 // misaligned 8-byte load at address 4
	if _, err := Check(p, Options{Fuel: 100}); err == nil {
		t.Fatal("misaligned program passed Check")
	}
}

// TestTruncatedRunChecked: a fuel-truncated run is still a valid prefix
// and must check clean.
func TestTruncatedRunChecked(t *testing.T) {
	p := asmtest.MustAssemble(t, GenProgram(11))
	rep, err := Check(p, Options{Fuel: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("1000-instruction fuel did not truncate")
	}
	if err := rep.Err(); err != nil {
		t.Error(err)
	}
}

// TestDefaultConfigsValid: every default configuration must construct.
func TestDefaultConfigsValid(t *testing.T) {
	p := &isa.Program{Insts: []isa.Inst{{Op: isa.OpHalt}},
		Symbols: map[string]int{"main": 0}, DataSymbols: map[string]int64{}}
	for _, nc := range DefaultConfigs() {
		if err := nc.Config.Validate(); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
		if _, err := pipeline.New(nc.Config, p, nil); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
	}
}
