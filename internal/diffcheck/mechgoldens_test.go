package diffcheck

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"elag/internal/workload"

	elag "elag"
)

// mechGoldensPath holds frozen pre-refactor metrics for every embedded
// workload under every named configuration. The mechanism-layer refactor
// claims to be invisible to the paper configurations; this file is the
// proof anchor — regenerate it only on a commit that deliberately changes
// the timing model, with ELAG_UPDATE_GOLDENS=1.
const mechGoldensPath = "testdata/mech_goldens.json"

const mechGoldensSchema = "elag-mech-goldens/v1"

type mechGoldensDoc struct {
	Schema  string
	Fuel    int64
	Entries map[string]json.RawMessage
}

// mechGoldenConfigs are the named configurations the goldens freeze — the
// shared CLI/serve vocabulary, at table=256 and the mode-default register
// count.
var mechGoldenConfigs = []string{"base", "compiler", "hw-pred", "hw-early", "hw-dual"}

func mechGoldenMetrics(t *testing.T, fuel int64) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, w := range workload.All() {
		p, err := elag.Build(w.Source, elag.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: build: %v", w.Name, err)
		}
		for _, name := range mechGoldenConfigs {
			cfg, err := elag.NamedConfig(name, 256, 0)
			if err != nil {
				t.Fatalf("config %s: %v", name, err)
			}
			m, _, err := p.Simulate(cfg, fuel)
			if err != nil {
				t.Fatalf("%s/%s: simulate: %v", w.Name, name, err)
			}
			buf, err := json.Marshal(m)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", w.Name, name, err)
			}
			out[w.Name+"/"+name] = buf
		}
	}
	return out
}

// TestMechGoldens byte-compares every workload × named-configuration
// metrics struct against the frozen goldens. Any drift — a counter
// renamed, a cycle gained, a new field serialized on old configurations —
// fails with the offending entry named.
func TestMechGoldens(t *testing.T) {
	if os.Getenv("ELAG_UPDATE_GOLDENS") != "" {
		fresh := mechGoldenMetrics(t, 200_000)
		d := mechGoldensDoc{
			Schema:  mechGoldensSchema,
			Fuel:    200_000,
			Entries: make(map[string]json.RawMessage, len(fresh)),
		}
		for k, v := range fresh {
			d.Entries[k] = v
		}
		buf, err := json.MarshalIndent(&d, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mechGoldensPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d entries", mechGoldensPath, len(fresh))
		return
	}

	raw, err := os.ReadFile(mechGoldensPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with ELAG_UPDATE_GOLDENS=1): %v", err)
	}
	var d mechGoldensDoc
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	if d.Schema != mechGoldensSchema {
		t.Fatalf("golden schema %q, want %q", d.Schema, mechGoldensSchema)
	}
	fresh := mechGoldenMetrics(t, d.Fuel)
	if len(fresh) != len(d.Entries) {
		t.Errorf("goldens hold %d entries, fresh run produced %d", len(d.Entries), len(fresh))
	}
	for key, want := range d.Entries {
		got, ok := fresh[key]
		if !ok {
			t.Errorf("%s: golden entry has no fresh counterpart (workload or config removed?)", key)
			continue
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, want); err != nil {
			t.Errorf("%s: compact golden: %v", key, err)
			continue
		}
		if !bytes.Equal(compact.Bytes(), got) {
			t.Errorf("%s: metrics diverged from pre-refactor golden\n golden: %s\n  fresh: %s",
				key, compact.Bytes(), got)
		}
	}
	for key := range fresh {
		if _, ok := d.Entries[key]; !ok {
			t.Errorf("%s: fresh entry missing from goldens (regenerate with ELAG_UPDATE_GOLDENS=1)", key)
		}
	}
}
