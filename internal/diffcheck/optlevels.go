package diffcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	elag "elag"

	"elag/internal/emu"
	"elag/internal/ir"
	"elag/internal/isa"
)

// This file is the optimization-level differential leg: the same MC source
// compiled at O0, O1 and O2 must be architecturally indistinguishable. The
// pass manager may reshape the code arbitrarily — inline, hoist, strength-
// reduce, delete — but the observable contract is fixed:
//
//   - Output: exit code, print_int and print_char streams are identical.
//   - Faults: a program that faults does so with the same fault kind at
//     every level (positions differ: PCs are per-level artifacts).
//   - Memory: the final contents of every source-level global are
//     byte-identical. Registers and stack frames are per-level artifacts
//     and are deliberately not compared.
//
// The O0 build is the semantic reference: no optimization pass has touched
// it, so any divergence indicts the optimizer, not the front end.

// optLevels is the ladder under differential test, reference first.
var optLevels = []struct {
	Name  string
	Level elag.OptLevel
}{
	{"O0", elag.O0},
	{"O1", elag.O1},
	{"O2", elag.O2},
}

// levelRun is one level's build plus its architectural outcome.
type levelRun struct {
	name  string
	prog  *elag.Program
	res   emu.Result
	fault *isa.Fault // nil after a clean halt
	cpu   *emu.CPU   // final machine state (for global-memory comparison)
}

// run executes the level's program for at most fuel instructions, keeping
// the CPU so the final memory image stays inspectable.
func (lr *levelRun) run(fuel int64) {
	c := emu.New(lr.prog.Machine)
	lr.cpu = c
	for i := int64(0); i < fuel && !c.Halted(); i++ {
		if err := c.Step(nil); err != nil {
			var f *isa.Fault
			if errors.As(err, &f) {
				lr.fault = f
			} else {
				lr.fault = &isa.Fault{Kind: isa.FaultIllegalOp, Detail: err.Error()}
			}
			break
		}
	}
	if lr.fault == nil && !c.Halted() {
		lr.fault = &isa.Fault{Kind: isa.FaultFuel}
	}
	lr.res = c.Result()
}

// CheckOptLevels compiles src at every optimization level (with IR
// verification between passes) and cross-checks the levels' architectural
// results against the O0 reference. fuel bounds each level's dynamic
// instruction count (<=0 for a default of 2M); when any level exhausts its
// fuel the report is marked Truncated and the cross-level comparisons are
// skipped — different levels execute different dynamic instruction counts,
// so truncated prefixes are not comparable.
//
// It returns an error only when a build fails (the front end rejecting src
// is not an optimizer divergence); everything else is reported as
// violations.
func CheckOptLevels(src string, fuel int64) (*Report, error) {
	if fuel <= 0 {
		fuel = 2_000_000
	}
	rep := &Report{Cycles: map[string]int64{}}
	runs := make([]levelRun, 0, len(optLevels))
	for _, l := range optLevels {
		p, err := elag.Build(src, elag.BuildOptions{Level: l.Level})
		if err != nil {
			return nil, fmt.Errorf("%s build: %w", l.Name, err)
		}
		lr := levelRun{name: l.Name, prog: p}
		lr.run(fuel)
		if lr.fault != nil && lr.fault.Kind == isa.FaultFuel {
			rep.Truncated = true
		}
		// Each level's classification must agree with the flavours it
		// stamped on its own machine program.
		checkClasses(p.Machine, p.Classes, l.Name, rep)
		runs = append(runs, lr)
	}
	rep.Insts = runs[0].res.DynamicInsts
	if rep.Truncated {
		return rep, nil
	}
	compareRuns(runs, rep)
	return rep, nil
}

// compareRuns checks every run against the first (the reference).
func compareRuns(runs []levelRun, rep *Report) {
	ref := &runs[0]
	for i := 1; i < len(runs); i++ {
		r := &runs[i]
		cfg := r.name + "-vs-" + ref.name
		if (ref.fault == nil) != (r.fault == nil) {
			rep.failf(cfg, "fault", "%s %s, %s %s",
				ref.name, faultString(ref.fault), r.name, faultString(r.fault))
			continue
		}
		if ref.fault != nil {
			// Both faulted: the kinds must agree. The partial state a
			// fault leaves behind is a per-level artifact and is not
			// compared.
			if r.fault.Kind != ref.fault.Kind {
				rep.failf(cfg, "fault-kind", "%s %v, %s %v",
					ref.name, ref.fault.Kind, r.name, r.fault.Kind)
			}
			continue
		}
		if got, want := r.res.Output(), ref.res.Output(); got != want {
			rep.failf(cfg, "output", "%s %q != %s %q", r.name, got, ref.name, want)
		}
		compareGlobals(ref, r, cfg, rep)
	}
}

func faultString(f *isa.Fault) string {
	if f == nil {
		return "halted cleanly"
	}
	return fmt.Sprintf("faulted (%v)", f.Kind)
}

// compareGlobals verifies that every source-level global holds the same
// final bytes in both runs. Globals are matched by name: their addresses
// are per-level layout decisions.
func compareGlobals(ref, r *levelRun, cfg string, rep *Report) {
	if ref.prog.Module == nil {
		return
	}
	for _, g := range ref.prog.Module.Globals {
		want, ok := globalBytes(ref, g)
		if !ok {
			rep.failf(cfg, "globals", "%s lost data symbol %s", ref.name, g.Name)
			continue
		}
		got, ok := globalBytes(r, g)
		if !ok {
			rep.failf(cfg, "globals", "%s lost data symbol %s", r.name, g.Name)
			continue
		}
		if !bytes.Equal(want, got) {
			off := 0
			for off < len(want) && want[off] == got[off] {
				off++
			}
			rep.failf(cfg, "globals",
				"final memory of %s differs at byte %d: %s %#x, %s %#x",
				g.Name, off, r.name, got[off], ref.name, want[off])
		}
	}
}

// globalBytes reads a global's final memory image out of a finished run.
func globalBytes(lr *levelRun, g *ir.Global) ([]byte, bool) {
	addr, ok := lr.prog.Machine.DataSymbols[g.Name]
	if !ok {
		return nil, false
	}
	out := make([]byte, g.Size)
	for i := range out {
		out[i] = lr.cpu.Mem.ByteAt(addr + int64(i))
	}
	return out, true
}

// GenMC builds a random but well-formed MC program, seeded deterministically
// so failures reproduce. Where GenProgram exercises the assembler-level ISA,
// GenMC exercises the compiler: it emits the shapes the optimizer rewrites —
// inlinable helper functions, loop-invariant expressions, redundant loads of
// the same element, constant-foldable arithmetic, dead branches, nested
// literal-bounded loops — while keeping three guarantees the differential
// checker depends on:
//
//   - Termination: every loop is bounded by an integer literal; no
//     data-dependent back edge is ever generated.
//   - No faults: array indices are masked to the array size, divisors are
//     or-ed with 1 (and both operands masked non-negative), and shift
//     amounts are small literals.
//   - Observability: results flow into the printed accumulator and the
//     global arrays, both of which the checker compares across levels.
func GenMC(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder

	nglob := 2 + rng.Intn(2)
	for g := 0; g < nglob; g++ {
		fmt.Fprintf(&b, "int g%d[64];\n", g)
	}
	b.WriteString("int acc;\n")

	nfuncs := rng.Intn(3)
	for f := 0; f < nfuncs; f++ {
		fmt.Fprintf(&b, "int h%d(int a, int b) { return %s; }\n",
			f, genExpr(rng, []string{"a", "b"}, 2))
	}

	b.WriteString("int main() {\n\tint t = 0;\n\tint u = 0;\n")
	// Seed the arrays with expressions of the index so every level starts
	// from the same non-trivial image.
	b.WriteString("\tfor (int i = 0; i < 64; i = i + 1) {\n")
	for g := 0; g < nglob; g++ {
		fmt.Fprintf(&b, "\t\tg%d[i] = %s;\n", g, genExpr(rng, []string{"i"}, 2))
	}
	b.WriteString("\t}\n")

	gen := &mcGen{rng: rng, nglob: nglob, nfuncs: nfuncs}
	outer := 8 + rng.Intn(24)
	fmt.Fprintf(&b, "\tfor (int i = 0; i < %d; i = i + 1) {\n", outer)
	vars := []string{"i", "t", "u", "acc"}
	for n := 4 + rng.Intn(8); n > 0; n-- {
		gen.stmt(&b, "\t\t", vars, 2)
	}
	b.WriteString("\t}\n")

	// Fold the arrays into the printed digest: a store optimized away
	// incorrectly changes the output stream, not just the memory image.
	fmt.Fprintf(&b, "\tfor (int i = 0; i < 64; i = i + 1) { acc = acc ^ (g%d[i] + i); }\n",
		rng.Intn(nglob))
	b.WriteString("\tprint_int(acc);\n\tprint_int(t);\n\tprint_int(u);\n")
	b.WriteString("\tprint_char((65 + (acc & 25)));\n")
	b.WriteString("\treturn (acc & 255);\n}\n")
	return b.String()
}

// mcGen carries the statement generator's context: array/helper counts and
// a counter for fresh inner-loop variable names.
type mcGen struct {
	rng    *rand.Rand
	nglob  int
	nfuncs int
	nloop  int
}

// index renders a guaranteed-in-bounds array index expression.
func (g *mcGen) index(vars []string) string {
	return fmt.Sprintf("((%s) & 63)", genExpr(g.rng, vars, 2))
}

func (g *mcGen) arr() string { return fmt.Sprintf("g%d", g.rng.Intn(g.nglob)) }

// stmt emits one random statement at the given indentation. depth bounds
// block nesting (if/else bodies, inner loops).
func (g *mcGen) stmt(b *strings.Builder, ind string, vars []string, depth int) {
	rng := g.rng
	n := rng.Intn(10)
	if depth <= 0 && (n == 4 || n == 5) {
		n = 2
	}
	switch n {
	case 0: // load into a scratch local
		fmt.Fprintf(b, "%st = %s[%s];\n", ind, g.arr(), g.index(vars))
	case 1: // store
		fmt.Fprintf(b, "%s%s[%s] = %s;\n", ind, g.arr(), g.index(vars),
			genExpr(rng, vars, 2))
	case 2: // accumulate
		fmt.Fprintf(b, "%sacc = acc + %s;\n", ind, genExpr(rng, vars, 2))
	case 3: // redundant loads of the same element (RLE fodder)
		a, ix := g.arr(), g.index(vars)
		fmt.Fprintf(b, "%st = %s[%s];\n", ind, a, ix)
		fmt.Fprintf(b, "%su = %s[%s];\n", ind, a, ix)
		fmt.Fprintf(b, "%sacc = acc + (t + u);\n", ind)
	case 4: // data-dependent branch
		fmt.Fprintf(b, "%sif (((%s) & 15) < %d) {\n", ind,
			genExpr(rng, vars, 1), 1+rng.Intn(15))
		g.stmt(b, ind+"\t", vars, depth-1)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(b, "%s} else {\n", ind)
			g.stmt(b, ind+"\t", vars, depth-1)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case 5: // nested literal-bounded loop with a loop-invariant expression
		j := fmt.Sprintf("j%d", g.nloop)
		g.nloop++
		fmt.Fprintf(b, "%sfor (int %s = 0; %s < %d; %s = %s + 1) {\n",
			ind, j, j, 2+rng.Intn(7), j, j)
		fmt.Fprintf(b, "%s\tu = u + ((t * %d) + %d);\n", ind, 1+rng.Intn(5), rng.Intn(50))
		g.stmt(b, ind+"\t", append(vars, j), depth-1)
		fmt.Fprintf(b, "%s}\n", ind)
	case 6: // guarded division and remainder: divisor in [1,15]
		fmt.Fprintf(b, "%su = ((%s) & 1023) / (((%s) & 15) | 1);\n",
			ind, genExpr(rng, vars, 2), genExpr(rng, vars, 1))
		fmt.Fprintf(b, "%st = t + (u %% %d);\n", ind, 2+rng.Intn(9))
	case 7: // helper call (inlinable at O2)
		if g.nfuncs > 0 {
			fmt.Fprintf(b, "%sacc = acc + h%d(t, u);\n", ind, rng.Intn(g.nfuncs))
		} else {
			fmt.Fprintf(b, "%sacc = acc + (t ^ u);\n", ind)
		}
	case 8: // dead branch (constant-foldable at O1+, executed nowhere)
		fmt.Fprintf(b, "%sif (0) { acc = acc + %d; }\n", ind, rng.Intn(10000))
	case 9: // constant arithmetic (constprop fodder)
		fmt.Fprintf(b, "%st = t + (%d * %d + %d);\n",
			ind, 1+rng.Intn(9), 1+rng.Intn(9), rng.Intn(100))
	}
}

// genExpr renders a side-effect-free integer expression over vars.
func genExpr(rng *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%d", rng.Intn(100))
		}
		return vars[rng.Intn(len(vars))]
	}
	a := genExpr(rng, vars, depth-1)
	b := genExpr(rng, vars, depth-1)
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %d)", a, 1+rng.Intn(7))
	case 3:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 4:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 5:
		return fmt.Sprintf("(%s << %d)", a, rng.Intn(4))
	default:
		return fmt.Sprintf("(%s >> %d)", a, rng.Intn(4))
	}
}
