package diffcheck

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram builds a random but well-formed assembly program, seeded
// deterministically so failures reproduce. It extends the pipeline
// package's generator with the parts of the ISA that one misses: calls
// and returns, every load width (signed and unsigned), absolute and
// register+register addressing, guarded division, nested loops, and
// console output — while keeping three guarantees the differential
// checker depends on:
//
//   - Termination: every loop counts on a dedicated register the random
//     ops never touch, and all generated branches are forward skips.
//   - Alignment: data buffers are 8-aligned and every offset (immediate
//     or index register) is a multiple of 8, so no access faults.
//   - Bounds: base registers only ever hold buffer addresses; offsets
//     stay well inside the 4 KiB buffers.
//
// Register convention: r1–r8 scratch (random ops), r9 outer counter,
// r10 inner counter, r11–r12 division temporaries, r20–r22 buffer bases,
// r23 index (multiple of 8, < 512), r63 link register.
func GenProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("\t.data\n")
	b.WriteString("buf:\t.space 4096\n")
	b.WriteString("tbl:\t.word 3, 1, 4, 1, 5, 9, 2, 6\n")
	b.WriteString("\t.text\n")
	b.WriteString("main:\tli r9, 0\n")
	b.WriteString("\tli r20, buf\n")
	b.WriteString("\tli r21, buf+2048\n")
	b.WriteString("\tli r22, tbl\n")
	b.WriteString("\tli r23, 0\n")

	nfuncs := rng.Intn(3)
	outer := 100 + rng.Intn(200)

	b.WriteString("loop:\n")
	// Recompute the index register from the counter: (r9 & 63) * 8.
	b.WriteString("\tand r23, r9, 63\n\tsll r23, r23, 3\n")
	n := 4 + rng.Intn(12)
	for i := 0; i < n; i++ {
		genOp(rng, &b, i, nfuncs)
	}
	if rng.Intn(2) == 0 {
		// Nested inner loop over a fixed trip count.
		fmt.Fprintf(&b, "\tli r10, 0\ninner:\n")
		for i := 0; i < 1+rng.Intn(3); i++ {
			genOp(rng, &b, 100+i, 0)
		}
		fmt.Fprintf(&b, "\tadd r10, r10, 1\n\tblt r10, %d, inner\n", 2+rng.Intn(6))
	}
	if rng.Intn(3) == 0 {
		// Console output: part of the architectural result the
		// differential check compares.
		fmt.Fprintf(&b, "\tst8 r%d, (%d)\n", 1+rng.Intn(8), 0x7FFF_F000)
	}
	fmt.Fprintf(&b, "\tadd r9, r9, 1\n\tblt r9, %d, loop\n\thalt r9\n", outer)

	for f := 0; f < nfuncs; f++ {
		fmt.Fprintf(&b, "fn%d:\n", f)
		for i := 0; i < 2+rng.Intn(5); i++ {
			genLeafOp(rng, &b, 200+10*f+i)
		}
		b.WriteString("\tret\n")
	}
	return b.String()
}

var loadWidths = []string{"1", "2", "4", "8", "2s", "4s"}
var loadFlavors = []string{"n", "p", "e"}
var storeWidths = []string{"1", "2", "4", "8"}

// memOperand picks one of the three addressing modes, always 8-aligned
// and inside a buffer: rB(imm), rB(r23), or (buf+imm).
func memOperand(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("r2%d(r23)", rng.Intn(2))
	case 1:
		return fmt.Sprintf("buf+%d", rng.Intn(64)*8)
	case 2:
		return fmt.Sprintf("r22(%d)", rng.Intn(8)*8)
	default:
		return fmt.Sprintf("r2%d(%d)", rng.Intn(2), rng.Intn(64)*8)
	}
}

// genOp emits one random main-body operation; i disambiguates skip
// labels, nfuncs > 0 allows call sites.
func genOp(rng *rand.Rand, b *strings.Builder, i, nfuncs int) {
	r1 := 1 + rng.Intn(8)
	r2 := 1 + rng.Intn(8)
	rd := 1 + rng.Intn(8)
	switch rng.Intn(10) {
	case 0:
		ops := []string{"add", "sub", "xor", "or", "and", "slt"}
		fmt.Fprintf(b, "\t%s r%d, r%d, r%d\n", ops[rng.Intn(len(ops))], rd, r1, r2)
	case 1:
		ops := []string{"add", "xor", "sll", "srl", "sra"}
		op := ops[rng.Intn(len(ops))]
		imm := rng.Intn(1000)
		if op == "sll" || op == "srl" || op == "sra" {
			imm = rng.Intn(16)
		}
		fmt.Fprintf(b, "\t%s r%d, r%d, %d\n", op, rd, r1, imm)
	case 2, 3:
		w := loadWidths[rng.Intn(len(loadWidths))]
		fl := loadFlavors[rng.Intn(len(loadFlavors))]
		fmt.Fprintf(b, "\tld%s_%s r%d, %s\n", w, fl, rd, memOperand(rng))
	case 4:
		w := storeWidths[rng.Intn(len(storeWidths))]
		fmt.Fprintf(b, "\tst%s r%d, %s\n", w, r1, memOperand(rng))
	case 5:
		// Forward data-dependent skip.
		fmt.Fprintf(b, "\tand r%d, r%d, 7\n", rd, r1)
		fmt.Fprintf(b, "\tbeq r%d, %d, skip%d\n", rd, rng.Intn(8), i)
		fmt.Fprintf(b, "\tadd r%d, r%d, 1\n", rd, rd)
		fmt.Fprintf(b, "skip%d:\n", i)
	case 6:
		fmt.Fprintf(b, "\tmul r%d, r%d, %d\n", rd, r1, 1+rng.Intn(7))
	case 7:
		// Guarded division: or-ing in bit 0 makes the divisor
		// non-zero, so the op never faults.
		op := []string{"div", "rem"}[rng.Intn(2)]
		fmt.Fprintf(b, "\tor r11, r%d, 1\n", r1)
		fmt.Fprintf(b, "\t%s r12, r%d, r11\n", op, r2)
	case 8:
		if nfuncs > 0 {
			fmt.Fprintf(b, "\tcall r63, fn%d\n", rng.Intn(nfuncs))
		} else {
			fmt.Fprintf(b, "\tadd r%d, r%d, r%d\n", rd, r1, r2)
		}
	case 9:
		// Pointer-ish chain: load a table word, mask it into an
		// aligned index, load through it.
		fmt.Fprintf(b, "\tld8_%s r%d, r22(%d)\n",
			loadFlavors[rng.Intn(3)], rd, rng.Intn(8)*8)
		fmt.Fprintf(b, "\tand r%d, r%d, 63\n", rd, rd)
		fmt.Fprintf(b, "\tsll r%d, r%d, 3\n", rd, rd)
		fmt.Fprintf(b, "\tld8_%s r%d, r20(r%d)\n",
			loadFlavors[rng.Intn(3)], 1+rng.Intn(8), rd)
	}
}

// genLeafOp emits one operation safe inside a leaf function: no calls (a
// single link register), no labels shared with the main body.
func genLeafOp(rng *rand.Rand, b *strings.Builder, i int) {
	r1 := 1 + rng.Intn(8)
	rd := 1 + rng.Intn(8)
	switch rng.Intn(4) {
	case 0:
		fmt.Fprintf(b, "\tadd r%d, r%d, %d\n", rd, r1, rng.Intn(100))
	case 1:
		w := loadWidths[rng.Intn(len(loadWidths))]
		fl := loadFlavors[rng.Intn(len(loadFlavors))]
		fmt.Fprintf(b, "\tld%s_%s r%d, %s\n", w, fl, rd, memOperand(rng))
	case 2:
		fmt.Fprintf(b, "\tst%s r%d, %s\n",
			storeWidths[rng.Intn(len(storeWidths))], r1, memOperand(rng))
	case 3:
		fmt.Fprintf(b, "\tbne r%d, 0, fskip%d\n", r1, i)
		fmt.Fprintf(b, "\txor r%d, r%d, 1\n", rd, rd)
		fmt.Fprintf(b, "fskip%d:\n", i)
	}
}
