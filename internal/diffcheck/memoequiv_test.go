package diffcheck

import (
	"testing"

	"elag/internal/asm"
	"elag/internal/workload"

	elag "elag"
)

// TestMemoEquivalenceWorkloads sweeps the replay fast-path matrix over
// every embedded benchmark: memoization and kernel specialization, alone
// and together, must be invisible in the metrics on all five reference
// configurations.
func TestMemoEquivalenceWorkloads(t *testing.T) {
	fuel := int64(100_000)
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := elag.Build(w.Source, elag.BuildOptions{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := CheckMemoEquivalence(p.Machine, Options{Fuel: fuel})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if err := rep.Err(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMemoEquivalenceRandomPrograms sweeps the same matrix over 200 seeded
// random programs (50 under -short). The generator covers the ISA corners
// the workloads miss — calls, every load width, reg+reg addressing — so a
// memo fingerprint that under-captures state shows up here first.
func TestMemoEquivalenceRandomPrograms(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 50
	}
	for seed := int64(1); seed <= seeds; seed++ {
		src := GenProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		rep, err := CheckMemoEquivalence(p, Options{Fuel: 400_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
