package diffcheck

import (
	"testing"

	"elag/internal/asm"
)

// FuzzRandomProgram feeds generator seeds to the full differential
// checker: whatever program the seed produces must assemble, terminate
// under fuel, and replay through every configuration with zero invariant
// violations. The fuzzer explores the generator's whole decision space;
// any seed that trips an invariant is a minimized, reproducible
// counterexample against either the timing model or the emulator.
// FuzzOptLevels feeds generator seeds to the optimization-level
// differential checker: whatever MC program the seed produces must compile
// at O0, O1 and O2 (with IR verification between passes) and behave
// identically at every level — same output stream, same faults, same final
// global memory. Any seed that trips a violation is a minimized,
// reproducible miscompilation witness.
func FuzzOptLevels(f *testing.F) {
	for seed := int64(1); seed <= 20; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := GenMC(seed)
		rep, err := CheckOptLevels(src, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if rep.Truncated {
			t.Fatalf("seed %d: generated program exhausted fuel\n%s", seed, src)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	})
}

// FuzzReplayMemo feeds generator seeds to the fast-path equivalence
// checker: whatever program the seed produces must replay identically
// (modulo the Memo counters) with memoization and kernel specialization
// on or off, in every combination, under every reference configuration.
// A seed that trips a divergence is a minimized witness against the block
// fingerprint, the guard match, or the recording replay.
func FuzzReplayMemo(f *testing.F) {
	for seed := int64(1); seed <= 20; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := GenProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		rep, err := CheckMemoEquivalence(p, Options{Fuel: 200_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	})
}

// FuzzMech feeds generator seeds to the mechanism-layer equivalence
// checker: whatever program the seed produces must behave identically with
// the paper mechanisms configured through registry specs or typed fields,
// and the stride/pcax assist mechanisms must hold every replay invariant
// (including the memoization fast-path matrix). A tripping seed is a
// minimized witness against a mechanism's snapshot contract or the assist
// path's timing accounting.
func FuzzMech(f *testing.F) {
	for seed := int64(1); seed <= 20; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := GenProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		rep, err := CheckMechEquivalence(p, Options{Fuel: 200_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	})
}

func FuzzRandomProgram(f *testing.F) {
	for seed := int64(1); seed <= 20; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := GenProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		rep, err := Check(p, Options{Fuel: 200_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	})
}
