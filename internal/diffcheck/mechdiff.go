// mechdiff.go extends the differential checker across the pluggable
// mechanism layer (internal/mech). It verifies the two halves of the
// refactor's contract separately:
//
//   - Identity: the paper's two mechanisms expressed as registry specs
//     ("addrpred:256", "earlycalc:4") must produce metrics bit-identical
//     to the same geometry configured through the original typed fields.
//     The seam may not perturb the model it was extracted from.
//   - Soundness: every registered assist mechanism (stride, pcax, ...)
//     must satisfy the full invariant suite — lockstep trace integrity,
//     architectural transparency, counter algebra, steering, streaming
//     equivalence, and the memoization/specialization fast-path matrix.
package diffcheck

import (
	"reflect"

	"elag/internal/addrpred"
	"elag/internal/earlycalc"
	"elag/internal/isa"
	"elag/internal/mech"
	_ "elag/internal/mech/all" // register the assist mechanisms
	"elag/internal/pipeline"
)

// MechConfigs returns the mechanism-layer differential configurations: the
// base (no-speculation) anchor, the paper mechanisms expressed through
// registry specs, and each assist mechanism at its reference geometry. The
// first entry is always base, anchoring the cross-config cycle bound.
func MechConfigs() []NamedConfig {
	return []NamedConfig{
		{"base", pipeline.PaperBase()},
		{"spec-predict", pipeline.Config{
			Select:     pipeline.SelAllPredict,
			Mechanisms: []mech.Spec{{Kind: "addrpred", Entries: 256}},
		}},
		{"spec-early", pipeline.Config{
			Select:     pipeline.SelAllEarly,
			Mechanisms: []mech.Spec{{Kind: "earlycalc", Entries: 4}},
		}},
		{"spec-compiler", pipeline.Config{
			Select: pipeline.SelCompiler,
			Mechanisms: []mech.Spec{
				{Kind: "addrpred", Entries: 256},
				{Kind: "earlycalc", Entries: 1},
			},
		}},
		{"stride", pipeline.Config{
			Mechanisms: []mech.Spec{{Kind: "stride", Entries: 256}},
		}},
		{"pcax", pipeline.Config{
			Mechanisms: []mech.Spec{{Kind: "pcax", Entries: 256, Assoc: 4}},
		}},
	}
}

// specIdentityPairs lists typed-vs-spec configuration pairs that must be
// metric-identical: each row is the same hardware, written once in the
// pre-refactor typed vocabulary and once as registry specs.
func specIdentityPairs() []struct {
	name         string
	typed, specd pipeline.Config
} {
	typedPred := pipeline.Config{
		Select:    pipeline.SelAllPredict,
		Predictor: &addrpred.Config{Entries: 256},
	}
	typedEarly := pipeline.Config{
		Select:   pipeline.SelAllEarly,
		RegCache: &earlycalc.Config{Entries: 4},
	}
	typedComp := pipeline.Config{
		Select:    pipeline.SelCompiler,
		Predictor: &addrpred.Config{Entries: 256},
		RegCache:  &earlycalc.Config{Entries: 1},
	}
	return []struct {
		name         string
		typed, specd pipeline.Config
	}{
		{"addrpred", typedPred, pipeline.Config{
			Select:     pipeline.SelAllPredict,
			Mechanisms: []mech.Spec{{Kind: "addrpred", Entries: 256}},
		}},
		{"earlycalc", typedEarly, pipeline.Config{
			Select:     pipeline.SelAllEarly,
			Mechanisms: []mech.Spec{{Kind: "earlycalc", Entries: 4}},
		}},
		{"compiler", typedComp, pipeline.Config{
			Select: pipeline.SelCompiler,
			Mechanisms: []mech.Spec{
				{Kind: "addrpred", Entries: 256},
				{Kind: "earlycalc", Entries: 1},
			},
		}},
	}
}

// CheckMechEquivalence runs the mechanism-layer differential suite on prog:
// the full invariant check and the memoization fast-path matrix over
// MechConfigs (or opt.Configs when set), plus the typed-vs-spec identity
// comparison for the paper mechanisms. It returns an error only when the
// reference emulation itself faults; violations land in the Report.
func CheckMechEquivalence(prog *isa.Program, opt Options) (*Report, error) {
	if opt.Fuel <= 0 {
		opt.Fuel = 1_000_000
	}
	if opt.Configs == nil {
		opt.Configs = MechConfigs()
	}
	rep, err := Check(prog, opt)
	if err != nil {
		return nil, err
	}
	mrep, err := CheckMemoEquivalence(prog, opt)
	if err != nil {
		return nil, err
	}
	rep.Violations = append(rep.Violations, mrep.Violations...)
	checkSpecIdentity(prog, opt.Fuel, rep)
	return rep, nil
}

// checkSpecIdentity simulates each typed/spec pair and requires the full
// Metrics structs to be deeply equal — Memo counters included, since the
// normalized configurations are the same machine and must take the same
// fast paths.
func checkSpecIdentity(prog *isa.Program, fuel int64, rep *Report) {
	for _, pair := range specIdentityPairs() {
		mt, _, err := pipeline.Simulate(pair.typed, prog, fuel)
		if err != nil {
			rep.failf(pair.name, "spec-identity", "typed replay: %v", err)
			continue
		}
		ms, _, err := pipeline.Simulate(pair.specd, prog, fuel)
		if err != nil {
			rep.failf(pair.name, "spec-identity", "spec replay: %v", err)
			continue
		}
		if !reflect.DeepEqual(mt, ms) {
			rep.failf(pair.name, "spec-identity",
				"registry-spec metrics differ from typed configuration: %d cycles vs %d",
				ms.Cycles, mt.Cycles)
		}
	}
}
