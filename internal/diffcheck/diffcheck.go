// Package diffcheck is the lockstep differential verifier: it replays one
// program through the functional emulator and the timing pipeline under a
// set of hardware configurations and cross-checks the two models against
// each other.
//
// The timing model holds no architectural state — it replays the
// emulator's trace — so the properties worth machine-checking are the ones
// that tie the two together:
//
//   - Trace integrity: re-executing the program architecturally reproduces
//     the recorded trace entry for entry (PC, sequence number, effective
//     address, branch outcome, next PC), and the NextPC chain links up.
//   - Architectural transparency: replaying the trace through the pipeline
//     (with speculation on or off) never mutates the program image, and a
//     re-emulation afterwards produces the identical architectural result.
//     Speculative cache accesses are timing-only; they must not change
//     what the program computes.
//   - Accounting consistency: every configuration's metrics satisfy the
//     counter algebra of the two speculation paths, the retired-instruction
//     counts match the emulator's, and per-load steering agrees with the
//     static load flavours.
//   - Watchdog: the cycle count stays under a generous CPI ceiling, so a
//     timing-model livelock (cycles running away from retirement) is caught
//     even on pathological generated programs.
package diffcheck

import (
	"errors"
	"fmt"
	"reflect"
	"strings"

	"elag/internal/addrpred"
	"elag/internal/core"
	"elag/internal/earlycalc"
	"elag/internal/emu"
	"elag/internal/isa"
	"elag/internal/pipeline"
)

// NamedConfig pairs a label (for violation reports) with a pipeline
// configuration.
type NamedConfig struct {
	Name   string
	Config pipeline.Config
}

// DefaultConfigs returns the five selection policies the paper compares,
// at their reference geometries. The first entry is always the base
// (no-speculation) architecture, which anchors the cross-config cycle
// bound.
func DefaultConfigs() []NamedConfig {
	return []NamedConfig{
		{"base", pipeline.PaperBase()},
		{"compiler-directed", pipeline.PaperCompilerDirected()},
		{"all-predict", pipeline.Config{
			Select:    pipeline.SelAllPredict,
			Predictor: &addrpred.Config{Entries: 256},
		}},
		{"all-early", pipeline.Config{
			Select:   pipeline.SelAllEarly,
			RegCache: &earlycalc.Config{Entries: 4},
		}},
		{"hw-dual", pipeline.Config{
			Select:    pipeline.SelHWDual,
			Predictor: &addrpred.Config{Entries: 256},
			RegCache:  &earlycalc.Config{Entries: 4},
		}},
	}
}

// Options parameterizes a differential check.
type Options struct {
	// Fuel bounds the emulated dynamic instruction count (<=0 for a
	// default of 1M). A fuel-truncated run is still checked: the prefix
	// trace is a valid trace.
	Fuel int64
	// Configs lists the hardware configurations to replay under; nil
	// means DefaultConfigs.
	Configs []NamedConfig
	// MaxCPI is the watchdog ceiling: a replay may not spend more than
	// MaxCPI cycles per retired instruction (<=0 for a default of 50).
	// The paper's machine retires up to 6 per cycle; a run anywhere
	// near the ceiling means the timing model has lost progress.
	MaxCPI int64
	// Classes, when non-nil, is cross-checked against the program's
	// load flavours: every classified load's flavour must agree with
	// its class.
	Classes *core.Classification
}

// Violation is one failed invariant.
type Violation struct {
	// Config names the configuration the violation occurred under, or
	// "" for configuration-independent checks.
	Config string
	// Check is the invariant's short name.
	Check string
	// Detail describes the observed inconsistency.
	Detail string
}

func (v Violation) String() string {
	if v.Config == "" {
		return fmt.Sprintf("%s: %s", v.Check, v.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", v.Config, v.Check, v.Detail)
}

// Report is the outcome of one differential check.
type Report struct {
	// Insts is the dynamic instruction count of the reference run.
	Insts int64
	// Truncated reports whether the reference run exhausted its fuel.
	Truncated bool
	// Cycles maps configuration name to replay cycle count.
	Cycles map[string]int64
	// Violations lists every failed invariant (empty means all passed).
	Violations []Violation
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when the check passed, or an error listing every
// violation.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "diffcheck: %d invariant violation(s):", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return errors.New(b.String())
}

func (r *Report) failf(cfg, check, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Config: cfg, Check: check, Detail: fmt.Sprintf(format, args...),
	})
}

// Check runs the full differential suite on prog. It returns an error only
// when the reference emulation itself faults (a program that traps is not
// checkable); invariant failures are reported in the Report.
func Check(prog *isa.Program, opt Options) (*Report, error) {
	if opt.Fuel <= 0 {
		opt.Fuel = 1_000_000
	}
	if opt.MaxCPI <= 0 {
		opt.MaxCPI = 50
	}
	configs := opt.Configs
	if configs == nil {
		configs = DefaultConfigs()
	}
	rep := &Report{Cycles: make(map[string]int64, len(configs))}

	res, trace, err := emu.RunTrace(prog, opt.Fuel, true)
	if err != nil {
		if !errors.Is(err, emu.ErrFuel) {
			return nil, fmt.Errorf("reference emulation: %w", err)
		}
		rep.Truncated = true
	}
	rep.Insts = res.DynamicInsts

	// Snapshot the program image: no replay below may mutate it.
	instSnap := append([]isa.Inst(nil), prog.Insts...)
	dataSnap := append([]byte(nil), prog.Data...)

	checkLockstep(prog, trace, rep)
	if opt.Classes != nil {
		checkClasses(prog, opt.Classes, "", rep)
	}

	var baseCycles int64
	seqMetrics := make([]*pipeline.Metrics, len(configs))
	for i, nc := range configs {
		m := checkConfig(prog, nc, trace, &res, opt.MaxCPI, rep)
		if m == nil {
			continue
		}
		seqMetrics[i] = m
		rep.Cycles[nc.Name] = m.Cycles
		if i == 0 {
			baseCycles = m.Cycles
		} else if baseCycles > 0 && m.Cycles > baseCycles*3/2 {
			// Early address generation only consumes spare ports:
			// it must never slow a program down by anything close
			// to 50% (same tolerance the pipeline's own random
			// tests use).
			rep.failf(nc.Name, "slowdown",
				"%d cycles vs %d under %s", m.Cycles, baseCycles, configs[0].Name)
		}
	}
	checkStream(prog, trace, opt.Fuel, configs, seqMetrics, rep)

	// Architectural transparency: the replays above must not have
	// touched the program image, and re-emulating now must reproduce the
	// reference result bit for bit.
	checkSnapshot(prog, instSnap, dataSnap, rep)
	res2, trace2, err2 := emu.RunTrace(prog, opt.Fuel, true)
	if err2 != nil && !errors.Is(err2, emu.ErrFuel) {
		rep.failf("", "re-emulation", "faulted after pipeline replay: %v", err2)
	} else {
		if res2.Output() != res.Output() {
			rep.failf("", "arch-result",
				"re-emulation result %q != reference %q", res2.Output(), res.Output())
		}
		if trace2.Len() != trace.Len() {
			rep.failf("", "arch-result",
				"re-emulation trace length %d != reference %d", trace2.Len(), trace.Len())
		}
	}
	return rep, nil
}

// checkLockstep steps a fresh CPU through the program, comparing each
// architectural step against the recorded trace entry and verifying the
// NextPC chain.
func checkLockstep(prog *isa.Program, trace *emu.Trace, rep *Report) {
	c := emu.New(prog)
	var te emu.TraceEntry
	n := trace.Len()
	for i := 0; i < n; i++ {
		if c.Halted() {
			rep.failf("", "lockstep", "CPU halted at step %d of %d", i, n)
			return
		}
		if err := c.Step(&te); err != nil {
			rep.failf("", "lockstep", "step %d faulted: %v", i, err)
			return
		}
		want := trace.At(i)
		if te != want {
			rep.failf("", "lockstep", "step %d: re-execution %+v != trace %+v", i, te, want)
			return
		}
		if i+1 < n && want.NextPC != int(trace.PC[i+1]) {
			rep.failf("", "lockstep",
				"step %d: NextPC %d but trace continues at %d", i, want.NextPC, trace.PC[i+1])
			return
		}
		if want.SeqNum != int64(i) {
			rep.failf("", "lockstep", "step %d: SeqNum %d", i, want.SeqNum)
			return
		}
	}
}

// checkStream verifies the streaming engine against the materialized one:
// StreamTrace's chunk concatenation must reproduce the recorded trace entry
// for entry (sequence numbers included), and a batched streamed replay of
// every configuration must produce metrics bit-identical to the sequential
// whole-trace replays. The awkward chunk size (97) forces partial final
// chunks on almost every program.
func checkStream(prog *isa.Program, trace *emu.Trace, fuel int64,
	configs []NamedConfig, seq []*pipeline.Metrics, rep *Report) {
	const chunk = 97
	stop := errors.New("stop")
	off := 0
	_, err := emu.StreamTrace(prog, fuel, chunk, func(c *emu.Trace) error {
		if c.Seq0 != int64(off) {
			rep.failf("", "stream-trace", "chunk Seq0 %d at offset %d", c.Seq0, off)
			return stop
		}
		n := c.Len()
		if n == 0 || n > chunk {
			rep.failf("", "stream-trace", "chunk of %d entries (chunk size %d)", n, chunk)
			return stop
		}
		if off+n > trace.Len() {
			rep.failf("", "stream-trace",
				"stream produced %d entries, trace has %d", off+n, trace.Len())
			return stop
		}
		for i := 0; i < n; i++ {
			if c.At(i) != trace.At(off+i) {
				rep.failf("", "stream-trace", "entry %d: stream %+v != trace %+v",
					off+i, c.At(i), trace.At(off+i))
				return stop
			}
		}
		off += n
		return nil
	})
	if err != nil && !errors.Is(err, emu.ErrFuel) && !errors.Is(err, stop) {
		rep.failf("", "stream-trace", "streaming emulation: %v", err)
		return
	}
	if errors.Is(err, stop) {
		return
	}
	if off != trace.Len() {
		rep.failf("", "stream-trace", "stream produced %d entries, trace has %d", off, trace.Len())
		return
	}

	specs := make([]pipeline.BatchSpec, len(configs))
	for i, nc := range configs {
		specs[i] = pipeline.BatchSpec{Config: nc.Config}
	}
	ms, _, err := pipeline.BatchReplay(prog, fuel, chunk, specs)
	if err != nil {
		rep.failf("", "stream-batch", "batched replay: %v", err)
		return
	}
	for i, nc := range configs {
		if seq[i] == nil {
			continue
		}
		if !metricsEqual(ms[i], seq[i]) {
			rep.failf(nc.Name, "stream-batch",
				"batched streamed metrics differ from sequential replay: %d cycles vs %d",
				ms[i].Cycles, seq[i].Cycles)
		}
	}
}

// memoModes is the replay fast-path matrix CheckMemoEquivalence sweeps:
// both fast paths on (the production default), each disabled alone, and
// both disabled (the plain interpreter, the correctness reference).
var memoModes = []struct {
	name           string
	noMemo, noSpec bool
}{
	{"memo+spec", false, false},
	{"nomemo+spec", true, false},
	{"memo+nospec", false, true},
	{"nomemo+nospec", true, true},
}

// CheckMemoEquivalence verifies the replay fast paths are invisible: for
// every configuration, the four {memoization, kernel specialization} ×
// {on, off} combinations must produce metrics equal modulo the Memo
// counters. Replays stream with an awkward chunk size (97) so block
// recordings regularly straddle chunk boundaries — the regime where a
// fingerprint or rebase bug would surface. It returns an error only when
// the reference emulation itself faults; divergences land in the Report.
func CheckMemoEquivalence(prog *isa.Program, opt Options) (*Report, error) {
	if opt.Fuel <= 0 {
		opt.Fuel = 1_000_000
	}
	configs := opt.Configs
	if configs == nil {
		configs = DefaultConfigs()
	}
	rep := &Report{Cycles: make(map[string]int64, len(configs))}
	res, _, err := emu.RunTrace(prog, opt.Fuel, false)
	if err != nil {
		if !errors.Is(err, emu.ErrFuel) {
			return nil, fmt.Errorf("reference emulation: %w", err)
		}
		rep.Truncated = true
	}
	rep.Insts = res.DynamicInsts

	const chunk = 97
	for _, nc := range configs {
		var ref *pipeline.Metrics
		for _, md := range memoModes {
			specs := []pipeline.BatchSpec{{Config: nc.Config,
				NoMemo: md.noMemo, NoSpecialize: md.noSpec}}
			ms, _, err := pipeline.BatchReplay(prog, opt.Fuel, chunk, specs)
			if err != nil {
				rep.failf(nc.Name, "memo-equiv", "%s: replay: %v", md.name, err)
				continue
			}
			if ref == nil {
				ref = ms[0]
				rep.Cycles[nc.Name] = ref.Cycles
				continue
			}
			if !metricsEqual(ms[0], ref) {
				rep.failf(nc.Name, "memo-equiv",
					"%s metrics diverge from %s: %d cycles vs %d",
					md.name, memoModes[0].name, ms[0].Cycles, ref.Cycles)
			}
		}
	}
	return rep, nil
}

// metricsEqual compares two metrics structs field for field, ignoring the
// Memo counters: they describe the simulator (hit rates depend on chunking
// and configuration), not the simulated machine, and legitimately differ
// between memoized and unmemoized runs of identical workloads.
func metricsEqual(a, b *pipeline.Metrics) bool {
	na, nb := *a, *b
	na.Memo, nb.Memo = pipeline.MemoStats{}, pipeline.MemoStats{}
	return reflect.DeepEqual(&na, &nb)
}

// checkClasses verifies that the program's load flavours agree with the
// classification that claims to describe them. cfg labels the violations
// ("" for configuration-independent checks).
func checkClasses(prog *isa.Program, cl *core.Classification, cfg string, rep *Report) {
	nt, pd, ec := 0, 0, 0
	for pc := range prog.Insts {
		in := &prog.Insts[pc]
		if !in.IsLoad() {
			continue
		}
		var want isa.LoadFlavor
		switch cl.Class(pc) {
		case core.PD:
			want, pd = isa.LdP, pd+1
		case core.EC:
			want, ec = isa.LdE, ec+1
		default:
			want, nt = isa.LdN, nt+1
		}
		if in.Flavor != want {
			rep.failf(cfg, "class-flavor",
				"load at PC %d classified %v but flavoured %v", pc, cl.Class(pc), in.Flavor)
		}
	}
	if nt != cl.StaticNT || pd != cl.StaticPD || ec != cl.StaticEC {
		rep.failf(cfg, "class-counts",
			"static counts NT/PD/EC %d/%d/%d != classification %d/%d/%d",
			nt, pd, ec, cl.StaticNT, cl.StaticPD, cl.StaticEC)
	}
}

// dynamicLoadMix counts the trace's dynamic loads by steering-relevant
// category.
type dynamicLoadMix struct {
	total  int64 // all loads
	ldP    int64 // flavour ld_p
	ldE    int64 // flavour ld_e, addressable by the decode adder
	adder  int64 // any flavour, addressable by the decode adder
	regReg int64 // register+register (never early-calculable)
}

func countLoads(prog *isa.Program, trace *emu.Trace) dynamicLoadMix {
	var mix dynamicLoadMix
	for i, n := 0, trace.Len(); i < n; i++ {
		pc := int(trace.PC[i])
		if pc < 0 || pc >= len(prog.Insts) {
			continue
		}
		in := &prog.Insts[pc]
		if !in.IsLoad() {
			continue
		}
		mix.total++
		if in.Mode == isa.AMRegReg {
			mix.regReg++
		} else {
			mix.adder++
			if in.Flavor == isa.LdE {
				mix.ldE++
			}
		}
		if in.Flavor == isa.LdP {
			mix.ldP++
		}
	}
	return mix
}

// checkConfig replays the trace under one configuration and checks every
// per-configuration invariant. Returns nil when the replay itself failed.
func checkConfig(prog *isa.Program, nc NamedConfig, trace *emu.Trace,
	res *emu.Result, maxCPI int64, rep *Report) *pipeline.Metrics {
	sim, err := pipeline.New(nc.Config, prog, nil)
	if err != nil {
		rep.failf(nc.Name, "construct", "%v", err)
		return nil
	}
	m, err := sim.Run(trace)
	if err != nil {
		rep.failf(nc.Name, "replay", "%v", err)
		return nil
	}

	// Retirement accounting must match the architectural run.
	if m.Insts != res.DynamicInsts {
		rep.failf(nc.Name, "insts", "%d retired != %d emulated", m.Insts, res.DynamicInsts)
	}
	if m.Loads != res.DynamicLoads {
		rep.failf(nc.Name, "loads", "%d != %d", m.Loads, res.DynamicLoads)
	}
	if m.Stores != res.DynamicStore {
		rep.failf(nc.Name, "stores", "%d != %d", m.Stores, res.DynamicStore)
	}

	// Issue-width bound and livelock watchdog.
	width := int64(nc.Config.IssueWidth)
	if width <= 0 {
		width = 6
	}
	if m.Insts > 0 && m.Cycles*width < m.Insts {
		rep.failf(nc.Name, "issue-width", "%d cycles retire %d insts at width %d",
			m.Cycles, m.Insts, width)
	}
	if m.Cycles > maxCPI*(m.Insts+1) {
		rep.failf(nc.Name, "watchdog", "%d cycles for %d insts exceeds CPI ceiling %d",
			m.Cycles, m.Insts, maxCPI)
	}

	// Speculation-path counter algebra (Section 3.2's forwarding terms).
	p, e := &m.Predict, &m.Early
	if p.Eligible != p.Speculated+p.NoPrediction+p.NoPort {
		rep.failf(nc.Name, "predict-algebra",
			"eligible %d != speculated %d + no-prediction %d + no-port %d",
			p.Eligible, p.Speculated, p.NoPrediction, p.NoPort)
	}
	if p.Forwarded > p.Speculated {
		rep.failf(nc.Name, "predict-algebra",
			"forwarded %d > speculated %d", p.Forwarded, p.Speculated)
	}
	if p.Speculated-p.Forwarded > p.AddrMispredict+p.CacheMiss+p.MemInterlock {
		rep.failf(nc.Name, "predict-algebra",
			"%d failed speculations but only %d+%d+%d failure terms",
			p.Speculated-p.Forwarded, p.AddrMispredict, p.CacheMiss, p.MemInterlock)
	}
	if e.Eligible != e.Speculated+e.RegMiss+e.RegInterlock+e.NoPort {
		rep.failf(nc.Name, "early-algebra",
			"eligible %d != speculated %d + reg-miss %d + reg-interlock %d + no-port %d",
			e.Eligible, e.Speculated, e.RegMiss, e.RegInterlock, e.NoPort)
	}
	if e.Speculated != e.Forwarded+e.MemInterlock+e.CacheMiss {
		rep.failf(nc.Name, "early-algebra",
			"speculated %d != forwarded %d + mem-interlock %d + cache-miss %d",
			e.Speculated, e.Forwarded, e.MemInterlock, e.CacheMiss)
	}
	if m.DCacheStats.SpecAccesses != p.Speculated+e.Speculated {
		rep.failf(nc.Name, "spec-accesses",
			"dcache counted %d speculative accesses, paths launched %d+%d",
			m.DCacheStats.SpecAccesses, p.Speculated, e.Speculated)
	}
	if m.BTBStats.Branches != m.Branches {
		rep.failf(nc.Name, "branches", "BTB saw %d, pipeline retired %d",
			m.BTBStats.Branches, m.Branches)
	}

	// Steering: each policy's eligible counts must match the dynamic
	// load mix the trace actually contains.
	mix := countLoads(prog, trace)
	hasTable := nc.Config.Predictor != nil
	hasRC := nc.Config.RegCache != nil
	hasAssist := false
	for _, sp := range nc.Config.Mechanisms {
		// Spec-configured paper mechanisms normalize to the typed fields
		// inside pipeline.New; mirror that here so steering expectations
		// see through the registry vocabulary.
		switch sp.Kind {
		case "addrpred":
			hasTable = true
		case "earlycalc":
			hasRC = true
		default:
			hasAssist = true
		}
	}
	wantP, wantE := int64(-1), int64(-1) // -1: not statically determined
	if hasAssist {
		// An assist mechanism drives every load regardless of flavour or
		// selection policy, and its counters land on the predict path.
		wantP, wantE = mix.total, 0
		if p.Eligible != wantP {
			rep.failf(nc.Name, "steering", "assist path saw %d loads, want %d", p.Eligible, wantP)
		}
		if e.Eligible != wantE {
			rep.failf(nc.Name, "steering", "early path saw %d loads under an assist, want 0", e.Eligible)
		}
		return m
	}
	switch nc.Config.Select {
	case pipeline.SelNone:
		wantP, wantE = 0, 0
	case pipeline.SelCompiler:
		wantP, wantE = 0, 0
		if hasTable {
			wantP = mix.ldP
		}
		if hasRC {
			wantE = mix.ldE
		}
	case pipeline.SelAllPredict:
		wantP, wantE = 0, 0
		if hasTable {
			wantP = mix.total
		}
	case pipeline.SelAllEarly:
		wantP, wantE = 0, 0
		if hasRC {
			wantE = mix.adder
		}
	case pipeline.SelHWDual:
		// Steering depends on run-time interlocks; only the union is
		// bounded: every load goes to at most one path, and reg+reg
		// loads never take the early path.
		if p.Eligible+e.Eligible > mix.total {
			rep.failf(nc.Name, "steering",
				"paths saw %d+%d loads, trace has %d", p.Eligible, e.Eligible, mix.total)
		}
		if e.Eligible > mix.adder {
			rep.failf(nc.Name, "steering",
				"early path saw %d loads, only %d are adder-addressable",
				e.Eligible, mix.adder)
		}
	}
	if wantP >= 0 && p.Eligible != wantP {
		rep.failf(nc.Name, "steering", "predict path saw %d loads, want %d", p.Eligible, wantP)
	}
	if wantE >= 0 && e.Eligible != wantE {
		rep.failf(nc.Name, "steering", "early path saw %d loads, want %d", e.Eligible, wantE)
	}
	return m
}

// checkSnapshot verifies the program image is bit-identical to the
// pre-replay snapshot.
func checkSnapshot(prog *isa.Program, insts []isa.Inst, data []byte, rep *Report) {
	if len(prog.Insts) != len(insts) {
		rep.failf("", "image", "instruction count changed: %d -> %d", len(insts), len(prog.Insts))
		return
	}
	for i := range insts {
		if prog.Insts[i] != insts[i] {
			rep.failf("", "image", "instruction %d mutated by replay: %+v -> %+v",
				i, insts[i], prog.Insts[i])
			return
		}
	}
	if string(prog.Data) != string(data) {
		rep.failf("", "image", "data image mutated by replay")
	}
}
