package diffcheck

import (
	"testing"

	"elag/internal/asm"
	"elag/internal/workload"

	elag "elag"
)

// TestMechEquivalenceWorkloads runs the mechanism-layer differential suite
// over every embedded benchmark: the registry-spec forms of the paper
// mechanisms must be metric-identical to the typed forms, and the stride
// and pcax assist mechanisms must hold every invariant (lockstep,
// transparency, counter algebra, steering, streaming, memo matrix).
func TestMechEquivalenceWorkloads(t *testing.T) {
	fuel := int64(100_000)
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := elag.Build(w.Source, elag.BuildOptions{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := CheckMechEquivalence(p.Machine, Options{Fuel: fuel})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if err := rep.Err(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMechEquivalenceRandomPrograms sweeps the mechanism suite over 200
// seeded random programs (50 under -short). The generator covers ISA
// corners the workloads miss — calls, every load width, reg+reg addressing
// — so an assist mechanism whose memo snapshot under-captures state, or
// whose training order diverges between chunked and whole-trace replays,
// shows up here first.
func TestMechEquivalenceRandomPrograms(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 50
	}
	for seed := int64(1); seed <= seeds; seed++ {
		src := GenProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		rep, err := CheckMechEquivalence(p, Options{Fuel: 200_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestMechConfigsValidate guards the reference geometries themselves: every
// configuration MechConfigs returns must pass pipeline validation, and the
// two new assist kinds must be present in it.
func TestMechConfigsValidate(t *testing.T) {
	kinds := map[string]bool{}
	for _, nc := range MechConfigs() {
		cfg := nc.Config
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
		for _, sp := range cfg.Mechanisms {
			kinds[sp.Kind] = true
		}
	}
	for _, want := range []string{"addrpred", "earlycalc", "stride", "pcax"} {
		if !kinds[want] {
			t.Errorf("MechConfigs exercises no %q spec", want)
		}
	}
}
