package diffcheck

import (
	"strings"
	"testing"

	elag "elag"

	"elag/internal/emu"
	"elag/internal/mcc"
	"elag/internal/workload"
)

// TestOptLevelsWorkloads: every embedded benchmark must be architecturally
// equivalent at O0, O1 and O2 — same output, same faults (none), same final
// global memory. This is the repository's O0-vs-O2 equivalence suite.
func TestOptLevelsWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep, err := CheckOptLevels(w.Source, 2_000_000)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if err := rep.Err(); err != nil {
				t.Error(err)
			}
			if rep.Insts == 0 {
				t.Errorf("reference run retired no instructions")
			}
		})
	}
}

// TestOptLevelsRandomPrograms runs the O-level differential check on 200
// seeded random MC programs — compiler-shaped inputs (inlinable helpers,
// redundant loads, invariant expressions, dead branches) rather than the
// assembler-shaped ones GenProgram produces.
func TestOptLevelsRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		src := GenMC(seed)
		rep, err := CheckOptLevels(src, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if rep.Truncated {
			t.Fatalf("seed %d: generated program exhausted 2M fuel\n%s", seed, src)
		}
		if err := rep.Err(); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestGenMCDeterministic: the generator must reproduce the same source for
// the same seed, or fuzz failures would not minimize.
func TestGenMCDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		if GenMC(seed) != GenMC(seed) {
			t.Fatalf("seed %d: GenMC is not deterministic", seed)
		}
	}
}

// TestGenMCCompilesAndTerminates: every generated program must pass the
// front end and halt on its own well under the checker's default fuel —
// the generator's termination and fault-freedom guarantees.
func TestGenMCCompilesAndTerminates(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		src := GenMC(seed)
		if _, err := mcc.Compile(src); err != nil {
			t.Fatalf("seed %d: front end rejected generated program: %v\n%s", seed, err, src)
		}
		p, err := elag.Build(src, elag.BuildOptions{Level: elag.O0})
		if err != nil {
			t.Fatalf("seed %d: O0 build: %v", seed, err)
		}
		res, err := emu.Run(p.Machine, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if len(res.IntOut) == 0 {
			t.Errorf("seed %d: program produced no output", seed)
		}
	}
}

// TestCompareRunsCatchesOutputDivergence: a fabricated output mismatch must
// be flagged — a self-test that the checker can actually fail.
func TestCompareRunsCatchesOutputDivergence(t *testing.T) {
	a := levelRun{name: "O0", prog: &elag.Program{}, res: emu.Result{ExitCode: 1}}
	b := levelRun{name: "O2", prog: &elag.Program{}, res: emu.Result{ExitCode: 2}}
	rep := &Report{}
	compareRuns([]levelRun{a, b}, rep)
	if rep.Ok() {
		t.Fatal("divergent exit codes passed the cross-level check")
	}
	if !strings.Contains(rep.Err().Error(), "output") {
		t.Errorf("divergence not attributed to output: %v", rep.Err())
	}
}

// TestCompareRunsCatchesFaultDivergence: one level faulting while the
// reference halts cleanly must be flagged, as must differing fault kinds.
func TestCompareRunsCatchesFaultDivergence(t *testing.T) {
	clean := levelRun{name: "O0", prog: &elag.Program{}}
	faulted := levelRun{name: "O2", prog: &elag.Program{},
		fault: &elag.Fault{Kind: elag.FaultDivZero}}
	rep := &Report{}
	compareRuns([]levelRun{clean, faulted}, rep)
	if rep.Ok() {
		t.Fatal("clean-vs-faulted divergence passed")
	}

	other := levelRun{name: "O1", prog: &elag.Program{},
		fault: &elag.Fault{Kind: elag.FaultMisaligned}}
	rep = &Report{}
	compareRuns([]levelRun{faulted, other}, rep)
	if rep.Ok() {
		t.Fatal("differing fault kinds passed")
	}
}

// TestCompareRunsCatchesMemoryDivergence: poking one byte of a global in an
// otherwise identical run must trip the final-memory comparison.
func TestCompareRunsCatchesMemoryDivergence(t *testing.T) {
	src := GenMC(5)
	p, err := elag.Build(src, elag.BuildOptions{Level: elag.O2})
	if err != nil {
		t.Fatal(err)
	}
	ref := levelRun{name: "O0", prog: p}
	ref.run(2_000_000)
	poked := levelRun{name: "O2", prog: p}
	poked.run(2_000_000)
	if ref.fault != nil || poked.fault != nil {
		t.Fatal("generated program faulted")
	}
	addr := p.Machine.DataSymbols["g0"]
	poked.cpu.Mem.SetByte(addr, poked.cpu.Mem.ByteAt(addr)^0xFF)
	rep := &Report{}
	compareRuns([]levelRun{ref, poked}, rep)
	if rep.Ok() {
		t.Fatal("divergent global memory passed the cross-level check")
	}
	if !strings.Contains(rep.Err().Error(), "g0") {
		t.Errorf("divergence not attributed to the poked global: %v", rep.Err())
	}
}

// TestOptLevelsTruncationReported: an absurdly small fuel must mark the
// report truncated rather than raise spurious divergences.
func TestOptLevelsTruncationReported(t *testing.T) {
	rep, err := CheckOptLevels(GenMC(9), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("50-instruction fuel did not truncate")
	}
	for _, v := range rep.Violations {
		if v.Check == "output" || v.Check == "globals" || v.Check == "fault" {
			t.Errorf("truncated run raised cross-level violation: %v", v)
		}
	}
}
