package artifact

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestDigestCanonical(t *testing.T) {
	base := NewDigest("s").Str("a", "b").Int("n", 1).Key()
	if again := NewDigest("s").Str("a", "b").Int("n", 1).Key(); again != base {
		t.Fatal("same fields, different keys")
	}
	variants := []Key{
		NewDigest("s2").Str("a", "b").Int("n", 1).Key(),  // schema
		NewDigest("s").Str("a", "c").Int("n", 1).Key(),   // value
		NewDigest("s").Str("x", "b").Int("n", 1).Key(),   // field name
		NewDigest("s").Str("a", "b").Int("n", 2).Key(),   // int value
		NewDigest("s").Str("a", "b").Str("n", "1").Key(), // int vs string
		NewDigest("s").Int("n", 1).Str("a", "b").Key(),   // order
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base", i)
		}
	}
	// Length prefixes make field boundaries unambiguous.
	if NewDigest("s").Str("ab", "c").Key() == NewDigest("s").Str("a", "bc").Key() {
		t.Fatal("concatenation ambiguity: (ab,c) == (a,bc)")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := NewDigest("s").Str("a", "b").Key()
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("round trip: got %v, %v", got, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("short key accepted")
	}
}

func key(s string) Key { return NewDigest("test").Str("k", s).Key() }

func TestMemRoundTripAndLRU(t *testing.T) {
	s, err := Open(Options{MemBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(key("a"), bytes.Repeat([]byte{'a'}, 30))
	s.Put(key("b"), bytes.Repeat([]byte{'b'}, 30))
	if d, ok := s.Get(key("a")); !ok || len(d) != 30 || d[0] != 'a' {
		t.Fatalf("get a: %q %v", d, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	s.Put(key("c"), bytes.Repeat([]byte{'c'}, 30))
	if _, ok := s.Get(key("b")); ok {
		t.Fatal("LRU victim b still resident")
	}
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("recently used a evicted")
	}
	st := s.Stats()
	if st.MemEvictions != 1 || st.MemEntries != 2 || st.MemBytes != 60 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// An entry larger than the whole budget is not admitted.
	s.Put(key("big"), make([]byte, 100))
	if _, ok := s.Get(key("big")); ok {
		t.Fatal("oversized entry admitted to memory tier")
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("persistent payload")
	s1.Put(key("p"), want)

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key("p"))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("reopen get: %q %v", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("want one disk hit, got %+v", st)
	}
	// The disk hit was promoted: the next read is a memory hit.
	if _, ok := s2.Get(key("p")); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("want promotion to memory tier, got %+v", st)
	}
}

func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	writer, _ := Open(Options{Dir: dir})
	reader, _ := Open(Options{Dir: dir}) // opened before the write: empty index
	writer.Put(key("x"), []byte("shared"))
	got, ok := reader.Get(key("x"))
	if !ok || string(got) != "shared" {
		t.Fatalf("cross-store read: %q %v", got, ok)
	}
}

// artifactFile finds the single on-disk artifact under dir.
func artifactFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		found = path
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no artifact file under %s (%v)", dir, err)
	}
	return found
}

func TestCorruptArtifactsEvictedNotServed(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(raw []byte) []byte
	}{
		{"truncated-header", func(raw []byte) []byte { return raw[:headerSize-1] }},
		{"truncated-payload", func(raw []byte) []byte { return raw[:len(raw)-3] }},
		{"bad-magic", func(raw []byte) []byte { raw[0] ^= 0xff; return raw }},
		{"bit-flip-payload", func(raw []byte) []byte { raw[len(raw)-1] ^= 0x01; return raw }},
		{"bit-flip-hash", func(raw []byte) []byte { raw[len(diskMagic)] ^= 0x01; return raw }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			s.Put(key("v"), []byte("valuable bytes"))
			path := artifactFile(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh store (cold memory tier) must detect the corruption,
			// evict the file, and miss — never serve the bad bytes.
			s2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if data, ok := s2.Get(key("v")); ok {
				t.Fatalf("corrupt artifact served: %q", data)
			}
			st := s2.Stats()
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("want corrupt=1 miss=1, got %+v", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt artifact file not removed")
			}
			// Recompute-and-reput round-trips cleanly.
			s2.Put(key("v"), []byte("valuable bytes"))
			if data, ok := s2.Get(key("v")); !ok || string(data) != "valuable bytes" {
				t.Fatalf("recomputed artifact not served: %q %v", data, ok)
			}
		})
	}
}

func TestDiskEvictionTinyBudget(t *testing.T) {
	dir := t.TempDir()
	entry := int64(headerSize + 10)
	s, err := Open(Options{Dir: dir, DiskBytes: 3 * entry})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		s.Put(key(fmt.Sprintf("e%d", i)), bytes.Repeat([]byte{byte('0' + i)}, 10))
	}
	st := s.Stats()
	if st.DiskEntries != 3 || st.DiskBytes > 3*entry || st.DiskEvictions != 3 {
		t.Fatalf("disk eviction: %+v", st)
	}
	// The survivors are the three most recent, and their files exist.
	for i := 3; i < 6; i++ {
		if _, ok := s.Get(key(fmt.Sprintf("e%d", i))); !ok {
			t.Errorf("recent entry e%d evicted", i)
		}
	}
	// Evicted files are actually gone from disk (fresh store sees misses).
	s2, _ := Open(Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, ok := s2.Get(key(fmt.Sprintf("e%d", i))); ok {
			t.Errorf("evicted entry e%d still on disk", i)
		}
	}
}

func TestReopenTrimsToBudget(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(Options{Dir: dir})
	for i := 0; i < 4; i++ {
		s1.Put(key(fmt.Sprintf("t%d", i)), bytes.Repeat([]byte{'x'}, 10))
	}
	entry := int64(headerSize + 10)
	s2, err := Open(Options{Dir: dir, DiskBytes: 2 * entry})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskEntries != 2 || st.DiskBytes > 2*entry {
		t.Fatalf("reopen did not trim: %+v", st)
	}
}

func TestTempFilesCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sub, ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir})
	s.Put(key("d"), []byte("doomed"))
	s.Delete(key("d"))
	if _, ok := s.Get(key("d")); ok {
		t.Fatal("deleted key still served")
	}
	s2, _ := Open(Options{Dir: dir})
	if _, ok := s2.Get(key("d")); ok {
		t.Fatal("deleted key survived on disk")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), MemBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("k%d", i%10))
				want := bytes.Repeat([]byte{byte(i % 10)}, 32)
				s.Put(k, want)
				if got, ok := s.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("goroutine %d: wrong bytes for %s", g, k)
				}
				s.Delete(key(fmt.Sprintf("k%d", (i+5)%10)))
			}
		}(g)
	}
	wg.Wait()
}
