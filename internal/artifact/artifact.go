// Package artifact implements a two-tier content-addressed result store:
// an in-memory LRU over an optional persistent on-disk layer. Values are
// the exact result bytes a computation produced; keys are canonical
// digests of everything the computation depended on (source text, pass
// spec, configuration, fuel, chunk size, schema version), built with
// Digest so two independent call sites derive bit-identical keys from
// the same inputs.
//
// The store is a cache, never a source of truth: every read of the disk
// tier re-verifies the payload hash, and a corrupt or truncated artifact
// is evicted and reported as a miss — bad bytes are never served, the
// caller transparently recomputes. Writes are atomic (temp file + rename
// in the same directory), so a crash mid-write leaves either the old
// state or the new artifact, never a torn file. Both tiers are
// size-bounded with LRU eviction.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
)

// Key is a canonical content-address: the SHA-256 of a Digest field
// sequence. Two keys are equal exactly when every (field, value) pair
// fed to the digest was identical.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("artifact: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("artifact: bad key %q: want %d bytes, got %d", s, len(k), len(b))
	}
	copy(k[:], b)
	return k, nil
}

// Digest accumulates labelled fields into a canonical key. Every field is
// written as (len(name), name, len(value), value) with fixed-width
// length prefixes, so no concatenation of fields is ambiguous —
// ("ab","c") and ("a","bc") digest differently, as do the same values
// under different field names. The first field is always the caller's
// schema string, versioning the whole derivation: bumping the schema
// invalidates every key derived under it.
type Digest struct {
	h hash.Hash
}

// NewDigest starts a digest under the given key-derivation schema.
func NewDigest(schema string) *Digest {
	d := &Digest{h: sha256.New()}
	return d.Str("schema", schema)
}

// Str appends a labelled string field.
func (d *Digest) Str(field, value string) *Digest {
	d.writeField(field, []byte(value))
	return d
}

// Int appends a labelled integer field (fixed-width big-endian, so 1 and
// "1" digest differently).
func (d *Digest) Int(field string, v int64) *Digest {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	d.writeField(field, buf[:])
	return d
}

func (d *Digest) writeField(field string, value []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(field)))
	d.h.Write(n[:])
	d.h.Write([]byte(field))
	binary.BigEndian.PutUint64(n[:], uint64(len(value)))
	d.h.Write(n[:])
	d.h.Write(value)
}

// Key finalizes the digest. The Digest may keep accumulating fields
// afterwards (Key snapshots the state), but callers conventionally
// finalize once.
func (d *Digest) Key() Key {
	var k Key
	d.h.Sum(k[:0])
	return k
}
