package artifact

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default tier budgets (Options.MemBytes / Options.DiskBytes).
const (
	DefaultMemBytes  = 64 << 20
	DefaultDiskBytes = 1 << 30
)

// On-disk artifact layout: an 8-byte magic, the SHA-256 of the payload,
// then the payload. The hash covers the payload only — the file name is
// the key, the header hash is the integrity check, and the two are
// independent (a renamed file fails nothing; a flipped payload bit fails
// the hash).
const (
	diskMagic  = "ELAGART1"
	headerSize = len(diskMagic) + sha256.Size
)

// Options configures Open. The zero value is a memory-only store with the
// default budget.
type Options struct {
	// Dir, when non-empty, adds the persistent disk tier rooted there
	// (created if missing). Artifacts live at Dir/<hex[:2]>/<hex>.
	Dir string
	// MemBytes bounds the in-memory tier (payload bytes; default
	// DefaultMemBytes). Negative disables the memory tier entirely.
	MemBytes int64
	// DiskBytes bounds the disk tier (file bytes including headers;
	// default DefaultDiskBytes). Ignored without Dir.
	DiskBytes int64
}

// Stats is a point-in-time snapshot of the store's counters and sizes.
type Stats struct {
	MemHits       int64
	DiskHits      int64
	Misses        int64
	Puts          int64
	MemEvictions  int64
	DiskEvictions int64
	// Corrupt counts disk artifacts that failed integrity verification on
	// read (truncated file, bad magic, payload-hash mismatch). Each was
	// removed and reported as a miss.
	Corrupt     int64
	MemBytes    int64
	MemEntries  int64
	DiskBytes   int64
	DiskEntries int64
}

// Hits is the total across both tiers.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Store is the two-tier content-addressed store. Safe for concurrent use.
// Multiple processes may share one Dir: reads fall through to the
// filesystem for keys another process wrote, and the atomic write
// protocol means concurrent writers of the same key race benignly (last
// rename wins; both wrote identical bytes by construction).
type Store struct {
	dir        string
	memBudget  int64
	diskBudget int64

	mu       sync.Mutex
	mem      map[Key]*list.Element
	lru      *list.List // front = most recent; values are *memEntry
	memBytes int64
	seq      int64
	disk     map[Key]*diskEntry
	diskSize int64

	memHits   atomic.Int64
	diskHits  atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	memEvict  atomic.Int64
	diskEvict atomic.Int64
	corrupt   atomic.Int64
}

type memEntry struct {
	key  Key
	data []byte
}

type diskEntry struct {
	size    int64 // file size including header
	lastUse int64
}

// Open builds a store. With Options.Dir set, the directory is created if
// needed, leftover temp files from a crashed writer are removed, and the
// existing artifacts are indexed (oversized stores from a previous run
// are trimmed to the budget, oldest-name first).
func Open(opts Options) (*Store, error) {
	s := &Store{
		dir:        opts.Dir,
		memBudget:  opts.MemBytes,
		diskBudget: opts.DiskBytes,
		mem:        map[Key]*list.Element{},
		lru:        list.New(),
	}
	if s.memBudget == 0 {
		s.memBudget = DefaultMemBytes
	}
	if s.diskBudget <= 0 {
		s.diskBudget = DefaultDiskBytes
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	s.disk = map[Key]*diskEntry{}
	if err := s.scanDir(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictDiskLocked()
	s.mu.Unlock()
	return s, nil
}

// scanDir indexes the existing disk tier. Keys are indexed in sorted
// name order so a rebuilt index evicts deterministically; non-artifact
// files are ignored, stale temp files are deleted.
func (s *Store) scanDir() error {
	subs, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("artifact: scan store: %w", err)
	}
	var keys []Key
	sizes := map[Key]int64{}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			if strings.HasPrefix(f.Name(), ".tmp") {
				os.Remove(filepath.Join(s.dir, sub.Name(), f.Name()))
				continue
			}
			k, err := ParseKey(f.Name())
			if err != nil || k.String()[:2] != sub.Name() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			keys = append(keys, k)
			sizes[k] = info.Size()
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		s.seq++
		s.disk[k] = &diskEntry{size: sizes[k], lastUse: s.seq}
		s.diskSize += sizes[k]
	}
	return nil
}

func (s *Store) path(key Key) string {
	hex := key.String()
	return filepath.Join(s.dir, hex[:2], hex)
}

// Get returns the artifact for key, or (nil, false). The returned slice
// is shared with the store's memory tier — callers must treat it as
// read-only. A disk hit is verified (magic + payload hash) and promoted
// to the memory tier; a corrupt artifact is deleted, counted, and
// reported as a miss so the caller recomputes.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		s.lru.MoveToFront(e)
		data := e.Value.(*memEntry).data
		s.mu.Unlock()
		s.memHits.Add(1)
		return data, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		s.misses.Add(1)
		return nil, false
	}
	// Read the file regardless of the index: another process sharing the
	// directory may have written this key after we scanned.
	data, size, err := s.readDisk(key)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.corrupt.Add(1)
			os.Remove(s.path(key))
			s.mu.Lock()
			s.dropDiskLocked(key)
			s.mu.Unlock()
		}
		s.misses.Add(1)
		return nil, false
	}
	s.diskHits.Add(1)
	s.mu.Lock()
	s.noteDiskLocked(key, size)
	s.addMemLocked(key, data)
	s.mu.Unlock()
	return data, true
}

// readDisk loads and verifies one artifact file, returning the payload
// and the file size. Any integrity failure is a non-fs.ErrNotExist error.
func (s *Store) readDisk(key Key) ([]byte, int64, error) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < headerSize {
		return nil, 0, fmt.Errorf("artifact %s: truncated (%d bytes)", key, len(raw))
	}
	if string(raw[:len(diskMagic)]) != diskMagic {
		return nil, 0, fmt.Errorf("artifact %s: bad magic", key)
	}
	payload := raw[headerSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[len(diskMagic):headerSize]) {
		return nil, 0, fmt.Errorf("artifact %s: payload hash mismatch", key)
	}
	return payload, int64(len(raw)), nil
}

// Put stores data under key in both tiers, evicting LRU entries past the
// budgets. The store takes ownership of data (callers must not mutate it
// afterwards). Disk-tier write failures degrade silently to memory-only
// caching — a broken cache disk slows the service down, it never fails a
// job.
func (s *Store) Put(key Key, data []byte) {
	s.puts.Add(1)
	s.mu.Lock()
	if _, ok := s.mem[key]; !ok {
		s.addMemLocked(key, data)
	}
	onDisk := false
	if s.disk != nil {
		_, onDisk = s.disk[key]
	}
	s.mu.Unlock()
	if s.dir == "" || onDisk {
		return
	}
	size := int64(len(data) + headerSize)
	if size > s.diskBudget {
		return // would evict the whole tier to hold one artifact
	}
	if err := s.writeDisk(key, data); err != nil {
		return
	}
	s.mu.Lock()
	s.noteDiskLocked(key, size)
	s.evictDiskLocked()
	s.mu.Unlock()
}

// writeDisk writes one artifact atomically: temp file in the final
// directory, fsync-free write, rename over the final name.
func (s *Store) writeDisk(key Key, data []byte) error {
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	_, werr := f.Write([]byte(diskMagic))
	if werr == nil {
		_, werr = f.Write(sum[:])
	}
	if werr == nil {
		_, werr = f.Write(data)
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(f.Name(), s.path(key))
	}
	if werr != nil {
		os.Remove(f.Name())
		return werr
	}
	return nil
}

// Delete removes key from both tiers (tests, manual invalidation).
func (s *Store) Delete(key Key) {
	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		s.memBytes -= int64(len(e.Value.(*memEntry).data))
		s.lru.Remove(e)
		delete(s.mem, key)
	}
	s.dropDiskLocked(key)
	s.mu.Unlock()
	if s.dir != "" {
		os.Remove(s.path(key))
	}
}

// addMemLocked inserts data into the memory tier and evicts to budget.
// Entries larger than the whole budget are not admitted (they would only
// evict everything else and then themselves).
func (s *Store) addMemLocked(key Key, data []byte) {
	if s.memBudget < 0 || int64(len(data)) > s.memBudget {
		return
	}
	if _, ok := s.mem[key]; ok {
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, data: data})
	s.memBytes += int64(len(data))
	for s.memBytes > s.memBudget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*memEntry)
		s.lru.Remove(back)
		delete(s.mem, victim.key)
		s.memBytes -= int64(len(victim.data))
		s.memEvict.Add(1)
	}
}

// noteDiskLocked records (or refreshes) a disk-tier index entry.
func (s *Store) noteDiskLocked(key Key, size int64) {
	if s.disk == nil {
		return
	}
	s.seq++
	if e, ok := s.disk[key]; ok {
		s.diskSize += size - e.size
		e.size, e.lastUse = size, s.seq
		return
	}
	s.disk[key] = &diskEntry{size: size, lastUse: s.seq}
	s.diskSize += size
}

func (s *Store) dropDiskLocked(key Key) {
	if e, ok := s.disk[key]; ok {
		s.diskSize -= e.size
		delete(s.disk, key)
	}
}

// evictDiskLocked removes least-recently-used disk artifacts until the
// tier fits its budget. The scan is linear in entry count — artifacts
// are job results (few, large), not fine-grained objects.
func (s *Store) evictDiskLocked() {
	for s.diskSize > s.diskBudget && len(s.disk) > 0 {
		var victim Key
		var oldest int64
		first := true
		for k, e := range s.disk {
			if first || e.lastUse < oldest {
				victim, oldest, first = k, e.lastUse, false
			}
		}
		os.Remove(s.path(victim))
		s.dropDiskLocked(victim)
		s.diskEvict.Add(1)
	}
}

// Stats snapshots the counters and tier sizes.
func (s *Store) Stats() Stats {
	st := Stats{
		MemHits:       s.memHits.Load(),
		DiskHits:      s.diskHits.Load(),
		Misses:        s.misses.Load(),
		Puts:          s.puts.Load(),
		MemEvictions:  s.memEvict.Load(),
		DiskEvictions: s.diskEvict.Load(),
		Corrupt:       s.corrupt.Load(),
	}
	s.mu.Lock()
	st.MemBytes = s.memBytes
	st.MemEntries = int64(len(s.mem))
	st.DiskBytes = s.diskSize
	st.DiskEntries = int64(len(s.disk))
	s.mu.Unlock()
	return st
}
