package codegen_test

import (
	"strings"
	"testing"

	"elag/internal/asm"
	"elag/internal/codegen"
	"elag/internal/emu"
	"elag/internal/ir"
	"elag/internal/mcc"
)

func generate(t *testing.T, src string) string {
	t.Helper()
	mod, err := mcc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	text, err := codegen.Generate(mod)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return text
}

func runText(t *testing.T, text string) emu.Result {
	t.Helper()
	prog, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("assemble generated code: %v\n%s", err, text)
	}
	res, err := emu.Run(prog, 20_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, text)
	}
	return res
}

func TestStartupStub(t *testing.T) {
	text := generate(t, "int main() { return 7; }")
	if !strings.Contains(text, "main:\n\tcall r63, _main\n\thalt r1") {
		t.Errorf("startup stub missing:\n%s", text)
	}
	if res := runText(t, text); res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestAllLoadsEmittedNormal(t *testing.T) {
	text := generate(t, `
int g[8];
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) { s += g[i]; }
	return s;
}`)
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "ld") && !strings.Contains(trimmed, "_n ") {
			t.Errorf("code generator emitted a non-ld_n load: %q", trimmed)
		}
	}
}

// TestSpillPressure forces more live values than allocatable registers and
// checks correctness through spill slots.
func TestSpillPressure(t *testing.T) {
	var b strings.Builder
	b.WriteString("int main() {\n")
	// 60 variables, all live until the end: must spill (50 allocatable).
	for i := 0; i < 60; i++ {
		b.WriteString("\tint v")
		b.WriteByte(byte('0' + i/10))
		b.WriteByte(byte('0' + i%10))
		b.WriteString(" = ")
		b.WriteString(itoa(i + 1))
		b.WriteString(";\n")
	}
	b.WriteString("\tint s = 0;\n")
	for i := 0; i < 60; i++ {
		b.WriteString("\ts = s + v")
		b.WriteByte(byte('0' + i/10))
		b.WriteByte(byte('0' + i%10))
		b.WriteString(";\n")
	}
	b.WriteString("\treturn s;\n}\n")

	mod, err := mcc.Compile(b.String())
	if err != nil {
		t.Fatal(err)
	}
	// No optimization: keep all 60 values live simultaneously.
	text, err := codegen.Generate(mod)
	if err != nil {
		t.Fatal(err)
	}
	res := runText(t, text)
	if res.ExitCode != 60*61/2 {
		t.Errorf("spilled sum = %d, want %d", res.ExitCode, 60*61/2)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// TestCalleeSavedAcrossCalls: values in callee-saved registers must survive
// a nested call that itself uses many registers.
func TestCalleeSavedAcrossCalls(t *testing.T) {
	text := generate(t, `
int clobber(int n) {
	int a = n + 1;
	int b = a * 2;
	int c = b - n;
	int d = c * c;
	int e = d + a;
	return e - d - a;  /* 0 */
}
int main() {
	int keep1 = 11;
	int keep2 = 22;
	int keep3 = 33;
	int z = clobber(100);
	return keep1 + keep2 + keep3 + z;
}`)
	if res := runText(t, text); res.ExitCode != 66 {
		t.Errorf("callee-saved values lost: exit %d, want 66", res.ExitCode)
	}
}

func TestLeafFunctionHasNoSaveRestoreLoads(t *testing.T) {
	// A small leaf function's values live in caller-saved registers, so
	// its body must contain no stack loads at all.
	text := generate(t, `
int leaf(int a, int b) { return a * b + a - b; }
int main() { return leaf(6, 7); }`)
	inLeaf := false
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(line, "_leaf:") {
			inLeaf = true
			continue
		}
		if inLeaf && strings.HasPrefix(line, "_main:") {
			break
		}
		if inLeaf && strings.HasPrefix(trimmed, "ld") {
			t.Errorf("leaf function contains a load: %q\n%s", trimmed, text)
		}
	}
}

func TestSixArgumentLimit(t *testing.T) {
	mod, err := mcc.Compile(`
int f(int a, int b, int c, int d, int e, int g, int h) { return a; }
int main() { return f(1, 2, 3, 4, 5, 6, 7); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.Generate(mod); err == nil {
		t.Errorf("7-argument call generated without error")
	}
}

func TestGlobalEmission(t *testing.T) {
	m := &ir.Module{
		Globals: []*ir.Global{
			{Name: "zeros", Size: 32},
			{Name: "mix", Size: 24, Init: []byte{1, 2, 3},
				Addrs: []ir.AddrInit{{Off: 8, Sym: "zeros", Add: 16}}},
		},
	}
	f := ir.NewFunc("main", 0)
	b := f.NewBlock()
	ret := ir.NewInstr(ir.OpRet)
	ret.A = ir.C(0)
	b.Insts = append(b.Insts, ret)
	f.ComputeCFG()
	m.Funcs = []*ir.Func{f}
	text, err := codegen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, text)
	}
	base := prog.DataSymbols["mix"]
	c := emu.New(prog)
	if got := c.Mem.Read(base, 1); got != 1 {
		t.Errorf("init byte 0 = %d", got)
	}
	if got := int64(c.Mem.Read(base+8, 8)); got != prog.DataSymbols["zeros"]+16 {
		t.Errorf("addr cell = %#x, want %#x", got, prog.DataSymbols["zeros"]+16)
	}
}

func TestAddressingModeSelection(t *testing.T) {
	text := generate(t, `
int g;
int arr[16];
int main() {
	int s = g;                       /* absolute */
	int *p = arr;
	s += p[2];                       /* reg+offset */
	for (int i = 0; i < 4; i++) {
		s += arr[i * 3];         /* ends up indexed */
	}
	return s;
}`)
	if !strings.Contains(text, "(g)") && !strings.Contains(text, ", g") {
		t.Errorf("absolute global access not emitted:\n%s", text)
	}
	if !strings.Contains(text, "(16)") {
		t.Errorf("register+offset p[2] not emitted:\n%s", text)
	}
}

func TestMissingMainRejected(t *testing.T) {
	m := &ir.Module{}
	if _, err := codegen.Generate(m); err == nil {
		t.Errorf("module without main generated")
	}
}
