// Package codegen lowers optimized IR (package ir) to the textual assembly
// accepted by package asm: linear-scan register allocation onto the
// machine's 64 integer registers, frame layout, calling convention, and
// instruction selection (including the folding of IR addressing into the
// ISA's register+offset, register+register and absolute modes — the modes
// the paper's load classification distinguishes).
//
// Every load is emitted with the ld_n flavour; the paper's compiler
// heuristics (package core) rewrite flavours on the assembled program.
//
// Calling convention: arguments in r1..r6, result in r1, return address in
// r63 (set by call), stack pointer r62 (grows down). All allocatable
// registers (r8..r57) are callee-saved: the prologue saves the ones a
// function uses, so values are preserved across calls.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"elag/internal/ir"
	"elag/internal/isa"
)

// Register assignments (see package doc). r8..r31 are caller-saved (used
// for values whose live range crosses no call, so they cost nothing in the
// prologue); r32..r57 are callee-saved (for values live across calls).
const (
	firstArgReg = 1
	maxArgs     = 6
	retReg      = 1
	firstCaller = 8
	lastCaller  = 31
	firstCallee = 32
	lastCallee  = 57
	scratchA    = 58
	scratchB    = 59
	scratchC    = 60
	spReg       = 62
	raReg       = 63
	outIntAddr  = 0x7FFF_F000
	outCharAddr = 0x7FFF_F008
	wordSize    = 8
	frameAlign  = 16
)

// Generate lowers a whole module to assembly source. The emitted program
// begins with a startup stub at label "main" that calls the module's main
// function and halts with its return value.
func Generate(m *ir.Module) (string, error) {
	var sb strings.Builder
	if m.Func("main") == nil {
		return "", fmt.Errorf("codegen: module has no main function")
	}
	sb.WriteString("\t.text\n")
	sb.WriteString("main:\n")
	sb.WriteString("\tcall r63, _main\n")
	sb.WriteString("\thalt r1\n")
	for _, f := range m.Funcs {
		g := &funcGen{m: m, f: f, out: &sb}
		if err := g.gen(); err != nil {
			return "", err
		}
	}
	if len(m.Globals) > 0 {
		sb.WriteString("\t.data\n")
		for _, gl := range m.Globals {
			emitGlobal(&sb, gl)
		}
	}
	return sb.String(), nil
}

func emitGlobal(sb *strings.Builder, g *ir.Global) {
	fmt.Fprintf(sb, "\t.align 8\n%s:\n", g.Name)
	addrAt := make(map[int64]ir.AddrInit, len(g.Addrs))
	for _, a := range g.Addrs {
		addrAt[a.Off] = a
	}
	off := int64(0)
	flushZeros := func(upto int64) {
		if upto > off {
			fmt.Fprintf(sb, "\t.space %d\n", upto-off)
			off = upto
		}
	}
	for off < g.Size {
		if a, ok := addrAt[off]; ok {
			if a.Add != 0 {
				fmt.Fprintf(sb, "\t.addr %s+%d\n", a.Sym, a.Add)
			} else {
				fmt.Fprintf(sb, "\t.addr %s\n", a.Sym)
			}
			off += 8
			continue
		}
		if off >= int64(len(g.Init)) {
			// Find the next address cell (if any) and zero-fill.
			next := g.Size
			for o := range addrAt {
				if o >= off && o < next {
					next = o
				}
			}
			flushZeros(next)
			continue
		}
		// Emit literal bytes up to the next addr cell or init end.
		end := int64(len(g.Init))
		if end > g.Size {
			end = g.Size
		}
		for o := range addrAt {
			if o >= off && o < end {
				end = o
			}
		}
		var vals []string
		for ; off < end; off++ {
			vals = append(vals, fmt.Sprintf("%d", g.Init[off]))
			if len(vals) == 16 {
				fmt.Fprintf(sb, "\t.byte %s\n", strings.Join(vals, ", "))
				vals = vals[:0]
			}
		}
		if len(vals) > 0 {
			fmt.Fprintf(sb, "\t.byte %s\n", strings.Join(vals, ", "))
		}
	}
}

// interval is a live interval for linear-scan allocation.
type interval struct {
	v          ir.VReg
	start, end int
	phys       int // assigned physical register, or -1 if spilled
	spill      int // spill slot index when phys < 0
}

type funcGen struct {
	m   *ir.Module
	f   *ir.Func
	out *strings.Builder

	order     []*ir.Block
	pos       map[*ir.Block]int // layout index of block
	intervals map[ir.VReg]*interval
	body      []string // emitted body lines (before prologue is known)

	usedPhys  map[int]bool
	spills    []ir.VReg
	spillOff  map[ir.VReg]int64
	slotOff   []int64
	frameSize int64
	makesCall bool
}

func (g *funcGen) gen() error {
	g.f.ComputeCFG()
	g.order = g.f.Blocks
	g.pos = make(map[*ir.Block]int, len(g.order))
	for i, b := range g.order {
		g.pos[b] = i
	}
	g.buildIntervals()
	g.allocate()
	g.layoutFrame()
	if err := g.emitBody(); err != nil {
		return err
	}
	g.emitFunc()
	return nil
}

// buildIntervals computes coarse (hole-free) live intervals over the block
// layout order, extending intervals across blocks where the register is
// live-in or live-out so loop-carried values span their whole loop.
func (g *funcGen) buildIntervals() {
	lv := ir.ComputeLiveness(g.f)
	g.intervals = make(map[ir.VReg]*interval)
	touch := func(v ir.VReg, at int) {
		iv := g.intervals[v]
		if iv == nil {
			iv = &interval{v: v, start: at, end: at, phys: -1}
			g.intervals[v] = iv
			return
		}
		if at < iv.start {
			iv.start = at
		}
		if at > iv.end {
			iv.end = at
		}
	}
	idx := 0
	var scratch []ir.VReg
	for _, b := range g.order {
		blockStart := idx
		for v := range lv.In[b] {
			touch(v, blockStart)
		}
		for _, in := range b.Insts {
			scratch = in.Uses(scratch[:0])
			for _, v := range scratch {
				touch(v, idx)
			}
			if in.Dst != ir.NoVReg {
				touch(in.Dst, idx)
			}
			idx++
		}
		for v := range lv.Out[b] {
			touch(v, idx-1)
		}
	}
	for p := 0; p < g.f.NParams; p++ {
		touch(ir.VReg(p), 0)
	}
}

// allocate runs linear scan over the intervals with two register pools:
// intervals that cross a call site must live in callee-saved registers;
// call-free intervals prefer caller-saved registers (free of prologue
// cost) and overflow into the callee-saved pool.
func (g *funcGen) allocate() {
	g.usedPhys = make(map[int]bool)
	g.spillOff = make(map[ir.VReg]int64)

	// Call positions in the same linear numbering buildIntervals used.
	var callPos []int
	idx := 0
	for _, b := range g.order {
		for _, in := range b.Insts {
			if in.Op == ir.OpCall {
				callPos = append(callPos, idx)
			}
			idx++
		}
	}
	crossesCall := func(iv *interval) bool {
		for _, c := range callPos {
			if c >= iv.start && c <= iv.end {
				return true
			}
		}
		return false
	}

	ivs := make([]*interval, 0, len(g.intervals))
	for _, iv := range g.intervals {
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})

	// FIFO pools: rotating through the register file instead of always
	// reusing the lowest free register keeps unrelated values out of
	// recently-freed registers. This matters to the classifier, which
	// works on physical registers: immediate reuse of a load's
	// destination register as an unrelated base would create false
	// load-dependences in the S_load fixpoint.
	var freeCaller, freeCallee []int
	for r := firstCaller; r <= lastCaller; r++ {
		freeCaller = append(freeCaller, r)
	}
	for r := firstCallee; r <= lastCallee; r++ {
		freeCallee = append(freeCallee, r)
	}
	pop := func(pool *[]int) (int, bool) {
		if len(*pool) == 0 {
			return 0, false
		}
		r := (*pool)[0]
		*pool = (*pool)[1:]
		return r, true
	}
	release := func(r int) {
		if r >= firstCallee {
			freeCallee = append(freeCallee, r)
		} else {
			freeCaller = append(freeCaller, r)
		}
	}

	var active []*interval // sorted by end
	insertActive := func(iv *interval) {
		i := sort.Search(len(active), func(i int) bool { return active[i].end > iv.end })
		active = append(active, nil)
		copy(active[i+1:], active[i:])
		active[i] = iv
	}
	for _, iv := range ivs {
		// Expire finished intervals.
		n := 0
		for _, a := range active {
			if a.end < iv.start {
				release(a.phys)
			} else {
				active[n] = a
				n++
			}
		}
		active = active[:n]

		crossing := crossesCall(iv)
		var r int
		var ok bool
		if crossing {
			r, ok = pop(&freeCallee)
		} else {
			if r, ok = pop(&freeCaller); !ok {
				r, ok = pop(&freeCallee)
			}
		}
		if ok {
			iv.phys = r
			g.usedPhys[r] = true
			insertActive(iv)
			continue
		}
		// No register in the allowed pools: spill the latest-ending
		// active interval the current one may legally replace, or the
		// current interval itself.
		spilled := false
		for i := len(active) - 1; i >= 0; i-- {
			a := active[i]
			if a.end <= iv.end {
				break
			}
			if crossing && a.phys < firstCallee {
				continue // cannot take a caller-saved register
			}
			iv.phys = a.phys
			a.phys = -1
			g.spills = append(g.spills, a.v)
			active = append(active[:i], active[i+1:]...)
			insertActive(iv)
			spilled = true
			break
		}
		if !spilled {
			g.spills = append(g.spills, iv.v)
		}
	}
}

// layoutFrame assigns SP-relative offsets: saved registers first, then IR
// stack slots, then spill slots.
func (g *funcGen) layoutFrame() {
	for _, b := range g.f.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpCall {
				g.makesCall = true
			}
		}
	}
	off := int64(0)
	if g.makesCall {
		off += wordSize // ra save slot at sp(0)
	}
	off += int64(len(g.savedRegs())) * wordSize
	g.slotOff = make([]int64, len(g.f.Slots))
	for i := range g.f.Slots {
		size := (g.f.Slots[i].Size + 7) &^ 7
		g.slotOff[i] = off
		off += size
	}
	for _, v := range g.spills {
		g.spillOff[v] = off
		off += wordSize
	}
	g.frameSize = (off + frameAlign - 1) &^ (frameAlign - 1)
}

// savedRegs returns the callee-saved registers the function must preserve.
func (g *funcGen) savedRegs() []int {
	var saved []int
	for r := range g.usedPhys {
		if r >= firstCallee {
			saved = append(saved, r)
		}
	}
	sort.Ints(saved)
	return saved
}

func (g *funcGen) emitFunc() {
	w := g.out
	fmt.Fprintf(w, "_%s:\n", g.f.Name)
	if g.frameSize > 0 {
		fmt.Fprintf(w, "\tsub r%d, r%d, %d\n", spReg, spReg, g.frameSize)
	}
	off := int64(0)
	if g.makesCall {
		fmt.Fprintf(w, "\tst8 r%d, r%d(0)\n", raReg, spReg)
		off += wordSize
	}
	for _, r := range g.savedRegs() {
		fmt.Fprintf(w, "\tst8 r%d, r%d(%d)\n", r, spReg, off)
		off += wordSize
	}
	// Move parameters into their allocated homes.
	for p := 0; p < g.f.NParams && p < maxArgs; p++ {
		iv := g.intervals[ir.VReg(p)]
		if iv == nil {
			continue // unused parameter
		}
		if iv.phys >= 0 {
			fmt.Fprintf(w, "\tmov r%d, r%d\n", iv.phys, firstArgReg+p)
		} else {
			fmt.Fprintf(w, "\tst8 r%d, r%d(%d)\n", firstArgReg+p, spReg, g.spillOff[ir.VReg(p)])
		}
	}
	for _, line := range g.body {
		w.WriteString(line)
		w.WriteByte('\n')
	}
	// Epilogue.
	fmt.Fprintf(w, "%s:\n", g.exitLabel())
	off = 0
	if g.makesCall {
		fmt.Fprintf(w, "\tld8_n r%d, r%d(0)\n", raReg, spReg)
		off += wordSize
	}
	for _, r := range g.savedRegs() {
		fmt.Fprintf(w, "\tld8_n r%d, r%d(%d)\n", r, spReg, off)
		off += wordSize
	}
	if g.frameSize > 0 {
		fmt.Fprintf(w, "\tadd r%d, r%d, %d\n", spReg, spReg, g.frameSize)
	}
	fmt.Fprintf(w, "\tret\n")
}

func (g *funcGen) exitLabel() string { return fmt.Sprintf("_%s$exit", g.f.Name) }

func (g *funcGen) blockLabel(b *ir.Block) string {
	return fmt.Sprintf("_%s$B%d", g.f.Name, b.ID)
}

func (g *funcGen) emit(format string, args ...any) {
	g.body = append(g.body, fmt.Sprintf("\t"+format, args...))
}

func (g *funcGen) emitLabel(l string) { g.body = append(g.body, l+":") }

// srcReg materializes operand o into a physical register, using the given
// scratch register when o is not already register-resident. It returns the
// register number holding the value.
func (g *funcGen) srcReg(o ir.Operand, scratch int) (int, error) {
	switch o.Kind {
	case ir.OpndReg:
		iv := g.intervals[o.Reg]
		if iv == nil {
			return 0, fmt.Errorf("codegen: %s: use of unallocated v%d", g.f.Name, o.Reg)
		}
		if iv.phys >= 0 {
			return iv.phys, nil
		}
		g.emit("ld8_n r%d, r%d(%d)", scratch, spReg, g.spillOff[o.Reg])
		return scratch, nil
	case ir.OpndConst:
		if o.Imm == 0 {
			return 0, nil // r0 is hardwired zero
		}
		g.emit("li r%d, %d", scratch, o.Imm)
		return scratch, nil
	case ir.OpndSym:
		if o.Imm != 0 {
			g.emit("li r%d, %s+%d", scratch, o.Sym, o.Imm)
		} else {
			g.emit("li r%d, %s", scratch, o.Sym)
		}
		return scratch, nil
	case ir.OpndFrame:
		g.emit("add r%d, r%d, %d", scratch, spReg, g.slotOff[o.Slot]+o.Imm)
		return scratch, nil
	}
	return 0, fmt.Errorf("codegen: %s: bad operand kind %d", g.f.Name, o.Kind)
}

// dstReg returns the register a result should be computed into, plus a
// store-back closure for spilled destinations.
func (g *funcGen) dstReg(v ir.VReg) (int, func()) {
	iv := g.intervals[v]
	if iv == nil {
		// Dead destination (result never used, interval never built —
		// can happen before DCE); compute into scratch and discard.
		return scratchC, func() {}
	}
	if iv.phys >= 0 {
		return iv.phys, func() {}
	}
	off := g.spillOff[v]
	return scratchC, func() { g.emit("st8 r%d, r%d(%d)", scratchC, spReg, off) }
}

var binMnemonic = map[ir.Op]string{
	ir.OpAdd: "add", ir.OpSub: "sub", ir.OpMul: "mul", ir.OpDiv: "div",
	ir.OpRem: "rem", ir.OpAnd: "and", ir.OpOr: "or", ir.OpXor: "xor",
	ir.OpSll: "sll", ir.OpSrl: "srl", ir.OpSra: "sra",
}

func (g *funcGen) emitBody() error {
	for bi, b := range g.order {
		g.emitLabel(g.blockLabel(b))
		var next *ir.Block
		if bi+1 < len(g.order) {
			next = g.order[bi+1]
		}
		for _, in := range b.Insts {
			if err := g.emitInstr(in, next); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *funcGen) emitInstr(in *ir.Instr, next *ir.Block) error {
	switch in.Op {
	case ir.OpNop:
		return nil

	case ir.OpCopy:
		rd, done := g.dstReg(in.Dst)
		switch in.A.Kind {
		case ir.OpndReg:
			ra, err := g.srcReg(in.A, rd)
			if err != nil {
				return err
			}
			if ra != rd {
				g.emit("mov r%d, r%d", rd, ra)
			}
		case ir.OpndConst:
			g.emit("li r%d, %d", rd, in.A.Imm)
		case ir.OpndSym:
			if in.A.Imm != 0 {
				g.emit("li r%d, %s+%d", rd, in.A.Sym, in.A.Imm)
			} else {
				g.emit("li r%d, %s", rd, in.A.Sym)
			}
		case ir.OpndFrame:
			g.emit("add r%d, r%d, %d", rd, spReg, g.slotOff[in.A.Slot]+in.A.Imm)
		default:
			return fmt.Errorf("codegen: copy of bad operand")
		}
		done()
		return nil

	case ir.OpCmp:
		return g.emitCmp(in)

	case ir.OpLoad:
		rd, done := g.dstReg(in.Dst)
		mem, err := g.memOperand(in, scratchA, scratchB)
		if err != nil {
			return err
		}
		g.emit("ld%d%s_n r%d, %s", in.Width, signSuffix(in), rd, mem)
		done()
		return nil

	case ir.OpStore:
		ra, err := g.srcReg(in.A, scratchC)
		if err != nil {
			return err
		}
		mem, err := g.memOperand(in, scratchA, scratchB)
		if err != nil {
			return err
		}
		g.emit("st%d r%d, %s", in.Width, ra, mem)
		return nil

	case ir.OpCall:
		return g.emitCall(in)

	case ir.OpRet:
		if in.A.Kind != ir.OpndNone {
			ra, err := g.srcReg(in.A, retReg)
			if err != nil {
				return err
			}
			if ra != retReg {
				g.emit("mov r%d, r%d", retReg, ra)
			}
		}
		g.emit("jmp %s", g.exitLabel())
		return nil

	case ir.OpBr:
		ra, err := g.srcReg(in.A, scratchA)
		if err != nil {
			return err
		}
		cond := in.Cond
		thenB, elseB := in.Then, in.Else
		if thenB == next {
			cond = cond.Negate()
			thenB, elseB = elseB, thenB
		}
		var operand string
		if c, ok := in.B.IsConst(); ok {
			operand = fmt.Sprintf("%d", c)
		} else {
			rb, err := g.srcReg(in.B, scratchB)
			if err != nil {
				return err
			}
			operand = fmt.Sprintf("r%d", rb)
		}
		g.emit("b%s r%d, %s, %s", cond, ra, operand, g.blockLabel(thenB))
		if elseB != next {
			g.emit("jmp %s", g.blockLabel(elseB))
		}
		return nil

	case ir.OpJmp:
		if in.To != next {
			g.emit("jmp %s", g.blockLabel(in.To))
		}
		return nil

	case ir.OpHalt:
		ra, err := g.srcReg(in.A, scratchA)
		if err != nil {
			return err
		}
		g.emit("halt r%d", ra)
		return nil
	}

	if m, ok := binMnemonic[in.Op]; ok {
		rd, done := g.dstReg(in.Dst)
		ra, err := g.srcReg(in.A, scratchA)
		if err != nil {
			return err
		}
		if c, ok := in.B.IsConst(); ok {
			g.emit("%s r%d, r%d, %d", m, rd, ra, c)
		} else {
			rb, err := g.srcReg(in.B, scratchB)
			if err != nil {
				return err
			}
			g.emit("%s r%d, r%d, r%d", m, rd, ra, rb)
		}
		done()
		return nil
	}
	return fmt.Errorf("codegen: %s: unhandled IR op %v", g.f.Name, in.Op)
}

func signSuffix(in *ir.Instr) string {
	if in.Signed && in.Width < 8 {
		return "s"
	}
	return ""
}

// memOperand renders the load/store address, folding it into one of the
// ISA's addressing modes.
func (g *funcGen) memOperand(in *ir.Instr, sA, sB int) (string, error) {
	switch in.Base.Kind {
	case ir.OpndReg:
		rb, err := g.srcReg(in.Base, sA)
		if err != nil {
			return "", err
		}
		if in.Index != ir.NoVReg {
			ri, err := g.srcReg(ir.R(in.Index), sB)
			if err != nil {
				return "", err
			}
			if in.Off != 0 {
				g.emit("add r%d, r%d, %d", sA, rb, in.Off)
				rb = sA
			}
			return fmt.Sprintf("r%d(r%d)", rb, ri), nil
		}
		return fmt.Sprintf("r%d(%d)", rb, in.Off), nil

	case ir.OpndSym:
		off := in.Base.Imm + in.Off
		if in.Index != ir.NoVReg {
			if off != 0 {
				g.emit("li r%d, %s+%d", sA, in.Base.Sym, off)
			} else {
				g.emit("li r%d, %s", sA, in.Base.Sym)
			}
			ri, err := g.srcReg(ir.R(in.Index), sB)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("r%d(r%d)", sA, ri), nil
		}
		if off != 0 {
			return fmt.Sprintf("%s+%d", in.Base.Sym, off), nil
		}
		return in.Base.Sym, nil

	case ir.OpndFrame:
		off := g.slotOff[in.Base.Slot] + in.Base.Imm + in.Off
		if in.Index != ir.NoVReg {
			ri, err := g.srcReg(ir.R(in.Index), sB)
			if err != nil {
				return "", err
			}
			g.emit("add r%d, r%d, %d", sA, spReg, off)
			return fmt.Sprintf("r%d(r%d)", sA, ri), nil
		}
		return fmt.Sprintf("r%d(%d)", spReg, off), nil

	case ir.OpndConst:
		addr := in.Base.Imm + in.Off
		if in.Index != ir.NoVReg {
			g.emit("li r%d, %d", sA, addr)
			ri, err := g.srcReg(ir.R(in.Index), sB)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("r%d(r%d)", sA, ri), nil
		}
		return fmt.Sprintf("(%d)", addr), nil
	}
	return "", fmt.Errorf("codegen: bad memory base operand kind %d", in.Base.Kind)
}

func (g *funcGen) emitCmp(in *ir.Instr) error {
	rd, done := g.dstReg(in.Dst)
	ra, err := g.srcReg(in.A, scratchA)
	if err != nil {
		return err
	}
	rb, err := g.srcReg(in.B, scratchB)
	if err != nil {
		return err
	}
	switch in.Cond {
	case isa.CondLT:
		g.emit("slt r%d, r%d, r%d", rd, ra, rb)
	case isa.CondGT:
		g.emit("slt r%d, r%d, r%d", rd, rb, ra)
	case isa.CondGE:
		g.emit("slt r%d, r%d, r%d", rd, ra, rb)
		g.emit("xor r%d, r%d, 1", rd, rd)
	case isa.CondLE:
		g.emit("slt r%d, r%d, r%d", rd, rb, ra)
		g.emit("xor r%d, r%d, 1", rd, rd)
	case isa.CondEQ:
		g.emit("sub r%d, r%d, r%d", rd, ra, rb)
		g.emit("sltu r%d, r0, r%d", rd, rd)
		g.emit("xor r%d, r%d, 1", rd, rd)
	case isa.CondNE:
		g.emit("sub r%d, r%d, r%d", rd, ra, rb)
		g.emit("sltu r%d, r0, r%d", rd, rd)
	}
	done()
	return nil
}

func (g *funcGen) emitCall(in *ir.Instr) error {
	if len(in.Args) > maxArgs {
		return fmt.Errorf("codegen: call %s: more than %d arguments", in.Callee, maxArgs)
	}
	// Built-in output intrinsics.
	switch in.Callee {
	case "print_int", "print_char":
		if len(in.Args) != 1 {
			return fmt.Errorf("codegen: %s takes one argument", in.Callee)
		}
		ra, err := g.srcReg(in.Args[0], scratchA)
		if err != nil {
			return err
		}
		port := int64(outIntAddr)
		if in.Callee == "print_char" {
			port = outCharAddr
		}
		g.emit("li r%d, %d", scratchB, port)
		g.emit("st8 r%d, r%d(0)", ra, scratchB)
		if in.Dst != ir.NoVReg {
			rd, done := g.dstReg(in.Dst)
			g.emit("li r%d, 0", rd)
			done()
		}
		return nil
	}
	if g.m.Func(in.Callee) == nil {
		return fmt.Errorf("codegen: call to undefined function %q", in.Callee)
	}
	for i, a := range in.Args {
		ra, err := g.srcReg(a, firstArgReg+i)
		if err != nil {
			return err
		}
		if ra != firstArgReg+i {
			g.emit("mov r%d, r%d", firstArgReg+i, ra)
		}
	}
	g.emit("call r%d, _%s", raReg, in.Callee)
	if in.Dst != ir.NoVReg {
		rd, done := g.dstReg(in.Dst)
		if rd != retReg {
			g.emit("mov r%d, r%d", rd, retReg)
		}
		done()
	}
	return nil
}
