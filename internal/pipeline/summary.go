package pipeline

import (
	"fmt"
	"strings"
)

// pct renders a ratio as a percentage with one decimal.
func pct(num, den int64) string {
	if den == 0 {
		return "   -  "
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(num)/float64(den))
}

// Summary renders the run as an aligned human-readable table: the headline
// rates (IPC, average load latency), the memory system, and the per-path
// forward rates with the Section 3.2 failure-term breakdown. The output is
// stable for a given Metrics value.
func (m *Metrics) Summary() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("%-22s %12d", "cycles", m.Cycles)
	w("%-22s %12d   IPC %.3f", "instructions", m.Insts, m.IPC())
	w("%-22s %12d   stores %d   branches %d", "loads", m.Loads, m.Stores, m.Branches)
	w("%-22s %12d   of %d (%s)", "branch mispredicts", m.Mispredicts,
		m.BTBStats.Branches, strings.TrimSpace(pct(m.Mispredicts, m.BTBStats.Branches)))
	w("%-22s %12.3f   zero-cycle %d   one-cycle %d", "avg load latency",
		m.AvgLoadLatency(), m.ZeroCycleLoads, m.OneCycleLoads)
	for _, c := range []struct {
		name      string
		acc, miss int64
	}{
		{"I-cache", m.ICacheStats.Accesses, m.ICacheStats.Misses},
		{"D-cache", m.DCacheStats.Accesses, m.DCacheStats.Misses},
	} {
		w("%-22s %12s   hit (%d accesses, %d misses)", c.name,
			strings.TrimSpace(pct(c.acc-c.miss, c.acc)), c.acc, c.miss)
	}

	w("")
	w("%-10s %10s %10s %10s %8s", "path", "eligible", "speculated", "forwarded", "fwd")
	for _, p := range []struct {
		name string
		ps   *PathStats
	}{{"predict", &m.Predict}, {"early", &m.Early}} {
		w("%-10s %10d %10d %10d  %s", p.name,
			p.ps.Eligible, p.ps.Speculated, p.ps.Forwarded,
			pct(p.ps.Forwarded, p.ps.Eligible))
	}

	w("")
	w("%-16s %12s %12s", "failure term", "predict", "early")
	for _, t := range []struct {
		name   string
		pv, ev int64
	}{
		{"no-prediction", m.Predict.NoPrediction, m.Early.NoPrediction},
		{"reg-miss", m.Predict.RegMiss, m.Early.RegMiss},
		{"reg-interlock", m.Predict.RegInterlock, m.Early.RegInterlock},
		{"mem-interlock", m.Predict.MemInterlock, m.Early.MemInterlock},
		{"no-port", m.Predict.NoPort, m.Early.NoPort},
		{"cache-miss", m.Predict.CacheMiss, m.Early.CacheMiss},
		{"addr-mispredict", m.Predict.AddrMispredict, m.Early.AddrMispredict},
	} {
		w("%-16s %12d %12d", t.name, t.pv, t.ev)
	}
	return b.String()
}
