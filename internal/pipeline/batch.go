package pipeline

// Batched multi-configuration replay: the evaluation replays one
// architectural trace under many hardware configurations (every table and
// figure of the paper is such a grid), and the per-configuration sequential
// shape pays for the trace twice per cell — once to produce it, once to
// stream its megabytes past the sim. BatchReplay instead advances N
// independent pipeline states through each trace chunk in one pass: the
// program is emulated exactly once (streamed, O(chunkSize) memory, no dry
// counting pass), and each chunk is still hot in L1/L2 when the next
// configuration replays it. Each Sim is fully independent state, so the
// batched metrics are bit-identical to N sequential replays.

import (
	"context"
	"errors"

	"elag/internal/emu"
	"elag/internal/isa"
)

// BatchSpec is one configuration cell of a batched replay: a hardware
// configuration plus the load-flavour overlay to resolve into its decode
// cache (nil uses the program's baked-in flavours). NoMemo / NoSpecialize
// disable the replay fast paths for this cell (results are byte-identical
// either way — see SetNoMemo / SetNoSpecialize).
type BatchSpec struct {
	Config       Config
	Flavors      isa.FlavorOverlay
	NoMemo       bool
	NoSpecialize bool
}

// NewBatch constructs one independent Sim per spec over prog. Any
// construction error aborts the whole batch.
func NewBatch(prog *isa.Program, specs []BatchSpec) ([]*Sim, error) {
	sims := make([]*Sim, len(specs))
	for i, sp := range specs {
		sim, err := New(sp.Config, prog, sp.Flavors)
		if err != nil {
			return nil, err
		}
		sim.SetNoMemo(sp.NoMemo)
		sim.SetNoSpecialize(sp.NoSpecialize)
		sims[i] = sim
	}
	return sims, nil
}

// RunChunkBatch advances every sim through chunk, one sim at a time: each
// sim walks the whole chunk before the next starts, so a sim's own state
// (scoreboard, caches, predictor) stays hot in L1 across consecutive
// entries while the chunk itself — small enough to sit in L2 — is reread
// by each configuration. StepInst treats the shared entries as read-only,
// so the batched metrics are bit-identical to N sequential replays.
func RunChunkBatch(sims []*Sim, chunk *emu.Trace) error {
	// Hoist the columns into locals: unlike Fill's receiver loads, locals
	// provably don't alias the sim, so the slice headers survive the
	// StepInst call in registers.
	n := chunk.Len()
	pcs, nextPCs := chunk.PC[:n], chunk.NextPC[:n]
	eas, baseVals := chunk.EA[:n], chunk.BaseVal[:n]
	takens := chunk.Taken[:n]
	seq0 := chunk.Seq0
	for _, s := range sims {
		if err := s.runChunkCols(pcs, nextPCs, eas, baseVals, takens, seq0); err != nil {
			return err
		}
	}
	return nil
}

// batchMetrics finalizes a batch of sims.
func batchMetrics(sims []*Sim) []*Metrics {
	ms := make([]*Metrics, len(sims))
	for i, sim := range sims {
		ms[i] = sim.Metrics()
	}
	return ms
}

// BatchReplay emulates prog once (streamed in chunkSize-entry chunks;
// <= 0 for emu.DefaultChunkSize) and replays every chunk through one Sim
// per spec, returning the per-spec metrics in spec order plus the
// architectural result. Peak trace memory is O(chunkSize) regardless of
// fuel. A fuel-truncated run is still replayed — prefix timing is valid
// timing — so fuel exhaustion is not an error here.
func BatchReplay(prog *isa.Program, fuel int64, chunkSize int, specs []BatchSpec) ([]*Metrics, emu.Result, error) {
	return BatchReplayContext(context.Background(), prog, fuel, chunkSize, specs)
}

// BatchReplayContext is BatchReplay with cooperative cancellation: ctx is
// checked between chunks of the streamed architectural execution, so a
// replay over a pathological fuel budget aborts within one chunk of
// cancellation with the ctx error. Uncancelled results are byte-identical
// to BatchReplay.
func BatchReplayContext(ctx context.Context, prog *isa.Program, fuel int64, chunkSize int, specs []BatchSpec) ([]*Metrics, emu.Result, error) {
	return BatchReplayObservedContext(ctx, prog, fuel, chunkSize, specs, nil)
}

// BatchReplayObservedContext is BatchReplayContext with a chunk-boundary
// progress hook: after every chunk has been replayed through all sims,
// onChunk (may be nil) receives the cumulative replayed-entry count and
// the size of the chunk just finished. The hook observes — it gets no
// access to the sims and runs strictly between chunks — so results are
// byte-identical with or without it, and a nil hook costs one comparison
// per chunk.
func BatchReplayObservedContext(ctx context.Context, prog *isa.Program, fuel int64, chunkSize int, specs []BatchSpec, onChunk func(done int64, n int)) ([]*Metrics, emu.Result, error) {
	sims, err := NewBatch(prog, specs)
	if err != nil {
		return nil, emu.Result{}, err
	}
	var done int64
	res, err := emu.StreamTraceContext(ctx, prog, fuel, chunkSize, func(chunk *emu.Trace) error {
		if err := RunChunkBatch(sims, chunk); err != nil {
			return err
		}
		if onChunk != nil {
			done += int64(chunk.Len())
			onChunk(done, chunk.Len())
		}
		return nil
	})
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, res, err
	}
	return batchMetrics(sims), res, nil
}

// BatchReplayTrace is BatchReplay over an already-materialized trace: the
// trace is walked once in chunkSize-entry windows (<= 0 for
// emu.DefaultChunkSize) with every Sim advanced per window, so the window
// stays cache-hot across all configurations instead of each configuration
// streaming the whole trace from memory.
func BatchReplayTrace(prog *isa.Program, trace *emu.Trace, chunkSize int, specs []BatchSpec) ([]*Metrics, error) {
	return BatchReplayTraceContext(context.Background(), prog, trace, chunkSize, specs)
}

// BatchReplayTraceContext is BatchReplayTrace with cooperative
// cancellation, checked between chunk windows of the materialized trace.
// Uncancelled results are byte-identical to BatchReplayTrace.
func BatchReplayTraceContext(ctx context.Context, prog *isa.Program, trace *emu.Trace, chunkSize int, specs []BatchSpec) ([]*Metrics, error) {
	sims, err := NewBatch(prog, specs)
	if err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		chunkSize = emu.DefaultChunkSize
	}
	err = trace.Chunks(chunkSize, func(chunk *emu.Trace) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return RunChunkBatch(sims, chunk)
	})
	if err != nil {
		return nil, err
	}
	return batchMetrics(sims), nil
}

// SimulateStream is Simulate with bounded memory: the trace is streamed
// through the Sim in chunkSize-entry chunks instead of materialized. The
// metrics are bit-identical to Simulate's; peak trace memory is
// O(chunkSize) regardless of fuel.
func SimulateStream(cfg Config, prog *isa.Program, fuel int64, chunkSize int) (*Metrics, emu.Result, error) {
	return SimulateStreamContext(context.Background(), cfg, prog, fuel, chunkSize)
}

// SimulateStreamContext is SimulateStream with cooperative cancellation
// (see BatchReplayContext).
func SimulateStreamContext(ctx context.Context, cfg Config, prog *isa.Program, fuel int64, chunkSize int) (*Metrics, emu.Result, error) {
	ms, res, err := BatchReplayContext(ctx, prog, fuel, chunkSize, []BatchSpec{{Config: cfg}})
	if err != nil {
		return nil, res, err
	}
	return ms[0], res, nil
}
