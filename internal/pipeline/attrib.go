package pipeline

import (
	"sort"

	"elag/internal/isa"
)

// Per-PC load attribution: when enabled, every dynamic load execution is
// charged to its static PC, with the same PathStats accounting as the
// global Metrics counters. Both are driven from the one specResult an
// execution produces, so for any run the per-PC table sums exactly to the
// global counters — the counter algebra the attribution tests assert.

// LatencyBuckets is the number of effective-latency histogram buckets: a
// load of effective latency l lands in bucket min(l, LatencyBuckets-1),
// so the last bucket aggregates the long-miss tail.
const LatencyBuckets = 18

// LoadPCStats accumulates the behaviour of one static load.
type LoadPCStats struct {
	// PC is the static instruction index; Mnemonic its disassembly (the
	// opcode class, e.g. "ld8_e r1, r20(0)").
	PC       int
	Mnemonic string
	// Flavor is the load's opcode class (ld_n / ld_p / ld_e).
	Flavor isa.LoadFlavor
	// Count is the number of dynamic executions.
	Count int64
	// ZeroCycle / OneCycle count executions forwarded with effective
	// latency 0 and 1.
	ZeroCycle int64
	OneCycle  int64
	// LatencySum accumulates effective latency over executions; Hist is
	// its distribution (bucket = min(latency, LatencyBuckets-1)).
	LatencySum int64
	Hist       [LatencyBuckets]int64
	// Predict and Early break speculation behaviour down per path,
	// field-for-field compatible with the global Metrics counters.
	Predict PathStats
	Early   PathStats
}

// Forwarded returns the executions forwarded on either path.
func (l *LoadPCStats) Forwarded() int64 {
	return l.Predict.Forwarded + l.Early.Forwarded
}

// AvgLatency returns the mean effective latency of this load's executions.
func (l *LoadPCStats) AvgLatency() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.LatencySum) / float64(l.Count)
}

// EnablePerPC turns on per-PC load attribution; call before Run. The table
// is returned by Metrics in its PerPC field. Disabled (the default), the
// simulation pays one nil check per load.
func (s *Sim) EnablePerPC() {
	if s.attrib == nil {
		s.attrib = make([]LoadPCStats, len(s.prog.Insts))
	}
}

// recordLoad charges one dynamic load execution to its PC. effLat is the
// contribution to Metrics.LoadLatencySum for this execution. Flavor (and
// the rendered mnemonic) reflect the decode cache, i.e. any overlay the
// simulation was constructed with.
func (s *Sim) recordLoad(in *isa.Inst, md *instMeta, pc int, spec *specResult, effLat int64) {
	a := &s.attrib[pc]
	if a.Count == 0 {
		a.PC = pc
		if md.flavor == in.Flavor {
			a.Mnemonic = in.String()
		} else {
			over := *in
			over.Flavor = md.flavor
			a.Mnemonic = over.String()
		}
		a.Flavor = md.flavor
	}
	a.Count++
	a.LatencySum += effLat
	b := effLat
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	a.Hist[b]++
	switch spec.path {
	case pathPredict, pathAssist:
		spec.applyTo(&a.Predict)
	case pathEarly:
		spec.applyTo(&a.Early)
	}
	if spec.forwarded {
		if spec.lat == 0 {
			a.ZeroCycle++
		} else {
			a.OneCycle++
		}
	}
}

// perPC collects the populated attribution rows in PC order (nil when
// attribution is disabled).
func (s *Sim) perPC() []LoadPCStats {
	if s.attrib == nil {
		return nil
	}
	var out []LoadPCStats
	for i := range s.attrib {
		if s.attrib[i].Count > 0 {
			out = append(out, s.attrib[i])
		}
	}
	return out
}

// WorstLoads returns the n attribution rows with the highest total
// effective latency — the static loads the pipeline spends the most
// cycles waiting on. Ties break toward lower PC, so the order is stable.
func (m *Metrics) WorstLoads(n int) []LoadPCStats {
	rows := make([]LoadPCStats, len(m.PerPC))
	copy(rows, m.PerPC)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].LatencySum != rows[j].LatencySum {
			return rows[i].LatencySum > rows[j].LatencySum
		}
		return rows[i].PC < rows[j].PC
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}
