package pipeline

import (
	"elag/internal/addrpred"
	"elag/internal/bpred"
	"elag/internal/cache"
	"elag/internal/earlycalc"
	"elag/internal/mech"
)

// PathStats counts the behaviour of one early-address-generation path.
type PathStats struct {
	// Eligible counts dynamic loads steered to this path.
	Eligible int64
	// Speculated counts loads that launched a speculative cache access.
	Speculated int64
	// Forwarded counts loads whose speculative data was forwarded — the
	// full forwarding formula of Section 3.2 evaluated true.
	Forwarded int64
	// Failure-term breakdown for speculations that did not forward; a
	// single failed speculation may set several of these.
	NoPrediction   int64 // table miss or unconfident stride (ld_p only)
	RegMiss        int64 // base register not cached (ld_e only)
	RegInterlock   int64 // R_addr interlock: base value still in flight
	MemInterlock   int64 // pending-store conflict
	NoPort         int64 // no data-cache port available
	CacheMiss      int64 // speculative access missed the cache
	AddrMispredict int64 // PA != CA (ld_p only)
}

// ForwardRate returns Forwarded/Eligible.
func (p PathStats) ForwardRate() float64 {
	if p.Eligible == 0 {
		return 0
	}
	return float64(p.Forwarded) / float64(p.Eligible)
}

// Metrics is the result of one timing-simulation run.
type Metrics struct {
	Cycles       int64
	Insts        int64
	Loads        int64
	Stores       int64
	Branches     int64
	Mispredicts  int64
	ICacheStats  cache.Stats
	DCacheStats  cache.Stats
	BTBStats     bpred.Stats
	TableStats   addrpred.Stats
	RegCacheStat earlycalc.Stats

	// MechKind / MechStats describe the assist mechanism when one is
	// configured. Both are omitted from JSON otherwise, so configurations
	// without an assist serialize byte-identically to before the
	// mechanism layer existed.
	MechKind  string      `json:",omitempty"`
	MechStats *mech.Stats `json:",omitempty"`

	// Predict and Early describe the two speculation paths.
	Predict PathStats
	Early   PathStats

	// LoadLatencySum accumulates each load's effective latency (cycles
	// from its EXE stage until a dependent could execute), for the
	// average-load-latency reduction the paper reports.
	LoadLatencySum int64
	// ZeroCycleLoads / OneCycleLoads count loads satisfied with
	// effective latency 0 (early calculation) and 1 (prediction).
	ZeroCycleLoads int64
	OneCycleLoads  int64

	// PerPC is the per-PC load attribution table (nil unless EnablePerPC
	// was called before the run). Summing any PathStats field across rows
	// reproduces the corresponding Predict/Early counter above exactly.
	PerPC []LoadPCStats

	// Memo reports the block-timing memoizer's behaviour for this Sim. It
	// describes the simulator, not the simulated machine, so it is
	// excluded from serialized artifacts: memoization on and off produce
	// byte-identical artifact JSON. Equality checks over Metrics must
	// normalize this field (see diffcheck).
	Memo MemoStats `json:"-"`
}

// IPC returns retired instructions per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Insts) / float64(m.Cycles)
}

// AvgLoadLatency returns the mean effective load latency in cycles.
func (m *Metrics) AvgLoadLatency() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.LoadLatencySum) / float64(m.Loads)
}

// SpeedupOver returns base.Cycles / m.Cycles — the paper's speedup metric
// relative to the base architecture.
func (m *Metrics) SpeedupOver(base *Metrics) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(m.Cycles)
}
