package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"elag/internal/addrpred"
	"elag/internal/asm"
	"elag/internal/earlycalc"
	"elag/internal/emu"
)

// genProgram builds a random but well-formed program: a loop over a mix of
// ALU ops, loads, stores and data-dependent branches, seeded
// deterministically so failures reproduce.
func genProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("\t.data\nbuf:\t.space 4096\n\t.text\n")
	b.WriteString("main:\tli r9, 0\n\tli r20, buf\n\tli r21, buf+2048\n")
	b.WriteString("loop:\n")
	n := 3 + rng.Intn(10)
	flavors := []string{"n", "p", "e"}
	for i := 0; i < n; i++ {
		r1 := 1 + rng.Intn(8)
		r2 := 1 + rng.Intn(8)
		rd := 1 + rng.Intn(8)
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&b, "\tadd r%d, r%d, r%d\n", rd, r1, r2)
		case 1:
			fmt.Fprintf(&b, "\txor r%d, r%d, %d\n", rd, r1, rng.Intn(1000))
		case 2:
			fmt.Fprintf(&b, "\tld8_%s r%d, r2%d(%d)\n",
				flavors[rng.Intn(3)], rd, rng.Intn(2), rng.Intn(64)*8)
		case 3:
			fmt.Fprintf(&b, "\tst8 r%d, r2%d(%d)\n", r1, rng.Intn(2), rng.Intn(64)*8)
		case 4:
			fmt.Fprintf(&b, "\tand r%d, r%d, 7\n", rd, r1)
			fmt.Fprintf(&b, "\tbeq r%d, %d, skip%d\n", rd, rng.Intn(8), i)
			fmt.Fprintf(&b, "\tadd r%d, r%d, 1\n", rd, rd)
			fmt.Fprintf(&b, "skip%d:\n", i)
		case 5:
			fmt.Fprintf(&b, "\tmul r%d, r%d, 3\n", rd, r1)
		}
	}
	b.WriteString("\tadd r9, r9, 1\n\tblt r9, 500, loop\n\thalt r9\n")
	return b.String()
}

// TestRandomProgramsAllConfigsAgree: for randomly generated programs, every
// hardware configuration must replay the same trace without error, produce
// the same architectural result, and never beat the issue-width bound.
func TestRandomProgramsAllConfigsAgree(t *testing.T) {
	cfgs := []Config{
		{},
		{Select: SelCompiler, Predictor: &addrpred.Config{Entries: 64},
			RegCache: &earlycalc.Config{Entries: 1}},
		{Select: SelAllPredict, Predictor: &addrpred.Config{Entries: 16}},
		{Select: SelAllEarly, RegCache: &earlycalc.Config{Entries: 4}},
		{Select: SelHWDual, Predictor: &addrpred.Config{Entries: 64},
			RegCache: &earlycalc.Config{Entries: 4}},
	}
	for seed := int64(1); seed <= 25; seed++ {
		src := genProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		res, trace, err := emu.RunTrace(p, 1_000_000, true)
		if err != nil {
			t.Fatalf("seed %d: emulate: %v", seed, err)
		}
		var baseCycles int64
		for ci, cfg := range cfgs {
			m, err := mustSim(t, cfg, p).Run(trace)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
			}
			if m.Insts != res.DynamicInsts {
				t.Fatalf("seed %d cfg %d: inst count %d != %d",
					seed, ci, m.Insts, res.DynamicInsts)
			}
			if m.Cycles < m.Insts/6 {
				t.Errorf("seed %d cfg %d: IPC above issue width", seed, ci)
			}
			if ci == 0 {
				baseCycles = m.Cycles
			} else if m.Cycles > baseCycles*3/2 {
				// Early address generation consumes only spare
				// ports; it must never slow a program down by
				// anything close to 50%.
				t.Errorf("seed %d cfg %d: %d cycles vs base %d",
					seed, ci, m.Cycles, baseCycles)
			}
		}
	}
}
