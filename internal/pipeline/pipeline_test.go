package pipeline

import (
	"strings"
	"testing"

	"elag/internal/addrpred"
	"elag/internal/asm"
	"elag/internal/asm/asmtest"
	"elag/internal/earlycalc"
	"elag/internal/emu"
	"elag/internal/isa"
)

func sim(t *testing.T, cfg Config, src string) *Metrics {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, _, err := Simulate(cfg, p, 10_000_000)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return m
}

func mustSim(t *testing.T, cfg Config, p *isa.Program) *Sim {
	t.Helper()
	s, err := New(cfg, p, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// loopOf builds a program running body (with label "loop" available) n times.
func loopOf(n int, body string) string {
	return `
	main:	li r9, 0
		li r20, 65536
		li r21, 139264    ; NOT 64K from r20 (would alias in the D-cache)
	loop:	` + body + `
		add r9, r9, 1
		blt r9, ` + itoa(n) + `, loop
		halt r0
	`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestBaseLoadUseStall(t *testing.T) {
	// In an in-order pipe a dependent use couples iterations to the
	// 2-cycle load latency (Figure 1a); an independent add does not.
	dep := sim(t, Config{}, loopOf(10000, `
		ld8_n r1, r20(0)
		add r2, r1, 1
	`))
	indep := sim(t, Config{}, loopOf(10000, `
		ld8_n r1, r20(0)
		add r2, r3, 1
	`))
	if dep.Cycles <= indep.Cycles {
		t.Errorf("load-use stall not modeled: dep=%d indep=%d", dep.Cycles, indep.Cycles)
	}
	if dep.AvgLoadLatency() < 2 {
		t.Errorf("base load latency %.2f < 2", dep.AvgLoadLatency())
	}
}

func TestPredictPathForwardsStridedLoad(t *testing.T) {
	cfg := Config{
		Select:    SelCompiler,
		Predictor: &addrpred.Config{Entries: 256},
	}
	// 6000 iterations x 8 bytes stay within the 64K cache, so nearly
	// every speculative access is a true hit.
	m := sim(t, cfg, loopOf(6000, `
		ld8_p r1, r20(0)
		add r2, r1, 1
		add r20, r20, 8
	`))
	if m.Predict.Eligible == 0 {
		t.Fatalf("no loads took the predict path: %+v", m.Predict)
	}
	if rate := m.Predict.ForwardRate(); rate < 0.85 {
		t.Errorf("strided ld_p forward rate = %.2f, want > 0.85 (%+v)", rate, m.Predict)
	}
	if m.OneCycleLoads == 0 {
		t.Errorf("no one-cycle loads recorded")
	}
	base := sim(t, Config{}, loopOf(6000, `
		ld8_p r1, r20(0)
		add r2, r1, 1
		add r20, r20, 8
	`))
	if m.Cycles >= base.Cycles {
		t.Errorf("prediction did not speed up strided loop: %d vs %d", m.Cycles, base.Cycles)
	}
}

func TestPredictPathUselessOnRandomAddresses(t *testing.T) {
	// A load whose address is derived from its own loaded value (a
	// pointer chase through a shuffled list) must not be predicted.
	src := `
		.data
		.base 0x10000
	ring:	.addr ring+32
		.space 24
		.addr ring+96
		.space 24
		.addr ring+64
		.space 24
		.addr ring
		.space 24
		.text
	main:	li r9, 0
		li r2, 0x10000
	loop:	ld8_p r2, r2(0)
		add r9, r9, 1
		blt r9, 20000, loop
		halt r0
	`
	cfg := Config{Select: SelCompiler, Predictor: &addrpred.Config{Entries: 64}}
	m := sim(t, cfg, src)
	// The ring hops 0 -> 32 -> 96 -> 0 ... with unequal strides, so the
	// stride machine stays in learning most of the time.
	if rate := m.Predict.ForwardRate(); rate > 0.5 {
		t.Errorf("unpredictable chase forwarded %.2f of loads", rate)
	}
}

func TestEarlyPathZeroCycleLoads(t *testing.T) {
	cfg := Config{
		Select:   SelCompiler,
		RegCache: &earlycalc.Config{Entries: 1},
	}
	// Stable base register: every ld_e after the first should forward
	// with zero effective latency.
	m := sim(t, cfg, loopOf(10000, `
		ld8_e r1, r20(0)
		add r2, r1, 1
	`))
	if m.Early.Eligible == 0 {
		t.Fatalf("no loads took the early path")
	}
	if m.ZeroCycleLoads == 0 {
		t.Errorf("no zero-cycle loads: %+v", m.Early)
	}
	if rate := m.Early.ForwardRate(); rate < 0.9 {
		t.Errorf("stable-base ld_e forward rate = %.2f (%+v)", rate, m.Early)
	}
}

func TestEarlyPathBindingSwitchMisses(t *testing.T) {
	cfg := Config{
		Select:   SelCompiler,
		RegCache: &earlycalc.Config{Entries: 1},
	}
	// Two ld_e loads alternating base registers: each rebinds R_addr,
	// so each misses (the "binding just switched" case).
	m := sim(t, cfg, loopOf(10000, `
		ld8_e r1, r20(0)
		ld8_e r2, r21(0)
	`))
	if m.Early.RegMiss < int64(m.Early.Eligible)/2 {
		t.Errorf("alternating bindings should mostly miss: %+v", m.Early)
	}
	// With two cached registers both bases stay resident.
	cfg.RegCache = &earlycalc.Config{Entries: 2}
	m2 := sim(t, cfg, loopOf(10000, `
		ld8_e r1, r20(0)
		ld8_e r2, r21(0)
	`))
	if m2.Early.ForwardRate() < 0.8 {
		t.Errorf("two-entry cache should hold both bases: %+v", m2.Early)
	}
}

func TestMemInterlockSuppressesForwarding(t *testing.T) {
	cfg := Config{
		Select:   SelCompiler,
		RegCache: &earlycalc.Config{Entries: 1},
	}
	// A store to the loaded address right before the load: the
	// speculative data would be stale, so the formula must veto it.
	m := sim(t, cfg, loopOf(10000, `
		st8 r9, r20(0)
		ld8_e r1, r20(0)
		add r2, r1, 1
	`))
	if m.Early.MemInterlock == 0 {
		t.Errorf("no memory interlocks detected: %+v", m.Early)
	}
}

func TestBranchMispredictCost(t *testing.T) {
	// A data-dependent unpredictable branch pattern (period 2 is fine
	// for 2-bit counters, so use period 3which confuses them) should
	// cost cycles vs a never-taken branch.
	predictable := sim(t, Config{}, loopOf(30000, `
		and r1, r9, 7
		beq r1, 15, loop
	`))
	confusing := sim(t, Config{}, loopOf(30000, `
		and r1, r9, 1
		beq r1, 0, skip
	skip:	add r2, r2, 1
	`))
	_ = confusing
	if predictable.Mispredicts > predictable.Branches/10 {
		t.Errorf("never-taken branch mispredicting: %d/%d",
			predictable.Mispredicts, predictable.Branches)
	}
}

func TestICacheAndDCacheStats(t *testing.T) {
	m := sim(t, Config{}, loopOf(1000, `ld8_n r1, r20(0)`))
	if m.ICacheStats.Accesses == 0 {
		t.Errorf("no icache accesses recorded")
	}
	if m.DCacheStats.Accesses == 0 {
		t.Errorf("no dcache accesses recorded")
	}
	if m.Loads != 1000 {
		t.Errorf("loads = %d, want 1000", m.Loads)
	}
}

func TestDCacheMissPenalty(t *testing.T) {
	// Striding through 1 MiB touches new blocks constantly: many misses;
	// re-walking the same 64 bytes should hit.
	missy := sim(t, Config{}, loopOf(20000, `
		ld8_n r1, r20(0)
		add r2, r1, 1
		add r20, r20, 64
	`))
	hitty := sim(t, Config{}, loopOf(20000, `
		ld8_n r1, r20(0)
		add r2, r1, 1
	`))
	if missy.Cycles < hitty.Cycles+10*int64(missy.DCacheStats.Misses)/2 {
		t.Errorf("miss penalty looks unmodeled: missy=%d hitty=%d misses=%d",
			missy.Cycles, hitty.Cycles, missy.DCacheStats.Misses)
	}
	if missy.DCacheStats.Misses < 15000 {
		t.Errorf("striding by block size should miss ~every load: %+v", missy.DCacheStats)
	}
}

func TestIssueWidthBounds(t *testing.T) {
	m := sim(t, Config{}, loopOf(10000, `
		add r1, r2, 1
		add r3, r4, 1
	`))
	// 4 instructions per iteration + loop overhead; cycles can never be
	// less than insts/6.
	if m.Cycles < m.Insts/6 {
		t.Errorf("IPC exceeds issue width: %d cycles for %d insts", m.Cycles, m.Insts)
	}
	if m.IPC() <= 0 {
		t.Errorf("IPC = %v", m.IPC())
	}
}

func TestALULimit(t *testing.T) {
	// 8 independent adds per iteration with 4 ALUs need >= 2 cycles.
	m := sim(t, Config{}, loopOf(5000, `
		add r1, r1, 1
		add r2, r2, 1
		add r3, r3, 1
		add r4, r4, 1
		add r5, r5, 1
		add r6, r6, 1
		add r7, r7, 1
		add r8, r8, 1
	`))
	perIter := float64(m.Cycles) / 5000
	if perIter < 2 {
		t.Errorf("8 adds/iter on 4 ALUs took %.2f cycles/iter", perIter)
	}
}

func TestSelectionPolicyNames(t *testing.T) {
	names := map[Selection]string{
		SelNone: "none", SelCompiler: "compiler", SelAllPredict: "hw-predict",
		SelAllEarly: "hw-early", SelHWDual: "hw-dual",
	}
	for sel, want := range names {
		if sel.String() != want {
			t.Errorf("%d.String() = %q, want %q", sel, sel.String(), want)
		}
	}
}

func TestHWDualSteering(t *testing.T) {
	cfg := Config{
		Select:    SelHWDual,
		Predictor: &addrpred.Config{Entries: 256},
		RegCache:  &earlycalc.Config{Entries: 16},
	}
	// A chase load (base interlocked) must be steered to the predictor.
	m := sim(t, cfg, `
		.data
		.base 0x10000
	cell:	.addr cell
		.text
	main:	li r9, 0
		li r2, 0x10000
	loop:	ld8_n r2, r2(0)
		add r9, r9, 1
		blt r9, 10000, loop
		halt r0
	`)
	if m.Predict.Eligible == 0 {
		t.Errorf("interlocked load not steered to the prediction path: P=%+v E=%+v",
			m.Predict, m.Early)
	}
}

func TestMetricsDerived(t *testing.T) {
	m := &Metrics{Cycles: 100, Insts: 250, Loads: 10, LoadLatencySum: 15,
		ZeroCycleLoads: 3, OneCycleLoads: 2}
	if m.IPC() != 2.5 {
		t.Errorf("IPC = %v", m.IPC())
	}
	if m.AvgLoadLatency() != 1.5 {
		t.Errorf("avg load latency = %v", m.AvgLoadLatency())
	}
	base := &Metrics{Cycles: 150}
	if m.SpeedupOver(base) != 1.5 {
		t.Errorf("speedup = %v", m.SpeedupOver(base))
	}
	var ps PathStats
	if ps.ForwardRate() != 0 {
		t.Errorf("empty path stats forward rate != 0")
	}
}

func TestTraceReplayDeterministic(t *testing.T) {
	p := asmtest.MustAssemble(t, loopOf(5000, `
		ld8_n r1, r20(0)
		add r20, r20, 8
	`))
	_, trace, err := emu.RunTrace(p, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := mustSim(t, Config{}, p).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := mustSim(t, Config{}, p).Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cycles != m2.Cycles {
		t.Errorf("replay not deterministic: %d vs %d", m1.Cycles, m2.Cycles)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	c := Config{}
	c.fill()
	if c.FetchWidth != 6 || c.IssueWidth != 6 || c.IntALUs != 4 ||
		c.MemPorts != 2 || c.FPALUs != 2 || c.BranchUnits != 1 {
		t.Errorf("defaults do not match Section 5.1: %+v", c)
	}
	if c.LatMul != 3 || c.LatDiv != 8 || c.LatFP != 2 {
		t.Errorf("latency defaults: %+v", c)
	}
	pc := PaperCompilerDirected()
	if pc.Predictor.Entries != 256 || pc.RegCache.Entries != 1 || pc.Select != SelCompiler {
		t.Errorf("paper config wrong: %+v", pc)
	}
}

func TestListingHasNoSurprises(t *testing.T) {
	// Guard against accidental flavour-dependent emulation: the same
	// program with different flavours must produce identical traces.
	base := loopOf(200, `ld8_n r1, r20(0)`)
	alt := strings.ReplaceAll(base, "ld8_n", "ld8_p")
	p1 := asmtest.MustAssemble(t, base)
	p2 := asmtest.MustAssemble(t, alt)
	r1, tr1, _ := emu.RunTrace(p1, 0, true)
	r2, tr2, _ := emu.RunTrace(p2, 0, true)
	if r1.Output() != r2.Output() || tr1.Len() != tr2.Len() {
		t.Errorf("flavour changed architectural behaviour")
	}
}

func TestStageTraceRecordsAndRenders(t *testing.T) {
	p := asmtest.MustAssemble(t, loopOf(100, `
		ld8_n r1, r20(0)
		add r2, r1, 1
	`))
	_, trace, err := emu.RunTrace(p, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, Config{}, p)
	s.EnableStageTrace(12)
	if _, err := s.Run(trace); err != nil {
		t.Fatal(err)
	}
	recs := s.StageTrace()
	if len(recs) != 12 {
		t.Fatalf("recorded %d records, want 12", len(recs))
	}
	for i, r := range recs {
		if r.Fetch < 1 || r.Issue < r.Fetch+3 || r.Done < r.Issue {
			t.Errorf("record %d has inconsistent stages: %+v", i, r)
		}
		if i > 0 && r.Fetch < recs[i-1].Fetch {
			t.Errorf("fetch cycles went backwards at %d", i)
		}
	}
	out := RenderStageTrace(p, recs)
	if !strings.Contains(out, "|F") {
		t.Errorf("rendered trace missing fetch markers:\n%s", out)
	}
	if RenderStageTrace(p, nil) != "" {
		t.Errorf("empty trace should render empty")
	}
}

func TestStageTraceMarksForwardedLoads(t *testing.T) {
	cfg := Config{Select: SelCompiler, RegCache: &earlycalc.Config{Entries: 1}}
	p := asmtest.MustAssemble(t, loopOf(50, `
		ld8_e r1, r20(0)
		add r2, r1, 1
	`))
	_, trace, err := emu.RunTrace(p, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, cfg, p)
	s.EnableStageTrace(trace.Len())
	if _, err := s.Run(trace); err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, r := range s.StageTrace() {
		if r.Forward == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Errorf("no zero-cycle loads marked in the stage trace")
	}
}
