package pipeline

import (
	"reflect"
	"testing"

	"elag/internal/addrpred"
	"elag/internal/asm"
	"elag/internal/earlycalc"
	"elag/internal/emu"
	"elag/internal/isa"
)

// memoTestConfigs covers every speculation path plus the base machine and a
// set-associative cache (which disables the fused DM kernel but not memo).
func memoTestConfigs() []Config {
	return []Config{
		{},
		{Select: SelCompiler, Predictor: &addrpred.Config{Entries: 64},
			RegCache: &earlycalc.Config{Entries: 1}},
		{Select: SelAllPredict, Predictor: &addrpred.Config{Entries: 16}},
		{Select: SelAllEarly, RegCache: &earlycalc.Config{Entries: 4}},
		{Select: SelHWDual, Predictor: &addrpred.Config{Entries: 64},
			RegCache: &earlycalc.Config{Entries: 4}},
	}
}

// normMemo strips the simulator-side memo counters so two Metrics can be
// compared for machine-visible equality.
func normMemo(m *Metrics) Metrics {
	n := *m
	n.Memo = MemoStats{}
	return n
}

// replayModes runs one trace through a fresh Sim per mode and requires every
// machine-visible metric to be byte-identical to the all-off baseline.
func replayModes(t *testing.T, cfg Config, p *isa.Program, trace *emu.Trace, chunk int) MemoStats {
	t.Helper()
	run := func(noMemo, noSpec bool) *Metrics {
		s := mustSim(t, cfg, p)
		s.SetNoMemo(noMemo)
		s.SetNoSpecialize(noSpec)
		if chunk <= 0 {
			m, err := s.Run(trace)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			return m
		}
		for off := 0; off < trace.Len(); off += chunk {
			end := off + chunk
			if end > trace.Len() {
				end = trace.Len()
			}
			if err := s.RunChunk(trace.Slice(off, end)); err != nil {
				t.Fatalf("chunk: %v", err)
			}
		}
		return s.Metrics()
	}
	base := run(true, true) // plain interpreter, generic dispatch
	var fastStats MemoStats
	for _, mode := range []struct {
		name           string
		noMemo, noSpec bool
	}{
		{"memo+spec", false, false},
		{"memo-only", false, true},
		{"spec-only", true, false},
	} {
		got := run(mode.noMemo, mode.noSpec)
		if !mode.noMemo && !mode.noSpec {
			fastStats = got.Memo
		}
		if a, b := normMemo(base), normMemo(got); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s (chunk=%d) diverged from interpreter:\nbase: %+v\ngot:  %+v",
				mode.name, chunk, a, b)
		}
	}
	return fastStats
}

// TestMemoEquivalenceRandomPrograms: memoized and specialized replay must be
// byte-identical to the plain interpreter on random programs across every
// configuration and several chunkings.
func TestMemoEquivalenceRandomPrograms(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		src := genProgram(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		_, trace, err := emu.RunTrace(p, 200_000, true)
		if err != nil {
			t.Fatalf("seed %d: emulate: %v", seed, err)
		}
		for ci, cfg := range memoTestConfigs() {
			for _, chunk := range []int{0, 257, 4096} {
				st := replayModes(t, cfg, p, trace, chunk)
				if testing.Verbose() {
					t.Logf("seed %d cfg %d chunk %d: entries=%d hits=%d (%.0f%% insts) recs=%d bytes=%d",
						seed, ci, chunk, st.BlockEntries, st.Hits,
						100*float64(st.HitInsts)/float64(trace.Len()), st.Recordings, st.Bytes)
				}
			}
		}
	}
}

// TestMemoHitsLoopWorkload: a hot loop must actually hit the memoizer —
// the fast path is pointless if recordings never replay.
func TestMemoHitsLoopWorkload(t *testing.T) {
	src := loopOf(5000, `
		ld8_p r1, r20(0)
		add r2, r1, r2
		ld8_e r3, r21(8)
		st8 r2, r20(64)
		mul r4, r3, 3
	`)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := emu.RunTrace(p, 1_000_000, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Select: SelCompiler, Predictor: &addrpred.Config{Entries: 64},
		RegCache: &earlycalc.Config{Entries: 4}}
	st := replayModes(t, cfg, p, trace, 0)
	if st.Hits == 0 {
		t.Fatalf("hot loop produced no memo hits: %+v", st)
	}
	if got := st.Hits + st.Misses; got != st.BlockEntries {
		t.Fatalf("counter algebra: hits %d + misses %d != entries %d",
			st.Hits, st.Misses, st.BlockEntries)
	}
	t.Logf("loop: %+v hitRate=%.2f instCover=%.2f", st, st.HitRate(),
		float64(st.HitInsts)/float64(trace.Len()))
}

// TestMemoEvictionPressure: a tiny budget must keep evicting recordings and
// fall through to the interpreter — still byte-identical, Evictions > 0,
// and the store never exceeds its budget by more than one recording.
func TestMemoEvictionPressure(t *testing.T) {
	src := genProgram(7)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := emu.RunTrace(p, 300_000, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := memoTestConfigs()[4]
	base := func() *Metrics {
		s := mustSim(t, cfg, p)
		s.SetNoMemo(true)
		m, err := s.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}()
	s := mustSim(t, cfg, p)
	s.SetMemoBudget(4 << 10)
	m, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := normMemo(base), normMemo(m); !reflect.DeepEqual(a, b) {
		t.Fatalf("eviction pressure diverged:\nbase: %+v\ngot:  %+v", a, b)
	}
	if m.Memo.Recordings > 2 && m.Memo.Evictions == 0 {
		t.Fatalf("tiny budget but no evictions: %+v", m.Memo)
	}
	t.Logf("pressure: %+v", m.Memo)
}

// TestMemoAcrossChunkBoundaries: state carried across RunChunk calls must
// let recordings made in one chunk hit in later chunks, and tiny chunks
// (which break blocks unnaturally) must stay byte-identical.
func TestMemoAcrossChunkBoundaries(t *testing.T) {
	src := loopOf(2000, `
		ld8_n r1, r20(0)
		add r2, r1, r2
		st8 r2, r21(0)
	`)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := emu.RunTrace(p, 500_000, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{31, 64, 1000} {
		replayModes(t, Config{}, p, trace, chunk)
	}
}
