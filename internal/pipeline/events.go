package pipeline

import (
	"strings"

	"elag/internal/addrpred"
	"elag/internal/earlycalc"
	"elag/internal/isa"
	"elag/internal/mech"
)

// This file is the cycle-level event layer of the timing model. A Sim with
// no sink attached pays a single nil check per emission site, changes no
// timing state, and allocates nothing: tracing off is the default and is
// free. AttachSink threads one EventSink through the pipeline proper and
// the component models (prediction table, addressing-register cache, the
// two caches and the BTB), after which every architectural-visible
// micro-event of a run is observable in program order.

// FailMask is the bitmask of Section 3.2 forwarding-failure terms recorded
// for a speculation that did not forward. A single failed speculation may
// set several bits (e.g. a mispredicted address that also missed the
// cache). Each bit maps one-to-one onto a PathStats failure counter.
type FailMask uint16

// Failure terms.
const (
	// FailNoPrediction: the ID1 table probe produced no confident
	// prediction (ld_p path only).
	FailNoPrediction FailMask = 1 << iota
	// FailRegMiss: the base register was not cached in R_addr (ld_e).
	FailRegMiss
	// FailRegInterlock: the base register's value was still in flight.
	FailRegInterlock
	// FailMemInterlock: a pending store could overlap the access.
	FailMemInterlock
	// FailNoPort: no data-cache port was free on the speculation cycle.
	FailNoPort
	// FailCacheMiss: the speculative access missed (or its data arrived
	// after the load's EXE stage).
	FailCacheMiss
	// FailAddrMispredict: the predicted address differed from the
	// computed one (ld_p only).
	FailAddrMispredict
)

var failNames = []struct {
	bit  FailMask
	name string
}{
	{FailNoPrediction, "no-prediction"},
	{FailRegMiss, "reg-miss"},
	{FailRegInterlock, "reg-interlock"},
	{FailMemInterlock, "mem-interlock"},
	{FailNoPort, "no-port"},
	{FailCacheMiss, "cache-miss"},
	{FailAddrMispredict, "addr-mispredict"},
}

// String renders the set bits as a stable "+"-joined list.
func (f FailMask) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range failNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "+")
}

// EventKind discriminates cycle-level events.
type EventKind uint8

// Event kinds.
const (
	// EvRetire reports the stage occupancy of one retired instruction:
	// Fetch/Issue/Done cycles (decode spans Fetch+1..Issue-1).
	EvRetire EventKind = iota
	// EvSpecLaunch: a speculative data-cache access was issued from the
	// decode stages (Cycle = access cycle, Addr = speculative address).
	EvSpecLaunch
	// EvSpecForward: speculative data was forwarded to the load (Lat is
	// the effective latency, 0 or 1).
	EvSpecForward
	// EvSpecFail: a load eligible for early address generation did not
	// forward; Fail holds the failure-term bitmask.
	EvSpecFail
	// EvRegBind: an addressing register was (re)bound (Reg, Value).
	EvRegBind
	// EvRegInvalidate: a cached addressing register became incoherent.
	EvRegInvalidate
	// EvRegBroadcast: a register-file write was broadcast to R_addr.
	EvRegBroadcast
	// EvTableTransition: the prediction-table entry for PC stepped its
	// state machine (From/To states, Correct, Alloc).
	EvTableTransition
	// EvCacheAccess: a data-cache access (Hit, Spec; Level is 'D').
	EvCacheAccess
	// EvCacheMiss: a cache miss began at Cycle; the fill completes at
	// the end of FillDone (Level 'I' or 'D', Spec for speculative).
	EvCacheMiss
	// EvBranchResolve: a branch resolved (Taken, Mispredict).
	EvBranchResolve
	// EvStall: the instruction spent Cycles bubbles waiting on Cause
	// before issue.
	EvStall
	// EvMech: the assist mechanism performed an operation (MechOp 'L'
	// lookup, 'T' train, 'A' alloc; Hit for a predicting lookup).
	EvMech
)

// String names the event kind.
func (k EventKind) String() string {
	names := [...]string{"retire", "spec-launch", "spec-forward", "spec-fail",
		"reg-bind", "reg-invalidate", "reg-broadcast", "table-transition",
		"cache-access", "cache-miss", "branch", "stall", "mech"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// StallCause labels why an instruction could not issue on a cycle.
type StallCause uint8

// Stall causes.
const (
	// StallOperand: a source register (scoreboard) interlock.
	StallOperand StallCause = iota
	// StallIssueWidth: the issue group was full.
	StallIssueWidth
	// StallFU: the required functional unit was busy.
	StallFU
)

// String names the stall cause.
func (c StallCause) String() string {
	switch c {
	case StallOperand:
		return "operand"
	case StallIssueWidth:
		return "issue-width"
	case StallFU:
		return "functional-unit"
	}
	return "?"
}

// Event is one cycle-level occurrence in the timing model. The emitting
// Sim reuses a single Event value across calls: sinks that retain events
// must copy them (the struct contains no pointers, so a value copy is a
// deep copy).
type Event struct {
	Kind  EventKind
	Seq   int64 // dynamic instruction sequence number
	PC    int   // static instruction index
	Cycle int64 // primary cycle of the event

	// EvRetire stage occupancy.
	Fetch, Issue, Done int64

	// Speculation (EvSpecLaunch/Forward/Fail).
	Path byte // 'P' (prediction table) or 'E' (early calculation)
	Addr int64
	Lat  int64
	Fail FailMask

	// Memory system (EvCacheAccess/EvCacheMiss).
	Level    byte // 'I' or 'D'
	FillDone int64
	Hit      bool
	Spec     bool

	// Prediction table (EvTableTransition).
	From, To addrpred.State
	Correct  bool
	Alloc    bool

	// Addressing-register cache (EvRegBind/Invalidate/Broadcast).
	Reg   isa.Reg
	Value int64

	// Control (EvBranchResolve).
	Taken      bool
	Mispredict bool

	// EvStall.
	Cause  StallCause
	Cycles int64

	// EvMech: the assist-mechanism operation ('L', 'T', 'A').
	MechOp byte
}

// EventSink receives the event stream of a simulation. Implementations
// must not retain the *Event (it is reused); copy the value instead.
// Sinks are called synchronously from StepInst, in deterministic order.
type EventSink interface {
	Event(ev *Event)
}

// AttachSink connects sink to the simulation and threads observers through
// the component models (prediction table, register cache, caches, BTB).
// Attach before Run; a nil sink detaches everything and restores the
// zero-overhead path.
func (s *Sim) AttachSink(sink EventSink) {
	s.sink = sink
	if sink == nil {
		if s.table != nil {
			s.table.Observer = nil
		}
		if s.regcache != nil {
			s.regcache.Observer = nil
		}
		s.dc.c.Observer = nil
		s.ic.c.Observer = nil
		s.dc.onMiss = nil
		s.ic.onMiss = nil
		s.btb.Observer = nil
		if s.assist != nil {
			s.assist.SetObserver(nil)
		}
		return
	}
	if s.assist != nil {
		s.assist.SetObserver(func(ev mech.Event) {
			op := byte('L')
			switch ev.Op {
			case mech.EvTrain:
				op = 'T'
			case mech.EvAlloc:
				op = 'A'
			}
			s.ev = Event{Kind: EvMech, Seq: s.m.Insts - 1, PC: int(ev.PC),
				Cycle: s.obsCycle, Addr: ev.Addr, Hit: ev.Hit, MechOp: op}
			sink.Event(&s.ev)
		})
	}
	if s.table != nil {
		s.table.Observer = func(ev addrpred.TableEvent) {
			s.ev = Event{Kind: EvTableTransition, Seq: s.m.Insts - 1, PC: ev.PC,
				Cycle: s.obsCycle, From: ev.From, To: ev.To,
				Correct: ev.Correct, Alloc: ev.Alloc}
			sink.Event(&s.ev)
		}
	}
	if s.regcache != nil {
		s.regcache.Observer = func(ev earlycalc.Event) {
			kind := EvRegBind
			switch ev.Op {
			case earlycalc.OpInvalidate:
				kind = EvRegInvalidate
			case earlycalc.OpBroadcast:
				kind = EvRegBroadcast
			}
			s.ev = Event{Kind: kind, Seq: s.m.Insts - 1, Cycle: s.obsCycle,
				Reg: ev.Reg, Value: ev.Value}
			sink.Event(&s.ev)
		}
	}
	s.dc.c.Observer = func(addr int64, hit, spec bool) {
		s.ev = Event{Kind: EvCacheAccess, Seq: s.m.Insts - 1, Cycle: s.obsCycle,
			Level: 'D', Addr: addr, Hit: hit, Spec: spec}
		sink.Event(&s.ev)
	}
	s.dc.onMiss = func(addr, cycle, done int64, spec bool) {
		s.ev = Event{Kind: EvCacheMiss, Seq: s.m.Insts - 1, Cycle: cycle,
			Level: 'D', Addr: addr, FillDone: done, Spec: spec}
		sink.Event(&s.ev)
	}
	s.ic.onMiss = func(addr, cycle, done int64, spec bool) {
		s.ev = Event{Kind: EvCacheMiss, Seq: s.m.Insts - 1, Cycle: cycle,
			Level: 'I', Addr: addr, FillDone: done}
		sink.Event(&s.ev)
	}
	s.btb.Observer = func(pc int, taken, mispredict bool) {
		s.ev = Event{Kind: EvBranchResolve, Seq: s.m.Insts - 1, PC: pc,
			Cycle: s.obsCycle, Taken: taken, Mispredict: mispredict}
		sink.Event(&s.ev)
	}
}

// emit fills the reusable event buffer and delivers it; callers must have
// checked s.sink != nil.
func (s *Sim) emit(ev Event) {
	s.ev = ev
	s.sink.Event(&s.ev)
}
