package pipeline

import "elag/internal/isa"

// The replay hot loop executes a handful of dynamic instructions per static
// one, so everything StepInst would otherwise rediscover per execution —
// instruction class, functional unit, source registers, destination,
// latency, load flavour — is decoded once per PC into a packed instMeta.
// This removes the per-instruction classification switches (IsALU/IsFP/
// IntRegsRead/WritesIntReg/...) from the replay path and is also where the
// flavour overlay is resolved: meta is private to one Sim, so simulations
// with different overlays share the Program without racing.

// Functional-unit selectors (instMeta.fu).
const (
	fuNone uint8 = iota
	fuALU
	fuFP
	fuBr
)

// Instruction-class bits (instMeta.flags).
const (
	mfLoad uint8 = 1 << iota
	mfStore
	mfBranch
	mfFLoad
)

// Early-address-generation path selectors (instMeta.spath): the
// Select/flavor/component-presence decision tree of Sim.speculate, resolved
// per PC at construction so the hot load path dispatches on one byte.
// spHWDual keeps a runtime arm (its steering depends on the scoreboard);
// spGeneric routes through the unspecialized speculate and is what
// SetNoSpecialize rewrites every load to.
const (
	spNone uint8 = iota
	spPredict
	spEarlyDirected
	spEarly
	spHWDual
	spAssist
	spGeneric
)

// instMeta is the per-static-instruction decode cache.
type instMeta struct {
	flags    uint8
	fu       uint8          // functional unit gating issue (fuNone..fuBr)
	flavor   isa.LoadFlavor // overlay-resolved load flavour (loads only)
	spath    uint8          // resolved speculation path (spNone..spGeneric, loads only)
	nInt     uint8          // integer source registers in intRegs[:nInt]
	intRegs  [3]isa.Reg
	fpA, fpB uint8 // FP source registers + 1 (0 = none)
	wInt     uint8 // integer destination register + 1 (0 = none)
	wFP      uint8 // FP destination register + 1 (0 = none)
	lat      int32 // result latency of the non-memory default path
}

func (m *instMeta) isLoad() bool   { return m.flags&mfLoad != 0 }
func (m *instMeta) isStore() bool  { return m.flags&mfStore != 0 }
func (m *instMeta) isBranch() bool { return m.flags&mfBranch != 0 }
func (m *instMeta) isFLoad() bool  { return m.flags&mfFLoad != 0 }

// resolveSPath folds Sim.speculate's dispatch tree for one load: the
// selection policy, the (overlay-resolved) flavour, and whether the
// predictor table / register cache exist are all construction-time
// constants. Only HWDual steering remains a runtime decision.
func resolveSPath(cfg *Config, flavor isa.LoadFlavor) uint8 {
	// An assist mechanism (validated mutually exclusive with the paper
	// structures) drives every load regardless of flavour or selection
	// policy: registry mechanisms model flavour-blind hardware baselines.
	if _, ok := cfg.assistSpec(); ok {
		return spAssist
	}
	hasTable := cfg.Predictor != nil
	hasRC := cfg.RegCache != nil
	switch cfg.Select {
	case SelCompiler:
		switch flavor {
		case isa.LdP:
			if hasTable {
				return spPredict
			}
		case isa.LdE:
			if hasRC {
				return spEarlyDirected
			}
		}
	case SelAllPredict:
		if hasTable {
			return spPredict
		}
	case SelAllEarly:
		if hasRC {
			return spEarly
		}
	case SelHWDual:
		return spHWDual
	}
	return spNone
}

// buildMeta decodes prog under cfg (for latencies) and flavors (nil = the
// flavours baked into the instruction stream).
func buildMeta(prog *isa.Program, cfg *Config, flavors isa.FlavorOverlay) []instMeta {
	meta := make([]instMeta, len(prog.Insts))
	var scratch []isa.Reg
	for pc := range prog.Insts {
		in := &prog.Insts[pc]
		md := &meta[pc]
		if in.IsLoad() {
			md.flags |= mfLoad
			md.flavor = flavors.At(pc, in.Flavor)
			md.spath = resolveSPath(cfg, md.flavor)
		}
		if in.IsStore() {
			md.flags |= mfStore
		}
		if in.IsBranch() {
			md.flags |= mfBranch
		}
		if in.Op == isa.OpFLoad {
			md.flags |= mfFLoad
		}
		switch {
		case in.IsALU():
			md.fu = fuALU
		case in.IsFP():
			md.fu = fuFP
		case in.IsBranch():
			md.fu = fuBr
		}
		scratch = in.IntRegsRead(scratch[:0])
		md.nInt = uint8(len(scratch))
		copy(md.intRegs[:], scratch)
		switch in.Op {
		case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
			md.fpA, md.fpB = uint8(in.Rs1)+1, uint8(in.Rs2)+1
		case isa.OpFMov, isa.OpCvtFI:
			md.fpA = uint8(in.Rs1) + 1
		case isa.OpFStore:
			md.fpA = uint8(in.Rs2) + 1
		}
		md.lat = 1
		switch in.Op {
		case isa.OpMul:
			md.lat = int32(cfg.LatMul)
		case isa.OpDiv, isa.OpRem:
			md.lat = int32(cfg.LatDiv)
		case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFMov, isa.OpCvtIF:
			md.lat = int32(cfg.LatFP)
		}
		if r, ok := in.WritesIntReg(); ok {
			md.wInt = uint8(r) + 1
		}
		if r, ok := in.WritesFPReg(); ok {
			md.wFP = uint8(r) + 1
		}
	}
	return meta
}
