package pipeline

// The specialized chunk walker: the per-chunk replay loop that tiles the
// trace into static blocks, consults the block-timing memoizer (memo.go) at
// each tile head, and falls through to the generic interpreter (StepInst)
// on any miss or disqualifying condition. Both RunChunk and RunChunkBatch
// route through runChunkCols, so sequential, streamed, and batched replays
// share one fast path. The interpreter remains the source of truth: every
// recording is made by interpreting, and every gate failure simply
// interprets, so outputs are byte-identical with the fast path on or off.

import (
	"elag/internal/addrpred"
	"elag/internal/bpred"
	"elag/internal/cache"
	"elag/internal/earlycalc"
	"elag/internal/emu"
	"elag/internal/isa"
	"elag/internal/mech"
)

// refreshFastPaths re-derives the per-chunk fast-path eligibility flags.
// It runs at chunk boundaries only, so observers attached or detached
// between runs are honored without any per-instruction cost.
func (s *Sim) refreshFastPaths() {
	_, _, _, icAssoc := s.ic.c.Geometry()
	_, _, _, dcAssoc := s.dc.c.Geometry()
	s.ic.fast = !s.noSpec && icAssoc == 1 && s.ic.c.Observer == nil
	s.dc.fast = !s.noSpec && dcAssoc == 1 && s.dc.c.Observer == nil
	// Memoization requires that nothing observes per-instruction or
	// per-access behaviour: an attached sink, per-PC attribution, stage
	// tracing, or any component observer forces full interpretation
	// (which is trivially byte-identical).
	s.memoOK = !s.noMemo && s.sink == nil && s.attrib == nil && s.traceCap == 0 &&
		s.ic.c.Observer == nil && s.dc.c.Observer == nil &&
		s.ic.onMiss == nil && s.dc.onMiss == nil &&
		s.btb.Observer == nil &&
		(s.table == nil || s.table.Observer == nil) &&
		(s.regcache == nil || s.regcache.Observer == nil) &&
		(s.assist == nil || !s.assist.HasObserver())
}

// SetNoMemo disables (true) or re-enables (false) basic-block timing
// memoization for this Sim. Results are byte-identical either way; the
// switch exists as an escape hatch and for differential testing.
func (s *Sim) SetNoMemo(v bool) { s.noMemo = v }

// SetNoSpecialize disables (true) or re-enables (false) the
// config-specialized kernels: the per-PC speculation-path dispatch and the
// fused direct-mapped cache access. Results are byte-identical either way.
func (s *Sim) SetNoSpecialize(v bool) {
	s.noSpec = v
	for i := range s.meta {
		md := &s.meta[i]
		if md.flags&mfLoad == 0 {
			continue
		}
		if v {
			md.spath = spGeneric
		} else {
			md.spath = resolveSPath(&s.cfg, md.flavor)
		}
	}
}

// SetMemoBudget overrides the byte budget of the block-recording store
// (default DefaultMemoBudget). Tiny budgets force constant eviction and
// fall-through to the interpreter — useful for pressure testing.
func (s *Sim) SetMemoBudget(n int) {
	if s.memo == nil {
		s.memo = newBlockMemo(len(s.prog.Insts))
	}
	s.memo.budget = n
	for s.memo.bytes > s.memo.budget && s.memo.mru != s.memo.lru {
		s.memo.evict(s.memo.lru)
	}
	s.memo.stats.Bytes = int64(s.memo.bytes)
}

// MemoStats returns the memoizer's counters so far (zero if memoization
// never engaged).
func (s *Sim) MemoStats() MemoStats {
	st := MemoStats{}
	if s.memo != nil {
		st = s.memo.stats
	}
	st.Kernel = s.KernelID()
	return st
}

// KernelID identifies the replay kernel variant this Sim currently selects:
// 0 = generic dispatch (SetNoSpecialize), 1 = specialized speculation-path
// dispatch, 2 = specialized dispatch plus fused direct-mapped cache leaves
// for both caches.
func (s *Sim) KernelID() int {
	if s.noSpec {
		return 0
	}
	s.refreshFastPaths()
	if s.ic.fast && s.dc.fast {
		return 2
	}
	return 1
}

// blockExtent tiles the trace at i: the block runs through the last taken
// control transfer within the next memoMaxLen entries (a superblock — the
// dynamic path is part of the block's identity), or the full window if none
// ends it. A window truncated by the chunk end without a transfer is not a
// natural block (the same head would tile differently under another chunk
// size in recording extent — but recordings are keyed by content, so only
// the hit rate, never correctness, depends on tiling).
func blockExtent(pcs, nextPCs []int32, i, n int) (L int, natural bool) {
	end := i + memoMaxLen
	full := end <= n
	if !full {
		end = n
	}
	last := -1
	for j := i; j < end; j++ {
		if nextPCs[j] != pcs[j]+1 {
			last = j
		}
	}
	if last >= 0 {
		return last - i + 1, true
	}
	if full {
		return memoMaxLen, true
	}
	return end - i, false
}

// runChunkCols is the shared chunk walker over hoisted trace columns.
func (s *Sim) runChunkCols(pcs, nextPCs []int32, eas, baseVals []int64, takens []bool, seq0 int64) error {
	s.refreshFastPaths()
	n := len(pcs)
	var te emu.TraceEntry
	if !s.memoOK {
		for i := 0; i < n; i++ {
			te.PC = int(pcs[i])
			te.SeqNum = seq0 + int64(i)
			te.EA = eas[i]
			te.BaseVal = baseVals[i]
			te.Taken = takens[i]
			te.NextPC = int(nextPCs[i])
			if err := s.StepInst(&te); err != nil {
				return err
			}
		}
		return nil
	}
	if s.memo == nil {
		s.memo = newBlockMemo(len(s.prog.Insts))
	}
	mm := s.memo
	i, tryAt, recEnd := 0, 0, -1
	if mm.dead {
		tryAt = n // payoff audit shut the memoizer off: pure interpretation
	}
	for i < n {
		if s.rec == nil && i == tryAt {
			L, natural := blockExtent(pcs, nextPCs, i, n)
			if natural && L >= memoMinLen && s.seq >= frontEndSlots &&
				int(pcs[i]) >= 0 && int(pcs[i]) < len(mm.heads) {
				key := memoHash(pcs, nextPCs, eas, i, L)
				mm.stats.BlockEntries++
				if mm.stats.BlockEntries%memoProbation == 0 {
					if mm.audit(); mm.dead {
						// The kill fired before this entry's lookup ran;
						// uncount it so Hits+Misses==BlockEntries stays exact.
						mm.stats.BlockEntries--
						tryAt = n
						continue
					}
				}
				if r := s.memoFind(key, pcs, nextPCs, eas, takens, i, L); r != nil {
					s.memoApply(r)
					mm.stats.Hits++
					mm.stats.HitInsts += int64(L)
					mm.noteHit(r)
					mm.touch(r)
					i += L
					tryAt = i
					continue
				}
				mm.stats.Misses++
				if mm.shouldRecord(pcs[i]) {
					s.beginRecording(i)
					recEnd = i + L
				}
			}
			tryAt = i + L
		}
		te.PC = int(pcs[i])
		te.SeqNum = seq0 + int64(i)
		te.EA = eas[i]
		te.BaseVal = baseVals[i]
		te.Taken = takens[i]
		te.NextPC = int(nextPCs[i])
		if err := s.StepInst(&te); err != nil {
			if s.rec != nil {
				s.detachRecorder()
			}
			return err
		}
		i++
		if i == recEnd && s.rec != nil {
			s.finishRecording(pcs, nextPCs, eas, takens, i-s.rec.start)
			recEnd = -1
		}
	}
	return nil
}

// memoFind walks the bucket chain for key: a hit must match the block's
// dynamic content (columns) and its entry-state guard. Several recordings
// of one head with different entry states coexist on the chain.
func (s *Sim) memoFind(key uint64, pcs, nextPCs []int32, eas []int64, takens []bool, i, L int) *memoRec {
	colMatch := false
	for r := s.memo.buckets[key]; r != nil; r = r.bnext {
		if int(r.n) != L || r.headPC != pcs[i] {
			continue
		}
		if !colsEqual(r, pcs, nextPCs, eas, takens, i, L) {
			continue
		}
		colMatch = true
		if s.guardMatch(r) {
			return r
		}
	}
	if colMatch {
		s.memo.stats.GuardMisses++
	}
	return nil
}

func colsEqual(r *memoRec, pcs, nextPCs []int32, eas []int64, takens []bool, i, L int) bool {
	for j := 0; j < L; j++ {
		if r.pcs[j] != pcs[i+j] || r.nextPCs[j] != nextPCs[i+j] ||
			r.eas[j] != eas[i+j] || r.takens[j] != takens[i+j] {
			return false
		}
	}
	return true
}

// ---- recording lifecycle ---------------------------------------------

func (s *Sim) beginRecording(i int) {
	if s.recArena == nil {
		s.recArena = &memoRecorder{}
	}
	r := s.recArena
	r.reset()
	r.start = i
	r.base = s.nextFetch
	r.preRegReady = s.regReady
	r.preFPReady = s.fpReady
	r.preHist = s.issueHist
	r.preSeqIdx = s.seqIdx
	r.preGroupCycle = s.groupCycle
	r.preGroupCount = s.groupCount
	r.preLastIssue = s.lastIssue
	r.preICLastBlock = s.icLastBlock
	r.preICLastCycle = s.icLastCycle
	r.preICLastReady = s.icLastReady
	r.preStoreMax = s.storeMaxMem
	r.preStores = s.stores
	r.preStoreHead = s.storeHead
	r.preICLive = collectLiveFills(s.ic, r.base, r.preICLive[:0])
	r.preDCLive = collectLiveFills(s.dc, r.base, r.preDCLive[:0])
	// maxDone is never read inside StepInst, only raised; zeroing it for
	// the block's duration isolates the block's own maximum, and the
	// restore below merges it back. No observable difference.
	r.savedMaxDone = s.maxDone
	s.maxDone = 0
	r.preStampIC = s.ic.c.Stamp()
	r.preStampDC = s.dc.c.Stamp()
	if s.table != nil {
		r.preStampTab = s.table.Stamp()
	}
	if s.regcache != nil {
		r.preStampRC = s.regcache.Stamp()
	}
	if s.assist != nil {
		r.preStampMech = s.assist.Stamp()
	}
	r.preM = captureMetrics(&s.m)
	r.preICStats = s.ic.c.Stats()
	r.preDCStats = s.dc.c.Stats()
	r.preBTBStats = s.btb.Stats()
	if s.table != nil {
		r.preTabStats = s.table.Stats()
	}
	if s.regcache != nil {
		r.preRCStats = s.regcache.Stats()
	}
	if s.assist != nil {
		r.preMechStats = s.assist.Stats()
	}
	s.rec = r
	s.ic.rec = r
	s.dc.rec = r
}

// detachRecorder ends capture (successful or not) and merges the saved
// maxDone back with the block's own maximum.
func (s *Sim) detachRecorder() {
	if s.maxDone < s.rec.savedMaxDone {
		s.maxDone = s.rec.savedMaxDone
	}
	s.rec = nil
	s.ic.rec = nil
	s.dc.rec = nil
}

// finishRecording finalizes the capture into a memoRec and inserts it.
// Aborted or malformed recordings are discarded; the block was interpreted
// normally either way, so discarding costs only the lost future hits.
func (s *Sim) finishRecording(pcs, nextPCs []int32, eas []int64, takens []bool, L int) {
	r := s.rec
	b := r.base
	start := r.start
	blockMax := s.maxDone // block-local: maxDone was zeroed at begin
	s.detachRecorder()
	r.active = false
	if r.aborted {
		return
	}
	// Exit-state validation: every exit scalar must sit at or above B (the
	// soundness argument proves they do; a violation means a modeling
	// change broke an invariant, and we fail safe by not recording).
	if s.nextFetch < b || s.groupCycle < b || s.lastIssue < b+3 ||
		s.icLastCycle < b || s.icLastReady < b || blockMax <= b {
		return
	}

	// Recordings come from a free pool (capacity survives eviction), so
	// every field — scalar and slice — is assigned or rebuilt here; nothing
	// below may rely on zero values from allocation.
	rec := s.memo.newRec()
	rec.key = memoHash(pcs, nextPCs, eas, start, L)
	rec.headPC = pcs[start]
	rec.n = int32(L)

	rec.groupRel = clampGroup(r.preGroupCycle, b)
	rec.groupCount = int32(r.preGroupCount)
	rec.lastIssueRel = clampLastIssue(r.preLastIssue, b)
	rec.icLastBlock = r.preICLastBlock
	rec.icCycleRel = clampICCycle(r.preICLastCycle, b)
	rec.icReadyRel = clampICReady(r.preICLastReady, b)
	rec.storeMaxRel = clampStoreMax(r.preStoreMax, b)

	rec.exitFetchRel = s.nextFetch - b
	rec.exitGroupRel = s.groupCycle - b
	rec.exitGroupCount = int32(s.groupCount)
	rec.exitLastIssueRel = s.lastIssue - b
	rec.exitICBlock = s.icLastBlock
	rec.exitICCycleRel = s.icLastCycle - b
	rec.exitICReadyRel = s.icLastReady - b
	rec.blockMaxRel = blockMax - b

	rec.icStampDelta = s.ic.c.Stamp() - r.preStampIC
	rec.dcStampDelta = s.dc.c.Stamp() - r.preStampDC

	rec.dICStats = subCacheStats(s.ic.c.Stats(), r.preICStats)
	rec.dDCStats = subCacheStats(s.dc.c.Stats(), r.preDCStats)
	rec.dBTBStats = bpred.Stats{Branches: s.btb.Stats().Branches - r.preBTBStats.Branches, Mispredicts: s.btb.Stats().Mispredicts - r.preBTBStats.Mispredicts}
	rec.dm = r.preM.subFrom(captureMetrics(&s.m))

	rec.pcs = append(rec.pcs[:0], pcs[start:start+L]...)
	rec.nextPCs = append(rec.nextPCs[:0], nextPCs[start:start+L]...)
	rec.eas = append(rec.eas[:0], eas[start:start+L]...)
	rec.takens = append(rec.takens[:0], takens[start:start+L]...)

	for k := 0; k < frontEndSlots; k++ {
		idx := r.preSeqIdx + k
		if idx >= frontEndSlots {
			idx -= frontEndSlots
		}
		rec.histPre[k] = clampHist(r.preHist[idx], b)
	}
	m := L
	if m > frontEndSlots {
		m = frontEndSlots
	}
	rec.histPost = rec.histPost[:0]
	for k := 0; k < m; k++ {
		idx := s.seqIdx - 1 - k
		for idx < 0 {
			idx += frontEndSlots
		}
		v := s.issueHist[idx] - b
		if v < 3 { // in-block issues are always >= B+3
			s.memo.release(rec)
			return
		}
		rec.histPost = append(rec.histPost, v)
	}

	// Register read/write sets from the decode metadata, mirroring
	// StepInst's own read and write structure exactly. (Diffing post
	// against pre values would be unsound: a write landing on a value
	// equal to the pre value would be dropped, then skipped at an
	// occurrence whose pre value differs.)
	clear(r.intR[:])
	clear(r.fpR[:])
	clear(r.intW[:])
	clear(r.fpW[:])
	nStores := 0
	for j := start; j < start+L; j++ {
		pc := int(pcs[j])
		in := &s.prog.Insts[pc]
		md := &s.meta[pc]
		for _, rr := range md.intRegs[:md.nInt] {
			r.intR[rr] = true
		}
		if md.fpA != 0 {
			r.fpR[md.fpA-1] = true
		}
		if md.fpB != 0 {
			r.fpR[md.fpB-1] = true
		}
		switch {
		case md.isLoad():
			if md.isFLoad() {
				r.fpW[in.Rd] = true
			} else if in.Rd != isa.RegZero {
				r.intW[in.Rd] = true
			}
		case md.isStore():
			nStores++
		case md.isBranch():
		default:
			if md.wInt != 0 {
				r.intW[md.wInt-1] = true
			}
			if md.wFP != 0 {
				r.fpW[md.wFP-1] = true
			}
		}
		if in.Op == isa.OpCall && in.Rd != isa.RegZero {
			r.intW[in.Rd] = true
		}
	}
	rec.intReads, rec.fpReads = rec.intReads[:0], rec.fpReads[:0]
	rec.intWrites, rec.fpWrites = rec.intWrites[:0], rec.fpWrites[:0]
	for reg := 0; reg < isa.NumIntRegs; reg++ {
		if r.intR[reg] {
			rec.intReads = append(rec.intReads, regRel{r: uint8(reg), rel: clampReg(r.preRegReady[reg], b)})
		}
		if r.intW[reg] {
			rel := s.regReady[reg] - b
			if rel <= 0 {
				s.memo.release(rec)
				return
			}
			rec.intWrites = append(rec.intWrites, regRel{r: uint8(reg), rel: rel})
		}
	}
	for reg := 0; reg < isa.NumFPRegs; reg++ {
		if r.fpR[reg] {
			rec.fpReads = append(rec.fpReads, regRel{r: uint8(reg), rel: clampReg(r.preFPReady[reg], b)})
		}
		if r.fpW[reg] {
			rel := s.fpReady[reg] - b
			if rel <= 0 {
				s.memo.release(rec)
				return
			}
			rec.fpWrites = append(rec.fpWrites, regRel{r: uint8(reg), rel: rel})
		}
	}

	// Resource windows: guard the pre counts over every probed cycle,
	// record the positive deltas. Untouched tracks must be cleared — the
	// pooled rec may carry a prior block's windows.
	rec.resAdds = rec.resAdds[:0]
	for tr := 0; tr < numTracks; tr++ {
		g := &rec.res[tr]
		if !r.resTouched[tr] || r.resMaxRel[tr] < 2 {
			g.q = 0
			g.pre = g.pre[:0]
			continue
		}
		q := r.resMaxRel[tr]
		g.q = int32(q)
		g.pre = append(g.pre[:0], r.resWin[tr][:q-1]...)
		for j := int64(0); j <= q-2; j++ {
			cur := s.tracks[tr].peek(b + 2 + j)
			if d := cur - g.pre[j]; d > 0 {
				rec.resAdds = append(rec.resAdds, resAdd{tr: uint8(tr), rel: int32(2 + j), add: d})
			}
		}
	}

	// Live stores at entry, in backward ring order from the head: the
	// offsets pin which slots in-block stores overwrite.
	rec.liveStores = rec.liveStores[:0]
	for k := 1; k <= len(r.preStores); k++ {
		slot := r.preStoreHead - k
		if slot < 0 {
			slot += len(r.preStores)
		}
		st := &r.preStores[slot]
		if st.mem-b < 2 {
			continue
		}
		rec.liveStores = append(rec.liveStores, storeLive{
			back: uint8(k), exeRel: clampStoreExe(st.exe, b),
			memRel: st.mem - b, ea: st.ea, width: st.width,
		})
	}
	// In-block stores: recordStore wrote them in order at the pre head.
	rec.storeAdds = rec.storeAdds[:0]
	for j := 0; j < nStores; j++ {
		slot := (r.preStoreHead + j) % len(s.stores)
		st := &s.stores[slot]
		rec.storeAdds = append(rec.storeAdds, storeAdd{
			exeRel: st.exe - b, memRel: st.mem - b, ea: st.ea, width: st.width,
		})
	}

	rec.icFills = append(rec.icFills[:0], r.icFills...)
	rec.dcFills = append(rec.dcFills[:0], r.dcFills...)
	rec.icLive = append(rec.icLive[:0], r.preICLive...)
	rec.dcLive = append(rec.dcLive[:0], r.preDCLive...)

	rec.icSets, rec.wayPre, rec.icPatch = appendSetGuards(s.ic.c, r.icTouched, r.wayBuf,
		r.preStampIC, &r.snapScratch, rec.icSets[:0], rec.wayPre[:0], rec.icPatch[:0])
	rec.dcSets, rec.wayPre, rec.dcPatch = appendSetGuards(s.dc.c, r.dcTouched, r.wayBuf,
		r.preStampDC, &r.snapScratch, rec.dcSets[:0], rec.wayPre, rec.dcPatch[:0])

	rec.tabSets, rec.tabPre, rec.tabPatch = rec.tabSets[:0], rec.tabPre[:0], rec.tabPatch[:0]
	rec.tabStampDelta = 0
	rec.dTabStats = addrpred.Stats{}
	if s.table != nil {
		rec.tabStampDelta = s.table.Stamp() - r.preStampTab
		rec.dTabStats = addrpred.Stats{
			Probes:      s.table.Stats().Probes - r.preTabStats.Probes,
			ProbeHits:   s.table.Stats().ProbeHits - r.preTabStats.ProbeHits,
			Predictions: s.table.Stats().Predictions - r.preTabStats.Predictions,
			Correct:     s.table.Stats().Correct - r.preTabStats.Correct,
			Allocations: s.table.Stats().Allocations - r.preTabStats.Allocations,
		}
		for _, ts := range r.tabSets {
			pre := r.tabBuf[ts.off : ts.off+ts.n]
			rec.tabSets = append(rec.tabSets, setRef{set: ts.set, off: int32(len(rec.tabPre)), n: ts.n})
			rec.tabPre = append(rec.tabPre, pre...)
			r.tabScratch = s.table.SnapSet(ts.set, r.tabScratch[:0])
			for w := range r.tabScratch {
				if r.tabScratch[w] != pre[w] {
					snap := r.tabScratch[w]
					snap.LRU -= r.preStampTab
					rec.tabPatch = append(rec.tabPatch, tabPatch{set: ts.set, way: uint8(w), snap: snap})
				}
			}
		}
	}

	rec.mechSets, rec.mechPre, rec.mechPatch = rec.mechSets[:0], rec.mechPre[:0], rec.mechPatch[:0]
	rec.mechStampDelta = 0
	rec.dMechStat = mech.Stats{}
	if s.assist != nil {
		rec.mechStampDelta = s.assist.Stamp() - r.preStampMech
		rec.dMechStat = s.assist.Stats().Sub(r.preMechStats)
		for _, ms := range r.mechSets {
			pre := r.mechBuf[ms.off : ms.off+ms.n]
			rec.mechSets = append(rec.mechSets, setRef{set: ms.set, off: int32(len(rec.mechPre)), n: ms.n})
			rec.mechPre = append(rec.mechPre, pre...)
			r.mechScratch = s.assist.SnapSet(int(ms.set), r.mechScratch[:0])
			for w := range r.mechScratch {
				if r.mechScratch[w] != pre[w] {
					snap := r.mechScratch[w]
					snap.LRU -= r.preStampMech
					rec.mechPatch = append(rec.mechPatch, mechPatch{set: ms.set, way: uint8(w), snap: snap})
				}
			}
		}
	}

	rec.btbs, rec.btbPatch = rec.btbs[:0], rec.btbPatch[:0]
	for bi, idx := range r.btbIdx {
		rec.btbs = append(rec.btbs, btbGuard{idx: idx, snap: r.btbPre[bi]})
		if post := s.btb.SnapEntry(idx); post != r.btbPre[bi] {
			rec.btbPatch = append(rec.btbPatch, btbGuard{idx: idx, snap: post})
		}
	}

	rec.rc, rec.rcPatchs = rec.rc[:0], rec.rcPatchs[:0]
	rec.rcStampDelta = 0
	rec.dRCStats = earlycalc.Stats{}
	if s.regcache != nil {
		rec.rcStampDelta = s.regcache.Stamp() - r.preStampRC
		rec.dRCStats = earlycalc.Stats{
			Lookups: s.regcache.Stats().Lookups - r.preRCStats.Lookups,
			Hits:    s.regcache.Stats().Hits - r.preRCStats.Hits,
			Binds:   s.regcache.Stats().Binds - r.preRCStats.Binds,
		}
		if r.rcTouched {
			rec.rc = append(rec.rc[:0], r.rcPre...)
			r.rcScratch = s.regcache.Snap(r.rcScratch[:0])
			for w := range r.rcScratch {
				if r.rcScratch[w] != r.rcPre[w] {
					snap := r.rcScratch[w]
					snap.LRU -= r.preStampRC
					rec.rcPatchs = append(rec.rcPatchs, rcPatch{idx: uint8(w), snap: snap})
				}
			}
		}
	}

	s.memo.insert(rec)
}

// appendSetGuards diffs the touched sets of one cache against their
// pre-snapshots, appending set refs into refs, pre snapshots into the
// recording's shared arena, and changed-way patches (LRU stamp-relative)
// into patches. ic and dc share one arena: ic appends first, dc continues.
func appendSetGuards(c *cache.Cache, touched []recSet, buf []cache.WaySnap, preStamp int64,
	scratch *[]cache.WaySnap, refs []setRef, arena []cache.WaySnap, patches []wayPatch,
) ([]setRef, []cache.WaySnap, []wayPatch) {
	for _, ts := range touched {
		pre := buf[ts.off : ts.off+ts.n]
		refs = append(refs, setRef{set: ts.set, off: int32(len(arena)), n: ts.n})
		arena = append(arena, pre...)
		*scratch = c.SnapSet(ts.set, (*scratch)[:0])
		for w := range *scratch {
			if (*scratch)[w] != pre[w] {
				snap := (*scratch)[w]
				snap.LRU -= preStamp
				patches = append(patches, wayPatch{set: ts.set, way: uint8(w), snap: snap})
			}
		}
	}
	return refs, arena, patches
}

// ---- guard ------------------------------------------------------------

// guardMatch reports whether the Sim's current state at block entry
// (B = nextFetch) lies in the same equivalence class as the recording's.
func (s *Sim) guardMatch(r *memoRec) bool {
	b := s.nextFetch
	if clampGroup(s.groupCycle, b) != r.groupRel {
		return false
	}
	if r.groupRel == 0 && int32(s.groupCount) != r.groupCount {
		return false
	}
	if clampLastIssue(s.lastIssue, b) != r.lastIssueRel ||
		s.icLastBlock != r.icLastBlock ||
		clampICCycle(s.icLastCycle, b) != r.icCycleRel ||
		clampICReady(s.icLastReady, b) != r.icReadyRel ||
		clampStoreMax(s.storeMaxMem, b) != r.storeMaxRel {
		return false
	}
	for k := 0; k < frontEndSlots; k++ {
		idx := s.seqIdx + k
		if idx >= frontEndSlots {
			idx -= frontEndSlots
		}
		if clampHist(s.issueHist[idx], b) != r.histPre[k] {
			return false
		}
	}
	for _, rr := range r.intReads {
		if clampReg(s.regReady[rr.r], b) != rr.rel {
			return false
		}
	}
	for _, rr := range r.fpReads {
		if clampReg(s.fpReady[rr.r], b) != rr.rel {
			return false
		}
	}
	for tr := 0; tr < numTracks; tr++ {
		g := &r.res[tr]
		t := s.tracks[tr]
		for j := range g.pre {
			if t.peek(b+2+int64(j)) != g.pre[j] {
				return false
			}
		}
	}
	li := 0
	for k := 1; k <= len(s.stores); k++ {
		slot := s.storeHead - k
		if slot < 0 {
			slot += len(s.stores)
		}
		st := &s.stores[slot]
		if st.mem-b < 2 {
			continue
		}
		if li >= len(r.liveStores) {
			return false
		}
		lv := &r.liveStores[li]
		if lv.back != uint8(k) || lv.memRel != st.mem-b || lv.ea != st.ea ||
			lv.width != st.width || lv.exeRel != clampStoreExe(st.exe, b) {
			return false
		}
		li++
	}
	if li != len(r.liveStores) {
		return false
	}
	for i := range r.btbs {
		if s.btb.SnapEntry(r.btbs[i].idx) != r.btbs[i].snap {
			return false
		}
	}
	if len(r.rc) > 0 {
		cur := s.regcache.Snap(s.recArena.rcScratch[:0])
		s.recArena.rcScratch = cur
		if len(cur) != len(r.rc) {
			return false
		}
		for i := range cur {
			// Value is dead state at entry: it is either discarded by
			// the lookup path or overwritten by the trace-pinned Bind
			// before any use, so it is excluded from the guard.
			if cur[i].Used != r.rc[i].Used || cur[i].Reg != r.rc[i].Reg || cur[i].Valid != r.rc[i].Valid {
				return false
			}
		}
		if !rankEqualRC(r.rc, cur) {
			return false
		}
	}
	for i := range r.tabSets {
		g := &r.tabSets[i]
		pre := r.tabPre[g.off : g.off+g.n]
		cur := s.table.SnapSet(g.set, s.recArena.tabScratch[:0])
		s.recArena.tabScratch = cur
		for w := range cur {
			if cur[w].Tag != pre[w].Tag || cur[w].E != pre[w].E {
				return false
			}
		}
		if !rankEqualTab(pre, cur) {
			return false
		}
	}
	for i := range r.mechSets {
		g := &r.mechSets[i]
		pre := r.mechPre[g.off : g.off+g.n]
		cur := s.assist.SnapSet(int(g.set), s.recArena.mechScratch[:0])
		s.recArena.mechScratch = cur
		for w := range cur {
			if cur[w].Tag != pre[w].Tag || cur[w].V != pre[w].V {
				return false
			}
		}
		if !rankEqualMech(pre, cur) {
			return false
		}
	}
	if !matchSets(s.ic.c, r.icSets, r.wayPre, s.recArena) ||
		!matchSets(s.dc.c, r.dcSets, r.wayPre, s.recArena) {
		return false
	}
	if !matchLiveFills(s.ic, r.icLive, b, s.recArena) ||
		!matchLiveFills(s.dc, r.dcLive, b, s.recArena) {
		return false
	}
	return true
}

func matchLiveFills(t *timedCache, want []fillLive, b int64, arena *memoRecorder) bool {
	cur := collectLiveFills(t, b, arena.fillScratch[:0])
	arena.fillScratch = cur
	if len(cur) != len(want) {
		return false
	}
	for i := range cur {
		if cur[i] != want[i] {
			return false
		}
	}
	return true
}

func matchSets(c *cache.Cache, refs []setRef, wayPre []cache.WaySnap, arena *memoRecorder) bool {
	for i := range refs {
		g := &refs[i]
		pre := wayPre[g.off : g.off+g.n]
		cur := c.SnapSet(g.set, arena.snapScratch[:0])
		arena.snapScratch = cur
		for w := range cur {
			if cur[w].Valid != pre[w].Valid || cur[w].Tag != pre[w].Tag {
				return false
			}
		}
		if !rankEqualWays(pre, cur) {
			return false
		}
	}
	return true
}

// LRU stamps matter only through order (and ties), never magnitude:
// every replacement and touch decision compares stamps pairwise.
func rankEqualWays(pre, cur []cache.WaySnap) bool {
	for i := range pre {
		for j := i + 1; j < len(pre); j++ {
			if (pre[i].LRU < pre[j].LRU) != (cur[i].LRU < cur[j].LRU) ||
				(pre[i].LRU == pre[j].LRU) != (cur[i].LRU == cur[j].LRU) {
				return false
			}
		}
	}
	return true
}

func rankEqualTab(pre, cur []addrpred.EntrySnap) bool {
	for i := range pre {
		for j := i + 1; j < len(pre); j++ {
			if (pre[i].LRU < pre[j].LRU) != (cur[i].LRU < cur[j].LRU) ||
				(pre[i].LRU == pre[j].LRU) != (cur[i].LRU == cur[j].LRU) {
				return false
			}
		}
	}
	return true
}

func rankEqualMech(pre, cur []mech.EntrySnap) bool {
	for i := range pre {
		for j := i + 1; j < len(pre); j++ {
			if (pre[i].LRU < pre[j].LRU) != (cur[i].LRU < cur[j].LRU) ||
				(pre[i].LRU == pre[j].LRU) != (cur[i].LRU == cur[j].LRU) {
				return false
			}
		}
	}
	return true
}

func rankEqualRC(pre, cur []earlycalc.EntrySnap) bool {
	for i := range pre {
		for j := i + 1; j < len(pre); j++ {
			if (pre[i].LRU < pre[j].LRU) != (cur[i].LRU < cur[j].LRU) ||
				(pre[i].LRU == pre[j].LRU) != (cur[i].LRU == cur[j].LRU) {
				return false
			}
		}
	}
	return true
}

// ---- apply ------------------------------------------------------------

// memoApply replays the recording's effects at the current entry cycle
// B = nextFetch. Every write mirrors what interpretation would have left,
// up to dead state (see the package comment in memo.go).
func (s *Sim) memoApply(r *memoRec) {
	b := s.nextFetch
	r.dm.addTo(&s.m)
	s.ic.c.AddStats(r.dICStats)
	s.dc.c.AddStats(r.dDCStats)
	s.btb.AddStats(r.dBTBStats)
	if s.table != nil {
		s.table.AddStats(r.dTabStats)
	}
	if s.regcache != nil {
		s.regcache.AddStats(r.dRCStats)
	}
	if s.assist != nil {
		s.assist.AddStats(r.dMechStat)
	}
	for _, w := range r.intWrites {
		s.regReady[w.r] = b + w.rel
	}
	for _, w := range r.fpWrites {
		s.fpReady[w.r] = b + w.rel
	}
	L := int(r.n)
	s.seq += int64(L)
	s.seqIdx += L % frontEndSlots
	if s.seqIdx >= frontEndSlots {
		s.seqIdx -= frontEndSlots
	}
	for k, rel := range r.histPost {
		idx := s.seqIdx - 1 - k
		for idx < 0 {
			idx += frontEndSlots
		}
		s.issueHist[idx] = b + rel
	}
	for _, a := range r.resAdds {
		*s.tracks[a.tr].at(b + int64(a.rel)) += a.add
	}
	for _, sa := range r.storeAdds {
		s.recordStore(b+sa.exeRel, b+sa.memRel, sa.ea, sa.width)
	}
	applyFills(s.ic, r.icFills, b)
	applyFills(s.dc, r.dcFills, b)
	applyWayPatches(s.ic.c, r.icPatch, r.icStampDelta)
	applyWayPatches(s.dc.c, r.dcPatch, r.dcStampDelta)
	if s.table != nil {
		cur := s.table.Stamp()
		for _, p := range r.tabPatch {
			snap := p.snap
			snap.LRU += cur
			s.table.PutEntry(p.set, int(p.way), snap)
		}
		s.table.AddStamp(r.tabStampDelta)
	}
	if s.assist != nil {
		cur := s.assist.Stamp()
		for _, p := range r.mechPatch {
			snap := p.snap
			snap.LRU += cur
			s.assist.PutEntry(int(p.set), int(p.way), snap)
		}
		s.assist.AddStamp(r.mechStampDelta)
	}
	for _, p := range r.btbPatch {
		s.btb.PutEntry(p.idx, p.snap)
	}
	if s.regcache != nil {
		cur := s.regcache.Stamp()
		for _, p := range r.rcPatchs {
			snap := p.snap
			snap.LRU += cur
			s.regcache.PutEntry(int(p.idx), snap)
		}
		s.regcache.AddStamp(r.rcStampDelta)
	}
	s.groupCycle = b + r.exitGroupRel
	s.groupCount = int(r.exitGroupCount)
	s.lastIssue = b + r.exitLastIssueRel
	s.icLastBlock = r.exitICBlock
	s.icLastCycle = b + r.exitICCycleRel
	s.icLastReady = b + r.exitICReadyRel
	if m := b + r.blockMaxRel; m > s.maxDone {
		s.maxDone = m
	}
	s.nextFetch = b + r.exitFetchRel
}

func applyFills(t *timedCache, ops []fillOp, b int64) {
	for _, op := range ops {
		if op.del {
			if i := t.findFill(op.block); i >= 0 {
				t.removeFill(i)
			}
		} else {
			t.addFill(op.block, b+op.doneRel, b)
		}
	}
}

func applyWayPatches(c *cache.Cache, patches []wayPatch, stampDelta int64) {
	if len(patches) == 0 && stampDelta == 0 {
		return
	}
	cur := c.Stamp()
	for _, p := range patches {
		snap := p.snap
		snap.LRU += cur
		c.PutWay(p.set, int(p.way), snap)
	}
	c.AddStamp(stampDelta)
}
