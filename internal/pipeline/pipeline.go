// Package pipeline implements the timing half of the paper's
// emulation-driven simulator: a six-stage (IF, ID1, ID2, EXE, MEM, WB)
// in-order superscalar model with both early load-address generation paths
// of Section 3 — the PC-indexed address prediction table probed in ID1 and
// accessed speculatively in ID2, and the early address calculation path
// through the cached addressing register(s) dispatched from ID1.
//
// The model replays the architecturally-correct dynamic trace produced by
// package emu and computes per-instruction stage times subject to in-order
// issue, functional-unit and cache-port structural hazards, scoreboard
// (register-ready) interlocks, branch prediction, and cache misses.
// Speculative early loads consume real data-cache ports and fill the cache
// (their misses act as prefetches); data is forwarded only when the paper's
// forwarding formulas hold, so speculation never requires recovery.
//
// Timing conventions: an instruction "issues" when it enters EXE. A
// register's ready time is the earliest cycle a consumer may occupy EXE
// using the value via full forwarding. A 1-cycle integer op issued at e has
// ready time e+1; a load hit has e+2 (address in EXE, data at end of MEM);
// a load forwarded by the prediction path has e+1 (one cycle saved); a load
// forwarded by the early calculation path has e (zero effective latency —
// the consumer may issue in the same cycle).
package pipeline

import (
	"errors"

	"elag/internal/addrpred"
	"elag/internal/bpred"
	"elag/internal/cache"
	"elag/internal/earlycalc"
	"elag/internal/emu"
	"elag/internal/isa"
	"elag/internal/mech"
)

// frontEndSlots bounds the number of instructions in IF/ID1/ID2 latches;
// fetch of instruction i waits until instruction i-frontEndSlots has issued.
const frontEndSlots = 18

// resWindow is the sliding-window size (in cycles) for per-cycle resource
// counters. It only needs to exceed the distance between the oldest
// in-flight reservation and the current cycle; misses and divides keep that
// far below 4096.
const resWindow = 4096

// resTrack counts per-cycle uses of a resource with a fixed capacity.
type resTrack struct {
	stamp [resWindow]int64
	count [resWindow]uint8
	cap   uint8
}

func (r *resTrack) at(cycle int64) *uint8 {
	i := cycle & (resWindow - 1)
	if r.stamp[i] != cycle {
		r.stamp[i] = cycle
		r.count[i] = 0
	}
	return &r.count[i]
}

// peek returns the logical use count at cycle without normalizing the
// slot: a stale stamp reads as zero. The block-timing memoizer snapshots
// and compares resource windows this way, so guarding never perturbs the
// track state the generic path would see.
func (r *resTrack) peek(cycle int64) uint8 {
	i := cycle & (resWindow - 1)
	if r.stamp[i] != cycle {
		return 0
	}
	return r.count[i]
}

// avail reports whether capacity remains at cycle.
func (r *resTrack) avail(cycle int64) bool { return *r.at(cycle) < r.cap }

// tryUse consumes one unit at cycle if available.
func (r *resTrack) tryUse(cycle int64) bool {
	c := r.at(cycle)
	if *c >= r.cap {
		return false
	}
	*c++
	return true
}

// fillEnt is one outstanding (or stale) cache fill. The set of live fills
// is tiny — bounded by the handful of misses whose latency window overlaps
// the current cycle — so a linear slice beats a map on every operation and
// exposes a monotone high-water mark (maxFillDone) that lets the memoizer
// prove "no fill in flight" with one comparison.
type fillEnt struct {
	block int64
	done  int64
}

// timedCache adds miss timing to the tag-store cache model: outstanding
// fills are tracked so that a second access to an in-flight block waits
// only for the remaining fill latency (the non-blocking prefetch effect of
// failed speculative loads).
type timedCache struct {
	c          *cache.Cache
	fills      []fillEnt
	blockShift uint
	// maxFillDone is the largest completion cycle ever inserted into
	// fills. It never decreases; when it is <= the current cycle, every
	// remaining entry is stale (absent, behaviorally).
	maxFillDone int64
	// fast routes the tag-store access through cache.AccessDM; set per
	// chunk by refreshFastPaths when the cache is direct-mapped and
	// unobserved.
	fast bool
	// rec, when non-nil, is the active block recorder: it pre-snapshots
	// each touched set and logs fill insertions/removals (see memo.go).
	rec *memoRecorder
	ci  uint8 // recorder cache index: 0 = icache, 1 = dcache
	// onMiss, when non-nil, observes each fresh miss: the cycle it began,
	// the cycle its fill completes, and whether it was speculative.
	onMiss func(addr, cycle, done int64, spec bool)
}

func newTimedCache(c *cache.Cache, ci uint8) *timedCache {
	shift := uint(0)
	for b := c.Config().BlockBytes; b > 1; b >>= 1 {
		shift++
	}
	return &timedCache{c: c, blockShift: shift, ci: ci}
}

// findFill returns the index of block's fill entry, or -1. Blocks are
// unique in fills: live entries are returned before a second insert can
// happen, and stale ones are removed (or replaced in place) first.
func (t *timedCache) findFill(block int64) int {
	for i := range t.fills {
		if t.fills[i].block == block {
			return i
		}
	}
	return -1
}

func (t *timedCache) removeFill(i int) {
	last := len(t.fills) - 1
	t.fills[i] = t.fills[last]
	t.fills = t.fills[:last]
}

// addFill records a fill completing at done, replacing any existing entry
// for the block (only a stale one can exist), and sweeps stale entries if
// the slice has grown past the expected live bound.
func (t *timedCache) addFill(block, done, cycle int64) {
	if done > t.maxFillDone {
		t.maxFillDone = done
	}
	if i := t.findFill(block); i >= 0 {
		t.fills[i].done = done
		return
	}
	t.fills = append(t.fills, fillEnt{block: block, done: done})
	if len(t.fills) > 64 {
		for i := 0; i < len(t.fills); {
			if t.fills[i].done <= cycle {
				t.removeFill(i)
			} else {
				i++
			}
		}
	}
}

// access performs an access at cycle and returns the cycle at the end of
// which data is available, plus whether it was a true (same-cycle) hit.
func (t *timedCache) access(addr, cycle int64, spec, allocate bool) (ready int64, hit bool) {
	block := addr >> t.blockShift
	if t.rec != nil {
		t.rec.touchCacheSet(t.ci, t.c, addr)
	}
	var tagHit bool
	if t.fast {
		tagHit = t.c.AccessDM(addr, spec, allocate)
	} else {
		switch {
		case spec:
			tagHit = t.c.SpecAccess(addr)
		case allocate:
			tagHit = t.c.Access(addr)
		default:
			tagHit = t.c.AccessNoAllocate(addr)
		}
	}
	// The fill list is empty for the overwhelming majority of accesses;
	// skipping the scan then keeps the hit path allocation-free. When the
	// newest fill has already completed, every entry is stale — drop them
	// all in O(1). (Stale entries are behaviorally absent, so no removal
	// needs to be logged for the recorder: replay reaching the same cycles
	// treats them identically whether present or purged.)
	if len(t.fills) > 0 && t.maxFillDone <= cycle {
		t.fills = t.fills[:0]
	}
	if len(t.fills) > 0 {
		if i := t.findFill(block); i >= 0 {
			if done := t.fills[i].done; done > cycle {
				// Fill still in flight from an earlier miss.
				return done, false
			}
			t.removeFill(i)
			if t.rec != nil {
				t.rec.noteFill(t.ci, fillOp{del: true, block: block})
			}
		}
	}
	if tagHit {
		return cycle, true
	}
	done := cycle + int64(t.c.MissPenalty())
	if t.onMiss != nil {
		t.onMiss(addr, cycle, done, spec)
	}
	if allocate || spec {
		t.addFill(block, done, cycle)
		if t.rec != nil {
			t.rec.noteFill(t.ci, fillOp{block: block, doneRel: done - t.rec.base})
		}
	}
	return done, false
}

type storeRec struct {
	exe, mem int64 // EXE (address known after) and MEM (data written after)
	ea       int64
	width    int64
}

// Sim is one timing-simulation instance over a program trace.
type Sim struct {
	cfg  Config
	prog *isa.Program
	meta []instMeta // per-PC decode cache (see decode.go)

	ic, dc   *timedCache
	btb      *bpred.BTB
	table    *addrpred.Table
	regcache *earlycalc.Cache
	// assist is the registry-constructed assist mechanism, nil unless the
	// configuration named a non-paper mechanism spec. It drives every load
	// through the prediction path's timing (see specAssist).
	assist mech.Mechanism

	m Metrics

	regReady [isa.NumIntRegs]int64
	fpReady  [isa.NumFPRegs]int64

	issueRes resTrack
	aluRes   resTrack
	fpRes    resTrack
	brRes    resTrack
	portRes  resTrack

	nextFetch  int64
	groupCycle int64
	groupCount int
	lastIssue  int64
	maxDone    int64

	icLastBlock int64
	icLastCycle int64
	icLastReady int64

	issueHist [frontEndSlots]int64
	seq       int64
	seqIdx    int // seq % frontEndSlots, kept as a ring cursor (18 is not a power of two)

	stores    [64]storeRec
	storeHead int
	// storeMaxMem is the highest mem cycle of any recorded store: when it
	// is below a query cycle, no slot can interlock and the ring scan is
	// skipped entirely.
	storeMaxMem int64

	traceCap   int
	stageTrace []StageRecord

	// Observability (all nil/zero when disabled — the default).
	sink     EventSink     // cycle-level event stream, set by AttachSink
	ev       Event         // reusable event buffer passed to the sink
	obsCycle int64         // approximate cycle for component-observer events
	attrib   []LoadPCStats // per-PC load attribution, set by EnablePerPC

	// Replay fast path (see memo.go and kernel.go).
	tracks   [numTracks]*resTrack // issue/alu/fp/br/port resource tracks by index
	memo     *blockMemo           // block-timing memo store (lazily built)
	rec      *memoRecorder        // non-nil while recording a block
	recArena *memoRecorder        // reusable recorder backing storage
	noMemo   bool                 // escape hatch: disable memoization
	noSpec   bool                 // escape hatch: disable kernel specialization
	memoOK   bool                 // refreshed per chunk by refreshFastPaths
}

// New creates a simulation with the given configuration over prog. flavors
// optionally overrides the load flavours baked into prog (nil uses the
// program's own); the overlay is resolved into the Sim's private decode
// cache at construction, so concurrent simulations of one Program with
// different flavour assignments never race. A configuration that fails
// Config.Validate is returned as an error.
func New(cfg Config, prog *isa.Program, flavors isa.FlavorOverlay) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	// Normalize mechanism specs before buildMeta reads the config: the two
	// paper kinds become the typed component configs (Validate guarantees
	// neither is configured twice), any other kind constructs the assist
	// mechanism through the registry.
	var assist mech.Mechanism
	for _, sp := range cfg.Mechanisms {
		switch sp.Kind {
		case "addrpred":
			pc := mech.PredictorConfig(sp)
			cfg.Predictor = &pc
		case "earlycalc":
			rc := mech.RegCacheConfig(sp)
			cfg.RegCache = &rc
		default:
			m, err := mech.New(sp)
			if err != nil {
				return nil, err
			}
			assist = m
		}
	}
	ic, err := cache.New(cfg.ICache)
	if err != nil {
		return nil, err
	}
	dc, err := cache.New(cfg.DCache)
	if err != nil {
		return nil, err
	}
	btb, err := bpred.New(cfg.BTB)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:         cfg,
		prog:        prog,
		meta:        buildMeta(prog, &cfg, flavors),
		ic:          newTimedCache(ic, 0),
		dc:          newTimedCache(dc, 1),
		btb:         btb,
		assist:      assist,
		icLastBlock: -1,
		icLastCycle: -1,
	}
	s.issueRes.cap = uint8(cfg.IssueWidth)
	s.aluRes.cap = uint8(cfg.IntALUs)
	s.fpRes.cap = uint8(cfg.FPALUs)
	s.brRes.cap = uint8(cfg.BranchUnits)
	s.portRes.cap = uint8(cfg.MemPorts)
	s.tracks = [numTracks]*resTrack{&s.issueRes, &s.aluRes, &s.fpRes, &s.brRes, &s.portRes}
	if cfg.Predictor != nil {
		if s.table, err = addrpred.NewTable(*cfg.Predictor); err != nil {
			return nil, err
		}
	}
	if cfg.RegCache != nil {
		s.regcache = earlycalc.New(*cfg.RegCache)
	}
	// Cycle numbering starts at 1 so that zero-valued ready times never
	// constrain anything.
	s.nextFetch = 1
	s.groupCycle = 1
	return s, nil
}

// Metrics returns the metrics accumulated so far; call after Run.
func (s *Sim) Metrics() *Metrics {
	s.m.Cycles = s.maxDone
	if s.table != nil {
		s.m.TableStats = s.table.Stats()
	}
	if s.regcache != nil {
		s.m.RegCacheStat = s.regcache.Stats()
	}
	if s.assist != nil {
		s.m.MechKind = s.assist.Kind()
		st := s.assist.Stats()
		s.m.MechStats = &st
	}
	s.m.ICacheStats = s.ic.c.Stats()
	s.m.DCacheStats = s.dc.c.Stats()
	s.m.BTBStats = s.btb.Stats()
	if s.memo != nil {
		s.m.Memo = s.memo.stats
	}
	s.m.Memo.Kernel = s.KernelID()
	s.m.PerPC = s.perPC()
	return &s.m
}

// Run replays the whole trace and returns the final metrics.
func (s *Sim) Run(trace *emu.Trace) (*Metrics, error) {
	if err := s.RunChunk(trace); err != nil {
		return nil, err
	}
	return s.Metrics(), nil
}

// RunChunk replays one chunk of a trace, carrying all pipeline state
// across calls: replaying a trace chunk by chunk (in order, without gaps)
// is bit-identical to replaying it whole with Run. Call Metrics after the
// last chunk. The chunk is not retained — StreamTrace's recycled buffers
// may be passed directly.
func (s *Sim) RunChunk(chunk *emu.Trace) error {
	n := chunk.Len()
	return s.runChunkCols(chunk.PC[:n], chunk.NextPC[:n], chunk.EA[:n],
		chunk.BaseVal[:n], chunk.Taken[:n], chunk.Seq0)
}

// Simulate is the convenience entry point: emulate prog, then replay its
// trace under cfg. fuel bounds emulated instructions (<=0 for default); a
// fuel-truncated trace is still replayed — the timing of a prefix is valid
// timing — so ErrFuel is not an error here.
func Simulate(cfg Config, prog *isa.Program, fuel int64) (*Metrics, emu.Result, error) {
	res, trace, err := emu.RunTrace(prog, fuel, true)
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, res, err
	}
	sim, err := New(cfg, prog, nil)
	if err != nil {
		return nil, res, err
	}
	m, err := sim.Run(trace)
	return m, res, err
}

// StepInst advances the timing model by one dynamic instruction. A trace
// entry whose PC lies outside the program is a typed bad-PC fault: the
// trace no longer describes this program.
func (s *Sim) StepInst(te *emu.TraceEntry) error {
	if te.PC < 0 || te.PC >= len(s.prog.Insts) {
		return &isa.Fault{Kind: isa.FaultBadPC, PC: te.PC, SeqNum: te.SeqNum,
			Detail: "trace PC outside program"}
	}
	in := &s.prog.Insts[te.PC]
	md := &s.meta[te.PC]
	s.m.Insts++

	// ---- IF ----
	f := s.nextFetch
	// Front-end back-pressure: wait for a decode slot.
	if h := s.issueHist[s.seqIdx]; s.seq >= frontEndSlots && f < h-2 {
		f = h - 2
	}
	if f < s.groupCycle {
		f = s.groupCycle
	}
	if f == s.groupCycle && s.groupCount >= s.cfg.FetchWidth {
		f++
	}
	// Instruction cache (deduplicate same-block accesses within a cycle).
	iaddr := isa.PCAddr(te.PC)
	iblock := iaddr >> s.ic.blockShift
	if iblock == s.icLastBlock && f == s.icLastCycle {
		if s.icLastReady > f {
			f = s.icLastReady
		}
	} else if iblock == s.icLastBlock && f >= s.icLastReady && s.ic.c.Observer == nil {
		// Refetch of the last instruction block at or past its fill
		// completion. No intervening I-cache access can have evicted it (an
		// access would have changed icLastBlock) and fetch cycles never
		// regress, so this is a guaranteed same-cycle hit: count it without
		// probing the tag store or the fill map. With an observer attached
		// the full path runs so every access is observed.
		s.ic.c.CountHit()
		s.icLastCycle, s.icLastReady = f, f
	} else {
		ready, _ := s.ic.access(iaddr, f, false, true)
		s.icLastBlock, s.icLastCycle, s.icLastReady = iblock, f, ready
		if ready > f {
			f = ready
			s.icLastCycle = f
		}
	}
	if f > s.groupCycle {
		s.groupCycle = f
		s.groupCount = 0
	}
	s.groupCount++
	s.nextFetch = f

	d1 := f + 1
	d2 := f + 2

	// ---- operand readiness (scoreboard) ----
	ePipe := f + 3
	if ePipe < s.lastIssue {
		ePipe = s.lastIssue
	}
	e := ePipe
	for _, r := range md.intRegs[:md.nInt] {
		if t := s.regReady[r]; t > e {
			e = t
		}
	}
	if md.fpA != 0 {
		if t := s.fpReady[md.fpA-1]; t > e {
			e = t
		}
	}
	if md.fpB != 0 {
		if t := s.fpReady[md.fpB-1]; t > e {
			e = t
		}
	}

	// ---- early address generation (decided at ID1/ID2, before issue) ----
	spec := noSpec
	if md.isLoad() {
		s.m.Loads++
		s.obsCycle = d2
		spec = s.speculateFast(in, md, te, d1, d2, e)
		switch spec.path {
		// The assist path accounts into Predict: it has the prediction
		// path's timing and failure terms, and paper configurations never
		// attach an assist, so their Predict counters are untouched.
		case pathPredict, pathAssist:
			spec.applyTo(&s.m.Predict)
		case pathEarly:
			spec.applyTo(&s.m.Early)
		}
		if s.sink != nil && spec.eligible {
			sq := s.m.Insts - 1
			if spec.speculated {
				s.emit(Event{Kind: EvSpecLaunch, Seq: sq, PC: te.PC,
					Cycle: spec.specCycle, Path: spec.pathByte(), Addr: spec.specAddr})
			}
			if spec.forwarded {
				s.emit(Event{Kind: EvSpecForward, Seq: sq, PC: te.PC,
					Cycle: e, Path: spec.pathByte(), Lat: spec.lat})
			} else {
				s.emit(Event{Kind: EvSpecFail, Seq: sq, PC: te.PC,
					Cycle: e, Path: spec.pathByte(), Fail: spec.fail})
			}
		}
	}

	// ---- issue (enter EXE) ----
	eFlow := e
	var widthStall, fuStall int64
	var fu *resTrack
	switch md.fu {
	case fuALU:
		fu = &s.aluRes
	case fuFP:
		fu = &s.fpRes
	case fuBr:
		fu = &s.brRes
	}
	for {
		if !s.issueRes.avail(e) {
			widthStall++
			e++
			continue
		}
		if fu != nil && !fu.avail(e) {
			fuStall++
			e++
			continue
		}
		break
	}
	if s.sink != nil {
		sq := s.m.Insts - 1
		if opStall := eFlow - ePipe; opStall > 0 {
			s.emit(Event{Kind: EvStall, Seq: sq, PC: te.PC, Cycle: ePipe,
				Cause: StallOperand, Cycles: opStall})
		}
		if widthStall > 0 {
			s.emit(Event{Kind: EvStall, Seq: sq, PC: te.PC, Cycle: eFlow,
				Cause: StallIssueWidth, Cycles: widthStall})
		}
		if fuStall > 0 {
			s.emit(Event{Kind: EvStall, Seq: sq, PC: te.PC, Cycle: eFlow,
				Cause: StallFU, Cycles: fuStall})
		}
	}
	if s.rec != nil {
		s.rec.resTouch(s, trIssue, e)
		if fu != nil {
			s.rec.resTouch(s, int(md.fu), e)
		}
	}
	s.issueRes.tryUse(e)
	if fu != nil {
		fu.tryUse(e)
	}
	s.lastIssue = e
	s.issueHist[s.seqIdx] = e
	s.seq++
	if s.seqIdx++; s.seqIdx == frontEndSlots {
		s.seqIdx = 0
	}

	done := e + 1 // completion (end cycle) for bookkeeping

	// ---- EXE/MEM and destination ready times ----
	switch {
	case md.isLoad():
		var ready, effLat int64
		switch {
		case spec.lat >= 0:
			// Forwarded: effective latency spec.lat (0 for the
			// early-calculation path, 1 for the prediction path).
			ready = e + spec.lat
			if spec.lat == 0 {
				s.m.ZeroCycleLoads++
			} else {
				s.m.OneCycleLoads++
			}
			done = e + 1
			effLat = spec.lat
		case spec.reusable:
			// The speculative access used the correct address but
			// its data arrived too late to forward (e.g. a cache
			// miss). The load is still satisfied by that access —
			// no second cache access, no extra port — the data
			// simply arrives when the fill completes (never
			// earlier than the normal MEM stage).
			m := e + 1
			dataEnd := spec.dataEnd
			if dataEnd < m {
				dataEnd = m
			}
			ready = dataEnd + 1
			done = dataEnd + 1
			effLat = ready - e
		default:
			m := e + 1
			if s.rec != nil {
				s.rec.resPre(s, trPort)
			}
			for !s.portRes.tryUse(m) {
				m++
			}
			if s.rec != nil {
				s.rec.resNote(trPort, m)
			}
			s.obsCycle = m
			dataEnd, _ := s.dc.access(te.EA, m, false, true)
			ready = dataEnd + 1
			done = dataEnd + 1
			effLat = ready - e
		}
		s.m.LoadLatencySum += effLat
		if s.attrib != nil {
			s.recordLoad(in, md, te.PC, &spec, effLat)
		}
		if md.isFLoad() {
			s.fpReady[in.Rd] = ready
		} else if in.Rd != isa.RegZero {
			s.regReady[in.Rd] = ready
		}
		// Train the prediction table in MEM regardless of forwarding.
		s.obsCycle = e + 1
		s.updatePredictor(te, spec.path == pathPredict)
		if s.assist != nil {
			if s.rec != nil {
				s.rec.touchMechSet(s.assist, int64(te.PC))
			}
			s.assist.Train(int64(te.PC), te.EA)
		}

	case md.isStore():
		s.m.Stores++
		m := e + 1
		if s.rec != nil {
			s.rec.resPre(s, trPort)
		}
		for !s.portRes.tryUse(m) {
			m++
		}
		if s.rec != nil {
			s.rec.resNote(trPort, m)
		}
		s.obsCycle = m
		s.dc.access(te.EA, m, false, false) // write-through, no allocate
		done = m + 1
		s.recordStore(e, m, te.EA, int64(in.Width))

	case md.isBranch():
		s.obsCycle = e
		s.resolveBranch(in, te, f, d1, e)
		done = e + 1

	default:
		lat := int64(md.lat)
		done = e + lat
		if md.wInt != 0 {
			s.regReady[md.wInt-1] = e + lat
		}
		if md.wFP != 0 {
			s.fpReady[md.wFP-1] = e + lat
		}
	}

	if in.Op == isa.OpCall && in.Rd != isa.RegZero {
		s.regReady[in.Rd] = e + 1
	}
	if done > s.maxDone {
		s.maxDone = done
	}
	if s.traceCap > 0 {
		fwd := int8(-1)
		if md.isLoad() && spec.lat >= 0 {
			fwd = int8(spec.lat)
		}
		s.recordStages(te.PC, f, e, done, fwd)
	}
	if s.sink != nil {
		fwdLat := int64(-1)
		if md.isLoad() && spec.forwarded {
			fwdLat = spec.lat
		}
		s.emit(Event{Kind: EvRetire, Seq: s.m.Insts - 1, PC: te.PC, Cycle: done,
			Fetch: f, Issue: e, Done: done, Lat: fwdLat})
	}
	return nil
}

func max64(a, b, c int64) int64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func (s *Sim) recordStore(exe, mem, ea, width int64) {
	s.stores[s.storeHead] = storeRec{exe: exe, mem: mem, ea: ea, width: width}
	s.storeHead = (s.storeHead + 1) % len(s.stores)
	if mem > s.storeMaxMem {
		s.storeMaxMem = mem
	}
}

// memInterlock reports whether, at the given cycle, an older in-flight
// store could conflict with a speculative load of [ea, ea+width): either
// the store's address is not yet computed, or it overlaps and its data has
// not yet reached memory.
func (s *Sim) memInterlock(ea, width, cycle int64) bool {
	if s.storeMaxMem < cycle {
		return false // every recorded store has already written back
	}
	for i := range s.stores {
		st := &s.stores[i]
		if st.mem == 0 || st.mem < cycle {
			continue // already written (or empty slot)
		}
		if st.exe >= cycle {
			return true // address unknown at speculation time
		}
		if st.ea < ea+width && ea < st.ea+st.width {
			return true // overlapping, data not yet visible
		}
	}
	return false
}

// pathID names the early-address-generation path a load was steered to.
type pathID uint8

const (
	pathNone pathID = iota
	pathPredict
	pathEarly
	pathAssist
)

// specResult describes the outcome of early address generation for one
// load execution: lat >= 0 means data was forwarded with that effective
// latency; otherwise, reusable reports whether a speculative access with
// the correct address was issued anyway (so the load is satisfied by that
// access's data, available at the end of cycle dataEnd, without a second
// cache access).
//
// The remaining fields are the observability record: which path the load
// was steered to, how far the speculation got (eligible -> speculated ->
// forwarded), and the Section 3.2 failure-term bitmask when it did not
// forward. Both the global PathStats and the per-PC attribution table are
// driven from this one record via applyTo, so they can never disagree.
type specResult struct {
	lat      int64
	dataEnd  int64
	reusable bool

	path       pathID
	eligible   bool
	speculated bool
	forwarded  bool
	fail       FailMask
	specCycle  int64 // cycle the speculative access was issued
	specAddr   int64 // address it was issued with
}

var noSpec = specResult{lat: -1}

// pathByte renders the path for events ('P' predict, 'E' early,
// 'A' assist).
func (r *specResult) pathByte() byte {
	switch r.path {
	case pathPredict:
		return 'P'
	case pathAssist:
		return 'A'
	}
	return 'E'
}

// applyTo adds this execution's outcome to a PathStats accumulator, one
// counter per eligible/speculated/forwarded flag and failure-mask bit.
func (r *specResult) applyTo(ps *PathStats) {
	if r.eligible {
		ps.Eligible++
	}
	if r.speculated {
		ps.Speculated++
	}
	if r.forwarded {
		ps.Forwarded++
	}
	if r.fail == 0 {
		return
	}
	if r.fail&FailNoPrediction != 0 {
		ps.NoPrediction++
	}
	if r.fail&FailRegMiss != 0 {
		ps.RegMiss++
	}
	if r.fail&FailRegInterlock != 0 {
		ps.RegInterlock++
	}
	if r.fail&FailMemInterlock != 0 {
		ps.MemInterlock++
	}
	if r.fail&FailNoPort != 0 {
		ps.NoPort++
	}
	if r.fail&FailCacheMiss != 0 {
		ps.CacheMiss++
	}
	if r.fail&FailAddrMispredict != 0 {
		ps.AddrMispredict++
	}
}

// speculate runs the ID1/ID2 early-address-generation logic for a load.
// The result's path field records which mechanism this execution was
// steered to; pathPredict determines whether the MEM-stage table update
// allocates. The flavour driving SelCompiler comes from the decode cache,
// where any overlay passed to New has already been resolved.
func (s *Sim) speculate(in *isa.Inst, md *instMeta, te *emu.TraceEntry, d1, d2, e int64) specResult {
	if s.assist != nil {
		return s.specAssist(in, te, d2, e)
	}
	switch s.cfg.Select {
	case SelNone:
		return noSpec
	case SelCompiler:
		switch md.flavor {
		case isa.LdP:
			if s.table == nil {
				return noSpec
			}
			return s.specPredict(in, te, d2, e)
		case isa.LdE:
			if s.regcache == nil {
				return noSpec
			}
			return s.specEarly(in, te, d1, d2, e, true)
		}
		return noSpec
	case SelAllPredict:
		if s.table == nil {
			return noSpec
		}
		return s.specPredict(in, te, d2, e)
	case SelAllEarly:
		if s.regcache == nil {
			return noSpec
		}
		return s.specEarly(in, te, d1, d2, e, false)
	case SelHWDual:
		// Eickemeyer-Vassiliadis run-time selection: interlocked base
		// register at decode -> prediction table; otherwise early
		// calculation through the register cache.
		interlocked := in.Mode != isa.AMAbsolute && s.regReady[in.Base] > d1
		if interlocked {
			if s.table == nil {
				return noSpec
			}
			return s.specPredict(in, te, d2, e)
		}
		if s.regcache == nil {
			return noSpec
		}
		return s.specEarly(in, te, d1, d2, e, false)
	}
	return noSpec
}

// speculateFast dispatches a load's early-address-generation path on the
// spath byte resolved into the decode cache at construction, so the hot
// path carries no per-step Select/flavor/component-nil branches. The
// semantics of every arm are identical to speculate's; SetNoSpecialize
// rewrites the spath bytes to spGeneric, which falls through to it.
func (s *Sim) speculateFast(in *isa.Inst, md *instMeta, te *emu.TraceEntry, d1, d2, e int64) specResult {
	switch md.spath {
	case spNone:
		return noSpec
	case spPredict:
		return s.specPredict(in, te, d2, e)
	case spEarlyDirected:
		return s.specEarly(in, te, d1, d2, e, true)
	case spEarly:
		return s.specEarly(in, te, d1, d2, e, false)
	case spAssist:
		return s.specAssist(in, te, d2, e)
	case spHWDual:
		interlocked := in.Mode != isa.AMAbsolute && s.regReady[in.Base] > d1
		if interlocked {
			if s.table == nil {
				return noSpec
			}
			return s.specPredict(in, te, d2, e)
		}
		if s.regcache == nil {
			return noSpec
		}
		return s.specEarly(in, te, d1, d2, e, false)
	}
	return s.speculate(in, md, te, d1, d2, e)
}

func (s *Sim) updatePredictor(te *emu.TraceEntry, predictPath bool) {
	if s.table == nil {
		return
	}
	if s.rec != nil {
		s.rec.touchTableSet(s.table, te.PC)
	}
	if predictPath {
		s.table.Update(te.PC, te.EA)
	} else if s.cfg.Select == SelHWDual {
		// Allocation is gated on interlocks, but entries that already
		// exist keep training on every execution.
		s.table.UpdateIfPresent(te.PC, te.EA)
	}
}

// specPredict implements the ld_p path: ID1 table probe, ID2 speculative
// access with the predicted address, end-of-EXE verification. Forwarding
// requires !Mem_Interlock ∧ Table_Hit ∧ Port_Allocated ∧ DCache_Hit ∧
// CA==PA and yields an effective load latency of 1 cycle.
func (s *Sim) specPredict(in *isa.Inst, te *emu.TraceEntry, d2, e int64) specResult {
	r := specResult{lat: -1, path: pathPredict, eligible: true}
	if s.rec != nil {
		s.rec.touchTableSet(s.table, te.PC)
	}
	predAddr, ok := s.table.Probe(te.PC)
	if !ok {
		r.fail |= FailNoPrediction
		return r
	}
	// Like the early-calculation path, the speculative access is issued
	// on the load's last decode cycle: a load stalled at issue re-probes
	// while it waits, so its speculation overlaps in-flight stores less.
	specCycle := d2
	if e-1 > specCycle {
		specCycle = e - 1
	}
	if s.rec != nil {
		s.rec.resTouch(s, trPort, specCycle)
	}
	if !s.portRes.tryUse(specCycle) {
		r.fail |= FailNoPort
		return r
	}
	r.speculated = true
	r.specCycle = specCycle
	r.specAddr = predAddr
	ready, hit := s.dc.access(predAddr, specCycle, true, true)
	correct := predAddr == te.EA
	milk := s.memInterlock(te.EA, int64(in.Width), specCycle)
	fwd := hit && ready <= e-1 && correct && !milk
	if !correct {
		r.fail |= FailAddrMispredict
	}
	if !hit || ready > e-1 {
		r.fail |= FailCacheMiss
	}
	if milk {
		r.fail |= FailMemInterlock
	}
	if !fwd {
		// A correct-address access that merely arrived late (or
		// missed the cache) still satisfies the load when its data
		// lands; a memory interlock means the data may be stale and
		// must be re-fetched.
		r.dataEnd = ready
		r.reusable = correct && !milk
		return r
	}
	r.forwarded = true
	r.lat = 1
	return r
}

// specAssist drives a load through the registry assist mechanism with the
// prediction path's exact timing: ID1 lookup, ID2 speculative access with
// the predicted address, end-of-EXE verification, and an effective latency
// of 1 cycle on forward. The mechanism trains in MEM on every load (see
// StepInst), mirroring the hardware-only predictor's always-update policy.
func (s *Sim) specAssist(in *isa.Inst, te *emu.TraceEntry, d2, e int64) specResult {
	r := specResult{lat: -1, path: pathAssist, eligible: true}
	if s.rec != nil {
		s.rec.touchMechSet(s.assist, int64(te.PC))
	}
	predAddr, ok := s.assist.Lookup(int64(te.PC))
	if !ok {
		r.fail |= FailNoPrediction
		return r
	}
	specCycle := d2
	if e-1 > specCycle {
		specCycle = e - 1
	}
	if s.rec != nil {
		s.rec.resTouch(s, trPort, specCycle)
	}
	if !s.portRes.tryUse(specCycle) {
		r.fail |= FailNoPort
		return r
	}
	r.speculated = true
	r.specCycle = specCycle
	r.specAddr = predAddr
	ready, hit := s.dc.access(predAddr, specCycle, true, true)
	correct := predAddr == te.EA
	milk := s.memInterlock(te.EA, int64(in.Width), specCycle)
	fwd := hit && ready <= e-1 && correct && !milk
	if !correct {
		r.fail |= FailAddrMispredict
	}
	if !hit || ready > e-1 {
		r.fail |= FailCacheMiss
	}
	if milk {
		r.fail |= FailMemInterlock
	}
	if !fwd {
		r.dataEnd = ready
		r.reusable = correct && !milk
		return r
	}
	r.forwarded = true
	r.lat = 1
	return r
}

// specEarly implements the ld_e path: the base register's value is read
// from the addressing-register cache, the address formed by the dedicated
// full adder, and a speculative access dispatched from the decode stages.
// Forwarding requires !R_addr_Interlock ∧ !Mem_Interlock ∧ R_addr_Hit ∧
// Port_Allocated ∧ DCache_Hit.
//
// Dispatch timing: a load may sit in decode for many cycles while older
// instructions or its own base register hold up issue; the speculative
// access is (re)issued on its last decode cycle, so it uses the R_addr
// value as of cycle e-1 (e = the load's EXE cycle). Two outcomes:
//
//   - The base value was broadcast to R_addr by cycle e-1: the access
//     completes before EXE and the data forwards with effective latency 0
//     (a zero-cycle load — the consumer may issue with the load).
//   - The base arrives exactly at issue (the load was stalled on it): the
//     access overlaps the EXE address calculation and saves one cycle
//     (latency 1), the bound Chen & Wu report when the early path cannot
//     run ahead of the register file.
//
// bindDirected distinguishes the compiler-directed R_addr (bound by the
// ld_e itself) from the hardware-only allocate-on-use policy; both bind
// after the lookup, so a load that just switched the binding does not hit.
func (s *Sim) specEarly(in *isa.Inst, te *emu.TraceEntry, d1, d2, e int64, bindDirected bool) specResult {
	if in.Mode == isa.AMRegReg {
		// Only register+offset (and absolute) addresses can be formed
		// by the decode-stage adder. Not an eligible execution.
		r := noSpec
		r.path = pathEarly
		return r
	}
	r := specResult{lat: -1, path: pathEarly, eligible: true}

	hit := true
	lat := int64(0)
	specCycle := d2
	if e-1 > specCycle {
		specCycle = e - 1
	}
	if in.Mode == isa.AMRegOffset {
		if s.rec != nil {
			s.rec.touchRegCache(s.regcache)
		}
		_, hit = s.regcache.Lookup(in.Base)
		ready := s.regReady[in.Base]
		// (Re)bind after the lookup: ld_e binds its base register;
		// hardware-only policies allocate base registers on use. The
		// entry is bound valid: coherence with in-flight producers is
		// checked against the scoreboard at lookup time (the
		// R_addr_Interlock term), which subsumes the hardware's
		// broadcast-on-writeback.
		s.regcache.Bind(in.Base, te.BaseVal, true)
		if !hit {
			r.fail |= FailRegMiss
			return r
		}
		switch {
		case ready <= specCycle:
			// Value broadcast in time for a pre-EXE access.
		case ready <= e:
			// Base arrives at issue: overlap the access with EXE.
			lat = 1
			specCycle = e
		default:
			r.fail |= FailRegInterlock
			return r
		}
	}
	if s.rec != nil {
		s.rec.resTouch(s, trPort, specCycle)
	}
	if !s.portRes.tryUse(specCycle) {
		r.fail |= FailNoPort
		return r
	}
	r.speculated = true
	r.specCycle = specCycle
	r.specAddr = te.EA
	// Coherent R_addr implies the speculative address equals the
	// architectural effective address.
	dataEnd, chit := s.dc.access(te.EA, specCycle, true, true)
	milk := s.memInterlock(te.EA, int64(in.Width), specCycle)
	if milk {
		r.fail |= FailMemInterlock
		// Possibly-stale data: the normal access must re-fetch.
		return r
	}
	if !chit || dataEnd > specCycle {
		r.fail |= FailCacheMiss
		// Correct address, late data: the load waits for this
		// access's fill instead of re-accessing the cache.
		r.dataEnd = dataEnd
		r.reusable = true
		return r
	}
	r.forwarded = true
	r.lat = lat
	return r
}

// resolveBranch trains the BTB and computes the fetch redirect.
func (s *Sim) resolveBranch(in *isa.Inst, te *emu.TraceEntry, f, d1, e int64) {
	if s.rec != nil {
		s.rec.touchBTB(s.btb, te.PC)
	}
	switch in.Op {
	case isa.OpBr:
		s.m.Branches++
		mis := s.btb.Update(te.PC, te.Taken, te.NextPC)
		switch {
		case mis:
			s.m.Mispredicts++
			s.nextFetch = e + 1
		case te.Taken:
			// Correctly predicted taken: the target is fetched in
			// the next cycle (taken branches end the fetch group).
			s.nextFetch = f + 1
		}
	case isa.OpJmp, isa.OpCall:
		// Direct target: a BTB hit redirects fetch with no bubble; a
		// miss is repaired at decode (one-cycle bubble).
		if tgt, ok := s.btb.Lookup(te.PC); ok && tgt == te.NextPC {
			s.nextFetch = f + 1
		} else {
			s.nextFetch = d1 + 1
		}
		s.btb.Insert(te.PC, te.NextPC)
	case isa.OpJr:
		// Register-indirect target: resolved in EXE on a BTB miss.
		if tgt, ok := s.btb.Lookup(te.PC); ok && tgt == te.NextPC {
			s.nextFetch = f + 1
		} else {
			s.nextFetch = e + 1
		}
		s.btb.Insert(te.PC, te.NextPC)
	}
	if s.nextFetch > s.groupCycle {
		s.groupCycle = s.nextFetch
		s.groupCount = 0
	}
}
