package pipeline

import (
	"fmt"
	"strings"

	"elag/internal/isa"
)

// StageRecord captures the stage timing of one dynamic instruction for the
// pipeline viewer: the cycles at which it occupied IF, entered EXE, and
// completed, plus how its load (if any) was satisfied.
type StageRecord struct {
	Seq     int64
	PC      int
	Fetch   int64 // IF cycle
	Issue   int64 // EXE cycle (ID1/ID2 span Fetch+1 .. Issue-1)
	Done    int64 // completion (end of MEM / writeback data ready)
	Forward int8  // -1: not a load / not forwarded; 0: zero-cycle; 1: one-cycle
}

// EnableStageTrace makes the simulation record the first n dynamic
// instructions' stage timings, retrievable with StageTrace.
func (s *Sim) EnableStageTrace(n int) { s.traceCap = n }

// StageTrace returns the recorded stage timings.
func (s *Sim) StageTrace() []StageRecord { return s.stageTrace }

func (s *Sim) recordStages(pc int, f, e, done int64, fwd int8) {
	if len(s.stageTrace) >= s.traceCap {
		return
	}
	s.stageTrace = append(s.stageTrace, StageRecord{
		Seq: s.m.Insts - 1, PC: pc, Fetch: f, Issue: e, Done: done, Forward: fwd,
	})
}

// RenderStageTrace draws the records as a text pipeline diagram, one
// instruction per row:
//
//	seq    pc  instruction              |F DD X M|
//
// F = fetch, D = decode (ID1/ID2 and any stall cycles), X = execute,
// M = memory/completion; * marks a forwarded load (0 = zero-cycle).
func RenderStageTrace(prog *isa.Program, recs []StageRecord) string {
	if len(recs) == 0 {
		return ""
	}
	base := recs[0].Fetch
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle origin: %d\n", base)
	for _, r := range recs {
		width := int(r.Done - base + 1)
		if width < 1 || width > 200 {
			width = 200
		}
		lane := []byte(strings.Repeat(" ", width))
		put := func(cycle int64, ch byte) {
			i := int(cycle - base)
			if i >= 0 && i < len(lane) {
				lane[i] = ch
			}
		}
		put(r.Fetch, 'F')
		for c := r.Fetch + 1; c < r.Issue; c++ {
			put(c, 'D')
		}
		put(r.Issue, 'X')
		for c := r.Issue + 1; c <= r.Done; c++ {
			put(c, 'M')
		}
		mark := ' '
		switch r.Forward {
		case 0:
			mark = '0'
		case 1:
			mark = '1'
		}
		in := ""
		if r.PC >= 0 && r.PC < len(prog.Insts) {
			in = prog.Insts[r.PC].String()
		}
		fmt.Fprintf(&sb, "%6d %5d %c %-28s |%s|\n", r.Seq, r.PC, mark, in, lane)
	}
	return sb.String()
}
