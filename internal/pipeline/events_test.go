package pipeline

import (
	"reflect"
	"testing"

	"elag/internal/addrpred"
	"elag/internal/asm/asmtest"
	"elag/internal/earlycalc"
	"elag/internal/emu"
)

// obsProg exercises both speculation paths, stores (mem-interlock), a
// pointer chase (mispredictions) and branches — enough to light up every
// event kind.
const obsProgBody = `
	ld8_p r1, r20(0)
	add r20, r20, 8
	ld8_e r2, r21(0)
	add r3, r1, r2
	st8 r3, r21(8)
	ld8_n r4, r21(8)
`

func obsConfig() Config {
	return Config{
		Select:    SelCompiler,
		Predictor: &addrpred.Config{Entries: 64},
		RegCache:  &earlycalc.Config{Entries: 1},
	}
}

func obsTrace(t *testing.T) (*emu.Trace, *Sim) {
	t.Helper()
	p := asmtest.MustAssemble(t, loopOf(3000, obsProgBody))
	_, trace, err := emu.RunTrace(p, 10_000_000, true)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return trace, mustSim(t, obsConfig(), p)
}

// countingSink tallies the event stream by kind and failure term.
type countingSink struct {
	byKind   map[EventKind]int64
	failBits map[byte]map[FailMask]int64 // path -> term bit -> count
}

func (c *countingSink) Event(ev *Event) {
	if c.byKind == nil {
		c.byKind = map[EventKind]int64{}
		c.failBits = map[byte]map[FailMask]int64{}
	}
	c.byKind[ev.Kind]++
	if ev.Kind == EvSpecFail {
		m := c.failBits[ev.Path]
		if m == nil {
			m = map[FailMask]int64{}
			c.failBits[ev.Path] = m
		}
		for _, fn := range failNames {
			if ev.Fail&fn.bit != 0 {
				m[fn.bit]++
			}
		}
	}
}

// TestObservationDoesNotPerturbTiming: a run with a sink attached and
// per-PC attribution enabled must produce exactly the metrics of a plain
// run — observation is read-only.
func TestObservationDoesNotPerturbTiming(t *testing.T) {
	trace, plain := obsTrace(t)
	mPlain, err := plain.Run(trace)
	if err != nil {
		t.Fatal(err)
	}

	_, observed := obsTrace(t)
	observed.EnablePerPC()
	observed.AttachSink(&countingSink{})
	mObs, err := observed.Run(trace)
	if err != nil {
		t.Fatal(err)
	}

	a, b := *mPlain, *mObs
	b.PerPC = nil // the attribution table is the one permitted difference
	// Memo describes the simulator, not the machine: an attached sink
	// disables memoization, so the counters legitimately differ.
	a.Memo, b.Memo = MemoStats{}, MemoStats{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("observation changed the timing result:\nplain:    %+v\nobserved: %+v", a, b)
	}
}

// TestEventCounterConsistency: the event stream must reproduce the global
// counters — retires equal instructions, spec launches/forwards/fails and
// per-term failure bits equal the PathStats sums.
func TestEventCounterConsistency(t *testing.T) {
	trace, s := obsTrace(t)
	var sink countingSink
	s.AttachSink(&sink)
	m, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := sink.byKind[EvRetire], m.Insts; got != want {
		t.Errorf("retire events %d != instructions %d", got, want)
	}
	if got, want := sink.byKind[EvSpecLaunch], m.Predict.Speculated+m.Early.Speculated; got != want {
		t.Errorf("spec-launch events %d != speculated %d", got, want)
	}
	if got, want := sink.byKind[EvSpecForward], m.Predict.Forwarded+m.Early.Forwarded; got != want {
		t.Errorf("spec-forward events %d != forwarded %d", got, want)
	}
	fails := m.Predict.Eligible + m.Early.Eligible - m.Predict.Forwarded - m.Early.Forwarded
	if got := sink.byKind[EvSpecFail]; got != fails {
		t.Errorf("spec-fail events %d != eligible-forwarded %d", got, fails)
	}
	if sink.byKind[EvBranchResolve] == 0 || sink.byKind[EvTableTransition] == 0 ||
		sink.byKind[EvRegBind] == 0 || sink.byKind[EvCacheAccess] == 0 {
		t.Errorf("expected branch/table/reg-bind/cache events, got %v", sink.byKind)
	}

	for _, c := range []struct {
		path byte
		ps   *PathStats
	}{{'P', &m.Predict}, {'E', &m.Early}} {
		bits := sink.failBits[c.path]
		for _, tc := range []struct {
			bit  FailMask
			want int64
		}{
			{FailNoPrediction, c.ps.NoPrediction},
			{FailRegMiss, c.ps.RegMiss},
			{FailRegInterlock, c.ps.RegInterlock},
			{FailMemInterlock, c.ps.MemInterlock},
			{FailNoPort, c.ps.NoPort},
			{FailCacheMiss, c.ps.CacheMiss},
			{FailAddrMispredict, c.ps.AddrMispredict},
		} {
			if bits[tc.bit] != tc.want {
				t.Errorf("path %c %s: event bits %d != counter %d",
					c.path, tc.bit, bits[tc.bit], tc.want)
			}
		}
	}
}

// sumPathStats adds the rows' path counters field by field via reflection,
// so a counter added to PathStats later cannot silently escape the algebra.
func sumPathStats(rows []LoadPCStats, early bool) PathStats {
	var sum PathStats
	sv := reflect.ValueOf(&sum).Elem()
	for i := range rows {
		ps := rows[i].Predict
		if early {
			ps = rows[i].Early
		}
		pv := reflect.ValueOf(ps)
		for f := 0; f < pv.NumField(); f++ {
			sv.Field(f).SetInt(sv.Field(f).Int() + pv.Field(f).Int())
		}
	}
	return sum
}

// TestPerPCCounterAlgebra: the per-PC attribution table must sum exactly
// to the global counters, for every PathStats field plus loads, latency
// sum and the zero/one-cycle forward counts.
func TestPerPCCounterAlgebra(t *testing.T) {
	for _, sel := range []Selection{SelCompiler, SelAllPredict, SelAllEarly, SelHWDual} {
		cfg := obsConfig()
		cfg.Select = sel
		p := asmtest.MustAssemble(t, loopOf(3000, obsProgBody))
		_, trace, err := emu.RunTrace(p, 10_000_000, true)
		if err != nil {
			t.Fatalf("trace: %v", err)
		}
		s := mustSim(t, cfg, p)
		s.EnablePerPC()
		m, err := s.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.PerPC) == 0 {
			t.Fatalf("%v: no attribution rows", sel)
		}
		if got := sumPathStats(m.PerPC, false); got != m.Predict {
			t.Errorf("%v: per-PC predict sum %+v != global %+v", sel, got, m.Predict)
		}
		if got := sumPathStats(m.PerPC, true); got != m.Early {
			t.Errorf("%v: per-PC early sum %+v != global %+v", sel, got, m.Early)
		}
		var count, latSum, zero, one int64
		for i := range m.PerPC {
			r := &m.PerPC[i]
			count += r.Count
			latSum += r.LatencySum
			zero += r.ZeroCycle
			one += r.OneCycle
			var hist int64
			for _, h := range r.Hist {
				hist += h
			}
			if hist != r.Count {
				t.Errorf("%v: pc %d histogram sums to %d, count %d", sel, r.PC, hist, r.Count)
			}
		}
		if count != m.Loads {
			t.Errorf("%v: per-PC count sum %d != loads %d", sel, count, m.Loads)
		}
		if latSum != m.LoadLatencySum {
			t.Errorf("%v: per-PC latency sum %d != global %d", sel, latSum, m.LoadLatencySum)
		}
		if zero != m.ZeroCycleLoads || one != m.OneCycleLoads {
			t.Errorf("%v: per-PC zero/one %d/%d != global %d/%d",
				sel, zero, one, m.ZeroCycleLoads, m.OneCycleLoads)
		}
	}
}

// TestWorstLoadsOrdering: WorstLoads must sort by total latency, ties by
// PC, and cap at n.
func TestWorstLoadsOrdering(t *testing.T) {
	m := &Metrics{PerPC: []LoadPCStats{
		{PC: 4, LatencySum: 10},
		{PC: 2, LatencySum: 30},
		{PC: 9, LatencySum: 30},
		{PC: 1, LatencySum: 5},
	}}
	rows := m.WorstLoads(3)
	if len(rows) != 3 || rows[0].PC != 2 || rows[1].PC != 9 || rows[2].PC != 4 {
		t.Errorf("unexpected order: %+v", rows)
	}
}
