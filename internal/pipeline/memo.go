package pipeline

// Basic-block timing memoization: the replay fast path of the specialized
// kernels. A re-entered static block whose *relevant* machine state matches
// an earlier entry must, by determinism of StepInst, produce the same
// per-instruction timing shifted by the difference in entry cycle. The
// memoizer records one interpretation of a block — the entry state it
// depended on (the guard) and the state/metric deltas it produced (the
// effects) — and on a later matching entry applies the effects directly,
// skipping the interpreter.
//
// Everything cycle-valued is rebased against B = Sim.nextFetch at block
// entry. Every comparison StepInst performs is between two quantities each
// of the form B+k or a state value, so a uniform shift of all cycle state
// preserves every branch outcome. State that has fallen far enough into the
// past that no in-block read can distinguish it (a register ready at or
// before B+1, a store written back before B+2, ...) is clamped to a single
// equivalence-class sentinel; the clamp thresholds below each cite the
// tightest read in pipeline.go they must satisfy. Non-cycle state (tags,
// counters, addresses) is compared exactly. LRU stamps are compared by
// relative order only (rank), and restored rebased against the current
// stamp counter, which reproduces exactly the stamps interpretation would
// have assigned (stamp counters advance deterministically per operation).
//
// Correctness bar: all observable outputs — Metrics, per-PC attribution,
// event streams, artifact JSON — are byte-identical with memoization on or
// off. Internal dead state (stale fill entries, written-back store slots,
// unreadably-old stamps, cached-but-never-compared register-cache values)
// may differ between the two runs; every guard and every read path treats
// such state as don't-care, consistently.

import (
	"elag/internal/addrpred"
	"elag/internal/bpred"
	"elag/internal/cache"
	"elag/internal/earlycalc"
	"elag/internal/isa"
	"elag/internal/mech"
)

const (
	// memoMinLen / memoMaxLen bound the instruction count of a memoized
	// block. Shorter blocks don't amortize the guard; longer ones make the
	// guard (EA columns, touched sets) too wide to hit.
	memoMinLen = 4
	memoMaxLen = 64
	// memoResHorizon is the guarded resource-window length: per-cycle
	// resource counts at B+2 .. B+1+memoResHorizon may be guarded; a block
	// probing a resource beyond that aborts its recording.
	memoResHorizon = 128
	// Recording economics: capture is the expensive side of memoization (a
	// hit is pure profit), so each head must earn its keep. A head records
	// while hits*2 + memoRecAllowance >= recordings: the allowance funds the
	// cold start (steady-state hits only flow once a head's recurring entry
	// states are all captured, which can take tens of recordings), and past
	// it every recording must be matched by half a hit. Heads that stop
	// paying fall back to sampling one miss in memoRetryMask+1, so a phase
	// change can still re-earn recording rights.
	memoRecAllowance = 16
	memoROIShift     = 1 // require hits*2 to cover post-allowance recordings
	memoRetryMask    = 31
	// Global payoff gate: blocks whose states recur (hot loops) make
	// memoization a large win, but workloads whose entry states churn make
	// it a net loss — capture costs far more than a hit saves. The memoizer
	// therefore audits itself: every memoProbation block entries it compares
	// instructions replayed by hits against the modeled cost of the
	// recordings and lookups (in interpreted-instruction equivalents:
	// memoRecCost per recording, memoEntryCost per lookup) and shuts itself
	// off for the rest of the Sim's life the first time it is behind.
	// Workloads that pay keep the fast path; workloads that don't converge
	// to interpreter speed after one cheap probation window.
	// During probation — before the first audit passes — recording is
	// restricted to one variant per head: enough for stable-state loops
	// (whose single variant hits immediately) to prove themselves, while a
	// churning workload's probation tax stays near the noise floor. A
	// passing audit unlocks the full allowance.
	memoProbation = 256
	memoRecCost   = 384
	memoEntryCost = 4
	// numTracks indexes Sim.tracks: issue, ALU, FP, branch, memory port.
	numTracks = 5
	trIssue   = 0
	trPort    = 4
)

// DefaultMemoBudget bounds the per-Sim recording store (bytes); least
// recently hit recordings are evicted past it, and their shells are
// recycled, so a budget small enough to cycle keeps steady-state capture
// nearly allocation-free while LRU protects the recordings that pay.
// Override with SetMemoBudget.
const DefaultMemoBudget = 16 << 20

// MemoStats reports the block-timing memoizer's behaviour for one Sim.
type MemoStats struct {
	// BlockEntries counts memo attempts: block-head entries where the gate
	// conditions held and a lookup was performed. Hits+Misses==BlockEntries.
	BlockEntries int64 `json:"block_entries"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	// HitInsts counts instructions replayed via memo application.
	HitInsts   int64 `json:"hit_insts"`
	Recordings int64 `json:"recordings"`
	Evictions  int64 `json:"evictions"`
	Bytes      int64 `json:"bytes"`
	PeakBytes  int64 `json:"peak_bytes"`
	// GuardMisses counts misses where a recording with the block's exact
	// dynamic content existed but its entry-state guard did not match —
	// the state-variant (rather than content-variant) miss population.
	GuardMisses int64 `json:"guard_misses"`
	// Kernel is the replay kernel variant the Sim selected (see
	// Sim.KernelID): 0 generic, 1 specialized dispatch, 2 specialized plus
	// fused direct-mapped cache leaves. Aggregation keeps the maximum.
	Kernel int `json:"kernel"`
}

// HitRate returns Hits/BlockEntries.
func (m MemoStats) HitRate() float64 {
	if m.BlockEntries == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.BlockEntries)
}

// Add accumulates other into m (for aggregation across sims).
func (m *MemoStats) Add(other MemoStats) {
	m.BlockEntries += other.BlockEntries
	m.Hits += other.Hits
	m.Misses += other.Misses
	m.HitInsts += other.HitInsts
	m.Recordings += other.Recordings
	m.Evictions += other.Evictions
	m.Bytes += other.Bytes
	m.PeakBytes += other.PeakBytes
	m.GuardMisses += other.GuardMisses
	if other.Kernel > m.Kernel {
		m.Kernel = other.Kernel
	}
}

// ---- clamps -----------------------------------------------------------
//
// Each clamp maps values indistinguishable by any in-block (or later) read
// to one sentinel. rel is v-B throughout.

// clampReg: register ready times are read as `t > e` (e >= B+3), as
// `regReady[Base] > d1` (d1 >= B+1, the tightest), and as `ready <= c`
// (c >= B+2). Any v <= B+1 compares identically everywhere.
func clampReg(v, b int64) int64 {
	if v-b <= 1 {
		return 1
	}
	return v - b
}

// clampHist: issue-history entries are read as `f < h-2` with f >= B, so
// any h <= B+2 is uniformly "no back-pressure".
func clampHist(v, b int64) int64 {
	if v-b <= 2 {
		return 2
	}
	return v - b
}

// clampLastIssue: read as `ePipe < lastIssue` with ePipe >= B+3.
func clampLastIssue(v, b int64) int64 {
	if v-b <= 3 {
		return 3
	}
	return v - b
}

// clampICCycle: read as `f == icLastCycle` with f >= B; anything below B
// can never match.
func clampICCycle(v, b int64) int64 {
	if v-b < 0 {
		return -1
	}
	return v - b
}

// clampICReady: read as `f >= icLastReady` and `icLastReady > f` with
// f >= B; anything at or below B behaves as "ready long ago".
func clampICReady(v, b int64) int64 {
	if v-b <= 0 {
		return 0
	}
	return v - b
}

// clampStoreMax: read as `storeMaxMem < cycle` with cycle >= B+2.
func clampStoreMax(v, b int64) int64 {
	if v-b < 2 {
		return -1
	}
	return v - b
}

// clampStoreExe: read as `st.exe >= cycle` with cycle >= B+2 (only on live
// slots).
func clampStoreExe(v, b int64) int64 {
	if v-b <= 1 {
		return -1
	}
	return v - b
}

// clampGroup: groupCycle is read as `f < groupCycle` and `f == groupCycle`
// with f >= B; any value below B is uniformly stale (and is overwritten
// with f before groupCount is ever read).
func clampGroup(v, b int64) int64 {
	if v-b < 0 {
		return -1
	}
	return v - b
}

// ---- recording structures --------------------------------------------

type regRel struct {
	r   uint8
	rel int64
}

// resGuard guards one resource track: pre[j] is the logical use count at
// cycle B+2+j, for j in [0, q-1] (covering every cycle the block probed).
type resGuard struct {
	q   int32
	pre []uint8
}

type resAdd struct {
	tr  uint8
	rel int32
	add uint8
}

// storeLive guards one live store-ring slot at entry, identified by its
// backward offset from the ring head (1 = most recently recorded). The
// offset pins which relative slots in-block stores overwrite.
type storeLive struct {
	back   uint8
	exeRel int64 // clamped: <= B+1 is dead for every in-block interlock query
	memRel int64
	ea     int64
	width  int64
}

type storeAdd struct {
	exeRel, memRel, ea, width int64
}

type fillOp struct {
	del     bool
	block   int64
	doneRel int64
}

// fillLive is one in-flight cache fill at block entry: pending for at least
// one in-block access cycle (done >= B+1), so its presence and completion
// time are behaviour the guard must pin. Completed entries (done <= B) are
// dead — any touch removes them and proceeds exactly as if they were absent.
type fillLive struct {
	block   int64
	doneRel int64
}

// collectLiveFills gathers t's live fills relative to b into buf (sorted by
// block; blocks are unique in the fill list). Stale entries are skipped:
// they are behaviourally invisible at every in-block access cycle.
func collectLiveFills(t *timedCache, b int64, buf []fillLive) []fillLive {
	for _, f := range t.fills {
		if f.done-b >= 1 {
			buf = append(buf, fillLive{block: f.block, doneRel: f.done - b})
		}
	}
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].block < buf[j-1].block; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// setRef names one guarded set whose pre-state snapshot lives in the
// recording's shared arena (wayPre for caches, tabPre for the predictor
// table) at [off, off+n). Flat arenas keep a recording to a handful of
// allocations regardless of how many sets the block touches.
type setRef struct {
	set    int64
	off, n int32
}

type wayPatch struct {
	set  int64
	way  uint8
	snap cache.WaySnap // LRU holds the stamp-relative value (lru - preStamp)
}

type tabPatch struct {
	set  int64
	way  uint8
	snap addrpred.EntrySnap // LRU holds the stamp-relative value
}

type btbGuard struct {
	idx  int64
	snap bpred.EntrySnap
}

type rcPatch struct {
	idx  uint8
	snap earlycalc.EntrySnap // LRU holds the stamp-relative value
}

type mechPatch struct {
	set  int64
	way  uint8
	snap mech.EntrySnap // LRU holds the stamp-relative value
}

// metricsDelta is the subset of Metrics StepInst mutates directly (the
// component stats are deltas on the components themselves; Cycles and the
// component mirrors are recomputed by Metrics()).
type metricsDelta struct {
	insts, loads, stores, branches, mispredicts int64
	predict, early                              PathStats
	loadLatSum, zeroCyc, oneCyc                 int64
}

func captureMetrics(m *Metrics) metricsDelta {
	return metricsDelta{
		insts: m.Insts, loads: m.Loads, stores: m.Stores,
		branches: m.Branches, mispredicts: m.Mispredicts,
		predict: m.Predict, early: m.Early,
		loadLatSum: m.LoadLatencySum, zeroCyc: m.ZeroCycleLoads, oneCyc: m.OneCycleLoads,
	}
}

func (d *metricsDelta) subFrom(post metricsDelta) metricsDelta {
	return metricsDelta{
		insts: post.insts - d.insts, loads: post.loads - d.loads,
		stores: post.stores - d.stores, branches: post.branches - d.branches,
		mispredicts: post.mispredicts - d.mispredicts,
		predict:     subPathStats(post.predict, d.predict),
		early:       subPathStats(post.early, d.early),
		loadLatSum:  post.loadLatSum - d.loadLatSum,
		zeroCyc:     post.zeroCyc - d.zeroCyc, oneCyc: post.oneCyc - d.oneCyc,
	}
}

func (d *metricsDelta) addTo(m *Metrics) {
	m.Insts += d.insts
	m.Loads += d.loads
	m.Stores += d.stores
	m.Branches += d.branches
	m.Mispredicts += d.mispredicts
	addPathStats(&m.Predict, d.predict)
	addPathStats(&m.Early, d.early)
	m.LoadLatencySum += d.loadLatSum
	m.ZeroCycleLoads += d.zeroCyc
	m.OneCycleLoads += d.oneCyc
}

func subPathStats(a, b PathStats) PathStats {
	return PathStats{
		Eligible: a.Eligible - b.Eligible, Speculated: a.Speculated - b.Speculated,
		Forwarded: a.Forwarded - b.Forwarded, NoPrediction: a.NoPrediction - b.NoPrediction,
		RegMiss: a.RegMiss - b.RegMiss, RegInterlock: a.RegInterlock - b.RegInterlock,
		MemInterlock: a.MemInterlock - b.MemInterlock, NoPort: a.NoPort - b.NoPort,
		CacheMiss: a.CacheMiss - b.CacheMiss, AddrMispredict: a.AddrMispredict - b.AddrMispredict,
	}
}

func addPathStats(dst *PathStats, d PathStats) {
	dst.Eligible += d.Eligible
	dst.Speculated += d.Speculated
	dst.Forwarded += d.Forwarded
	dst.NoPrediction += d.NoPrediction
	dst.RegMiss += d.RegMiss
	dst.RegInterlock += d.RegInterlock
	dst.MemInterlock += d.MemInterlock
	dst.NoPort += d.NoPort
	dst.CacheMiss += d.CacheMiss
	dst.AddrMispredict += d.AddrMispredict
}

func subCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{Accesses: a.Accesses - b.Accesses, Misses: a.Misses - b.Misses,
		SpecAccesses: a.SpecAccesses - b.SpecAccesses}
}

// memoRec is one recorded block: the guard a later entry must satisfy and
// the effects to apply when it does.
type memoRec struct {
	key        uint64
	bnext      *memoRec // bucket chain
	prev, next *memoRec // LRU list (prev = toward MRU); next doubles as the free-pool link
	bytes      int

	headPC int32
	n      int32

	// Trace columns (guard): the dynamic content must match exactly —
	// effective addresses select cache sets and store interlocks.
	pcs     []int32
	nextPCs []int32
	eas     []int64
	takens  []bool

	// Entry guard (all rels against B, clamped per the rules above).
	groupRel     int64
	groupCount   int32 // compared only when groupRel == 0
	lastIssueRel int64
	icLastBlock  int64
	icCycleRel   int64
	icReadyRel   int64
	storeMaxRel  int64
	histPre      [frontEndSlots]int64 // logical order from seqIdx
	intReads     []regRel
	fpReads      []regRel
	res          [numTracks]resGuard
	liveStores   []storeLive
	icLive       []fillLive // in-flight fills at entry, sorted by block
	dcLive       []fillLive
	icSets       []setRef
	dcSets       []setRef
	wayPre       []cache.WaySnap // shared snapshot arena for icSets+dcSets
	tabSets      []setRef
	tabPre       []addrpred.EntrySnap
	mechSets     []setRef
	mechPre      []mech.EntrySnap
	btbs         []btbGuard
	rc           []earlycalc.EntrySnap // Value zeroed; LRU by rank

	// Exit effects.
	exitFetchRel     int64
	exitGroupRel     int64
	exitGroupCount   int32
	exitLastIssueRel int64
	exitICBlock      int64
	exitICCycleRel   int64
	exitICReadyRel   int64
	blockMaxRel      int64
	histPost         []int64 // newest min(n,18) issue rels, newest first
	intWrites        []regRel
	fpWrites         []regRel
	resAdds          []resAdd
	storeAdds        []storeAdd
	icFills, dcFills []fillOp
	icPatch, dcPatch []wayPatch
	icStampDelta     int64
	dcStampDelta     int64
	tabPatch         []tabPatch
	tabStampDelta    int64
	mechPatch        []mechPatch
	mechStampDelta   int64
	btbPatch         []btbGuard
	rcPatchs         []rcPatch
	rcStampDelta     int64

	dm        metricsDelta
	dICStats  cache.Stats
	dDCStats  cache.Stats
	dTabStats addrpred.Stats
	dBTBStats bpred.Stats
	dRCStats  earlycalc.Stats
	dMechStat mech.Stats
}

// sizeOf estimates a recording's resident bytes for the LRU budget.
func (r *memoRec) sizeOf() int {
	n := 640 // fixed part, rounded up
	n += len(r.pcs)*4 + len(r.nextPCs)*4 + len(r.eas)*8 + len(r.takens)
	n += (len(r.intReads) + len(r.fpReads) + len(r.intWrites) + len(r.fpWrites)) * 16
	for i := range r.res {
		n += len(r.res[i].pre) + 8
	}
	n += len(r.liveStores) * 40
	n += len(r.storeAdds) * 32
	n += len(r.wayPre)*24 + (len(r.icSets)+len(r.dcSets))*16
	n += len(r.tabPre)*48 + len(r.tabSets)*16
	n += len(r.mechPre)*48 + len(r.mechSets)*16 + len(r.mechPatch)*56
	n += len(r.btbs)*40 + len(r.btbPatch)*40
	n += len(r.rc)*32 + len(r.rcPatchs)*40
	n += len(r.histPost) * 8
	n += len(r.resAdds) * 8
	n += (len(r.icFills) + len(r.dcFills)) * 24
	n += (len(r.icLive) + len(r.dcLive)) * 16
	n += (len(r.icPatch) + len(r.dcPatch)) * 40
	n += len(r.tabPatch) * 56
	return n
}

// ---- memo store -------------------------------------------------------

type headSlot struct {
	recs   uint32 // recordings made at this head
	hits   uint32 // hits earned by this head's recordings
	misses uint32 // misses seen (drives the fallback sampling)
}

// blockMemo is the per-Sim recording store: a hash of column-keyed bucket
// chains with an intrusive LRU ordered by last hit/insert.
type blockMemo struct {
	buckets  map[uint64]*memoRec
	mru, lru *memoRec
	bytes    int
	budget   int
	free     *memoRec   // recycled shells (linked via next); capacity survives eviction
	heads    []headSlot // indexed by head PC
	dead     bool       // payoff audit failed: memoization is off for good
	proven   bool       // an audit has passed: full recording allowance unlocked
	stats    MemoStats
}

// audit is the global payoff gate (see memoProbation): called every
// memoProbation block entries, it kills the memoizer the first time the
// cumulative cost model says interpretation would have been cheaper.
func (m *blockMemo) audit() {
	if m.stats.HitInsts < memoRecCost*m.stats.Recordings+memoEntryCost*m.stats.BlockEntries {
		m.dead = true
		// The store will never be consulted again; release it.
		m.buckets = nil
		m.mru, m.lru, m.free = nil, nil, nil
		m.bytes = 0
		m.stats.Bytes = 0
		return
	}
	m.proven = true
}

func newBlockMemo(progLen int) *blockMemo {
	return &blockMemo{
		buckets: make(map[uint64]*memoRec),
		budget:  DefaultMemoBudget,
		heads:   make([]headSlot, progLen),
	}
}

func memoHash(pcs, nextPCs []int32, eas []int64, i, L int) uint64 {
	h := uint64(uint32(pcs[i]))*0x9E3779B97F4A7C15 + uint64(L)
	for j := i; j < i+L; j++ {
		h ^= uint64(eas[j])
		h *= 0x100000001B3
	}
	h ^= uint64(uint32(nextPCs[i+L-1]))
	h *= 0x100000001B3
	return h
}

func (m *blockMemo) lruRemove(r *memoRec) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		m.mru = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		m.lru = r.prev
	}
	r.prev, r.next = nil, nil
}

func (m *blockMemo) lruFront(r *memoRec) {
	r.prev, r.next = nil, m.mru
	if m.mru != nil {
		m.mru.prev = r
	}
	m.mru = r
	if m.lru == nil {
		m.lru = r
	}
}

func (m *blockMemo) touch(r *memoRec) {
	if m.mru == r {
		return
	}
	m.lruRemove(r)
	m.lruFront(r)
}

func (m *blockMemo) insert(r *memoRec) {
	r.bytes = r.sizeOf()
	r.bnext = m.buckets[r.key]
	m.buckets[r.key] = r
	m.lruFront(r)
	m.bytes += r.bytes
	m.stats.Recordings++
	m.stats.Bytes = int64(m.bytes)
	for m.bytes > m.budget && m.mru != m.lru {
		m.evict(m.lru)
	}
	m.stats.Bytes = int64(m.bytes)
	if m.stats.Bytes > m.stats.PeakBytes {
		m.stats.PeakBytes = m.stats.Bytes
	}
}

func (m *blockMemo) evict(r *memoRec) {
	// Unlink from the bucket chain.
	head := m.buckets[r.key]
	if head == r {
		if r.bnext == nil {
			delete(m.buckets, r.key)
		} else {
			m.buckets[r.key] = r.bnext
		}
	} else {
		for p := head; p != nil; p = p.bnext {
			if p.bnext == r {
				p.bnext = r.bnext
				break
			}
		}
	}
	m.lruRemove(r)
	m.bytes -= r.bytes
	m.stats.Evictions++
	m.release(r)
}

// newRec returns a recycled recording shell, or a fresh one. Slice fields
// keep their capacity; the finalizer rebuilds every field with append(f[:0])
// and assigns every scalar, so no zeroing is needed here beyond the links.
func (m *blockMemo) newRec() *memoRec {
	r := m.free
	if r == nil {
		return &memoRec{}
	}
	m.free = r.next
	r.next, r.bnext, r.prev = nil, nil, nil
	return r
}

// release returns an evicted or never-inserted shell to the pool.
func (m *blockMemo) release(r *memoRec) {
	r.bnext, r.prev = nil, nil
	r.next = m.free
	m.free = r
}

// shouldRecord implements the per-head return-on-investment throttle
// described at memoRecAllowance above.
func (m *blockMemo) shouldRecord(pc int32) bool {
	h := &m.heads[pc]
	h.misses++
	if !m.proven {
		if h.recs == 0 {
			h.recs++
			return true
		}
		return false
	}
	if h.hits<<memoROIShift+memoRecAllowance >= h.recs {
		h.recs++
		return true
	}
	if h.misses&memoRetryMask == 0 {
		h.recs++
		return true
	}
	return false
}

func (m *blockMemo) noteHit(r *memoRec) {
	m.heads[r.headPC].hits++
}

// ---- recorder ---------------------------------------------------------

// recSet is one touched set during recording: its snapshot lives in the
// shared arena at [off, off+n).
type recSet struct {
	set    int64
	off, n int32
}

// memoRecorder is the reusable capture arena for one in-progress block
// recording. One per Sim, reset per recording; it allocates only when a
// capacity grows past every prior block's.
type memoRecorder struct {
	active  bool
	aborted bool
	start   int // chunk index of the block head
	base    int64

	preRegReady [isa.NumIntRegs]int64
	preFPReady  [isa.NumFPRegs]int64
	preHist     [frontEndSlots]int64
	preSeqIdx   int

	preGroupCycle  int64
	preGroupCount  int
	preLastIssue   int64
	preICLastBlock int64
	preICLastCycle int64
	preICLastReady int64
	preStoreMax    int64
	preStores      [64]storeRec
	preStoreHead   int
	savedMaxDone   int64

	preStampIC, preStampDC, preStampTab, preStampRC int64
	preStampMech                                    int64

	preM         metricsDelta
	preICStats   cache.Stats
	preDCStats   cache.Stats
	preTabStats  addrpred.Stats
	preBTBStats  bpred.Stats
	preRCStats   earlycalc.Stats
	preMechStats mech.Stats

	resTouched [numTracks]bool
	resWin     [numTracks][memoResHorizon]uint8
	resMaxRel  [numTracks]int64

	icTouched []recSet
	dcTouched []recSet
	wayBuf    []cache.WaySnap
	tabSets   []recSet
	tabBuf    []addrpred.EntrySnap
	mechSets  []recSet
	mechBuf   []mech.EntrySnap
	btbIdx    []int64
	btbPre    []bpred.EntrySnap
	rcTouched bool
	rcPre     []earlycalc.EntrySnap

	icFills []fillOp
	dcFills []fillOp

	preICLive []fillLive
	preDCLive []fillLive

	// scratch for finalize-time set diffs and register walk
	snapScratch []cache.WaySnap
	tabScratch  []addrpred.EntrySnap
	mechScratch []mech.EntrySnap
	rcScratch   []earlycalc.EntrySnap
	fillScratch []fillLive
	intW, fpW   [64]bool
	intR, fpR   [64]bool
}

// touchCacheSet pre-snapshots the set addr maps to in cache ci, once.
func (r *memoRecorder) touchCacheSet(ci uint8, c *cache.Cache, addr int64) {
	if r.aborted {
		return
	}
	set := c.SetIndexOf(addr)
	touched := &r.icTouched
	if ci == 1 {
		touched = &r.dcTouched
	}
	for i := range *touched {
		if (*touched)[i].set == set {
			return
		}
	}
	off := int32(len(r.wayBuf))
	r.wayBuf = c.SnapSet(set, r.wayBuf)
	*touched = append(*touched, recSet{set: set, off: off, n: int32(len(r.wayBuf)) - off})
}

func (r *memoRecorder) noteFill(ci uint8, op fillOp) {
	if r.aborted {
		return
	}
	if ci == 0 {
		r.icFills = append(r.icFills, op)
	} else {
		r.dcFills = append(r.dcFills, op)
	}
}

// touchTableSet pre-snapshots the predictor set pc maps to, once.
func (r *memoRecorder) touchTableSet(t *addrpred.Table, pc int) {
	if r.aborted {
		return
	}
	set := t.SetIndexOf(pc)
	for i := range r.tabSets {
		if r.tabSets[i].set == set {
			return
		}
	}
	off := int32(len(r.tabBuf))
	r.tabBuf = t.SnapSet(set, r.tabBuf)
	r.tabSets = append(r.tabSets, recSet{set: set, off: off, n: int32(len(r.tabBuf)) - off})
}

// touchMechSet pre-snapshots the assist-mechanism set pc maps to, once.
func (r *memoRecorder) touchMechSet(m mech.Mechanism, pc int64) {
	if r.aborted {
		return
	}
	set := int64(m.SetIndexOf(pc))
	for i := range r.mechSets {
		if r.mechSets[i].set == set {
			return
		}
	}
	off := int32(len(r.mechBuf))
	r.mechBuf = m.SnapSet(int(set), r.mechBuf)
	r.mechSets = append(r.mechSets, recSet{set: set, off: off, n: int32(len(r.mechBuf)) - off})
}

// touchBTB pre-snapshots the BTB entry pc maps to, once.
func (r *memoRecorder) touchBTB(b *bpred.BTB, pc int) {
	if r.aborted {
		return
	}
	idx := b.IndexOf(pc)
	for _, v := range r.btbIdx {
		if v == idx {
			return
		}
	}
	r.btbIdx = append(r.btbIdx, idx)
	r.btbPre = append(r.btbPre, b.SnapEntry(idx))
}

// touchRegCache pre-snapshots the whole register cache, once.
func (r *memoRecorder) touchRegCache(c *earlycalc.Cache) {
	if r.aborted || r.rcTouched {
		return
	}
	r.rcTouched = true
	r.rcPre = c.Snap(r.rcPre[:0])
}

// resPre captures track tr's pre window on first touch. Must run before
// the first in-block mutation (tryUse) of the track; read-only avail
// probes before it are harmless.
func (r *memoRecorder) resPre(s *Sim, tr int) {
	if r.aborted || r.resTouched[tr] {
		return
	}
	r.resTouched[tr] = true
	t := s.tracks[tr]
	for j := 0; j < memoResHorizon; j++ {
		r.resWin[tr][j] = t.peek(r.base + 2 + int64(j))
	}
}

// resNote records the highest cycle the block probed on track tr; a probe
// past the guarded horizon aborts the recording.
func (r *memoRecorder) resNote(tr int, cycle int64) {
	if r.aborted {
		return
	}
	rel := cycle - r.base
	if rel < 2 || rel > 1+memoResHorizon {
		r.aborted = true
		return
	}
	if rel > r.resMaxRel[tr] {
		r.resMaxRel[tr] = rel
	}
}

// resTouch is resPre+resNote for single-point reservation sites.
func (r *memoRecorder) resTouch(s *Sim, tr int, cycle int64) {
	r.resPre(s, tr)
	r.resNote(tr, cycle)
}

func (r *memoRecorder) reset() {
	r.active = true
	r.aborted = false
	r.icTouched = r.icTouched[:0]
	r.dcTouched = r.dcTouched[:0]
	r.wayBuf = r.wayBuf[:0]
	r.tabSets = r.tabSets[:0]
	r.tabBuf = r.tabBuf[:0]
	r.mechSets = r.mechSets[:0]
	r.mechBuf = r.mechBuf[:0]
	r.btbIdx = r.btbIdx[:0]
	r.btbPre = r.btbPre[:0]
	r.rcTouched = false
	r.icFills = r.icFills[:0]
	r.dcFills = r.dcFills[:0]
	r.preICLive = r.preICLive[:0]
	r.preDCLive = r.preDCLive[:0]
	for i := range r.resTouched {
		r.resTouched[i] = false
		r.resMaxRel[i] = 0
	}
}
