package pipeline

import (
	"fmt"

	"elag/internal/addrpred"
	"elag/internal/bpred"
	"elag/internal/cache"
	"elag/internal/earlycalc"
	"elag/internal/mech"
)

// Selection chooses how loads are steered to the early address generation
// mechanisms, corresponding to the configurations evaluated in Section 5.
type Selection uint8

// Selection policies.
const (
	// SelNone disables early address generation entirely: the base
	// architecture all speedups are measured against.
	SelNone Selection = iota
	// SelCompiler follows the compiler-assigned load flavours: ld_p
	// loads use the prediction table, ld_e loads use the addressing
	// register cache, ld_n loads speculate on neither (the paper's
	// proposed scheme).
	SelCompiler
	// SelAllPredict treats every load as predictable: all loads probe
	// and allocate prediction-table entries (hardware-only prediction,
	// Figure 5a "no compiler support").
	SelAllPredict
	// SelAllEarly gives every register+offset load the early-calculation
	// path through the register cache, allocating base registers on use
	// (hardware-only early calculation, Figure 5b).
	SelAllEarly
	// SelHWDual is the hardware-only dual-path run-time heuristic of
	// Eickemeyer and Vassiliadis used in Figure 5c: a load whose base
	// register is interlocked at decode is steered to the prediction
	// table; otherwise it uses the early-calculation register cache.
	SelHWDual
)

// String names the selection policy.
func (s Selection) String() string {
	switch s {
	case SelNone:
		return "none"
	case SelCompiler:
		return "compiler"
	case SelAllPredict:
		return "hw-predict"
	case SelAllEarly:
		return "hw-early"
	case SelHWDual:
		return "hw-dual"
	}
	return "?"
}

// Config parameterizes the timing model. The zero value, passed through
// (*Config).fill, yields the paper's base architecture of Section 5.1:
// 6-wide in-order issue; 4 integer ALUs, 2 memory ports, 2 FP ALUs, 1
// branch unit; 64K direct-mapped I and D caches with 64-byte blocks and a
// 12-cycle miss penalty; a 1K-entry BTB with 2-bit counters; and no early
// address generation.
type Config struct {
	// FetchWidth and IssueWidth bound instructions per cycle. Default 6.
	FetchWidth int
	IssueWidth int
	// Functional units. Defaults: 4 integer ALUs, 2 memory ports
	// (shared with the data cache), 2 FP ALUs, 1 branch unit.
	IntALUs     int
	MemPorts    int
	FPALUs      int
	BranchUnits int
	// Latencies in cycles. Defaults follow the HP PA-7100 model: 1 for
	// most integer ops (LatInt), 2 for loads (address + access), 3 for
	// integer multiply, 8 for divide/remainder, 2 for FP.
	LatMul int
	LatDiv int
	LatFP  int

	// ICache and DCache configure the memory system; zero fields take
	// the paper defaults (see package cache).
	ICache cache.Config
	DCache cache.Config
	// BTB configures the branch predictor (default 1024 entries).
	BTB bpred.Config

	// Select steers loads to the early-address-generation hardware.
	Select Selection
	// Predictor, when non-nil, instantiates the PC-indexed address
	// prediction table (used by SelCompiler, SelAllPredict, SelHWDual).
	Predictor *addrpred.Config
	// RegCache, when non-nil, instantiates the early-calculation
	// addressing register cache; Entries=1 is the paper's R_addr.
	RegCache *earlycalc.Config

	// Mechanisms names load-acceleration mechanisms by registry spec (see
	// package mech). Specs of the two paper kinds ("addrpred",
	// "earlycalc") are normalized by New into the Predictor / RegCache
	// fields above, so the spec vocabulary and the typed pointers are two
	// spellings of one configuration (setting both is an error). At most
	// one spec of any other kind may appear: it attaches as the assist
	// mechanism, which drives every load through the registry interface
	// and is mutually exclusive with the paper mechanisms.
	Mechanisms []mech.Spec
}

// assistSpec returns the configured non-paper mechanism spec, if any.
func (c *Config) assistSpec() (mech.Spec, bool) {
	for _, sp := range c.Mechanisms {
		if sp.Kind != "addrpred" && sp.Kind != "earlycalc" {
			return sp, true
		}
	}
	return mech.Spec{}, false
}

// PaperBase returns the base architecture configuration without early
// address generation.
func PaperBase() Config { return Config{} }

// PaperCompilerDirected returns the paper's headline configuration: a
// 256-entry direct-mapped prediction table plus a single compiler-directed
// addressing register, with compiler-selected load flavours.
func PaperCompilerDirected() Config {
	return Config{
		Select:    SelCompiler,
		Predictor: &addrpred.Config{Entries: 256},
		RegCache:  &earlycalc.Config{Entries: 1},
	}
}

func (c *Config) fill() {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&c.FetchWidth, 6)
	def(&c.IssueWidth, 6)
	def(&c.IntALUs, 4)
	def(&c.MemPorts, 2)
	def(&c.FPALUs, 2)
	def(&c.BranchUnits, 1)
	def(&c.LatMul, 3)
	def(&c.LatDiv, 8)
	def(&c.LatFP, 2)
}

// Validate reports whether the configuration (with zero fields defaulted)
// describes a realizable machine, including the geometry of every attached
// structure. A Config that validates cleanly cannot make New fail or the
// timing model stall forever.
func (c Config) Validate() error {
	c.fill()
	widths := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth},
		{"IssueWidth", c.IssueWidth},
		{"IntALUs", c.IntALUs},
		{"MemPorts", c.MemPorts},
		{"FPALUs", c.FPALUs},
		{"BranchUnits", c.BranchUnits},
	}
	for _, w := range widths {
		// Resource counters saturate a uint8 per cycle; a zero capacity
		// would deadlock the issue loop.
		if w.v < 1 || w.v > 200 {
			return fmt.Errorf("pipeline: %s (%d) must be in [1,200]", w.name, w.v)
		}
	}
	if c.LatMul < 1 || c.LatDiv < 1 || c.LatFP < 1 {
		return fmt.Errorf("pipeline: latencies must be >= 1 (mul %d, div %d, fp %d)",
			c.LatMul, c.LatDiv, c.LatFP)
	}
	if err := c.ICache.Validate(); err != nil {
		return fmt.Errorf("pipeline: icache: %w", err)
	}
	if err := c.DCache.Validate(); err != nil {
		return fmt.Errorf("pipeline: dcache: %w", err)
	}
	if err := c.BTB.Validate(); err != nil {
		return fmt.Errorf("pipeline: btb: %w", err)
	}
	if c.Select > SelHWDual {
		return fmt.Errorf("pipeline: unknown selection policy %d", c.Select)
	}
	if c.Predictor != nil {
		if err := c.Predictor.Validate(); err != nil {
			return fmt.Errorf("pipeline: predictor: %w", err)
		}
	}
	if c.RegCache != nil {
		if err := c.RegCache.Validate(); err != nil {
			return fmt.Errorf("pipeline: regcache: %w", err)
		}
	}
	var nPred, nRC, nAssist int
	for _, sp := range c.Mechanisms {
		if err := mech.Validate(sp); err != nil {
			return fmt.Errorf("pipeline: mechanism %s: %w", sp, err)
		}
		switch sp.Kind {
		case "addrpred":
			nPred++
		case "earlycalc":
			nRC++
		default:
			nAssist++
		}
	}
	if nPred > 1 || (nPred == 1 && c.Predictor != nil) {
		return fmt.Errorf("pipeline: the prediction table is configured twice (Predictor and an addrpred mechanism spec)")
	}
	if nRC > 1 || (nRC == 1 && c.RegCache != nil) {
		return fmt.Errorf("pipeline: the register cache is configured twice (RegCache and an earlycalc mechanism spec)")
	}
	if nAssist > 1 {
		return fmt.Errorf("pipeline: at most one assist mechanism may be configured (got %d)", nAssist)
	}
	if nAssist == 1 && (c.Predictor != nil || c.RegCache != nil || nPred > 0 || nRC > 0) {
		return fmt.Errorf("pipeline: an assist mechanism is mutually exclusive with the paper mechanisms")
	}
	return nil
}
