package emu

import (
	"errors"
	"testing"
	"testing/quick"

	"elag/internal/asm"
	"elag/internal/asm/asmtest"
	"elag/internal/isa"
)

func run(t *testing.T, src string) Result {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := Run(p, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
	main:	li r1, 7
		li r2, 3
		add r3, r1, r2    ; 10
		sub r4, r3, 1     ; 9
		mul r5, r4, r4    ; 81
		div r6, r5, 2     ; 40
		rem r7, r5, 7     ; 4
		and r8, r5, 68    ; 81&68 = 64
		or  r9, r8, 1     ; 65
		xor r10, r9, 64   ; 1
		sll r11, r10, 6   ; 64
		srl r12, r11, 3   ; 8
		li  r13, -16
		sra r14, r13, 2   ; -4
		slt r15, r13, r12 ; 1
		sltu r16, r13, r12 ; 0 (-16 unsigned is huge)
		add r20, r0, 0
		add r20, r20, r3
		add r20, r20, r4
		add r20, r20, r5
		add r20, r20, r6
		add r20, r20, r7
		add r20, r20, r8
		add r20, r20, r9
		add r20, r20, r10
		add r20, r20, r11
		add r20, r20, r12
		add r20, r20, r14
		add r20, r20, r15
		add r20, r20, r16
		halt r20
	`)
	want := int64(10 + 9 + 81 + 40 + 4 + 64 + 65 + 1 + 64 + 8 - 4 + 1 + 0)
	if res.ExitCode != want {
		t.Errorf("exit = %d, want %d", res.ExitCode, want)
	}
}

func TestRegZeroIsHardwired(t *testing.T) {
	res := run(t, `
	main:	add r0, r0, 99
		halt r0
	`)
	if res.ExitCode != 0 {
		t.Errorf("write to r0 stuck: exit %d", res.ExitCode)
	}
}

func TestMemoryWidthsAndSign(t *testing.T) {
	res := run(t, `
		.data
	buf:	.space 64
		.text
	main:	li r1, -2           ; 0xFFFF...FE
		li r2, buf
		st1 r1, r2(0)
		st2 r1, r2(8)
		st4 r1, r2(16)
		st8 r1, r2(24)
		ld1_n r3, r2(0)     ; 254 zero-extended
		ld1s_n r4, r2(0)    ; -2 sign-extended
		ld2_n r5, r2(8)     ; 65534
		ld2s_n r6, r2(8)    ; -2
		ld4s_n r7, r2(16)   ; -2
		ld8_n r8, r2(24)    ; -2
		li r9, 2147479552   ; OutInt port
		st8 r3, r9(0)
		st8 r4, r9(0)
		st8 r5, r9(0)
		st8 r6, r9(0)
		st8 r7, r9(0)
		st8 r8, r9(0)
		halt r0
	`)
	want := []int64{254, -2, 65534, -2, -2, -2}
	if len(res.IntOut) != len(want) {
		t.Fatalf("got %v, want %v", res.IntOut, want)
	}
	for i := range want {
		if res.IntOut[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, res.IntOut[i], want[i])
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	res := run(t, `
	main:	li r1, 0
		li r2, 0
	loop:	add r2, r2, r1
		add r1, r1, 1
		blt r1, 101, loop
		halt r2
	`)
	if res.ExitCode != 5050 {
		t.Errorf("sum = %d, want 5050", res.ExitCode)
	}
}

func TestCallRet(t *testing.T) {
	res := run(t, `
	main:	li r1, 20
		call r63, double
		halt r1
	double:	add r1, r1, r1
		ret
	`)
	if res.ExitCode != 40 {
		t.Errorf("exit = %d, want 40", res.ExitCode)
	}
}

func TestTraceRecordsLoadsAndBranches(t *testing.T) {
	p, err := asm.Assemble(`
		.data
	v:	.word 77
		.text
	main:	ld8_n r1, (v)
		beq r1, 77, yes
		halt r0
	yes:	halt r1
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, trace, err := RunTrace(p, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 77 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if trace.Len() != 3 {
		t.Fatalf("trace length %d, want 3", trace.Len())
	}
	if trace.At(0).EA != p.DataSymbols["v"] {
		t.Errorf("load EA = %#x, want %#x", trace.At(0).EA, p.DataSymbols["v"])
	}
	if !trace.At(1).Taken || trace.At(1).NextPC != p.Symbols["yes"] {
		t.Errorf("branch trace wrong: %+v", trace.At(1))
	}
	if trace.At(0).Taken || trace.At(0).NextPC != 1 {
		t.Errorf("non-branch trace wrong: %+v", trace.At(0))
	}
}

func TestFuelExhaustion(t *testing.T) {
	p := asmtest.MustAssemble(t, "main: jmp main")
	_, err := Run(p, 100)
	if !errors.Is(err, ErrFuel) {
		t.Errorf("err = %v, want ErrFuel", err)
	}
	var f *isa.Fault
	if !errors.As(err, &f) || f.Kind != isa.FaultFuel {
		t.Errorf("err = %#v, want *isa.Fault{Kind: FaultFuel}", err)
	}
}

func TestDivByZeroFaults(t *testing.T) {
	p := asmtest.MustAssemble(t, "main: div r1, r1, r0\nhalt r0")
	_, err := Run(p, 100)
	if err == nil {
		t.Errorf("division by zero did not fault")
	}
	assertFault(t, err, isa.FaultDivZero)
}

// assertFault checks err is a *isa.Fault of the given kind, matchable
// both by errors.As and by errors.Is against a kind-only template.
func assertFault(t *testing.T, err error, kind isa.FaultKind) {
	t.Helper()
	var f *isa.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %T (%v), want *isa.Fault", err, err)
	}
	if f.Kind != kind {
		t.Fatalf("fault kind = %v, want %v (fault: %v)", f.Kind, kind, f)
	}
	if !errors.Is(err, &isa.Fault{Kind: kind}) {
		t.Errorf("errors.Is does not match kind template for %v", err)
	}
	if f.Error() == "" {
		t.Errorf("fault has empty message")
	}
}

func TestMisalignedLoadFaults(t *testing.T) {
	p := asmtest.MustAssemble(t, "main:\tli r2, 4\n\tld8_n r1, r2(0)\n\thalt r1")
	_, err := Run(p, 100)
	assertFault(t, err, isa.FaultMisaligned)
	var f *isa.Fault
	errors.As(err, &f)
	if f.Addr != 4 || f.PC != 1 {
		t.Errorf("fault context = %+v, want Addr 4 at PC 1", f)
	}
}

func TestOutOfBoundsStoreFaults(t *testing.T) {
	p := asmtest.MustAssemble(t, "main:\tli r2, -8\n\tst8 r1, r2(0)\n\thalt r1")
	_, err := Run(p, 100)
	assertFault(t, err, isa.FaultOutOfBounds)

	// Above the top of the address space too.
	p = asmtest.MustAssemble(t, "main:\tli r2, 1\n\tsll r2, r2, 41\n\tst8 r1, r2(0)\n\thalt r1")
	_, err = Run(p, 100)
	assertFault(t, err, isa.FaultOutOfBounds)
}

func TestJumpPastProgramFaults(t *testing.T) {
	// jr to a PC beyond the last instruction.
	p := asmtest.MustAssemble(t, "main:\tli r5, 1000\n\tjr r5")
	_, err := Run(p, 100)
	assertFault(t, err, isa.FaultBadPC)

	// Falling off the end of the text (no halt) is the same fault.
	p = asmtest.MustAssemble(t, "main:\tadd r1, r1, 1")
	_, err = Run(p, 100)
	assertFault(t, err, isa.FaultBadPC)
}

func TestIllegalOpcodeFaults(t *testing.T) {
	p := &isa.Program{
		Insts:       []isa.Inst{{Op: isa.Op(250)}},
		Symbols:     map[string]int{"main": 0},
		DataSymbols: map[string]int64{},
	}
	_, err := Run(p, 100)
	assertFault(t, err, isa.FaultIllegalOp)
}

func TestFaultCarriesSequenceNumber(t *testing.T) {
	p := asmtest.MustAssemble(t, "main:\tnop\n\tnop\n\tli r2, 4\n\tld8_n r1, r2(0)\n\thalt r1")
	_, err := Run(p, 100)
	var f *isa.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v", err)
	}
	if f.SeqNum != 3 {
		t.Errorf("fault SeqNum = %d, want 3", f.SeqNum)
	}
}

func TestFloatingPoint(t *testing.T) {
	res := run(t, `
	main:	li r1, 7
		cvtif f1, r1
		li r2, 2
		cvtif f2, r2
		fdiv f3, f1, f2   ; 3.5
		fadd f4, f3, f3   ; 7.0
		fmul f5, f4, f2   ; wrong: f2 not set? f2 = 2.0; 14.0
		fsub f6, f5, f1   ; 7.0
		cvtfi r3, f6
		halt r3
	`)
	if res.ExitCode != 7 {
		t.Errorf("fp result = %d, want 7", res.ExitCode)
	}
}

// Property: memory reads return exactly what was written, for all widths,
// and unwritten memory reads as zero.
func TestMemoryRoundTrip(t *testing.T) {
	f := func(addr int64, v uint64, w uint8) bool {
		width := []int{1, 2, 4, 8}[int(w)%4]
		addr &= 0x7FFF_FFFF
		m := NewMemory()
		m.Write(addr, v, width)
		var mask uint64 = (1 << (8 * uint(width))) - 1
		if width == 8 {
			mask = ^uint64(0)
		}
		return m.Read(addr, width) == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := int64(pageSize - 3) // straddles the first page boundary
	m.Write(addr, 0x1122334455667788, 8)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestMemorySignExtension(t *testing.T) {
	m := NewMemory()
	m.Write(100, 0x80, 1)
	if got := m.ReadSigned(100, 1); got != -128 {
		t.Errorf("signed byte = %d, want -128", got)
	}
	if got := m.Read(100, 1); got != 0x80 {
		t.Errorf("unsigned byte = %#x", got)
	}
}

func TestEAModes(t *testing.T) {
	c := New(&isa.Program{Insts: []isa.Inst{{Op: isa.OpHalt}}})
	c.R[2] = 1000
	c.R[3] = 24
	if ea := c.EA(&isa.Inst{Mode: isa.AMRegOffset, Base: 2, Imm: 8}); ea != 1008 {
		t.Errorf("reg+off EA = %d", ea)
	}
	if ea := c.EA(&isa.Inst{Mode: isa.AMRegReg, Base: 2, Index: 3}); ea != 1024 {
		t.Errorf("reg+reg EA = %d", ea)
	}
	if ea := c.EA(&isa.Inst{Mode: isa.AMAbsolute, Imm: 4096}); ea != 4096 {
		t.Errorf("absolute EA = %d", ea)
	}
}
