package emu

import (
	"encoding/binary"

	"elag/internal/isa"
)

// pageBits selects 64 KiB pages for the sparse memory image.
const pageBits = 16
const pageSize = 1 << pageBits
const pageMask = pageSize - 1

// Memory is a sparse, paged, little-endian byte-addressable data memory.
// Pages are allocated on first touch; unwritten memory reads as zero.
// The zero value is ready to use.
type Memory struct {
	pages map[int64]*[pageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*[pageSize]byte)}
}

func (m *Memory) page(addr int64, create bool) *[pageSize]byte {
	if m.pages == nil {
		m.pages = make(map[int64]*[pageSize]byte)
	}
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base int64, data []byte) {
	for i, b := range data {
		m.SetByte(base+int64(i), b)
	}
}

// ReadByte returns the byte at addr.
func (m *Memory) ByteAt(addr int64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// WriteByte stores b at addr.
func (m *Memory) SetByte(addr int64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns the width-byte little-endian value at addr, zero-extended.
// Width must be 1, 2, 4 or 8.
func (m *Memory) Read(addr int64, width int) uint64 {
	// Fast path: access within one page.
	if p := m.page(addr, false); p != nil && int(addr&pageMask)+width <= pageSize {
		off := addr & pageMask
		switch width {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(m.ByteAt(addr+int64(i))) << (8 * i)
	}
	return v
}

// Write stores the low width bytes of v at addr, little-endian.
func (m *Memory) Write(addr int64, v uint64, width int) {
	if p := m.page(addr, true); int(addr&pageMask)+width <= pageSize {
		off := addr & pageMask
		switch width {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < width; i++ {
		m.SetByte(addr+int64(i), byte(v>>(8*i)))
	}
}

// ReadSigned returns the width-byte value at addr sign-extended to int64.
func (m *Memory) ReadSigned(addr int64, width int) int64 {
	v := m.Read(addr, width)
	shift := uint(64 - 8*width)
	return int64(v<<shift) >> shift
}

// CheckAccess validates an access of width bytes at addr against the
// architectural address space and natural alignment, returning a typed
// fault (without position context) or nil. Read/Write themselves stay
// infallible on the sparse image; the emulator checks before accessing.
func (m *Memory) CheckAccess(addr int64, width int) *isa.Fault {
	return isa.CheckAccess(addr, width)
}

// Footprint returns the number of bytes of allocated pages, a rough measure
// of the program's touched memory.
func (m *Memory) Footprint() int64 {
	return int64(len(m.pages)) * pageSize
}
