// Package emu implements the functional (architectural) emulator for the
// repository's RISC ISA. It is the front half of the paper's
// "emulation-driven simulator": it executes programs exactly, producing a
// dynamic instruction trace — PCs, effective addresses, base-register
// values, and branch outcomes — that the timing model in package pipeline
// replays cycle by cycle.
package emu

import (
	"context"
	"errors"
	"fmt"
	"math"

	"elag/internal/chaosinject"
	"elag/internal/isa"
)

// Console I/O is memory-mapped: stores to these addresses are intercepted by
// the emulator instead of writing data memory.
const (
	// OutInt appends the stored value to the run's integer output stream.
	OutInt int64 = 0x7FFF_F000
	// OutChar appends the low byte of the stored value to the run's
	// character output stream.
	OutChar int64 = 0x7FFF_F008
)

// ErrFuel is the sentinel for a program that exceeds its instruction
// budget, usually indicating an infinite loop in a test program. Returned
// fuel faults carry position context; match them with errors.Is(err,
// ErrFuel) or errors.As into *isa.Fault.
var ErrFuel error = &isa.Fault{Kind: isa.FaultFuel}

// DefaultStackTop is the initial stack pointer if the runner does not set
// one. The stack grows downward.
const DefaultStackTop int64 = 0x4000_0000

// TraceEntry records one dynamic instruction for the timing model. For
// memory operations it carries the architecturally correct effective
// address, which the timing model uses to verify speculative addresses.
type TraceEntry struct {
	PC      int   // instruction index
	SeqNum  int64 // dynamic sequence number, 0-based
	EA      int64 // effective address (memory ops only)
	BaseVal int64 // value of the base register when executed (reg modes)
	Taken   bool  // branch outcome (OpBr); true for jmp/call/jr
	NextPC  int   // PC of the next executed instruction
}

// Result summarizes an emulation run.
type Result struct {
	ExitCode     int64
	DynamicInsts int64
	DynamicLoads int64
	DynamicStore int64
	IntOut       []int64 // values stored to OutInt, in order
	CharOut      []byte  // bytes stored to OutChar, in order
}

// Output returns a compact printable form of the run's observable output,
// used by tests to compare architectural results across configurations.
func (r *Result) Output() string {
	return fmt.Sprintf("exit=%d ints=%v chars=%q", r.ExitCode, r.IntOut, string(r.CharOut))
}

// CPU is the architectural machine state plus the loaded program.
type CPU struct {
	Prog *isa.Program
	Mem  *Memory
	R    [isa.NumIntRegs]int64
	F    [isa.NumFPRegs]float64
	PC   int

	res    Result
	halted bool
}

// New creates a CPU with prog loaded: data image copied in, PC at the entry
// point, and the stack pointer initialized.
func New(prog *isa.Program) *CPU {
	c := &CPU{Prog: prog, Mem: NewMemory(), PC: prog.Entry}
	c.Mem.LoadImage(prog.DataBase, prog.Data)
	c.R[isa.RegSP] = DefaultStackTop
	return c
}

// Halted reports whether the program has executed OpHalt.
func (c *CPU) Halted() bool { return c.halted }

// Result returns the run summary; valid once Halted is true (or at any point
// for the counters accumulated so far).
func (c *CPU) Result() Result { return c.res }

// EA computes the architectural effective address of a memory instruction
// given the current register state.
func (c *CPU) EA(in *isa.Inst) int64 {
	switch in.Mode {
	case isa.AMRegOffset:
		return c.R[in.Base] + in.Imm
	case isa.AMRegReg:
		return c.R[in.Base] + c.R[in.Index]
	default:
		return in.Imm
	}
}

// fault builds a typed architectural fault positioned at the current
// instruction.
func (c *CPU) fault(kind isa.FaultKind, addr int64, detail string) *isa.Fault {
	return &isa.Fault{Kind: kind, PC: c.PC, SeqNum: c.res.DynamicInsts, Addr: addr, Detail: detail}
}

// checkAccess validates the effective address of a memory operation,
// returning a positioned *isa.Fault (misaligned or out-of-bounds) or nil.
func (c *CPU) checkAccess(ea int64, width int) error {
	if f := c.Mem.CheckAccess(ea, width); f != nil {
		f.PC, f.SeqNum = c.PC, c.res.DynamicInsts
		return f
	}
	return nil
}

// Step executes one instruction and fills te (which may be nil) with its
// trace record. Architectural faults — bad PC, misaligned or out-of-bounds
// memory access, illegal opcode, division by zero — are returned as typed
// *isa.Fault errors; architectural state is left as of the instruction
// before the faulting one.
func (c *CPU) Step(te *TraceEntry) error {
	if c.halted {
		return errors.New("emu: step after halt")
	}
	if c.PC < 0 || c.PC >= len(c.Prog.Insts) {
		return c.fault(isa.FaultBadPC, 0,
			fmt.Sprintf("PC outside program [0,%d)", len(c.Prog.Insts)))
	}
	in := &c.Prog.Insts[c.PC]
	pc := c.PC
	next := pc + 1
	var ea, baseVal int64
	taken := false

	src2 := func() int64 {
		if in.SrcImm {
			return in.Imm
		}
		return c.R[in.Rs2]
	}
	setR := func(r isa.Reg, v int64) {
		if r != isa.RegZero {
			c.R[r] = v
		}
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		setR(in.Rd, c.R[in.Rs1]+src2())
	case isa.OpSub:
		setR(in.Rd, c.R[in.Rs1]-src2())
	case isa.OpMul:
		setR(in.Rd, c.R[in.Rs1]*src2())
	case isa.OpDiv:
		d := src2()
		if d == 0 {
			return c.fault(isa.FaultDivZero, 0, "")
		}
		setR(in.Rd, c.R[in.Rs1]/d)
	case isa.OpRem:
		d := src2()
		if d == 0 {
			return c.fault(isa.FaultDivZero, 0, "remainder")
		}
		setR(in.Rd, c.R[in.Rs1]%d)
	case isa.OpAnd:
		setR(in.Rd, c.R[in.Rs1]&src2())
	case isa.OpOr:
		setR(in.Rd, c.R[in.Rs1]|src2())
	case isa.OpXor:
		setR(in.Rd, c.R[in.Rs1]^src2())
	case isa.OpSll:
		setR(in.Rd, c.R[in.Rs1]<<(uint64(src2())&63))
	case isa.OpSrl:
		setR(in.Rd, int64(uint64(c.R[in.Rs1])>>(uint64(src2())&63)))
	case isa.OpSra:
		setR(in.Rd, c.R[in.Rs1]>>(uint64(src2())&63))
	case isa.OpSlt:
		if c.R[in.Rs1] < src2() {
			setR(in.Rd, 1)
		} else {
			setR(in.Rd, 0)
		}
	case isa.OpSltu:
		if uint64(c.R[in.Rs1]) < uint64(src2()) {
			setR(in.Rd, 1)
		} else {
			setR(in.Rd, 0)
		}
	case isa.OpLUI:
		setR(in.Rd, in.Imm)

	case isa.OpLoad:
		ea = c.EA(in)
		baseVal = c.R[in.Base]
		if err := c.checkAccess(ea, int(in.Width)); err != nil {
			return err
		}
		var v int64
		if in.Signed {
			v = c.Mem.ReadSigned(ea, int(in.Width))
		} else {
			v = int64(c.Mem.Read(ea, int(in.Width)))
		}
		setR(in.Rd, v)
		c.res.DynamicLoads++
	case isa.OpStore:
		ea = c.EA(in)
		baseVal = c.R[in.Base]
		if err := c.checkAccess(ea, int(in.Width)); err != nil {
			return err
		}
		c.res.DynamicStore++
		switch ea {
		case OutInt:
			c.res.IntOut = append(c.res.IntOut, c.R[in.Rs2])
		case OutChar:
			c.res.CharOut = append(c.res.CharOut, byte(c.R[in.Rs2]))
		default:
			c.Mem.Write(ea, uint64(c.R[in.Rs2]), int(in.Width))
		}
	case isa.OpFLoad:
		ea = c.EA(in)
		baseVal = c.R[in.Base]
		if err := c.checkAccess(ea, 8); err != nil {
			return err
		}
		c.F[in.Rd] = f64frombits(c.Mem.Read(ea, 8))
		c.res.DynamicLoads++
	case isa.OpFStore:
		ea = c.EA(in)
		baseVal = c.R[in.Base]
		if err := c.checkAccess(ea, 8); err != nil {
			return err
		}
		c.Mem.Write(ea, f64bits(c.F[in.Rs2]), 8)
		c.res.DynamicStore++

	case isa.OpBr:
		if in.Cond.Eval(c.R[in.Rs1], src2()) {
			next, taken = in.Target, true
		}
	case isa.OpJmp:
		next, taken = in.Target, true
	case isa.OpCall:
		setR(in.Rd, int64(pc+1))
		next, taken = in.Target, true
	case isa.OpJr:
		next, taken = int(c.R[in.Rs1]), true

	case isa.OpFAdd:
		c.F[in.Rd] = c.F[in.Rs1] + c.F[in.Rs2]
	case isa.OpFSub:
		c.F[in.Rd] = c.F[in.Rs1] - c.F[in.Rs2]
	case isa.OpFMul:
		c.F[in.Rd] = c.F[in.Rs1] * c.F[in.Rs2]
	case isa.OpFDiv:
		c.F[in.Rd] = c.F[in.Rs1] / c.F[in.Rs2]
	case isa.OpFMov:
		c.F[in.Rd] = c.F[in.Rs1]
	case isa.OpCvtIF:
		c.F[in.Rd] = float64(c.R[in.Rs1])
	case isa.OpCvtFI:
		setR(in.Rd, int64(c.F[in.Rs1]))

	case isa.OpHalt:
		c.halted = true
		c.res.ExitCode = c.R[in.Rs1]
		next = pc
	default:
		return c.fault(isa.FaultIllegalOp, 0, fmt.Sprintf("opcode %v", in.Op))
	}

	if te != nil {
		te.PC = pc
		te.SeqNum = c.res.DynamicInsts
		te.EA = ea
		te.BaseVal = baseVal
		te.Taken = taken
		te.NextPC = next
	}
	c.res.DynamicInsts++
	c.PC = next
	return nil
}

// Trace is the dynamic instruction trace in a packed columnar
// (structure-of-arrays) layout: one parallel slice per TraceEntry field,
// with the dynamic sequence number implicit in the index (offset by Seq0
// for chunks of a streamed trace). The replay loop streams ~25 bytes per
// instruction instead of the ~48 bytes of a padded []TraceEntry, and a
// trace sized from the retired-instruction count is allocated exactly once
// (no append regrowth). A Trace is immutable after RunTrace returns; any
// number of timing simulations may replay it concurrently. Chunks handed
// out by StreamTrace are the exception: they are recycled, and are only
// valid until their yield callback returns.
type Trace struct {
	// Seq0 is the dynamic sequence number of entry 0: zero for a whole
	// materialized trace, the running instruction count for a chunk of a
	// streamed one.
	Seq0    int64
	PC      []int32 // instruction index
	NextPC  []int32 // PC of the next executed instruction
	EA      []int64 // effective address (memory ops only)
	BaseVal []int64 // base-register value when executed (reg modes)
	Taken   []bool  // branch outcome (OpBr); true for jmp/call/jr
}

// NewTrace returns an empty trace with exact capacity for n entries.
func NewTrace(n int) *Trace {
	if n < 0 {
		n = 0
	}
	return &Trace{
		PC:      make([]int32, 0, n),
		NextPC:  make([]int32, 0, n),
		EA:      make([]int64, 0, n),
		BaseVal: make([]int64, 0, n),
		Taken:   make([]bool, 0, n),
	}
}

// Len returns the number of recorded instructions.
func (t *Trace) Len() int { return len(t.PC) }

// At materializes entry i as a TraceEntry (SeqNum = Seq0+i). Replay hot
// loops read the columns directly; At is the convenience accessor for
// checkers and tests.
func (t *Trace) At(i int) TraceEntry {
	return TraceEntry{
		PC:      int(t.PC[i]),
		SeqNum:  t.Seq0 + int64(i),
		EA:      t.EA[i],
		BaseVal: t.BaseVal[i],
		Taken:   t.Taken[i],
		NextPC:  int(t.NextPC[i]),
	}
}

// Prefix returns a view of the first n entries (t itself if n >= Len).
// The view shares the underlying columns; neither may be mutated.
func (t *Trace) Prefix(n int) *Trace {
	if n >= t.Len() {
		return t
	}
	if n < 0 {
		n = 0
	}
	return &Trace{
		PC:      t.PC[:n],
		NextPC:  t.NextPC[:n],
		EA:      t.EA[:n],
		BaseVal: t.BaseVal[:n],
		Taken:   t.Taken[:n],
	}
}

// Slice returns a view of entries [lo, hi), with Seq0 advanced so the
// view's sequence numbers match the parent's. The view shares the
// underlying columns; neither may be mutated. Batched replay walks a
// materialized trace in cache-sized windows this way without copying.
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{
		Seq0:    t.Seq0 + int64(lo),
		PC:      t.PC[lo:hi],
		NextPC:  t.NextPC[lo:hi],
		EA:      t.EA[lo:hi],
		BaseVal: t.BaseVal[lo:hi],
		Taken:   t.Taken[lo:hi],
	}
}

// Chunks walks a materialized trace in consecutive windows of at most
// chunkSize entries, calling yield with a view of each (Seq0 advanced per
// window). One view header is reused across the walk; like StreamTrace
// chunks it is only valid until yield returns. chunkSize <= 0 yields the
// whole trace in one window.
func (t *Trace) Chunks(chunkSize int, yield func(*Trace) error) error {
	n := t.Len()
	if chunkSize <= 0 || chunkSize >= n {
		return yield(t)
	}
	var view Trace
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		view.Seq0 = t.Seq0 + int64(lo)
		view.PC = t.PC[lo:hi]
		view.NextPC = t.NextPC[lo:hi]
		view.EA = t.EA[lo:hi]
		view.BaseVal = t.BaseVal[lo:hi]
		view.Taken = t.Taken[lo:hi]
		if err := yield(&view); err != nil {
			return err
		}
	}
	return nil
}

// reset empties the trace for reuse as the next chunk, keeping the column
// capacity and advancing Seq0 to the given sequence number.
func (t *Trace) reset(seq0 int64) {
	t.Seq0 = seq0
	t.PC = t.PC[:0]
	t.NextPC = t.NextPC[:0]
	t.EA = t.EA[:0]
	t.BaseVal = t.BaseVal[:0]
	t.Taken = t.Taken[:0]
}

// Fill writes entry i into te (SeqNum = Seq0+i). The replay loop reuses
// one stack TraceEntry across the whole trace this way.
func (t *Trace) Fill(i int, te *TraceEntry) {
	te.PC = int(t.PC[i])
	te.SeqNum = t.Seq0 + int64(i)
	te.EA = t.EA[i]
	te.BaseVal = t.BaseVal[i]
	te.Taken = t.Taken[i]
	te.NextPC = int(t.NextPC[i])
}

func (t *Trace) push(te *TraceEntry) {
	t.PC = append(t.PC, int32(te.PC))
	t.NextPC = append(t.NextPC, int32(te.NextPC))
	t.EA = append(t.EA, te.EA)
	t.BaseVal = append(t.BaseVal, te.BaseVal)
	t.Taken = append(t.Taken, te.Taken)
}

// Run executes prog to completion (or until fuel instructions have retired)
// and returns the run summary. fuel <= 0 means a generous default.
func Run(prog *isa.Program, fuel int64) (Result, error) {
	r, err := runTrace(prog, fuel, nil)
	return r, err
}

// RunContext is Run with cooperative cancellation, checked every
// DefaultChunkSize instructions. An uncancelled run is identical to Run.
func RunContext(ctx context.Context, prog *isa.Program, fuel int64) (Result, error) {
	if fuel <= 0 {
		fuel = 200_000_000
	}
	c := New(prog)
	next := int64(DefaultChunkSize)
	for !c.Halted() {
		if n := c.res.DynamicInsts; n >= next {
			if err := ctx.Err(); err != nil {
				return c.res, err
			}
			next = n + DefaultChunkSize
		}
		if c.res.DynamicInsts >= fuel {
			return c.res,
				&isa.Fault{Kind: isa.FaultFuel, PC: c.PC, SeqNum: c.res.DynamicInsts}
		}
		if err := c.Step(nil); err != nil {
			return c.res, err
		}
	}
	return c.res, nil
}

// RunTrace executes prog and, if wantTrace is true, also returns the full
// dynamic instruction trace for replay by the timing model. The trace
// columns are sized exactly: a traceless dry run counts the retired
// instructions first (emulation is deterministic, so the count is exact).
// Callers that already know the dynamic instruction count — e.g. from a
// prior run's Result — should use RunTraceHint and skip the dry pass.
func RunTrace(prog *isa.Program, fuel int64, wantTrace bool) (Result, *Trace, error) {
	if !wantTrace {
		res, err := runTrace(prog, fuel, nil)
		return res, nil, err
	}
	// The dry pass's error (if any) recurs identically in the traced pass.
	dry, _ := runTrace(prog, fuel, nil)
	return RunTraceHint(prog, fuel, dry.DynamicInsts)
}

// RunTraceHint is RunTrace with a caller-supplied capacity hint (typically
// Result.DynamicInsts of an earlier run under the same fuel, which makes it
// exact). An underestimate merely reintroduces append growth.
func RunTraceHint(prog *isa.Program, fuel, hint int64) (Result, *Trace, error) {
	t := NewTrace(int(hint))
	res, err := runTrace(prog, fuel, t)
	return res, t, err
}

// RunTraceHintContext is RunTraceHint with cooperative cancellation,
// checked every DefaultChunkSize instructions like StreamTraceContext. An
// uncancelled run produces a trace byte-identical to RunTraceHint's.
func RunTraceHintContext(ctx context.Context, prog *isa.Program, fuel, hint int64) (Result, *Trace, error) {
	t := NewTrace(int(hint))
	if fuel <= 0 {
		fuel = 200_000_000
	}
	c := New(prog)
	var te TraceEntry
	next := int64(DefaultChunkSize)
	for !c.Halted() {
		if n := c.res.DynamicInsts; n >= next {
			if err := ctx.Err(); err != nil {
				return c.res, t, err
			}
			next = n + DefaultChunkSize
		}
		if c.res.DynamicInsts >= fuel {
			return c.res, t,
				&isa.Fault{Kind: isa.FaultFuel, PC: c.PC, SeqNum: c.res.DynamicInsts}
		}
		if err := c.Step(&te); err != nil {
			return c.res, t, err
		}
		t.push(&te)
	}
	return c.res, t, nil
}

// DefaultChunkSize is the streaming chunk size used when a caller passes
// chunkSize <= 0: 4096 entries ≈ 100 KB of columns, small enough to stay
// resident in L2 while every batched pipeline state replays it, large
// enough that per-chunk overhead vanishes.
const DefaultChunkSize = 4096

// StreamTrace executes prog like RunTrace but delivers the dynamic trace
// in fixed-capacity chunks through yield instead of materializing it, so
// peak trace memory is O(chunkSize) regardless of fuel — the path for
// 100M+ instruction runs that could never hold a full columnar trace.
//
// Chunks are recycled through a two-deep ring: the chunk passed to yield
// is valid only until yield returns (a consumer that needs the data longer
// must copy it). Chunk boundaries carry no meaning — concatenating the
// yielded chunks reproduces, bit for bit, the trace RunTrace would have
// built, with Seq0 marking each chunk's position. Unlike RunTrace, no dry
// counting pass is needed: chunk capacity is fixed up front, so the
// program is emulated exactly once.
//
// On an architectural fault (including fuel exhaustion) the partial chunk
// is flushed to yield first, then the fault is returned: consumers observe
// the complete prefix trace, whose timing is still valid. An error
// returned by yield aborts the run and is returned verbatim.
func StreamTrace(prog *isa.Program, fuel int64, chunkSize int, yield func(*Trace) error) (Result, error) {
	return StreamTraceContext(context.Background(), prog, fuel, chunkSize, yield)
}

// StreamTraceContext is StreamTrace with cooperative cancellation: ctx is
// checked between chunks (never mid-chunk), so a run aborts within one
// chunk's worth of emulation of ctx being cancelled or its deadline
// passing, returning the ctx error. An uncancelled run produces results
// byte-identical to StreamTrace — the check is outside the emulation loop
// and never perturbs the trace.
func StreamTraceContext(ctx context.Context, prog *isa.Program, fuel int64, chunkSize int, yield func(*Trace) error) (Result, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if fuel <= 0 {
		fuel = 200_000_000
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ring := [2]*Trace{NewTrace(chunkSize), NewTrace(chunkSize)}
	cur := 0
	t := ring[0]
	c := New(prog)
	var te TraceEntry
	flush := func() error {
		// The chunk boundary is the cancellation point: a cancelled run
		// stops before its next chunk is delivered, so consumers never see
		// a chunk produced after cancellation. It is also where chaos
		// testing injects a degraded host (slow-chunk), which must honor
		// the same deadline a real slowdown would.
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := chaosinject.SlowChunk(ctx); err != nil {
			return err
		}
		if t.Len() == 0 {
			return nil
		}
		seq := t.Seq0 + int64(t.Len())
		if err := yield(t); err != nil {
			return err
		}
		cur ^= 1
		t = ring[cur]
		t.reset(seq)
		return nil
	}
	for !c.Halted() {
		if c.res.DynamicInsts >= fuel {
			fault := &isa.Fault{Kind: isa.FaultFuel, PC: c.PC, SeqNum: c.res.DynamicInsts}
			if err := flush(); err != nil {
				return c.res, err
			}
			return c.res, fault
		}
		if err := c.Step(&te); err != nil {
			if ferr := flush(); ferr != nil {
				return c.res, ferr
			}
			return c.res, err
		}
		t.push(&te)
		if t.Len() == chunkSize {
			if err := flush(); err != nil {
				return c.res, err
			}
		}
	}
	return c.res, flush()
}

func runTrace(prog *isa.Program, fuel int64, t *Trace) (Result, error) {
	if fuel <= 0 {
		fuel = 200_000_000
	}
	c := New(prog)
	var te TraceEntry
	for !c.Halted() {
		if c.res.DynamicInsts >= fuel {
			return c.res,
				&isa.Fault{Kind: isa.FaultFuel, PC: c.PC, SeqNum: c.res.DynamicInsts}
		}
		if t == nil {
			if err := c.Step(nil); err != nil {
				return c.res, err
			}
			continue
		}
		if err := c.Step(&te); err != nil {
			return c.res, err
		}
		t.push(&te)
	}
	return c.res, nil
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
