package harness_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"elag/internal/harness"
	"elag/internal/workload"
)

// artifactJSON runs Table 2 and Figure 5a on a fresh runner and returns
// their canonical JSON encoding.
func artifactJSON(t *testing.T, r *harness.Runner) []byte {
	t.Helper()
	rows, err := r.Table2(ctx)
	if err != nil {
		t.Fatalf("%+v: table2: %v", r, err)
	}
	fig, err := r.Figure5a(ctx)
	if err != nil {
		t.Fatalf("%+v: fig5a: %v", r, err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, v := range []any{rows, fig} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the engine's headline guarantee: the grid
// experiments produce byte-identical artifacts — cycle counts, speedups,
// float averages and all — at every parallelism level, with batched replay
// on or off, and with traces materialized or streamed. Run under -race this
// also proves the fan-out is data-race-free.
func TestParallelDeterminism(t *testing.T) {
	fuel := int64(120_000)
	if testing.Short() {
		fuel = 40_000
	}
	want := artifactJSON(t, &harness.Runner{Fuel: fuel, Parallel: 1})
	variants := []struct {
		name string
		r    *harness.Runner
	}{
		{"parallel=1 nobatch", &harness.Runner{Fuel: fuel, Parallel: 1, NoBatch: true}},
		{"parallel=4", &harness.Runner{Fuel: fuel, Parallel: 4}},
		{"parallel=4 nobatch", &harness.Runner{Fuel: fuel, Parallel: 4, NoBatch: true}},
		{"parallel=8", &harness.Runner{Fuel: fuel, Parallel: 8}},
		{"parallel=8 nobatch", &harness.Runner{Fuel: fuel, Parallel: 8, NoBatch: true}},
		{"parallel=4 streaming", &harness.Runner{Fuel: fuel, Parallel: 4, ChunkSize: 257}},
		{"parallel=8 streaming nobatch",
			&harness.Runner{Fuel: fuel, Parallel: 8, ChunkSize: 257, NoBatch: true}},
	}
	for _, v := range variants {
		got := artifactJSON(t, v.r)
		if !bytes.Equal(got, want) {
			t.Errorf("%s artifacts differ from serial run\nserial: %.200s\ngot:    %.200s",
				v.name, want, got)
		}
	}
}

// TestLabSingleFlight: concurrent requests for one benchmark must share a
// single build and return the same lab.
func TestLabSingleFlight(t *testing.T) {
	r := &harness.Runner{Fuel: 50_000, Parallel: 8}
	w := workload.Get("023.eqntott")
	const n = 8
	labs := make([]*harness.Lab, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := r.Lab(ctx, w)
			if err != nil {
				t.Error(err)
				return
			}
			labs[i] = l
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if labs[i] != labs[0] {
			t.Fatalf("lab %d is a different instance", i)
		}
	}
}

// TestLabCacheEviction: the cache keeps at most MaxResident labs but a
// re-request transparently rebuilds an evicted one.
func TestLabCacheEviction(t *testing.T) {
	r := &harness.Runner{Fuel: 50_000, MaxResident: 2}
	names := []string{"023.eqntott", "008.espresso", "026.compress"}
	first := make(map[string]*harness.Lab)
	for _, name := range names {
		l, err := r.Lab(ctx, workload.Get(name))
		if err != nil {
			t.Fatal(err)
		}
		first[name] = l
	}
	// The oldest lab was evicted; requesting it again must rebuild (a
	// fresh instance), and the result must still be usable.
	l, err := r.Lab(ctx, workload.Get(names[0]))
	if err != nil {
		t.Fatal(err)
	}
	if l == first[names[0]] {
		t.Errorf("lab for %s not evicted with MaxResident=2", names[0])
	}
	if _, err := l.Simulate(ctx, harness.CompilerDual(), l.HeurFlavors); err != nil {
		t.Fatal(err)
	}
	// The most recent lab is still cached.
	l3, err := r.Lab(ctx, workload.Get(names[2]))
	if err != nil {
		t.Fatal(err)
	}
	if l3 != first[names[2]] {
		t.Errorf("most-recent lab was evicted")
	}
}
