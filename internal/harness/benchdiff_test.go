package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

func replayDoc(t *testing.T, fuel int64, results ...ReplayBenchResult) []byte {
	t.Helper()
	raw, err := json.Marshal(&ReplayBenchDoc{Schema: ReplayBenchSchema, Fuel: fuel, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func compileDoc(t *testing.T, results ...CompileBenchResult) []byte {
	t.Helper()
	raw, err := json.Marshal(&CompileBenchDoc{Schema: CompileBenchSchema, Reps: 5, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBenchDiffReplayCleanAndRegressed(t *testing.T) {
	base := replayDoc(t, 2_000_000,
		ReplayBenchResult{Name: "replay-base", NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 4096, MInstPerSec: 50, PeakBytes: 1 << 20},
		ReplayBenchResult{Name: "stream-table2", NsPerOp: 2000, AllocsPerOp: 20, BytesPerOp: 8192, MInstPerSec: 25, PeakBytes: 2 << 20},
	)

	// Within threshold: +10% ns_per_op passes at 15%.
	ok := replayDoc(t, 2_000_000,
		ReplayBenchResult{Name: "replay-base", NsPerOp: 1100, AllocsPerOp: 10, BytesPerOp: 4096, MInstPerSec: 50, PeakBytes: 1 << 20},
		ReplayBenchResult{Name: "stream-table2", NsPerOp: 2000, AllocsPerOp: 20, BytesPerOp: 8192, MInstPerSec: 25, PeakBytes: 2 << 20},
	)
	rep, err := BenchDiff(base, ok, "old", "new", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Regressions()); n != 0 {
		t.Errorf("clean diff reported %d regressions: %+v", n, rep.Regressions())
	}

	// Throughput DROP is the regression for minst_per_sec even though the
	// number got smaller, and a 20% ns_per_op hike trips the 15% gate.
	bad := replayDoc(t, 2_000_000,
		ReplayBenchResult{Name: "replay-base", NsPerOp: 1200, AllocsPerOp: 10, BytesPerOp: 4096, MInstPerSec: 50, PeakBytes: 1 << 20},
		ReplayBenchResult{Name: "stream-table2", NsPerOp: 2000, AllocsPerOp: 20, BytesPerOp: 8192, MInstPerSec: 18, PeakBytes: 2 << 20},
	)
	rep, err = BenchDiff(base, bad, "old", "new", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("want 2 regressed entries, got %d: %+v", len(regs), regs)
	}
	var sawThroughput bool
	for _, m := range regs[1].Metrics {
		if m.Name == "minst_per_sec" && m.Regressed {
			sawThroughput = true
		}
		if m.Name == "ns_per_op" && m.Regressed {
			t.Errorf("stream-table2 ns_per_op flagged with no change")
		}
	}
	if !sawThroughput {
		t.Errorf("throughput drop not flagged: %+v", regs[1].Metrics)
	}

	var sb strings.Builder
	if n := WriteDiffReport(&sb, rep); n != 2 {
		t.Errorf("WriteDiffReport returned %d, want 2", n)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("report missing REGRESSED flag:\n%s", sb.String())
	}
}

func TestBenchDiffImprovementPasses(t *testing.T) {
	base := replayDoc(t, 1000, ReplayBenchResult{Name: "a", NsPerOp: 1000, MInstPerSec: 10})
	// Faster AND higher throughput: large negative deltas must not trip
	// the gate (the regression direction is one-sided).
	better := replayDoc(t, 1000, ReplayBenchResult{Name: "a", NsPerOp: 500, MInstPerSec: 40})
	rep, err := BenchDiff(base, better, "old", "new", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Regressions()); n != 0 {
		t.Errorf("improvement reported as %d regressions", n)
	}
}

func TestBenchDiffMissingEntry(t *testing.T) {
	base := replayDoc(t, 1000,
		ReplayBenchResult{Name: "a", NsPerOp: 1},
		ReplayBenchResult{Name: "b", NsPerOp: 1})
	cand := replayDoc(t, 1000,
		ReplayBenchResult{Name: "a", NsPerOp: 1},
		ReplayBenchResult{Name: "c", NsPerOp: 1})
	rep, err := BenchDiff(base, cand, "old", "new", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("want 2 structural regressions (b, c), got %+v", regs)
	}
	if regs[0].Name != "b" || regs[0].Missing != "candidate" {
		t.Errorf("missing-from-candidate entry: %+v", regs[0])
	}
	if regs[1].Name != "c" || regs[1].Missing != "baseline" {
		t.Errorf("missing-from-baseline entry: %+v", regs[1])
	}
}

func TestBenchDiffFuelMismatch(t *testing.T) {
	a := replayDoc(t, 2_000_000, ReplayBenchResult{Name: "a"})
	b := replayDoc(t, 500_000, ReplayBenchResult{Name: "a"})
	if _, err := BenchDiff(a, b, "old", "new", 0.15); err == nil ||
		!strings.Contains(err.Error(), "fuel mismatch") {
		t.Errorf("fuel mismatch not rejected: %v", err)
	}
}

func TestBenchDiffSchemaMismatch(t *testing.T) {
	a := replayDoc(t, 1000, ReplayBenchResult{Name: "a"})
	b := compileDoc(t, CompileBenchResult{Workload: "a"})
	if _, err := BenchDiff(a, b, "old", "new", 0.15); err == nil ||
		!strings.Contains(err.Error(), "schema mismatch") {
		t.Errorf("schema mismatch not rejected: %v", err)
	}
	if _, err := BenchDiff([]byte(`{"no":"schema"}`), a, "old", "new", 0.15); err == nil {
		t.Error("schemaless document not rejected")
	}
}

func TestBenchDiffCompile(t *testing.T) {
	base := compileDoc(t,
		CompileBenchResult{Workload: "w1", WallNS: 1_000_000, PassWallNS: 800_000},
		CompileBenchResult{Workload: "w2", WallNS: 2_000_000, PassWallNS: 1_500_000})
	cand := compileDoc(t,
		CompileBenchResult{Workload: "w1", WallNS: 1_050_000, PassWallNS: 820_000},
		CompileBenchResult{Workload: "w2", WallNS: 3_000_000, PassWallNS: 1_500_000})
	rep, err := BenchDiff(base, cand, "old", "new", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "w2" {
		t.Fatalf("want w2 regressed, got %+v", regs)
	}
}
