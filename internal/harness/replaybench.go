package harness

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"elag/internal/asm"
	"elag/internal/emu"
	"elag/internal/pipeline"
	"elag/internal/workload"
)

// ReplayBenchSchema versions the elag-bench -replaybench JSON document
// (BENCH_replay.json in the repository root); bump on any field-shape
// change. v3 adds memo_hit_rate and the memo-off entry pairs, and switches
// the per-configuration replay entries to the streaming path (the supported
// production configuration), retiring the resident-trace variants.
const ReplayBenchSchema = "elag-replaybench/v3"

// ReplayBenchResult is one microbenchmark: the timing model replaying the
// prepared SPEC traces under one configuration (or configuration batch).
type ReplayBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MInstPerSec float64 `json:"minst_per_sec"`
	// PeakBytes is the peak HeapAlloc observed while one op ran on an
	// otherwise idle heap: the live-memory cost of the engine shape, which
	// is what streaming bounds (resident traces dominate it otherwise).
	PeakBytes int64 `json:"peak_bytes"`
	// MemoHitRate is block-memo hits over block entries, aggregated across
	// every simulation the entry ran (0 on -nomemo entries, where the
	// memoizer never engages).
	MemoHitRate float64 `json:"memo_hit_rate"`
}

// ReplayBenchDoc is the machine-readable replay-throughput record, the
// repository's tracked evidence for trace-replay hot-path performance.
type ReplayBenchDoc struct {
	Schema string `json:"schema"`
	// Fuel is the per-benchmark dynamic instruction budget of the
	// replayed traces.
	Fuel    int64               `json:"fuel"`
	Results []ReplayBenchResult `json:"results"`
}

// peakHeap runs fn on a freshly collected heap while sampling HeapAlloc
// every millisecond, returning the observed high-water mark in bytes.
func peakHeap(fn func() error) (int64, error) {
	runtime.GC()
	stop := make(chan struct{})
	done := make(chan struct{})
	var peak uint64
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	err := fn()
	close(stop)
	<-done
	return int64(peak), err
}

// allSpecs is the five-configuration grid of elag-sim -all: the base
// architecture plus every early-address scheme, compiler-directed last.
func allSpecs(l *Lab) []pipeline.BatchSpec {
	return []pipeline.BatchSpec{
		{Config: pipeline.PaperBase()},
		{Config: HWPredict(256)},
		{Config: HWEarly(16)},
		{Config: HWDual(256, 16)},
		{Config: CompilerDual(), Flavors: l.HeurFlavors},
	}
}

// hotLoopSrc is a fixed-address hot loop: the recurrence structure that
// basic-block timing memoization exploits. The SPEC and Media workloads
// stride their load addresses, so their block states never recur exactly
// and the memoizer audits itself off (memo_hit_rate 0, on/off parity);
// this entry measures what the fast path delivers when states do recur.
const hotLoopSrc = `
	main:	li r9, 0
		li r20, 65536
		li r21, 139264    ; NOT 64K from r20 (would alias in the D-cache)
	loop:	ld8_p r1, r20(0)
		ld8_e r2, r21(8)
		add r3, r1, r2
		st8 r3, r20(16)
		add r4, r3, 5
		mul r5, r4, 3
		xor r6, r5, 255
		and r7, r6, 7
		add r9, r9, 1
		blt r9, 100000000, loop
		halt r0
`

// ReplayBench measures trace-replay throughput over the Table-2 workload.
// All entries run the streaming path (the trace is never materialized —
// peak_bytes stays O(chunk)); labs are built outside the timed region, so
// ns/op and allocs/op measure the replay hot loop alone.
// "replay-table2" replays every SPEC benchmark under the paper's
// compiler-directed configuration, "replay-base" under the base
// architecture. "seq-all" runs the full five-configuration grid per
// benchmark the pre-batching way (one materialized emulation per cell) and
// "batch-all" the batched way (one streamed emulation shared by all cells);
// their ns/op ratio is the single-pass speedup. Every entry has a "-nomemo"
// twin with basic-block timing memoization disabled — the pair quantifies
// the memo fast path, and memo_hit_rate records how often it engaged.
// "replay-hotloop" replays a synthetic fixed-address loop (hotLoopSrc)
// where the memoizer actually engages; on the real workloads it audits
// itself off and the pairs measure its overhead floor instead.
func (r *Runner) ReplayBench(ctx context.Context) (*ReplayBenchDoc, error) {
	benches := workload.BySuite(workload.SPEC)
	chunk := r.ChunkSize
	if chunk <= 0 {
		chunk = emu.DefaultChunkSize
	}
	buildLabs := func(rr *Runner) ([]*Lab, error) {
		labs := make([]*Lab, len(benches))
		for i, w := range benches {
			l, err := rr.Lab(ctx, w)
			if err != nil {
				return nil, err
			}
			labs[i] = l
		}
		return labs, nil
	}
	// Two streaming lab sets: the memo switch is a runner property, and a
	// lab carries its runner's setting into every simulation it serves.
	rs := &Runner{Fuel: r.Fuel, ChunkSize: chunk, MaxResident: len(benches) + 1}
	labs, err := buildLabs(rs)
	if err != nil {
		return nil, err
	}
	rsOff := &Runner{Fuel: r.Fuel, ChunkSize: chunk, MaxResident: len(benches) + 1,
		NoMemo: true}
	labsOff, err := buildLabs(rsOff)
	if err != nil {
		return nil, err
	}
	var insts int64
	for _, l := range labs {
		insts += l.EmuRes.DynamicInsts
	}
	hotProg, err := asm.Assemble(hotLoopSrc)
	if err != nil {
		return nil, err
	}
	// Dry-count the loop's dynamic length under the fuel budget so the
	// hotloop entries report minst_per_sec on the same basis as the rest.
	hotRes, _, err := emu.RunTrace(hotProg, r.Fuel, false)
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, err
	}

	doc := &ReplayBenchDoc{Schema: ReplayBenchSchema, Fuel: r.Fuel}
	// add times one entry: all runs one op, returning the memo counters of
	// the simulations it ran, accumulated across the validation pass and
	// every benchmark iteration (the hit rate is a ratio, so accumulation
	// is harmless). insts is the dynamic instructions one op replays.
	add := func(name string, insts int64, all func() (pipeline.MemoStats, error)) error {
		var memo pipeline.MemoStats
		op := func() error {
			st, err := all()
			if err != nil {
				return err
			}
			memo.Add(st)
			return nil
		}
		// Validate once outside the benchmark — testing.Benchmark has no
		// error channel — and sample the peak heap of one op while at it.
		peak, err := peakHeap(op)
		if err != nil {
			return err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.Results = append(doc.Results, ReplayBenchResult{
			Name:        name,
			Iterations:  br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			MInstPerSec: float64(insts) * float64(br.N) / br.T.Seconds() / 1e6,
			PeakBytes:   peak,
			MemoHitRate: memo.HitRate(),
		})
		return nil
	}
	// overLabs lifts a per-lab simulation into one op over a lab set.
	overLabs := func(labs []*Lab, sim func(l *Lab) (pipeline.MemoStats, error)) func() (pipeline.MemoStats, error) {
		return func() (pipeline.MemoStats, error) {
			var memo pipeline.MemoStats
			for _, l := range labs {
				st, err := sim(l)
				if err != nil {
					return memo, err
				}
				memo.Add(st)
			}
			return memo, nil
		}
	}

	table2 := func(l *Lab) (pipeline.MemoStats, error) {
		m, err := l.Simulate(ctx, CompilerDual(), l.HeurFlavors)
		if err != nil {
			return pipeline.MemoStats{}, err
		}
		return m.Memo, nil
	}
	base := func(l *Lab) (pipeline.MemoStats, error) {
		m, err := l.Simulate(ctx, pipeline.PaperBase(), nil)
		if err != nil {
			return pipeline.MemoStats{}, err
		}
		return m.Memo, nil
	}
	seqAll := func(noMemo bool) func(l *Lab) (pipeline.MemoStats, error) {
		return func(l *Lab) (pipeline.MemoStats, error) {
			// The pre-batching grid engine: every cell pays its own
			// architectural execution (materialize + replay).
			var memo pipeline.MemoStats
			for _, sp := range allSpecs(l) {
				_, trace, err := emu.RunTrace(l.Prog.Machine, r.Fuel, true)
				if err != nil && !errors.Is(err, emu.ErrFuel) {
					return memo, err
				}
				sim, err := pipeline.New(sp.Config, l.Prog.Machine, sp.Flavors)
				if err != nil {
					return memo, err
				}
				sim.SetNoMemo(noMemo)
				m, err := sim.Run(trace)
				if err != nil {
					return memo, err
				}
				memo.Add(m.Memo)
			}
			return memo, nil
		}
	}
	batchAll := func(l *Lab) (pipeline.MemoStats, error) {
		// One streamed architectural execution shared by all five
		// configurations. The lab's memo setting does not reach this
		// engine, so apply it through the specs.
		var memo pipeline.MemoStats
		specs := allSpecs(l)
		for i := range specs {
			specs[i].NoMemo = l.noMemo
		}
		ms, _, err := pipeline.BatchReplayContext(ctx, l.Prog.Machine, r.Fuel, chunk, specs)
		if err != nil {
			return memo, err
		}
		for _, m := range ms {
			memo.Add(m.Memo)
		}
		return memo, nil
	}

	hotLoop := func(noMemo bool) func() (pipeline.MemoStats, error) {
		return func() (pipeline.MemoStats, error) {
			specs := []pipeline.BatchSpec{{Config: CompilerDual(), NoMemo: noMemo}}
			ms, _, err := pipeline.BatchReplayContext(ctx, hotProg, r.Fuel, chunk, specs)
			if err != nil {
				return pipeline.MemoStats{}, err
			}
			return ms[0].Memo, nil
		}
	}

	for _, e := range []struct {
		name  string
		insts int64
		all   func() (pipeline.MemoStats, error)
	}{
		{"replay-table2", insts, overLabs(labs, table2)},
		{"replay-table2-nomemo", insts, overLabs(labsOff, table2)},
		{"replay-base", insts, overLabs(labs, base)},
		{"replay-base-nomemo", insts, overLabs(labsOff, base)},
		{"seq-all", insts * 5, overLabs(labs, seqAll(false))},
		{"seq-all-nomemo", insts * 5, overLabs(labsOff, seqAll(true))},
		{"batch-all", insts * 5, overLabs(labs, batchAll)},
		{"batch-all-nomemo", insts * 5, overLabs(labsOff, batchAll)},
		{"replay-hotloop", hotRes.DynamicInsts, hotLoop(false)},
		{"replay-hotloop-nomemo", hotRes.DynamicInsts, hotLoop(true)},
	} {
		if err := add(e.name, e.insts, e.all); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

// WriteReplayBenchJSON writes doc as indented JSON.
func WriteReplayBenchJSON(w io.Writer, doc *ReplayBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
