package harness

import (
	"encoding/json"
	"io"
	"testing"

	"elag/internal/pipeline"
	"elag/internal/workload"
)

// ReplayBenchSchema versions the elag-bench -replaybench JSON document
// (BENCH_replay.json in the repository root); bump on any field-shape
// change.
const ReplayBenchSchema = "elag-replaybench/v1"

// ReplayBenchResult is one microbenchmark: the timing model replaying the
// prepared SPEC traces under one configuration.
type ReplayBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MInstPerSec float64 `json:"minst_per_sec"`
}

// ReplayBenchDoc is the machine-readable replay-throughput record, the
// repository's tracked evidence for trace-replay hot-path performance.
type ReplayBenchDoc struct {
	Schema string `json:"schema"`
	// Fuel is the per-benchmark dynamic instruction budget of the
	// replayed traces.
	Fuel    int64               `json:"fuel"`
	Results []ReplayBenchResult `json:"results"`
}

// ReplayBench measures trace-replay throughput over the Table-2 workload:
// every SPEC benchmark's trace replayed under the paper's
// compiler-directed configuration ("replay-table2") and under the base
// architecture ("replay-base"). Labs are built outside the timed region,
// so ns/op and allocs/op measure the replay hot loop alone.
func (r *Runner) ReplayBench() (*ReplayBenchDoc, error) {
	benches := workload.BySuite(workload.SPEC)
	labs := make([]*Lab, len(benches))
	for i, w := range benches {
		l, err := r.Lab(w)
		if err != nil {
			return nil, err
		}
		labs[i] = l
	}
	var insts int64
	for _, l := range labs {
		insts += l.EmuRes.DynamicInsts
	}

	run := func(name string, sim func(l *Lab) error) (ReplayBenchResult, error) {
		// Validate once outside the benchmark: testing.Benchmark has no
		// error channel, so surface configuration problems here.
		for _, l := range labs {
			if err := sim(l); err != nil {
				return ReplayBenchResult{}, err
			}
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, l := range labs {
					if err := sim(l); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		return ReplayBenchResult{
			Name:        name,
			Iterations:  br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			MInstPerSec: float64(insts) * float64(br.N) / br.T.Seconds() / 1e6,
		}, nil
	}

	doc := &ReplayBenchDoc{Schema: ReplayBenchSchema, Fuel: r.Fuel}
	t2, err := run("replay-table2", func(l *Lab) error {
		_, err := l.Simulate(CompilerDual(), l.HeurFlavors)
		return err
	})
	if err != nil {
		return nil, err
	}
	base, err := run("replay-base", func(l *Lab) error {
		_, err := l.Simulate(pipeline.PaperBase(), nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	doc.Results = append(doc.Results, t2, base)
	return doc, nil
}

// WriteReplayBenchJSON writes doc as indented JSON.
func WriteReplayBenchJSON(w io.Writer, doc *ReplayBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
