package harness

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"elag/internal/emu"
	"elag/internal/pipeline"
	"elag/internal/workload"
)

// ReplayBenchSchema versions the elag-bench -replaybench JSON document
// (BENCH_replay.json in the repository root); bump on any field-shape
// change. v2 adds peak_bytes and the streaming/batched entries.
const ReplayBenchSchema = "elag-replaybench/v2"

// ReplayBenchResult is one microbenchmark: the timing model replaying the
// prepared SPEC traces under one configuration (or configuration batch).
type ReplayBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MInstPerSec float64 `json:"minst_per_sec"`
	// PeakBytes is the peak HeapAlloc observed while one op ran on an
	// otherwise idle heap: the live-memory cost of the engine shape, which
	// is what streaming bounds (resident traces dominate it otherwise).
	PeakBytes int64 `json:"peak_bytes"`
}

// ReplayBenchDoc is the machine-readable replay-throughput record, the
// repository's tracked evidence for trace-replay hot-path performance.
type ReplayBenchDoc struct {
	Schema string `json:"schema"`
	// Fuel is the per-benchmark dynamic instruction budget of the
	// replayed traces.
	Fuel    int64               `json:"fuel"`
	Results []ReplayBenchResult `json:"results"`
}

// peakHeap runs fn on a freshly collected heap while sampling HeapAlloc
// every millisecond, returning the observed high-water mark in bytes.
func peakHeap(fn func() error) (int64, error) {
	runtime.GC()
	stop := make(chan struct{})
	done := make(chan struct{})
	var peak uint64
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	err := fn()
	close(stop)
	<-done
	return int64(peak), err
}

// allSpecs is the five-configuration grid of elag-sim -all: the base
// architecture plus every early-address scheme, compiler-directed last.
func allSpecs(l *Lab) []pipeline.BatchSpec {
	return []pipeline.BatchSpec{
		{Config: pipeline.PaperBase()},
		{Config: HWPredict(256)},
		{Config: HWEarly(16)},
		{Config: HWDual(256, 16)},
		{Config: CompilerDual(), Flavors: l.HeurFlavors},
	}
}

// ReplayBench measures trace-replay throughput over the Table-2 workload.
// Per-configuration entries replay every SPEC benchmark's resident trace
// ("replay-table2" under the paper's compiler-directed configuration,
// "replay-base" under the base architecture) with labs built outside the
// timed region, so ns/op and allocs/op measure the replay hot loop alone.
// "stream-table2" is the same simulation over streaming labs — the trace is
// never materialized, so its peak_bytes shows the memory bound.
// "seq-all" and "batch-all" run the full five-configuration grid per
// benchmark the pre-batching way (one emulation per cell) and the batched
// way (one streamed emulation shared by all cells); their ns/op ratio is
// the single-pass speedup.
func (r *Runner) ReplayBench(ctx context.Context) (*ReplayBenchDoc, error) {
	benches := workload.BySuite(workload.SPEC)
	chunk := r.ChunkSize
	if chunk <= 0 {
		chunk = emu.DefaultChunkSize
	}
	// Dedicated runners so every lab survives its entries' whole timed
	// region: materialized labs (resident traces) for the per-configuration
	// entries, streaming labs (no traces) for the rest.
	buildLabs := func(rr *Runner) ([]*Lab, error) {
		labs := make([]*Lab, len(benches))
		for i, w := range benches {
			l, err := rr.Lab(ctx, w)
			if err != nil {
				return nil, err
			}
			labs[i] = l
		}
		return labs, nil
	}
	rm := &Runner{Fuel: r.Fuel, MaxResident: len(benches) + 1}
	labs, err := buildLabs(rm)
	if err != nil {
		return nil, err
	}
	var insts int64
	for _, l := range labs {
		insts += l.EmuRes.DynamicInsts
	}

	run := func(name string, labs []*Lab, passes int64, sim func(l *Lab) error) (ReplayBenchResult, error) {
		// Validate once outside the benchmark — testing.Benchmark has no
		// error channel — and sample the peak heap of one op while at it.
		all := func() error {
			for _, l := range labs {
				if err := sim(l); err != nil {
					return err
				}
			}
			return nil
		}
		peak, err := peakHeap(all)
		if err != nil {
			return ReplayBenchResult{}, err
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := all(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return ReplayBenchResult{
			Name:        name,
			Iterations:  br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			MInstPerSec: float64(insts*passes) * float64(br.N) / br.T.Seconds() / 1e6,
			PeakBytes:   peak,
		}, nil
	}

	doc := &ReplayBenchDoc{Schema: ReplayBenchSchema, Fuel: r.Fuel}
	add := func(name string, labs []*Lab, passes int64, sim func(l *Lab) error) error {
		res, err := run(name, labs, passes, sim)
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, res)
		return nil
	}
	if err := add("replay-table2", labs, 1, func(l *Lab) error {
		_, err := l.Simulate(ctx, CompilerDual(), l.HeurFlavors)
		return err
	}); err != nil {
		return nil, err
	}
	if err := add("replay-base", labs, 1, func(l *Lab) error {
		_, err := l.Simulate(ctx, pipeline.PaperBase(), nil)
		return err
	}); err != nil {
		return nil, err
	}

	// Release the resident traces before the streaming and whole-grid
	// entries: their peak_bytes must reflect each engine shape, not the
	// cache of the previous entries.
	labs, rm = nil, nil
	_ = rm
	rs := &Runner{Fuel: r.Fuel, ChunkSize: chunk, MaxResident: len(benches) + 1}
	slabs, err := buildLabs(rs)
	if err != nil {
		return nil, err
	}

	if err := add("stream-table2", slabs, 1, func(l *Lab) error {
		_, err := l.Simulate(ctx, CompilerDual(), l.HeurFlavors)
		return err
	}); err != nil {
		return nil, err
	}
	if err := add("seq-all", slabs, 5, func(l *Lab) error {
		// The pre-batching grid engine: every cell pays its own
		// architectural execution (materialize + replay).
		for _, sp := range allSpecs(l) {
			_, trace, err := emu.RunTrace(l.Prog.Machine, r.Fuel, true)
			if err != nil && !errors.Is(err, emu.ErrFuel) {
				return err
			}
			sim, err := pipeline.New(sp.Config, l.Prog.Machine, sp.Flavors)
			if err != nil {
				return err
			}
			if _, err := sim.Run(trace); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := add("batch-all", slabs, 5, func(l *Lab) error {
		// One streamed architectural execution shared by all five
		// configurations.
		_, _, err := pipeline.BatchReplayContext(ctx, l.Prog.Machine, r.Fuel, chunk, allSpecs(l))
		return err
	}); err != nil {
		return nil, err
	}
	return doc, nil
}

// WriteReplayBenchJSON writes doc as indented JSON.
func WriteReplayBenchJSON(w io.Writer, doc *ReplayBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
