// Package harness regenerates the paper's evaluation: Tables 2-4 and
// Figures 5a-5c, over the workload suite of package workload. Each
// benchmark is compiled once; its dynamic trace is generated once and
// replayed under every hardware configuration, exactly like the paper's
// emulation-driven methodology.
//
// Experiments optionally fan out across a worker pool (Runner.Parallel)
// with benchmark affinity: one worker owns a benchmark's whole column of
// (benchmark, configuration) cells, so each multi-megabyte trace is built
// once and stays worker-local. Labs are immutable after construction —
// per-simulation load flavours travel as overlays, never as program
// mutations — so every cell is data-race-free and the results (cycle
// counts, speedups, averages) are bit-identical at any parallelism level.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"elag"
	"elag/internal/artifact"
	"elag/internal/core"
	"elag/internal/emu"
	"elag/internal/isa"
	"elag/internal/mech"
	_ "elag/internal/mech/all" // register the assist mechanisms
	"elag/internal/pipeline"
	"elag/internal/profile"
	"elag/internal/workload"
)

// Runner executes experiments. The zero value is usable; set Fuel to bound
// per-benchmark dynamic instructions (0 means run each program to
// completion), Parallel to fan benchmarks across workers, and Log to
// observe progress.
type Runner struct {
	// Fuel caps emulated instructions per benchmark; a truncated trace
	// is still valid for timing studies. 0 means unlimited.
	Fuel int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Parallel is the worker count for grid experiments; <=1 runs
	// serially. Results are identical at every setting — parallelism
	// changes wall time only.
	Parallel int
	// MaxResident bounds how many labs (each holding a multi-megabyte
	// trace) stay cached; 0 derives a bound from Parallel. Labs in use
	// are never invalidated by eviction — the cache only drops its own
	// reference.
	MaxResident int
	// ChunkSize, when > 0, puts labs in streaming mode: the dynamic trace
	// is never materialized, and every simulation re-streams the
	// architectural execution in chunks of this many entries (peak trace
	// memory O(ChunkSize), enabling fuel budgets whose traces could never
	// fit in memory). 0 keeps the trace resident and walks it in
	// emu.DefaultChunkSize windows. Results are bit-identical either way.
	ChunkSize int
	// NoBatch disables batched multi-configuration replay: each grid cell
	// replays the trace in its own pass, as the pre-batching engine did.
	// Results are bit-identical with batching on or off; the switch exists
	// for wall-time comparison and the determinism tests.
	NoBatch bool
	// NoMemo disables basic-block timing memoization in every simulation
	// this runner starts; NoSpecialize disables the config-specialized
	// replay kernels. Results are byte-identical at every setting — both
	// are escape hatches and differential-testing levers.
	NoMemo       bool
	NoSpecialize bool
	// Counters, when non-nil, receives work-volume telemetry (lab-cache
	// hits/misses, replayed chunks and entries). Purely observational:
	// results are byte-identical with or without it.
	Counters *Counters
	// Artifacts, when non-nil, caches grid experiments at per-benchmark
	// row granularity through the content-addressed store: a row already
	// present (same experiment, benchmark source, fuel, chunk — see
	// rowKey) is decoded instead of simulated, so overlapping grids
	// recompute only missing rows. Cached rows round-trip through JSON,
	// which preserves float64 bits exactly — documents built from cached
	// rows are byte-identical to cold ones.
	Artifacts *artifact.Store
	// Progress, when non-nil, is called after each benchmark column of a
	// grid experiment completes, with the benchmark name and the
	// done/total counts for that experiment. Called from grid worker
	// goroutines; must be cheap and concurrency-safe.
	Progress func(bench string, done, total int)

	logMu sync.Mutex

	labMu  sync.Mutex
	labs   map[string]*labEntry
	labSeq int64
}

// labEntry is one cache slot. ready is closed once l/err are set;
// concurrent requests for the same benchmark wait on it instead of
// building twice (single-flight).
type labEntry struct {
	ready   chan struct{}
	l       *Lab
	err     error
	lastUse int64
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.logMu.Lock()
		fmt.Fprintf(r.Log, format+"\n", args...)
		r.logMu.Unlock()
	}
}

// workers returns the effective worker-pool size.
func (r *Runner) workers() int {
	if r.Parallel > 1 {
		return r.Parallel
	}
	return 1
}

// maxResident returns the lab-cache bound: at least one lab per worker
// plus one, so affinity-scheduled grids never thrash their own columns.
func (r *Runner) maxResident() int {
	if r.MaxResident > 0 {
		return r.MaxResident
	}
	n := r.workers() + 1
	if n < 2 {
		n = 2
	}
	return n
}

// Lab is one benchmark prepared for experiments: compiled, classified,
// profiled, and traced. A Lab is immutable once built — simulations pick a
// classification by passing one of the flavour overlays (or nil for the
// program's baked-in flavours), and any number of simulations may share
// the lab concurrently.
type Lab struct {
	W *workload.Workload
	// Prog is the compiled program. Its instruction stream is never
	// mutated after Build.
	Prog *elag.Program
	// Heur is the classification from the Section 4 heuristics alone;
	// Reclass additionally applies the Section 4.3 address profile.
	Heur    *core.Classification
	Reclass *core.Classification
	// HeurFlavors / ReclassFlavors are the overlay forms of the two
	// classifications, ready to pass to Simulate.
	HeurFlavors    isa.FlavorOverlay
	ReclassFlavors isa.FlavorOverlay
	// Profile holds per-load unlimited-table prediction rates.
	Profile *profile.LoadProfile
	// Trace is the architectural dynamic trace replayed by the timing
	// model. In streaming mode (Runner.ChunkSize > 0) it is nil — each
	// simulation re-streams the execution instead — so peak memory stays
	// O(chunk) regardless of fuel. EmuRes summarizes the architectural
	// run in both modes.
	Trace  *emu.Trace
	EmuRes emu.Result

	fuel     int64     // runner fuel, for streaming re-emulation
	chunk    int       // streaming chunk size (0 = materialized)
	noBatch  bool      // per-cell sequential replay (Runner.NoBatch)
	noMemo   bool      // Runner.NoMemo
	noSpec   bool      // Runner.NoSpecialize
	counters *Counters // work telemetry (Runner.Counters; may be nil)

	baseMu     sync.Mutex
	baseDone   bool
	baseCycles int64
}

// Lab prepares the lab for one workload, returning a cached one when
// available. Concurrent callers requesting the same benchmark share one
// build; distinct benchmarks build independently. The cache keeps at most
// maxResident labs, evicting least-recently-used ones.
//
// ctx bounds the build (compile, profile, trace): a cancelled ctx aborts
// with the ctx error. When the single-flight build a caller was waiting on
// fails because the *builder's* ctx was cancelled, a waiter whose own ctx
// is still live retries the build instead of inheriting the cancellation —
// one caller's deadline never fails another caller's request.
func (r *Runner) Lab(ctx context.Context, w *workload.Workload) (*Lab, error) {
	for {
		l, err := r.labOnce(ctx, w)
		if err == nil || !isContextErr(err) || ctx.Err() != nil {
			return l, err
		}
		// The build was cancelled under someone else's ctx; ours is live.
	}
}

// isContextErr reports whether err is a context cancellation or deadline
// error (possibly wrapped).
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// labOnce is one single-flight pass over the lab cache: join an in-flight
// build or become the builder.
func (r *Runner) labOnce(ctx context.Context, w *workload.Workload) (*Lab, error) {
	r.labMu.Lock()
	if r.labs == nil {
		r.labs = make(map[string]*labEntry)
	}
	r.labSeq++
	if e, ok := r.labs[w.Name]; ok {
		e.lastUse = r.labSeq
		r.labMu.Unlock()
		if r.Counters != nil {
			r.Counters.LabHits.Add(1)
		}
		<-e.ready
		return e.l, e.err
	}
	if r.Counters != nil {
		r.Counters.LabMisses.Add(1)
	}
	e := &labEntry{ready: make(chan struct{}), lastUse: r.labSeq}
	r.labs[w.Name] = e
	r.evictLocked()
	r.labMu.Unlock()

	e.l, e.err = r.buildLab(ctx, w)
	if e.err != nil {
		// Do not cache failures: a later retry rebuilds.
		r.labMu.Lock()
		if r.labs[w.Name] == e {
			delete(r.labs, w.Name)
		}
		r.labMu.Unlock()
	}
	close(e.ready)
	return e.l, e.err
}

// evictLocked drops least-recently-used ready entries until the cache fits
// the bound. In-flight builds are never evicted. Callers hold labMu.
func (r *Runner) evictLocked() {
	max := r.maxResident()
	for len(r.labs) > max {
		var victim string
		var oldest int64
		for name, e := range r.labs {
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if victim == "" || e.lastUse < oldest {
				victim, oldest = name, e.lastUse
			}
		}
		if victim == "" {
			return
		}
		delete(r.labs, victim)
	}
}

func (r *Runner) buildLab(ctx context.Context, w *workload.Workload) (*Lab, error) {
	r.logf("build %s", w.Name)
	p, err := elag.Build(w.Source, elag.BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	l := &Lab{W: w, Prog: p, Heur: p.Classes,
		fuel: r.Fuel, chunk: r.ChunkSize, noBatch: r.NoBatch,
		noMemo: r.NoMemo, noSpec: r.NoSpecialize, counters: r.Counters}

	lp, profRes, err := profile.CollectContext(ctx, p.Machine, r.Fuel)
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, fmt.Errorf("%s: profile: %w", w.Name, err)
	}
	l.Profile = lp
	l.Reclass = core.Reclassify(l.Heur, lp.Rates(), 0)
	l.HeurFlavors = l.Heur.Overlay(p.Machine)
	l.ReclassFlavors = l.Reclass.Overlay(p.Machine)

	if r.ChunkSize > 0 {
		// Streaming mode: no materialized trace. The profiler's run is a
		// complete architectural execution under the same fuel, so its
		// Result stands in for the trace run's.
		l.EmuRes = profRes
		return l, nil
	}
	// The profiler already emulated this program under the same fuel, so
	// its retired-instruction count sizes the trace columns exactly.
	res, trace, err := emu.RunTraceHintContext(ctx, p.Machine, r.Fuel, profRes.DynamicInsts)
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, fmt.Errorf("%s: trace: %w", w.Name, err)
	}
	l.Trace = trace
	l.EmuRes = res
	return l, nil
}

// Simulate replays the cached trace under cfg. flavors selects the load
// classification (l.HeurFlavors, l.ReclassFlavors, or nil for the
// program's baked-in flavours). ctx cancels the replay between chunks;
// an uncancelled replay is byte-identical at every chunk setting.
func (l *Lab) Simulate(ctx context.Context, cfg pipeline.Config, flavors isa.FlavorOverlay) (*pipeline.Metrics, error) {
	return l.SimulateObserved(ctx, cfg, flavors, nil, false)
}

// SimulateObserved replays the cached trace under cfg with observability
// attached: sink (may be nil) receives the cycle-level event stream, and
// perPC enables the per-PC load attribution table on the returned Metrics.
// Observation never changes the timing result.
func (l *Lab) SimulateObserved(ctx context.Context, cfg pipeline.Config, flavors isa.FlavorOverlay,
	sink pipeline.EventSink, perPC bool) (*pipeline.Metrics, error) {
	ms, err := l.replayBatch(ctx, []pipeline.BatchSpec{{Config: cfg, Flavors: flavors}},
		func(_ int, sim *pipeline.Sim) {
			if perPC {
				sim.EnablePerPC()
			}
			if sink != nil {
				sim.AttachSink(sink)
			}
		})
	if err != nil {
		return nil, err
	}
	return ms[0], nil
}

// SimulateBatch replays the benchmark's trace under every spec in a single
// pass — one trace iteration shared by all configurations, each chunk
// cache-hot across the whole batch — returning metrics in spec order.
// Results are bit-identical to len(specs) Simulate calls. Under
// Runner.NoBatch each spec gets its own pass instead (same results, the
// pre-batching wall time).
func (l *Lab) SimulateBatch(ctx context.Context, specs []pipeline.BatchSpec) ([]*pipeline.Metrics, error) {
	if l.noBatch {
		ms := make([]*pipeline.Metrics, len(specs))
		for i, sp := range specs {
			m, err := l.replayBatch(ctx, specs[i:i+1], nil)
			if err != nil {
				return nil, fmt.Errorf("%s: spec %d %v: %w", l.W.Name, i, sp.Config.Select, err)
			}
			ms[i] = m[0]
		}
		return ms, nil
	}
	return l.replayBatch(ctx, specs, nil)
}

// replayBatch is the lab's replay engine: every simulation — single or
// batched, materialized or streaming — funnels through here. attach (may be
// nil) customizes each Sim before the first instruction. In materialized
// mode the cached trace is walked in chunk windows with every Sim advanced
// per window; in streaming mode (Runner.ChunkSize > 0) the architectural
// execution is re-emulated through recycled chunks and never materialized.
// Cancellation is checked between chunks in both modes, so every job
// through the lab honors its deadline within one chunk of work.
func (l *Lab) replayBatch(ctx context.Context, specs []pipeline.BatchSpec, attach func(i int, sim *pipeline.Sim)) ([]*pipeline.Metrics, error) {
	sims, err := pipeline.NewBatch(l.Prog.Machine, specs)
	if err != nil {
		return nil, err
	}
	for _, sim := range sims {
		sim.SetNoMemo(l.noMemo)
		sim.SetNoSpecialize(l.noSpec)
	}
	if attach != nil {
		for i, sim := range sims {
			attach(i, sim)
		}
	}
	run := func(chunk *emu.Trace) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := pipeline.RunChunkBatch(sims, chunk); err != nil {
			return err
		}
		l.counters.CountChunk(chunk.Len())
		return nil
	}
	if l.Trace != nil {
		chunk := l.chunk
		if chunk <= 0 {
			chunk = emu.DefaultChunkSize
		}
		if err := l.Trace.Chunks(chunk, run); err != nil {
			return nil, err
		}
	} else {
		_, err := emu.StreamTraceContext(ctx, l.Prog.Machine, l.fuel, l.chunk, run)
		if err != nil && !errors.Is(err, emu.ErrFuel) {
			return nil, err
		}
	}
	ms := make([]*pipeline.Metrics, len(sims))
	for i, sim := range sims {
		ms[i] = sim.Metrics()
		l.counters.CountMemo(ms[i].Memo)
		if ms[i].MechStats != nil {
			l.counters.CountMech(ms[i].MechKind, *ms[i].MechStats)
		}
	}
	return ms, nil
}

// heurFlavors / reclassFlavors are accessor forms of the overlay fields,
// usable as method expressions in declarative series/spec tables.
func (l *Lab) heurFlavors() isa.FlavorOverlay    { return l.HeurFlavors }
func (l *Lab) reclassFlavors() isa.FlavorOverlay { return l.ReclassFlavors }

// BaseCycles returns (memoizing) the cycle count of the base architecture,
// the denominator of every speedup in Section 5. Safe for concurrent use;
// the base simulation runs at most once per lab. Only success is memoized:
// a simulation cancelled by ctx returns the ctx error without poisoning
// the lab, so a later caller (or the same grid re-run) computes the value
// fresh — cached labs stay byte-identical across cancel-and-retry.
func (l *Lab) BaseCycles(ctx context.Context) (int64, error) {
	l.baseMu.Lock()
	defer l.baseMu.Unlock()
	if l.baseDone {
		return l.baseCycles, nil
	}
	m, err := l.Simulate(ctx, pipeline.PaperBase(), nil)
	if err != nil {
		return 0, err
	}
	l.baseCycles = m.Cycles
	l.baseDone = true
	return l.baseCycles, nil
}

// Speedup simulates cfg under flavors and returns baseCycles/cycles.
func (l *Lab) Speedup(ctx context.Context, cfg pipeline.Config, flavors isa.FlavorOverlay) (float64, error) {
	base, err := l.BaseCycles(ctx)
	if err != nil {
		return 0, err
	}
	m, err := l.Simulate(ctx, cfg, flavors)
	if err != nil {
		return 0, err
	}
	if m.Cycles == 0 {
		return 0, fmt.Errorf("%s: zero cycles", l.W.Name)
	}
	return float64(base) / float64(m.Cycles), nil
}

// Standard hardware configurations of Section 5, expressed through the
// mechanism registry (internal/mech): pipeline.New normalizes each paper
// spec to the identical typed configuration, so these produce metrics
// byte-identical to the pre-registry literals while sharing the spec
// vocabulary of the CLI flags and the serve job API.

// CompilerDual is the paper's proposal: 256-entry table + 1 R_addr,
// compiler-selected flavours.
func CompilerDual() pipeline.Config { return pipeline.PaperCompilerDirected() }

// Assist wraps one registry spec as a configuration: the mechanism drives
// every load through the assist path, regardless of flavour.
func Assist(spec mech.Spec) pipeline.Config {
	return pipeline.Config{Mechanisms: []mech.Spec{spec}}
}

// HWPredict is hardware-only table prediction with the given table size
// (Figure 5a without compiler support).
func HWPredict(entries int) pipeline.Config {
	return pipeline.Config{
		Select:     pipeline.SelAllPredict,
		Mechanisms: []mech.Spec{{Kind: "addrpred", Entries: entries}},
	}
}

// CompilerPredict is table-only hardware with compiler support: only loads
// the heuristics marked predictable enter the table (Figure 5a "with
// compiler support").
func CompilerPredict(entries int) pipeline.Config {
	return pipeline.Config{
		Select:     pipeline.SelCompiler,
		Mechanisms: []mech.Spec{{Kind: "addrpred", Entries: entries}},
		// No register cache: ld_e loads behave like normal loads.
	}
}

// HWEarly is hardware-only early calculation with n cached registers
// (Figure 5b).
func HWEarly(n int) pipeline.Config {
	return pipeline.Config{
		Select:     pipeline.SelAllEarly,
		Mechanisms: []mech.Spec{{Kind: "earlycalc", Entries: n}},
	}
}

// HWDual is the hardware-only dual-path scheme steered by the
// Eickemeyer-Vassiliadis interlock heuristic (Figure 5c "no compiler").
func HWDual(entries, regs int) pipeline.Config {
	return pipeline.Config{
		Select: pipeline.SelHWDual,
		Mechanisms: []mech.Spec{
			{Kind: "addrpred", Entries: entries},
			{Kind: "earlycalc", Entries: regs},
		},
	}
}
