// Package harness regenerates the paper's evaluation: Tables 2-4 and
// Figures 5a-5c, over the workload suite of package workload. Each
// benchmark is compiled once; its dynamic trace is generated once and
// replayed under every hardware configuration, exactly like the paper's
// emulation-driven methodology.
package harness

import (
	"errors"
	"fmt"
	"io"

	"elag"
	"elag/internal/core"
	"elag/internal/emu"
	"elag/internal/pipeline"
	"elag/internal/profile"
	"elag/internal/workload"
)

// Runner executes experiments. The zero value is usable; set Fuel to bound
// per-benchmark dynamic instructions (0 means run each program to
// completion) and Log to observe progress.
type Runner struct {
	// Fuel caps emulated instructions per benchmark; a truncated trace
	// is still valid for timing studies. 0 means unlimited.
	Fuel int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	// Exactly one lab (with its multi-megabyte trace) is kept resident;
	// experiment loops iterate benchmark-outer so each benchmark is
	// built and traced once per experiment.
	last *Lab
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// Lab is one benchmark prepared for experiments: compiled, classified,
// profiled, and traced.
type Lab struct {
	W *workload.Workload
	// Prog is the compiled program; its load flavours are rewritten by
	// UseHeuristics/UseProfile/ClearFlavors before each simulation.
	Prog *elag.Program
	// Heur is the classification from the Section 4 heuristics alone;
	// Reclass additionally applies the Section 4.3 address profile.
	Heur    *core.Classification
	Reclass *core.Classification
	// Profile holds per-load unlimited-table prediction rates.
	Profile *profile.LoadProfile
	// Trace is the architectural dynamic trace replayed by the timing
	// model; EmuRes summarizes the architectural run.
	Trace  []emu.TraceEntry
	EmuRes emu.Result

	baseCycles int64 // memoized base-architecture cycles
}

// Lab prepares the lab for one workload, reusing the resident one when the
// same benchmark is requested again.
func (r *Runner) Lab(w *workload.Workload) (*Lab, error) {
	if r.last != nil && r.last.W.Name == w.Name {
		return r.last, nil
	}
	r.logf("build %s", w.Name)
	p, err := elag.Build(w.Source, elag.BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	l := &Lab{W: w, Prog: p, Heur: p.Classes}

	lp, _, err := profile.Collect(p.Machine, r.Fuel)
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, fmt.Errorf("%s: profile: %w", w.Name, err)
	}
	l.Profile = lp
	l.Reclass = core.Reclassify(l.Heur, lp.Rates(), 0)

	res, trace, err := emu.RunTrace(p.Machine, r.Fuel, true)
	if err != nil && !errors.Is(err, emu.ErrFuel) {
		return nil, fmt.Errorf("%s: trace: %w", w.Name, err)
	}
	l.Trace = trace
	l.EmuRes = res
	r.last = l
	return l, nil
}

// UseHeuristics applies the heuristic-only classification to the program.
func (l *Lab) UseHeuristics() { l.Heur.Apply(l.Prog.Machine) }

// UseProfile applies the profile-reclassified flavours to the program.
func (l *Lab) UseProfile() { l.Reclass.Apply(l.Prog.Machine) }

// Simulate replays the cached trace under cfg with the program's current
// load flavours.
func (l *Lab) Simulate(cfg pipeline.Config) (*pipeline.Metrics, error) {
	return l.SimulateObserved(cfg, nil, false)
}

// SimulateObserved replays the cached trace under cfg with observability
// attached: sink (may be nil) receives the cycle-level event stream, and
// perPC enables the per-PC load attribution table on the returned Metrics.
// Observation never changes the timing result.
func (l *Lab) SimulateObserved(cfg pipeline.Config, sink pipeline.EventSink, perPC bool) (*pipeline.Metrics, error) {
	sim, err := pipeline.New(cfg, l.Prog.Machine)
	if err != nil {
		return nil, err
	}
	if perPC {
		sim.EnablePerPC()
	}
	if sink != nil {
		sim.AttachSink(sink)
	}
	return sim.Run(l.Trace)
}

// BaseCycles returns (memoizing) the cycle count of the base architecture,
// the denominator of every speedup in Section 5.
func (l *Lab) BaseCycles() (int64, error) {
	if l.baseCycles == 0 {
		m, err := l.Simulate(pipeline.PaperBase())
		if err != nil {
			return 0, err
		}
		l.baseCycles = m.Cycles
	}
	return l.baseCycles, nil
}

// Speedup simulates cfg and returns baseCycles/cycles.
func (l *Lab) Speedup(cfg pipeline.Config) (float64, error) {
	base, err := l.BaseCycles()
	if err != nil {
		return 0, err
	}
	m, err := l.Simulate(cfg)
	if err != nil {
		return 0, err
	}
	if m.Cycles == 0 {
		return 0, fmt.Errorf("%s: zero cycles", l.W.Name)
	}
	return float64(base) / float64(m.Cycles), nil
}

// Standard hardware configurations of Section 5.

// CompilerDual is the paper's proposal: 256-entry table + 1 R_addr,
// compiler-selected flavours.
func CompilerDual() pipeline.Config { return pipeline.PaperCompilerDirected() }

// HWPredict is hardware-only table prediction with the given table size
// (Figure 5a without compiler support).
func HWPredict(entries int) pipeline.Config {
	return pipeline.Config{
		Select:    pipeline.SelAllPredict,
		Predictor: &elag.PredictorConfig{Entries: entries},
	}
}

// CompilerPredict is table-only hardware with compiler support: only loads
// the heuristics marked predictable enter the table (Figure 5a "with
// compiler support").
func CompilerPredict(entries int) pipeline.Config {
	return pipeline.Config{
		Select:    pipeline.SelCompiler,
		Predictor: &elag.PredictorConfig{Entries: entries},
		// No register cache: ld_e loads behave like normal loads.
	}
}

// HWEarly is hardware-only early calculation with n cached registers
// (Figure 5b).
func HWEarly(n int) pipeline.Config {
	return pipeline.Config{
		Select:   pipeline.SelAllEarly,
		RegCache: &elag.RegCacheConfig{Entries: n},
	}
}

// HWDual is the hardware-only dual-path scheme steered by the
// Eickemeyer-Vassiliadis interlock heuristic (Figure 5c "no compiler").
func HWDual(entries, regs int) pipeline.Config {
	return pipeline.Config{
		Select:    pipeline.SelHWDual,
		Predictor: &elag.PredictorConfig{Entries: entries},
		RegCache:  &elag.RegCacheConfig{Entries: regs},
	}
}
