package harness

import (
	"encoding/json"
	"io"
)

// ServeBenchSchema versions the elag-bench -servebench JSON document
// (BENCH_serve.json in the repository root); bump on any field-shape
// change.
const ServeBenchSchema = "elag-servebench/v1"

// ServeBenchResult is one cold/warm pair through the service path: the
// same job submitted against an empty artifact store (cold — the full
// pipeline runs) and again fully cached (warm — admission answers from
// the store). Identical records whether the two result documents were
// byte-for-byte equal, which the cache contract requires.
type ServeBenchResult struct {
	Name       string `json:"name"`
	ColdWallNS int64  `json:"cold_wall_ns"`
	WarmWallNS int64  `json:"warm_wall_ns"`
	// WarmSpeedup is ColdWallNS / WarmWallNS. It is recorded for the
	// trajectory but gated absolutely (the >= 20x floor in CI), not
	// relatively: warm times are microseconds, where relative noise is
	// meaningless.
	WarmSpeedup float64 `json:"warm_speedup"`
	Identical   bool    `json:"identical"`
}

// ServeBenchDoc is the machine-readable record of result-cache service
// performance, the repository's tracked evidence that a warm cache
// answers without recomputation.
type ServeBenchDoc struct {
	Schema string `json:"schema"`
	// Fuel is the per-job dynamic instruction budget of the entries.
	Fuel    int64              `json:"fuel"`
	Results []ServeBenchResult `json:"results"`
}

// WriteServeBenchJSON writes doc as indented JSON.
func WriteServeBenchJSON(w io.Writer, doc *ServeBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
