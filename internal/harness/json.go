package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// BenchSchema versions the elag-bench JSON document; bump on any
// field-shape change so an accumulating BENCH_*.json trajectory can
// dispatch per version.
const BenchSchema = "elag-bench/v1"

// BenchDocument is every experiment artifact of the paper's evaluation as
// one machine-readable document (elag-bench -json): Tables 2-4, Figures
// 5a-5c and the embedded-core extension, plus the run parameters that
// scale them.
type BenchDocument struct {
	Schema string `json:"schema"`
	// Fuel is the per-benchmark dynamic instruction budget the artifacts
	// were produced under (0 = programs ran to completion).
	Fuel     int64         `json:"fuel"`
	Table2   []Table2Row   `json:"table2"`
	Table3   []Table3Row   `json:"table3"`
	Table4   []Table4Row   `json:"table4"`
	Figure5a *Figure       `json:"figure5a"`
	Figure5b *Figure       `json:"figure5b"`
	Figure5c *Figure       `json:"figure5c"`
	Embedded []EmbeddedRow `json:"embedded"`
	// FigureMech is the mechanism-layer extension figure. It is produced
	// only by DocumentExp("figmech") — not by Document — and is omitted
	// from the JSON when absent, so full-evaluation artifacts remain
	// byte-identical to pre-mechanism-layer runs.
	FigureMech *Figure `json:"figuremech,omitempty"`
}

// Document runs every experiment and collects the artifacts.
func (r *Runner) Document(ctx context.Context) (*BenchDocument, error) {
	doc := &BenchDocument{Schema: BenchSchema, Fuel: r.Fuel}
	var err error
	if doc.Table2, err = r.Table2(ctx); err != nil {
		return nil, err
	}
	if doc.Table3, err = r.Table3(ctx); err != nil {
		return nil, err
	}
	if doc.Table4, err = r.Table4(ctx); err != nil {
		return nil, err
	}
	if doc.Figure5a, err = r.Figure5a(ctx); err != nil {
		return nil, err
	}
	if doc.Figure5b, err = r.Figure5b(ctx); err != nil {
		return nil, err
	}
	if doc.Figure5c, err = r.Figure5c(ctx); err != nil {
		return nil, err
	}
	if doc.Embedded, err = r.Embedded(ctx); err != nil {
		return nil, err
	}
	return doc, nil
}

// DocumentExp runs one named experiment into an otherwise-empty document
// ("" or "all" runs everything, same as Document). Narrow documents share
// the full document's per-row artifact cache when Runner.Artifacts is
// set: running "all" warms every narrower selection and vice versa.
func (r *Runner) DocumentExp(ctx context.Context, exp string) (*BenchDocument, error) {
	if exp == "" || exp == "all" {
		return r.Document(ctx)
	}
	doc := &BenchDocument{Schema: BenchSchema, Fuel: r.Fuel}
	var err error
	switch exp {
	case "table2":
		doc.Table2, err = r.Table2(ctx)
	case "table3":
		doc.Table3, err = r.Table3(ctx)
	case "table4":
		doc.Table4, err = r.Table4(ctx)
	case "fig5a":
		doc.Figure5a, err = r.Figure5a(ctx)
	case "fig5b":
		doc.Figure5b, err = r.Figure5b(ctx)
	case "fig5c":
		doc.Figure5c, err = r.Figure5c(ctx)
	case "embedded":
		doc.Embedded, err = r.Embedded(ctx)
	case "figmech":
		doc.FigureMech, err = r.FigureMech(ctx)
	default:
		err = fmt.Errorf("unknown experiment %q", exp)
	}
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// WriteBenchJSON writes doc as indented JSON. Output is byte-stable for a
// given document (map keys are emitted sorted).
func WriteBenchJSON(w io.Writer, doc *BenchDocument) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
