package harness

import (
	"context"
	"sync"

	"elag/internal/workload"
)

// Grid scheduling: every experiment is a (benchmark, configuration) grid.
// The unit of dispatch is a whole benchmark — its lab is built once and
// every configuration cell replays the same resident trace — so workers
// have benchmark affinity and never contend for a lab. Each cell writes a
// preallocated slot indexed by benchmark, and callers aggregate (averages,
// row ordering) in benchmark order afterwards; with per-cell results
// independent of scheduling, the output is bit-identical at every worker
// count.

// forEachLab builds the lab for each workload and calls fn(i, lab), fanning
// benchmarks across r.workers() goroutines. fn is called exactly once per
// benchmark, each invocation on a single goroutine (distinct benchmarks may
// run concurrently). The first error cancels the remaining benchmarks and
// is returned.
func (r *Runner) forEachLab(benches []*workload.Workload, fn func(i int, l *Lab) error) error {
	if r.workers() <= 1 || len(benches) <= 1 {
		for i, w := range benches {
			l, err := r.Lab(w)
			if err != nil {
				return err
			}
			if err := fn(i, l); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	workers := r.workers()
	if workers > len(benches) {
		workers = len(benches)
	}
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				l, err := r.Lab(benches[i])
				if err != nil {
					fail(err)
					continue
				}
				if err := fn(i, l); err != nil {
					fail(err)
				}
			}
		}()
	}
	for i := range benches {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}
