package harness

import (
	"context"
	"sync"
	"sync/atomic"

	"elag/internal/workload"
)

// Grid scheduling: every experiment is a (benchmark, configuration) grid.
// The unit of dispatch is a whole benchmark — its lab is built once and
// every configuration cell replays the same resident trace — so workers
// have benchmark affinity and never contend for a lab. Each cell writes a
// preallocated slot indexed by benchmark, and callers aggregate (averages,
// row ordering) in benchmark order afterwards; with per-cell results
// independent of scheduling, the output is bit-identical at every worker
// count.

// forEachLab builds the lab for each workload and calls fn(ctx, i, lab),
// fanning benchmarks across r.workers() goroutines. fn is called at most
// once per benchmark, each invocation on a single goroutine (distinct
// benchmarks may run concurrently). The first error cancels the remaining
// benchmarks and is returned; cancelling ctx cancels the grid the same way
// and returns the ctx error. Shutdown is leak-free at every stage: by the
// time forEachLab returns, every worker goroutine it started has exited —
// the pool never outlives the call, whether it ends by completion, by
// first error, or by external cancellation.
func (r *Runner) forEachLab(ctx context.Context, benches []*workload.Workload, fn func(ctx context.Context, i int, l *Lab) error) error {
	// doneN feeds the Progress hook; it counts completed benchmark
	// columns of THIS forEachLab call (each experiment restarts at 0).
	var doneN atomic.Int64
	progress := func(i int) {
		if r.Progress != nil {
			r.Progress(benches[i].Name, int(doneN.Add(1)), len(benches))
		}
	}
	if r.workers() <= 1 || len(benches) <= 1 {
		for i, w := range benches {
			if err := ctx.Err(); err != nil {
				return err
			}
			l, err := r.Lab(ctx, w)
			if err != nil {
				return err
			}
			if err := fn(ctx, i, l); err != nil {
				return err
			}
			progress(i)
		}
		return nil
	}

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	workers := r.workers()
	if workers > len(benches) {
		workers = len(benches)
	}
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-gctx.Done():
					return
				case i, ok := <-idx:
					if !ok {
						return
					}
					if gctx.Err() != nil {
						continue // raced with cancellation; drain
					}
					l, err := r.Lab(gctx, benches[i])
					if err != nil {
						fail(err)
						continue
					}
					if err := fn(gctx, i, l); err != nil {
						fail(err)
						continue
					}
					progress(i)
				}
			}
		}()
	}
	// The feeder must never block on a pool that stopped consuming: once
	// gctx is cancelled (first error or external cancel) the send loop
	// stops, idx closes, and the workers' two exit paths (Done, closed
	// idx) drain the pool.
feed:
	for i := range benches {
		select {
		case idx <- i:
		case <-gctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// External cancellation may land after the last fn returned but before
	// any call observed it; the grid still reports it.
	return ctx.Err()
}
