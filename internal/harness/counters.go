package harness

import (
	"sync/atomic"

	"elag/internal/pipeline"
)

// Counters aggregates the harness's work volume for an external metrics
// layer (elag-serve's /metrics endpoint). All fields are atomics updated
// from the replay hot path and the lab cache; a nil *Counters costs one
// comparison per chunk and nothing else. The counters observe — they
// never influence scheduling or results — so a grid run is byte-identical
// with or without them.
type Counters struct {
	// LabHits / LabMisses count lab-cache lookups: a hit joins an
	// existing (possibly still building, single-flight) lab, a miss
	// builds one.
	LabHits   atomic.Int64
	LabMisses atomic.Int64

	// Chunks / Insts count trace chunks and entries that went through the
	// replay engine of every lab wired to these counters. Each chunk is
	// counted once however many configurations replay it (batched replay
	// shares the chunk), so Insts measures streamed architectural
	// entries — the same unit as a simulate job's fuel.
	Chunks atomic.Int64
	Insts  atomic.Int64

	// MemoHits / MemoMisses / MemoBlockEntries aggregate the block-timing
	// memoizer's counters across every finished simulation. The invariant
	// MemoHits + MemoMisses == MemoBlockEntries holds at every scrape:
	// all three are added from one MemoStats snapshot in one call.
	MemoHits         atomic.Int64
	MemoMisses       atomic.Int64
	MemoBlockEntries atomic.Int64
	// KernelLevel is the highest replay-kernel variant observed (see
	// pipeline.Sim.KernelID): 0 generic, 1 specialized dispatch, 2
	// specialized plus fused direct-mapped cache leaves.
	KernelLevel atomic.Int64
}

// CountMemo folds one simulation's memo counters and kernel selection into
// the aggregate. nil-safe. Called once per finished Sim, off the hot path.
func (c *Counters) CountMemo(st pipeline.MemoStats) {
	if c == nil {
		return
	}
	c.MemoHits.Add(st.Hits)
	c.MemoMisses.Add(st.Misses)
	c.MemoBlockEntries.Add(st.BlockEntries)
	for {
		cur := c.KernelLevel.Load()
		if int64(st.Kernel) <= cur || c.KernelLevel.CompareAndSwap(cur, int64(st.Kernel)) {
			return
		}
	}
}

// CountChunk records one replayed chunk of n entries. nil-safe.
func (c *Counters) CountChunk(n int) {
	if c == nil {
		return
	}
	c.Chunks.Add(1)
	c.Insts.Add(int64(n))
}
