package harness

import (
	"sort"
	"sync"
	"sync/atomic"

	"elag/internal/mech"
	"elag/internal/pipeline"
)

// Counters aggregates the harness's work volume for an external metrics
// layer (elag-serve's /metrics endpoint). All fields are atomics updated
// from the replay hot path and the lab cache; a nil *Counters costs one
// comparison per chunk and nothing else. The counters observe — they
// never influence scheduling or results — so a grid run is byte-identical
// with or without them.
type Counters struct {
	// LabHits / LabMisses count lab-cache lookups: a hit joins an
	// existing (possibly still building, single-flight) lab, a miss
	// builds one.
	LabHits   atomic.Int64
	LabMisses atomic.Int64

	// Chunks / Insts count trace chunks and entries that went through the
	// replay engine of every lab wired to these counters. Each chunk is
	// counted once however many configurations replay it (batched replay
	// shares the chunk), so Insts measures streamed architectural
	// entries — the same unit as a simulate job's fuel.
	Chunks atomic.Int64
	Insts  atomic.Int64

	// MemoHits / MemoMisses / MemoBlockEntries aggregate the block-timing
	// memoizer's counters across every finished simulation. The invariant
	// MemoHits + MemoMisses == MemoBlockEntries holds at every scrape:
	// all three are added from one MemoStats snapshot in one call.
	MemoHits         atomic.Int64
	MemoMisses       atomic.Int64
	MemoBlockEntries atomic.Int64
	// KernelLevel is the highest replay-kernel variant observed (see
	// pipeline.Sim.KernelID): 0 generic, 1 specialized dispatch, 2
	// specialized plus fused direct-mapped cache leaves.
	KernelLevel atomic.Int64

	// mechMu guards lazy creation of per-kind rows in mechRows; the rows
	// themselves are atomics, so folding and scraping never hold the lock
	// while reading values. Keyed by mechanism kind ("stride", "pcax", …).
	mechMu   sync.Mutex
	mechRows map[string]*MechCounts
}

// MechCounts aggregates one mechanism kind's mech.Stats across every
// finished simulation that used it. The Stats algebra carries over to the
// aggregate: Lookups == Hits + Misses and Allocs <= Trains hold at every
// scrape, because each simulation's snapshot is folded in one CountMech
// call field-by-field from a self-consistent mech.Stats.
type MechCounts struct {
	Lookups atomic.Int64
	Hits    atomic.Int64
	Misses  atomic.Int64
	Trains  atomic.Int64
	Allocs  atomic.Int64
}

// CountMemo folds one simulation's memo counters and kernel selection into
// the aggregate. nil-safe. Called once per finished Sim, off the hot path.
func (c *Counters) CountMemo(st pipeline.MemoStats) {
	if c == nil {
		return
	}
	c.MemoHits.Add(st.Hits)
	c.MemoMisses.Add(st.Misses)
	c.MemoBlockEntries.Add(st.BlockEntries)
	for {
		cur := c.KernelLevel.Load()
		if int64(st.Kernel) <= cur || c.KernelLevel.CompareAndSwap(cur, int64(st.Kernel)) {
			return
		}
	}
}

// CountChunk records one replayed chunk of n entries. nil-safe.
func (c *Counters) CountChunk(n int) {
	if c == nil {
		return
	}
	c.Chunks.Add(1)
	c.Insts.Add(int64(n))
}

// CountMech folds one simulation's mechanism counters into the per-kind
// aggregate. nil-safe, and a no-op for simulations that ran no assist
// mechanism (empty kind). Called once per finished Sim, off the hot path.
func (c *Counters) CountMech(kind string, st mech.Stats) {
	if c == nil || kind == "" {
		return
	}
	row := c.mechRow(kind)
	row.Lookups.Add(st.Lookups)
	row.Hits.Add(st.Hits)
	row.Misses.Add(st.Misses)
	row.Trains.Add(st.Trains)
	row.Allocs.Add(st.Allocs)
}

// mechRow returns the row for kind, creating it on first use.
func (c *Counters) mechRow(kind string) *MechCounts {
	c.mechMu.Lock()
	defer c.mechMu.Unlock()
	row := c.mechRows[kind]
	if row == nil {
		if c.mechRows == nil {
			c.mechRows = map[string]*MechCounts{}
		}
		row = &MechCounts{}
		c.mechRows[kind] = row
	}
	return row
}

// MechKinds returns the mechanism kinds observed so far, sorted. nil-safe.
func (c *Counters) MechKinds() []string {
	if c == nil {
		return nil
	}
	c.mechMu.Lock()
	defer c.mechMu.Unlock()
	out := make([]string, 0, len(c.mechRows))
	for k := range c.mechRows {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MechStats reads one kind's aggregate as a plain mech.Stats snapshot.
// A kind that has not been observed reads as all zeros, so scrape-time
// readers registered per registry kind need no existence check. nil-safe.
func (c *Counters) MechStats(kind string) mech.Stats {
	if c == nil {
		return mech.Stats{}
	}
	c.mechMu.Lock()
	row := c.mechRows[kind]
	c.mechMu.Unlock()
	if row == nil {
		return mech.Stats{}
	}
	return mech.Stats{
		Lookups: row.Lookups.Load(),
		Hits:    row.Hits.Load(),
		Misses:  row.Misses.Load(),
		Trains:  row.Trains.Load(),
		Allocs:  row.Allocs.Load(),
	}
}
