package harness

import (
	"context"
	"fmt"
	"strings"

	"elag/internal/core"
	"elag/internal/workload"
)

// Table2Row reproduces one row of the paper's Table 2: load counts, the
// static and dynamic NT/PD/EC distribution under the compiler heuristics,
// and the unlimited-table prediction rates of the NT and PD loads.
type Table2Row struct {
	Name     string  `json:"name"`
	LoadsK   float64 `json:"loads_k"`   // dynamic loads, thousands (the paper reports millions)
	StaticNT float64 `json:"static_nt"` // percent
	StaticPD float64 `json:"static_pd"`
	StaticEC float64 `json:"static_ec"`
	DynNT    float64 `json:"dyn_nt"`
	DynPD    float64 `json:"dyn_pd"`
	DynEC    float64 `json:"dyn_ec"`
	RateNT   float64 `json:"rate_nt"` // percent of NT executions predicted correctly
	RatePD   float64 `json:"rate_pd"`
}

// Table2 computes the row for one prepared benchmark under a given
// classification (Table 2 uses the heuristics; Table 3 reuses this with the
// profile-reclassified classes).
func tableRow(l *Lab, c *core.Classification) Table2Row {
	nt, pd, ec := c.StaticShares()
	return Table2Row{
		Name:     l.W.Name,
		LoadsK:   float64(l.Profile.TotalLoads) / 1000,
		StaticNT: nt, StaticPD: pd, StaticEC: ec,
		DynNT:  l.Profile.DynamicShare(c, core.NT),
		DynPD:  l.Profile.DynamicShare(c, core.PD),
		DynEC:  l.Profile.DynamicShare(c, core.EC),
		RateNT: l.Profile.ClassRate(c, core.NT),
		RatePD: l.Profile.ClassRate(c, core.PD),
	}
}

// Table2 reproduces Table 2 over the SPEC-like suite.
func (r *Runner) Table2(ctx context.Context) ([]Table2Row, error) {
	benches := workload.BySuite(workload.SPEC)
	rows := make([]Table2Row, len(benches))
	err := r.forEachLabCached(ctx, "table2", nil, benches,
		func(i int) any { return &rows[i] },
		func(ctx context.Context, i int, l *Lab) error {
			rows[i] = tableRow(l, l.Heur)
			return nil
		})
	if err != nil {
		return nil, err
	}
	rows = append(rows, averageT2(rows))
	return rows, nil
}

func averageT2(rows []Table2Row) Table2Row {
	avg := Table2Row{Name: "average"}
	n := float64(len(rows))
	for _, x := range rows {
		avg.LoadsK += x.LoadsK / n
		avg.StaticNT += x.StaticNT / n
		avg.StaticPD += x.StaticPD / n
		avg.StaticEC += x.StaticEC / n
		avg.DynNT += x.DynNT / n
		avg.DynPD += x.DynPD / n
		avg.DynEC += x.DynEC / n
		avg.RateNT += x.RateNT / n
		avg.RatePD += x.RatePD / n
	}
	return avg
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: load and prediction characteristics (compiler heuristics)\n")
	fmt.Fprintf(&b, "%-14s %9s | %6s %6s %6s | %6s %6s %6s | %7s %7s\n",
		"Benchmark", "Loads(k)", "sNT%", "sPD%", "sEC%", "dNT%", "dPD%", "dEC%", "NTrate", "PDrate")
	for _, x := range rows {
		fmt.Fprintf(&b, "%-14s %9.0f | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f | %7.2f %7.2f\n",
			x.Name, x.LoadsK, x.StaticNT, x.StaticPD, x.StaticEC,
			x.DynNT, x.DynPD, x.DynEC, x.RateNT, x.RatePD)
	}
	return b.String()
}

// Table3Row reproduces one row of Table 3: speedup and predictable-load
// statistics after profile-guided reclassification.
type Table3Row struct {
	Name     string  `json:"name"`
	Speedup  float64 `json:"speedup"`
	StaticPD float64 `json:"static_pd"`
	DynPD    float64 `json:"dyn_pd"`
	RateNT   float64 `json:"rate_nt"`
	RatePD   float64 `json:"rate_pd"`
}

// Table3 reproduces Table 3: the compiler-directed dual-path configuration
// (256-entry table, one R_addr) with address-profile reclassification.
func (r *Runner) Table3(ctx context.Context) ([]Table3Row, error) {
	benches := workload.BySuite(workload.SPEC)
	rows := make([]Table3Row, len(benches))
	err := r.forEachLabCached(ctx, "table3", nil, benches,
		func(i int) any { return &rows[i] },
		func(ctx context.Context, i int, l *Lab) error {
			sp, err := l.Speedup(ctx, CompilerDual(), l.ReclassFlavors)
			if err != nil {
				return err
			}
			t := tableRow(l, l.Reclass)
			rows[i] = Table3Row{
				Name:     l.W.Name,
				Speedup:  sp,
				StaticPD: t.StaticPD,
				DynPD:    t.DynPD,
				RateNT:   t.RateNT,
				RatePD:   t.RatePD,
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	avg := Table3Row{Name: "average"}
	n := float64(len(rows))
	for _, x := range rows {
		avg.Speedup += x.Speedup / n
		avg.StaticPD += x.StaticPD / n
		avg.DynPD += x.DynPD / n
		avg.RateNT += x.RateNT / n
		avg.RatePD += x.RatePD / n
	}
	rows = append(rows, avg)
	return rows, nil
}

// FormatTable3 renders rows like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: profile-assisted classification (threshold 60%%)\n")
	fmt.Fprintf(&b, "%-14s %8s | %8s %8s | %7s %7s\n",
		"Benchmark", "Speedup", "sPD%", "dPD%", "NTrate", "PDrate")
	for _, x := range rows {
		fmt.Fprintf(&b, "%-14s %8.2f | %8.2f %8.2f | %7.2f %7.2f\n",
			x.Name, x.Speedup, x.StaticPD, x.DynPD, x.RateNT, x.RatePD)
	}
	return b.String()
}

// Table4Row reproduces one row of Table 4 (MediaBench).
type Table4Row struct {
	Table2Row
	Speedup float64 `json:"speedup"`
}

// Table4 reproduces Table 4: MediaBench characteristics and speedups under
// the compiler heuristics (no profiling).
func (r *Runner) Table4(ctx context.Context) ([]Table4Row, error) {
	benches := workload.BySuite(workload.Media)
	rows := make([]Table4Row, len(benches))
	err := r.forEachLabCached(ctx, "table4", nil, benches,
		func(i int) any { return &rows[i] },
		func(ctx context.Context, i int, l *Lab) error {
			sp, err := l.Speedup(ctx, CompilerDual(), l.HeurFlavors)
			if err != nil {
				return err
			}
			rows[i] = Table4Row{Table2Row: tableRow(l, l.Heur), Speedup: sp}
			return nil
		})
	if err != nil {
		return nil, err
	}
	avg := Table4Row{}
	var t2s []Table2Row
	for _, x := range rows {
		t2s = append(t2s, x.Table2Row)
		avg.Speedup += x.Speedup / float64(len(rows))
	}
	avg.Table2Row = averageT2(t2s)
	avg.Name = "average"
	rows = append(rows, avg)
	return rows, nil
}

// FormatTable4 renders rows like the paper's Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: MediaBench characteristics and speedup (compiler heuristics)\n")
	fmt.Fprintf(&b, "%-14s %9s | %6s %6s %6s | %6s %6s %6s | %7s %7s | %7s\n",
		"Benchmark", "Loads(k)", "sNT%", "sPD%", "sEC%", "dNT%", "dPD%", "dEC%", "NTrate", "PDrate", "Speedup")
	for _, x := range rows {
		fmt.Fprintf(&b, "%-14s %9.0f | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f | %7.2f %7.2f | %7.2f\n",
			x.Name, x.LoadsK, x.StaticNT, x.StaticPD, x.StaticEC,
			x.DynNT, x.DynPD, x.DynEC, x.RateNT, x.RatePD, x.Speedup)
	}
	return b.String()
}
