package harness

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"elag"
	"elag/internal/passman"
	"elag/internal/workload"
)

// CompileBenchSchema versions the elag-bench -compilebench JSON document
// (BENCH_compile.json in the repository root); bump on any field-shape
// change.
const CompileBenchSchema = "elag-compilebench/v1"

// CompileBenchResult is one workload's compile-time record: end-to-end
// wall time through the default (O2) pipeline plus the pass manager's
// per-pass breakdown.
type CompileBenchResult struct {
	Workload string `json:"workload"`
	// WallNS is the end-to-end Build wall time (front end, pass pipeline,
	// codegen, assembly, classification), best of Reps runs.
	WallNS int64 `json:"wall_ns"`
	// PassWallNS is the wall time spent inside scheduled passes (the
	// pipeline portion of WallNS), from the same run.
	PassWallNS int64 `json:"pass_wall_ns"`
	// Insts is the machine instruction count of the compiled program.
	Insts int `json:"insts"`
	// Passes is the per-pass breakdown in first-run order (see
	// passman.PassStat for field semantics).
	Passes []passman.PassStat `json:"passes"`
}

// CompileBenchDoc is the machine-readable compile-throughput record, the
// repository's tracked evidence for compiler performance.
type CompileBenchDoc struct {
	Schema string `json:"schema"`
	// Pipeline is the spec-like rendering of the benchmarked pipeline.
	Pipeline string `json:"pipeline"`
	// Reps is how many times each workload was compiled; every entry
	// reports its fastest rep.
	Reps    int                  `json:"reps"`
	Results []CompileBenchResult `json:"results"`
}

// CompileBench compiles every embedded workload through the default O2
// pipeline reps times (<=0 for a default of 5) and records the fastest
// end-to-end wall time with its per-pass breakdown. Best-of-N damps
// scheduler noise without long benchmark runs; the per-pass numbers come
// from the same (fastest) rep so they sum consistently.
func (r *Runner) CompileBench(ctx context.Context, reps int) (*CompileBenchDoc, error) {
	if reps <= 0 {
		reps = 5
	}
	doc := &CompileBenchDoc{Schema: CompileBenchSchema, Reps: reps}
	for _, w := range workload.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.logf("compilebench %s", w.Name)
		var best CompileBenchResult
		for rep := 0; rep < reps; rep++ {
			var stats passman.Stats
			start := time.Now()
			p, err := elag.Build(w.Source, elag.BuildOptions{Stats: &stats})
			wall := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, err
			}
			if rep == 0 || wall < best.WallNS {
				best = CompileBenchResult{
					Workload:   w.Name,
					WallNS:     wall,
					PassWallNS: stats.TotalWallNS,
					Insts:      len(p.Machine.Insts),
					Passes:     stats.Passes(),
				}
				doc.Pipeline = p.Pipeline
			}
		}
		doc.Results = append(doc.Results, best)
	}
	return doc, nil
}

// WriteCompileBenchJSON writes doc as indented JSON.
func WriteCompileBenchJSON(w io.Writer, doc *CompileBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
