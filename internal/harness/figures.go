package harness

import (
	"context"
	"fmt"
	"strings"

	"elag/internal/isa"
	"elag/internal/mech"
	"elag/internal/pipeline"
	"elag/internal/workload"
)

// FigureSeries is one labelled series of per-benchmark speedups (one group
// of bars in Figure 5).
type FigureSeries struct {
	Label    string             `json:"label"`
	Speedups map[string]float64 `json:"speedups"` // benchmark -> speedup
	Average  float64            `json:"average"`
}

// Figure is a reproduced figure: several series over the same benchmarks.
type Figure struct {
	Title      string         `json:"title"`
	Benchmarks []string       `json:"benchmarks"`
	Series     []FigureSeries `json:"series"`
}

// seriesDef is one figure series, declared as data: a label, the hardware
// configuration, and the flavour overlay drawn from the lab (nil for the
// program's baked-in flavours). Declarative series let figure() replay a
// benchmark's entire column of configurations in one batched pass.
type seriesDef struct {
	label string
	cfg   pipeline.Config
	flav  func(l *Lab) isa.FlavorOverlay
}

func (s *seriesDef) spec(l *Lab) pipeline.BatchSpec {
	sp := pipeline.BatchSpec{Config: s.cfg}
	if s.flav != nil {
		sp.Flavors = s.flav(l)
	}
	return sp
}

// figureColumn is one benchmark's cacheable unit of a figure: its
// speedups in series order. The row key carries the series labels, so a
// series change (labels, count, order) misses cleanly.
type figureColumn struct {
	Speedups []float64 `json:"speedups"`
}

func (r *Runner) figure(ctx context.Context, exp, title string, suite workload.Suite, series []seriesDef) (*Figure, error) {
	fig := &Figure{Title: title}
	benches := workload.BySuite(suite)
	for _, w := range benches {
		fig.Benchmarks = append(fig.Benchmarks, w.Name)
	}
	labels := make([]string, len(series))
	for i, s := range series {
		fig.Series = append(fig.Series, FigureSeries{Label: s.label, Speedups: map[string]float64{}})
		labels[i] = s.label
	}
	// One benchmark's column of cells is a single unit of work (and of
	// caching): its lab (and trace) is built once and all series
	// configurations advance through the trace in a single batched pass.
	cols := make([]figureColumn, len(benches))
	err := r.forEachLabCached(ctx, exp, labels, benches,
		func(i int) any { return &cols[i] },
		func(ctx context.Context, bi int, l *Lab) error {
			base, err := l.BaseCycles(ctx)
			if err != nil {
				return fmt.Errorf("%s: base: %w", l.W.Name, err)
			}
			specs := make([]pipeline.BatchSpec, len(series))
			for i := range series {
				specs[i] = series[i].spec(l)
			}
			ms, err := l.SimulateBatch(ctx, specs)
			if err != nil {
				return fmt.Errorf("%s: %w", l.W.Name, err)
			}
			sp := make([]float64, len(series))
			for i, m := range ms {
				if m.Cycles == 0 {
					return fmt.Errorf("%s/%s: zero cycles", series[i].label, l.W.Name)
				}
				sp[i] = float64(base) / float64(m.Cycles)
			}
			cols[bi].Speedups = sp
			r.logf("%s done", l.W.Name)
			return nil
		})
	if err != nil {
		return nil, err
	}
	// Aggregate in benchmark order, off the worker pool: averages sum in
	// a fixed order, so they are bit-identical at every worker count.
	for bi, w := range benches {
		if len(cols[bi].Speedups) != len(series) {
			return nil, fmt.Errorf("%s: cached column has %d series, want %d (stale artifact schema?)",
				w.Name, len(cols[bi].Speedups), len(series))
		}
		for i, sp := range cols[bi].Speedups {
			fig.Series[i].Speedups[w.Name] = sp
			fig.Series[i].Average += sp / float64(len(benches))
		}
	}
	return fig, nil
}

// Figure5aSizes are the prediction-table sizes swept by Figure 5a. The
// paper sweeps 64/128/256 entries against benchmarks with thousands of
// static loads; our kernels have tens of hot static loads, so the
// equivalent contention regime — the quantity the figure is about — sits
// at 8/16/32 entries. The sweep is scaled accordingly (see EXPERIMENTS.md).
var Figure5aSizes = []int{8, 16, 32}

// Figure5a reproduces Figure 5a: speedup from table-based prediction
// alone, across table sizes, with and without compiler support. With
// compiler support only PD-classified loads are allocated entries; without
// it, every load competes for the table.
func (r *Runner) Figure5a(ctx context.Context) (*Figure, error) {
	var series []seriesDef
	for _, size := range Figure5aSizes {
		series = append(series,
			seriesDef{label: fmt.Sprintf("hw-only %d", size), cfg: HWPredict(size)},
			seriesDef{label: fmt.Sprintf("compiler %d", size), cfg: CompilerPredict(size),
				flav: (*Lab).heurFlavors},
		)
	}
	return r.figure(ctx, "fig5a", "Figure 5a: table-based address prediction only (scaled sizes)",
		workload.SPEC, series)
}

// Figure5bSizes are the register-cache sizes swept by Figure 5b, scaled
// like Figure5aSizes: the paper's 4/8/16 registers against its large
// benchmarks corresponds to 1/2/4 against our kernels' handful of hot base
// registers.
var Figure5bSizes = []int{1, 2, 4}

// Figure5b reproduces Figure 5b: speedup from hardware-only early address
// calculation across register-cache sizes.
func (r *Runner) Figure5b(ctx context.Context) (*Figure, error) {
	var series []seriesDef
	for _, n := range Figure5bSizes {
		series = append(series, seriesDef{
			label: fmt.Sprintf("hw-early %d regs", n),
			cfg:   HWEarly(n),
		})
	}
	return r.figure(ctx, "fig5b", "Figure 5b: early address calculation only (scaled sizes)",
		workload.SPEC, series)
}

// Figure5c reproduces Figure 5c: the largest hardware-only configurations
// against the dual-path scheme without compiler support, with compiler
// heuristics, and with heuristics plus address profiling.
func (r *Runner) Figure5c(ctx context.Context) (*Figure, error) {
	series := []seriesDef{
		{label: "hw-predict 256", cfg: HWPredict(256)},
		{label: "hw-early 16", cfg: HWEarly(16)},
		{label: "hw-dual", cfg: HWDual(256, 16)},
		{label: "compiler dual", cfg: CompilerDual(), flav: (*Lab).heurFlavors},
		{label: "compiler dual+profile", cfg: CompilerDual(), flav: (*Lab).reclassFlavors},
	}
	return r.figure(ctx, "fig5c", "Figure 5c: dual-path early address generation", workload.SPEC, series)
}

// MechFigureSpecs are the assist mechanisms FigureMech compares, at their
// reference geometries. The list is data so a new registry kind becomes a
// figure column by appending one spec.
var MechFigureSpecs = []mech.Spec{
	{Kind: "stride", Entries: 256},
	{Kind: "pcax", Entries: 256, Assoc: 4},
}

// FigureMech is the mechanism-layer extension figure: each assist
// mechanism (one grid column per MechFigureSpecs entry) against the
// paper's hardware-only predictor and its compiler-directed proposal, all
// as speedups over the same base architecture. The assist mechanisms need
// no compiler support — they drive every load — so they bracket how much
// of the paper's win is the table geometry versus the classification.
func (r *Runner) FigureMech(ctx context.Context) (*Figure, error) {
	series := []seriesDef{
		{label: "hw-predict 256", cfg: HWPredict(256)},
	}
	for _, sp := range MechFigureSpecs {
		series = append(series, seriesDef{label: sp.String(), cfg: Assist(sp)})
	}
	series = append(series,
		seriesDef{label: "compiler dual", cfg: CompilerDual(), flav: (*Lab).heurFlavors})
	return r.figure(ctx, "figmech",
		"Figure M: pluggable load-acceleration mechanisms (speedup over base)",
		workload.SPEC, series)
}

// FormatFigure renders a figure as an aligned text table (benchmarks down,
// series across), mirroring the paper's grouped bars.
func FormatFigure(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %*s", labelWidth(s.Label), s.Label)
	}
	fmt.Fprintln(&b)
	for _, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-14s", name)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %*.2f", labelWidth(s.Label), s.Speedups[name])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-14s", "average")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %*.2f", labelWidth(s.Label), s.Average)
	}
	fmt.Fprintln(&b)
	return b.String()
}

func labelWidth(label string) int {
	if len(label) < 8 {
		return 8
	}
	return len(label)
}
