package harness

import (
	"context"
	"encoding/json"
	"testing"

	"elag/internal/artifact"
	"elag/internal/workload"
)

func rowStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRowCacheWarmIdentical: a second runner sharing the store rebuilds
// Table 2 from cached rows alone — no labs built — and the document
// bytes are identical.
func TestRowCacheWarmIdentical(t *testing.T) {
	store := rowStore(t)
	ctx := context.Background()
	fuel := int64(200_000)

	cold := &Runner{Fuel: fuel, Artifacts: store, Counters: &Counters{}}
	coldRows, err := cold.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(workload.BySuite(workload.SPEC)))
	if got := cold.Counters.LabMisses.Load(); got != n {
		t.Errorf("cold run built %d labs, want %d", got, n)
	}

	warm := &Runner{Fuel: fuel, Artifacts: store, Counters: &Counters{}}
	warmRows, err := warm.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Counters.LabMisses.Load() + warm.Counters.LabHits.Load(); got != 0 {
		t.Errorf("warm run touched %d labs, want 0 (fully cached)", got)
	}

	coldJSON, _ := json.Marshal(coldRows)
	warmJSON, _ := json.Marshal(warmRows)
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("warm rows differ from cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// TestRowCachePartial: deleting one benchmark's row forces exactly that
// row to recompute; the others restore from the store.
func TestRowCachePartial(t *testing.T) {
	store := rowStore(t)
	ctx := context.Background()
	fuel := int64(200_000)

	cold := &Runner{Fuel: fuel, Artifacts: store, Counters: &Counters{}}
	coldRows, err := cold.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}

	benches := workload.BySuite(workload.SPEC)
	victim := benches[1]
	store.Delete(cold.rowKey("table2", nil, victim))

	warm := &Runner{Fuel: fuel, Artifacts: store, Counters: &Counters{}}
	warmRows, err := warm.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Counters.LabMisses.Load(); got != 1 {
		t.Errorf("partial warm run built %d labs, want 1", got)
	}
	coldJSON, _ := json.Marshal(coldRows)
	warmJSON, _ := json.Marshal(warmRows)
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("partially recomputed rows differ from cold")
	}
}

// TestRowCacheFigureSeriesChange: figure rows carry their series labels
// in the key, so a different sweep never reuses them; the same sweep in
// a fresh runner is fully cached.
func TestRowCacheFigureSeriesChange(t *testing.T) {
	store := rowStore(t)
	w := workload.BySuite(workload.SPEC)[0]
	r := &Runner{Fuel: 200_000, Artifacts: store}
	a := r.rowKey("fig5a", []string{"hw-only 8", "compiler 8"}, w)
	b := r.rowKey("fig5a", []string{"hw-only 16", "compiler 16"}, w)
	if a == b {
		t.Errorf("different series labels produced the same row key")
	}
	if a != r.rowKey("fig5a", []string{"hw-only 8", "compiler 8"}, w) {
		t.Errorf("row key is not deterministic")
	}
	if a == r.rowKey("fig5b", []string{"hw-only 8", "compiler 8"}, w) {
		t.Errorf("experiment name must participate in the row key")
	}
	r2 := &Runner{Fuel: 100_000, Artifacts: store}
	if a == r2.rowKey("fig5a", []string{"hw-only 8", "compiler 8"}, w) {
		t.Errorf("fuel must participate in the row key")
	}
}

// TestRowCacheCrossExperiment: the embedded experiment caches per-row
// like the tables, and its rows are keyed apart from table rows over the
// same benchmarks.
func TestRowCacheCrossExperiment(t *testing.T) {
	store := rowStore(t)
	ctx := context.Background()

	cold := &Runner{Fuel: 200_000, Artifacts: store, Counters: &Counters{}}
	coldRows, err := cold.Embedded(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4 shares the MediaBench suite but must not reuse embedded rows.
	if _, err := cold.Table4(ctx); err != nil {
		t.Fatal(err)
	}
	media := int64(len(workload.BySuite(workload.Media)))
	if got := cold.Counters.LabMisses.Load(); got != 2*media {
		t.Errorf("embedded+table4 built %d labs, want %d (no cross-experiment reuse)", got, 2*media)
	}

	warm := &Runner{Fuel: 200_000, Artifacts: store, Counters: &Counters{}}
	warmRows, err := warm.Embedded(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Counters.LabMisses.Load(); got != 0 {
		t.Errorf("warm embedded built %d labs, want 0", got)
	}
	coldJSON, _ := json.Marshal(coldRows)
	warmJSON, _ := json.Marshal(warmRows)
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("warm embedded rows differ from cold")
	}
}
