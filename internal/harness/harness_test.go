package harness_test

import (
	"context"
	"testing"

	"elag/internal/harness"
	"elag/internal/workload"
)

// ctx is the no-deadline context the tests run under; cancellation paths
// have their own dedicated tests.
var ctx = context.Background()

// quickRunner bounds per-benchmark work so the experiment tests stay fast;
// the full-length runs live in the top-level benchmark harness.
func quickRunner() *harness.Runner {
	return &harness.Runner{Fuel: 250_000}
}

func TestLabPreparesEverything(t *testing.T) {
	r := quickRunner()
	l, err := r.Lab(ctx, workload.Get("023.eqntott"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Heur == nil || l.Reclass == nil || l.Profile == nil {
		t.Fatalf("lab incomplete")
	}
	if l.Trace.Len() == 0 {
		t.Fatalf("no trace collected")
	}
	if int64(l.Trace.Len()) != l.EmuRes.DynamicInsts {
		t.Fatalf("trace length %d != retired %d", l.Trace.Len(), l.EmuRes.DynamicInsts)
	}
	base, err := l.BaseCycles(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatalf("base cycles = %d", base)
	}
	// Lab caching: same pointer for the same workload.
	l2, err := r.Lab(ctx, workload.Get("023.eqntott"))
	if err != nil {
		t.Fatal(err)
	}
	if l2 != l {
		t.Errorf("lab not cached")
	}
}

func TestSpeedupsAtLeastNotAbsurd(t *testing.T) {
	r := quickRunner()
	l, err := r.Lab(ctx, workload.Get("008.espresso"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := l.Speedup(ctx, harness.CompilerDual(), l.HeurFlavors)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 0.9 || sp > 4 {
		t.Errorf("espresso compiler-dual speedup = %.2f out of plausible range", sp)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 12 SPEC-like benchmarks")
	}
	r := quickRunner()
	rows, err := r.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // 12 benchmarks + average
		t.Fatalf("%d rows, want 13", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Name != "average" {
		t.Fatalf("last row is %q", avg.Name)
	}
	// The paper's headline classification property: PD loads predict far
	// better than NT loads on average.
	if avg.RatePD <= avg.RateNT {
		t.Errorf("PD rate (%.1f) not above NT rate (%.1f): classification "+
			"is not separating predictable loads", avg.RatePD, avg.RateNT)
	}
	if avg.RatePD < 80 {
		t.Errorf("average PD prediction rate %.1f < 80%%", avg.RatePD)
	}
	for _, row := range rows {
		sum := row.StaticNT + row.StaticPD + row.StaticEC
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: static shares sum to %.2f", row.Name, sum)
		}
		dsum := row.DynNT + row.DynPD + row.DynEC
		if dsum < 99.9 || dsum > 100.1 {
			t.Errorf("%s: dynamic shares sum to %.2f", row.Name, dsum)
		}
	}
	out := harness.FormatTable2(rows)
	if len(out) == 0 {
		t.Errorf("empty rendering")
	}
}

func TestTable3ProfileNeverHurtsMuch(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := quickRunner()
	t3, err := r.Table3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3) != 13 {
		t.Fatalf("%d rows", len(t3))
	}
	avg := t3[len(t3)-1]
	if avg.Speedup < 1.0 {
		t.Errorf("average profiled speedup %.3f < 1.0", avg.Speedup)
	}
	_ = harness.FormatTable3(t3)
}

func TestFigure5aCompilerHelpsSmallTables(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := quickRunner()
	fig, err := r.Figure5a(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("%d series", len(fig.Series))
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Average
	}
	// Larger tables never hurt on average.
	if byLabel["hw-only 32"] < byLabel["hw-only 8"]-0.01 {
		t.Errorf("larger hw-only table slower: %v", byLabel)
	}
	if byLabel["compiler 32"] < byLabel["compiler 8"]-0.01 {
		t.Errorf("larger compiler table slower: %v", byLabel)
	}
	// The paper's contention argument: with a small table, keeping
	// unpredictable loads out (compiler support) must help.
	if byLabel["compiler 8"] < byLabel["hw-only 8"]-0.02 {
		t.Errorf("compiler support hurt at the smallest table: %v", byLabel)
	}
	_ = harness.FormatFigure(fig)
}

func TestFigure5cOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := quickRunner()
	fig, err := r.Figure5c(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Average
	}
	// The paper's headline orderings.
	if byLabel["compiler dual+profile"] < byLabel["compiler dual"]-0.005 {
		t.Errorf("profiling hurt the compiler scheme: %v", byLabel)
	}
	if byLabel["compiler dual"] <= byLabel["hw-dual"] {
		t.Errorf("compiler-directed dual did not beat the hardware-only dual: %v", byLabel)
	}
}

func TestTable4MediaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := quickRunner()
	rows, err := r.Table4(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 13 + average
		t.Fatalf("%d rows", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Speedup < 1.0 {
		t.Errorf("MediaBench average speedup %.3f < 1", avg.Speedup)
	}
	if avg.RatePD <= avg.RateNT {
		t.Errorf("MediaBench PD rate not above NT rate: %.1f vs %.1f",
			avg.RatePD, avg.RateNT)
	}
	_ = harness.FormatTable4(rows)
}

func TestEmbeddedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := quickRunner()
	rows, err := r.Embedded(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.CompilerSpeedup < 1.0 {
		t.Errorf("embedded compiler speedup %.3f < 1", avg.CompilerSpeedup)
	}
	// The Section 5.4 argument: the compiler scheme with 1/8th of the
	// register-cache hardware must at least match the hardware-only dual.
	if avg.CompilerSpeedup < avg.HWDualSpeedup-0.02 {
		t.Errorf("embedded compiler (%.3f) fell behind hw-dual (%.3f)",
			avg.CompilerSpeedup, avg.HWDualSpeedup)
	}
	_ = harness.FormatEmbedded(rows)
}
