// White-box tests for grid cancellation: worker-pool shutdown must be
// leak-free no matter where cancellation lands, and a cancelled grid
// re-run to completion must be byte-identical to one that was never
// cancelled — cancellation may cost wall time, never determinism.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"elag/internal/workload"
)

const cancelFuel = 100_000

// settleGoroutines waits for the goroutine count to return to the
// baseline, failing the test with a full stack dump if it does not.
func settleGoroutines(t *testing.T, before int, stage string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		runtime.GC()
		if n = runtime.NumGoroutine(); n <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("%s: goroutine leak: %d before, %d after settle\n%s",
		stage, before, n, buf[:runtime.Stack(buf, true)])
}

// TestForEachLabCancelEveryStage cancels the grid context at every stage a
// cancellation can land — before the grid starts, during the k-th
// benchmark's work for every k, and after the last one — and asserts the
// pool reports the cancellation and leaks nothing.
func TestForEachLabCancelEveryStage(t *testing.T) {
	benches := workload.All()
	if len(benches) > 4 {
		benches = benches[:4]
	}
	for _, parallel := range []int{2, 4, 8} {
		// Pre-cancelled: no worker may start.
		func() {
			before := runtime.NumGoroutine()
			r := &Runner{Fuel: cancelFuel, Parallel: parallel}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			err := r.forEachLab(ctx, benches, func(ctx context.Context, i int, l *Lab) error {
				t.Errorf("parallel=%d: fn ran under a pre-cancelled ctx", parallel)
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("parallel=%d pre-cancel: err = %v, want Canceled", parallel, err)
			}
			settleGoroutines(t, before, fmt.Sprintf("parallel=%d pre-cancel", parallel))
		}()

		// Cancel while the k-th callback is in flight, for every k. The
		// runner is shared so labs come from cache after the first pass —
		// the point is pool shutdown, not build cost.
		r := &Runner{Fuel: cancelFuel, Parallel: parallel}
		for k := 0; k < len(benches); k++ {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			var calls atomic.Int64
			err := r.forEachLab(ctx, benches, func(ctx context.Context, i int, l *Lab) error {
				if calls.Add(1) == int64(k+1) {
					cancel()
					// The grid must observe the cancellation even though
					// this callback returns nil.
				}
				return nil
			})
			cancel()
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("parallel=%d cancel-at-%d: err = %v", parallel, k, err)
			}
			if err == nil && k < len(benches)-1 {
				t.Fatalf("parallel=%d cancel-at-%d: grid ignored cancellation", parallel, k)
			}
			settleGoroutines(t, before, fmt.Sprintf("parallel=%d cancel-at-%d", parallel, k))
		}

		// Deadline expiring mid-build: cancellation lands inside Lab
		// construction (profile/trace), not between callbacks.
		func() {
			before := runtime.NumGoroutine()
			fresh := &Runner{Fuel: 10_000_000, Parallel: parallel}
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			err := fresh.forEachLab(ctx, benches, func(ctx context.Context, i int, l *Lab) error {
				return nil
			})
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Fatalf("parallel=%d mid-build deadline: err = %v", parallel, err)
			}
			settleGoroutines(t, before, fmt.Sprintf("parallel=%d mid-build", parallel))
		}()
	}
}

// TestForEachLabFirstErrorNoLeak injects a first error from the k-th
// callback for every k: the grid must return exactly that error and shut
// the pool down without leaking.
func TestForEachLabFirstErrorNoLeak(t *testing.T) {
	benches := workload.All()
	if len(benches) > 4 {
		benches = benches[:4]
	}
	for _, parallel := range []int{2, 8} {
		r := &Runner{Fuel: cancelFuel, Parallel: parallel}
		for k := 0; k < len(benches); k++ {
			before := runtime.NumGoroutine()
			boom := fmt.Errorf("injected failure at call %d", k)
			var calls atomic.Int64
			err := r.forEachLab(context.Background(), benches, func(ctx context.Context, i int, l *Lab) error {
				if calls.Add(1) == int64(k+1) {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("parallel=%d fail-at-%d: err = %v, want injected error", parallel, k, err)
			}
			settleGoroutines(t, before, fmt.Sprintf("parallel=%d fail-at-%d", parallel, k))
		}
	}
}

// TestGridCancelRerunDeterminism is the cancellation-determinism contract:
// cancel a grid mid-run, then re-run it to completion on the same Runner
// (same lab cache, same memoized state) — the output must be byte-identical
// to a run that never saw a cancellation, at every parallelism level.
func TestGridCancelRerunDeterminism(t *testing.T) {
	ref := &Runner{Fuel: cancelFuel}
	refRows, err := ref.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := FormatTable2(refRows)

	for _, parallel := range []int{1, 4, 8} {
		r := &Runner{Fuel: cancelFuel, Parallel: parallel}

		// First attempt: cancelled from a concurrent timer, landing at an
		// arbitrary point in lab builds or replays.
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		rows, err := r.Table2(ctx)
		cancel()
		if err == nil {
			// The cancel lost the race and the run finished; it must
			// already match.
			if got := FormatTable2(rows); got != want {
				t.Fatalf("parallel=%d: uncancelled-by-race output diverges", parallel)
			}
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%d cancelled run: err = %v", parallel, err)
		}

		// Re-run on the same Runner: whatever half-built state the cancel
		// left behind must not change a single byte.
		rows, err = r.Table2(context.Background())
		if err != nil {
			t.Fatalf("parallel=%d re-run: %v", parallel, err)
		}
		if got := FormatTable2(rows); got != want {
			t.Errorf("parallel=%d: re-run after cancel diverges from uncancelled run:\ngot:\n%s\nwant:\n%s",
				parallel, got, want)
		}
	}
}
