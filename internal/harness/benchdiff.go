package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Perf-regression gate: BenchDiff compares two bench documents — two
// elag-replaybench/v3, elag-compilebench/v1, or elag-servebench/v1
// files — entry by entry, and reports every metric whose regression
// exceeds a threshold. CI runs it against the checked-in baselines
// (BENCH_replay.json, BENCH_compile.json, BENCH_serve.json) so a
// hot-path regression fails the build with the
// exact entry and metric named, instead of surfacing weeks later as "the
// grid got slow".
//
// The schemas are sniffed from the documents' own schema fields; mixing
// schemas, or comparing runs with different fuel budgets, is an error —
// a 500k-fuel run "beating" a 2M-fuel baseline is not a comparison.

// DiffMetric is one compared metric of one entry.
type DiffMetric struct {
	// Name is the metric's JSON field name (ns_per_op, wall_ns, ...).
	Name string
	// Old and New are the baseline and candidate values.
	Old, New float64
	// Delta is the relative change in the regression direction: positive
	// means worse, whatever the metric's polarity (minst_per_sec going
	// DOWN is a positive Delta).
	Delta float64
	// Regressed is true when Delta exceeded the threshold.
	Regressed bool
}

// DiffEntry is the comparison of one named bench entry.
type DiffEntry struct {
	// Name identifies the entry (replay bench name or compile workload).
	Name string
	// Metrics holds the per-metric deltas, in declaration order.
	Metrics []DiffMetric
	// Missing marks entries present in only one document (counted as a
	// structural error, not a regression).
	Missing string // "", "baseline", or "candidate"
}

// DiffReport is the full result of one BenchDiff run.
type DiffReport struct {
	// Schema is the shared schema of both documents.
	Schema string
	// Threshold is the relative regression bound applied (0.15 = 15%).
	Threshold float64
	// Entries holds per-entry comparisons in baseline order, followed by
	// candidate-only entries.
	Entries []DiffEntry
}

// Regressions returns the entries with at least one regressed metric or a
// missing counterpart.
func (d *DiffReport) Regressions() []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Entries {
		if e.Missing != "" {
			out = append(out, e)
			continue
		}
		for _, m := range e.Metrics {
			if m.Regressed {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// benchMetric describes how to compare one metric: its field name, how to
// read it, and its polarity (higherIsBetter inverts the regression
// direction — throughput falling is the regression).
type benchMetric struct {
	name           string
	higherIsBetter bool
	read           func(any) float64
}

// relDelta returns the relative regression of new vs old in the metric's
// regression direction. A zero baseline compares by presence: any nonzero
// candidate on a zero baseline is an infinite relative change, reported
// as +Inf (regressed) when it moved in the bad direction.
func relDelta(old, new float64, higherIsBetter bool) float64 {
	if higherIsBetter {
		old, new = -old, -new // now "bigger new" is worse for both polarities
	}
	diff := new - old
	base := math.Abs(old)
	if base == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, diff)))
	}
	return diff / base
}

// sniffSchema decodes just the schema field.
func sniffSchema(raw []byte, path string) (string, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	if head.Schema == "" {
		return "", fmt.Errorf("%s: no schema field — not a bench document", path)
	}
	return head.Schema, nil
}

// BenchDiffFiles loads two bench documents and compares them; see
// BenchDiff.
func BenchDiffFiles(oldPath, newPath string, threshold float64) (*DiffReport, error) {
	oldRaw, err := os.ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	newRaw, err := os.ReadFile(newPath)
	if err != nil {
		return nil, err
	}
	return BenchDiff(oldRaw, newRaw, oldPath, newPath, threshold)
}

// BenchDiff compares baseline oldRaw against candidate newRaw. Both must
// carry the same schema (elag-replaybench/v3 or elag-compilebench/v1);
// replay documents must additionally agree on fuel. threshold <= 0 takes
// the 0.15 default.
func BenchDiff(oldRaw, newRaw []byte, oldPath, newPath string, threshold float64) (*DiffReport, error) {
	if threshold <= 0 {
		threshold = 0.15
	}
	oldSchema, err := sniffSchema(oldRaw, oldPath)
	if err != nil {
		return nil, err
	}
	newSchema, err := sniffSchema(newRaw, newPath)
	if err != nil {
		return nil, err
	}
	if oldSchema != newSchema {
		return nil, fmt.Errorf("schema mismatch: %s is %s, %s is %s",
			oldPath, oldSchema, newPath, newSchema)
	}
	switch oldSchema {
	case ReplayBenchSchema:
		return diffReplay(oldRaw, newRaw, oldPath, newPath, threshold)
	case CompileBenchSchema:
		return diffCompile(oldRaw, newRaw, threshold)
	case ServeBenchSchema:
		return diffServe(oldRaw, newRaw, oldPath, newPath, threshold)
	}
	return nil, fmt.Errorf("unsupported bench schema %q (want %s, %s, or %s)",
		oldSchema, ReplayBenchSchema, CompileBenchSchema, ServeBenchSchema)
}

// replayMetrics are the gated metrics of a replay bench entry. MInstPerSec
// is throughput (higher is better); the rest are costs. MemoHitRate is
// gated too: replay is deterministic, so a hit-rate drop is a memo-policy
// or fingerprint regression, not machine noise.
var replayMetrics = []benchMetric{
	{"ns_per_op", false, func(v any) float64 { return float64(v.(ReplayBenchResult).NsPerOp) }},
	{"allocs_per_op", false, func(v any) float64 { return float64(v.(ReplayBenchResult).AllocsPerOp) }},
	{"bytes_per_op", false, func(v any) float64 { return float64(v.(ReplayBenchResult).BytesPerOp) }},
	{"minst_per_sec", true, func(v any) float64 { return v.(ReplayBenchResult).MInstPerSec }},
	{"peak_bytes", false, func(v any) float64 { return float64(v.(ReplayBenchResult).PeakBytes) }},
	{"memo_hit_rate", true, func(v any) float64 { return v.(ReplayBenchResult).MemoHitRate }},
}

func diffReplay(oldRaw, newRaw []byte, oldPath, newPath string, threshold float64) (*DiffReport, error) {
	var oldDoc, newDoc ReplayBenchDoc
	if err := json.Unmarshal(oldRaw, &oldDoc); err != nil {
		return nil, fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newRaw, &newDoc); err != nil {
		return nil, fmt.Errorf("%s: %w", newPath, err)
	}
	if oldDoc.Fuel != newDoc.Fuel {
		return nil, fmt.Errorf("fuel mismatch: %s ran %d, %s ran %d — per-op costs are not comparable across budgets",
			oldPath, oldDoc.Fuel, newPath, newDoc.Fuel)
	}
	oldBy := map[string]ReplayBenchResult{}
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
	}
	newBy := map[string]ReplayBenchResult{}
	for _, r := range newDoc.Results {
		newBy[r.Name] = r
	}
	rep := &DiffReport{Schema: ReplayBenchSchema, Threshold: threshold}
	for _, o := range oldDoc.Results {
		n, ok := newBy[o.Name]
		if !ok {
			rep.Entries = append(rep.Entries, DiffEntry{Name: o.Name, Missing: "candidate"})
			continue
		}
		rep.Entries = append(rep.Entries, diffEntry(o.Name, o, n, replayMetrics, threshold))
	}
	rep.Entries = append(rep.Entries, onlyIn(newDoc.Results, oldBy)...)
	return rep, nil
}

// compileMetrics gate the end-to-end and in-pipeline compile wall times.
// Allocation counts are not recorded by the compile bench; wall time is
// the contract.
var compileMetrics = []benchMetric{
	{"wall_ns", false, func(v any) float64 { return float64(v.(CompileBenchResult).WallNS) }},
	{"pass_wall_ns", false, func(v any) float64 { return float64(v.(CompileBenchResult).PassWallNS) }},
}

func diffCompile(oldRaw, newRaw []byte, threshold float64) (*DiffReport, error) {
	var oldDoc, newDoc CompileBenchDoc
	if err := json.Unmarshal(oldRaw, &oldDoc); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(newRaw, &newDoc); err != nil {
		return nil, err
	}
	oldBy := map[string]CompileBenchResult{}
	for _, r := range oldDoc.Results {
		oldBy[r.Workload] = r
	}
	newBy := map[string]CompileBenchResult{}
	for _, r := range newDoc.Results {
		newBy[r.Workload] = r
	}
	rep := &DiffReport{Schema: CompileBenchSchema, Threshold: threshold}
	for _, o := range oldDoc.Results {
		n, ok := newBy[o.Workload]
		if !ok {
			rep.Entries = append(rep.Entries, DiffEntry{Name: o.Workload, Missing: "candidate"})
			continue
		}
		rep.Entries = append(rep.Entries, diffEntry(o.Workload, o, n, compileMetrics, threshold))
	}
	var extra []DiffEntry
	for _, r := range newDoc.Results {
		if _, ok := oldBy[r.Workload]; !ok {
			extra = append(extra, DiffEntry{Name: r.Workload, Missing: "baseline"})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Name < extra[j].Name })
	rep.Entries = append(rep.Entries, extra...)
	return rep, nil
}

// serveMetrics gate the cold service path and the byte-identity bit.
// Warm wall time and speedup are recorded in the document but not gated
// relatively: warm ops are microsecond-scale store lookups, where a 15%
// relative bound is pure noise — CI asserts the absolute >= 20x speedup
// floor instead. identical is a boolean read as 1/0, so a true -> false
// flip shows up as an infinite regression.
var serveMetrics = []benchMetric{
	{"cold_wall_ns", false, func(v any) float64 { return float64(v.(ServeBenchResult).ColdWallNS) }},
	{"identical", true, func(v any) float64 {
		if v.(ServeBenchResult).Identical {
			return 1
		}
		return 0
	}},
}

func diffServe(oldRaw, newRaw []byte, oldPath, newPath string, threshold float64) (*DiffReport, error) {
	var oldDoc, newDoc ServeBenchDoc
	if err := json.Unmarshal(oldRaw, &oldDoc); err != nil {
		return nil, fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newRaw, &newDoc); err != nil {
		return nil, fmt.Errorf("%s: %w", newPath, err)
	}
	if oldDoc.Fuel != newDoc.Fuel {
		return nil, fmt.Errorf("fuel mismatch: %s ran %d, %s ran %d — wall times are not comparable across budgets",
			oldPath, oldDoc.Fuel, newPath, newDoc.Fuel)
	}
	oldBy := map[string]ServeBenchResult{}
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
	}
	newBy := map[string]ServeBenchResult{}
	for _, r := range newDoc.Results {
		newBy[r.Name] = r
	}
	rep := &DiffReport{Schema: ServeBenchSchema, Threshold: threshold}
	for _, o := range oldDoc.Results {
		n, ok := newBy[o.Name]
		if !ok {
			rep.Entries = append(rep.Entries, DiffEntry{Name: o.Name, Missing: "candidate"})
			continue
		}
		rep.Entries = append(rep.Entries, diffEntry(o.Name, o, n, serveMetrics, threshold))
	}
	var extra []DiffEntry
	for _, r := range newDoc.Results {
		if _, ok := oldBy[r.Name]; !ok {
			extra = append(extra, DiffEntry{Name: r.Name, Missing: "baseline"})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Name < extra[j].Name })
	rep.Entries = append(rep.Entries, extra...)
	return rep, nil
}

func onlyIn(results []ReplayBenchResult, oldBy map[string]ReplayBenchResult) []DiffEntry {
	var extra []DiffEntry
	for _, r := range results {
		if _, ok := oldBy[r.Name]; !ok {
			extra = append(extra, DiffEntry{Name: r.Name, Missing: "baseline"})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Name < extra[j].Name })
	return extra
}

func diffEntry(name string, o, n any, metrics []benchMetric, threshold float64) DiffEntry {
	e := DiffEntry{Name: name}
	for _, m := range metrics {
		ov, nv := m.read(o), m.read(n)
		d := relDelta(ov, nv, m.higherIsBetter)
		e.Metrics = append(e.Metrics, DiffMetric{
			Name: m.name, Old: ov, New: nv,
			Delta: d, Regressed: d > threshold,
		})
	}
	return e
}

// WriteDiffReport renders the report as a fixed-width table: one line per
// (entry, metric) with the signed relative change, regressions flagged.
// Returns the number of regressed entries (missing counterparts included),
// which is the gate's exit criterion.
func WriteDiffReport(w io.Writer, d *DiffReport) int {
	fmt.Fprintf(w, "bench diff (%s, threshold %.0f%%)\n", d.Schema, d.Threshold*100)
	bad := 0
	for _, e := range d.Entries {
		if e.Missing != "" {
			fmt.Fprintf(w, "  %-16s MISSING from %s\n", e.Name, e.Missing)
			bad++
			continue
		}
		regressed := false
		for _, m := range e.Metrics {
			flag := ""
			if m.Regressed {
				flag = "  << REGRESSED"
				regressed = true
			}
			// Delta is reported in the regression direction; re-sign it
			// to the metric's natural direction for display.
			fmt.Fprintf(w, "  %-16s %-14s %14.4g -> %-14.4g %+7.1f%%%s\n",
				e.Name, m.Name, m.Old, m.New, 100*rawChange(m), flag)
		}
		if regressed {
			bad++
		}
	}
	if bad == 0 {
		fmt.Fprintln(w, "  no regressions")
	}
	return bad
}

// rawChange is the display-direction relative change (new vs old), +Inf
// clamped for zero baselines.
func rawChange(m DiffMetric) float64 {
	if m.Old == 0 {
		if m.New == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (m.New - m.Old) / math.Abs(m.Old)
}
