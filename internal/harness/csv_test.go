package harness_test

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"

	"elag/internal/harness"
)

func TestWriteFigureCSV(t *testing.T) {
	fig := &harness.Figure{
		Title:      "t",
		Benchmarks: []string{"a", "b"},
		Series: []harness.FigureSeries{
			{Label: "s1", Speedups: map[string]float64{"a": 1.5, "b": 1.25}, Average: 1.375},
		},
	}
	var buf bytes.Buffer
	if err := harness.WriteFigureCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + a + b + average
		t.Fatalf("%d records", len(recs))
	}
	if recs[1][0] != "a" || recs[1][1] != "s1" || recs[1][2] != "1.500" {
		t.Errorf("row: %v", recs[1])
	}
	if recs[3][0] != "average" || recs[3][2] != "1.375" {
		t.Errorf("average row: %v", recs[3])
	}
}

func TestWriteTableCSVs(t *testing.T) {
	t2 := []harness.Table2Row{{Name: "x", LoadsK: 1, StaticPD: 50, DynPD: 60, RatePD: 90}}
	var buf bytes.Buffer
	if err := harness.WriteTable2CSV(&buf, t2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,1.000,") {
		t.Errorf("table2 csv: %q", buf.String())
	}
	buf.Reset()
	t3 := []harness.Table3Row{{Name: "y", Speedup: 1.2}}
	if err := harness.WriteTable3CSV(&buf, t3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "y,1.200,") {
		t.Errorf("table3 csv: %q", buf.String())
	}
	buf.Reset()
	t4 := []harness.Table4Row{{Table2Row: t2[0], Speedup: 1.1}}
	if err := harness.WriteTable4CSV(&buf, t4); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(strings.TrimSpace(buf.String()), "1.100") {
		t.Errorf("table4 csv: %q", buf.String())
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestExportCSVWritesEveryArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all experiments")
	}
	r := &harness.Runner{Fuel: 120_000}
	files := map[string]*bytes.Buffer{}
	err := r.ExportCSV(ctx, func(name string) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		files[name] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2.csv", "table3.csv", "table4.csv",
		"fig5a.csv", "fig5b.csv", "fig5c.csv"} {
		b, ok := files[want]
		if !ok || b.Len() == 0 {
			t.Errorf("artifact %s missing or empty", want)
		}
	}
}
