package harness

import (
	"context"
	"encoding/json"

	"elag/internal/artifact"
	"elag/internal/workload"
)

// Per-row grid caching: every grid experiment is a set of independent
// per-benchmark rows, each a pure function of (experiment, series shape,
// benchmark source, fuel, chunk size). With Runner.Artifacts attached,
// forEachLabCached keys each row canonically, decodes the rows the store
// already has, and runs the grid machinery over only the missing
// benchmarks — so a grid that overlaps a previous one (a re-run, a
// narrower experiment selection, a different tool sharing the store)
// recomputes exactly the rows it lacks. Averages are recomputed from the
// restored rows; since JSON round-trips float64 exactly, a document
// assembled from cached rows is byte-identical to a cold one.

// rowKeySchema versions the row-key derivation and the row shapes
// together; bump on any change to either.
const rowKeySchema = "elag-grid-row/v1"

// rowKey derives the content-address of one benchmark's row. exp names
// the experiment ("table2", "fig5a", ...); extra carries experiment
// shape beyond the name (figure series labels), so a series change
// misses cleanly. The benchmark is keyed by name and source — editing a
// workload invalidates its rows. BenchSchema participates so a document
// shape bump invalidates everything. Parallelism, batching, memoization
// and kernel specialization are excluded: results are byte-identical at
// every setting (DESIGN.md §10/§11/§15).
func (r *Runner) rowKey(exp string, extra []string, w *workload.Workload) artifact.Key {
	d := artifact.NewDigest(rowKeySchema)
	d.Str("bench_schema", BenchSchema)
	d.Str("exp", exp)
	for _, e := range extra {
		d.Str("series", e)
	}
	d.Str("bench", w.Name)
	d.Str("source", w.Source)
	d.Int("fuel", r.Fuel)
	d.Int("chunk", int64(r.ChunkSize))
	return d.Key()
}

// forEachLabCached is forEachLab with per-row artifact caching. slot(i)
// returns a pointer to benchmark i's result slot: cached rows are
// decoded straight into it, and after fn fills the missing ones their
// slots are marshalled and stored. Without a store it degrades to plain
// forEachLab. Progress (and lab-cache counters) reflect only the rows
// actually computed — a fully cached experiment builds no labs at all.
func (r *Runner) forEachLabCached(ctx context.Context, exp string, extra []string,
	benches []*workload.Workload, slot func(i int) any,
	fn func(ctx context.Context, i int, l *Lab) error) error {
	if r.Artifacts == nil {
		return r.forEachLab(ctx, benches, fn)
	}
	var missing []int
	for i, w := range benches {
		if data, ok := r.Artifacts.Get(r.rowKey(exp, extra, w)); ok {
			if json.Unmarshal(data, slot(i)) == nil {
				continue
			}
		}
		missing = append(missing, i)
	}
	if len(missing) == 0 {
		return ctx.Err()
	}
	sub := make([]*workload.Workload, len(missing))
	for k, i := range missing {
		sub[k] = benches[i]
	}
	err := r.forEachLab(ctx, sub, func(ctx context.Context, k int, l *Lab) error {
		return fn(ctx, missing[k], l)
	})
	if err != nil {
		return err
	}
	for _, i := range missing {
		if data, err := json.Marshal(slot(i)); err == nil {
			r.Artifacts.Put(r.rowKey(exp, extra, benches[i]), data)
		}
	}
	return nil
}
