package harness

import (
	"context"
	"testing"

	"elag/internal/workload"
)

// TestMemoProbe is a diagnostic: per-workload memo hit statistics under the
// compiler-directed configuration, across both suites. Run with -v to see
// the table. The expected shape (and the reason the memoizer self-audits
// off on real workloads): striding load addresses keep exact block states
// from recurring, so SPEC coverage tops out well below break-even and the
// Media workloads show essentially zero recurrence.
func TestMemoProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	r := &Runner{Fuel: 2_000_000}
	for _, suite := range []workload.Suite{workload.SPEC, workload.Media} {
		for _, w := range workload.BySuite(suite) {
			l, err := r.Lab(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			m, err := l.Simulate(context.Background(), CompilerDual(), l.HeurFlavors)
			if err != nil {
				t.Fatal(err)
			}
			st := m.Memo
			t.Logf("%-14s insts=%-9d entries=%-7d hits=%-7d cover=%5.1f%% recs=%-6d evict=%-5d bytes=%d",
				w.Name, m.Insts, st.BlockEntries, st.Hits,
				100*float64(st.HitInsts)/float64(m.Insts), st.Recordings, st.Evictions, st.PeakBytes)
		}
	}
}
