package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export for downstream plotting of the reproduced tables and figures
// (elag-bench -csv).

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// WriteFigureCSV emits a figure as benchmark,series,speedup rows.
func WriteFigureCSV(w io.Writer, f *Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "series", "speedup"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, b := range f.Benchmarks {
			if err := cw.Write([]string{b, s.Label, f2(s.Speedups[b])}); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{"average", s.Label, f2(s.Average)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV emits Table 2 (or the Table 2 half of Table 4) rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "loads_k", "static_nt", "static_pd", "static_ec",
		"dyn_nt", "dyn_pd", "dyn_ec", "rate_nt", "rate_pd"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Name, f2(r.LoadsK), f2(r.StaticNT), f2(r.StaticPD),
			f2(r.StaticEC), f2(r.DynNT), f2(r.DynPD), f2(r.DynEC),
			f2(r.RateNT), f2(r.RatePD)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV emits Table 3 rows.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "speedup", "static_pd", "dyn_pd",
		"rate_nt", "rate_pd"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Name, f2(r.Speedup), f2(r.StaticPD),
			f2(r.DynPD), f2(r.RateNT), f2(r.RatePD)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV emits Table 4 rows (Table 2 columns plus speedup).
func WriteTable4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "loads_k", "static_nt", "static_pd", "static_ec",
		"dyn_nt", "dyn_pd", "dyn_ec", "rate_nt", "rate_pd", "speedup"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Name, f2(r.LoadsK), f2(r.StaticNT), f2(r.StaticPD),
			f2(r.StaticEC), f2(r.DynNT), f2(r.DynPD), f2(r.DynEC),
			f2(r.RateNT), f2(r.RatePD), f2(r.Speedup)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV runs every experiment and writes one CSV per artifact into dir
// via the provided create function (typically wrapping os.Create).
func (r *Runner) ExportCSV(ctx context.Context, create func(name string) (io.WriteCloser, error)) error {
	write := func(name string, fn func(io.Writer) error) error {
		f, err := create(name)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		return f.Close()
	}
	t2, err := r.Table2(ctx)
	if err != nil {
		return err
	}
	if err := write("table2.csv", func(w io.Writer) error { return WriteTable2CSV(w, t2) }); err != nil {
		return err
	}
	t3, err := r.Table3(ctx)
	if err != nil {
		return err
	}
	if err := write("table3.csv", func(w io.Writer) error { return WriteTable3CSV(w, t3) }); err != nil {
		return err
	}
	t4, err := r.Table4(ctx)
	if err != nil {
		return err
	}
	if err := write("table4.csv", func(w io.Writer) error { return WriteTable4CSV(w, t4) }); err != nil {
		return err
	}
	for name, fn := range map[string]func(context.Context) (*Figure, error){
		"fig5a.csv": r.Figure5a,
		"fig5b.csv": r.Figure5b,
		"fig5c.csv": r.Figure5c,
	} {
		fig, err := fn(ctx)
		if err != nil {
			return err
		}
		if err := write(name, func(w io.Writer) error { return WriteFigureCSV(w, fig) }); err != nil {
			return err
		}
	}
	return nil
}
