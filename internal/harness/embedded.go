package harness

import (
	"context"
	"fmt"
	"strings"

	"elag"
	"elag/internal/bpred"
	"elag/internal/cache"
	"elag/internal/pipeline"
	"elag/internal/workload"
)

// Section 5.4 of the paper argues compiler-directed early address
// generation suits embedded processors best: in-order cores, tight
// area/power budgets (so a 256-entry table + one register beats a
// 16-register multicast cache), and malleable instruction sets. The paper
// evaluates MediaBench on the same 6-wide core; this experiment goes one
// step further and re-runs the comparison on an embedded-class core —
// 2-wide, single memory port, 8K caches, a small 64-entry table — where
// the area argument has teeth.

// EmbeddedBase returns an embedded-class base core: 2-wide in-order, one
// memory port, 8K direct-mapped caches, a 256-entry BTB.
func EmbeddedBase() pipeline.Config {
	return pipeline.Config{
		FetchWidth:  2,
		IssueWidth:  2,
		IntALUs:     2,
		MemPorts:    1,
		FPALUs:      1,
		BranchUnits: 1,
		ICache:      cache.Config{SizeBytes: 8 << 10},
		DCache:      cache.Config{SizeBytes: 8 << 10},
		BTB:         bpred.Config{Entries: 256},
	}
}

// EmbeddedCompiler is the embedded core plus the compiler-directed
// hardware scaled to an embedded budget: a 64-entry table and one R_addr.
func EmbeddedCompiler() pipeline.Config {
	cfg := EmbeddedBase()
	cfg.Select = pipeline.SelCompiler
	cfg.Predictor = &elag.PredictorConfig{Entries: 64}
	cfg.RegCache = &elag.RegCacheConfig{Entries: 1}
	return cfg
}

// EmbeddedHWDual is the hardware-only dual-path alternative at the area
// budget the paper argues embedded designs cannot afford to exceed: the
// same 64-entry table but an 8-register multicast cache.
func EmbeddedHWDual() pipeline.Config {
	cfg := EmbeddedBase()
	cfg.Select = pipeline.SelHWDual
	cfg.Predictor = &elag.PredictorConfig{Entries: 64}
	cfg.RegCache = &elag.RegCacheConfig{Entries: 8}
	return cfg
}

// EmbeddedRow is one benchmark's result in the embedded experiment.
type EmbeddedRow struct {
	Name            string  `json:"name"`
	CompilerSpeedup float64 `json:"compiler_speedup"` // embedded compiler-directed vs embedded base
	HWDualSpeedup   float64 `json:"hw_dual_speedup"`  // embedded hardware-only dual vs embedded base
}

// Embedded runs the Section 5.4 experiment over the MediaBench suite.
func (r *Runner) Embedded(ctx context.Context) ([]EmbeddedRow, error) {
	media := workload.BySuite(workload.Media)
	rows := make([]EmbeddedRow, len(media))
	err := r.forEachLabCached(ctx, "embedded", nil, media,
		func(i int) any { return &rows[i] },
		func(ctx context.Context, i int, l *Lab) error {
			ms, err := l.SimulateBatch(ctx, []pipeline.BatchSpec{
				{Config: EmbeddedBase()},
				{Config: EmbeddedCompiler(), Flavors: l.HeurFlavors},
				{Config: EmbeddedHWDual()},
			})
			if err != nil {
				return err
			}
			base, cc, hw := ms[0], ms[1], ms[2]
			rows[i] = EmbeddedRow{
				Name:            l.W.Name,
				CompilerSpeedup: float64(base.Cycles) / float64(cc.Cycles),
				HWDualSpeedup:   float64(base.Cycles) / float64(hw.Cycles),
			}
			r.logf("%s done", l.W.Name)
			return nil
		})
	if err != nil {
		return nil, err
	}
	var avg EmbeddedRow
	for _, row := range rows {
		avg.CompilerSpeedup += row.CompilerSpeedup / float64(len(media))
		avg.HWDualSpeedup += row.HWDualSpeedup / float64(len(media))
	}
	avg.Name = "average"
	rows = append(rows, avg)
	return rows, nil
}

// FormatEmbedded renders the embedded experiment.
func FormatEmbedded(rows []EmbeddedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Embedded core (2-wide, 1 port, 8K caches) — Section 5.4 extension\n")
	fmt.Fprintf(&b, "%-14s %16s %16s\n", "Benchmark", "compiler (64+1)", "hw-dual (64+8)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %16.2f %16.2f\n", r.Name, r.CompilerSpeedup, r.HWDualSpeedup)
	}
	return b.String()
}
