// Package obs turns the pipeline's cycle-level event stream and metrics
// into artifacts other tools can consume: a Chrome trace_event JSON file
// (loadable in Perfetto or chrome://tracing), machine-readable JSON and
// CSV for the metrics and the per-PC load attribution table, and a text
// report of the worst-latency static loads.
package obs

import "elag/internal/pipeline"

// Recorder is an EventSink that retains a bounded window of the event
// stream. The zero value records everything; set FromCycle/ToCycle to keep
// only events inside a cycle window and Limit to cap the kept count.
type Recorder struct {
	// FromCycle and ToCycle bound the recorded window by the event's
	// primary cycle; ToCycle of 0 means unbounded above.
	FromCycle int64
	ToCycle   int64
	// Limit caps the number of kept events (0 = unlimited). Events past
	// the cap are counted in Dropped but not stored.
	Limit int

	// Events holds the recorded (copied) events in emission order.
	Events []pipeline.Event
	// Total counts all events offered, kept or not; Dropped counts those
	// lost to Limit (window-excluded events are not "dropped").
	Total   int64
	Dropped int64
}

var _ pipeline.EventSink = (*Recorder)(nil)

// Event implements pipeline.EventSink.
func (r *Recorder) Event(ev *pipeline.Event) {
	r.Total++
	if ev.Cycle < r.FromCycle || (r.ToCycle > 0 && ev.Cycle > r.ToCycle) {
		return
	}
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, *ev)
}
