package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"elag/internal/pipeline"
)

// MetricsSchema versions the metrics JSON document; bump on any
// field-shape change so downstream consumers can dispatch.
const MetricsSchema = "elag-metrics/v1"

// MetricsDoc is the machine-readable form of one simulation run: the raw
// Metrics (including, when attribution was enabled, the per-PC table) plus
// the derived headline rates, under a schema version tag.
type MetricsDoc struct {
	Schema  string `json:"schema"`
	Program string `json:"program,omitempty"`
	Config  string `json:"config,omitempty"`

	IPC            float64 `json:"ipc"`
	AvgLoadLatency float64 `json:"avg_load_latency"`
	PredictFwdRate float64 `json:"predict_forward_rate"`
	EarlyFwdRate   float64 `json:"early_forward_rate"`

	Metrics *pipeline.Metrics `json:"metrics"`
}

// NewMetricsDoc wraps m in a schema-versioned document; program and config
// label the run (either may be empty).
func NewMetricsDoc(program, config string, m *pipeline.Metrics) *MetricsDoc {
	return &MetricsDoc{
		Schema:         MetricsSchema,
		Program:        program,
		Config:         config,
		IPC:            m.IPC(),
		AvgLoadLatency: m.AvgLoadLatency(),
		PredictFwdRate: m.Predict.ForwardRate(),
		EarlyFwdRate:   m.Early.ForwardRate(),
		Metrics:        m,
	}
}

// WriteMetricsJSON writes doc as indented JSON. Output is byte-stable for
// a given document.
func WriteMetricsJSON(w io.Writer, doc *MetricsDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// pathCols flattens one PathStats into the CSV column order used by
// WritePerPCCSV (must match pathHeader).
func pathCols(p *pipeline.PathStats) []string {
	vals := []int64{p.Eligible, p.Speculated, p.Forwarded, p.NoPrediction,
		p.RegMiss, p.RegInterlock, p.MemInterlock, p.NoPort, p.CacheMiss,
		p.AddrMispredict}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = strconv.FormatInt(v, 10)
	}
	return out
}

func pathHeader(prefix string) []string {
	cols := []string{"eligible", "speculated", "forwarded", "no_prediction",
		"reg_miss", "reg_interlock", "mem_interlock", "no_port", "cache_miss",
		"addr_mispredict"}
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = prefix + c
	}
	return out
}

// WritePerPCCSV emits the per-PC load attribution table as CSV, one row
// per static load in PC order, with both paths' counters flattened and the
// effective-latency histogram in trailing lat0..latN columns.
func WritePerPCCSV(w io.Writer, rows []pipeline.LoadPCStats) error {
	cw := csv.NewWriter(w)
	header := []string{"pc", "instruction", "flavor", "count", "forwarded",
		"zero_cycle", "one_cycle", "avg_latency", "latency_sum"}
	header = append(header, pathHeader("predict_")...)
	header = append(header, pathHeader("early_")...)
	for i := 0; i < pipeline.LatencyBuckets; i++ {
		header = append(header, fmt.Sprintf("lat%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		rec := []string{
			strconv.Itoa(r.PC), r.Mnemonic, r.Flavor.String(),
			strconv.FormatInt(r.Count, 10),
			strconv.FormatInt(r.Forwarded(), 10),
			strconv.FormatInt(r.ZeroCycle, 10),
			strconv.FormatInt(r.OneCycle, 10),
			strconv.FormatFloat(r.AvgLatency(), 'f', 3, 64),
			strconv.FormatInt(r.LatencySum, 10),
		}
		rec = append(rec, pathCols(&r.Predict)...)
		rec = append(rec, pathCols(&r.Early)...)
		for _, h := range r.Hist {
			rec = append(rec, strconv.FormatInt(h, 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// failureSummary renders a row's dominant failure terms (both paths
// combined) as "term:count" pairs, largest first, capped at three.
func failureSummary(r *pipeline.LoadPCStats) string {
	terms := []struct {
		name string
		n    int64
	}{
		{"no-prediction", r.Predict.NoPrediction + r.Early.NoPrediction},
		{"reg-miss", r.Predict.RegMiss + r.Early.RegMiss},
		{"reg-interlock", r.Predict.RegInterlock + r.Early.RegInterlock},
		{"mem-interlock", r.Predict.MemInterlock + r.Early.MemInterlock},
		{"no-port", r.Predict.NoPort + r.Early.NoPort},
		{"cache-miss", r.Predict.CacheMiss + r.Early.CacheMiss},
		{"addr-mispredict", r.Predict.AddrMispredict + r.Early.AddrMispredict},
	}
	// Selection sort of the top three keeps this allocation-light and the
	// order stable (ties break toward the canonical term order above).
	var out string
	picked := 0
	for picked < 3 {
		best := -1
		for i, t := range terms {
			if t.n > 0 && (best < 0 || t.n > terms[best].n) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", terms[best].name, terms[best].n)
		terms[best].n = 0
		picked++
	}
	if out == "" {
		return "-"
	}
	return out
}

// WriteWorstLoads writes an aligned text report of the n static loads with
// the highest total effective latency: where the pipeline's load cycles
// actually go, with each load's forward rate and dominant failure terms.
func WriteWorstLoads(w io.Writer, m *pipeline.Metrics, n int) error {
	rows := m.WorstLoads(n)
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "no per-PC attribution recorded (enable attribution before the run)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %6s %-6s %10s %10s %8s %8s  %-24s %s\n",
		"rank", "pc", "flavor", "execs", "cycles", "avg", "fwd", "instruction",
		"dominant failures"); err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		fwd := "-"
		if r.Count > 0 {
			fwd = fmt.Sprintf("%.1f%%", 100*float64(r.Forwarded())/float64(r.Count))
		}
		if _, err := fmt.Fprintf(w, "%4d %6d %-6s %10d %10d %8.2f %8s  %-24s %s\n",
			i+1, r.PC, r.Flavor, r.Count, r.LatencySum, r.AvgLatency(), fwd,
			r.Mnemonic, failureSummary(r)); err != nil {
			return err
		}
	}
	return nil
}
