package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"elag/internal/isa"
	"elag/internal/pipeline"
)

// Chrome trace_event export. The output is the JSON-object form of the
// trace_event format ({"traceEvents": [...]}) understood by Perfetto and
// chrome://tracing. One simulated cycle maps to one microsecond of trace
// time, so Perfetto's time axis reads directly in cycles.
//
// Lane layout (process/thread ids):
//
//	pid 1 "pipeline"     tid 0..7 issue slots (instructions round-robin
//	                     by sequence number), tid 9 stall spans
//	pid 2 "speculation"  tid 1 prediction path, tid 2 early-calculation
//	pid 3 "memory"       tid 1 I-cache, tid 2 D-cache
//	pid 4 "predictor"    tid 1 stride table, tid 2 R_addr register cache
//	pid 5 "control"      tid 1 branch resolution
const (
	pidPipeline = 1
	pidSpec     = 2
	pidMemory   = 3
	pidPred     = 4
	pidControl  = 5

	retireLanes = 8
	tidStalls   = 9
)

// chromeEvent is one trace_event record. Field order (and json's sorted
// map keys for args) make the output byte-stable for a given event stream.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func meta(name string, pid, tid int, arg string) chromeEvent {
	ce := chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": arg}}
	return ce
}

func chromeMetadata() []chromeEvent {
	evs := []chromeEvent{
		meta("process_name", pidPipeline, 0, "pipeline"),
		meta("process_name", pidSpec, 0, "speculation"),
		meta("process_name", pidMemory, 0, "memory"),
		meta("process_name", pidPred, 0, "predictor"),
		meta("process_name", pidControl, 0, "control"),
	}
	for i := 0; i < retireLanes; i++ {
		evs = append(evs, meta("thread_name", pidPipeline, i, fmt.Sprintf("slot %d", i)))
	}
	evs = append(evs,
		meta("thread_name", pidPipeline, tidStalls, "stalls"),
		meta("thread_name", pidSpec, 1, "predict (ld_p)"),
		meta("thread_name", pidSpec, 2, "early calc (ld_e)"),
		meta("thread_name", pidMemory, 1, "I-cache"),
		meta("thread_name", pidMemory, 2, "D-cache"),
		meta("thread_name", pidPred, 1, "stride table"),
		meta("thread_name", pidPred, 2, "R_addr"),
		meta("thread_name", pidControl, 1, "branches"),
	)
	return evs
}

func specTid(path byte) int {
	if path == 'P' {
		return 1
	}
	return 2
}

func levelTid(level byte) int {
	if level == 'I' {
		return 1
	}
	return 2
}

// chromeFromEvent converts one pipeline event; ok=false drops it from the
// Chrome view (no pipeline event currently drops, but the mapping keeps
// the option).
func chromeFromEvent(prog *isa.Program, ev *pipeline.Event) (chromeEvent, bool) {
	name := func(pc int) string {
		if prog != nil && pc >= 0 && pc < len(prog.Insts) {
			return prog.Insts[pc].String()
		}
		return fmt.Sprintf("pc%d", pc)
	}
	switch ev.Kind {
	case pipeline.EvRetire:
		dur := ev.Done - ev.Fetch
		if dur < 1 {
			dur = 1
		}
		args := map[string]any{"seq": ev.Seq, "pc": ev.PC, "issue": ev.Issue,
			"done": ev.Done}
		if ev.Lat >= 0 {
			args["fwd_lat"] = ev.Lat
		}
		return chromeEvent{Name: name(ev.PC), Cat: "inst", Ph: "X",
			Ts: ev.Fetch, Dur: dur, Pid: pidPipeline,
			Tid: int(ev.Seq % retireLanes), Args: args}, true
	case pipeline.EvStall:
		dur := ev.Cycles
		if dur < 1 {
			dur = 1
		}
		return chromeEvent{Name: ev.Cause.String(), Cat: "stall", Ph: "X",
			Ts: ev.Cycle, Dur: dur, Pid: pidPipeline, Tid: tidStalls,
			Args: map[string]any{"seq": ev.Seq, "pc": ev.PC}}, true
	case pipeline.EvSpecLaunch:
		return chromeEvent{Name: "launch", Cat: "spec", Ph: "i", Ts: ev.Cycle,
			Pid: pidSpec, Tid: specTid(ev.Path), S: "t",
			Args: map[string]any{"addr": ev.Addr, "pc": ev.PC, "seq": ev.Seq}}, true
	case pipeline.EvSpecForward:
		return chromeEvent{Name: "forward", Cat: "spec", Ph: "i", Ts: ev.Cycle,
			Pid: pidSpec, Tid: specTid(ev.Path), S: "t",
			Args: map[string]any{"lat": ev.Lat, "pc": ev.PC, "seq": ev.Seq}}, true
	case pipeline.EvSpecFail:
		return chromeEvent{Name: "fail", Cat: "spec", Ph: "i", Ts: ev.Cycle,
			Pid: pidSpec, Tid: specTid(ev.Path), S: "t",
			Args: map[string]any{"pc": ev.PC, "seq": ev.Seq,
				"terms": ev.Fail.String()}}, true
	case pipeline.EvCacheAccess:
		n := "hit"
		if !ev.Hit {
			n = "miss"
		}
		return chromeEvent{Name: n, Cat: "access", Ph: "i", Ts: ev.Cycle,
			Pid: pidMemory, Tid: levelTid(ev.Level), S: "t",
			Args: map[string]any{"addr": ev.Addr, "spec": ev.Spec}}, true
	case pipeline.EvCacheMiss:
		dur := ev.FillDone - ev.Cycle
		if dur < 1 {
			dur = 1
		}
		return chromeEvent{Name: "miss fill", Cat: "miss", Ph: "X",
			Ts: ev.Cycle, Dur: dur, Pid: pidMemory, Tid: levelTid(ev.Level),
			Args: map[string]any{"addr": ev.Addr, "spec": ev.Spec}}, true
	case pipeline.EvTableTransition:
		n := fmt.Sprintf("%s->%s", ev.From, ev.To)
		if ev.Alloc {
			n = "alloc->" + ev.To.String()
		}
		return chromeEvent{Name: n, Cat: "table", Ph: "i", Ts: ev.Cycle,
			Pid: pidPred, Tid: 1, S: "t",
			Args: map[string]any{"correct": ev.Correct, "pc": ev.PC}}, true
	case pipeline.EvRegBind, pipeline.EvRegInvalidate, pipeline.EvRegBroadcast:
		n := map[pipeline.EventKind]string{
			pipeline.EvRegBind:       "bind",
			pipeline.EvRegInvalidate: "invalidate",
			pipeline.EvRegBroadcast:  "broadcast",
		}[ev.Kind]
		return chromeEvent{Name: n, Cat: "regcache", Ph: "i", Ts: ev.Cycle,
			Pid: pidPred, Tid: 2, S: "t",
			Args: map[string]any{"reg": fmt.Sprintf("r%d", ev.Reg), "value": ev.Value}}, true
	case pipeline.EvBranchResolve:
		n := "not-taken"
		if ev.Taken {
			n = "taken"
		}
		return chromeEvent{Name: n, Cat: "branch", Ph: "i", Ts: ev.Cycle,
			Pid: pidControl, Tid: 1, S: "t",
			Args: map[string]any{"mispredict": ev.Mispredict, "pc": ev.PC}}, true
	}
	return chromeEvent{}, false
}

// WriteChromeTrace writes events as a Chrome trace_event JSON object. prog
// (may be nil) supplies instruction mnemonics for the pipeline lanes. The
// output is deterministic for a given event stream: events appear in
// emission order after a fixed metadata preamble.
func WriteChromeTrace(w io.Writer, prog *isa.Program, events []pipeline.Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\": [\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		buf, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(buf)
		return err
	}
	for _, ce := range chromeMetadata() {
		if err := emit(ce); err != nil {
			return err
		}
	}
	for i := range events {
		ce, ok := chromeFromEvent(prog, &events[i])
		if !ok {
			continue
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n], \"displayTimeUnit\": \"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
