package obs

import (
	"encoding/json"
	"io"
)

// ServeStatsSchema versions the elag-serve service-counter document,
// flushed on graceful drain and served live at /v1/stats. v2 added
// uptime_seconds, jobs_in_flight, and the chaos-injection state; v3 adds
// the result-cache counters and artifact-store sizes.
const ServeStatsSchema = "elag-serve-stats/v3"

// ServeStatsDoc is the machine-readable lifetime summary of one elag-serve
// process: admission outcomes, job outcomes, and fault-isolation events.
// The jobs_* and rejected_* fields are monotonic counters; rates are the
// reader's job.
type ServeStatsDoc struct {
	Schema string `json:"schema"`

	// UptimeSeconds is how long the server has been up at snapshot time.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Admission.
	JobsAccepted      int64 `json:"jobs_accepted"`
	RejectedInvalid   int64 `json:"rejected_invalid"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`

	// Outcomes. JobsInFlight is the instantaneous count of accepted jobs
	// not yet terminal; the counter algebra jobs_accepted = jobs_done +
	// jobs_failed + jobs_canceled + jobs_in_flight holds at every
	// snapshot.
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	JobsInFlight int64 `json:"jobs_in_flight"`

	// Fault isolation: panics recovered from job execution, and workers
	// the pool replaced because of them. The two differ only if a panic
	// escapes outside a job run.
	PanicsRecovered int64 `json:"panics_recovered"`
	WorkersReplaced int64 `json:"workers_replaced"`

	// Result cache (zero with caching disabled). Every accepted job takes
	// exactly one admission path, so jobs_accepted = cache_hits +
	// cache_misses + cache_coalesced when the cache is on. Evictions and
	// corruption-evictions sum both store tiers; the byte gauges are
	// instantaneous resident sizes.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheCoalesced int64 `json:"cache_coalesced"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheCorrupt   int64 `json:"cache_corrupt"`
	CacheMemBytes  int64 `json:"cache_mem_bytes"`
	CacheDiskBytes int64 `json:"cache_disk_bytes"`

	// Chaos injection state: whether the fault layer is armed, and the
	// spec it was armed with ("" when disarmed). A drill's stats flush
	// is self-describing — nobody has to remember which faults ran.
	ChaosArmed bool   `json:"chaos_armed"`
	Chaos      string `json:"chaos,omitempty"`
}

// WriteServeStatsJSON writes doc as indented JSON, byte-stable for a given
// document.
func WriteServeStatsJSON(w io.Writer, doc *ServeStatsDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
