package obs

import (
	"encoding/json"
	"io"
)

// ServeStatsSchema versions the elag-serve service-counter document,
// flushed on graceful drain and served live at /v1/stats.
const ServeStatsSchema = "elag-serve-stats/v1"

// ServeStatsDoc is the machine-readable lifetime summary of one elag-serve
// process: admission outcomes, job outcomes, and fault-isolation events.
// Everything here is a monotonic counter; rates are the reader's job.
type ServeStatsDoc struct {
	Schema string `json:"schema"`

	// Admission.
	JobsAccepted      int64 `json:"jobs_accepted"`
	RejectedInvalid   int64 `json:"rejected_invalid"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`

	// Outcomes.
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`

	// Fault isolation: panics recovered from job execution, and workers
	// the pool replaced because of them. The two differ only if a panic
	// escapes outside a job run.
	PanicsRecovered int64 `json:"panics_recovered"`
	WorkersReplaced int64 `json:"workers_replaced"`
}

// WriteServeStatsJSON writes doc as indented JSON, byte-stable for a given
// document.
func WriteServeStatsJSON(w io.Writer, doc *ServeStatsDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
