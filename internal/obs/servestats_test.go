package obs

import (
	"strings"
	"testing"
)

// The stats document is consumed by shell pipelines (CI greps it, the
// SIGTERM smoke test diffs it), so its rendering is part of the contract:
// field order, indentation, and the schema string are all load-bearing.
func TestServeStatsGolden(t *testing.T) {
	doc := &ServeStatsDoc{
		Schema:            ServeStatsSchema,
		UptimeSeconds:     12.5,
		JobsAccepted:      9,
		RejectedInvalid:   1,
		RejectedQueueFull: 2,
		RejectedDraining:  3,
		JobsDone:          5,
		JobsFailed:        2,
		JobsCanceled:      1,
		JobsInFlight:      1,
		PanicsRecovered:   2,
		WorkersReplaced:   2,
		CacheHits:         3,
		CacheMisses:       5,
		CacheCoalesced:    1,
		CacheEvictions:    4,
		CacheCorrupt:      1,
		CacheMemBytes:     2048,
		CacheDiskBytes:    4096,
		ChaosArmed:        true,
		Chaos:             "panic-every=3",
	}
	var sb strings.Builder
	if err := WriteServeStatsJSON(&sb, doc); err != nil {
		t.Fatal(err)
	}
	want := `{
  "schema": "elag-serve-stats/v3",
  "uptime_seconds": 12.5,
  "jobs_accepted": 9,
  "rejected_invalid": 1,
  "rejected_queue_full": 2,
  "rejected_draining": 3,
  "jobs_done": 5,
  "jobs_failed": 2,
  "jobs_canceled": 1,
  "jobs_in_flight": 1,
  "panics_recovered": 2,
  "workers_replaced": 2,
  "cache_hits": 3,
  "cache_misses": 5,
  "cache_coalesced": 1,
  "cache_evictions": 4,
  "cache_corrupt": 1,
  "cache_mem_bytes": 2048,
  "cache_disk_bytes": 4096,
  "chaos_armed": true,
  "chaos": "panic-every=3"
}
`
	if sb.String() != want {
		t.Errorf("stats rendering drifted:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// With chaos disarmed the spec field disappears entirely (omitempty), and
// the counter algebra of the example holds: accepted = done + failed +
// canceled + in-flight.
func TestServeStatsDisarmedOmitsChaosSpec(t *testing.T) {
	doc := &ServeStatsDoc{Schema: ServeStatsSchema, JobsAccepted: 4, JobsDone: 4}
	var sb strings.Builder
	if err := WriteServeStatsJSON(&sb, doc); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"chaos"`) && !strings.Contains(sb.String(), `"chaos_armed"`) {
		t.Errorf("chaos spec leaked while disarmed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `"chaos_armed": false`) {
		t.Errorf("chaos_armed must always render (false included):\n%s", sb.String())
	}
	if strings.Contains(sb.String(), `"chaos":`) {
		t.Errorf("empty chaos spec must be omitted:\n%s", sb.String())
	}
}
