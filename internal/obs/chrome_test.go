package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"elag"
	"elag/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenProg is a small fixed program exercising both speculation paths, a
// store and a loop branch. Flavours are hand-written (classification off)
// so the trace is pinned to the source, not the heuristics.
const goldenProg = `
	main:	li r9, 0
		li r20, 65536
		li r21, 139264
	loop:	ld8_p r1, r20(0)
		add r20, r20, 8
		ld8_e r2, r21(0)
		st8 r2, r21(8)
		add r9, r9, 1
		blt r9, 8, loop
		halt r0
`

// TestChromeTraceGolden pins the Chrome trace exporter's output byte for
// byte: event ordering, lane assignment and field encoding are part of the
// format contract (downstream Perfetto configs key on them). Regenerate
// with: go test ./internal/obs/ -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	p, err := elag.BuildAsm(goldenProg, false, elag.ClassifyOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rec := &elag.TraceRecorder{}
	if _, _, err := p.SimulateObserved(elag.CompilerDirectedConfig(), 0,
		elag.ObserveOptions{Sink: rec}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if len(rec.Events) == 0 {
		t.Fatal("no events recorded")
	}
	var got bytes.Buffer
	if err := p.WriteChromeTrace(&got, rec.Events); err != nil {
		t.Fatalf("write trace: %v", err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("trace differs from golden %s (regenerate with -update if the change is intended)\ngot %d bytes, want %d",
			golden, got.Len(), len(want))
	}
}

// TestRecorderWindow checks the cycle-window and limit semantics of the
// recorder.
func TestRecorderWindow(t *testing.T) {
	p, err := elag.BuildAsm(goldenProg, false, elag.ClassifyOptions{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	all := &elag.TraceRecorder{}
	if _, _, err := p.SimulateObserved(elag.CompilerDirectedConfig(), 0,
		elag.ObserveOptions{Sink: all}); err != nil {
		t.Fatal(err)
	}
	last := all.Events[len(all.Events)-1].Cycle

	windowed := &elag.TraceRecorder{FromCycle: 10, ToCycle: last - 5}
	if _, _, err := p.SimulateObserved(elag.CompilerDirectedConfig(), 0,
		elag.ObserveOptions{Sink: windowed}); err != nil {
		t.Fatal(err)
	}
	if windowed.Total != all.Total {
		t.Errorf("window changed Total: %d != %d", windowed.Total, all.Total)
	}
	if len(windowed.Events) >= len(all.Events) || len(windowed.Events) == 0 {
		t.Errorf("window kept %d of %d events", len(windowed.Events), len(all.Events))
	}
	for _, ev := range windowed.Events {
		if ev.Cycle < 10 || ev.Cycle > last-5 {
			t.Fatalf("event cycle %d outside window [10, %d]", ev.Cycle, last-5)
		}
	}

	capped := &elag.TraceRecorder{Limit: 5}
	if _, _, err := p.SimulateObserved(elag.CompilerDirectedConfig(), 0,
		elag.ObserveOptions{Sink: capped}); err != nil {
		t.Fatal(err)
	}
	if len(capped.Events) != 5 {
		t.Errorf("limit kept %d events, want 5", len(capped.Events))
	}
	if capped.Dropped != all.Total-5 {
		t.Errorf("dropped %d, want %d", capped.Dropped, all.Total-5)
	}
}

// TestBenchSchemaTag pins the bench document schema version string; bump
// deliberately when the shape changes.
func TestBenchSchemaTag(t *testing.T) {
	if obs.MetricsSchema != "elag-metrics/v1" {
		t.Errorf("metrics schema = %q", obs.MetricsSchema)
	}
}
