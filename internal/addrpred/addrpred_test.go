package addrpred

import (
	"testing"
	"testing/quick"
)

func mustNewTable(tb testing.TB, cfg Config) *Table {
	tb.Helper()
	t, err := NewTable(cfg)
	if err != nil {
		tb.Fatalf("NewTable(%+v): %v", cfg, err)
	}
	return t
}

func TestBadGeometryErrors(t *testing.T) {
	bad := []Config{{Entries: 3}, {Entries: -16}, {Entries: 16, Assoc: 3}, {Entries: 16, Assoc: -1}}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if tb, err := NewTable(cfg); err == nil || tb != nil {
			t.Errorf("NewTable(%+v) = %v, %v; want nil, error", cfg, tb, err)
		}
	}
}

// TestEntryLearnsStride walks the Figure 3 state machine through the
// paper's canonical sequence: allocate at A, observe A+8, verify at A+16,
// then predict correctly from A+24 on.
func TestEntryLearnsStride(t *testing.T) {
	var e Entry
	e.Update(1000) // Replace: PA=1000, ST=0, STC=1, functioning
	if e.State != Functioning || !e.STC || e.PA != 1000 || e.ST != 0 {
		t.Fatalf("after allocate: %+v", e)
	}
	// Constant-address prediction would now be 1000.
	if p, ok := e.Predict(); !ok || p != 1000 {
		t.Fatalf("constant prediction = %d,%v", p, ok)
	}
	// New_Stride: 1008 != 1000.
	if e.Update(1008) {
		t.Errorf("mispredicted update reported correct")
	}
	if e.State != Learning || e.STC || e.ST != 8 {
		t.Fatalf("after stride change: %+v", e)
	}
	if _, ok := e.Predict(); ok {
		t.Errorf("learning entry made a prediction")
	}
	// Verified_Stride: 1016-1008 == 8.
	e.Update(1016)
	if e.State != Functioning || !e.STC || e.PA != 1024 {
		t.Fatalf("after verification: %+v", e)
	}
	// Correct predictions from here on.
	for i, ca := range []int64{1024, 1032, 1040} {
		if !e.Update(ca) {
			t.Errorf("step %d: steady stride not predicted", i)
		}
	}
}

func TestEntryConstantAddress(t *testing.T) {
	var e Entry
	e.Update(500)
	for i := 0; i < 5; i++ {
		if !e.Update(500) {
			t.Errorf("constant address not predicted at step %d", i)
		}
	}
}

func TestEntryStrideRelearn(t *testing.T) {
	var e Entry
	for _, ca := range []int64{0, 8, 16, 24} {
		e.Update(ca)
	}
	// Stride changes from 8 to 32. The first mismatching update derives
	// ST = CA - PA from the *failed prediction* (56 - 32 = 24), so a
	// break out of the functioning state needs one extra observation
	// before the true stride verifies — exactly the Figure 3b table.
	if e.Update(56) {
		t.Errorf("stride break predicted")
	}
	if e.State != Learning || e.ST != 24 {
		t.Fatalf("after break: %+v", e)
	}
	e.Update(88) // observes stride 32, still learning
	if e.State != Learning || e.ST != 32 {
		t.Fatalf("after first true stride: %+v", e)
	}
	e.Update(120) // verifies stride 32
	if e.State != Functioning || e.ST != 32 {
		t.Fatalf("did not relearn stride 32: %+v", e)
	}
	if !e.Update(152) {
		t.Errorf("relearned stride not predicting")
	}
}

// Property: after any warm-up address sequence, two consecutive
// same-stride observations make the entry predict the third correctly —
// the paper's "stride confidence will not be built until the same stride
// is seen in two consecutive instances".
func TestEntryConvergesAfterTwoStrides(t *testing.T) {
	f := func(warmup []int64, base, stride int64) bool {
		stride %= 1 << 20
		if stride == 0 {
			stride = 8
		}
		var e Entry
		for _, a := range warmup {
			e.Update(a)
		}
		a := base
		e.Update(a)            // possibly a stride break
		e.Update(a + stride)   // learn stride
		e.Update(a + 2*stride) // verify stride
		// Now it must predict a+3*stride.
		p, ok := e.Predict()
		return ok && p == a+3*stride
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableProbeUpdateAllocate(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 16})
	if _, ok := tb.Probe(5); ok {
		t.Errorf("cold probe predicted")
	}
	tb.Update(5, 100) // allocate
	if addr, ok := tb.Probe(5); !ok || addr != 100 {
		t.Errorf("probe after allocate = %d,%v", addr, ok)
	}
	st := tb.Stats()
	if st.Allocations != 1 || st.Probes != 2 || st.ProbeHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestTableConflictEviction(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 16})
	tb.Update(3, 100)
	tb.Update(3+16, 200) // same direct-mapped set
	if _, ok := tb.Probe(3); ok {
		t.Errorf("evicted entry still predicting")
	}
	if addr, ok := tb.Probe(3 + 16); !ok || addr != 200 {
		t.Errorf("new entry wrong: %d %v", addr, ok)
	}
}

func TestTableAssociativityKeepsBoth(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 32, Assoc: 2})
	tb.Update(3, 100)
	tb.Update(3+16, 200)
	if _, ok := tb.Probe(3); !ok {
		t.Errorf("2-way table lost the first entry")
	}
	if _, ok := tb.Probe(3 + 16); !ok {
		t.Errorf("2-way table lost the second entry")
	}
}

func TestTableAccuracyStats(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 16})
	for i, ca := range []int64{0, 8, 16, 24, 32} {
		if _, ok := tb.Probe(7); ok {
			tb.Update(7, ca)
			continue
		}
		_ = i
		tb.Update(7, ca)
	}
	st := tb.Stats()
	if st.Predictions == 0 || st.Correct == 0 {
		t.Errorf("no predictions recorded: %+v", st)
	}
	if st.Accuracy() <= 0 || st.Accuracy() > 1 {
		t.Errorf("accuracy out of range: %v", st.Accuracy())
	}
}

func TestUpdateIfPresent(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 16})
	tb.UpdateIfPresent(9, 100)
	if _, ok := tb.Probe(9); ok {
		t.Errorf("UpdateIfPresent allocated an entry")
	}
	tb.Update(9, 100)
	tb.UpdateIfPresent(9, 108)
	tb.UpdateIfPresent(9, 116) // verifies stride 8
	if addr, ok := tb.Probe(9); !ok || addr != 124 {
		t.Errorf("entry not trained through UpdateIfPresent: %d,%v", addr, ok)
	}
}

// Property: the table never reports a correct prediction that Predict
// would not have made (wasCorrect implies the pre-update Predict matched).
func TestTableCorrectnessConsistency(t *testing.T) {
	f := func(pcs []uint8, addrs []int64) bool {
		tb := mustNewTable(t, Config{Entries: 8})
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		for i := 0; i < n; i++ {
			pc := int(pcs[i] % 32)
			pred, ok := tb.Probe(pc)
			correct := tb.Update(pc, addrs[i])
			if correct && (!ok || pred != addrs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
