package addrpred

// Alternative prediction policies for the table, implementing the related
// work the paper positions itself against (Section 2.2):
//
//   - PolicyStride: the paper's Figure 3 machine (the default).
//   - PolicyLastAddress: Golden & Mudge — predict the most recently used
//     address for the load (equivalently a stride machine with the stride
//     pinned to zero). Catches constant-address loads only.
//   - PolicyStrideCounter: Gonzalez & Gonzalez — stride prediction guarded
//     by a 2-bit saturating confidence counter instead of the
//     functioning/learning state machine; repeated mispredictions disable
//     prediction until confidence is rebuilt.
//
// All three share the Table container so the pipeline can swap them via
// Config.Policy, and BenchmarkAblationPredictorPolicy compares them.

// Policy selects the per-entry prediction algorithm.
type Policy uint8

// Policies.
const (
	// PolicyStride is the paper's functioning/learning stride machine.
	PolicyStride Policy = iota
	// PolicyLastAddress predicts the last address seen (Golden & Mudge).
	PolicyLastAddress
	// PolicyStrideCounter is stride prediction with a 2-bit saturating
	// confidence counter (Gonzalez & Gonzalez).
	PolicyStrideCounter
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStride:
		return "stride"
	case PolicyLastAddress:
		return "last-address"
	case PolicyStrideCounter:
		return "stride-counter"
	}
	return "?"
}

// predict evaluates the entry under the policy.
func (p Policy) predict(e *Entry) (int64, bool) {
	switch p {
	case PolicyLastAddress:
		if !e.seen {
			return 0, false
		}
		return e.PA, true
	case PolicyStrideCounter:
		if !e.seen || e.counter < 2 {
			return 0, false
		}
		return e.PA + e.ST, true
	default:
		return e.Predict()
	}
}

// update trains the entry under the policy and reports whether the
// prediction it would have made for this execution was correct.
func (p Policy) update(e *Entry, ca int64) bool {
	switch p {
	case PolicyLastAddress:
		correct := e.seen && e.PA == ca
		e.PA = ca
		e.seen = true
		return correct
	case PolicyStrideCounter:
		if !e.seen {
			e.PA, e.ST, e.counter, e.seen = ca, 0, 1, true
			return false
		}
		pred := e.PA + e.ST
		correct := e.counter >= 2 && pred == ca
		if pred == ca {
			if e.counter < 3 {
				e.counter++
			}
		} else {
			if e.counter > 0 {
				e.counter--
			}
			e.ST = ca - e.PA
		}
		e.PA = ca
		return correct
	default:
		return e.Update(ca)
	}
}
