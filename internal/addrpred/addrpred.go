// Package addrpred implements the paper's table-based load-address
// predictor: a PC-indexed table whose entries hold {tag, predicted address
// (PA), stride (ST), stride confidence (STC)} and follow the
// functioning/learning state machine of Figure 3.
//
// The same state machine is exported as Entry so that the address profiler
// (package profile) and the per-load "unlimited table" prediction-rate
// methodology of Table 2 can reuse it without a tag store.
package addrpred

import "fmt"

// State is the entry state of Figure 3a.
type State uint8

// Entry states.
const (
	// Functioning: PA holds the predicted next address; predictions are
	// made with confidence (STC=1 except immediately after a mismatch).
	Functioning State = iota
	// Learning: a stride mismatch was seen; the entry is re-deriving the
	// stride and PA holds the last observed address.
	Learning
)

func (s State) String() string {
	if s == Functioning {
		return "functioning"
	}
	return "learning"
}

// Entry is one address-table entry (without the tag), i.e. the Figure 3
// state machine. The zero value is an empty entry awaiting Reset.
type Entry struct {
	PA    int64 // predicted address (functioning) / last address (learning)
	ST    int64 // stride
	STC   bool  // stride confidence
	State State
	seen  bool
	// counter is used by PolicyStrideCounter instead of State/STC.
	counter uint8
}

// Reset re-initializes the entry for a newly allocated load, performing the
// Replace arc: PA=CA, ST=0, STC=1, state=functioning.
func (e *Entry) Reset(ca int64) {
	*e = Entry{PA: ca, ST: 0, STC: true, State: Functioning, seen: true}
}

// Valid reports whether the entry has observed at least one address.
func (e *Entry) Valid() bool { return e.seen }

// Predict returns the address the entry would speculate with and whether a
// confident prediction is available. Predictions are made only in the
// functioning state with the stride confidence bit set; a learning entry
// holds the last address, not a prediction, and speculating with it would
// waste a cache port (this is what the STC bit is for).
func (e *Entry) Predict() (addr int64, ok bool) {
	if !e.seen || e.State != Functioning || !e.STC {
		return 0, false
	}
	return e.PA, true
}

// Update advances the state machine with the computed address ca of the
// load's current execution (performed in the MEM stage). It returns whether
// the entry's prediction for this execution — had one been made — was
// correct, i.e. whether Predict would have returned (ca, true) beforehand.
func (e *Entry) Update(ca int64) (wasCorrect bool) {
	if !e.seen {
		e.Reset(ca)
		return false
	}
	if p, ok := e.Predict(); ok && p == ca {
		wasCorrect = true
	}
	switch e.State {
	case Functioning:
		if e.PA == ca {
			// Correct: PA <- CA + ST.
			e.PA = ca + e.ST
		} else {
			// New_Stride: derive a candidate stride and start
			// learning. PA tracks the last observed address so the
			// next update can verify the stride.
			e.ST = ca - e.PA
			e.STC = false
			e.PA = ca
			e.State = Learning
		}
	case Learning:
		if ca-e.PA == e.ST {
			// Verified_Stride: back to functioning.
			e.PA = ca + e.ST
			e.STC = true
			e.State = Functioning
		} else {
			e.ST = ca - e.PA
			e.PA = ca
		}
	}
	return wasCorrect
}

// Config describes the finite PC-indexed prediction table.
type Config struct {
	// Entries is the number of table entries; must be a power of two.
	// Default 256 (the paper's compiler-directed configuration).
	Entries int
	// Assoc is the set associativity. Default 1 (direct-mapped, as in
	// the paper).
	Assoc int
	// Policy selects the prediction algorithm; the zero value is the
	// paper's stride machine. The alternatives implement the cited
	// related work (see Policy).
	Policy Policy
}

// Stats accumulates table behaviour.
type Stats struct {
	Probes      int64 // decode-stage probes
	ProbeHits   int64 // probes that found a matching tag
	Predictions int64 // confident predictions issued
	Correct     int64 // predictions whose PA matched CA
	Allocations int64 // entries (re)allocated, i.e. Replace arcs
}

// HitRate returns ProbeHits/Probes.
func (s Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.ProbeHits) / float64(s.Probes)
}

// Accuracy returns Correct/Predictions.
func (s Stats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predictions)
}

type taggedEntry struct {
	tag int64
	lru int64
	e   Entry
}

// TableEvent describes one training step of a table entry, for observers:
// the state-machine transition performed by an Update, whether the entry
// was freshly allocated (the Replace arc), and whether the prediction the
// entry would have made for this execution was correct.
type TableEvent struct {
	PC       int
	From, To State
	Correct  bool
	Alloc    bool
}

// Table is the finite PC-indexed address prediction table.
type Table struct {
	sets   [][]taggedEntry
	mask   int64
	stamp  int64
	stats  Stats
	policy Policy

	// Observer, when non-nil, receives a TableEvent for every Update and
	// UpdateIfPresent training step. Nil (the default) costs one branch.
	Observer func(TableEvent)
}

// Validate reports whether the configuration (with zero fields defaulted)
// describes a realizable table: a positive power-of-two entry count
// divisible into power-of-two sets by the associativity.
func (c Config) Validate() error {
	n := c.Entries
	if n == 0 {
		n = 256
	}
	assoc := c.Assoc
	if assoc == 0 {
		assoc = 1
	}
	if n <= 0 || assoc <= 0 {
		return fmt.Errorf("addrpred: non-positive geometry %+v", c)
	}
	if n&(n-1) != 0 || n%assoc != 0 {
		return fmt.Errorf("addrpred: entries (%d) must be a power of two and divisible by assoc (%d)", n, assoc)
	}
	if nSets := n / assoc; nSets&(nSets-1) != 0 {
		return fmt.Errorf("addrpred: sets (%d) must be a power of two", n/assoc)
	}
	return nil
}

// NewTable builds a prediction table. Zero config fields take defaults; a
// geometry that fails Validate is returned as an error.
func NewTable(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Entries
	if n == 0 {
		n = 256
	}
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = 1
	}
	nSets := n / assoc
	t := &Table{sets: make([][]taggedEntry, nSets), mask: int64(nSets - 1), policy: cfg.Policy}
	// One backing array for all sets: two allocations per table instead of
	// one per set.
	entries := make([]taggedEntry, nSets*assoc)
	for i := range t.sets {
		t.sets[i] = entries[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return t, nil
}

// Stats returns accumulated statistics.
func (t *Table) Stats() Stats { return t.stats }

func (t *Table) find(pc int) *taggedEntry {
	set := t.sets[int64(pc)&t.mask]
	for i := range set {
		if te := &set[i]; te.e.Valid() && te.tag == int64(pc) {
			return te
		}
	}
	return nil
}

// Probe looks the load at pc up in the table (ID1 stage). On a tag hit with
// a confident stride it returns the predicted address. It never modifies
// entry state, only statistics.
func (t *Table) Probe(pc int) (addr int64, ok bool) {
	t.stats.Probes++
	te := t.find(pc)
	if te == nil {
		return 0, false
	}
	t.stats.ProbeHits++
	addr, ok = t.policy.predict(&te.e)
	if ok {
		t.stats.Predictions++
	}
	return addr, ok
}

// UpdateIfPresent trains the entry for pc only if one already exists (no
// allocation on miss). The hardware-only dual-path policy gates entry
// allocation on register interlocks but keeps training whatever entries
// exist, so their strides stay current.
func (t *Table) UpdateIfPresent(pc int, ca int64) (wasCorrect bool) {
	if te := t.find(pc); te != nil {
		t.stamp++
		te.lru = t.stamp
		from := te.e.State
		wasCorrect = t.policy.update(&te.e, ca)
		if wasCorrect {
			t.stats.Correct++
		}
		if t.Observer != nil {
			t.Observer(TableEvent{PC: pc, From: from, To: te.e.State, Correct: wasCorrect})
		}
		return wasCorrect
	}
	return false
}

// ---- replay fast-path hooks -------------------------------------------

// EntrySnap is the exported view of one table way, for the block-timing
// memoizer in package pipeline: the tag, raw LRU stamp, and the complete
// Figure-3 entry state. E is copied whole (a plain value struct), so
// snapshot equality covers the unexported seen/counter fields too.
type EntrySnap struct {
	Tag int64
	LRU int64
	E   Entry
}

// Pack encodes the complete entry state — including the unexported
// seen/counter fields — into the mechanism-neutral four-word snapshot value
// used by package mech. Unpack inverts it exactly.
func (e Entry) Pack() [4]int64 {
	var stc, seen int64
	if e.STC {
		stc = 1
	}
	if e.seen {
		seen = 1
	}
	return [4]int64{e.PA, e.ST, int64(e.State)<<1 | stc, int64(e.counter)<<1 | seen}
}

// UnpackEntry rebuilds an Entry from its Pack encoding.
func UnpackEntry(v [4]int64) Entry {
	return Entry{
		PA:      v[0],
		ST:      v[1],
		STC:     v[2]&1 != 0,
		State:   State(v[2] >> 1),
		seen:    v[3]&1 != 0,
		counter: uint8(v[3] >> 1),
	}
}

// SetIndexOf returns the set index pc maps to.
func (t *Table) SetIndexOf(pc int) int64 { return int64(pc) & t.mask }

// Assoc returns the table's associativity (ways per set).
func (t *Table) Assoc() int {
	if len(t.sets) == 0 {
		return 0
	}
	return len(t.sets[0])
}

// Stamp returns the current LRU use stamp.
func (t *Table) Stamp() int64 { return t.stamp }

// AddStamp advances the LRU use stamp by d, replaying the stamp increments
// of a memoized block without re-running its updates.
func (t *Table) AddStamp(d int64) { t.stamp += d }

// AddStats adds a delta onto the accumulated statistics.
func (t *Table) AddStats(d Stats) {
	t.stats.Probes += d.Probes
	t.stats.ProbeHits += d.ProbeHits
	t.stats.Predictions += d.Predictions
	t.stats.Correct += d.Correct
	t.stats.Allocations += d.Allocations
}

// SnapSet appends the ways of one set to dst and returns it.
func (t *Table) SnapSet(set int64, dst []EntrySnap) []EntrySnap {
	for _, te := range t.sets[set] {
		dst = append(dst, EntrySnap{Tag: te.tag, LRU: te.lru, E: te.e})
	}
	return dst
}

// PutEntry overwrites one way of one set with the given snapshot.
func (t *Table) PutEntry(set int64, wy int, s EntrySnap) {
	t.sets[set][wy] = taggedEntry{tag: s.Tag, lru: s.LRU, e: s.E}
}

// Update trains the table with the computed address ca of the load at pc
// (MEM stage), allocating an entry on a tag miss. It reports whether a
// confident prediction made for this execution was correct, for statistics.
func (t *Table) Update(pc int, ca int64) (wasCorrect bool) {
	t.stamp++
	set := t.sets[int64(pc)&t.mask]
	if te := t.find(pc); te != nil {
		te.lru = t.stamp
		from := te.e.State
		wasCorrect = t.policy.update(&te.e, ca)
		if wasCorrect {
			t.stats.Correct++
		}
		if t.Observer != nil {
			t.Observer(TableEvent{PC: pc, From: from, To: te.e.State, Correct: wasCorrect})
		}
		return wasCorrect
	}
	// Replace: allocate, evicting the LRU way; the first update of a
	// fresh entry is the policy's allocation arc (the paper's Replace).
	victim := &set[0]
	for i := range set {
		te := &set[i]
		if !te.e.Valid() {
			victim = te
			break
		}
		if te.lru < victim.lru {
			victim = te
		}
	}
	victim.tag = int64(pc)
	victim.lru = t.stamp
	victim.e = Entry{}
	t.policy.update(&victim.e, ca)
	t.stats.Allocations++
	if t.Observer != nil {
		t.Observer(TableEvent{PC: pc, To: victim.e.State, Alloc: true})
	}
	return false
}
