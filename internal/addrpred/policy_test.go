package addrpred

import "testing"

func feed(t *Table, pc int, addrs []int64) (correct int) {
	for _, ca := range addrs {
		if t.Update(pc, ca) {
			correct++
		}
	}
	return correct
}

func TestLastAddressPolicy(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 16, Policy: PolicyLastAddress})
	// Constant addresses: everything after the first predicts.
	if got := feed(tb, 1, []int64{100, 100, 100, 100}); got != 3 {
		t.Errorf("constant-address correct = %d, want 3", got)
	}
	// Strided addresses: never predicted by last-address.
	if got := feed(tb, 2, []int64{0, 8, 16, 24, 32}); got != 0 {
		t.Errorf("strided correct = %d under last-address, want 0", got)
	}
	if addr, ok := tb.Probe(1); !ok || addr != 100 {
		t.Errorf("probe = %d,%v", addr, ok)
	}
}

func TestStrideCounterPolicy(t *testing.T) {
	tb := mustNewTable(t, Config{Entries: 16, Policy: PolicyStrideCounter})
	// Warm up: allocation (counter=1), first stride sample brings the
	// counter to 0 or keeps climbing depending on match; feed a clean
	// stride and expect predictions once confidence >= 2.
	addrs := []int64{0, 8, 16, 24, 32, 40, 48}
	got := feed(tb, 3, addrs)
	if got < 3 {
		t.Errorf("steady stride correct = %d, want >= 3", got)
	}
	// After repeated mispredictions the counter saturates low and the
	// policy stops predicting (the Gonzalez motivation).
	chaos := []int64{1000, 3, 77777, 12, 999, 5}
	tb2 := mustNewTable(t, Config{Entries: 16, Policy: PolicyStrideCounter})
	feed(tb2, 4, chaos)
	if _, ok := tb2.Probe(4); ok {
		t.Errorf("low-confidence entry still predicting")
	}
}

func TestPolicyStringAndDefault(t *testing.T) {
	if PolicyStride.String() != "stride" ||
		PolicyLastAddress.String() != "last-address" ||
		PolicyStrideCounter.String() != "stride-counter" {
		t.Errorf("policy names wrong")
	}
	// The default policy is the paper's machine: strided loads predict
	// after two confirmations.
	tb := mustNewTable(t, Config{Entries: 16})
	if got := feed(tb, 5, []int64{0, 8, 16, 24, 32}); got != 2 {
		t.Errorf("default policy correct = %d, want 2 (24 and 32)", got)
	}
}

// TestPoliciesDisagreeWhereExpected: last-address beats stride on
// alternating constant addresses? No — on a constant stream all agree; on
// a strided stream only the stride machines predict; this pins the
// separation the ablation bench measures.
func TestPoliciesDisagreeWhereExpected(t *testing.T) {
	stride := []int64{0, 8, 16, 24, 32, 40}
	for _, tc := range []struct {
		policy Policy
		min    int
		max    int
	}{
		{PolicyStride, 2, 3},
		{PolicyStrideCounter, 2, 4},
		{PolicyLastAddress, 0, 0},
	} {
		tb := mustNewTable(t, Config{Entries: 16, Policy: tc.policy})
		got := feed(tb, 7, stride)
		if got < tc.min || got > tc.max {
			t.Errorf("%v on stride: correct = %d, want [%d,%d]",
				tc.policy, got, tc.min, tc.max)
		}
	}
}
