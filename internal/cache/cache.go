// Package cache models the paper's memory system: direct-mapped (optionally
// set-associative) instruction and data caches with 64-byte blocks. The data
// cache is write-through with no write allocate and non-blocking, with a
// 12-cycle miss penalty; these are the parameters of Section 5.1.
//
// The model is a tag store only — data contents live in the functional
// emulator — which is exactly what a timing simulator needs.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity. Default 64 KiB.
	SizeBytes int
	// BlockBytes is the line size. Default 64.
	BlockBytes int
	// Assoc is the set associativity. Default 1 (direct-mapped).
	Assoc int
	// MissPenalty is the extra cycles added on a miss. Default 12.
	MissPenalty int
}

// DefaultConfig returns the paper's 64K direct-mapped, 64-byte-block,
// 12-cycle-miss configuration.
func DefaultConfig() Config {
	return Config{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 1, MissPenalty: 12}
}

func (c *Config) fill() {
	if c.SizeBytes == 0 {
		c.SizeBytes = 64 << 10
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	if c.Assoc == 0 {
		c.Assoc = 1
	}
	if c.MissPenalty == 0 {
		c.MissPenalty = 12
	}
}

// Validate reports whether the configuration (with zero fields defaulted)
// describes a realizable cache: positive sizes, power-of-two block size and
// set count, and associativity dividing the block count.
func (c Config) Validate() error {
	c.fill()
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("cache: negative miss penalty %d", c.MissPenalty)
	}
	nBlocks := c.SizeBytes / c.BlockBytes
	if nBlocks <= 0 || c.SizeBytes%c.BlockBytes != 0 {
		return fmt.Errorf("cache: bad geometry %+v: size not a multiple of block size", c)
	}
	nSets := nBlocks / c.Assoc
	if nSets <= 0 || nBlocks%c.Assoc != 0 || nSets&(nSets-1) != 0 ||
		c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: non-power-of-two geometry %+v", c)
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses int64
	Misses   int64
	// SpecAccesses counts accesses made on behalf of speculative early
	// loads; they consume bandwidth but are not separately countable as
	// architectural accesses.
	SpecAccesses int64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	valid bool
	tag   int64
	lru   int64 // last-use stamp
}

// WaySnap is the exported view of one tag-store way, for replay fast paths
// that snapshot, compare, and restore set state (the block-timing memoizer
// in package pipeline). LRU is the raw use stamp; direct-mapped caches never
// write it, so it is always 0 there.
type WaySnap struct {
	Valid bool
	Tag   int64
	LRU   int64
}

// Cache is a tag-store cache model. Use New to construct one.
type Cache struct {
	cfg      Config
	ways     []way // flat set-major tag store: set s occupies [s*assoc, (s+1)*assoc)
	assoc    int
	setShift uint
	tagShift uint // setShift plus the set-index width
	setMask  int64
	stamp    int64
	stats    Stats

	// Observer, when non-nil, is called for every access with the
	// address, whether it hit, and whether the access was speculative
	// (issued on behalf of an early load). Nil (the default) costs one
	// branch per access.
	Observer func(addr int64, hit, spec bool)
}

// New builds a cache from cfg, filling zero fields with defaults. A
// geometry that fails Validate is returned as an error: it indicates a
// misconfigured experiment, and experiments are user input.
func New(cfg Config) (*Cache, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nBlocks := cfg.SizeBytes / cfg.BlockBytes
	nSets := nBlocks / cfg.Assoc
	c := &Cache{cfg: cfg, assoc: cfg.Assoc, setMask: int64(nSets - 1)}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.setShift++
	}
	c.tagShift = c.setShift + popcount64(uint64(c.setMask))
	// One flat set-major array: a single allocation, adjacent sets adjacent
	// in memory, and the hot direct-mapped lookup is one index away.
	c.ways = make([]way, nSets*cfg.Assoc)
	return c, nil
}

// Config returns the cache's (default-filled) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// MissPenalty returns the configured extra latency of a miss.
func (c *Cache) MissPenalty() int { return c.cfg.MissPenalty }

// Probe reports whether addr currently hits, without updating any state.
func (c *Cache) Probe(addr int64) bool {
	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		if w := &ways[i]; w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// set returns the ways of one set.
func (c *Cache) set(set int64) []way {
	base := int(set) * c.assoc
	return c.ways[base : base+c.assoc]
}

// CountHit records a demand access known to hit without probing the tag
// store. Callers must guarantee residency — it exists for replay fast
// paths that can prove the block is resident (e.g. a refetch of the same
// instruction block with no intervening access).
func (c *Cache) CountHit() { c.stats.Accesses++ }

// Access performs a demand access at addr: on a miss the block is filled
// (LRU replacement). It returns true on a hit.
func (c *Cache) Access(addr int64) bool {
	c.stats.Accesses++
	hit := c.touch(addr, true)
	if !hit {
		c.stats.Misses++
	}
	if c.Observer != nil {
		c.Observer(addr, hit, false)
	}
	return hit
}

// AccessNoAllocate records an access that does not allocate on miss — the
// write-through, no-write-allocate store path.
func (c *Cache) AccessNoAllocate(addr int64) bool {
	c.stats.Accesses++
	hit := c.touch(addr, false)
	if !hit {
		c.stats.Misses++
	}
	if c.Observer != nil {
		c.Observer(addr, hit, false)
	}
	return hit
}

// SpecAccess performs a speculative access on behalf of an early load. Like
// a demand access it fills on miss (the speculative load is a real load
// issued to the memory system), but it is tallied separately.
func (c *Cache) SpecAccess(addr int64) bool {
	c.stats.SpecAccesses++
	hit := c.touch(addr, true)
	if c.Observer != nil {
		c.Observer(addr, hit, true)
	}
	return hit
}

func (c *Cache) touch(addr int64, allocate bool) bool {
	if c.assoc == 1 {
		// Direct-mapped (the paper's geometry, and the hot path of every
		// replay): one way, no LRU bookkeeping, no use stamp.
		block := addr >> c.setShift
		w := &c.ways[block&c.setMask]
		tag := block >> (c.tagShift - c.setShift)
		if w.valid && w.tag == tag {
			return true
		}
		if allocate {
			*w = way{valid: true, tag: tag}
		}
		return false
	}
	c.stamp++
	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		if w := &ways[i]; w.valid && w.tag == tag {
			w.lru = c.stamp
			return true
		}
	}
	if allocate {
		victim := 0
		for i := range ways {
			w := &ways[i]
			if !w.valid {
				victim = i
				break
			}
			if w.lru < ways[victim].lru {
				victim = i
			}
		}
		ways[victim] = way{valid: true, tag: tag, lru: c.stamp}
	}
	return false
}

func (c *Cache) index(addr int64) (set, tag int64) {
	block := addr >> c.setShift
	return block & c.setMask, addr >> c.tagShift
}

// ---- replay fast-path hooks -------------------------------------------
//
// The accessors below exist for package pipeline's specialized replay
// kernels: geometry is resolved once at Sim construction so the hot loop
// carries no per-access config loads, and the block-timing memoizer
// snapshots/compares/restores individual sets. They expose exactly the
// state the cache's own access paths read and write — nothing is modeled
// here, only copied — so a restore is bit-identical to having replayed the
// accesses that produced it.

// Geometry returns the precomputed index geometry: block (set) shift, tag
// shift, set mask, and associativity.
func (c *Cache) Geometry() (setShift, tagShift uint, setMask int64, assoc int) {
	return c.setShift, c.tagShift, c.setMask, c.assoc
}

// SetIndexOf returns the set index addr maps to.
func (c *Cache) SetIndexOf(addr int64) int64 {
	return (addr >> c.setShift) & c.setMask
}

// Stamp returns the current LRU use stamp (0 for direct-mapped caches,
// which never stamp).
func (c *Cache) Stamp() int64 { return c.stamp }

// AddStamp advances the LRU use stamp by d, replaying the stamp increments
// of a memoized block without re-running its accesses.
func (c *Cache) AddStamp(d int64) { c.stamp += d }

// AddStats adds a delta onto the accumulated statistics.
func (c *Cache) AddStats(d Stats) {
	c.stats.Accesses += d.Accesses
	c.stats.Misses += d.Misses
	c.stats.SpecAccesses += d.SpecAccesses
}

// SnapSet appends the ways of one set to dst and returns it.
func (c *Cache) SnapSet(set int64, dst []WaySnap) []WaySnap {
	for _, w := range c.set(set) {
		dst = append(dst, WaySnap{Valid: w.valid, Tag: w.tag, LRU: w.lru})
	}
	return dst
}

// PutWay overwrites one way of one set with the given snapshot.
func (c *Cache) PutWay(set int64, wy int, s WaySnap) {
	c.set(set)[wy] = way{valid: s.Valid, tag: s.Tag, lru: s.LRU}
}

// AccessDM fuses Access, AccessNoAllocate, and SpecAccess into one
// branch-light direct-mapped leaf for the specialized replay kernel: the
// wrapper dispatch, the associativity check, and the Observer branches are
// all gone from the per-access path. Callers must guarantee the cache is
// direct-mapped and Observer is nil (the kernel re-checks both per chunk);
// the statistics and tag-store transitions are bit-identical to the
// corresponding generic entry point.
func (c *Cache) AccessDM(addr int64, spec, allocate bool) bool {
	block := addr >> c.setShift
	w := &c.ways[block&c.setMask]
	tag := addr >> c.tagShift
	if spec {
		c.stats.SpecAccesses++
	} else {
		c.stats.Accesses++
	}
	if w.valid && w.tag == tag {
		return true
	}
	if !spec {
		c.stats.Misses++
	}
	if allocate {
		*w = way{valid: true, tag: tag}
	}
	return false
}

func popcount64(v uint64) uint {
	var n uint
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
