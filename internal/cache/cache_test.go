package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(tb testing.TB, cfg Config) *Cache {
	tb.Helper()
	c, err := New(cfg)
	if err != nil {
		tb.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestDefaultsMatchPaper(t *testing.T) {
	c := mustNew(t, Config{})
	cfg := c.Config()
	if cfg.SizeBytes != 64<<10 || cfg.BlockBytes != 64 || cfg.Assoc != 1 || cfg.MissPenalty != 12 {
		t.Errorf("default config %+v does not match the paper's memory system", cfg)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustNew(t, Config{})
	if c.Access(0x1000) {
		t.Errorf("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Errorf("second access missed")
	}
	// Same block, different offset.
	if !c.Access(0x1010) {
		t.Errorf("same-block access missed")
	}
	// Next block misses.
	if c.Access(0x1040) {
		t.Errorf("next block hit while cold")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := mustNew(t, Config{})
	a := int64(0x0000)
	b := a + 64<<10 // same index, different tag
	c.Access(a)
	if c.Access(b) {
		t.Errorf("conflicting address hit")
	}
	// b evicted a.
	if c.Access(a) {
		t.Errorf("original line survived a direct-mapped conflict")
	}
}

func TestAssociativityResolvesConflict(t *testing.T) {
	c := mustNew(t, Config{Assoc: 2})
	a := int64(0x0000)
	b := a + 32<<10 // same set in a 2-way 64K cache
	c.Access(a)
	c.Access(b)
	if !c.Access(a) || !c.Access(b) {
		t.Errorf("2-way cache did not keep both conflicting lines")
	}
	// Touch order is now a, b — so a is LRU. A third conflicting line
	// must evict a and keep b.
	d := a + 64<<10
	c.Access(d)
	if !c.Probe(b) {
		t.Errorf("MRU line evicted instead of LRU")
	}
	if c.Probe(a) {
		t.Errorf("LRU line survived")
	}
}

func TestNoAllocateWritePath(t *testing.T) {
	c := mustNew(t, Config{})
	if c.AccessNoAllocate(0x2000) {
		t.Errorf("cold write hit")
	}
	// Write-through no-allocate: the line must still be absent.
	if c.Probe(0x2000) {
		t.Errorf("no-allocate access filled the cache")
	}
	st := c.Stats()
	if st.Accesses != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestSpecAccessCountsSeparately(t *testing.T) {
	c := mustNew(t, Config{})
	c.SpecAccess(0x3000)
	st := c.Stats()
	if st.SpecAccesses != 1 || st.Accesses != 0 {
		t.Errorf("stats %+v", st)
	}
	// The speculative access is a real load: it fills the line.
	if !c.Probe(0x3000) {
		t.Errorf("speculative access did not fill")
	}
}

func TestMissRate(t *testing.T) {
	c := mustNew(t, Config{})
	for i := 0; i < 10; i++ {
		c.Access(0x4000)
	}
	if r := c.Stats().MissRate(); r != 0.1 {
		t.Errorf("miss rate = %v, want 0.1", r)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Errorf("zero-access miss rate should be 0")
	}
}

func TestBadGeometryErrors(t *testing.T) {
	bad := []Config{
		{SizeBytes: 3000, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 4096, BlockBytes: 48},
		{SizeBytes: 4096, BlockBytes: 64, Assoc: 3},
		{SizeBytes: -64},
		{MissPenalty: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if c, err := New(cfg); err == nil || c != nil {
			t.Errorf("New(%+v) = %v, %v; want nil, error", cfg, c, err)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// Property: a direct-mapped cache hits on an address iff the most recent
// access to its set had the same block address — checked against a naive
// model.
func TestAgainstNaiveModel(t *testing.T) {
	const blocks = 16
	f := func(addrs []uint16) bool {
		c := mustNew(t, Config{SizeBytes: blocks * 64, BlockBytes: 64, Assoc: 1})
		model := map[int64]int64{} // set -> block
		for _, a16 := range addrs {
			addr := int64(a16)
			block := addr / 64
			set := block % blocks
			wantHit := model[set] == block+1 // +1: distinguish "empty"
			if got := c.Access(addr); got != wantHit {
				return false
			}
			model[set] = block + 1
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
