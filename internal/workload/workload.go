// Package workload provides the benchmark suite: 12 SPEC92/95-integer-like
// kernels and 13 MediaBench-like kernels written in MC (package mcc), each
// engineered to reproduce the load-address character of the corresponding
// program in the paper's Tables 2 and 4 — the split between strided
// arithmetic-dependent loads (PD), pointer-chasing load-dependent loads
// (EC), and irregular loads (NT), and the approximate load density.
//
// The original benchmarks and their inputs are proprietary; what the
// paper's technique responds to is only the dynamic load-address streams
// and the dependence shape of the surrounding code, which these kernels
// recreate (see DESIGN.md, "Substitutions"). Pointer structures are
// shuffled with a deterministic LCG so that pointer chases are genuinely
// stride-unpredictable, as malloc-ed heaps are.
package workload

import "sort"

// Suite labels a benchmark family.
type Suite uint8

// Suites.
const (
	// SPEC marks the SPEC92/95-integer-like programs of Tables 2 and 3.
	SPEC Suite = iota
	// Media marks the MediaBench-like programs of Table 4.
	Media
)

func (s Suite) String() string {
	if s == Media {
		return "MediaBench"
	}
	return "SPEC"
}

// Workload is one benchmark program.
type Workload struct {
	// Name matches the paper's benchmark naming.
	Name string
	// Suite is the family the program belongs to.
	Suite Suite
	// Source is the MC program text.
	Source string
	// About describes which behaviour of the original program the
	// kernel reproduces.
	About string
}

var registry []*Workload

func register(w *Workload) {
	registry = append(registry, w)
}

// All returns every workload, SPEC first, in stable order.
func All() []*Workload {
	out := make([]*Workload, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the workloads of one suite in stable order.
func BySuite(s Suite) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// Get returns the workload with the given name, or nil.
func Get(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// lcg is the deterministic pseudo-random helper shared by the sources; it
// is prepended to every program that requests it with needRand.
const lcg = `
int seed_ = 12345;
int rnd() {
	seed_ = (seed_ * 1103515245 + 12345) & 1073741823;
	return seed_;
}
`

func needRand(src string) string { return lcg + src }
