package workload_test

import (
	"testing"

	"elag"
	"elag/internal/workload"
)

// maxDynamicInsts bounds each kernel's run length so the full experiment
// harness stays tractable (25 programs x ~12 configurations).
const maxDynamicInsts = 3_000_000

func TestRegistryShape(t *testing.T) {
	spec := workload.BySuite(workload.SPEC)
	media := workload.BySuite(workload.Media)
	if len(spec) != 12 {
		t.Errorf("SPEC suite has %d programs, want 12 (Table 2)", len(spec))
	}
	if len(media) != 13 {
		t.Errorf("MediaBench suite has %d programs, want 13 (Table 4)", len(media))
	}
	if len(workload.All()) != len(spec)+len(media) {
		t.Errorf("All() inconsistent with suites")
	}
	seen := map[string]bool{}
	for _, w := range workload.All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.About == "" {
			t.Errorf("%s: missing About", w.Name)
		}
		if workload.Get(w.Name) != w {
			t.Errorf("Get(%q) did not return the registered workload", w.Name)
		}
	}
	if workload.Get("no-such-benchmark") != nil {
		t.Errorf("Get on unknown name should return nil")
	}
}

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := elag.Build(w.Source, elag.BuildOptions{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := p.Run(maxDynamicInsts)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ExitCode != 0 {
				t.Errorf("exit code %d, want 0", res.ExitCode)
			}
			if len(res.IntOut) == 0 {
				t.Errorf("no output produced")
			}
			if res.DynamicInsts < 20_000 {
				t.Errorf("only %d dynamic instructions; too small to warm predictors",
					res.DynamicInsts)
			}
			if res.DynamicLoads*100/res.DynamicInsts < 5 {
				t.Errorf("load density %.1f%% suspiciously low",
					float64(res.DynamicLoads)*100/float64(res.DynamicInsts))
			}
			t.Logf("%s: insts=%d loads=%d (%.1f%%) out=%v classes=%s",
				w.Name, res.DynamicInsts, res.DynamicLoads,
				float64(res.DynamicLoads)*100/float64(res.DynamicInsts),
				res.IntOut, p.Classes)
		})
	}
}

// TestArchitecturalEquivalence checks that speculation never changes
// results: every configuration must produce identical observable output.
func TestArchitecturalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs several timing configs per workload")
	}
	cfgs := map[string]elag.SimConfig{
		"base":     elag.BaseConfig(),
		"compiler": elag.CompilerDirectedConfig(),
		"hw-pred": {
			Select:    elag.SelAllPredict,
			Predictor: &elag.PredictorConfig{Entries: 256},
		},
		"hw-early": {
			Select:   elag.SelAllEarly,
			RegCache: &elag.RegCacheConfig{Entries: 16},
		},
		"hw-dual": {
			Select:    elag.SelHWDual,
			Predictor: &elag.PredictorConfig{Entries: 256},
			RegCache:  &elag.RegCacheConfig{Entries: 16},
		},
	}
	for _, w := range workload.All() {
		p, err := elag.Build(w.Source, elag.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: build: %v", w.Name, err)
		}
		var golden string
		for name, cfg := range cfgs {
			_, res, err := p.Simulate(cfg, maxDynamicInsts)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, name, err)
			}
			if golden == "" {
				golden = res.Output()
			} else if res.Output() != golden {
				t.Errorf("%s/%s: output diverged:\n got %s\nwant %s",
					w.Name, name, res.Output(), golden)
			}
		}
	}
}
