package workload

import "strings"

// SPEC92/95-integer-like kernels. Each reproduces the load-address
// character the paper's Table 2 reports for the original program: the
// static/dynamic NT/PD/EC balance and, crucially, whether each class's
// addresses are actually predictable by a stride machine.

func init() {
	register(&Workload{
		Name:  "008.espresso",
		Suite: SPEC,
		About: "Two-level logic minimizer: word-wide cube set operations. " +
			"Bulk strided sweeps (PD) plus unrolled operations through a " +
			"cube-pointer array whose pointers happen to be sequential — " +
			"the compiler classifies those loads NT, but they predict " +
			"almost perfectly, which is what address profiling rescues.",
		Source: `
int storage[4096];
int *cubes[130];

int sweep(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + storage[i];
	}
	return acc & 1048575;
}

int combine(int nc) {
	int acc = 0;
	for (int i = 0; i + 1 < nc; i++) {
		int *pa = cubes[i];
		int *pb = cubes[i + 1];
		acc = acc + (pa[0] & pb[0]);
		acc = acc + (pa[1] | pb[1]);
		acc = acc ^ (pa[2] ^ pb[2]);
		acc = acc + (pa[3] & pb[3]);
	}
	return acc & 1048575;
}

int main() {
	int nc = 128;
	for (int i = 0; i < 4096; i++) {
		storage[i] = (i * 37) & 4095;
	}
	for (int i = 0; i < nc; i++) {
		cubes[i] = &storage[i * 32];
	}
	int acc = 0;
	for (int pass = 0; pass < 14; pass++) {
		acc = acc + sweep(4096);
		acc = acc + combine(nc);
		acc = acc & 1048575;
	}
	print_int(acc);
	return 0;
}
`,
	})

	liSource := `
struct cell { int tag; int val; struct cell *car; struct cell *cdr; };
struct cell heap[HEAPSZ];
int perm[HEAPSZ];
int symval[256];

/* The allocator consults its heap mask from memory on every cons (xlisp
   reads its segment globals in the allocation path). */
int heapmask = HEAPSZ - 1;

struct cell *mklist(int n, int base) {
	struct cell *head = 0;
	for (int i = 0; i < n; i++) {
		struct cell *c = &heap[perm[(base + i) & heapmask]];
		c->tag = 1;
		c->val = (base + i) & 255;
		c->car = 0;
		c->cdr = head;
		head = c;
	}
	return head;
}

int sumlist(struct cell *p) {
	int s = 0;
	while (p) {
		s = s + p->val;
		s = s + symval[p->val & 255];
		p = p->cdr;
	}
	return s;
}

int main() {
	for (int i = 0; i < HEAPSZ; i++) { perm[i] = i; }
	for (int i = HEAPSZ - 1; i > 0; i--) {
		int j = rnd() % (i + 1);
		int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
	}
	for (int i = 0; i < 256; i++) { symval[i] = i * 3; }
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		struct cell *l = mklist(LISTLEN, pass * 17);
		acc = (acc + sumlist(l)) & 1048575;
		/* assoc-style scan: walk once more comparing tags */
		struct cell *p = l;
		while (p) {
			if (p->val == 42) { acc = acc + 1; }
			p = p->cdr;
		}
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "022.li",
		Suite: SPEC,
		About: "XLISP interpreter: cons-cell allocation and list traversal " +
			"over a shuffled heap — load-dependent car/cdr chains (EC) " +
			"plus a small strided symbol table (PD).",
		Source: needRand(replaceAll(liSource,
			"HEAPSZ", "1024", "PASSES", "40", "LISTLEN", "700")),
	})
	register(&Workload{
		Name:  "130.li",
		Suite: SPEC,
		About: "The SPEC95 XLISP variant: a larger shuffled heap and longer " +
			"lists than 022.li, raising the EC share.",
		Source: needRand(replaceAll(liSource,
			"HEAPSZ", "2048", "PASSES", "28", "LISTLEN", "1600")),
	})

	register(&Workload{
		Name:  "023.eqntott",
		Suite: SPEC,
		About: "Truth-table equivalence checker: dominated by cmppt(), a " +
			"linear comparison of long bit-vector arrays — almost every " +
			"load strides (92%+ dynamic PD in the paper).",
		Source: `
int pta[4096];
int ptb[4096];

int cmppt(int n) {
	int diff = 0;
	for (int i = 0; i < n; i++) {
		if (pta[i] != ptb[i]) {
			diff = diff + 1;
		}
	}
	return diff;
}

int merge(int n) {
	int acc = 0;
	for (int i = 0; i + 1 < n; i = i + 2) {
		acc = acc + (pta[i] & ptb[i + 1]);
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 4096; i++) {
		pta[i] = (i * 7) & 1023;
		ptb[i] = (i * 7 + (i & 64)) & 1023;
	}
	int acc = 0;
	for (int pass = 0; pass < 20; pass++) {
		acc = acc + cmppt(4096);
		acc = (acc + merge(4096)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`,
	})

	compressSource := `
char inbuf[INSZ];
int htab[4096];
int codetab[4096];
/* Hash configuration is read from memory per input byte, as the original
   consults its globals (hsize, maxcode, ...) in the hot loop. */
int hmask = 4095;
int hstep = 211;

int compress(int n) {
	int out = 0;
	for (int i = 0; i < 4096; i++) { htab[i] = -1; }
	int ent = 0;
	int checksum = 0;
	for (int i = 0; i < n; i++) {
		int c = inbuf[i];
		int hm = hmask;
		checksum = (checksum + c) & 65535;
		int key = (ent << 8) | (c & 255);
		int h = (key * 40503) & hm;
		int probes = 0;
		while (htab[h] != key && htab[h] != -1 && probes < 8) {
			h = (h + hstep) & hm;
			probes = probes + 1;
		}
		if (htab[h] == key) {
			ent = codetab[h];
		} else {
			htab[h] = key;
			codetab[h] = out & 4095;
			out = out + 1;
			ent = c & 255;
		}
	}
	return out + (checksum & 7);
}

int main() {
	for (int i = 0; i < INSZ; i++) {
		inbuf[i] = (rnd() >> 5) & MASK;
	}
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		acc = (acc + compress(INSZ)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "026.compress",
		Suite: SPEC,
		About: "LZW compression: sequential input-buffer reads (PD) feed a " +
			"hash table whose probe addresses derive from loaded data (NT, " +
			"poorly predictable).",
		Source: needRand(replaceAll(compressSource,
			"INSZ", "4096", "MASK", "15", "PASSES", "3")),
	})
	register(&Workload{
		Name:  "129.compress",
		Suite: SPEC,
		About: "The SPEC95 compress variant: a larger, noisier input raising " +
			"hash pressure relative to 026.compress.",
		Source: needRand(replaceAll(compressSource,
			"INSZ", "5120", "MASK", "31", "PASSES", "3")),
	})

	register(&Workload{
		Name:  "072.sc",
		Suite: SPEC,
		About: "Spreadsheet recalculation: strided sweeps over the cell grid " +
			"(PD) with per-cell dependency chains through shuffled links (EC).",
		Source: needRand(`
struct scell { int val; int formula; struct scell *dep; };
struct scell grid[2048];
int perm[2048];

int recalc(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		int v = grid[i].formula;
		struct scell *d = grid[i].dep;
		int depth = 0;
		while (d && depth < 4) {
			v = v + d->val;
			d = d->dep;
			depth = depth + 1;
		}
		grid[i].val = v;
		acc = acc + v;
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 2048; i++) { perm[i] = i; }
	for (int i = 2047; i > 0; i--) {
		int j = rnd() % (i + 1);
		int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
	}
	for (int i = 0; i < 2048; i++) {
		grid[i].val = i & 63;
		grid[i].formula = (i * 5) & 255;
		if (i & 1) {
			grid[i].dep = &grid[perm[i]];
		} else {
			grid[i].dep = 0;
		}
	}
	int acc = 0;
	for (int pass = 0; pass < 12; pass++) {
		acc = (acc + recalc(2048)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`),
	})

	register(&Workload{
		Name:  "085.cc1",
		Suite: SPEC,
		About: "GCC: recursive expression-tree evaluation over a shuffled " +
			"node pool (EC), a token-stream scan (PD), and symbol-table " +
			"hash probes (NT).",
		Source: needRand(`
struct tnode { int op; int leaf; struct tnode *l; struct tnode *r; };
struct tnode pool[2048];
int perm[2048];
int tokens[4096];
int symtab[1024];
int nextnode = 0;

struct tnode *alloc() {
	struct tnode *n = &pool[perm[nextnode & 2047]];
	nextnode = nextnode + 1;
	return n;
}

struct tnode *build(int depth, int v) {
	struct tnode *n = alloc();
	if (depth <= 0) {
		n->op = 0;
		n->leaf = v & 255;
		n->l = 0;
		n->r = 0;
		return n;
	}
	n->op = 1 + (v & 3);
	n->leaf = 0;
	n->l = build(depth - 1, v * 3 + 1);
	n->r = build(depth - 1, v * 5 + 2);
	return n;
}

int eval(struct tnode *n) {
	if (n->op == 0) {
		return n->leaf;
	}
	int a = eval(n->l);
	int b = eval(n->r);
	if (n->op == 1) { return a + b; }
	if (n->op == 2) { return a - b; }
	if (n->op == 3) { return a & b; }
	return a ^ b;
}

int scan(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		int t = tokens[i];
		int h = (t * 2654435) & 1023;
		if (symtab[h] == t) {
			acc = acc + 1;
		} else {
			symtab[h] = t;
		}
		acc = acc + t;
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 2048; i++) { perm[i] = i; }
	for (int i = 2047; i > 0; i--) {
		int j = rnd() % (i + 1);
		int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
	}
	for (int i = 0; i < 4096; i++) { tokens[i] = (rnd() >> 3) & 8191; }
	for (int i = 0; i < 1024; i++) { symtab[i] = -1; }
	int acc = 0;
	for (int pass = 0; pass < 12; pass++) {
		nextnode = 0;
		struct tnode *t = build(9, pass);
		acc = (acc + eval(t)) & 1048575;
		acc = (acc + scan(4096)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`),
	})

	register(&Workload{
		Name:  "124.m88ksim",
		Suite: SPEC,
		About: "Motorola 88K simulator: the fetch-decode-execute loop reads " +
			"instruction memory sequentially (PD) and accesses the register " +
			"file and data memory through decoded fields (EC/NT).",
		Source: needRand(`
int imem[4096];
int regs[32];
int dmem[4096];
/* Simulated-CPU configuration lives in memory and is consulted on every
   dispatch (read-mostly, like the real simulator's CPU-state structure);
   bulk counters are flushed only at trap checks. */
int pcg = 0;
int memmask = 4095;
int regmask = 15;
int trapevery = 1024;

int simulate(int n) {
	int count = 0;
	int psw = 0;
	while (count < n) {
		int mm = memmask;
		int rm = regmask;
		int inst = imem[pcg & mm];
		psw = psw | (inst & 3);
		int op = (inst >> 12) & 7;
		int rd = (inst >> 8) & rm;
		int rs = (inst >> 4) & rm;
		int rt = inst & rm;
		if (op == 0) {
			regs[rd] = regs[rs] + regs[rt];
		} else { if (op == 1) {
			regs[rd] = regs[rs] - regs[rt];
		} else { if (op == 2) {
			regs[rd] = dmem[regs[rs] & mm];
		} else { if (op == 3) {
			dmem[regs[rd] & mm] = regs[rs];
		} else { if (op == 4) {
			regs[rd] = regs[rs] & regs[rt];
		} else {
			regs[rd] = regs[rs] ^ inst;
		} } } } }
		pcg = pcg + 1;
		count = count + 1;
		if (count == trapevery) { psw = psw & 255; }
	}
	return regs[7] + (psw & 3);
}

int main() {
	/* A realistic simulated program is highly repetitive: fill
	   instruction memory with a looping 16-instruction kernel so the
	   host's dispatch branches behave as they do on real traces. */
	for (int i = 0; i < 4096; i++) {
		int slot = i & 15;
		int op = 0;
		if (slot == 3 || slot == 9) { op = 2; }
		if (slot == 6) { op = 3; }
		if (slot == 12) { op = 4; }
		if (slot == 15) { op = 5; }
		imem[i] = (op << 12) | (rnd() & 4095);
	}
	for (int i = 0; i < 4096; i++) { dmem[i] = i * 3; }
	for (int i = 0; i < 32; i++) { regs[i] = i; }
	int acc = 0;
	for (int pass = 0; pass < 5; pass++) {
		pcg = 0;
		acc = (acc + simulate(8192)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`),
	})

	register(&Workload{
		Name:  "132.ijpeg",
		Suite: SPEC,
		About: "JPEG codec: blocked DCT-like transforms and quantization " +
			"sweeps (PD) plus value-dependent quantization-table lookups " +
			"whose indices come from pixel data (NT, poorly predictable).",
		Source: needRand(`
int image[4096];
int block[64];
int qtab[256];
/* Quantizer scale, consulted from memory per coefficient. */
int qscale = 3;

int transform(int base) {
	for (int i = 0; i < 64; i++) {
		block[i] = image[(base + i) & 4095];
	}
	/* butterfly-ish row pass */
	for (int r = 0; r < 8; r++) {
		int s = 0;
		for (int c = 0; c < 8; c++) {
			s = s + block[r * 8 + c];
		}
		block[r * 8] = s;
	}
	int acc = 0;
	for (int i = 0; i < 64; i++) {
		int v = (block[i] >> qscale) & 255;
		acc = acc + qtab[v];
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 4096; i++) { image[i] = (rnd() >> 4) & 1023; }
	for (int i = 0; i < 256; i++) { qtab[i] = (i * 13) & 255; }
	int acc = 0;
	for (int pass = 0; pass < 6; pass++) {
		for (int b = 0; b < 64; b++) {
			acc = (acc + transform(b * 64)) & 1048575;
		}
	}
	print_int(acc);
	return 0;
}
`),
	})

	register(&Workload{
		Name:  "134.perl",
		Suite: SPEC,
		About: "Perl interpreter: a bytecode dispatch loop reading the " +
			"program array (PD), an operand stack through a moving pointer " +
			"(EC), and variable-hash probes (NT).",
		Source: needRand(`
int code[4096];
int stack[256];
int vars[512];
/* Interpreter configuration is consulted from memory on every dispatch
   (read-mostly), as perl's interpreter reads its globals and tables. */
int stkmask = 255;
int varmask = 511;

int interp(int n) {
	int acc = 0;
	int sp = 0;
	for (int pc = 0; pc < n; pc++) {
		int inst = code[pc];
		int sm = stkmask;
		int vm = varmask;
		int op = inst & 7;
		int arg = (inst >> 3) & vm;
		if (op == 0) {
			stack[sp & sm] = arg;
			sp = sp + 1;
		} else { if (op == 1) {
			if (sp > 1) {
				int a = stack[(sp - 1) & sm];
				int b = stack[(sp - 2) & sm];
				stack[(sp - 2) & sm] = a + b;
				sp = sp - 1;
			}
		} else { if (op == 2) {
			vars[arg] = stack[(sp - 1) & sm];
		} else { if (op == 3) {
			stack[sp & sm] = vars[arg];
			sp = sp + 1;
		} else {
			acc = acc + stack[(sp - 1) & sm];
		} } } }
	}
	return acc & 1048575;
}

int main() {
	/* Real bytecode is dominated by short repeating idioms (push,
	   load, add, store); emit such idioms with varying operands. */
	for (int i = 0; i < 4096; i = i + 4) {
		int v1 = (rnd() & 511) << 3;
		int v2 = (rnd() & 511) << 3;
		code[i] = 0 | v1;      /* push */
		code[i + 1] = 3 | v2;  /* load var */
		code[i + 2] = 1;       /* add  */
		code[i + 3] = 2 | v1;  /* store var */
		if ((i & 31) == 28) {
			code[i + 3] = 4;   /* accumulate result */
		}
	}
	for (int i = 0; i < 512; i++) { vars[i] = i; }
	stack[0] = 1;
	int acc = 0;
	for (int pass = 0; pass < 11; pass++) {
		acc = (acc + interp(4096)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`),
	})

	register(&Workload{
		Name:  "147.vortex",
		Suite: SPEC,
		About: "Object-oriented database: traversals over a shuffled object " +
			"graph reading several fields per object (the largest EC share " +
			"in the suite) plus ordered index-array walks (PD).",
		Source: needRand(`
struct obj {
	int key;
	int kind;
	int attr1;
	int attr2;
	struct obj *next;
	struct obj *owner;
};
struct obj db[2048];
int perm[2048];
int index_[2048];

int traverse(struct obj *p, int limit) {
	int acc = 0;
	int n = 0;
	while (p && n < limit) {
		acc = acc + p->key;
		acc = acc + p->attr1;
		acc = acc ^ p->attr2;
		if (p->owner) {
			acc = acc + p->owner->kind;
		}
		p = p->next;
		n = n + 1;
	}
	return acc & 1048575;
}

int scan_index(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + index_[i];
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 2048; i++) { perm[i] = i; }
	for (int i = 2047; i > 0; i--) {
		int j = rnd() % (i + 1);
		int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
	}
	for (int i = 0; i < 2048; i++) {
		struct obj *o = &db[perm[i]];
		o->key = i;
		o->kind = i & 15;
		o->attr1 = (i * 11) & 255;
		o->attr2 = (i * 29) & 255;
		if (i + 1 < 2048) {
			o->next = &db[perm[i + 1]];
		} else {
			o->next = 0;
		}
		o->owner = &db[perm[(i * 7) & 2047]];
		index_[i] = perm[i];
	}
	int acc = 0;
	for (int pass = 0; pass < 20; pass++) {
		acc = (acc + traverse(&db[perm[0]], 1500)) & 1048575;
		acc = (acc + scan_index(2048)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`),
	})
}

// replaceAll substitutes NAME/value parameter pairs in a source template.
func replaceAll(src string, pairs ...string) string {
	for i := 0; i+1 < len(pairs); i += 2 {
		src = strings.ReplaceAll(src, pairs[i], pairs[i+1])
	}
	return src
}
