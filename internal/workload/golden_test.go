package workload_test

import (
	"testing"

	"elag"
	"elag/internal/workload"
)

// Golden architectural outputs for every workload, captured from the
// reference build. Any change to a kernel, the compiler, or the emulator
// that alters observable behaviour must be deliberate and re-recorded here
// (the timing model, by design, can never affect these).
var goldenOutputs = map[string]int64{
	"008.espresso": 466280,
	"022.li":       707052,
	"023.eqntott":  98304,
	"026.compress": 4635,
	"072.sc":       308404,
	"085.cc1":      485428,
	"124.m88ksim":  527419,
	"129.compress": 8076,
	"130.li":       833711,
	"132.ijpeg":    994048,
	"134.perl":     711040,
	"147.vortex":   514240,
	"ADPCM Decode": 823560,
	"ADPCM Encode": 955716,
	"EPIC Decode":  320819,
	"EPIC Encode":  946766,
	"G.721 Decode": 133905,
	"G.721 Encode": 867532,
	"GSM Decode":   358295,
	"GSM Encode":   603323,
	"Ghostscript":  69854,
	"MPEG Decode":  757645,
	"PGP Decode":   503492,
	"PGP Encode":   101731,
	"RASTA":        388477,
}

func TestGoldenOutputs(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := goldenOutputs[w.Name]
			if !ok {
				t.Fatalf("no golden recorded for %q", w.Name)
			}
			p, err := elag.Build(w.Source, elag.BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.IntOut) != 1 || res.IntOut[0] != want {
				t.Errorf("output %v, golden %d", res.IntOut, want)
			}
			if res.ExitCode != 0 {
				t.Errorf("exit code %d", res.ExitCode)
			}
		})
	}
	if len(goldenOutputs) != len(workload.All()) {
		t.Errorf("golden table has %d entries for %d workloads",
			len(goldenOutputs), len(workload.All()))
	}
}
