package workload

// MediaBench-like kernels (Table 4). Relative to the SPEC-like programs
// these have a higher share of strided, predictable loads (the paper
// reports 79% dynamic PD on average versus 58% for SPEC) and fewer loads
// per instruction — DSP code does more arithmetic between memory
// references — which is why the paper's average MediaBench speedup (1.19)
// is below the SPEC average despite the better predictability.

func init() {
	adpcm := `
int indexTable[16];
int stepTable[89];
char inbuf[INSZ];
int valpred = 0;
int index_ = 0;

int decode_nibble(int delta) {
	int step = stepTable[index_];
	int diff = step >> 3;
	if (delta & 4) { diff = diff + step; }
	if (delta & 2) { diff = diff + (step >> 1); }
	if (delta & 1) { diff = diff + (step >> 2); }
	if (delta & 8) {
		valpred = valpred - diff;
	} else {
		valpred = valpred + diff;
	}
	if (valpred > 32767) { valpred = 32767; }
	if (valpred < -32768) { valpred = -32768; }
	index_ = index_ + indexTable[delta & 15];
	if (index_ < 0) { index_ = 0; }
	if (index_ > 88) { index_ = 88; }
	return valpred;
}

int main() {
	for (int i = 0; i < 16; i++) {
		indexTable[i] = (i & 3) - 1 + ((i >> 2) & 1) * 2;
	}
	int s = 7;
	for (int i = 0; i < 89; i++) {
		stepTable[i] = s;
		s = s + (s >> 2) + 1;
		if (s > 32767) { s = 32767; }
	}
	for (int i = 0; i < INSZ; i++) { inbuf[i] = rnd() & 255; }
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		valpred = 0;
		index_ = 0;
		for (int i = 0; i < INSZ; i++) {
			int b = inbuf[i] & 255;
			acc = acc + decode_nibble(b & 15);
			acc = acc + decode_nibble((b >> 4) & 15);
		}
		acc = acc & 1048575;
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "ADPCM Decode",
		Suite: Media,
		About: "IMA ADPCM decoder: per-nibble branchy arithmetic with sparse " +
			"step/index table lookups — few loads per instruction, and the " +
			"table indices depend on decoded data (a large NT share with a " +
			"low prediction rate, as in Table 4).",
		Source: needRand(replaceAll(adpcm, "INSZ", "2048", "PASSES", "4")),
	})
	register(&Workload{
		Name:  "ADPCM Encode",
		Suite: Media,
		About: "IMA ADPCM encoder-shaped variant: the same quantizer state " +
			"machine driven by a synthetic waveform.",
		Source: needRand(replaceAll(adpcm, "INSZ", "1792", "PASSES", "4")),
	})

	gsm := `
int s_in[SAMPLES];
int lar[8];
int dp[128];

int longterm(int base) {
	int best = 0;
	int bestlag = 40;
	for (int lag = 40; lag < 120; lag++) {
		int corr = 0;
		for (int k = 0; k < 8; k++) {
			corr = corr + s_in[(base + k) & (SAMPLES - 1)] * dp[(lag + k) & 127];
		}
		if (corr > best) { best = corr; bestlag = lag; }
	}
	return bestlag;
}

int shortterm(int n) {
	int acc = 0;
	for (int i = 8; i < n; i++) {
		int s = s_in[i];
		for (int k = 0; k < 8; k++) {
			s = s - ((lar[k] * s_in[i - k - 1]) >> 10);
		}
		acc = acc + (s & 65535);
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < SAMPLES; i++) { s_in[i] = (rnd() & 2047) - 1024; }
	for (int i = 0; i < 8; i++) { lar[i] = 100 - i * 9; }
	for (int i = 0; i < 128; i++) { dp[i] = (i * 37) & 511; }
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		acc = (acc + shortterm(SAMPLES)) & 1048575;
		acc = (acc + longterm(pass * 13)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "GSM Decode",
		Suite: Media,
		About: "GSM 06.10 decoder: short-term LPC synthesis filter — nearly " +
			"every load is a strided filter-state or coefficient access " +
			"(98% dynamic PD in Table 4).",
		Source: needRand(replaceAll(gsm, "SAMPLES", "1024", "PASSES", "5")),
	})
	register(&Workload{
		Name:  "GSM Encode",
		Suite: Media,
		About: "GSM 06.10 encoder: adds the long-term-prediction lag search, " +
			"another purely strided double loop.",
		Source: needRand(replaceAll(gsm, "SAMPLES", "2048", "PASSES", "3")),
	})

	g721 := `
int qtab[16];
int widthtab[16];
char inbuf[INSZ];
struct pstate { int a1; int a2; int b[6]; int dq[6]; };
struct pstate st;

int predict() {
	int s = (st.a1 * st.dq[0] + st.a2 * st.dq[1]) >> 8;
	for (int i = 0; i < 6; i++) {
		s = s + ((st.b[i] * st.dq[i]) >> 10);
	}
	return s;
}

int reconstruct(int code) {
	int dq = qtab[code & 15];
	for (int i = 5; i > 0; i--) {
		st.dq[i] = st.dq[i - 1];
	}
	st.dq[0] = dq;
	st.a1 = st.a1 + ((dq - st.a1) >> 5);
	st.a2 = st.a2 + ((st.a1 - st.a2) >> 6);
	for (int i = 0; i < 6; i++) {
		st.b[i] = st.b[i] + (widthtab[code & 15] >> (i + 2));
		st.b[i] = st.b[i] & 16383;
	}
	return predict();
}

int main() {
	for (int i = 0; i < 16; i++) {
		qtab[i] = i * 17 - 120;
		widthtab[i] = i * 5 + 7;
	}
	for (int i = 0; i < INSZ; i++) { inbuf[i] = rnd() & 255; }
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		for (int i = 0; i < INSZ; i++) {
			acc = acc + reconstruct(inbuf[i] & 15);
		}
		acc = acc & 1048575;
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "G.721 Decode",
		Suite: Media,
		About: "G.721 ADPCM decoder: adaptive-predictor state updates — " +
			"small constant-address structure fields and short strided " +
			"coefficient arrays dominate.",
		Source: needRand(replaceAll(g721, "INSZ", "1536", "PASSES", "4")),
	})
	register(&Workload{
		Name:  "G.721 Encode",
		Suite: Media,
		About: "G.721 encoder-shaped variant: the same predictor with the " +
			"quantization search direction reversed.",
		Source: needRand(replaceAll(g721, "INSZ", "1280", "PASSES", "4")),
	})

	epic := `
int img[4096];
int tmp[4096];

int wavelet_pass(int n, int stride) {
	int acc = 0;
	for (int i = 0; i + stride < n; i = i + 2 * stride) {
		int lo = (img[i] + img[i + stride]) >> 1;
		int hi = img[i] - img[i + stride];
		tmp[i] = lo;
		tmp[i + stride] = hi;
		acc = acc + (hi & 255);
	}
	for (int i = 0; i < n; i++) { img[i] = tmp[i]; }
	return acc & 1048575;
}

int quantize(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		int v = img[i] >> 3;
		img[i] = v;
		acc = acc + (v & 63);
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 4096; i++) { img[i] = (rnd() >> 3) & 1023; }
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		acc = (acc + wavelet_pass(4096, 1)) & 1048575;
		acc = (acc + wavelet_pass(4096, 2)) & 1048575;
		acc = (acc + wavelet_pass(4096, 4)) & 1048575;
		acc = (acc + quantize(4096)) & 1048575;
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "EPIC Decode",
		Suite: Media,
		About: "EPIC image codec (synthesis direction): multi-stride wavelet " +
			"butterflies — strided loads at several fixed strides, all " +
			"highly predictable.",
		Source: needRand(replaceAll(epic, "PASSES", "5")),
	})
	register(&Workload{
		Name:  "EPIC Encode",
		Suite: Media,
		About: "EPIC analysis direction with quantization: nearly all " +
			"dynamic loads strided (96% PD in Table 4).",
		Source: needRand(replaceAll(epic, "PASSES", "4")),
	})

	register(&Workload{
		Name:  "Ghostscript",
		Suite: Media,
		About: "PostScript rasterizer: active-edge linked lists walked per " +
			"scanline (the highest EC share in MediaBench) plus span-buffer " +
			"fills (PD).",
		Source: needRand(`
struct edge { int x; int dx; int ymax; struct edge *next; };
struct edge pool[512];
int perm[512];
int span[1024];

int rasterize(struct edge *active, int y) {
	int acc = 0;
	struct edge *e = active;
	while (e) {
		if (e->ymax > y) {
			int x = e->x >> 8;
			span[x & 1023] = span[x & 1023] + 1;
			e->x = e->x + e->dx;
			acc = acc + 1;
		}
		e = e->next;
	}
	return acc;
}

int main() {
	for (int i = 0; i < 512; i++) { perm[i] = i; }
	for (int i = 511; i > 0; i--) {
		int j = rnd() % (i + 1);
		int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
	}
	for (int i = 0; i < 512; i++) {
		struct edge *e = &pool[perm[i]];
		e->x = (rnd() & 65535);
		e->dx = (rnd() & 511) - 256;
		e->ymax = 40 + (rnd() & 127);
		if (i + 1 < 512) {
			e->next = &pool[perm[i + 1]];
		} else {
			e->next = 0;
		}
	}
	int acc = 0;
	for (int y = 0; y < 120; y++) {
		acc = (acc + rasterize(&pool[perm[0]], y)) & 1048575;
		for (int x = 0; x < 1024; x++) {
			acc = acc + (span[x] & 1);
		}
		acc = acc & 1048575;
	}
	print_int(acc);
	return 0;
}
`),
	})

	register(&Workload{
		Name:  "MPEG Decode",
		Suite: Media,
		About: "MPEG-2 decoder: 2-D IDCT row/column passes and motion " +
			"compensation block copies — long strided bursts (94% PD).",
		Source: needRand(`
int frame[4096];
int refframe[4096];
int block[64];

int idct_block(int base) {
	for (int i = 0; i < 64; i++) { block[i] = frame[(base + i) & 4095]; }
	for (int r = 0; r < 8; r++) {
		int s0 = block[r * 8] + block[r * 8 + 4];
		int s1 = block[r * 8 + 1] + block[r * 8 + 5];
		block[r * 8] = s0 + s1;
		block[r * 8 + 1] = s0 - s1;
	}
	for (int c = 0; c < 8; c++) {
		int s0 = block[c] + block[32 + c];
		block[c] = s0;
	}
	int acc = 0;
	for (int i = 0; i < 64; i++) { acc = acc + (block[i] & 255); }
	return acc & 1048575;
}

int motion_comp(int base, int mv) {
	int acc = 0;
	for (int i = 0; i < 64; i++) {
		int v = (refframe[(base + mv + i) & 4095] + frame[(base + i) & 4095]) >> 1;
		frame[(base + i) & 4095] = v;
		acc = acc + (v & 63);
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 4096; i++) {
		frame[i] = (rnd() >> 2) & 255;
		refframe[i] = (rnd() >> 2) & 255;
	}
	int acc = 0;
	for (int pass = 0; pass < 4; pass++) {
		for (int b = 0; b < 96; b++) {
			acc = (acc + idct_block(b * 64)) & 1048575;
			acc = (acc + motion_comp(b * 64, (b * 37) & 1023)) & 1048575;
		}
	}
	print_int(acc);
	return 0;
}
`),
	})

	pgp := `
int bn_a[64];
int bn_b[64];
int bn_r[128];

int bnmul(int n) {
	for (int i = 0; i < 2 * n; i++) { bn_r[i] = 0; }
	for (int i = 0; i < n; i++) {
		int carry = 0;
		int ai = bn_a[i];
		for (int j = 0; j < n; j++) {
			int t = bn_r[i + j] + ai * bn_b[j] + carry;
			bn_r[i + j] = t & 65535;
			carry = t >> 16;
		}
		bn_r[i + n] = bn_r[i + n] + carry;
	}
	int acc = 0;
	for (int i = 0; i < 2 * n; i++) { acc = acc + bn_r[i]; }
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 64; i++) {
		bn_a[i] = rnd() & 65535;
		bn_b[i] = rnd() & 65535;
	}
	int acc = 0;
	for (int pass = 0; pass < PASSES; pass++) {
		acc = (acc + bnmul(64)) & 1048575;
		bn_a[pass & 63] = acc & 65535;
	}
	print_int(acc);
	return 0;
}
`
	register(&Workload{
		Name:  "PGP Decode",
		Suite: Media,
		About: "PGP (RSA direction): multi-precision multiply — nested " +
			"strided limb loops, near-perfect address predictability.",
		Source: needRand(replaceAll(pgp, "PASSES", "7")),
	})
	register(&Workload{
		Name:   "PGP Encode",
		Suite:  Media,
		About:  "PGP encrypt-shaped variant with fewer squarings per pass.",
		Source: needRand(replaceAll(pgp, "PASSES", "5")),
	})

	register(&Workload{
		Name:  "RASTA",
		Suite: Media,
		About: "RASTA speech front end: filter-bank accumulation across " +
			"critical bands — two-level strided loops over spectra and " +
			"band-edge tables.",
		Source: needRand(`
int spectrum[512];
int bandlo[32];
int bandhi[32];
int weights[512];
int bandout[32];

int filterbank(int nb) {
	int acc = 0;
	for (int b = 0; b < nb; b++) {
		int s = 0;
		for (int k = bandlo[b]; k < bandhi[b]; k++) {
			s = s + spectrum[k & 511] * weights[k & 511];
		}
		bandout[b] = s >> 8;
		acc = acc + (bandout[b] & 1023);
	}
	return acc & 1048575;
}

int rastafilt(int nb) {
	int acc = 0;
	for (int b = 0; b < nb; b++) {
		int v = bandout[b];
		v = v - (v >> 3);
		bandout[b] = v;
		acc = acc + (v & 255);
	}
	return acc & 1048575;
}

int main() {
	for (int i = 0; i < 512; i++) {
		spectrum[i] = (rnd() >> 4) & 2047;
		weights[i] = (i * 3) & 255;
	}
	for (int b = 0; b < 32; b++) {
		bandlo[b] = b * 14;
		bandhi[b] = b * 14 + 40;
	}
	int acc = 0;
	for (int frame = 0; frame < 110; frame++) {
		acc = (acc + filterbank(32)) & 1048575;
		acc = (acc + rastafilt(32)) & 1048575;
		spectrum[frame & 511] = acc & 2047;
	}
	print_int(acc);
	return 0;
}
`),
	})
}
