package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"elag/internal/artifact"
	"elag/internal/chaosinject"
)

// corruptOneArtifact flips one payload byte of the single artifact file
// under dir and returns its path.
func corruptOneArtifact(t *testing.T, dir string) string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && !strings.HasPrefix(d.Name(), ".tmp") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("want exactly 1 artifact on disk, found %d: %v", len(files), files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte well past the 40-byte header, inside the payload.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	return files[0]
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// memStore builds an in-memory artifact store (no disk tier) for cache
// tests that don't exercise persistence.
func memStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// diskStore builds a two-tier store rooted in dir.
func diskStore(t *testing.T, dir string) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(artifact.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// resultBytes extracts the raw "result" value of a terminal status body,
// for byte-identity comparisons across jobs.
func resultBytes(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc struct {
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode status: %v\n%s", err, raw)
	}
	if doc.State != StateDone {
		t.Fatalf("job not done: %s\n%s", doc.State, raw)
	}
	if len(doc.Result) == 0 {
		t.Fatalf("done job has no result:\n%s", raw)
	}
	return doc.Result
}

// TestCacheHitByteIdentical: the second identical submission is served
// from the store without executing, and its result bytes equal the first
// run's exactly.
func TestCacheHitByteIdentical(t *testing.T) {
	check := leakCheck(t)
	s, ts := testService(t, Options{Workers: 2, Cache: memStore(t)})

	spec := simSpec(quickSrc, 100_000)
	resp1, raw1 := postJob(t, ts, spec, "?wait=1")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold submit: %d\n%s", resp1.StatusCode, raw1)
	}
	resp2, raw2 := postJob(t, ts, spec, "?wait=1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm submit: %d\n%s", resp2.StatusCode, raw2)
	}
	r1, r2 := resultBytes(t, raw1), resultBytes(t, raw2)
	if !bytes.Equal(r1, r2) {
		t.Errorf("cached result differs from computed result:\ncold: %s\nwarm: %s", r1, r2)
	}
	if h, m := s.stats.CacheHits.Value(), s.stats.CacheMisses.Value(); h != 1 || m != 1 {
		t.Errorf("cache counters: hits=%d misses=%d, want 1/1", h, m)
	}
	// The two status documents differ only in job ID.
	if bytes.Equal(raw1, raw2) {
		t.Errorf("distinct jobs returned identical status documents (IDs must differ)")
	}
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

// TestCacheMissesOnSpecChange: specs that describe different computations
// must never share an artifact.
func TestCacheMissesOnSpecChange(t *testing.T) {
	check := leakCheck(t)
	s, ts := testService(t, Options{Workers: 2, Cache: memStore(t)})

	base := simSpec(quickSrc, 100_000)
	vary := []*JobSpec{
		simSpec(quickSrc, 50_000), // fuel participates in the key
		simSpec(busySrc, 100_000), // source participates
		func() *JobSpec { sp := simSpec(quickSrc, 100_000); sp.Chunk = 4096; return sp }(),
		func() *JobSpec { sp := simSpec(quickSrc, 100_000); sp.Configs = sp.Configs[:1]; return sp }(),
	}
	for i, sp := range vary {
		if ResultKey(sp) == ResultKey(base) {
			t.Errorf("variant %d: key collision with base spec", i)
		}
	}
	// DeadlineMS changes whether a result exists, not its bytes.
	withDeadline := simSpec(quickSrc, 100_000)
	withDeadline.DeadlineMS = 30_000
	if ResultKey(withDeadline) != ResultKey(base) {
		t.Errorf("deadline_ms must not participate in the result key")
	}

	if resp, raw := postJob(t, ts, base, "?wait=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, raw)
	}
	if resp, raw := postJob(t, ts, vary[0], "?wait=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit variant: %d\n%s", resp.StatusCode, raw)
	}
	if h, m := s.stats.CacheHits.Value(), s.stats.CacheMisses.Value(); h != 0 || m != 2 {
		t.Errorf("cache counters: hits=%d misses=%d, want 0/2", h, m)
	}
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

// TestSingleFlightCoalesce: N identical concurrent submissions execute the
// pipeline exactly once. Chaos slows the leader's chunks so the followers
// reliably arrive while it is in flight; the counter algebra
// accepted = hits + misses + coalesced must hold regardless of timing.
func TestSingleFlightCoalesce(t *testing.T) {
	check := leakCheck(t)
	defer chaosinject.Reset()
	chaosinject.Reset()
	if err := chaosinject.Parse("slow-chunk=30ms"); err != nil {
		t.Fatal(err)
	}

	store := memStore(t)
	s, ts := testService(t, Options{Workers: 4, Cache: store})

	const n = 6
	spec := simSpec(busySrc, 2_000_000)
	spec.Chunk = 4096 // many chunk boundaries → many slow-chunk injections

	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJob(t, ts, spec, "?wait=1")
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("submit %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			results[i] = resultBytes(t, raw)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Errorf("result %d differs from result 0", i)
		}
	}

	hits := s.stats.CacheHits.Value()
	misses := s.stats.CacheMisses.Value()
	coalesced := s.stats.CacheCoalesced.Value()
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (the pipeline must execute once)", misses)
	}
	if hits+coalesced != n-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d", hits, coalesced, hits+coalesced, n-1)
	}
	if got := s.stats.JobsAccepted.Value(); got != hits+misses+coalesced {
		t.Errorf("admission algebra: accepted=%d, hits+misses+coalesced=%d",
			got, hits+misses+coalesced)
	}
	if st := store.Stats(); st.Puts != 1 {
		t.Errorf("store puts = %d, want 1", st.Puts)
	}
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

// TestCoalescedFollowerHasOwnStream: a follower is a full job — its
// events endpoint delivers a terminal done frame even though no worker
// ever ran it.
func TestCoalescedFollowerHasOwnStream(t *testing.T) {
	check := leakCheck(t)
	defer chaosinject.Reset()
	chaosinject.Reset()
	if err := chaosinject.Parse("slow-chunk=30ms"); err != nil {
		t.Fatal(err)
	}

	s, ts := testService(t, Options{Workers: 2, Cache: memStore(t)})
	spec := simSpec(busySrc, 2_000_000)
	spec.Chunk = 4096

	resp, raw := postJob(t, ts, spec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("leader submit: %d\n%s", resp.StatusCode, raw)
	}
	var leader StatusDoc
	if err := json.Unmarshal(raw, &leader); err != nil {
		t.Fatal(err)
	}
	resp2, raw2 := postJob(t, ts, spec, "")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("follower submit: %d\n%s", resp2.StatusCode, raw2)
	}
	var follower StatusDoc
	if err := json.Unmarshal(raw2, &follower); err != nil {
		t.Fatal(err)
	}
	if follower.ID == leader.ID {
		t.Fatalf("follower shares the leader's job ID %s", leader.ID)
	}
	if s.stats.CacheCoalesced.Value() != 1 {
		t.Fatalf("follower was not coalesced (coalesced=%d)", s.stats.CacheCoalesced.Value())
	}

	// The follower's event stream must terminate with its own done frame.
	eresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + follower.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	dec := json.NewDecoder(eresp.Body)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no terminal frame on follower stream")
		}
		var frame struct {
			State string `json:"state"`
		}
		if err := dec.Decode(&frame); err != nil {
			t.Fatalf("follower stream decode: %v", err)
		}
		if frame.State == StateDone {
			break
		}
	}
	if doc := waitTerminal(t, ts, leader.ID); doc.State != StateDone {
		t.Fatalf("leader state %s", doc.State)
	}
	eresp.Body.Close()
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

// TestCorruptArtifactRecovered: a corrupted on-disk artifact is detected,
// evicted, and transparently recomputed — never served.
func TestCorruptArtifactRecovered(t *testing.T) {
	check := leakCheck(t)
	dir := t.TempDir()
	spec := simSpec(quickSrc, 100_000)

	// Cold run populates the disk tier.
	var want []byte
	{
		s := New(Options{Workers: 2, Cache: diskStore(t, dir)})
		ts := httptest.NewServer(s.Handler())
		resp, raw := postJob(t, ts, spec, "?wait=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold submit: %d\n%s", resp.StatusCode, raw)
		}
		want = resultBytes(t, raw)
		s.Drain(10 * time.Second)
		ts.Close()
	}

	// Flip one payload byte in the stored artifact.
	path := corruptOneArtifact(t, dir)

	// A fresh process must detect the damage, evict the file, and
	// recompute the identical result. The direct probe shows the store's
	// side: the damaged artifact reads as a miss and leaves the disk.
	store := diskStore(t, dir)
	if _, ok := store.Get(ResultKey(spec)); ok {
		t.Fatalf("corrupted artifact was served")
	}
	if st := store.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", st.Corrupt)
	}
	if fileExists(path) {
		t.Errorf("corrupted artifact %s was not evicted from disk", path)
	}

	s := New(Options{Workers: 2, Cache: store})
	ts := httptest.NewServer(s.Handler())
	resp, raw := postJob(t, ts, spec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompute submit: %d\n%s", resp.StatusCode, raw)
	}
	if got := resultBytes(t, raw); !bytes.Equal(got, want) {
		t.Errorf("recomputed result differs:\ngot:  %s\nwant: %s", got, want)
	}
	if s.stats.CacheMisses.Value() != 1 {
		t.Errorf("corrupted artifact must be a miss, got misses=%d hits=%d",
			s.stats.CacheMisses.Value(), s.stats.CacheHits.Value())
	}

	// And the recomputed artifact serves the next submission.
	resp2, raw2 := postJob(t, ts, spec, "?wait=1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm submit: %d\n%s", resp2.StatusCode, raw2)
	}
	if got := resultBytes(t, raw2); !bytes.Equal(got, want) {
		t.Errorf("post-recovery cached result differs")
	}
	if s.stats.CacheHits.Value() != 1 {
		t.Errorf("post-recovery submission should hit, got hits=%d", s.stats.CacheHits.Value())
	}
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

// TestWarmGridSpeedup is the acceptance gate: a fully cached grid job is
// byte-identical to the cold run and at least 20x faster.
func TestWarmGridSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("grid job in -short mode")
	}
	check := leakCheck(t)
	s, ts := testService(t, Options{Workers: 2, GridParallel: 2, Cache: memStore(t)})

	spec := &JobSpec{Kind: KindGrid, Exp: "table2", Fuel: 2_000_000}
	coldStart := time.Now()
	resp, raw := postJob(t, ts, spec, "?wait=1")
	cold := time.Since(coldStart)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold grid: %d\n%s", resp.StatusCode, raw)
	}
	coldResult := resultBytes(t, raw)

	warmStart := time.Now()
	resp2, raw2 := postJob(t, ts, spec, "?wait=1")
	warm := time.Since(warmStart)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm grid: %d\n%s", resp2.StatusCode, raw2)
	}
	warmResult := resultBytes(t, raw2)

	if !bytes.Equal(coldResult, warmResult) {
		t.Errorf("warm grid result differs from cold")
	}
	if s.stats.CacheHits.Value() != 1 {
		t.Fatalf("warm grid did not hit the cache (hits=%d)", s.stats.CacheHits.Value())
	}
	if warm*20 > cold {
		t.Errorf("warm grid %v is not >=20x faster than cold %v", warm, cold)
	}
	t.Logf("grid table2: cold %v, warm %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}
