package serve

import (
	"errors"
	"strings"
	"testing"
)

// FuzzJobSpec drives the job-submission decoder and validator with
// arbitrary bytes. The contract under fuzz: never panic, and reject every
// malformed spec with a typed *SpecError — the HTTP layer depends on that
// type to map failures to 400s.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		// The documented happy paths.
		`{"kind":"compile","source":"int main(){return 0;}"}`,
		`{"kind":"compile","source":"int main(){return 0;}","opt":"O2"}`,
		`{"schema":"elag-serve/v1","kind":"simulate","source":"int main(){return 0;}",` +
			`"configs":[{"name":"base"},{"name":"compiler","table":256,"regs":1}],` +
			`"fuel":100000,"chunk":4096,"deadline_ms":30000}`,
		`{"kind":"simulate","workload":"023.eqntott","configs":[{"name":"hw-dual"}],"fuel":500000}`,
		`{"kind":"grid","fuel":250000}`,
		// Shapes that must be rejected, not crash.
		``,
		`{`,
		`null`,
		`[]`,
		`"compile"`,
		`{"kind":123}`,
		`{"kind":"compile","source":null}`,
		`{"kind":"simulate","configs":[{}],"fuel":1}`,
		`{"kind":"simulate","configs":"base","fuel":1}`,
		`{"kind":"grid","fuel":-5}`,
		`{"kind":"grid","fuel":1e30}`,
		`{"kind":"compile","source":"x"}{"kind":"grid"}`,
		`{"schema":"elag-serve/v2","kind":"grid","fuel":1}`,
		`{"kind":"simulate","source":"x","workload":"y","configs":[{"name":"base"}],"fuel":1}`,
		"{\"kind\":\"compile\",\"source\":\" \xff\"}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := DecodeSpec(strings.NewReader(body))
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("DecodeSpec(%.80q) returned untyped error %T: %v", body, err, err)
			}
			return
		}
		if err := spec.Validate(lim); err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Validate(%.80q) returned untyped error %T: %v", body, err, err)
			}
		}
	})
}
