package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"elag/internal/chaosinject"
	"elag/internal/obs"
)

// Extra JobError kinds produced by admission and lookup (the execution
// kinds live in job.go).
const (
	// ErrKindOverload — the job queue is full; retry after backoff.
	ErrKindOverload = "overload"
	// ErrKindDraining — the server is shutting down and admits nothing.
	ErrKindDraining = "draining"
	// ErrKindNotFound — no such job ID.
	ErrKindNotFound = "not-found"
)

// Drain policies (Options.DrainPolicy).
const (
	// DrainWait finishes queued and running jobs before exiting.
	DrainWait = "wait"
	// DrainCancel cancels queued and running jobs; each aborts within one
	// trace chunk.
	DrainCancel = "cancel"
)

// Options configures a Server. Zero fields take the documented defaults.
type Options struct {
	// Workers is the job worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; a full queue rejects submissions
	// with 429 + Retry-After (default 64).
	QueueDepth int
	// GridParallel is the harness parallelism each grid job runs with
	// (default 1: grid jobs are already whole-suite batches, so the pool,
	// not the job, is the unit of parallelism).
	GridParallel int
	// Limits are the per-job admission budgets (default DefaultLimits).
	Limits Limits
	// DrainPolicy picks what Drain does with in-flight jobs: DrainWait
	// (default) or DrainCancel.
	DrainPolicy string
}

// Server is the elag-serve core: a bounded job queue feeding a
// panic-isolated worker pool, plus the HTTP surface and drain machinery.
// Create with New, mount Handler, and call Drain exactly once to stop.
type Server struct {
	opts Options

	// baseCtx parents every job context; baseStop cancels them all (the
	// DrainCancel policy and the drain-timeout hammer).
	baseCtx  context.Context
	baseStop context.CancelFunc

	// admitMu orders enqueue against queue close: admission holds it
	// shared around the draining check + send, Drain holds it exclusive
	// while flipping draining and closing the queue. No send can race the
	// close.
	admitMu  sync.RWMutex
	draining bool
	queue    chan *Job

	pool *pool

	regMu  sync.Mutex
	reg    map[string]*Job
	nextID int64

	stats Stats
}

// New builds the server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.GridParallel <= 0 {
		opts.GridParallel = 1
	}
	if opts.Limits == (Limits{}) {
		opts.Limits = DefaultLimits()
	}
	if opts.DrainPolicy == "" {
		opts.DrainPolicy = DrainWait
	}
	s := &Server{
		opts:  opts,
		queue: make(chan *Job, opts.QueueDepth),
		reg:   map[string]*Job{},
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.pool = newPool(opts.Workers, opts.GridParallel, s.queue, &s.stats)
	return s
}

// Stats snapshots the service counters.
func (s *Server) Stats() *obs.ServeStatsDoc { return s.stats.Doc() }

// Draining reports whether Drain has started (readiness is its inverse).
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Submit admits spec as a new job: validates it against the budgets,
// reserves a queue slot, and registers the job. The returned *JobError is
// nil on success; its Kind distinguishes invalid specs, overload, and
// draining for the HTTP layer's status mapping.
func (s *Server) Submit(spec *JobSpec) (*Job, *JobError) {
	if err := spec.Validate(s.opts.Limits); err != nil {
		s.stats.RejectedInvalid.Add(1)
		return nil, &JobError{Kind: ErrKindInvalid, Message: err.Error()}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, spec.Deadline(s.opts.Limits))
	s.regMu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.regMu.Unlock()
	j := newJob(id, spec, ctx, cancel)

	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		cancel()
		s.stats.RejectedDraining.Add(1)
		return nil, &JobError{Kind: ErrKindDraining, Message: "server is draining"}
	}
	if chaosinject.QueueSaturated() {
		cancel()
		s.stats.RejectedQueueFull.Add(1)
		return nil, &JobError{Kind: ErrKindOverload, Message: "job queue is full (chaos: queue-saturate)"}
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.stats.RejectedQueueFull.Add(1)
		return nil, &JobError{Kind: ErrKindOverload,
			Message: fmt.Sprintf("job queue is full (%d queued)", s.opts.QueueDepth)}
	}
	s.regMu.Lock()
	s.reg[id] = j
	s.regMu.Unlock()
	s.stats.JobsAccepted.Add(1)
	return j, nil
}

// Lookup returns the job with the given ID, or nil.
func (s *Server) Lookup(id string) *Job {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.reg[id]
}

// Drain shuts the server down gracefully: admission stops (readyz goes
// 503, POST returns 503), the queue is closed, and in-flight jobs either
// finish (DrainWait) or are cancelled (DrainCancel). If the pool has not
// emptied after timeout, every remaining job is cancelled regardless of
// policy — cancellation lands within one trace chunk, so the second wait
// is bounded. Returns the final counters for the stats flush. Safe to
// call once; later calls return the counters without re-draining.
func (s *Server) Drain(timeout time.Duration) *obs.ServeStatsDoc {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		return s.stats.Doc()
	}
	s.draining = true
	close(s.queue)
	s.admitMu.Unlock()

	if s.opts.DrainPolicy == DrainCancel {
		s.baseStop()
	}
	done := make(chan struct{})
	go func() { s.pool.wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.baseStop()
		<-done
	}
	s.baseStop() // release the base context either way
	return s.stats.Doc()
}

// Handler returns the service's HTTP surface:
//
//	POST   /v1/jobs        submit (?wait=1 blocks until terminal; client
//	                       disconnect cancels the job)
//	GET    /v1/jobs/{id}   job status document
//	DELETE /v1/jobs/{id}   cancel
//	GET    /v1/stats       service counters (elag-serve-stats/v1)
//	GET    /healthz        liveness: 200 while the process serves at all
//	GET    /readyz         readiness: 200, or 503 once draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(r.Body)
	if err != nil {
		s.stats.RejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, &JobError{Kind: ErrKindInvalid, Message: err.Error()})
		return
	}
	j, jerr := s.Submit(spec)
	if jerr != nil {
		writeError(w, statusFor(jerr.Kind), jerr)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Tie the job to the request: a client that hangs up takes its
		// job with it (within one trace chunk).
		stop := context.AfterFunc(r.Context(), j.Cancel)
		defer stop()
		<-j.Done()
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound,
			&JobError{Kind: ErrKindNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound,
			&JobError{Kind: ErrKindNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteServeStatsJSON(w, s.stats.Doc())
}

// statusFor maps an admission JobError kind to its HTTP status.
func statusFor(kind string) int {
	switch kind {
	case ErrKindInvalid:
		return http.StatusBadRequest
	case ErrKindOverload:
		return http.StatusTooManyRequests
	case ErrKindDraining:
		return http.StatusServiceUnavailable
	case ErrKindNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, jerr *JobError) {
	if status == http.StatusTooManyRequests {
		// Backpressure contract: a full queue is transient by
		// construction (workers are draining it); tell clients when to
		// come back instead of letting them hammer.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, &ErrorDoc{Schema: Schema, Error: jerr})
}
