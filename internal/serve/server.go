package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"elag/internal/artifact"
	"elag/internal/chaosinject"
	"elag/internal/harness"
	"elag/internal/mech"
	"elag/internal/obs"
	"elag/internal/telemetry"

	// Every mechanism kind must be in the registry before
	// registerServerMetrics enumerates it for the per-kind series.
	_ "elag/internal/mech/all"
)

// Extra JobError kinds produced by admission and lookup (the execution
// kinds live in job.go).
const (
	// ErrKindOverload — the job queue is full; retry after backoff.
	ErrKindOverload = "overload"
	// ErrKindDraining — the server is shutting down and admits nothing.
	ErrKindDraining = "draining"
	// ErrKindNotFound — no such job ID.
	ErrKindNotFound = "not-found"
)

// Drain policies (Options.DrainPolicy).
const (
	// DrainWait finishes queued and running jobs before exiting.
	DrainWait = "wait"
	// DrainCancel cancels queued and running jobs; each aborts within one
	// trace chunk.
	DrainCancel = "cancel"
)

// Options configures a Server. Zero fields take the documented defaults.
type Options struct {
	// Workers is the job worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; a full queue rejects submissions
	// with 429 + Retry-After (default 64).
	QueueDepth int
	// GridParallel is the harness parallelism each grid job runs with
	// (default 1: grid jobs are already whole-suite batches, so the pool,
	// not the job, is the unit of parallelism).
	GridParallel int
	// Limits are the per-job admission budgets (default DefaultLimits).
	Limits Limits
	// DrainPolicy picks what Drain does with in-flight jobs: DrainWait
	// (default) or DrainCancel.
	DrainPolicy string
	// Cache, when non-nil, is the content-addressed result store: jobs
	// consult it before admission to the worker pool (a hit never costs a
	// queue slot), identical in-flight jobs coalesce via single-flight,
	// and grid jobs cache per-row through it. nil disables all caching —
	// every job executes.
	Cache *artifact.Store
	// Log receives the structured service log, with job-ID correlation
	// across admission → pool → exec → drain. nil logs nothing.
	Log *slog.Logger
}

// Server is the elag-serve core: a bounded job queue feeding a
// panic-isolated worker pool, plus the HTTP surface and drain machinery.
// Create with New, mount Handler, and call Drain exactly once to stop.
type Server struct {
	opts  Options
	start time.Time
	log   *slog.Logger

	// baseCtx parents every job context; baseStop cancels them all (the
	// DrainCancel policy and the drain-timeout hammer).
	baseCtx  context.Context
	baseStop context.CancelFunc

	// admitMu orders enqueue against queue close: admission holds it
	// shared around the draining check + send, Drain holds it exclusive
	// while flipping draining and closing the queue. No send can race the
	// close.
	admitMu  sync.RWMutex
	draining bool
	queue    chan *Job

	pool *pool

	regMu  sync.Mutex
	reg    map[string]*Job
	nextID int64

	// cache is the artifact store (Options.Cache; nil = caching off).
	// flight maps a result key to its in-flight computation: the first
	// miss becomes the leader, identical submissions while it runs become
	// followers, and the leader's terminal transition settles everyone.
	cache    *artifact.Store
	flightMu sync.Mutex
	flight   map[artifact.Key]*flightEntry

	// work aggregates replay-engine volume (chunks, streamed entries,
	// lab-cache hits/misses) across every job; /metrics reads it at
	// scrape time.
	work  harness.Counters
	stats *Stats
}

// New builds the server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.GridParallel <= 0 {
		opts.GridParallel = 1
	}
	if opts.Limits == (Limits{}) {
		opts.Limits = DefaultLimits()
	}
	if opts.DrainPolicy == "" {
		opts.DrainPolicy = DrainWait
	}
	if opts.Log == nil {
		// Quiet default: slog with a discarded sink, so call sites never
		// nil-check (go.mod is go 1.22, predating slog.DiscardHandler).
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		opts:   opts,
		start:  time.Now(),
		log:    opts.Log,
		queue:  make(chan *Job, opts.QueueDepth),
		reg:    map[string]*Job{},
		cache:  opts.Cache,
		flight: map[artifact.Key]*flightEntry{},
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.stats = newStats(s.start, s.cache)
	s.registerServerMetrics()
	s.pool = newPool(opts.Workers, opts.GridParallel, s.queue, s.stats, &s.work, s.cache, s.log)
	return s
}

// registerServerMetrics adds the scrape-time series whose values live on
// the server itself (queue, pool shape, uptime, chaos state, work volume,
// process CPU) to the stats registry. Everything is read at scrape time
// from its single source of truth, so /metrics never disagrees with the
// queue or the counters.
func (s *Server) registerServerMetrics() {
	reg := s.stats.Registry
	reg.GaugeFunc("elag_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("elag_queue_depth",
		"Jobs currently waiting in the queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("elag_queue_capacity",
		"Configured job queue capacity.",
		func() float64 { return float64(s.opts.QueueDepth) })
	reg.GaugeFunc("elag_workers",
		"Configured worker-pool size.",
		func() float64 { return float64(s.opts.Workers) })
	reg.GaugeFunc("elag_chaos_armed",
		"1 when chaos fault injection is armed (never in production).",
		func() float64 {
			if chaosinject.Enabled() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("elag_lab_cache_hits_total",
		"Grid lab-cache lookups that joined an existing lab.",
		func() float64 { return float64(s.work.LabHits.Load()) })
	reg.CounterFunc("elag_lab_cache_misses_total",
		"Grid lab-cache lookups that built a new lab.",
		func() float64 { return float64(s.work.LabMisses.Load()) })
	reg.CounterFunc("elag_chunks_total",
		"Trace chunks replayed across all jobs.",
		func() float64 { return float64(s.work.Chunks.Load()) })
	reg.CounterFunc("elag_insts_total",
		"Streamed trace entries replayed across all jobs (rate = replay throughput).",
		func() float64 { return float64(s.work.Insts.Load()) })
	reg.CounterFunc("elag_replay_memo_hits_total",
		"Block-timing memo lookups replayed from a recording.",
		func() float64 { return float64(s.work.MemoHits.Load()) })
	reg.CounterFunc("elag_replay_memo_misses_total",
		"Block-timing memo lookups that fell through to the interpreter.",
		func() float64 { return float64(s.work.MemoMisses.Load()) })
	reg.CounterFunc("elag_replay_memo_block_entries_total",
		"Block-head entries where the memoizer attempted a lookup (hits + misses).",
		func() float64 { return float64(s.work.MemoBlockEntries.Load()) })
	reg.GaugeFunc("elag_replay_kernel_level",
		"Highest specialized replay-kernel variant observed: 0 generic, 1 specialized dispatch, 2 fused DM cache leaves.",
		func() float64 { return float64(s.work.KernelLevel.Load()) })
	// One series per registered mechanism kind, pre-declared at startup so
	// the exposition is stable from the first scrape. The values read one
	// kind's aggregate mech.Stats at scrape time; the Stats algebra
	// (lookups == hits + misses, allocs <= trains) therefore holds on the
	// scraped values, and the chaos suite asserts it. Kinds whose specs
	// normalize to the paper structures (addrpred, earlycalc) account into
	// the paper counters inside the metrics documents and read zero here.
	for _, kind := range mech.Kinds() {
		read := func(get func(mech.Stats) int64) func() float64 {
			return func() float64 { return float64(get(s.work.MechStats(kind))) }
		}
		reg.CounterFunc("elag_mech_lookups_total",
			"Assist-path mechanism probes, by registry kind.",
			read(func(x mech.Stats) int64 { return x.Lookups }), "kind", kind)
		reg.CounterFunc("elag_mech_hits_total",
			"Mechanism probes that produced a predicted address, by registry kind.",
			read(func(x mech.Stats) int64 { return x.Hits }), "kind", kind)
		reg.CounterFunc("elag_mech_misses_total",
			"Mechanism probes that produced nothing, by registry kind.",
			read(func(x mech.Stats) int64 { return x.Misses }), "kind", kind)
		reg.CounterFunc("elag_mech_trains_total",
			"Retirement-side mechanism updates, by registry kind.",
			read(func(x mech.Stats) int64 { return x.Trains }), "kind", kind)
		reg.CounterFunc("elag_mech_allocs_total",
			"Mechanism entry allocations (a subset of trains), by registry kind.",
			read(func(x mech.Stats) int64 { return x.Allocs }), "kind", kind)
	}
	reg.CounterFunc("elag_process_cpu_seconds_total",
		"Cumulative process CPU time (user + system).",
		processCPUSeconds)
	if s.cache != nil {
		s.registerCacheMetrics()
	}
}

// registerCacheMetrics adds the artifact-store series. Only registered
// with a cache attached, so a cacheless server's exposition stays
// byte-compatible with pre-cache deployments.
func (s *Server) registerCacheMetrics() {
	reg := s.stats.Registry
	st := func(read func(artifact.Stats) int64) func() float64 {
		return func() float64 { return float64(read(s.cache.Stats())) }
	}
	reg.CounterFunc("elag_artifact_hits_total",
		"Artifact-store hits, by tier.",
		st(func(x artifact.Stats) int64 { return x.MemHits }), "tier", "mem")
	reg.CounterFunc("elag_artifact_hits_total",
		"Artifact-store hits, by tier.",
		st(func(x artifact.Stats) int64 { return x.DiskHits }), "tier", "disk")
	reg.CounterFunc("elag_artifact_misses_total",
		"Artifact-store lookups that found nothing valid.",
		st(func(x artifact.Stats) int64 { return x.Misses }))
	reg.CounterFunc("elag_artifact_evictions_total",
		"Artifacts evicted past the size budgets, by tier.",
		st(func(x artifact.Stats) int64 { return x.MemEvictions }), "tier", "mem")
	reg.CounterFunc("elag_artifact_evictions_total",
		"Artifacts evicted past the size budgets, by tier.",
		st(func(x artifact.Stats) int64 { return x.DiskEvictions }), "tier", "disk")
	reg.CounterFunc("elag_artifact_corrupt_total",
		"On-disk artifacts that failed integrity verification and were evicted.",
		st(func(x artifact.Stats) int64 { return x.Corrupt }))
	reg.GaugeFunc("elag_artifact_bytes",
		"Artifact-store resident size in bytes, by tier.",
		st(func(x artifact.Stats) int64 { return x.MemBytes }), "tier", "mem")
	reg.GaugeFunc("elag_artifact_bytes",
		"Artifact-store resident size in bytes, by tier.",
		st(func(x artifact.Stats) int64 { return x.DiskBytes }), "tier", "disk")
	reg.GaugeFunc("elag_artifact_entries",
		"Artifact-store entry count, by tier.",
		st(func(x artifact.Stats) int64 { return x.MemEntries }), "tier", "mem")
	reg.GaugeFunc("elag_artifact_entries",
		"Artifact-store entry count, by tier.",
		st(func(x artifact.Stats) int64 { return x.DiskEntries }), "tier", "disk")
}

// Metrics exposes the telemetry registry (tests, embedding servers).
func (s *Server) Metrics() *telemetry.Registry { return s.stats.Registry }

// Stats snapshots the service counters.
func (s *Server) Stats() *obs.ServeStatsDoc { return s.stats.Doc() }

// Draining reports whether Drain has started (readiness is its inverse).
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Submit admits spec as a new job: validates it against the budgets,
// reserves a queue slot, and registers the job. The returned *JobError is
// nil on success; its Kind distinguishes invalid specs, overload, and
// draining for the HTTP layer's status mapping.
//
// With a cache attached, admission takes one of three paths, each
// counted exactly once (accepted = hits + misses + coalesced):
//
//   - hit: the artifact store has the result; the job is registered and
//     goes terminal immediately with the stored bytes, never touching
//     the queue or a worker.
//   - coalesced: an identical job is already executing; this one becomes
//     a follower — own ID, own status, own progress stream (its
//     subscribers see the synthetic done frame) — settled by the
//     leader's terminal transition. A follower's own deadline and
//     cancellation still apply, enforced by a context watcher since no
//     worker ever owns it.
//   - miss: the job becomes the single-flight leader and is enqueued
//     normally.
func (s *Server) Submit(spec *JobSpec) (*Job, *JobError) {
	if err := spec.Validate(s.opts.Limits); err != nil {
		s.stats.RejectedInvalid.Add(1)
		s.log.Warn("job rejected", "reason", "invalid", "error", err.Error())
		return nil, &JobError{Kind: ErrKindInvalid, Message: err.Error()}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, spec.Deadline(s.opts.Limits))
	s.regMu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.regMu.Unlock()
	j := newJob(id, spec, ctx, cancel, s.stats, s.log)

	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		cancel()
		s.stats.RejectedDraining.Add(1)
		s.log.Warn("job rejected", "reason", "draining", "kind", spec.Kind)
		return nil, &JobError{Kind: ErrKindDraining, Message: "server is draining"}
	}
	var key artifact.Key
	if s.cache != nil {
		key = ResultKey(spec)
		if data, ok := s.cache.Get(key); ok {
			s.accept(j)
			s.stats.CacheHits.Add(1)
			j.log.Info("job served from cache", "bytes", len(data))
			j.finish(json.RawMessage(data), nil)
			return j, nil
		}
	}
	if chaosinject.QueueSaturated() {
		cancel()
		s.stats.RejectedQueueFull.Add(1)
		s.log.Warn("job rejected", "reason", "queue_full", "kind", spec.Kind, "chaos", true)
		return nil, &JobError{Kind: ErrKindOverload, Message: "job queue is full (chaos: queue-saturate)"}
	}
	if s.cache != nil {
		s.flightMu.Lock()
		if fe, ok := s.flight[key]; ok {
			fe.followers = append(fe.followers, j)
			leaderID := fe.leader.ID
			s.flightMu.Unlock()
			s.accept(j)
			s.stats.CacheCoalesced.Add(1)
			// No worker will ever own this job, so its deadline and
			// cancellation must settle it directly. finish is idempotent:
			// if the leader already delivered, this no-ops.
			context.AfterFunc(j.ctx, func() {
				j.finish(nil, classifyErr(j.ctx.Err()))
			})
			j.log.Info("job coalesced", "leader", leaderID)
			return j, nil
		}
		// Become the leader. The flight entry and terminal hook are
		// installed before the queue send (a worker may dequeue and finish
		// the job the instant it is enqueued), and flightMu stays held
		// across the send so no follower can attach to a leader that then
		// fails admission.
		s.flight[key] = &flightEntry{leader: j}
		j.onTerminal = func(leader *Job) { s.flightDone(key, leader) }
		select {
		case s.queue <- j:
			s.flightMu.Unlock()
		default:
			delete(s.flight, key)
			j.onTerminal = nil
			s.flightMu.Unlock()
			cancel()
			s.stats.RejectedQueueFull.Add(1)
			s.log.Warn("job rejected", "reason", "queue_full", "kind", spec.Kind,
				"queue_depth", s.opts.QueueDepth)
			return nil, &JobError{Kind: ErrKindOverload,
				Message: fmt.Sprintf("job queue is full (%d queued)", s.opts.QueueDepth)}
		}
		s.accept(j)
		s.stats.CacheMisses.Add(1)
		j.log.Info("job admitted", "queued", len(s.queue))
		return j, nil
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.stats.RejectedQueueFull.Add(1)
		s.log.Warn("job rejected", "reason", "queue_full", "kind", spec.Kind,
			"queue_depth", s.opts.QueueDepth)
		return nil, &JobError{Kind: ErrKindOverload,
			Message: fmt.Sprintf("job queue is full (%d queued)", s.opts.QueueDepth)}
	}
	s.accept(j)
	j.log.Info("job admitted", "queued", len(s.queue))
	return j, nil
}

// accept registers an admitted job and settles the admission side of the
// counter algebra: accepted and in-flight move together here; the
// terminal transition settles the other side.
func (s *Server) accept(j *Job) {
	s.regMu.Lock()
	s.reg[j.ID] = j
	s.regMu.Unlock()
	s.stats.JobsAccepted.Add(1)
	s.stats.InFlight.Add(1)
}

// Lookup returns the job with the given ID, or nil.
func (s *Server) Lookup(id string) *Job {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.reg[id]
}

// Drain shuts the server down gracefully: admission stops (readyz goes
// 503, POST returns 503), the queue is closed, and in-flight jobs either
// finish (DrainWait) or are cancelled (DrainCancel). If the pool has not
// emptied after timeout, every remaining job is cancelled regardless of
// policy — cancellation lands within one trace chunk, so the second wait
// is bounded. Returns the final counters for the stats flush. Safe to
// call once; later calls return the counters without re-draining.
func (s *Server) Drain(timeout time.Duration) *obs.ServeStatsDoc {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		return s.stats.Doc()
	}
	s.draining = true
	close(s.queue)
	s.admitMu.Unlock()
	s.log.Info("drain started", "policy", s.opts.DrainPolicy, "timeout", timeout,
		"in_flight", s.stats.InFlight.Value())

	if s.opts.DrainPolicy == DrainCancel {
		s.baseStop()
	}
	done := make(chan struct{})
	go func() { s.pool.wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.log.Warn("drain timeout; cancelling remaining jobs")
		s.baseStop()
		<-done
	}
	s.baseStop() // release the base context either way
	doc := s.stats.Doc()
	s.log.Info("drain complete", "done", doc.JobsDone, "failed", doc.JobsFailed,
		"canceled", doc.JobsCanceled, "panics", doc.PanicsRecovered)
	return doc
}

// Handler returns the service's HTTP surface:
//
//	POST   /v1/jobs               submit (?wait=1 blocks until terminal;
//	                              client disconnect cancels the job)
//	GET    /v1/jobs/{id}          job status document
//	GET    /v1/jobs/{id}/events   NDJSON progress stream, terminated by a
//	                              "done" frame (?wait=1 adds heartbeats)
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/stats              service counters (elag-serve-stats/v3)
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness: 200 while the process serves
//	GET    /readyz                readiness: 200, or 503 once draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(r.Body)
	if err != nil {
		s.stats.RejectedInvalid.Add(1)
		s.log.Warn("job rejected", "reason", "invalid", "error", err.Error())
		writeError(w, http.StatusBadRequest, &JobError{Kind: ErrKindInvalid, Message: err.Error()})
		return
	}
	j, jerr := s.Submit(spec)
	if jerr != nil {
		writeError(w, statusFor(jerr.Kind), jerr)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Tie the job to the request: a client that hangs up takes its
		// job with it (within one trace chunk).
		stop := context.AfterFunc(r.Context(), j.Cancel)
		defer stop()
		<-j.Done()
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound,
			&JobError{Kind: ErrKindNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// defaultHeartbeat paces ?wait=1 event streams when the job is silent.
const defaultHeartbeat = 10 * time.Second

// handleEvents streams a job's live progress frames as NDJSON: one JSON
// object per line, flushed per frame, ending with a "done" frame carrying
// the terminal state. ?wait=1 interleaves heartbeat frames (default every
// 10s, ?heartbeat=DUR to override) so long-silent jobs are
// distinguishable from dead connections. Subscribing costs the job
// nothing until the subscription exists, and a subscriber that arrives
// after the job finished still gets the terminator. Disconnecting only
// unsubscribes — it never cancels the job (unlike POST ?wait=1, an
// events watcher is an observer, not the owner).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound,
			&JobError{Kind: ErrKindNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	var hb time.Duration
	if r.URL.Query().Get("wait") != "" {
		hb = defaultHeartbeat
	}
	if v := r.URL.Query().Get("heartbeat"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest,
				&JobError{Kind: ErrKindInvalid, Message: fmt.Sprintf("bad heartbeat %q", v)})
			return
		}
		hb = d
	}

	ch, unsub := j.progress.Subscribe(64)
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc := json.NewEncoder(w)

	var hbc <-chan time.Time
	if hb > 0 {
		t := time.NewTicker(hb)
		defer t.Stop()
		hbc = t.C
	}
stream:
	for {
		select {
		case <-r.Context().Done():
			return
		case f, ok := <-ch:
			if !ok {
				break stream // job terminal and buffered frames drained
			}
			if enc.Encode(f) != nil {
				return
			}
			flush()
		case <-hbc:
			if enc.Encode(telemetry.Frame{Type: "heartbeat", Job: j.ID}) != nil {
				return
			}
			flush()
		}
	}
	// Terminator, written from the job's terminal status rather than the
	// broadcast channel so even late subscribers are guaranteed to see it.
	st := j.Status()
	f := telemetry.Frame{Type: "done", Job: j.ID, State: st.State}
	if st.Error != nil {
		f.Error = st.Error.Message
	}
	_ = enc.Encode(f)
	flush()
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound,
			&JobError{Kind: ErrKindNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteServeStatsJSON(w, s.stats.Doc())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.stats.Registry.Write(w)
}

// statusFor maps an admission JobError kind to its HTTP status.
func statusFor(kind string) int {
	switch kind {
	case ErrKindInvalid:
		return http.StatusBadRequest
	case ErrKindOverload:
		return http.StatusTooManyRequests
	case ErrKindDraining:
		return http.StatusServiceUnavailable
	case ErrKindNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, jerr *JobError) {
	if status == http.StatusTooManyRequests {
		// Backpressure contract: a full queue is transient by
		// construction (workers are draining it); tell clients when to
		// come back instead of letting them hammer.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, &ErrorDoc{Schema: Schema, Error: jerr})
}
