//go:build unix

package serve

import (
	"syscall"
	"time"
)

// processCPUSeconds returns the process's cumulative CPU time (user +
// system) for the elag_process_cpu_seconds_total counter. Getrusage is a
// cheap syscall and only runs at scrape time, never on the job hot path.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()).Seconds()
}
