package serve

import (
	"time"

	"elag/internal/artifact"
	"elag/internal/chaosinject"
	"elag/internal/obs"
	"elag/internal/telemetry"
)

// Label vocabularies for the /metrics registry. Fixed at process start:
// the cardinality policy (DESIGN.md §14) is that every series is declared
// here, at registration — nothing mints series per job, per PC, or per
// client. Per-job detail belongs to the progress stream.
var (
	jobKinds    = []string{KindCompile, KindSimulate, KindGrid}
	jobOutcomes = []string{StateDone, StateFailed, StateCanceled}
)

// Stats holds the service's counters, now backed by the telemetry
// registry so /metrics and /v1/stats read the same atomics — the two
// surfaces can never disagree. All instruments are lock-free; admission,
// workers, and scrapes never contend.
//
// The counter algebra is settled at exactly one place per event:
// admission increments JobsAccepted and InFlight, the job's terminal
// transition (Job.terminalLocked) increments one completed{kind,outcome}
// cell, observes the wall histogram, and decrements InFlight. So at any
// quiescent point:
//
//	accepted = done + failed + canceled + in-flight
//	wall{kind}.count = Σ_outcome completed{kind,outcome}
//
// which the invariant tests assert under chaos.
type Stats struct {
	start    time.Time
	Registry *telemetry.Registry

	JobsAccepted      *telemetry.Counter
	RejectedInvalid   *telemetry.Counter
	RejectedQueueFull *telemetry.Counter
	RejectedDraining  *telemetry.Counter

	PanicsRecovered *telemetry.Counter
	WorkersReplaced *telemetry.Counter

	// Result-cache admission outcomes. Every accepted job takes exactly
	// one of the three paths, so with the cache enabled:
	//
	//	accepted = cache_hits + cache_misses + cache_coalesced
	//
	// (hits return stored bytes, misses become single-flight leaders and
	// execute, coalesced jobs follow an in-flight leader). With the cache
	// disabled all three stay zero.
	CacheHits      *telemetry.Counter
	CacheMisses    *telemetry.Counter
	CacheCoalesced *telemetry.Counter

	InFlight    *telemetry.Gauge
	WorkersBusy *telemetry.Gauge

	// store backs the artifact-level cells of Doc (sizes, evictions,
	// corruption); nil when the server runs cacheless.
	store *artifact.Store

	completed map[string]map[string]*telemetry.Counter // kind → outcome
	wall      map[string]*telemetry.Histogram          // kind
	queueWait *telemetry.Histogram
}

// newStats builds the counter set and registers every series. store (may
// be nil) is the artifact store whose sizes Doc reports.
func newStats(start time.Time, store *artifact.Store) *Stats {
	reg := telemetry.NewRegistry()
	s := &Stats{
		start:    start,
		Registry: reg,
		store:    store,

		JobsAccepted: reg.Counter("elag_jobs_admitted_total",
			"Jobs accepted into the queue."),
		RejectedInvalid: reg.Counter("elag_jobs_rejected_total",
			"Jobs rejected at admission, by reason.", "reason", "invalid"),
		RejectedQueueFull: reg.Counter("elag_jobs_rejected_total",
			"Jobs rejected at admission, by reason.", "reason", "queue_full"),
		RejectedDraining: reg.Counter("elag_jobs_rejected_total",
			"Jobs rejected at admission, by reason.", "reason", "draining"),

		PanicsRecovered: reg.Counter("elag_panics_recovered_total",
			"Job panics recovered by the worker pool."),
		WorkersReplaced: reg.Counter("elag_workers_replaced_total",
			"Workers replaced after a recovered panic."),

		CacheHits: reg.Counter("elag_result_cache_hits_total",
			"Accepted jobs answered from the artifact store without executing."),
		CacheMisses: reg.Counter("elag_result_cache_misses_total",
			"Accepted jobs that became single-flight leaders and executed."),
		CacheCoalesced: reg.Counter("elag_result_cache_coalesced_total",
			"Accepted jobs coalesced onto an identical in-flight leader."),

		InFlight: reg.Gauge("elag_jobs_in_flight",
			"Accepted jobs not yet in a terminal state."),
		WorkersBusy: reg.Gauge("elag_workers_busy",
			"Workers currently executing a job."),

		completed: map[string]map[string]*telemetry.Counter{},
		wall:      map[string]*telemetry.Histogram{},
		queueWait: reg.Histogram("elag_job_queue_wait_seconds",
			"Time jobs spent queued before a worker started them.", nil),
	}
	for _, kind := range jobKinds {
		s.completed[kind] = map[string]*telemetry.Counter{}
		for _, outcome := range jobOutcomes {
			s.completed[kind][outcome] = reg.Counter("elag_jobs_completed_total",
				"Jobs reaching a terminal state, by kind and outcome.",
				"kind", kind, "outcome", outcome)
		}
		s.wall[kind] = reg.Histogram("elag_job_wall_seconds",
			"Job wall time from admission to terminal state, by kind.",
			nil, "kind", kind)
	}
	return s
}

// jobStarted records the queued→running transition.
func (s *Stats) jobStarted(queueWait time.Duration) {
	s.queueWait.Observe(queueWait.Seconds())
}

// jobFinished settles one job's terminal accounting. outcome is the
// terminal state (done/failed/canceled); kind has passed Validate, so the
// map lookups cannot miss.
func (s *Stats) jobFinished(kind, outcome string, wall time.Duration) {
	s.completed[kind][outcome].Inc()
	s.wall[kind].Observe(wall.Seconds())
	s.InFlight.Add(-1)
}

// outcomeTotal sums one outcome across kinds (the /v1/stats aggregates).
func (s *Stats) outcomeTotal(outcome string) int64 {
	var n int64
	for _, kind := range jobKinds {
		n += s.completed[kind][outcome].Value()
	}
	return n
}

// Doc snapshots the counters as the schema-versioned document flushed on
// drain and served at /v1/stats.
func (s *Stats) Doc() *obs.ServeStatsDoc {
	doc := &obs.ServeStatsDoc{
		Schema:            obs.ServeStatsSchema,
		UptimeSeconds:     time.Since(s.start).Seconds(),
		JobsAccepted:      s.JobsAccepted.Value(),
		RejectedInvalid:   s.RejectedInvalid.Value(),
		RejectedQueueFull: s.RejectedQueueFull.Value(),
		RejectedDraining:  s.RejectedDraining.Value(),
		JobsDone:          s.outcomeTotal(StateDone),
		JobsFailed:        s.outcomeTotal(StateFailed),
		JobsCanceled:      s.outcomeTotal(StateCanceled),
		JobsInFlight:      s.InFlight.Value(),
		PanicsRecovered:   s.PanicsRecovered.Value(),
		WorkersReplaced:   s.WorkersReplaced.Value(),
		CacheHits:         s.CacheHits.Value(),
		CacheMisses:       s.CacheMisses.Value(),
		CacheCoalesced:    s.CacheCoalesced.Value(),
		ChaosArmed:        chaosinject.Enabled(),
		Chaos:             chaosinject.Spec(),
	}
	if s.store != nil {
		st := s.store.Stats()
		doc.CacheEvictions = st.MemEvictions + st.DiskEvictions
		doc.CacheCorrupt = st.Corrupt
		doc.CacheMemBytes = st.MemBytes
		doc.CacheDiskBytes = st.DiskBytes
	}
	return doc
}
