package serve

import (
	"sync/atomic"

	"elag/internal/obs"
)

// Stats holds the service's lifetime counters. All fields are atomics so
// admission, workers, and the stats endpoint never contend on a lock.
type Stats struct {
	JobsAccepted      atomic.Int64
	RejectedInvalid   atomic.Int64
	RejectedQueueFull atomic.Int64
	RejectedDraining  atomic.Int64

	JobsDone     atomic.Int64
	JobsFailed   atomic.Int64
	JobsCanceled atomic.Int64

	PanicsRecovered atomic.Int64
	WorkersReplaced atomic.Int64
}

// Doc snapshots the counters as the schema-versioned document flushed on
// drain and served at /v1/stats.
func (s *Stats) Doc() *obs.ServeStatsDoc {
	return &obs.ServeStatsDoc{
		Schema:            obs.ServeStatsSchema,
		JobsAccepted:      s.JobsAccepted.Load(),
		RejectedInvalid:   s.RejectedInvalid.Load(),
		RejectedQueueFull: s.RejectedQueueFull.Load(),
		RejectedDraining:  s.RejectedDraining.Load(),
		JobsDone:          s.JobsDone.Load(),
		JobsFailed:        s.JobsFailed.Load(),
		JobsCanceled:      s.JobsCanceled.Load(),
		PanicsRecovered:   s.PanicsRecovered.Load(),
		WorkersReplaced:   s.WorkersReplaced.Load(),
	}
}
