package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"elag"
	"elag/internal/chaosinject"
)

// quickSrc is a small program (a few hundred dynamic instructions) for
// jobs that should finish instantly.
const quickSrc = `
int arr[16];

int main() {
	int s = 0;
	for (int i = 0; i < 16; i++) {
		arr[i] = i * 3;
		s = s + arr[i];
	}
	print_int(s);
	return s;
}
`

// busySrc runs a few million dynamic instructions — long enough that a
// deadline, cancellation, or injected slow chunks land mid-run.
const busySrc = `
int main() {
	int s = 0;
	for (int i = 0; i < 1000000; i++) {
		s = s + i;
	}
	return s;
}
`

func simSpec(src string, fuel int64) *JobSpec {
	return &JobSpec{
		Kind:   KindSimulate,
		Source: src,
		Configs: []ConfigSpec{
			{Name: "base"},
			{Name: "compiler", Table: 256},
		},
		Fuel: fuel,
	}
}

// leakCheck snapshots the goroutine count; the returned func fails the
// test if, after a settle window, more goroutines are alive than before.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			runtime.GC()
			if n = runtime.NumGoroutine(); n <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before, %d after settle\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}

// testService starts a Server plus its HTTP front end. Cleanup drains and
// closes both in the right order.
func testService(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain(10 * time.Second)
		ts.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec *JobSpec, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (*http.Response, StatusDoc) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return resp, doc
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) StatusDoc {
	return waitTerminalFor(t, ts, id, 30*time.Second)
}

func waitTerminalFor(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) StatusDoc {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		_, doc := getStatus(t, ts, id)
		switch doc.State {
		case StateDone, StateFailed, StateCanceled:
			return doc
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return StatusDoc{}
}

func TestCompileJobWait(t *testing.T) {
	check := leakCheck(t)
	s, ts := testService(t, Options{Workers: 2})
	resp, raw := postJob(t, ts, &JobSpec{Kind: KindCompile, Source: quickSrc}, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: status %d, body %s", resp.StatusCode, raw)
	}
	var doc struct {
		Schema string `json:"schema"`
		ID     string `json:"id"`
		Kind   string `json:"kind"`
		State  string `json:"state"`
		Result struct {
			MachineInsts int    `json:"machine_insts"`
			Pipeline     string `json:"pipeline"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}
	if doc.Schema != Schema {
		t.Errorf("schema = %q, want %q", doc.Schema, Schema)
	}
	if doc.State != StateDone {
		t.Errorf("state = %q, want done (body %s)", doc.State, raw)
	}
	if doc.Result.MachineInsts == 0 || doc.Result.Pipeline == "" {
		t.Errorf("compile result missing program facts: %s", raw)
	}
	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

// TestSimulateJobMatchesEngine is the byte-identical contract: a simulate
// job's metrics documents must serialize exactly as the same run made
// directly through the facade (the path elag-sim takes).
func TestSimulateJobMatchesEngine(t *testing.T) {
	_, ts := testService(t, Options{Workers: 2})
	spec := simSpec(quickSrc, 300_000)
	resp, raw := postJob(t, ts, spec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var doc struct {
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.State != StateDone {
		t.Fatalf("state = %q, body %s", doc.State, raw)
	}

	// The same run, straight through the engine.
	p, err := elag.Build(quickSrc, elag.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var specs []elag.BatchSpec
	for _, c := range spec.Configs {
		cfg, err := elag.NamedConfig(c.Name, c.Table, c.Regs)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, elag.BatchSpec{Config: cfg})
	}
	metrics, runRes, err := p.SimulateBatch(specs, spec.Fuel, spec.Chunk)
	if err != nil {
		t.Fatal(err)
	}
	want := &SimulateResult{Output: runRes.Output()}
	for i, m := range metrics {
		want.Metrics = append(want.Metrics, elag.NewMetricsDoc("source", spec.Configs[i].Name, m))
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the job's result through the same marshal.
	var got SimulateResult
	if err := json.Unmarshal(doc.Result, &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("service result diverges from direct engine run:\ngot  %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestAsyncLifecycleAndCancel(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1})
	// Async submit returns 202 with a queued/running document.
	resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d, body %s", resp.StatusCode, raw)
	}
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID == "" || doc.Schema != Schema {
		t.Fatalf("bad submit doc: %s", raw)
	}
	if got := waitTerminal(t, ts, doc.ID); got.State != StateDone {
		t.Fatalf("job ended %q (error %+v), want done", got.State, got.Error)
	}

	// DELETE cancels: a busy job aborts within one chunk.
	resp, raw = postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit busy: status %d, body %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+doc.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	got := waitTerminal(t, ts, doc.ID)
	if got.State != StateCanceled {
		t.Fatalf("cancelled job ended %q, want canceled", got.State)
	}
	if got.Error == nil || got.Error.Kind != ErrKindCanceled {
		t.Fatalf("cancelled job error = %+v, want kind %q", got.Error, ErrKindCanceled)
	}
}

func TestRejectsInvalidSpecs(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1})
	bodies := []string{
		``,                                // empty
		`{`,                               // truncated
		`[]`,                              // wrong JSON shape
		`{"kind":"simulate"}{"k":1}`,      // trailing document
		`{"kind":"nope"}`,                 // unknown kind
		`{"kind":"compile"}`,              // compile without source
		`{"kind":"simulate","fuel":1}`,    // simulate without program
		`{"kind":"grid"}`,                 // grid without fuel budget
		`{"kind":"compile","bogus":true}`, // unknown field
		`{"schema":"elag-serve/v0",` + // wrong schema version
			`"kind":"compile","source":"int main(){return 0;}"}`,
		`{"kind":"simulate","workload":"no-such-bench",` + // unknown workload
			`"configs":[{"name":"base"}],"fuel":1000}`,
		`{"kind":"simulate","source":"int main(){return 0;}",` + // unknown config
			`"configs":[{"name":"warp"}],"fuel":1000}`,
		`{"kind":"simulate","source":"int main(){return 0;}",` + // over fuel budget
			`"configs":[{"name":"base"}],"fuel":999999999999}`,
		`{"kind":"simulate","source":"int main(){return 0;}",` + // over deadline budget
			`"configs":[{"name":"base"}],"fuel":1000,"deadline_ms":99999999}`,
	}
	for _, body := range bodies {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %.60q: status %d, want 400 (%s)", body, resp.StatusCode, raw)
			continue
		}
		var doc ErrorDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("body %.60q: malformed error doc %s", body, raw)
			continue
		}
		if doc.Schema != Schema || doc.Error == nil || doc.Error.Kind != ErrKindInvalid {
			t.Errorf("body %.60q: error doc %s, want schema %q kind %q", body, raw, Schema, ErrKindInvalid)
		}
	}

	// Unknown job IDs are typed 404s.
	resp, doc := getStatus(t, ts, "job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
	_ = doc
}

func TestQueueBackpressure(t *testing.T) {
	defer chaosinject.Reset()
	chaosinject.Reset()
	// One worker crawling through slow chunks, a one-deep queue: the
	// third job must bounce with 429 + Retry-After.
	if err := chaosinject.Parse("slow-chunk=50ms"); err != nil {
		t.Fatal(err)
	}
	_, ts := testService(t, Options{Workers: 1, QueueDepth: 1, DrainPolicy: DrainCancel})
	resp1, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d, body %s", resp1.StatusCode, raw)
	}
	resp2, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d, body %s", resp2.StatusCode, raw)
	}
	resp3, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429 (body %s)", resp3.StatusCode, raw)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var doc ErrorDoc
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Error == nil || doc.Error.Kind != ErrKindOverload {
		t.Fatalf("429 body %s, want kind %q", raw, ErrKindOverload)
	}
}

func TestChaosPanicIsolation(t *testing.T) {
	defer chaosinject.Reset()
	chaosinject.Reset()
	check := leakCheck(t)
	if err := chaosinject.Parse("panic-every=2"); err != nil {
		t.Fatal(err)
	}
	s, ts := testService(t, Options{Workers: 2})

	// Run enough jobs to crash several workers. Every job must reach a
	// terminal state: done, or failed with a typed panic error carrying a
	// stack — never a hung job, never a dead process.
	const jobs = 8
	var done, panicked int
	for i := 0; i < jobs; i++ {
		resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "?wait=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		var doc StatusDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		switch doc.State {
		case StateDone:
			done++
		case StateFailed:
			if doc.Error == nil || doc.Error.Kind != ErrKindPanic {
				t.Fatalf("job %d failed with %+v, want kind %q", i, doc.Error, ErrKindPanic)
			}
			if !strings.Contains(doc.Error.Stack, "goroutine") {
				t.Fatalf("job %d panic error carries no stack", i)
			}
			panicked++
		default:
			t.Fatalf("job %d ended %q", i, doc.State)
		}
	}
	if panicked == 0 || done == 0 {
		t.Fatalf("panic-every=2 over %d jobs: %d done, %d panicked — injection not exercised", jobs, done, panicked)
	}

	// Liveness: the service still answers, and replacement workers still
	// run jobs (disarm chaos so they succeed).
	chaosinject.Reset()
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: %v %v", hresp, err)
	}
	hresp.Body.Close()
	resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "?wait=1")
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil || resp.StatusCode != http.StatusOK || doc.State != StateDone {
		t.Fatalf("job after worker replacement: status %d state %q body %s", resp.StatusCode, doc.State, raw)
	}

	stats := s.Stats()
	if stats.PanicsRecovered != int64(panicked) || stats.WorkersReplaced != int64(panicked) {
		t.Errorf("stats: recovered=%d replaced=%d, want both %d",
			stats.PanicsRecovered, stats.WorkersReplaced, panicked)
	}

	s.Drain(10 * time.Second)
	ts.Close()
	check()
}

func TestChaosSlowChunkDeadline(t *testing.T) {
	defer chaosinject.Reset()
	chaosinject.Reset()
	if err := chaosinject.Parse("slow-chunk=20ms"); err != nil {
		t.Fatal(err)
	}
	_, ts := testService(t, Options{Workers: 1, DrainPolicy: DrainCancel})
	spec := simSpec(busySrc, 40_000_000)
	spec.DeadlineMS = 150
	resp, raw := postJob(t, ts, spec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.State != StateFailed || doc.Error == nil || doc.Error.Kind != ErrKindDeadline {
		t.Fatalf("slow job under 150ms deadline ended %q (%+v), want failed/deadline", doc.State, doc.Error)
	}
	// The service is fine; the job died, not the server.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after deadline: %v %v", hresp, err)
	}
	hresp.Body.Close()
}

func TestChaosQueueSaturate(t *testing.T) {
	defer chaosinject.Reset()
	chaosinject.Reset()
	if err := chaosinject.Parse("queue-saturate"); err != nil {
		t.Fatal(err)
	}
	_, ts := testService(t, Options{Workers: 1})
	resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429 (body %s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var doc ErrorDoc
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Schema != Schema ||
		doc.Error == nil || doc.Error.Kind != ErrKindOverload {
		t.Fatalf("429 body %s, want well-formed %q error", raw, ErrKindOverload)
	}
}

func TestGracefulDrain(t *testing.T) {
	check := leakCheck(t)
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		var doc StatusDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, doc.ID)
	}

	stats := s.Drain(10 * time.Second)

	// Wait policy: everything admitted before the drain ran to done.
	for _, id := range ids {
		_, doc := getStatus(t, ts, id)
		if doc.State != StateDone {
			t.Errorf("job %s ended %q after wait-drain, want done (%+v)", id, doc.State, doc.Error)
		}
	}
	if stats.JobsAccepted != 4 || stats.JobsDone != 4 {
		t.Errorf("drain stats: accepted=%d done=%d, want 4/4", stats.JobsAccepted, stats.JobsDone)
	}

	// Drained: liveness holds, readiness and admission refuse.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while drained: %v %v", hresp, err)
	}
	hresp.Body.Close()
	rresp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil || rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained: %v %v, want 503", rresp, err)
	}
	rresp.Body.Close()
	resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: status %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	var edoc ErrorDoc
	if err := json.Unmarshal(raw, &edoc); err != nil || edoc.Error == nil || edoc.Error.Kind != ErrKindDraining {
		t.Fatalf("drained submit body %s, want kind %q", raw, ErrKindDraining)
	}

	ts.Close()
	check()
}

func TestDrainCancelPolicy(t *testing.T) {
	check := leakCheck(t)
	s := New(Options{Workers: 1, DrainPolicy: DrainCancel})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick it up, then cancel-drain: the job
	// must abort within about one chunk, not run its 40M fuel out.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	s.Drain(10 * time.Second)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel-drain took %v", d)
	}
	_, got := getStatus(t, ts, doc.ID)
	if got.State != StateCanceled && got.State != StateDone {
		t.Fatalf("job after cancel-drain: %q (%+v)", got.State, got.Error)
	}
	ts.Close()
	check()
}

func TestClientDisconnectCancelsWaitJob(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1, DrainPolicy: DrainCancel})
	body, err := json.Marshal(simSpec(busySrc, 40_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Hang up once the job exists, then verify the job itself got
	// cancelled — the disconnect propagated into the engine.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request succeeded despite the hangup")
	}
	got := waitTerminal(t, ts, "job-000001")
	if got.State != StateCanceled {
		t.Fatalf("job after client disconnect: %q (%+v), want canceled", got.State, got.Error)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1})
	resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	sresp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var doc struct {
		Schema       string `json:"schema"`
		JobsAccepted int64  `json:"jobs_accepted"`
		JobsDone     int64  `json:"jobs_done"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "elag-serve-stats/v3" || doc.JobsAccepted != 1 || doc.JobsDone != 1 {
		t.Fatalf("stats doc %+v", doc)
	}
}

// TestGridJob runs the smallest useful grid through the service to prove
// the heavy path (harness worker pool inside a serve worker) composes.
func TestGridJob(t *testing.T) {
	if testing.Short() {
		t.Skip("grid job is the slow path")
	}
	_, ts := testService(t, Options{Workers: 1, GridParallel: 4,
		Limits: func() Limits { l := DefaultLimits(); l.MaxDeadline = 5 * time.Minute; return l }()})
	spec := &JobSpec{Kind: KindGrid, Fuel: 250_000}
	resp, raw := postJob(t, ts, spec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	// The full suite under -race is slow; give it real time.
	got := waitTerminalFor(t, ts, doc.ID, 4*time.Minute)
	if got.State != StateDone {
		t.Fatalf("grid job ended %q (%+v)", got.State, got.Error)
	}
	out, err := json.Marshal(got.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte("elag-bench/")) {
		t.Fatalf("grid result carries no bench document: %.200s", out)
	}
}
