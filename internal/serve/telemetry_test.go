package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elag/internal/chaosinject"
	"elag/internal/telemetry"
)

// scrapeMetrics pulls /metrics and parses the exposition into a flat
// series → value map, exactly as a Prometheus scraper would read it.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	m, err := telemetry.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return m
}

// TestMetricsEndpointSeriesPresent asserts the declared series set: every
// metric the dashboards and alerts depend on exists from the first scrape
// (cardinality is fixed at registration, not discovered on first event).
func TestMetricsEndpointSeriesPresent(t *testing.T) {
	_, ts := testService(t, Options{Workers: 2, QueueDepth: 7})
	m := scrapeMetrics(t, ts)
	required := []string{
		"elag_uptime_seconds",
		"elag_queue_depth",
		"elag_queue_capacity",
		"elag_workers",
		"elag_workers_busy",
		"elag_jobs_in_flight",
		"elag_jobs_admitted_total",
		`elag_jobs_rejected_total{reason="invalid"}`,
		`elag_jobs_rejected_total{reason="queue_full"}`,
		`elag_jobs_rejected_total{reason="draining"}`,
		`elag_jobs_completed_total{kind="simulate",outcome="done"}`,
		`elag_jobs_completed_total{kind="grid",outcome="failed"}`,
		`elag_jobs_completed_total{kind="compile",outcome="canceled"}`,
		`elag_job_wall_seconds_count{kind="simulate"}`,
		`elag_job_wall_seconds_sum{kind="simulate"}`,
		"elag_job_queue_wait_seconds_count",
		"elag_panics_recovered_total",
		"elag_workers_replaced_total",
		"elag_lab_cache_hits_total",
		"elag_lab_cache_misses_total",
		"elag_chunks_total",
		"elag_insts_total",
		"elag_replay_memo_hits_total",
		"elag_replay_memo_misses_total",
		"elag_replay_memo_block_entries_total",
		"elag_replay_kernel_level",
		"elag_chaos_armed",
		"elag_process_cpu_seconds_total",
		// One series per registered mechanism kind, pre-declared at
		// startup like everything else in this list.
		`elag_mech_lookups_total{kind="stride"}`,
		`elag_mech_hits_total{kind="stride"}`,
		`elag_mech_misses_total{kind="stride"}`,
		`elag_mech_trains_total{kind="stride"}`,
		`elag_mech_allocs_total{kind="stride"}`,
		`elag_mech_lookups_total{kind="pcax"}`,
		`elag_mech_lookups_total{kind="addrpred"}`,
		`elag_mech_lookups_total{kind="earlycalc"}`,
	}
	for _, k := range required {
		if _, ok := m[k]; !ok {
			t.Errorf("series %s missing from first scrape", k)
		}
	}
	if m["elag_queue_capacity"] != 7 || m["elag_workers"] != 2 {
		t.Errorf("shape gauges: capacity=%v workers=%v, want 7/2",
			m["elag_queue_capacity"], m["elag_workers"])
	}
	if m["elag_uptime_seconds"] < 0 {
		t.Errorf("uptime %v < 0", m["elag_uptime_seconds"])
	}
}

// completedTotal sums elag_jobs_completed_total over outcomes for one kind
// ("" = all kinds).
func completedTotal(m map[string]float64, kind string) float64 {
	var s float64
	for k, v := range m {
		if !strings.HasPrefix(k, `elag_jobs_completed_total{`) {
			continue
		}
		if kind == "" || strings.Contains(k, `kind="`+kind+`"`) {
			s += v
		}
	}
	return s
}

// TestMetricsCounterExactness drives the service through every admission
// and outcome path — successes, injected panics, queue-saturate rejects, a
// cancel — and asserts the counter algebra EXACTLY against a /metrics
// scrape: admitted = completed + in-flight, per-kind histogram counts match
// the outcome counters, panics match replaced workers. Telemetry that is
// merely "approximately right" under faults is worse than none.
func TestMetricsCounterExactness(t *testing.T) {
	defer chaosinject.Reset()
	chaosinject.Reset()
	if err := chaosinject.Parse("panic-every=2"); err != nil {
		t.Fatal(err)
	}
	_, ts := testService(t, Options{Workers: 2})

	const jobs = 6
	var wantDone, wantFailed float64
	for i := 0; i < jobs; i++ {
		resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "?wait=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		var doc StatusDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		switch doc.State {
		case StateDone:
			wantDone++
		case StateFailed:
			wantFailed++
		default:
			t.Fatalf("job %d ended %q", i, doc.State)
		}
	}

	// Saturated-queue rejections must count without perturbing admission.
	chaosinject.Reset()
	if err := chaosinject.Parse("queue-saturate"); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJob(t, ts, simSpec(quickSrc, 300_000), ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	chaosinject.Reset()

	// One canceled job: cancel immediately after async submit, then wait
	// for its terminal state so in-flight settles to zero.
	resp, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("busy submit: %d %s", resp.StatusCode, raw)
	}
	var busy StatusDoc
	if err := json.Unmarshal(raw, &busy); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+busy.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if got := waitTerminal(t, ts, busy.ID); got.State != StateCanceled {
		t.Fatalf("canceled job ended %q", got.State)
	}

	// A workload job big enough to cross the memo payoff audit (every 256
	// block entries): eqntott strides its EAs, so the audit kills the
	// memoizer mid-chunk — exactly the path where a block entry could leak
	// without a matching hit or miss and break the algebra below.
	resp, raw = postJob(t, ts, &JobSpec{
		Kind:     KindSimulate,
		Workload: "023.eqntott",
		Configs:  []ConfigSpec{{Name: "base"}, {Name: "compiler"}},
		Fuel:     200_000,
	}, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workload job: status %d, body %s", resp.StatusCode, raw)
	}
	var wl StatusDoc
	if err := json.Unmarshal(raw, &wl); err != nil {
		t.Fatal(err)
	}
	if wl.State != StateDone {
		t.Fatalf("workload job ended %q", wl.State)
	}
	wantDone++

	// Mechanism-bearing jobs, two under the panic fault and one clean: the
	// per-kind elag_mech_* aggregates fold only from finished Sims, so a
	// panicked job must leave them self-consistent — the Stats algebra
	// below has to survive chaos, never a half-updated row. Distinct fuels
	// keep the three jobs from sharing a single-flight entry.
	if err := chaosinject.Parse("panic-every=2"); err != nil {
		t.Fatal(err)
	}
	for i, fuel := range []int64{200_000, 150_000, 100_000} {
		if i == 2 {
			chaosinject.Reset() // the last job always completes
		}
		resp, raw := postJob(t, ts, &JobSpec{
			Kind:     KindSimulate,
			Workload: "023.eqntott",
			Configs:  []ConfigSpec{{Name: "base"}, {Name: "base", Mech: "stride:64"}},
			Fuel:     fuel,
		}, "?wait=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mech job %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		var doc StatusDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		switch doc.State {
		case StateDone:
			wantDone++
		case StateFailed:
			wantFailed++
		default:
			t.Fatalf("mech job %d ended %q", i, doc.State)
		}
	}
	chaosinject.Reset()

	m := scrapeMetrics(t, ts)

	// The algebra: every admitted job is terminal now, so admitted must
	// equal the completed total and in-flight must be zero.
	admitted := m["elag_jobs_admitted_total"]
	if admitted != jobs+5 {
		t.Errorf("admitted = %v, want %d", admitted, jobs+5)
	}
	if got := completedTotal(m, ""); got != admitted {
		t.Errorf("completed total %v != admitted %v", got, admitted)
	}
	if inflight := m["elag_jobs_in_flight"]; inflight != 0 {
		t.Errorf("in-flight = %v after all jobs terminal", inflight)
	}
	if got := m[`elag_jobs_completed_total{kind="simulate",outcome="done"}`]; got != wantDone {
		t.Errorf(`completed{simulate,done} = %v, want %v`, got, wantDone)
	}
	if got := m[`elag_jobs_completed_total{kind="simulate",outcome="failed"}`]; got != wantFailed {
		t.Errorf(`completed{simulate,failed} = %v, want %v`, got, wantFailed)
	}
	if got := m[`elag_jobs_completed_total{kind="simulate",outcome="canceled"}`]; got != 1 {
		t.Errorf(`completed{simulate,canceled} = %v, want 1`, got)
	}
	if got := m[`elag_jobs_rejected_total{reason="queue_full"}`]; got != 1 {
		t.Errorf(`rejected{queue_full} = %v, want 1`, got)
	}

	// Histogram exactness: the wall histogram observes every terminal job,
	// so its count per kind equals the outcome counters' sum.
	if hc := m[`elag_job_wall_seconds_count{kind="simulate"}`]; hc != completedTotal(m, "simulate") {
		t.Errorf("wall histogram count %v != simulate completed %v", hc, completedTotal(m, "simulate"))
	}
	// queue-wait observes only jobs that actually started: the
	// canceled-while-queued path may skip it, so it is bounded by admitted.
	if qc := m["elag_job_queue_wait_seconds_count"]; qc > admitted {
		t.Errorf("queue-wait count %v > admitted %v", qc, admitted)
	}
	if m["elag_panics_recovered_total"] != wantFailed || m["elag_workers_replaced_total"] != wantFailed {
		t.Errorf("panics=%v replaced=%v, want both %v",
			m["elag_panics_recovered_total"], m["elag_workers_replaced_total"], wantFailed)
	}
	if m["elag_insts_total"] <= 0 || m["elag_chunks_total"] <= 0 {
		t.Errorf("work volume not counted: insts=%v chunks=%v",
			m["elag_insts_total"], m["elag_chunks_total"])
	}
	// Memo counter algebra: hits and misses are folded in from one
	// MemoStats snapshot per finished Sim, so the identity
	// hits + misses == block entries must hold exactly at every scrape —
	// chaos (panicked and canceled sims never reach the fold) included.
	hits, misses := m["elag_replay_memo_hits_total"], m["elag_replay_memo_misses_total"]
	if entries := m["elag_replay_memo_block_entries_total"]; hits+misses != entries {
		t.Errorf("memo algebra broken: hits %v + misses %v != block entries %v",
			hits, misses, entries)
	}
	// Mechanism counter algebra, per registered kind: lookups must equal
	// hits + misses and allocs never exceed trains on the SCRAPED values —
	// the same self-consistency mech.Stats guarantees per Sim, preserved
	// by the fold and by chaos (a panicked sim contributes nothing, not a
	// partial row). The stride jobs above ran to completion at least once,
	// so that kind must show traffic; kinds whose specs normalize to the
	// paper structures (addrpred, earlycalc) read zero by design.
	for _, kind := range []string{"addrpred", "earlycalc", "pcax", "stride"} {
		lk := m[`elag_mech_lookups_total{kind="`+kind+`"}`]
		mh := m[`elag_mech_hits_total{kind="`+kind+`"}`]
		mm := m[`elag_mech_misses_total{kind="`+kind+`"}`]
		tr := m[`elag_mech_trains_total{kind="`+kind+`"}`]
		al := m[`elag_mech_allocs_total{kind="`+kind+`"}`]
		if mh+mm != lk {
			t.Errorf("mech %s algebra broken: hits %v + misses %v != lookups %v", kind, mh, mm, lk)
		}
		if al > tr {
			t.Errorf("mech %s: allocs %v > trains %v", kind, al, tr)
		}
	}
	if lk := m[`elag_mech_lookups_total{kind="stride"}`]; lk <= 0 {
		t.Errorf("stride lookups = %v after completed stride jobs, want > 0", lk)
	}
	if tr := m[`elag_mech_trains_total{kind="stride"}`]; tr <= 0 {
		t.Errorf("stride trains = %v after completed stride jobs, want > 0", tr)
	}
	if lk := m[`elag_mech_lookups_total{kind="pcax"}`]; lk != 0 {
		t.Errorf("pcax lookups = %v with no pcax jobs, want 0", lk)
	}

	// The successful simulate jobs ran the default configs with
	// specialization enabled, so the kernel gauge must report a
	// specialized variant.
	if lvl := m["elag_replay_kernel_level"]; lvl < 1 {
		t.Errorf("kernel level = %v after specialized replays, want >= 1", lvl)
	}

	// /v1/stats is a projection of the same counters; the two surfaces may
	// never disagree.
	sresp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		JobsAccepted int64 `json:"jobs_accepted"`
		JobsDone     int64 `json:"jobs_done"`
		JobsFailed   int64 `json:"jobs_failed"`
		JobsCanceled int64 `json:"jobs_canceled"`
		JobsInFlight int64 `json:"jobs_in_flight"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if float64(stats.JobsAccepted) != admitted ||
		float64(stats.JobsDone) != wantDone ||
		float64(stats.JobsFailed) != wantFailed ||
		stats.JobsCanceled != 1 || stats.JobsInFlight != 0 {
		t.Errorf("/v1/stats %+v disagrees with /metrics (admitted %v done %v failed %v)",
			stats, admitted, wantDone, wantFailed)
	}
}

// streamEvents opens the NDJSON stream and decodes every frame until the
// server closes it.
func streamEvents(t *testing.T, ts *httptest.Server, id, query string) []telemetry.Frame {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var frames []telemetry.Frame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f telemetry.Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestEventsStreamSimulate subscribes to a queued simulate job and checks
// the full frame protocol: a state frame when the worker picks it up, chunk
// frames with monotonically increasing sequence numbers and instruction
// counts, and the "done" terminator as the last line.
func TestEventsStreamSimulate(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1, DrainPolicy: DrainCancel})

	// Occupy the single worker so the observed job sits queued while we
	// subscribe — no frame can escape before the subscription exists.
	resp, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier: %d %s", resp.StatusCode, raw)
	}
	var occupier StatusDoc
	if err := json.Unmarshal(raw, &occupier); err != nil {
		t.Fatal(err)
	}

	spec := simSpec(busySrc, 2_000_000) // ~500 chunks at the default 4096
	resp, raw = postJob(t, ts, spec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("observed job: %d %s", resp.StatusCode, raw)
	}
	var watched StatusDoc
	if err := json.Unmarshal(raw, &watched); err != nil {
		t.Fatal(err)
	}

	framesc := make(chan []telemetry.Frame, 1)
	go func() { framesc <- streamEvents(t, ts, watched.ID, "") }()

	// Subscription races the cancel below only through the HTTP round
	// trip; give it a beat, then free the worker.
	time.Sleep(50 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+occupier.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	frames := <-framesc
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want at least state+chunk+done: %+v", len(frames), frames)
	}
	if f := frames[0]; f.Type != "state" || f.State != StateRunning || f.Job != watched.ID {
		t.Fatalf("first frame %+v, want state/running", f)
	}
	last := frames[len(frames)-1]
	if last.Type != "done" || last.State != StateDone {
		t.Fatalf("terminator %+v, want done/done", last)
	}
	var chunks int
	var prevSeq, prevInsts int64
	for _, f := range frames[:len(frames)-1] {
		if f.Seq <= prevSeq {
			t.Fatalf("sequence not increasing: %d after %d (%+v)", f.Seq, prevSeq, f)
		}
		prevSeq = f.Seq
		if f.Type != "chunk" {
			continue
		}
		chunks++
		if f.Insts < prevInsts {
			t.Fatalf("chunk insts went backwards: %d after %d", f.Insts, prevInsts)
		}
		prevInsts = f.Insts
		if f.Fuel != spec.Fuel {
			t.Errorf("chunk frame fuel = %d, want %d", f.Fuel, spec.Fuel)
		}
	}
	if chunks == 0 {
		t.Fatal("no chunk frames observed")
	}
	if prevInsts == 0 {
		t.Fatal("chunk frames never reported progress")
	}
}

// TestEventsStreamGridTerminator runs a tiny grid job and checks the
// stream carries per-benchmark completion frames and ends with the
// terminator — the contract a sweep dashboard depends on.
func TestEventsStreamGridTerminator(t *testing.T) {
	if testing.Short() {
		t.Skip("grid job is the slow path")
	}
	_, ts := testService(t, Options{Workers: 1, GridParallel: 4,
		Limits: func() Limits { l := DefaultLimits(); l.MaxDeadline = 5 * time.Minute; return l }()})

	resp, raw := postJob(t, ts, &JobSpec{Kind: KindGrid, Fuel: 100_000}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	frames := streamEvents(t, ts, doc.ID, "")
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	last := frames[len(frames)-1]
	if last.Type != "done" || last.State != StateDone {
		t.Fatalf("terminator %+v, want done/done (job error: %s)", last, last.Error)
	}
	var bench int
	for _, f := range frames {
		if f.Type != "bench" {
			continue
		}
		bench++
		if f.Bench == "" || f.Done < 1 || f.Done > f.Total {
			t.Fatalf("malformed bench frame %+v", f)
		}
	}
	if bench == 0 {
		t.Fatalf("no bench frames in %d frames", len(frames))
	}
}

// TestEventsHeartbeat checks that a silent (queued) job still produces
// heartbeat frames at the requested cadence, and that disconnecting the
// events stream does NOT cancel the job — watchers are observers.
func TestEventsHeartbeat(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1, DrainPolicy: DrainCancel})
	resp, raw := postJob(t, ts, simSpec(busySrc, 40_000_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier: %d %s", resp.StatusCode, raw)
	}
	var occupier StatusDoc
	if err := json.Unmarshal(raw, &occupier); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJob(t, ts, simSpec(quickSrc, 300_000), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: %d %s", resp.StatusCode, raw)
	}
	var queued StatusDoc
	if err := json.Unmarshal(raw, &queued); err != nil {
		t.Fatal(err)
	}

	// Read a few heartbeats off the queued job's stream, then hang up.
	sresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + queued.ID + "/events?wait=1&heartbeat=10ms")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(sresp.Body)
	beats := 0
	for sc.Scan() && beats < 3 {
		var f telemetry.Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if f.Type == "heartbeat" {
			beats++
		}
	}
	sresp.Body.Close()
	if beats < 3 {
		t.Fatalf("got %d heartbeats before stream ended", beats)
	}

	// The hangup must not have cancelled the job (it may already have run
	// to done if the occupier finished while we read heartbeats).
	if _, doc := getStatus(t, ts, queued.ID); doc.State == StateCanceled {
		t.Fatalf("job canceled by events disconnect: %+v", doc.Error)
	}

	// Unblock the worker and let the watched job run to done: observer
	// disconnect really was side-effect-free.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+occupier.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if got := waitTerminal(t, ts, queued.ID); got.State != StateDone {
		t.Fatalf("watched job ended %q (%+v), want done", got.State, got.Error)
	}

	// Bad heartbeat values are a 400, not a hung stream.
	bresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + queued.ID + "/events?heartbeat=banana")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad heartbeat: status %d, want 400", bresp.StatusCode)
	}
}

// TestEventsLateSubscriber: a stream opened after the job finished gets
// exactly the terminator — late watchers learn the outcome, never hang.
func TestEventsLateSubscriber(t *testing.T) {
	_, ts := testService(t, Options{Workers: 1})
	resp, raw := postJob(t, ts, simSpec(quickSrc, 300_000), "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var doc StatusDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	frames := streamEvents(t, ts, doc.ID, "")
	if len(frames) != 1 || frames[0].Type != "done" || frames[0].State != StateDone {
		t.Fatalf("late subscriber frames %+v, want exactly one done terminator", frames)
	}

	// Unknown job IDs are typed 404s on the events route too.
	eresp, err := ts.Client().Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: %d, want 404", eresp.StatusCode)
	}
}
