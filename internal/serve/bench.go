package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"elag/internal/artifact"
	"elag/internal/harness"
)

// RunServeBench measures the result cache through the full service path:
// an in-process server with a fresh in-memory artifact store runs each
// entry's job once cold (empty store — the pipeline executes) and then
// warm (fully cached — admission answers from the store), recording both
// wall times and whether the two result documents are byte-identical.
// The warm measurement is the best of several runs: a cache hit is a
// store lookup plus a terminal transition, so min, not mean, is the
// honest cost.
func RunServeBench(ctx context.Context, fuel int64) (*harness.ServeBenchDoc, error) {
	doc := &harness.ServeBenchDoc{Schema: harness.ServeBenchSchema, Fuel: fuel}
	entries := []struct {
		name string
		spec *JobSpec
	}{
		{"grid-table2", &JobSpec{Kind: KindGrid, Exp: "table2", Fuel: fuel}},
		{"simulate-eqntott", &JobSpec{
			Kind:     KindSimulate,
			Workload: "023.eqntott",
			Configs: []ConfigSpec{
				{Name: "base"},
				{Name: "compiler", Table: 256},
			},
			Fuel: fuel,
		}},
	}
	for _, e := range entries {
		store, err := artifact.Open(artifact.Options{})
		if err != nil {
			return nil, err
		}
		s := New(Options{Workers: 2, GridParallel: 2, Cache: store})
		res, err := benchPair(ctx, s, e.spec)
		s.Drain(time.Minute)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		res.Name = e.name
		doc.Results = append(doc.Results, *res)
	}
	return doc, nil
}

// runOnce submits spec and waits for the terminal state, returning the
// wall time and the marshalled result bytes.
func runOnce(ctx context.Context, s *Server, spec *JobSpec) (time.Duration, []byte, error) {
	start := time.Now()
	j, jerr := s.Submit(spec)
	if jerr != nil {
		return 0, nil, jerr
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		j.Cancel()
		<-j.Done()
		return 0, nil, ctx.Err()
	}
	wall := time.Since(start)
	st := j.Status()
	if st.State != StateDone {
		return 0, nil, fmt.Errorf("job ended %s: %v", st.State, st.Error)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		return 0, nil, err
	}
	return wall, data, nil
}

func benchPair(ctx context.Context, s *Server, spec *JobSpec) (*harness.ServeBenchResult, error) {
	cold, coldBytes, err := runOnce(ctx, s, spec)
	if err != nil {
		return nil, err
	}
	const warmRuns = 5
	warm := time.Duration(0)
	identical := true
	for i := 0; i < warmRuns; i++ {
		w, warmBytes, err := runOnce(ctx, s, spec)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(coldBytes, warmBytes) {
			identical = false
		}
		if i == 0 || w < warm {
			warm = w
		}
	}
	res := &harness.ServeBenchResult{
		ColdWallNS: cold.Nanoseconds(),
		WarmWallNS: warm.Nanoseconds(),
		Identical:  identical,
	}
	if warm > 0 {
		res.WarmSpeedup = float64(cold.Nanoseconds()) / float64(warm.Nanoseconds())
	}
	return res, nil
}
