package serve

import (
	"encoding/json"

	"elag/internal/artifact"
	"elag/internal/harness"
	"elag/internal/workload"
)

// resultKeySchema versions the cache-key derivation AND the shape of the
// cached result bytes together: any change to either — key fields, result
// document layout, replay semantics that could alter output bytes — must
// bump it, instantly invalidating every artifact derived under the old
// schema.
const resultKeySchema = "elag-serve-result/v1"

// ResultKey derives the content-address of a job's result from everything
// the result bytes depend on. The derivation leans on the repo's
// determinism guarantees (DESIGN.md §10/§11/§15): grid and simulate
// output is byte-identical at every parallelism, batching, memoization,
// and kernel-specialization setting, so none of those appear in the key.
// DeadlineMS is excluded because it changes whether a result exists, not
// what its bytes are. Fuel and chunk size are included: fuel truncates
// the trace and chunk size is part of the declared result identity.
//
// elag-sim derives keys through this same function, so a CLI run and a
// server job that describe the same computation share one artifact.
func ResultKey(spec *JobSpec) artifact.Key {
	d := artifact.NewDigest(resultKeySchema)
	d.Str("kind", spec.Kind)
	switch spec.Kind {
	case KindCompile:
		d.Str("source", spec.Source)
		d.Str("opt", spec.Opt)
	case KindSimulate:
		if spec.Workload != "" {
			// Key the workload by name AND source: a workload edit in a
			// newer binary must not resurrect results computed from the
			// old program text.
			d.Str("workload", spec.Workload)
			if w := workload.Get(spec.Workload); w != nil {
				d.Str("workload_source", w.Source)
			}
		} else {
			d.Str("source", spec.Source)
		}
		for _, c := range spec.Configs {
			d.Str("config", c.Name)
			d.Int("table", int64(c.Table))
			d.Int("regs", int64(c.Regs))
			// Gated on non-empty so every pre-mechanism key derivation is
			// bit-for-bit unchanged: old cached results stay addressable,
			// and a mechanism-bearing config can never alias a plain one.
			if c.Mech != "" {
				d.Str("mech", c.Mech)
			}
		}
		d.Int("fuel", spec.Fuel)
		d.Int("chunk", int64(spec.Chunk))
	case KindGrid:
		exp := spec.Exp
		if exp == "" {
			exp = "all"
		}
		d.Str("exp", exp)
		// The grid result is a BenchDocument; its schema participates so a
		// document-shape bump invalidates grid artifacts without touching
		// compile/simulate ones.
		d.Str("bench_schema", harness.BenchSchema)
		d.Int("fuel", spec.Fuel)
		d.Int("chunk", int64(spec.Chunk))
	}
	return d.Key()
}

// flightEntry tracks one in-flight computation: the leader executing it
// and the followers coalesced onto it. Followers are full jobs — own ID,
// own status document, own progress stream — that are never enqueued;
// the leader's terminal transition settles them all.
type flightEntry struct {
	leader    *Job
	followers []*Job
}

// flightDone publishes a terminal leader's outcome: a successful result
// is marshalled once, stored in the artifact cache, and delivered to
// every follower as raw bytes (so follower status documents are
// byte-identical to the leader's, modulo job ID); a failed or cancelled
// leader propagates its JobError. Runs inside the leader's terminal
// transition with leader.mu held — it takes flightMu and then each
// follower's mu, never the leader's again, so the lock order
// (leader.mu → flightMu → follower.mu) is acyclic against Submit's
// (admitMu → flightMu).
func (s *Server) flightDone(key artifact.Key, leader *Job) {
	var data []byte
	if leader.state == StateDone {
		b, err := json.Marshal(leader.result)
		if err == nil {
			data = b
			s.cache.Put(key, b)
		} else {
			leader.log.Error("result not cacheable", "error", err.Error())
		}
	}
	s.flightMu.Lock()
	fe := s.flight[key]
	var followers []*Job
	if fe != nil && fe.leader == leader {
		followers = fe.followers
		delete(s.flight, key)
	}
	s.flightMu.Unlock()
	for _, f := range followers {
		switch {
		case data != nil:
			f.finish(json.RawMessage(data), nil)
		case leader.state == StateDone:
			f.finish(nil, &JobError{Kind: ErrKindInternal, Message: "coalesced result could not be encoded"})
		default:
			// Copy, never share: the follower owns its error document.
			f.finish(nil, &JobError{Kind: leader.jobErr.Kind, Message: leader.jobErr.Message})
		}
	}
}
