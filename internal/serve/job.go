// Package serve implements the elag-serve daemon: a long-running HTTP/JSON
// service that accepts compile, simulate, and grid jobs and runs them on
// the repository's batched-replay engine under hard robustness guarantees —
// per-job deadlines and cancellation (checked at trace-chunk boundaries),
// bounded queueing with backpressure, per-job panic isolation with worker
// replacement, and graceful drain. The wire format is schema-versioned as
// elag-serve/v1; DESIGN.md §13 documents the architecture and the
// degradation policy table.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"elag"
	"elag/internal/workload"
)

// Schema tags every elag-serve request and response document; bump on any
// field-shape change so clients can dispatch.
const Schema = "elag-serve/v1"

// Job kinds accepted by JobSpec.Kind.
const (
	// KindCompile builds MC source through the optimizing pipeline and
	// reports static program facts (no execution).
	KindCompile = "compile"
	// KindSimulate builds a program (from source or a built-in workload)
	// and replays it under one or more configurations in a single batched
	// pass, returning one elag-metrics/v1 document per configuration.
	KindSimulate = "simulate"
	// KindGrid regenerates the full paper evaluation (every table and
	// figure) over the built-in workload suite, returning the
	// elag-bench/v4 document.
	KindGrid = "grid"
)

// JobSpec is the elag-serve/v1 job submission body (POST /v1/jobs).
type JobSpec struct {
	// Schema, when present, must equal "elag-serve/v1".
	Schema string `json:"schema,omitempty"`
	// Kind selects the job type: compile | simulate | grid.
	Kind string `json:"kind"`

	// Source is MC source text (compile and simulate jobs).
	Source string `json:"source,omitempty"`
	// Workload names a built-in benchmark instead of Source (simulate
	// jobs), e.g. "023.eqntott".
	Workload string `json:"workload,omitempty"`
	// Opt is the optimization level for compile jobs ("O0".."O3", default
	// the standard pipeline).
	Opt string `json:"opt,omitempty"`

	// Configs are the batch cells of a simulate job, replayed from one
	// architectural execution in order.
	Configs []ConfigSpec `json:"configs,omitempty"`

	// Exp narrows a grid job to one experiment (table2, table3, table4,
	// fig5a, fig5b, fig5c, embedded). Empty or "all" runs the full
	// document. Narrow grids share the full document's per-row artifact
	// cache, so an "all" run warms every narrower one and vice versa.
	Exp string `json:"exp,omitempty"`

	// Fuel bounds the dynamic instruction count. Simulate and grid jobs
	// must state a budget (admission rejects 0); it must not exceed the
	// server's -max-fuel.
	Fuel int64 `json:"fuel,omitempty"`
	// Chunk is the streaming-trace chunk size in entries (0 picks the
	// default). The service always streams — never materializes a full
	// trace — so a job's peak trace memory is O(Chunk).
	Chunk int `json:"chunk,omitempty"`
	// DeadlineMS bounds the job's wall time in milliseconds. 0 inherits
	// the server's -max-deadline; a value above it is rejected.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ConfigSpec names one simulator configuration (the same vocabulary as the
// CLI tools' -config/-table/-regs/-mech flags; see elag.NamedConfig).
type ConfigSpec struct {
	Name  string `json:"name"`
	Table int    `json:"table,omitempty"`
	Regs  int    `json:"regs,omitempty"`
	// Mech, when set, attaches a load-acceleration mechanism from the
	// registry to the named configuration, in the canonical
	// "kind[:entries[xassoc]]" form (e.g. "stride:256", "pcax:256x4").
	// Assist mechanisms are mutually exclusive with the paper structures,
	// so Mech normally rides on Name "base".
	Mech string `json:"mech,omitempty"`
}

// Config resolves the spec to a simulator configuration: the named base
// vocabulary plus the optional mechanism. The resolved configuration is
// validated, so a Mech that conflicts with the named hardware (an assist
// on a configuration that already has a prediction table) is an error
// here, at admission, not at job execution.
func (c ConfigSpec) Config() (elag.SimConfig, error) {
	cfg, err := elag.NamedConfig(c.Name, c.Table, c.Regs)
	if err != nil {
		return cfg, err
	}
	if c.Mech != "" {
		sp, err := elag.ParseMechSpec(c.Mech)
		if err != nil {
			return cfg, err
		}
		cfg.Mechanisms = append(cfg.Mechanisms, sp)
		if err := cfg.Validate(); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Label is the spec's display name: the config name, qualified by the
// mechanism when one is attached.
func (c ConfigSpec) Label() string {
	if c.Mech == "" {
		return c.Name
	}
	if c.Name == "base" {
		return c.Mech
	}
	return c.Name + "+" + c.Mech
}

// SpecError reports a malformed or over-budget job spec. It is the typed
// error for everything rejected at admission: decode failures, unknown
// kinds, and budget violations.
type SpecError struct {
	// Field is the spec field at fault ("kind", "fuel", "body", ...).
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("invalid job spec: %s: %s", e.Field, e.Reason)
}

// Limits are the server's per-job admission budgets. Jobs exceeding any of
// them are rejected with a SpecError before touching the queue.
type Limits struct {
	// MaxFuel caps JobSpec.Fuel. Simulate and grid jobs must state a
	// budget of at most this many dynamic instructions.
	MaxFuel int64
	// MaxDeadline caps (and defaults) JobSpec.DeadlineMS.
	MaxDeadline time.Duration
	// MaxSourceBytes caps len(JobSpec.Source).
	MaxSourceBytes int
	// MaxConfigs caps len(JobSpec.Configs).
	MaxConfigs int
	// MaxChunk caps JobSpec.Chunk, bounding per-job trace memory.
	MaxChunk int
}

// DefaultLimits are the budgets elag-serve applies when a flag leaves one
// unset.
func DefaultLimits() Limits {
	return Limits{
		MaxFuel:        50_000_000,
		MaxDeadline:    2 * time.Minute,
		MaxSourceBytes: 1 << 20,
		MaxConfigs:     16,
		MaxChunk:       1 << 20,
	}
}

// maxSpecBytes bounds the request body read by DecodeSpec, independent of
// the per-field budgets (a 100MB body must not be buffered just to reject
// its Source field).
const maxSpecBytes = 4 << 20

// DecodeSpec reads one JobSpec from r, rejecting malformed bodies with a
// *SpecError (never a panic — FuzzJobSpec holds it to that). Unknown
// fields are rejected so client typos fail loudly. Budgets are not checked
// here; see Validate.
func DecodeSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, &SpecError{Field: "body", Reason: err.Error()}
	}
	// A second document in the body is a framing error, not trailing junk
	// to ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &SpecError{Field: "body", Reason: "trailing data after job spec"}
	}
	return &spec, nil
}

// Validate checks spec against the admission budgets, returning a
// *SpecError naming the offending field. A valid spec is safe to admit:
// its kind is known, its inputs are well-formed, and its fuel, memory
// (chunk), and deadline budgets are within the server's limits.
func (spec *JobSpec) Validate(lim Limits) error {
	if spec.Schema != "" && spec.Schema != Schema {
		return &SpecError{Field: "schema", Reason: fmt.Sprintf("got %q, want %q", spec.Schema, Schema)}
	}
	if len(spec.Source) > lim.MaxSourceBytes {
		return &SpecError{Field: "source",
			Reason: fmt.Sprintf("%d bytes exceeds the %d-byte budget", len(spec.Source), lim.MaxSourceBytes)}
	}
	if spec.Fuel < 0 {
		return &SpecError{Field: "fuel", Reason: "must be non-negative"}
	}
	if spec.Fuel > lim.MaxFuel {
		return &SpecError{Field: "fuel",
			Reason: fmt.Sprintf("%d exceeds the %d-instruction budget", spec.Fuel, lim.MaxFuel)}
	}
	if spec.Chunk < 0 {
		return &SpecError{Field: "chunk", Reason: "must be non-negative"}
	}
	if spec.Chunk > lim.MaxChunk {
		return &SpecError{Field: "chunk",
			Reason: fmt.Sprintf("%d entries exceeds the %d-entry budget", spec.Chunk, lim.MaxChunk)}
	}
	if spec.DeadlineMS < 0 {
		return &SpecError{Field: "deadline_ms", Reason: "must be non-negative"}
	}
	if d := time.Duration(spec.DeadlineMS) * time.Millisecond; d > lim.MaxDeadline {
		return &SpecError{Field: "deadline_ms",
			Reason: fmt.Sprintf("%s exceeds the %s budget", d, lim.MaxDeadline)}
	}

	switch spec.Kind {
	case KindCompile:
		if spec.Source == "" {
			return &SpecError{Field: "source", Reason: "compile jobs need MC source"}
		}
		if spec.Workload != "" {
			return &SpecError{Field: "workload", Reason: "compile jobs take source, not a workload"}
		}
		if len(spec.Configs) != 0 {
			return &SpecError{Field: "configs", Reason: "compile jobs take no configurations"}
		}
		if spec.Opt != "" {
			if _, err := elag.ParseOptLevel(spec.Opt); err != nil {
				return &SpecError{Field: "opt", Reason: err.Error()}
			}
		}
	case KindSimulate:
		if (spec.Source == "") == (spec.Workload == "") {
			return &SpecError{Field: "source", Reason: "simulate jobs need exactly one of source or workload"}
		}
		if spec.Workload != "" && workload.Get(spec.Workload) == nil {
			var names []string
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
			return &SpecError{Field: "workload",
				Reason: fmt.Sprintf("unknown workload %q (have: %s)", spec.Workload, strings.Join(names, ", "))}
		}
		if len(spec.Configs) == 0 {
			return &SpecError{Field: "configs", Reason: "simulate jobs need at least one configuration"}
		}
		if len(spec.Configs) > lim.MaxConfigs {
			return &SpecError{Field: "configs",
				Reason: fmt.Sprintf("%d exceeds the %d-configuration budget", len(spec.Configs), lim.MaxConfigs)}
		}
		for i, c := range spec.Configs {
			if _, err := c.Config(); err != nil {
				return &SpecError{Field: fmt.Sprintf("configs[%d]", i), Reason: err.Error()}
			}
			if c.Table < 0 || c.Regs < 0 {
				return &SpecError{Field: fmt.Sprintf("configs[%d]", i), Reason: "table and regs must be non-negative"}
			}
		}
		if spec.Fuel == 0 {
			return &SpecError{Field: "fuel", Reason: "simulate jobs must state a fuel budget"}
		}
		if spec.Opt != "" {
			return &SpecError{Field: "opt", Reason: "only compile jobs take an optimization level"}
		}
	case KindGrid:
		if spec.Source != "" || spec.Workload != "" || len(spec.Configs) != 0 || spec.Opt != "" {
			return &SpecError{Field: "kind", Reason: "grid jobs run the built-in suite and take only exp/fuel/chunk/deadline"}
		}
		if !gridExps[spec.Exp] {
			return &SpecError{Field: "exp",
				Reason: fmt.Sprintf("unknown experiment %q (want all, table2, table3, table4, fig5a, fig5b, fig5c, embedded, or figmech)", spec.Exp)}
		}
		if spec.Fuel == 0 {
			return &SpecError{Field: "fuel", Reason: "grid jobs must state a fuel budget"}
		}
	case "":
		return &SpecError{Field: "kind", Reason: "missing (want compile, simulate, or grid)"}
	default:
		return &SpecError{Field: "kind",
			Reason: fmt.Sprintf("unknown kind %q (want compile, simulate, or grid)", spec.Kind)}
	}
	if spec.Kind != KindGrid && spec.Exp != "" {
		return &SpecError{Field: "exp", Reason: "only grid jobs select an experiment"}
	}
	return nil
}

// gridExps is the experiment vocabulary of JobSpec.Exp.
var gridExps = map[string]bool{
	"": true, "all": true,
	"table2": true, "table3": true, "table4": true,
	"fig5a": true, "fig5b": true, "fig5c": true,
	"embedded": true, "figmech": true,
}

// Deadline returns the job's effective wall-time budget under lim: its own
// DeadlineMS, or the server maximum when unstated.
func (spec *JobSpec) Deadline(lim Limits) time.Duration {
	if spec.DeadlineMS > 0 {
		return time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	return lim.MaxDeadline
}

// JobError kinds (JobError.Kind).
const (
	// ErrKindInvalid — the spec failed admission (SpecError).
	ErrKindInvalid = "invalid"
	// ErrKindPanic — the job panicked in a worker; Stack has the trace.
	// The process survives and the pool replaces the worker.
	ErrKindPanic = "panic"
	// ErrKindDeadline — the job hit its wall-time budget.
	ErrKindDeadline = "deadline"
	// ErrKindCanceled — the job was cancelled (DELETE, client disconnect,
	// or drain policy).
	ErrKindCanceled = "canceled"
	// ErrKindFault — the simulated program faulted architecturally.
	ErrKindFault = "fault"
	// ErrKindInternal — anything else.
	ErrKindInternal = "internal"
)

// JobError is the typed, wire-visible failure of one job. Every failed job
// carries exactly one; the service process itself never dies for a job.
type JobError struct {
	// Kind classifies the failure (see the ErrKind constants).
	Kind string `json:"kind"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// Stack is the goroutine stack for Kind == "panic", empty otherwise.
	Stack string `json:"stack,omitempty"`
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job failed (%s): %s", e.Kind, e.Message)
}

// Job states (StatusDoc.State).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// StatusDoc is the elag-serve/v1 job status document returned by POST
// /v1/jobs and GET /v1/jobs/{id}. Result is populated only in state
// "done"; Error only in "failed" and "canceled".
type StatusDoc struct {
	Schema string    `json:"schema"`
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	State  string    `json:"state"`
	Error  *JobError `json:"error,omitempty"`
	Result any       `json:"result,omitempty"`
}

// ErrorDoc is the elag-serve/v1 body of every non-2xx response.
type ErrorDoc struct {
	Schema string    `json:"schema"`
	Error  *JobError `json:"error"`
}
