package serve

import (
	"fmt"
	"strings"

	"elag"
	"elag/internal/artifact"
	"elag/internal/harness"
	"elag/internal/telemetry"
	"elag/internal/workload"
)

// CompileResult is the result payload of a compile job: static facts about
// the built program (no execution happens).
type CompileResult struct {
	// MachineInsts is the assembled instruction count.
	MachineInsts int `json:"machine_insts"`
	// AsmLines is the length of the generated assembly listing.
	AsmLines int `json:"asm_lines"`
	// Pipeline is the pass pipeline that built the program.
	Pipeline string `json:"pipeline"`
	// StaticNT/PD/EC are the per-class static load counts from the
	// compiler's classification.
	StaticNT int `json:"static_nt"`
	StaticPD int `json:"static_pd"`
	StaticEC int `json:"static_ec"`
}

// SimulateResult is the result payload of a simulate job: the program's
// architectural output plus one elag-metrics/v1 document per requested
// configuration, in spec order. The documents are byte-identical to what
// elag-sim produces for the same program, configuration, and fuel — the
// job ran the exact same batched-replay entry point, and the progress
// instrumentation observes strictly between chunks.
type SimulateResult struct {
	// Output is the architectural result (exit code and output streams),
	// identical across configurations by construction.
	Output string `json:"output"`
	// Metrics has one document per spec.Configs entry, in order.
	Metrics []*elag.MetricsDoc `json:"metrics"`
}

// execute runs one admitted job to completion under its context. It is
// called on a pool worker; panics are the caller's problem (the pool
// isolates them). The spec has passed Validate, so input errors here are
// program-level (build failures, architectural faults), not spec-level.
// work receives chunk/lab-cache telemetry; j.progress receives live
// frames (free when nobody subscribed).
func execute(j *Job, gridParallel int, work *harness.Counters, cache *artifact.Store) (any, error) {
	switch j.Spec.Kind {
	case KindCompile:
		return executeCompile(j.Spec)
	case KindSimulate:
		return executeSimulate(j, work)
	case KindGrid:
		return executeGrid(j, gridParallel, work, cache)
	}
	// Unreachable after Validate; keep the failure typed anyway.
	return nil, &SpecError{Field: "kind", Reason: fmt.Sprintf("unknown kind %q", j.Spec.Kind)}
}

func executeCompile(spec *JobSpec) (any, error) {
	opts := elag.BuildOptions{}
	if spec.Opt != "" {
		lvl, err := elag.ParseOptLevel(spec.Opt)
		if err != nil {
			return nil, err
		}
		opts.Level = lvl
	}
	p, err := elag.Build(spec.Source, opts)
	if err != nil {
		return nil, err
	}
	res := &CompileResult{
		MachineInsts: len(p.Machine.Insts),
		AsmLines:     strings.Count(p.Asm, "\n"),
		Pipeline:     p.Pipeline,
	}
	if p.Classes != nil {
		res.StaticNT = p.Classes.StaticNT
		res.StaticPD = p.Classes.StaticPD
		res.StaticEC = p.Classes.StaticEC
	}
	return res, nil
}

func executeSimulate(j *Job, work *harness.Counters) (any, error) {
	spec := j.Spec
	var p *elag.Program
	var err error
	if spec.Workload != "" {
		p, err = elag.Build(workload.Get(spec.Workload).Source, elag.BuildOptions{})
	} else {
		p, err = elag.Build(spec.Source, elag.BuildOptions{})
	}
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	specs := make([]elag.BatchSpec, len(spec.Configs))
	for i, c := range spec.Configs {
		cfg, err := c.Config()
		if err != nil {
			return nil, err
		}
		specs[i] = elag.BatchSpec{Config: cfg}
	}
	// onChunk runs strictly between chunks: it counts work volume and
	// publishes a progress frame (one atomic load when nobody subscribed),
	// never touching simulator state — results stay byte-identical with
	// telemetry on or off.
	onChunk := func(done int64, n int) {
		work.CountChunk(n)
		j.progress.Publish(telemetry.Frame{Type: "chunk", Job: j.ID, Insts: done, Fuel: spec.Fuel})
	}
	// chunk 0 streams at the default size: the service never materializes
	// a full trace, so peak memory stays O(chunk) whatever the fuel. A
	// fuel-truncated run is not an error (prefix timing is valid timing).
	metrics, runRes, err := p.SimulateBatchObservedContext(j.ctx, specs, spec.Fuel, spec.Chunk, onChunk)
	if err != nil {
		return nil, err
	}
	for _, m := range metrics {
		work.CountMemo(m.Memo)
		if m.MechStats != nil {
			work.CountMech(m.MechKind, *m.MechStats)
		}
	}
	return NewSimulateResult(spec, runRes.Output(), metrics), nil
}

// NewSimulateResult assembles the simulate-job result document: the
// architectural output plus one metrics document per config, labelled
// the way the service labels them. elag-sim's cache path builds its
// artifacts through this same constructor, so a CLI-computed result is
// byte-identical to a server-computed one and the two can share a store.
func NewSimulateResult(spec *JobSpec, output string, metrics []*elag.Metrics) *SimulateResult {
	label := "source"
	if spec.Workload != "" {
		label = spec.Workload
	}
	res := &SimulateResult{Output: output}
	for i, m := range metrics {
		res.Metrics = append(res.Metrics, elag.NewMetricsDoc(label, spec.Configs[i].Label(), m))
	}
	return res
}

func executeGrid(j *Job, parallel int, work *harness.Counters, cache *artifact.Store) (any, error) {
	r := &harness.Runner{
		Fuel: j.Spec.Fuel, Parallel: parallel, ChunkSize: j.Spec.Chunk,
		Counters: work,
		// The artifact store gives grid jobs per-row caching: every
		// (experiment, benchmark) row the runner computes is stored, so a
		// later grid — same or narrower experiment selection — recomputes
		// only the rows it is missing.
		Artifacts: cache,
		// Each completed benchmark column becomes a frame; done/total
		// restart per experiment (Document runs several), so a consumer
		// sees per-experiment sweep progress, not one global bar.
		Progress: func(bench string, done, total int) {
			j.progress.Publish(telemetry.Frame{Type: "bench", Job: j.ID,
				Bench: bench, Done: done, Total: total})
		},
	}
	return r.DocumentExp(j.ctx, j.Spec.Exp)
}
