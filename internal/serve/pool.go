package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"elag"
	"elag/internal/chaosinject"
)

// Job is one admitted job: its spec, its cancellable context, and its
// terminal outcome. A Job moves queued → running → {done, failed,
// canceled}; Done() closes exactly once at the terminal transition.
type Job struct {
	// ID is the server-assigned handle ("job-000042").
	ID string
	// Spec is the validated submission.
	Spec *JobSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string
	result any
	jobErr *JobError
	done   chan struct{}
}

func newJob(id string, spec *JobSpec, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		ID: id, Spec: spec,
		ctx: ctx, cancel: cancel,
		state: StateQueued,
		done:  make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation: the job's context is cancelled (a running
// job aborts within one trace chunk) and, if it was still queued, it goes
// terminal immediately so the worker that later dequeues it skips it.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.jobErr = &JobError{Kind: ErrKindCanceled, Message: "canceled while queued"}
		close(j.done)
	}
}

// start moves a queued job to running, returning false if it already went
// terminal (cancelled while queued).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// finish records the job's terminal outcome. Idempotent: only the first
// call wins (a worker dying mid-finish cannot double-close done).
func (j *Job) finish(result any, jerr *JobError) {
	j.cancel() // release the deadline timer
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return
	}
	switch {
	case jerr == nil:
		j.state, j.result = StateDone, result
	case jerr.Kind == ErrKindCanceled:
		j.state, j.jobErr = StateCanceled, jerr
	default:
		j.state, j.jobErr = StateFailed, jerr
	}
	close(j.done)
}

// Status snapshots the job as its wire document.
func (j *Job) Status() *StatusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &StatusDoc{
		Schema: Schema,
		ID:     j.ID,
		Kind:   j.Spec.Kind,
		State:  j.state,
		Error:  j.jobErr,
		Result: j.result,
	}
}

// classifyErr maps an execution error to its wire-visible JobError.
func classifyErr(err error) *JobError {
	var spec *SpecError
	var fault *elag.Fault
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &JobError{Kind: ErrKindDeadline, Message: "job deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &JobError{Kind: ErrKindCanceled, Message: "job canceled"}
	case errors.As(err, &spec):
		return &JobError{Kind: ErrKindInvalid, Message: spec.Error()}
	case errors.As(err, &fault):
		return &JobError{Kind: ErrKindFault, Message: err.Error()}
	default:
		return &JobError{Kind: ErrKindInternal, Message: err.Error()}
	}
}

// pool runs admitted jobs on a fixed number of workers. Each job executes
// under a recover barrier: a panicking job goes terminal with a typed
// JobError carrying the stack, the panicking worker goroutine exits, and
// the pool starts a replacement — the process never dies for a job, and
// the worker count never decays.
type pool struct {
	jobs         chan *Job
	gridParallel int
	wg           sync.WaitGroup
	stats        *Stats
}

// newPool starts workers goroutines draining queue. gridParallel is the
// harness parallelism grid jobs run with (each grid job fans its
// benchmarks over that many goroutines of its own).
func newPool(workers, gridParallel int, queue chan *Job, stats *Stats) *pool {
	p := &pool{jobs: queue, gridParallel: gridParallel, stats: stats}
	for i := 0; i < workers; i++ {
		p.startWorker()
	}
	return p
}

// startWorker launches one worker goroutine. The wg.Add happens before the
// dying worker's wg.Done when called from the panic path, so Wait never
// observes a transient zero while a replacement is coming up.
func (p *pool) startWorker() {
	p.wg.Add(1)
	go p.worker()
}

func (p *pool) worker() {
	var cur *Job
	defer func() {
		if r := recover(); r != nil {
			// The job dies with the evidence; the service does not. The
			// replacement starts before this goroutine counts itself out
			// so drain's Wait never sees the pool empty early.
			if cur != nil {
				cur.finish(nil, &JobError{
					Kind:    ErrKindPanic,
					Message: fmt.Sprint(r),
					Stack:   string(debug.Stack()),
				})
			}
			p.stats.PanicsRecovered.Add(1)
			p.stats.WorkersReplaced.Add(1)
			p.startWorker()
		}
		p.wg.Done()
	}()
	for j := range p.jobs {
		cur = j
		p.runOne(j)
		cur = nil
	}
}

// runOne executes one dequeued job to a terminal state. Runs on the worker
// goroutine, inside its recover barrier.
func (p *pool) runOne(j *Job) {
	if !j.start() {
		// Cancelled while queued; it went terminal without running.
		p.stats.JobsCanceled.Add(1)
		return
	}
	if err := j.ctx.Err(); err != nil {
		p.fail(j, err)
		return
	}
	// Chaos: an injected worker crash surfaces exactly where a real
	// simulation-kernel bug would — after dequeue, before results exist.
	chaosinject.MaybePanic("worker")
	result, err := execute(j.ctx, j.Spec, p.gridParallel)
	if err != nil {
		p.fail(j, err)
		return
	}
	j.finish(result, nil)
	p.stats.JobsDone.Add(1)
}

// fail moves j to its terminal failure state and counts it.
func (p *pool) fail(j *Job, err error) {
	jerr := classifyErr(err)
	j.finish(nil, jerr)
	if jerr.Kind == ErrKindCanceled {
		p.stats.JobsCanceled.Add(1)
	} else {
		p.stats.JobsFailed.Add(1)
	}
}

// wait blocks until every worker has exited (the queue must be closed
// first).
func (p *pool) wait() { p.wg.Wait() }
