package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"elag"
	"elag/internal/artifact"
	"elag/internal/chaosinject"
	"elag/internal/harness"
	"elag/internal/telemetry"
)

// Job is one admitted job: its spec, its cancellable context, its live
// progress stream, and its terminal outcome. A Job moves queued → running
// → {done, failed, canceled}; the terminal transition happens exactly once
// and settles everything at once — Done() closes, the outcome counters and
// wall histogram update, the progress stream closes, and the outcome is
// logged with the job ID.
type Job struct {
	// ID is the server-assigned handle ("job-000042").
	ID string
	// Spec is the validated submission.
	Spec *JobSpec

	ctx    context.Context
	cancel context.CancelFunc

	created  time.Time
	stats    *Stats
	log      *slog.Logger
	progress *telemetry.Progress

	// onTerminal, when set, runs inside the terminal transition with j.mu
	// held, after the counters settle. The single-flight layer installs it
	// on coalescing leaders (before the job is ever visible to a worker)
	// to publish the outcome to the artifact store and the followers. It
	// must not take j.mu again.
	onTerminal func(j *Job)

	mu      sync.Mutex
	state   string
	started time.Time
	result  any
	jobErr  *JobError
	done    chan struct{}
}

func newJob(id string, spec *JobSpec, ctx context.Context, cancel context.CancelFunc,
	stats *Stats, log *slog.Logger) *Job {
	return &Job{
		ID: id, Spec: spec,
		ctx: ctx, cancel: cancel,
		created:  time.Now(),
		stats:    stats,
		log:      log.With("job", id, "kind", spec.Kind),
		progress: telemetry.NewProgress(),
		state:    StateQueued,
		done:     make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Progress is the job's live event stream (GET /v1/jobs/{id}/events).
func (j *Job) Progress() *telemetry.Progress { return j.progress }

// Cancel requests cancellation: the job's context is cancelled (a running
// job aborts within one trace chunk) and, if it was still queued, it goes
// terminal immediately so the worker that later dequeues it skips it.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.jobErr = &JobError{Kind: ErrKindCanceled, Message: "canceled while queued"}
		j.terminalLocked()
	}
}

// start moves a queued job to running, returning false if it already went
// terminal (cancelled while queued).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.stats.jobStarted(j.started.Sub(j.created))
	j.progress.Publish(telemetry.Frame{Type: "state", Job: j.ID, State: StateRunning})
	j.log.Info("job started", "queue_wait", j.started.Sub(j.created))
	return true
}

// finish records the job's terminal outcome. Idempotent: only the first
// call wins (a worker dying mid-finish cannot double-close done). The
// deadline timer is released only after the terminal state is settled:
// a coalesced follower watches its own context and calls finish on
// cancellation, so cancelling before the state transition would let that
// watcher race a concurrent success delivery and mark a successfully
// delivered job canceled.
func (j *Job) finish(result any, jerr *JobError) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		j.mu.Unlock()
		j.cancel()
		return
	}
	switch {
	case jerr == nil:
		j.state, j.result = StateDone, result
	case jerr.Kind == ErrKindCanceled:
		j.state, j.jobErr = StateCanceled, jerr
	default:
		j.state, j.jobErr = StateFailed, jerr
	}
	j.terminalLocked()
	j.mu.Unlock()
	j.cancel() // release the deadline timer
}

// terminalLocked settles the terminal transition. Called with j.mu held,
// exactly once per job, after state moved to a terminal value: it closes
// done, updates the outcome counter / wall histogram / in-flight gauge in
// one place (the exactness invariants depend on this being the only
// counting site), closes the progress stream so event subscribers see EOF
// and then the terminator frame, and logs the outcome.
func (j *Job) terminalLocked() {
	close(j.done)
	wall := time.Since(j.created)
	j.stats.jobFinished(j.Spec.Kind, j.state, wall)
	j.progress.Close()
	if j.jobErr != nil {
		j.log.Info("job finished", "state", j.state, "wall", wall,
			"error_kind", j.jobErr.Kind, "error", j.jobErr.Message)
	} else {
		j.log.Info("job finished", "state", j.state, "wall", wall)
	}
	if j.onTerminal != nil {
		j.onTerminal(j)
	}
}

// Status snapshots the job as its wire document.
func (j *Job) Status() *StatusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &StatusDoc{
		Schema: Schema,
		ID:     j.ID,
		Kind:   j.Spec.Kind,
		State:  j.state,
		Error:  j.jobErr,
		Result: j.result,
	}
}

// classifyErr maps an execution error to its wire-visible JobError.
func classifyErr(err error) *JobError {
	var spec *SpecError
	var fault *elag.Fault
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &JobError{Kind: ErrKindDeadline, Message: "job deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &JobError{Kind: ErrKindCanceled, Message: "job canceled"}
	case errors.As(err, &spec):
		return &JobError{Kind: ErrKindInvalid, Message: spec.Error()}
	case errors.As(err, &fault):
		return &JobError{Kind: ErrKindFault, Message: err.Error()}
	default:
		return &JobError{Kind: ErrKindInternal, Message: err.Error()}
	}
}

// pool runs admitted jobs on a fixed number of workers. Each job executes
// under a recover barrier: a panicking job goes terminal with a typed
// JobError carrying the stack, the panicking worker goroutine exits, and
// the pool starts a replacement — the process never dies for a job, and
// the worker count never decays.
type pool struct {
	jobs         chan *Job
	gridParallel int
	wg           sync.WaitGroup
	stats        *Stats
	work         *harness.Counters
	cache        *artifact.Store
	log          *slog.Logger
}

// newPool starts workers goroutines draining queue. gridParallel is the
// harness parallelism grid jobs run with (each grid job fans its
// benchmarks over that many goroutines of its own). cache (may be nil)
// is the artifact store grid jobs use for per-row caching.
func newPool(workers, gridParallel int, queue chan *Job, stats *Stats,
	work *harness.Counters, cache *artifact.Store, log *slog.Logger) *pool {
	p := &pool{jobs: queue, gridParallel: gridParallel, stats: stats, work: work, cache: cache, log: log}
	for i := 0; i < workers; i++ {
		p.startWorker()
	}
	return p
}

// startWorker launches one worker goroutine. The wg.Add happens before the
// dying worker's wg.Done when called from the panic path, so Wait never
// observes a transient zero while a replacement is coming up.
func (p *pool) startWorker() {
	p.wg.Add(1)
	go p.worker()
}

func (p *pool) worker() {
	var cur *Job
	defer func() {
		if r := recover(); r != nil {
			// The job dies with the evidence; the service does not. The
			// replacement starts before this goroutine counts itself out
			// so drain's Wait never sees the pool empty early.
			if cur != nil {
				cur.finish(nil, &JobError{
					Kind:    ErrKindPanic,
					Message: fmt.Sprint(r),
					Stack:   string(debug.Stack()),
				})
				cur.log.Error("worker panic recovered", "panic", fmt.Sprint(r))
			} else {
				p.log.Error("worker panic recovered outside a job", "panic", fmt.Sprint(r))
			}
			p.stats.PanicsRecovered.Add(1)
			p.stats.WorkersReplaced.Add(1)
			p.startWorker()
		}
		p.wg.Done()
	}()
	for j := range p.jobs {
		cur = j
		p.runOne(j)
		cur = nil
	}
}

// runOne executes one dequeued job to a terminal state. Runs on the worker
// goroutine, inside its recover barrier. Outcome counting happens in the
// job's terminal transition, not here — a job cancelled while queued was
// already counted when Cancel moved it terminal.
func (p *pool) runOne(j *Job) {
	if !j.start() {
		return // went terminal while queued; already accounted there
	}
	p.stats.WorkersBusy.Add(1)
	defer p.stats.WorkersBusy.Add(-1)
	if err := j.ctx.Err(); err != nil {
		j.finish(nil, classifyErr(err))
		return
	}
	// Chaos: an injected worker crash surfaces exactly where a real
	// simulation-kernel bug would — after dequeue, before results exist.
	chaosinject.MaybePanic("worker")
	result, err := execute(j, p.gridParallel, p.work, p.cache)
	if err != nil {
		j.finish(nil, classifyErr(err))
		return
	}
	j.finish(result, nil)
}

// wait blocks until every worker has exited (the queue must be closed
// first).
func (p *pool) wait() { p.wg.Wait() }
