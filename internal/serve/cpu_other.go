//go:build !unix

package serve

// processCPUSeconds has no portable source on this platform; the
// elag_process_cpu_seconds_total series reads 0 rather than going absent,
// so scrapers keep a stable series set everywhere.
func processCPUSeconds() float64 { return 0 }
