package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeInstRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpNop},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAdd, Rd: 63, Rs1: 62, SrcImm: true, Imm: -123456789},
		{Op: OpLUI, Rd: 5, Imm: 1 << 40},
		{Op: OpLoad, Flavor: LdP, Width: 8, Rd: 4, Mode: AMRegOffset, Base: 17, Imm: -8},
		{Op: OpLoad, Flavor: LdE, Width: 4, Signed: true, Rd: 3, Mode: AMRegReg, Base: 2, Index: 9},
		{Op: OpLoad, Flavor: LdN, Width: 1, Rd: 6, Mode: AMAbsolute, Imm: 0x7FFF_F000},
		{Op: OpStore, Width: 2, Rs2: 9, Mode: AMRegOffset, Base: 62, Imm: 48},
		{Op: OpBr, Cond: CondLE, Rs1: 7, Rs2: 8, Target: 12345},
		{Op: OpBr, Cond: CondNE, Rs1: 7, SrcImm: true, Imm: -1, Target: 0},
		{Op: OpJmp, Target: 99},
		{Op: OpCall, Rd: RegRA, Target: 7},
		{Op: OpJr, Rs1: RegRA},
		{Op: OpFAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpHalt, Rs1: 1},
	}
	var rec [EncodedInstBytes]byte
	for _, in := range cases {
		in := in
		if err := EncodeInst(&in, rec[:]); err != nil {
			t.Fatalf("encode %s: %v", in.String(), err)
		}
		out, err := DecodeInst(rec[:])
		if err != nil {
			t.Fatalf("decode %s: %v", in.String(), err)
		}
		if out != in {
			t.Errorf("round trip changed instruction:\n in: %+v\nout: %+v", in, out)
		}
	}
}

// Property: any field combination within encoding ranges round-trips.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, flavor, cond, mode uint8, width uint8, signed, srcImm bool,
		rd, rs1, rs2, base, index uint8, imm int64, target uint32) bool {
		in := Inst{
			Op:     Op(op) % numOps,
			Flavor: LoadFlavor(flavor % 3),
			Cond:   Cond(cond % 6),
			Mode:   AddrMode(mode % 3),
			Width:  width % 9,
			Signed: signed,
			SrcImm: srcImm,
			Rd:     Reg(rd % 64),
			Rs1:    Reg(rs1 % 64),
			Rs2:    Reg(rs2 % 64),
			Base:   Reg(base % 64),
			Index:  Reg(index % 64),
			Imm:    imm,
			Target: int(target % (1 << 30)),
		}
		var rec [EncodedInstBytes]byte
		if err := EncodeInst(&in, rec[:]); err != nil {
			return false
		}
		out, err := DecodeInst(rec[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	p := &Program{
		Insts: []Inst{
			{Op: OpLUI, Rd: 1, Imm: 42},
			{Op: OpLoad, Flavor: LdP, Width: 8, Rd: 2, Mode: AMAbsolute, Imm: 0x10000},
			{Op: OpBr, Cond: CondLT, Rs1: 1, SrcImm: true, Imm: 10, Target: 0},
			{Op: OpHalt, Rs1: 2},
		},
		Entry:       0,
		Data:        []byte{1, 2, 3, 4, 5},
		DataBase:    0x10000,
		Symbols:     map[string]int{"main": 0, "loop": 2},
		DataSymbols: map[string]int64{"tbl": 0x10000},
	}
	buf, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Insts) != len(p.Insts) || q.Entry != p.Entry || q.DataBase != p.DataBase {
		t.Fatalf("header fields wrong: %+v", q)
	}
	for i := range p.Insts {
		// Sym is not serialized; compare the rest.
		a, b := p.Insts[i], q.Insts[i]
		a.Sym, b.Sym = "", ""
		if a != b {
			t.Errorf("inst %d: %+v != %+v", i, a, b)
		}
	}
	if string(q.Data) != string(p.Data) {
		t.Errorf("data differs")
	}
	if q.Symbols["loop"] != 2 || q.DataSymbols["tbl"] != 0x10000 {
		t.Errorf("symbols lost: %+v %+v", q.Symbols, q.DataSymbols)
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram([]byte("NOPE....")); err == nil {
		t.Errorf("bad magic accepted")
	}
	p := &Program{Insts: []Inst{{Op: OpHalt}}, Symbols: map[string]int{}, DataSymbols: map[string]int64{}}
	buf, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeProgram(buf[:len(buf)-3]); err == nil {
		t.Errorf("truncated object accepted")
	}
	if _, err := DecodeProgram(append(buf, 0)); err == nil {
		t.Errorf("trailing garbage accepted")
	}
}
