package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{CondEQ, 3, 3, true}, {CondEQ, 3, 4, false},
		{CondNE, 3, 4, true}, {CondNE, 3, 3, false},
		{CondLT, -1, 0, true}, {CondLT, 0, 0, false},
		{CondGE, 0, 0, true}, {CondGE, -5, -4, false},
		{CondLE, 7, 7, true}, {CondLE, 8, 7, false},
		{CondGT, 8, 7, true}, {CondGT, 7, 7, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestCondNegateIsComplement(t *testing.T) {
	conds := []Cond{CondEQ, CondNE, CondLT, CondGE, CondLE, CondGT}
	f := func(a, b int64) bool {
		for _, c := range conds {
			if c.Eval(a, b) == c.Negate().Eval(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondNegateInvolution(t *testing.T) {
	for _, c := range []Cond{CondEQ, CondNE, CondLT, CondGE, CondLE, CondGT} {
		if c.Negate().Negate() != c {
			t.Errorf("Negate(Negate(%v)) = %v", c, c.Negate().Negate())
		}
	}
}

func TestInstClassPredicates(t *testing.T) {
	ld := Inst{Op: OpLoad, Width: 8}
	st := Inst{Op: OpStore, Width: 8}
	add := Inst{Op: OpAdd}
	br := Inst{Op: OpBr}
	fadd := Inst{Op: OpFAdd}

	if !ld.IsLoad() || !ld.IsMem() || ld.IsStore() || ld.IsALU() || ld.IsBranch() {
		t.Errorf("load predicates wrong")
	}
	if !st.IsStore() || !st.IsMem() || st.IsLoad() {
		t.Errorf("store predicates wrong")
	}
	if !add.IsALU() || add.IsMem() || add.IsBranch() {
		t.Errorf("add predicates wrong")
	}
	if !br.IsBranch() || !br.IsCondBranch() || br.IsALU() {
		t.Errorf("branch predicates wrong")
	}
	if !fadd.IsFP() || fadd.IsALU() {
		t.Errorf("fp predicates wrong")
	}
	jmp := Inst{Op: OpJmp}
	if !jmp.IsBranch() || jmp.IsCondBranch() {
		t.Errorf("jmp predicates wrong")
	}
}

func TestWritesIntReg(t *testing.T) {
	if r, ok := (&Inst{Op: OpAdd, Rd: 5}).WritesIntReg(); !ok || r != 5 {
		t.Errorf("add writes: got %d,%v", r, ok)
	}
	// Writes to r0 are discarded.
	if _, ok := (&Inst{Op: OpAdd, Rd: RegZero}).WritesIntReg(); ok {
		t.Errorf("write to r0 reported as a write")
	}
	if _, ok := (&Inst{Op: OpStore, Rs2: 5}).WritesIntReg(); ok {
		t.Errorf("store reported as writing a register")
	}
	if r, ok := (&Inst{Op: OpCall, Rd: RegRA}).WritesIntReg(); !ok || r != RegRA {
		t.Errorf("call should write the link register, got %d,%v", r, ok)
	}
}

func TestIntRegsRead(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: OpAdd, Rs1: 1, Rs2: 2}, []Reg{1, 2}},
		{Inst{Op: OpAdd, Rs1: 1, SrcImm: true}, []Reg{1}},
		{Inst{Op: OpLoad, Mode: AMRegOffset, Base: 3}, []Reg{3}},
		{Inst{Op: OpLoad, Mode: AMRegReg, Base: 3, Index: 4}, []Reg{3, 4}},
		{Inst{Op: OpLoad, Mode: AMAbsolute}, nil},
		{Inst{Op: OpStore, Mode: AMRegOffset, Base: 3, Rs2: 9}, []Reg{3, 9}},
		{Inst{Op: OpBr, Rs1: 7, Rs2: 8}, []Reg{7, 8}},
		{Inst{Op: OpBr, Rs1: 7, SrcImm: true}, []Reg{7}},
		{Inst{Op: OpJr, Rs1: 63}, []Reg{63}},
		{Inst{Op: OpLUI, Rd: 5}, nil},
		{Inst{Op: OpJmp}, nil},
	}
	for _, c := range cases {
		got := c.in.IntRegsRead(nil)
		if len(got) != len(c.want) {
			t.Errorf("%s reads %v, want %v", c.in.String(), got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s reads %v, want %v", c.in.String(), got, c.want)
			}
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, SrcImm: true, Imm: 7}, "add r1, r2, 7"},
		{Inst{Op: OpLoad, Flavor: LdP, Width: 8, Rd: 4, Mode: AMRegOffset, Base: 17}, "ld8_p r4, r17(0)"},
		{Inst{Op: OpLoad, Flavor: LdE, Width: 4, Rd: 3, Mode: AMRegOffset, Base: 2, Imm: 8}, "ld4_e r3, r2(8)"},
		{Inst{Op: OpLoad, Flavor: LdN, Width: 8, Rd: 6, Mode: AMRegReg, Base: 19, Index: 5}, "ld8_n r6, r19(r5)"},
		{Inst{Op: OpStore, Width: 8, Rs2: 9, Mode: AMAbsolute, Imm: 64}, "st8 r9, (64)"},
		{Inst{Op: OpBr, Cond: CondLT, Rs1: 1, SrcImm: true, Imm: 10, Sym: "loop"}, "blt r1, 10, loop"},
		{Inst{Op: OpJr, Rs1: 63}, "jr r63"},
		{Inst{Op: OpHalt, Rs1: 1}, "halt r1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLoadFlavorString(t *testing.T) {
	if LdN.String() != "n" || LdP.String() != "p" || LdE.String() != "e" {
		t.Errorf("flavor strings wrong: %s %s %s", LdN, LdP, LdE)
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := OpNop; op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestPCAddr(t *testing.T) {
	if PCAddr(0) != 0 || PCAddr(10) != 40 {
		t.Errorf("PCAddr wrong: %d %d", PCAddr(0), PCAddr(10))
	}
}
