package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Binary encoding. Each instruction encodes to a fixed 16-byte record:
//
//	word0 (uint32): op[0:6] flavor[6:8] cond[8:11] mode[11:13]
//	                width[13:17] signed[17] srcimm[18]
//	word1 (uint32): rd[0:6] rs1[6:12] rs2[12:18] base[18:24] index[24:30]
//	word2 (uint32): target (instruction index)
//	word3..4 (int64): immediate
//
// (So strictly 20 bytes: three uint32 header words plus an 8-byte
// immediate.) This is the object-file format, not the microarchitectural
// fetch granularity — the I-cache models a classic 4-byte instruction
// (isa.InstBytes), as the paper's PA-RISC-like machine would fetch.
const EncodedInstBytes = 20

// encodeErr annotates encoding failures with the instruction.
func encodeErr(in *Inst, msg string) error {
	return fmt.Errorf("isa: encode %q: %s", in.String(), msg)
}

// EncodeInst packs one instruction into its 20-byte record.
func EncodeInst(in *Inst, dst []byte) error {
	if len(dst) < EncodedInstBytes {
		return encodeErr(in, "short buffer")
	}
	if in.Op >= numOps {
		return encodeErr(in, "bad opcode")
	}
	if in.Width > 8 {
		return encodeErr(in, "bad width")
	}
	if in.Target < 0 || in.Target > 1<<31 {
		return encodeErr(in, "target out of range")
	}
	w0 := uint32(in.Op) |
		uint32(in.Flavor)<<6 |
		uint32(in.Cond)<<8 |
		uint32(in.Mode)<<11 |
		uint32(in.Width)<<13
	if in.Signed {
		w0 |= 1 << 17
	}
	if in.SrcImm {
		w0 |= 1 << 18
	}
	w1 := uint32(in.Rd) |
		uint32(in.Rs1)<<6 |
		uint32(in.Rs2)<<12 |
		uint32(in.Base)<<18 |
		uint32(in.Index)<<24
	binary.LittleEndian.PutUint32(dst[0:], w0)
	binary.LittleEndian.PutUint32(dst[4:], w1)
	binary.LittleEndian.PutUint32(dst[8:], uint32(in.Target))
	binary.LittleEndian.PutUint64(dst[12:], uint64(in.Imm))
	return nil
}

// DecodeInst unpacks one 20-byte record. Symbolic names (Sym) are not part
// of the encoding; the caller restores them from the symbol table if
// needed.
func DecodeInst(src []byte) (Inst, error) {
	var in Inst
	if len(src) < EncodedInstBytes {
		return in, errors.New("isa: decode: short buffer")
	}
	w0 := binary.LittleEndian.Uint32(src[0:])
	w1 := binary.LittleEndian.Uint32(src[4:])
	in.Op = Op(w0 & 0x3F)
	if in.Op >= numOps {
		return in, fmt.Errorf("isa: decode: bad opcode %d", in.Op)
	}
	in.Flavor = LoadFlavor(w0 >> 6 & 0x3)
	in.Cond = Cond(w0 >> 8 & 0x7)
	in.Mode = AddrMode(w0 >> 11 & 0x3)
	in.Width = uint8(w0 >> 13 & 0xF)
	in.Signed = w0>>17&1 != 0
	in.SrcImm = w0>>18&1 != 0
	in.Rd = Reg(w1 & 0x3F)
	in.Rs1 = Reg(w1 >> 6 & 0x3F)
	in.Rs2 = Reg(w1 >> 12 & 0x3F)
	in.Base = Reg(w1 >> 18 & 0x3F)
	in.Index = Reg(w1 >> 24 & 0x3F)
	in.Target = int(binary.LittleEndian.Uint32(src[8:]))
	in.Imm = int64(binary.LittleEndian.Uint64(src[12:]))
	return in, nil
}

// Object-file format ("ELAG"):
//
//	magic "ELAG" | version u32 | entry u32 | ninsts u32 | databse i64 |
//	ndata u32 | nsyms u32 | ndatasyms u32 |
//	insts [ninsts * 20]byte | data [ndata]byte |
//	syms:     { nameLen u32 | name | pc u32 } * nsyms     (name-sorted)
//	datasyms: { nameLen u32 | name | addr i64 } * ndatasyms
const objMagic = "ELAG"
const objVersion = 1

// EncodeProgram serializes a program to the ELAG object format.
func EncodeProgram(p *Program) ([]byte, error) {
	var buf []byte
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	i64 := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf = append(buf, b[:]...)
	}
	str := func(s string) {
		u32(uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, objMagic...)
	u32(objVersion)
	u32(uint32(p.Entry))
	u32(uint32(len(p.Insts)))
	i64(p.DataBase)
	u32(uint32(len(p.Data)))
	u32(uint32(len(p.Symbols)))
	u32(uint32(len(p.DataSymbols)))
	var rec [EncodedInstBytes]byte
	for i := range p.Insts {
		if err := EncodeInst(&p.Insts[i], rec[:]); err != nil {
			return nil, fmt.Errorf("inst %d: %w", i, err)
		}
		buf = append(buf, rec[:]...)
	}
	buf = append(buf, p.Data...)
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		str(name)
		u32(uint32(p.Symbols[name]))
	}
	dnames := make([]string, 0, len(p.DataSymbols))
	for name := range p.DataSymbols {
		dnames = append(dnames, name)
	}
	sort.Strings(dnames)
	for _, name := range dnames {
		str(name)
		i64(p.DataSymbols[name])
	}
	return buf, nil
}

// DecodeProgram parses the ELAG object format.
func DecodeProgram(buf []byte) (*Program, error) {
	pos := 0
	need := func(n int) error {
		if pos+n > len(buf) {
			return fmt.Errorf("isa: object truncated at offset %d", pos)
		}
		return nil
	}
	u32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(buf[pos:])
		pos += 4
		return v, nil
	}
	i64 := func() (int64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := int64(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
		return v, nil
	}
	str := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if err := need(int(n)); err != nil {
			return "", err
		}
		s := string(buf[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}

	if err := need(4); err != nil {
		return nil, err
	}
	if string(buf[:4]) != objMagic {
		return nil, errors.New("isa: not an ELAG object (bad magic)")
	}
	pos = 4
	ver, err := u32()
	if err != nil {
		return nil, err
	}
	if ver != objVersion {
		return nil, fmt.Errorf("isa: unsupported object version %d", ver)
	}
	entry, err := u32()
	if err != nil {
		return nil, err
	}
	ninsts, err := u32()
	if err != nil {
		return nil, err
	}
	dataBase, err := i64()
	if err != nil {
		return nil, err
	}
	ndata, err := u32()
	if err != nil {
		return nil, err
	}
	nsyms, err := u32()
	if err != nil {
		return nil, err
	}
	ndsyms, err := u32()
	if err != nil {
		return nil, err
	}

	p := &Program{
		Entry:       int(entry),
		DataBase:    dataBase,
		Symbols:     make(map[string]int, nsyms),
		DataSymbols: make(map[string]int64, ndsyms),
	}
	p.Insts = make([]Inst, ninsts)
	for i := range p.Insts {
		if err := need(EncodedInstBytes); err != nil {
			return nil, err
		}
		in, err := DecodeInst(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("inst %d: %w", i, err)
		}
		p.Insts[i] = in
		pos += EncodedInstBytes
	}
	if err := need(int(ndata)); err != nil {
		return nil, err
	}
	p.Data = append([]byte(nil), buf[pos:pos+int(ndata)]...)
	pos += int(ndata)
	for i := 0; i < int(nsyms); i++ {
		name, err := str()
		if err != nil {
			return nil, err
		}
		pc, err := u32()
		if err != nil {
			return nil, err
		}
		p.Symbols[name] = int(pc)
	}
	for i := 0; i < int(ndsyms); i++ {
		name, err := str()
		if err != nil {
			return nil, err
		}
		addr, err := i64()
		if err != nil {
			return nil, err
		}
		p.DataSymbols[name] = addr
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("isa: %d trailing bytes in object", len(buf)-pos)
	}
	return p, nil
}
